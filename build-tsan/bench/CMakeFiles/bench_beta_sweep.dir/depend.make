# Empty dependencies file for bench_beta_sweep.
# This may be replaced when dependencies are built.
