#include "alarm/similarity.hpp"

#include "common/check.hpp"

namespace simty::alarm {

const char* to_string(SimilarityLevel l) {
  switch (l) {
    case SimilarityLevel::kHigh: return "high";
    case SimilarityLevel::kMedium: return "medium";
    case SimilarityLevel::kLow: return "low";
  }
  return "?";
}

const char* to_string(HardwareSimilarityMode m) {
  switch (m) {
    case HardwareSimilarityMode::kTwoLevel: return "2-level";
    case HardwareSimilarityMode::kThreeLevel: return "3-level";
    case HardwareSimilarityMode::kFourLevel: return "4-level";
  }
  return "?";
}

const char* to_string(TimeSimilarityMode m) {
  switch (m) {
    case TimeSimilarityMode::kThreeLevel: return "3-level";
    case TimeSimilarityMode::kWindowOnly: return "window-only";
  }
  return "?";
}

SimilarityLevel hardware_similarity(hw::ComponentSet a, hw::ComponentSet b) {
  if (a == b && !a.empty()) return SimilarityLevel::kHigh;
  if (a.intersects(b)) return SimilarityLevel::kMedium;
  return SimilarityLevel::kLow;
}

int hardware_grade(hw::ComponentSet a, hw::ComponentSet b,
                   const SimilarityConfig& config) {
  switch (config.hw_mode) {
    case HardwareSimilarityMode::kTwoLevel:
      return a.intersects(b) ? 0 : 1;
    case HardwareSimilarityMode::kThreeLevel:
      return static_cast<int>(hardware_similarity(a, b));
    case HardwareSimilarityMode::kFourLevel: {
      switch (hardware_similarity(a, b)) {
        case SimilarityLevel::kHigh: return 0;
        case SimilarityLevel::kMedium:
          // Medium split (§3.1.1): sharing an energy-hungry component is
          // worth more than sharing only cheap ones.
          return (a & b).intersects(config.energy_hungry) ? 1 : 2;
        case SimilarityLevel::kLow: return 3;
      }
      return 3;
    }
  }
  SIMTY_CHECK_MSG(false, "unknown hardware similarity mode");
  return 0;
}

int max_hardware_grade(HardwareSimilarityMode mode) {
  switch (mode) {
    case HardwareSimilarityMode::kTwoLevel: return 1;
    case HardwareSimilarityMode::kThreeLevel: return 2;
    case HardwareSimilarityMode::kFourLevel: return 3;
  }
  SIMTY_CHECK_MSG(false, "unknown hardware similarity mode");
  return 0;
}

SimilarityLevel time_similarity(const TimeInterval& window_a,
                                const TimeInterval& grace_a,
                                const TimeInterval& window_b,
                                const TimeInterval& grace_b) {
  if (window_a.overlaps(window_b)) return SimilarityLevel::kHigh;
  if (grace_a.overlaps(grace_b)) return SimilarityLevel::kMedium;
  return SimilarityLevel::kLow;
}

SimilarityLevel time_similarity(const TimeInterval& window_a,
                                const TimeInterval& grace_a,
                                const TimeInterval& window_b,
                                const TimeInterval& grace_b,
                                const SimilarityConfig& config) {
  const SimilarityLevel time =
      time_similarity(window_a, grace_a, window_b, grace_b);
  if (config.time_mode == TimeSimilarityMode::kWindowOnly &&
      time == SimilarityLevel::kMedium) {
    return SimilarityLevel::kLow;  // no grace credit in window-only mode
  }
  return time;
}

bool is_applicable(SimilarityLevel time, bool alarm_perceptible,
                   bool entry_perceptible) {
  if (alarm_perceptible || entry_perceptible) {
    return time == SimilarityLevel::kHigh;
  }
  return time == SimilarityLevel::kHigh || time == SimilarityLevel::kMedium;
}

int preferability_rank(int hw_grade, SimilarityLevel time) {
  SIMTY_CHECK_MSG(time != SimilarityLevel::kLow,
                  "low time similarity is never applicable (Table 1: infinity)");
  SIMTY_CHECK(hw_grade >= 0);
  return hw_grade * 2 + (time == SimilarityLevel::kHigh ? 1 : 2);
}

}  // namespace simty::alarm
