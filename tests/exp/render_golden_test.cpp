// Golden-output tests: the report renderers feed EXPERIMENTS.md and the
// bench stdout that humans diff against the paper — pin their exact layout
// so accidental format drift is caught.

#include <gtest/gtest.h>

#include "exp/reporting.hpp"

namespace simty::exp {
namespace {

std::vector<NamedResult> fixture_columns() {
  RunResult native;
  native.policy_name = "NATIVE";
  native.energy.sleep = Energy::joules(243.2);
  native.energy.awake_base = Energy::joules(449.2);
  native.average_power_mw = 64.1;
  native.projected_standby_hours = 136.3;
  native.delay_perceptible = 0.0;
  native.delay_imperceptible = 0.002;
  native.delay_imperceptible_p95 = 0.004;
  native.wakeups = {{"CPU", 392, 695},
                    {"Speaker&Vibrator", 5, 5},
                    {"Wi-Fi", 385, 482},
                    {"WPS", 0, 0},
                    {"Accelerometer", 0, 0}};
  native.worst_gap_ratio = 1.747;

  RunResult simty = native;
  simty.policy_name = "SIMTY";
  simty.energy.sleep = Energy::joules(252.9);
  simty.energy.awake_base = Energy::joules(286.4);
  simty.average_power_mw = 49.9;
  simty.projected_standby_hours = 175.0;
  simty.delay_imperceptible = 0.148;
  simty.delay_imperceptible_p95 = 0.696;
  simty.wakeups = {{"CPU", 213, 639},
                   {"Speaker&Vibrator", 5, 5},
                   {"Wi-Fi", 178, 426},
                   {"WPS", 0, 0},
                   {"Accelerometer", 0, 0}};
  simty.worst_gap_ratio = 1.938;
  return {{"NATIVE", native}, {"SIMTY", simty}};
}

TEST(RenderGolden, EnergyFigure) {
  const std::string out = render_energy_figure(fixture_columns());
  const std::string expected =
      "Figure 3: energy consumption in connected standby (J)\n"
      "+-----------------------+--------+-------+\n"
      "| Energy (J)            | NATIVE | SIMTY |\n"
      "+-----------------------+--------+-------+\n"
      "| awake (alignable)     | 449.2  | 286.4 |\n"
      "| sleep (floor)         | 243.2  | 252.9 |\n"
      "| total                 | 692.4  | 539.3 |\n"
      "+-----------------------+--------+-------+\n"
      "| awake saving vs col 1 | 0.0%   | 36.2% |\n"
      "| total saving vs col 1 | 0.0%   | 22.1% |\n"
      "+-----------------------+--------+-------+\n";
  EXPECT_EQ(out, expected);
}

TEST(RenderGolden, DelayFigure) {
  const std::string out = render_delay_figure(fixture_columns());
  const std::string expected =
      "Figure 4: average normalized delivery delay\n"
      "+-------------------+--------+-------+\n"
      "| Alarm class       | NATIVE | SIMTY |\n"
      "+-------------------+--------+-------+\n"
      "| perceptible       | 0.0%   | 0.0%  |\n"
      "| imperceptible     | 0.2%   | 14.8% |\n"
      "| imperceptible p95 | 0.4%   | 69.6% |\n"
      "+-------------------+--------+-------+\n";
  EXPECT_EQ(out, expected);
}

TEST(RenderGolden, WakeupTable) {
  const std::string out = render_wakeup_table(fixture_columns());
  const std::string expected =
      "Table 4: the wakeup breakdown (actual/expected)\n"
      "+------------------+---------+---------+\n"
      "| Hardware         | NATIVE  | SIMTY   |\n"
      "+------------------+---------+---------+\n"
      "| CPU              | 392/695 | 213/639 |\n"
      "| Speaker&Vibrator | 5/5     | 5/5     |\n"
      "| Wi-Fi            | 385/482 | 178/426 |\n"
      "| WPS              | 0/0     | 0/0     |\n"
      "| Accelerometer    | 0/0     | 0/0     |\n"
      "+------------------+---------+---------+\n";
  EXPECT_EQ(out, expected);
}

TEST(RenderGolden, StandbyProjection) {
  const std::string out = render_standby_projection(fixture_columns());
  EXPECT_NE(out.find("| NATIVE | 64.10          | 136.3       | 0.0%"),
            std::string::npos);
  EXPECT_NE(out.find("| SIMTY  | 49.90          | 175.0       | 28.4%"),
            std::string::npos);
}

TEST(RenderGolden, GuaranteeAudit) {
  const std::string out = render_guarantee_audit(fixture_columns());
  EXPECT_NE(out.find("| NATIVE | 1.747            | 0              | 0"),
            std::string::npos);
  EXPECT_NE(out.find("| SIMTY  | 1.938            | 0              | 0"),
            std::string::npos);
}

TEST(RenderGolden, CsvRow) {
  const std::string out = results_csv(fixture_columns());
  EXPECT_NE(out.find("NATIVE,NATIVE,449.20,243.20,692.40,64.100,136.30,"
                     "0.00000,0.00200,392.0,695.0,0.0,0.0,0.00000,0.00000"),
            std::string::npos);
}

}  // namespace
}  // namespace simty::exp
