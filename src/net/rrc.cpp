#include "net/rrc.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "trace/tracer.hpp"

namespace simty::net {

const char* to_string(RrcState s) {
  switch (s) {
    case RrcState::kIdle: return "IDLE";
    case RrcState::kFach: return "FACH";
    case RrcState::kDch: return "DCH";
  }
  return "?";
}

RrcMachine::RrcMachine(sim::Simulator& sim, RrcConfig config, hw::PowerBus& bus)
    : sim_(sim), config_(config), bus_(bus), state_since_(sim.now()),
      busy_until_(sim.now()) {
  SIMTY_CHECK(config_.dch_to_fach > Duration::zero());
  SIMTY_CHECK(config_.fach_to_idle > Duration::zero());
}

void RrcMachine::data_activity(Duration duration) {
  SIMTY_CHECK_MSG(!duration.is_negative(), "activity duration must be >= 0");
  const TimePoint now = sim_.now();
  busy_until_ = std::max(busy_until_, now + duration);

  switch (state_) {
    case RrcState::kIdle:
      ++idle_promotions_;
      bus_.publish_impulse(now, config_.idle_promotion,
                           hw::ImpulseKind::kComponentActivation, "rrc-idle-dch");
      enter(RrcState::kDch);
      break;
    case RrcState::kFach:
      ++fach_promotions_;
      bus_.publish_impulse(now, config_.fach_promotion,
                           hw::ImpulseKind::kComponentActivation, "rrc-fach-dch");
      enter(RrcState::kDch);
      break;
    case RrcState::kDch:
      break;  // already up; timers just move out
  }
  arm_demotion();
}

void RrcMachine::enter(RrcState next) {
  const TimePoint now = sim_.now();
  time_in_[static_cast<std::size_t>(state_)] += now - state_since_;
  state_since_ = now;
  state_ = next;
  SIMTY_TRACE_INSTANT(now, trace::TraceCategory::kNet, "rrc-state",
                      static_cast<std::int64_t>(state_));
  switch (state_) {
    case RrcState::kDch:
      bus_.publish_component_power(now, hw::Component::kCellular, true, config_.dch);
      break;
    case RrcState::kFach:
      bus_.publish_component_power(now, hw::Component::kCellular, true, config_.fach);
      break;
    case RrcState::kIdle:
      bus_.publish_component_power(now, hw::Component::kCellular, false, Power::zero());
      break;
  }
}

void RrcMachine::arm_demotion() {
  if (demotion_event_) {
    sim_.cancel(*demotion_event_);
    demotion_event_.reset();
  }
  demotion_event_ = sim_.schedule_at(
      busy_until_ + config_.dch_to_fach,
      [this] {
        enter(RrcState::kFach);
        demotion_event_ = sim_.schedule_at(
            sim_.now() + config_.fach_to_idle,
            [this] {
              demotion_event_.reset();
              enter(RrcState::kIdle);
            },
            sim::EventPriority::kHardware, "rrc-fach-idle");
      },
      sim::EventPriority::kHardware, "rrc-dch-fach");
}

Duration RrcMachine::time_in(RrcState s) const {
  return time_in_[static_cast<std::size_t>(s)];
}

void RrcMachine::finalize(TimePoint now) {
  SIMTY_CHECK_MSG(now >= state_since_,
                  "RrcMachine::finalize: horizon before the open span start");
  time_in_[static_cast<std::size_t>(state_)] += now - state_since_;
  state_since_ = now;
}

}  // namespace simty::net
