#include "usage/interactive.hpp"

#include "alarm/alarm_manager.hpp"
#include "alarm/duration_policy.hpp"
#include "alarm/exact_policy.hpp"
#include "alarm/fixed_interval_policy.hpp"
#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "apps/system_alarms.hpp"
#include "common/check.hpp"
#include "hw/power_bus.hpp"
#include "hw/rtc.hpp"
#include "power/energy_accounting.hpp"

namespace simty::usage {

InteractiveDriver::InteractiveDriver(sim::Simulator& sim, hw::Device& device,
                                     hw::WakelockManager& wakelocks)
    : sim_(sim), device_(device), wakelocks_(wakelocks) {}

void InteractiveDriver::schedule(const std::vector<InteractiveSession>& sessions) {
  for (const InteractiveSession& s : sessions) {
    SIMTY_CHECK_MSG(s.start >= sim_.now(), "session start in the past");
    sim_.schedule_at(
        s.start, [this, s] { run_session(s); }, sim::EventPriority::kApp,
        "interactive-session");
  }
}

void InteractiveDriver::run_session(InteractiveSession session) {
  device_.request_awake(hw::WakeReason::kUserButton, [this, session] {
    device_.acquire_cpu_lock();
    const hw::WakelockId screen =
        wakelocks_.acquire(hw::Component::kScreen, "user-session");
    sim_.schedule_after(
        session.length,
        [this, session, screen] {
          wakelocks_.try_release(screen);
          device_.release_cpu_lock();
          ++completed_;
          screen_on_ += session.length;
        },
        sim::EventPriority::kApp, "interactive-session-end");
  });
}

double MixedDayResult::battery_days(Energy capacity) const {
  SIMTY_CHECK(energy.total() > Energy::zero());
  return capacity.ratio(energy.total());
}

namespace {

std::unique_ptr<alarm::AlignmentPolicy> make_policy(const exp::ExperimentConfig& c) {
  switch (c.policy) {
    case exp::PolicyKind::kNative: return std::make_unique<alarm::NativePolicy>();
    case exp::PolicyKind::kSimty:
      return std::make_unique<alarm::SimtyPolicy>(c.similarity);
    case exp::PolicyKind::kExact: return std::make_unique<alarm::ExactPolicy>();
    case exp::PolicyKind::kSimtyDuration:
      return std::make_unique<alarm::DurationSimtyPolicy>(c.similarity);
    case exp::PolicyKind::kFixedInterval:
      return std::make_unique<alarm::FixedIntervalPolicy>(c.fixed_interval);
  }
  SIMTY_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace

MixedDayResult simulate_day_mixed(const exp::ExperimentConfig& standby_config,
                                  const UsagePattern& pattern, std::uint64_t seed) {
  sim::Simulator sim;
  hw::PowerBus bus;
  power::EnergyAccountant accountant;
  bus.add_listener(&accountant);
  hw::Device device(sim, standby_config.power_model, bus);
  hw::Rtc rtc(sim, device);
  hw::WakelockManager wakelocks(sim, standby_config.power_model, bus);
  alarm::AlarmManager manager(sim, device, rtc, wakelocks,
                              make_policy(standby_config));

  std::uint64_t nonwakeup = 0;
  manager.add_delivery_observer([&](const alarm::DeliveryRecord& r) {
    if (r.kind == alarm::AlarmKind::kNonWakeup) ++nonwakeup;
  });

  apps::WorkloadConfig wc;
  wc.seed = seed;
  wc.beta = standby_config.beta;
  apps::Workload workload =
      standby_config.workload == exp::WorkloadKind::kHeavy
          ? apps::Workload::heavy(wc)
          : apps::Workload::light(wc);
  workload.deploy(sim, manager);

  // An OS housekeeping task that never wakes the device by itself: it
  // rides alarm wakeups at night and user sessions by day (§2.1).
  alarm::AlarmSpec housekeeping = alarm::AlarmSpec::repeating(
      "os.logcompact", apps::SystemAlarmSource::kSystemApp,
      alarm::RepeatMode::kStatic, Duration::seconds(1800), 0.5, 0.9);
  housekeeping.kind = alarm::AlarmKind::kNonWakeup;
  manager.register_alarm(housekeeping,
                         TimePoint::origin() + Duration::seconds(1800),
                         [](const alarm::Alarm&, TimePoint) {
                           return alarm::TaskSpec{};
                         });

  const TimePoint horizon = TimePoint::origin() + Duration::hours(24);
  std::unique_ptr<apps::SystemAlarmSource> system_alarms;
  if (standby_config.system_alarms) {
    apps::SystemAlarmConfig sys_cfg;
    sys_cfg.beta = standby_config.beta;
    system_alarms = std::make_unique<apps::SystemAlarmSource>(
        sim, manager, sys_cfg, Rng(seed, 0x515));
    system_alarms->start(horizon);
  }

  InteractiveDriver driver(sim, device, wakelocks);
  driver.schedule(sample_sessions(pattern, seed));

  sim.run_until(horizon);
  device.finalize(horizon);
  wakelocks.finalize(horizon);
  accountant.finalize(horizon);

  MixedDayResult out;
  out.energy = accountant.breakdown();
  out.screen_on_time = driver.screen_on_time();
  out.sessions = driver.sessions_completed();
  out.wakeups = device.wakeup_count();
  out.user_wakeups = device.wakeups_for(hw::WakeReason::kUserButton);
  out.deliveries = static_cast<double>(manager.stats().deliveries);
  out.nonwakeup_deliveries = static_cast<double>(nonwakeup);
  return out;
}

}  // namespace simty::usage
