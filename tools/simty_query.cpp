// simty_query: client for the simty_serve sweep daemon.
//
//   simty_query --socket /tmp/simty.sock [run options]
//   simty_query --socket /tmp/simty.sock --stats
//   simty_query --socket /tmp/simty.sock --shutdown
//
// Run options mirror the serve request schema:
//   --policy native|simty|exact|simty-dur   (default simty)
//   --workload light|heavy|synthetic        (default light)
//   --hours H | --minutes M                 (default 3 hours)
//   --seed N                                (default 1)
//   --doze
//   --no-system-alarms
//   --beta-switch-at-minutes M --beta B     (the sweep lever)
//
// Output is one key=value line per response field, machine-greppable:
//   cached=1 warm_started=0 total_j=... average_power_mw=...

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "serve/serve_core.hpp"
#include "serve/server.hpp"
#include "snapshot/snapshot.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: simty_query --socket <path> "
               "[--stats | --shutdown | run options]\n"
               "run options: --policy P --workload W --hours H --minutes M\n"
               "             --seed N --doze --no-system-alarms\n"
               "             --beta-switch-at-minutes M --beta B\n");
  return 2;
}

bool parse_policy(const std::string& s, simty::exp::PolicyKind& out) {
  if (s == "native") out = simty::exp::PolicyKind::kNative;
  else if (s == "simty") out = simty::exp::PolicyKind::kSimty;
  else if (s == "exact") out = simty::exp::PolicyKind::kExact;
  else if (s == "simty-dur") out = simty::exp::PolicyKind::kSimtyDuration;
  else return false;
  return true;
}

bool parse_workload(const std::string& s, simty::exp::WorkloadKind& out) {
  if (s == "light") out = simty::exp::WorkloadKind::kLight;
  else if (s == "heavy") out = simty::exp::WorkloadKind::kHeavy;
  else if (s == "synthetic") out = simty::exp::WorkloadKind::kSynthetic;
  else return false;
  return true;
}

void print_response(const simty::serve::Response& r) {
  std::printf("cached=%d\n", r.cached ? 1 : 0);
  std::printf("warm_started=%d\n", r.warm_started ? 1 : 0);
  std::printf("policy=%s\n", r.policy_name.c_str());
  std::printf("total_j=%.17g\n", r.total_j);
  std::printf("awake_total_j=%.17g\n", r.awake_total_j);
  std::printf("average_power_mw=%.17g\n", r.average_power_mw);
  std::printf("projected_standby_hours=%.17g\n", r.projected_standby_hours);
  std::printf("delay_perceptible=%.17g\n", r.delay_perceptible);
  std::printf("delay_imperceptible=%.17g\n", r.delay_imperceptible);
  std::printf("delay_imperceptible_p95=%.17g\n", r.delay_imperceptible_p95);
  std::printf("deliveries=%.17g\n", r.deliveries);
  std::printf("batches_delivered=%.17g\n", r.batches_delivered);
  std::printf("one_shots=%.17g\n", r.one_shots);
  std::printf("awake_seconds=%.17g\n", r.awake_seconds);
  std::printf("asleep_seconds=%.17g\n", r.asleep_seconds);
  std::printf("worst_gap_ratio=%.17g\n", r.worst_gap_ratio);
  std::printf("gap_violations=%llu\n",
              static_cast<unsigned long long>(r.gap_violations));
  std::printf("perceptible_window_misses=%llu\n",
              static_cast<unsigned long long>(r.perceptible_window_misses));
}

void print_stats(const simty::serve::ServeStats& s) {
  std::printf("requests=%llu\n", static_cast<unsigned long long>(s.requests));
  std::printf("result_hits=%llu\n",
              static_cast<unsigned long long>(s.result_hits));
  std::printf("result_misses=%llu\n",
              static_cast<unsigned long long>(s.result_misses));
  std::printf("prefix_hits=%llu\n",
              static_cast<unsigned long long>(s.prefix_hits));
  std::printf("prefix_misses=%llu\n",
              static_cast<unsigned long long>(s.prefix_misses));
  std::printf("snapshots_stored=%llu\n",
              static_cast<unsigned long long>(s.snapshots_stored));
  std::printf("snapshots_evicted=%llu\n",
              static_cast<unsigned long long>(s.snapshots_evicted));
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool stats = false, shutdown = false;
  simty::serve::Request req;
  std::int64_t switch_minutes = -1;
  double beta = -1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) socket_path = argv[++i];
    else if (arg == "--stats") stats = true;
    else if (arg == "--shutdown") shutdown = true;
    else if (arg == "--policy" && i + 1 < argc) {
      if (!parse_policy(argv[++i], req.policy)) return usage();
    } else if (arg == "--workload" && i + 1 < argc) {
      if (!parse_workload(argv[++i], req.workload)) return usage();
    } else if (arg == "--hours" && i + 1 < argc) {
      req.duration = simty::Duration::hours(std::atoll(argv[++i]));
    } else if (arg == "--minutes" && i + 1 < argc) {
      req.duration = simty::Duration::minutes(std::atoll(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      req.seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--doze") {
      req.doze = true;
    } else if (arg == "--no-system-alarms") {
      req.system_alarms = false;
    } else if (arg == "--beta-switch-at-minutes" && i + 1 < argc) {
      switch_minutes = std::atoll(argv[++i]);
    } else if (arg == "--beta" && i + 1 < argc) {
      beta = std::atof(argv[++i]);
    } else {
      return usage();
    }
  }
  if (socket_path.empty()) return usage();
  if ((switch_minutes >= 0) != (beta > 0.0)) {
    std::fprintf(stderr,
                 "simty_query: --beta-switch-at-minutes and --beta go "
                 "together\n");
    return 2;
  }
  if (switch_minutes >= 0) {
    req.beta_switch = simty::exp::ExperimentConfig::BetaSwitch{
        simty::Duration::minutes(switch_minutes), beta};
  }

  try {
    std::string frame;
    if (shutdown) frame = simty::serve::encode_shutdown();
    else if (stats) frame = simty::serve::encode_stats_request();
    else frame = simty::serve::encode_request(req);

    const std::string reply = simty::serve::query(socket_path, frame);
    if (shutdown) {
      std::printf("shutdown=%d\n",
                  simty::serve::is_shutdown_frame(reply) ? 1 : 0);
      return 0;
    }
    const simty::snapshot::Reader reader(reply);
    if (reader.has_section("simty-error")) {
      simty::snapshot::SectionReader s =
          reader.section("simty-error", simty::serve::kProtocolVersion);
      std::fprintf(stderr, "simty_query: server error: %s\n", s.str().c_str());
      return 1;
    }
    if (stats) print_stats(simty::serve::decode_stats(reply));
    else print_response(simty::serve::decode_response(reply));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "simty_query: %s\n", e.what());
    return 1;
  }
}
