#include "net/rrc.hpp"

#include <gtest/gtest.h>

namespace simty::net {
namespace {

class RailProbe : public hw::PowerListener {
 public:
  void on_component_power(TimePoint, hw::Component c, bool on, Power level) override {
    if (c == hw::Component::kCellular) levels.push_back(on ? level.mw() : 0.0);
  }
  void on_impulse(TimePoint, Energy e, hw::ImpulseKind, std::string_view tag) override {
    impulses.emplace_back(std::string(tag), e.mj());
  }
  std::vector<double> levels;
  std::vector<std::pair<std::string, double>> impulses;
};

class RrcTest : public ::testing::Test {
 protected:
  RrcTest() {
    bus_.add_listener(&probe_);
    rrc_ = std::make_unique<RrcMachine>(sim_, config_, bus_);
  }
  TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }
  void run_to(std::int64_t s) { sim_.run_until(at(s)); }
  sim::Simulator sim_;
  RrcConfig config_;
  hw::PowerBus bus_;
  RailProbe probe_;
  std::unique_ptr<RrcMachine> rrc_;
};

TEST_F(RrcTest, StartsIdle) {
  EXPECT_EQ(rrc_->state(), RrcState::kIdle);
  EXPECT_EQ(rrc_->idle_promotions(), 0u);
}

TEST_F(RrcTest, ActivityPromotesToDchAndPaysSignaling) {
  rrc_->data_activity(Duration::seconds(2));
  EXPECT_EQ(rrc_->state(), RrcState::kDch);
  EXPECT_EQ(rrc_->idle_promotions(), 1u);
  ASSERT_EQ(probe_.impulses.size(), 1u);
  EXPECT_EQ(probe_.impulses[0].first, "rrc-idle-dch");
  EXPECT_DOUBLE_EQ(probe_.impulses[0].second, 600.0);
  ASSERT_FALSE(probe_.levels.empty());
  EXPECT_DOUBLE_EQ(probe_.levels.back(), 800.0);
}

TEST_F(RrcTest, DemotesThroughFachToIdleOnInactivity) {
  rrc_->data_activity(Duration::seconds(2));
  // DCH until busy end (2 s) + T1 (5 s) = 7 s; FACH until 7 + 12 = 19 s.
  run_to(6);
  EXPECT_EQ(rrc_->state(), RrcState::kDch);
  run_to(8);
  EXPECT_EQ(rrc_->state(), RrcState::kFach);
  EXPECT_DOUBLE_EQ(probe_.levels.back(), 460.0);
  run_to(18);
  EXPECT_EQ(rrc_->state(), RrcState::kFach);
  run_to(20);
  EXPECT_EQ(rrc_->state(), RrcState::kIdle);
  EXPECT_DOUBLE_EQ(probe_.levels.back(), 0.0);

  rrc_->finalize(at(20));
  EXPECT_EQ(rrc_->time_in(RrcState::kDch), Duration::seconds(7));
  EXPECT_EQ(rrc_->time_in(RrcState::kFach), Duration::seconds(12));
  EXPECT_EQ(rrc_->time_in(RrcState::kIdle), Duration::seconds(1));
}

TEST_F(RrcTest, FachPromotionIsCheaper) {
  rrc_->data_activity(Duration::seconds(1));
  run_to(7);  // now in FACH
  ASSERT_EQ(rrc_->state(), RrcState::kFach);
  rrc_->data_activity(Duration::seconds(1));
  EXPECT_EQ(rrc_->state(), RrcState::kDch);
  EXPECT_EQ(rrc_->fach_promotions(), 1u);
  EXPECT_EQ(probe_.impulses.back().first, "rrc-fach-dch");
  EXPECT_DOUBLE_EQ(probe_.impulses.back().second, 250.0);
}

TEST_F(RrcTest, OverlappingActivityExtendsBusyWindowWithoutNewPromotion) {
  rrc_->data_activity(Duration::seconds(4));
  run_to(2);
  rrc_->data_activity(Duration::seconds(4));  // still DCH: no promotion cost
  EXPECT_EQ(rrc_->idle_promotions(), 1u);
  EXPECT_EQ(probe_.impulses.size(), 1u);
  // Busy until 6 s; DCH until 11 s.
  run_to(10);
  EXPECT_EQ(rrc_->state(), RrcState::kDch);
  run_to(12);
  EXPECT_EQ(rrc_->state(), RrcState::kFach);
}

TEST_F(RrcTest, BatchedActivityPaysOnePromotion) {
  // Three back-to-back syncs (an aligned entry) vs three spread 60 s apart.
  for (int i = 0; i < 3; ++i) rrc_->data_activity(Duration::seconds(2));
  EXPECT_EQ(rrc_->idle_promotions(), 1u);

  RailProbe probe2;
  sim::Simulator sim2;
  hw::PowerBus bus2;
  bus2.add_listener(&probe2);
  RrcMachine spread(sim2, config_, bus2);
  for (int i = 0; i < 3; ++i) {
    sim2.schedule_at(TimePoint::origin() + Duration::seconds(i * 60),
                     [&] { spread.data_activity(Duration::seconds(2)); });
  }
  sim2.run_until(TimePoint::origin() + Duration::seconds(300));
  EXPECT_EQ(spread.idle_promotions(), 3u);  // each sync pays the full tail
}

TEST_F(RrcTest, PromotionMidDemotionChainKeepsAccountingExact) {
  // Regression for the finalize/accounting bug: a FACH->DCH re-promotion in
  // the middle of a demotion chain must leave per-state times that sum to
  // the horizon exactly, with the final open span flushed by finalize().
  rrc_->data_activity(Duration::seconds(2));  // DCH 0..7, FACH 7..19
  run_to(10);
  ASSERT_EQ(rrc_->state(), RrcState::kFach);
  rrc_->data_activity(Duration::seconds(1));  // re-promote mid-chain at 10 s
  EXPECT_EQ(rrc_->state(), RrcState::kDch);
  EXPECT_EQ(rrc_->idle_promotions(), 1u);
  EXPECT_EQ(rrc_->fach_promotions(), 1u);
  // Busy until 11 s: DCH 10..16, FACH 16..28, IDLE from 28.
  run_to(30);
  EXPECT_EQ(rrc_->state(), RrcState::kIdle);

  rrc_->finalize(at(30));
  EXPECT_EQ(rrc_->time_in(RrcState::kDch), Duration::seconds(7 + 6));
  EXPECT_EQ(rrc_->time_in(RrcState::kFach), Duration::seconds(3 + 12));
  EXPECT_EQ(rrc_->time_in(RrcState::kIdle), Duration::seconds(2));
  const Duration total = rrc_->time_in(RrcState::kIdle) +
                         rrc_->time_in(RrcState::kFach) +
                         rrc_->time_in(RrcState::kDch);
  EXPECT_EQ(total, Duration::seconds(30));
}

TEST_F(RrcTest, FinalizeIsIdempotentAtAFixedHorizon) {
  rrc_->data_activity(Duration::seconds(2));
  run_to(30);
  rrc_->finalize(at(30));
  const Duration idle_once = rrc_->time_in(RrcState::kIdle);
  rrc_->finalize(at(30));  // second flush at the same horizon adds nothing
  EXPECT_EQ(rrc_->time_in(RrcState::kIdle), idle_once);
}

TEST_F(RrcTest, FinalizeRejectsHorizonBeforeSpanStart) {
  rrc_->data_activity(Duration::seconds(2));
  run_to(10);  // FACH span opened at 7 s
  EXPECT_THROW(rrc_->finalize(at(5)), std::logic_error);
}

TEST_F(RrcTest, SkippingFinalizeDropsTheOpenSpan) {
  // Documents what the wiring bugfix is protecting against: without the
  // finalize() flush the trailing IDLE span is silently missing.
  rrc_->data_activity(Duration::seconds(2));
  run_to(30);
  const Duration unflushed = rrc_->time_in(RrcState::kIdle) +
                             rrc_->time_in(RrcState::kFach) +
                             rrc_->time_in(RrcState::kDch);
  EXPECT_LT(unflushed, Duration::seconds(30));
}

TEST_F(RrcTest, NegativeActivityRejected) {
  EXPECT_THROW(rrc_->data_activity(-Duration::seconds(1)), std::logic_error);
}

TEST_F(RrcTest, StateNames) {
  EXPECT_STREQ(to_string(RrcState::kIdle), "IDLE");
  EXPECT_STREQ(to_string(RrcState::kFach), "FACH");
  EXPECT_STREQ(to_string(RrcState::kDch), "DCH");
}

}  // namespace
}  // namespace simty::net
