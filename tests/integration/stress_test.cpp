// Randomized stress test: a storm of register/set/cancel operations
// interleaved with deliveries, under every policy. After every burst the
// manager's structural invariants must hold, and at the end all delivery
// guarantees must have been respected. This is the fuzz-style complement
// to the scenario-driven property sweep.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "alarm/exact_policy.hpp"
#include "alarm/fixed_interval_policy.hpp"
#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "common/rng.hpp"
#include "support/framework_fixture.hpp"

namespace simty {
namespace {

using alarm::AlarmId;
using alarm::AlarmSpec;
using alarm::RepeatMode;
using hw::Component;
using hw::ComponentSet;

struct StressCase {
  const char* policy;
  std::uint64_t seed;
};

std::string stress_name(const ::testing::TestParamInfo<StressCase>& info) {
  return std::string(info.param.policy) + "_s" + std::to_string(info.param.seed);
}

class ManagerStressTest : public test::FrameworkFixture,
                          public ::testing::WithParamInterface<StressCase> {
 protected:
  std::unique_ptr<alarm::AlignmentPolicy> make_policy(const std::string& name) {
    if (name == "native") return std::make_unique<alarm::NativePolicy>();
    if (name == "simty") return std::make_unique<alarm::SimtyPolicy>();
    if (name == "fixed") {
      return std::make_unique<alarm::FixedIntervalPolicy>(Duration::seconds(120));
    }
    return std::make_unique<alarm::ExactPolicy>();
  }
};

TEST_P(ManagerStressTest, RandomOperationStormKeepsInvariants) {
  const StressCase& p = GetParam();
  init(make_policy(p.policy));
  Rng rng(p.seed, 0x57E5);

  const ComponentSet kSets[] = {
      ComponentSet::none(), ComponentSet{Component::kWifi},
      ComponentSet{Component::kWps}, ComponentSet{Component::kAccelerometer},
      ComponentSet{Component::kSpeaker, Component::kVibrator}};

  std::vector<AlarmId> live;
  std::uint64_t next_tag = 0;

  auto register_random = [&] {
    const auto mode = rng.chance(0.2)   ? RepeatMode::kOneShot
                      : rng.chance(0.5) ? RepeatMode::kStatic
                                        : RepeatMode::kDynamic;
    const TimePoint first =
        sim_.now() + Duration::seconds(5 + static_cast<std::int64_t>(rng.next_below(300)));
    AlarmId id;
    if (mode == RepeatMode::kOneShot) {
      id = manager_->register_alarm(
          AlarmSpec::one_shot("one" + std::to_string(next_tag++), alarm::AppId{1},
                              Duration::seconds(rng.next_below(60))),
          first, task(kSets[rng.next_below(5)], Duration::seconds(1)));
    } else {
      const double alpha = rng.chance(0.4) ? 0.0 : 0.75;
      AlarmSpec spec = AlarmSpec::repeating(
          "rep" + std::to_string(next_tag++), alarm::AppId{1}, mode,
          Duration::seconds(60 + rng.next_below(600)), alpha, 0.96);
      if (rng.chance(0.2)) spec.kind = alarm::AlarmKind::kNonWakeup;
      id = manager_->register_alarm(spec, first,
                                    task(kSets[rng.next_below(5)],
                                         Duration::seconds(1 + rng.next_below(4))));
    }
    live.push_back(id);
  };

  for (int burst = 0; burst < 40; ++burst) {
    const int ops = 1 + static_cast<int>(rng.next_below(5));
    for (int op = 0; op < ops; ++op) {
      // Drop ids that disappeared (delivered one-shots).
      std::erase_if(live, [&](AlarmId id) { return !manager_->is_registered(id); });
      const double dice = rng.next_double();
      if (dice < 0.5 || live.empty()) {
        register_random();
      } else if (dice < 0.8) {
        const AlarmId victim = live[rng.next_below(
            static_cast<std::uint32_t>(live.size()))];
        manager_->set(victim,
                      sim_.now() + Duration::seconds(
                                       5 + static_cast<std::int64_t>(rng.next_below(400))));
      } else {
        const std::size_t idx = rng.next_below(static_cast<std::uint32_t>(live.size()));
        manager_->cancel(live[idx]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      }
      const auto issues = manager_->check_invariants();
      ASSERT_TRUE(issues.empty()) << issues.front() << "\n" << manager_->dump();
    }
    // Let time pass and deliveries happen.
    sim_.run_until(sim_.now() + Duration::seconds(30 + rng.next_below(300)));
    const auto issues = manager_->check_invariants();
    ASSERT_TRUE(issues.empty()) << issues.front() << "\n" << manager_->dump();
  }

  // Global delivery-guarantee audit over everything that happened.
  // Non-wakeup alarms are exempt from the postponement bounds: §3.2.2
  // applies to them only while the device stays awake; asleep, they wait
  // for the next wakeup like under the native policy.
  ASSERT_FALSE(deliveries_.empty());
  for (const auto& r : deliveries_) {
    EXPECT_GE(r.delivered, r.nominal) << r.tag;
    if (r.kind == alarm::AlarmKind::kNonWakeup) continue;
    if (r.was_perceptible) {
      EXPECT_LE(r.delivered, r.window.end() + model_.wake_latency) << r.tag;
    } else {
      EXPECT_LE(r.delivered,
                r.nominal + r.repeat_interval * 0.96 + model_.wake_latency)
          << r.tag;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StressSweep, ManagerStressTest,
    ::testing::Values(StressCase{"native", 1}, StressCase{"native", 2},
                      StressCase{"simty", 1}, StressCase{"simty", 2},
                      StressCase{"simty", 3}, StressCase{"exact", 1},
                      StressCase{"fixed", 1}, StressCase{"fixed", 2}),
    stress_name);

}  // namespace
}  // namespace simty
