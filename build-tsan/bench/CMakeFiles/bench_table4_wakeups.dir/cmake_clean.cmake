file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_wakeups.dir/bench_table4_wakeups.cpp.o"
  "CMakeFiles/bench_table4_wakeups.dir/bench_table4_wakeups.cpp.o.d"
  "bench_table4_wakeups"
  "bench_table4_wakeups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_wakeups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
