file(REMOVE_RECURSE
  "libsimty_common.a"
)
