#include "exp/reporting.hpp"

#include <gtest/gtest.h>

namespace simty::exp {
namespace {

RunResult sample(double total_j, double awake_j) {
  RunResult r;
  r.policy_name = "NATIVE";
  r.energy.sleep = Energy::joules(total_j - awake_j);
  r.energy.awake_base = Energy::joules(awake_j);
  r.average_power_mw = 60.0;
  r.projected_standby_hours = 140.0;
  r.delay_perceptible = 0.0;
  r.delay_imperceptible = 0.179;
  r.wakeups = {{"CPU", 733, 983}, {"Speaker&Vibrator", 6, 6}, {"Wi-Fi", 443, 548},
               {"WPS", 0, 0}, {"Accelerometer", 0, 0}};
  r.worst_gap_ratio = 1.95;
  return r;
}

TEST(Reporting, EnergyFigureShowsRowsAndSavings) {
  const std::vector<NamedResult> cols = {{"NATIVE", sample(700, 460)},
                                         {"SIMTY", sample(560, 310)}};
  const std::string out = render_energy_figure(cols);
  EXPECT_NE(out.find("awake (alignable)"), std::string::npos);
  EXPECT_NE(out.find("sleep (floor)"), std::string::npos);
  EXPECT_NE(out.find("NATIVE"), std::string::npos);
  EXPECT_NE(out.find("700.0"), std::string::npos);
  // 1 - 560/700 = 20%.
  EXPECT_NE(out.find("20.0%"), std::string::npos);
}

TEST(Reporting, DelayFigureShowsPercentages) {
  const std::vector<NamedResult> cols = {{"SIMTY", sample(700, 460)}};
  const std::string out = render_delay_figure(cols);
  EXPECT_NE(out.find("perceptible"), std::string::npos);
  EXPECT_NE(out.find("17.9%"), std::string::npos);
  EXPECT_NE(out.find("0.0%"), std::string::npos);
}

TEST(Reporting, WakeupTableShowsRatios) {
  const std::vector<NamedResult> cols = {{"NATIVE", sample(700, 460)}};
  const std::string out = render_wakeup_table(cols);
  EXPECT_NE(out.find("733/983"), std::string::npos);
  EXPECT_NE(out.find("443/548"), std::string::npos);
  EXPECT_NE(out.find("Accelerometer"), std::string::npos);
}

TEST(Reporting, StandbyProjection) {
  const std::vector<NamedResult> cols = {{"NATIVE", sample(700, 460)},
                                         {"SIMTY", sample(560, 310)}};
  const std::string out = render_standby_projection(cols);
  EXPECT_NE(out.find("140.0"), std::string::npos);
  EXPECT_NE(out.find("extension"), std::string::npos);
}

TEST(Reporting, GuaranteeAudit) {
  const std::vector<NamedResult> cols = {{"SIMTY", sample(700, 460)}};
  const std::string out = render_guarantee_audit(cols);
  EXPECT_NE(out.find("1.950"), std::string::npos);
}

TEST(Reporting, PagingTableOnlyRendersWhenTheScenarioRan) {
  // No paging activity anywhere: unconditionally printable empty string.
  const std::vector<NamedResult> off = {{"SIMTY", sample(700, 460)}};
  EXPECT_EQ(render_paging_table(off), "");

  RunResult r = sample(700, 460);
  r.pages_answered = 167;
  r.page_delay_avg_s = 0.626;
  r.page_delay_p95_s = 1.441;
  r.drx_listen_seconds = 37.07;
  const std::vector<NamedResult> on = {{"SIMTY+DRX", r}};
  const std::string out = render_paging_table(on);
  EXPECT_NE(out.find("pages answered"), std::string::npos);
  EXPECT_NE(out.find("167.0"), std::string::npos);
  EXPECT_NE(out.find("0.626"), std::string::npos);
  EXPECT_NE(out.find("37.07"), std::string::npos);
  EXPECT_NE(out.find("WuR triggers"), std::string::npos);
}

TEST(Reporting, CsvHasHeaderAndOneRowPerColumn) {
  const std::vector<NamedResult> cols = {{"L-NATIVE", sample(700, 460)},
                                         {"L-SIMTY", sample(560, 310)}};
  const std::string out = results_csv(cols);
  EXPECT_EQ(out.find("label,policy,awake_J"), 0u);
  int lines = 0;
  for (const char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);  // header + 2 rows
  EXPECT_NE(out.find("L-NATIVE"), std::string::npos);
  EXPECT_NE(out.find("733"), std::string::npos);
}

}  // namespace
}  // namespace simty::exp
