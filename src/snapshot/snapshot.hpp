#pragma once
// Versioned little-endian snapshot container (resumable run state).
//
// Same byte discipline as the SMTYTRC1 trace format (trace/tracer.cpp):
// every integer is little-endian regardless of host order, doubles travel
// as raw IEEE-754 bit patterns (bit-exact, no text round-trip), and the
// reader bounds-checks every length before it allocates or advances.
//
// Layout:
//   magic "SMTYSNP1"
//   u32 format version (kFormatVersion)
//   u32 section count, then per section:
//     u32 name length + name bytes
//     u32 section version (bumped when a component's field list changes)
//     u64 payload length + payload bytes
//
// A section payload is a flat sequence of *tagged* fields: one FieldType
// byte, then the value (u8/u32/u64/i64/f64 fixed-size; bytes/str carry a
// u64 length). The tags buy two things: restore code self-checks against
// schema skew (reading a u32 where a u64 was written fails loudly instead
// of desynchronizing the stream), and tools/snapshot_diff can walk any
// snapshot generically and name the first divergent section/field without
// knowing component schemas.
//
// Malformed input — bad magic, truncated section, version skew, a length
// that overruns the buffer, an unknown tag — is rejected with SIMTY_CHECK
// (std::logic_error), never undefined behavior; tests/snapshot feeds this
// reader randomized corruptions under the ASan/UBSan CI job.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace simty::snapshot {

inline constexpr std::uint32_t kFormatVersion = 1;

/// Tag byte preceding every field in a section payload.
enum class FieldType : std::uint8_t {
  kU8 = 1,
  kU32 = 2,
  kU64 = 3,
  kI64 = 4,
  kF64 = 5,  // raw IEEE-754 bit pattern, little-endian
  kBytes = 6,
  kStr = 7,
};

/// Serializes sections of tagged fields; finish() yields the container.
class Writer {
 public:
  /// Opens a section; fields written next belong to it. Section names must
  /// be unique within a snapshot and are matched exactly by the reader.
  void begin_section(std::string_view name, std::uint32_t version);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view v);
  void bytes(std::string_view v);

  /// Assembles magic + header + all sections. The writer is spent after.
  std::string finish();

 private:
  struct Section {
    std::string name;
    std::uint32_t version = 0;
    std::string payload;
  };
  void require_open() const;
  std::vector<Section> sections_;
  bool open_ = false;
};

/// Bounds-checked reader over one section's payload. Every accessor
/// verifies the tag byte before consuming the value.
class SectionReader {
 public:
  SectionReader(std::string_view name, std::uint32_t version,
                std::string_view payload)
      : name_(name), version_(version), payload_(payload) {}

  std::string_view name() const { return name_; }
  std::uint32_t version() const { return version_; }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();
  std::string bytes();

  /// Guards a count read from the payload before it sizes an allocation:
  /// `n` items of at least `min_bytes_each` serialized bytes must still fit
  /// in the unread payload, so a hostile count cannot trigger a huge
  /// reserve before the truncation is noticed.
  void check_count(std::uint64_t n, std::size_t min_bytes_each) const;

  std::size_t remaining() const { return payload_.size() - pos_; }
  bool at_end() const { return pos_ == payload_.size(); }

  /// Next field's tag byte without consuming it (generic decode walks).
  std::uint8_t peek_tag() const;

 private:
  std::uint8_t take_tag(FieldType want);
  std::uint64_t read_le(std::size_t n);
  std::string_view name_;
  std::uint32_t version_ = 0;
  std::string_view payload_;
  std::size_t pos_ = 0;
};

/// Parses the container header and section table (validating magic, format
/// version, and every length against the buffer). Section payloads are not
/// interpreted until a SectionReader walks them.
class Reader {
 public:
  /// Takes ownership of the raw bytes; throws via SIMTY_CHECK on a
  /// malformed container.
  explicit Reader(std::string bytes);

  bool has_section(std::string_view name) const;

  /// Opens section `name`, checking it exists and its recorded version is
  /// exactly `version` (schema changes must bump the component's version).
  SectionReader section(std::string_view name, std::uint32_t version) const;

  std::size_t section_count() const { return sections_.size(); }
  /// Section name by container order (for generic walks).
  std::string_view section_name(std::size_t i) const;
  /// Opens section `i` without a version check (diff/decode tooling).
  SectionReader section_at(std::size_t i) const;

 private:
  struct Entry {
    std::string_view name;  // into bytes_
    std::uint32_t version = 0;
    std::string_view payload;  // into bytes_
  };
  std::string bytes_;
  std::vector<Entry> sections_;
};

// ---------------------------------------------------------------------------
// Generic decode + diff (tools/snapshot_diff), mirroring trace_diff
// semantics: equal -> exit 0, first divergence named -> exit 1, malformed
// input -> exception -> exit 2.

struct DecodedField {
  FieldType type = FieldType::kU8;
  std::string repr;  // deterministic text rendering of the value
};

struct DecodedSection {
  std::string name;
  std::uint32_t version = 0;
  std::vector<DecodedField> fields;
};

struct DecodedSnapshot {
  std::vector<DecodedSection> sections;
};

/// Fully decodes a snapshot, validating every field tag and length.
DecodedSnapshot decode_snapshot(const std::string& bytes);

struct SnapshotDiff {
  bool equal = false;
  std::string summary;  // first divergence, human-readable
};

/// Compares two decoded snapshots; names the first divergent
/// section/field ("section 'queue' field #12 (u64): 42 vs 43").
SnapshotDiff diff_snapshots(const DecodedSnapshot& a, const DecodedSnapshot& b);

/// Field-type name for diagnostics ("u64", "str", ...).
const char* to_string(FieldType t);

/// Reads a whole file; throws std::runtime_error on I/O failure.
std::string read_file(const std::string& path);

/// Writes bytes to `path`; throws std::runtime_error on I/O failure.
void write_file(const std::string& path, const std::string& bytes);

/// Writes bytes to `path` via a same-directory temporary + rename, so a
/// crash mid-write never leaves a torn file (fleet shard checkpoints).
void write_file_atomic(const std::string& path, const std::string& bytes);

}  // namespace simty::snapshot
