# Empty dependencies file for test_power.
# This may be replaced when dependencies are built.
