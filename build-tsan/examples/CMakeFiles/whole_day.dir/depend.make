# Empty dependencies file for whole_day.
# This may be replaced when dependencies are built.
