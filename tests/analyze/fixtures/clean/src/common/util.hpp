#pragma once
namespace fx::common {
int clamp01(int v);
}
