#include "apps/workload.hpp"

#include "apps/app_catalog.hpp"
#include "common/check.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::apps {

Workload::Workload(WorkloadConfig config) : config_(config) {}

void Workload::add_profiles(const std::vector<AppProfile>& profiles, Rng& rng) {
  for (AppProfile p : profiles) {
    if (config_.retry_probability >= 0.0) {
      p.retry_probability = config_.retry_probability;
    }
    if (p.irregular) {
      // The paper's methodology: irregular apps are replaced by imitated
      // apps replaying a pre-recorded trace. The trace seed is derived from
      // the app name only, NOT the run seed — the same trace is replayed
      // under NATIVE and SIMTY for a fair comparison.
      std::uint64_t name_hash = 1469598103934665603ULL;
      for (const char c : p.name) {
        name_hash = (name_hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
      }
      AppTrace trace = record_trace(p, config_.trace_length, name_hash);
      apps_.push_back(std::make_unique<ImitatedApp>(p, std::move(trace)));
    } else {
      apps_.push_back(std::make_unique<ResidentApp>(p, rng.fork(apps_.size())));
    }
  }
}

Workload Workload::light(const WorkloadConfig& config) {
  Workload w(config);
  Rng rng(config.seed, 0xA11);
  w.add_profiles(light_workload_profiles(), rng);
  return w;
}

Workload Workload::heavy(const WorkloadConfig& config) {
  Workload w(config);
  Rng rng(config.seed, 0xB22);
  w.add_profiles(heavy_workload_profiles(), rng);
  return w;
}

Workload Workload::from_imitations(
    std::vector<std::pair<AppProfile, AppTrace>> imitations,
    const WorkloadConfig& config) {
  SIMTY_CHECK_MSG(!imitations.empty(), "imitation workload needs at least one app");
  Workload w(config);
  for (auto& [profile, trace] : imitations) {
    w.apps_.push_back(std::make_unique<ImitatedApp>(profile, std::move(trace)));
  }
  return w;
}

Workload Workload::from_profiles(const std::vector<AppProfile>& profiles,
                                 const WorkloadConfig& config) {
  SIMTY_CHECK_MSG(!profiles.empty(), "custom workload needs at least one profile");
  Workload w(config);
  Rng rng(config.seed, 0xD44);
  w.add_profiles(profiles, rng);
  return w;
}

Workload Workload::synthetic(std::size_t n, const WorkloadConfig& config) {
  SIMTY_CHECK(n > 0);
  Workload w(config);
  Rng rng(config.seed, 0xC33);

  // Attribute ranges mirror Table 3's population: mostly Wi-Fi messengers,
  // some sensors, occasional notifiers.
  static const std::int64_t kRepeats[] = {60, 90, 180, 200, 270, 300, 600, 900};
  for (std::size_t i = 0; i < n; ++i) {
    AppProfile p;
    p.name = "synth" + std::to_string(i);
    p.repeat = Duration::seconds(kRepeats[rng.next_below(8)]);
    p.alpha = rng.chance(0.5) ? 0.75 : 0.0;
    p.mode = rng.chance(0.5) ? alarm::RepeatMode::kDynamic : alarm::RepeatMode::kStatic;
    const double kind = rng.next_double();
    if (kind < 0.70) {
      p.hardware = hw::ComponentSet{hw::Component::kWifi};
      p.base_hold = Duration::from_seconds(rng.uniform(1.5, 3.0));
    } else if (kind < 0.85) {
      p.hardware = hw::ComponentSet{hw::Component::kAccelerometer};
      p.base_hold = Duration::from_seconds(rng.uniform(1.0, 3.0));
    } else if (kind < 0.95) {
      p.hardware = hw::ComponentSet{hw::Component::kWps};
      p.base_hold = Duration::seconds(10);
    } else {
      p.hardware =
          hw::ComponentSet{hw::Component::kSpeaker, hw::Component::kVibrator};
      p.base_hold = Duration::seconds(1);
    }
    p.hold_jitter = 0.3;
    w.apps_.push_back(std::make_unique<ResidentApp>(p, rng.fork(1000 + i)));
  }
  return w;
}

void Workload::deploy(sim::Simulator& sim, alarm::AlarmManager& manager,
                      const net::WifiLink* link) {
  TimePoint launch = TimePoint::origin() + config_.first_launch;
  std::uint32_t app_seq = 1;
  launch_events_.clear();
  launch_events_.reserve(apps_.size());
  for (const auto& app : apps_) {
    ResidentApp* raw = app.get();
    raw->attach_link(link);
    const alarm::AppId id{app_seq++};
    const double beta = config_.beta;
    launch_events_.push_back(sim.schedule_at(
        launch,
        [raw, &manager, &sim, id, beta] {
          raw->launch(manager, sim.now(), id, beta);
        },
        sim::EventPriority::kApp, "app-launch"));
    launch += config_.launch_gap;
  }
}

alarm::DeliveryHandler Workload::handler_for(alarm::AlarmManager& manager,
                                             alarm::AppId app,
                                             const std::string& tag) {
  if (app.value == 0 || app.value > apps_.size()) return {};
  ResidentApp& owner = *apps_[app.value - 1];
  const std::string& name = owner.profile().name;
  if (tag == name + ".major") return owner.major_handler(manager);
  if (tag.rfind(name + ".retry.", 0) == 0) return owner.retry_handler();
  return {};
}

void Workload::save(snapshot::Writer& w) const {
  w.u64(apps_.size());
  for (const auto& app : apps_) app->save(w);
  w.u64(launch_events_.size());
  for (const sim::EventId id : launch_events_) w.u64(id.value);
}

void Workload::restore(snapshot::SectionReader& s, sim::Simulator& sim,
                       alarm::AlarmManager& manager) {
  const std::uint64_t app_count = s.u64();
  SIMTY_CHECK_MSG(app_count == apps_.size(),
                  "Workload::restore: app count mismatch with the snapshot");
  for (const auto& app : apps_) app->restore(s);
  const std::uint64_t event_count = s.u64();
  SIMTY_CHECK_MSG(event_count == launch_events_.size(),
                  "Workload::restore: launch event count mismatch");
  s.check_count(event_count, 9);
  for (std::size_t i = 0; i < launch_events_.size(); ++i) {
    launch_events_[i] = sim::EventId{s.u64()};
    // A launch that already fired left its alarm id behind; only still-
    // pending launches have a live event to rebind. Rebinding captures the
    // workload-config β — matching the straight run, where the launch
    // closure was built before any β switch.
    if (apps_[i]->alarm_id().has_value()) continue;
    ResidentApp* raw = apps_[i].get();
    const alarm::AppId id{static_cast<std::uint32_t>(i + 1)};
    const double beta = config_.beta;
    sim.rebind(launch_events_[i], [raw, &manager, &sim, id, beta] {
      raw->launch(manager, sim.now(), id, beta);
    });
  }
}

}  // namespace simty::apps
