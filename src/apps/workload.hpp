#pragma once
// Workload assembly: the paper's light/heavy scenarios plus a synthetic
// generator for scalability studies.
//
// Deployment mimics the experimental protocol of §4.1: apps are installed
// and launched sequentially after a factory reset, so their major alarms
// start phase-shifted; irregular apps are replaced by imitated apps
// replaying pre-recorded traces.

#include <memory>
#include <vector>

#include "alarm/alarm_manager.hpp"
#include "apps/app.hpp"
#include "apps/trace_replay.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::apps {

/// Workload-wide knobs.
struct WorkloadConfig {
  std::uint64_t seed = 1;

  /// Grace factor beta assigned to every alarm (§4.1 uses 0.96).
  double beta = kPaperBeta;

  /// Apps launch sequentially, one every `launch_gap` starting at
  /// `first_launch` — the "installed and launched the pre-selected apps"
  /// phase before standby begins.
  Duration first_launch = Duration::seconds(5);
  Duration launch_gap = Duration::seconds(7);

  /// Trace length recorded per irregular app before the run.
  std::size_t trace_length = 256;

  /// Overrides every profile's retry probability when set (>= 0). The
  /// paper workloads keep retries off; the knob exists for composition
  /// studies of one-shot traffic.
  double retry_probability = -1.0;
};

/// A set of resident apps ready to deploy into a simulation.
class Workload {
 public:
  /// The paper's light workload: 11 Wi-Fi messengers + Alarm Clock.
  static Workload light(const WorkloadConfig& config);

  /// The paper's heavy workload: all 18 apps (5 of them imitated).
  static Workload heavy(const WorkloadConfig& config);

  /// Synthetic workload of `n` apps with randomized attributes drawn from
  /// Table-3-like ranges (for scalability sweeps).
  static Workload synthetic(std::size_t n, const WorkloadConfig& config);

  /// Workload from caller-supplied profiles (custom scenarios); irregular
  /// profiles get trace-replay imitations exactly like the heavy workload.
  static Workload from_profiles(const std::vector<AppProfile>& profiles,
                                const WorkloadConfig& config);

  /// Workload of imitated apps replaying caller-supplied traces verbatim
  /// (e.g. traces extracted from a recorded delivery log).
  static Workload from_imitations(
      std::vector<std::pair<AppProfile, AppTrace>> imitations,
      const WorkloadConfig& config);

  Workload(Workload&&) = default;
  Workload& operator=(Workload&&) = default;

  /// Schedules the sequential app launches into `sim`. Call before running.
  /// When `link` is non-null it is attached to every app, so payload-
  /// carrying syncs follow the instantaneous link rate.
  void deploy(sim::Simulator& sim, alarm::AlarmManager& manager,
              const net::WifiLink* link = nullptr);

  const std::vector<std::unique_ptr<ResidentApp>>& apps() const { return apps_; }
  const WorkloadConfig& config() const { return config_; }

  /// Resolves delivery handlers for this workload's alarms on restore:
  /// "<name>.major" and "<name>.retry.N" tags map back to the deployed
  /// app's handlers. Returns an empty handler for foreign tags.
  alarm::DeliveryHandler handler_for(alarm::AlarmManager& manager,
                                     alarm::AppId app, const std::string& tag);

  /// Serializes per-app state and the pending launch events. restore()
  /// requires an identically constructed (same factory, config) and
  /// deploy()ed workload; launches that had not fired yet are rebound.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s, sim::Simulator& sim,
               alarm::AlarmManager& manager);

 private:
  explicit Workload(WorkloadConfig config);
  void add_profiles(const std::vector<AppProfile>& profiles, Rng& rng);

  WorkloadConfig config_;
  std::vector<std::unique_ptr<ResidentApp>> apps_;
  std::vector<sim::EventId> launch_events_;  // one per app, filled by deploy()
};

}  // namespace simty::apps
