#include "hw/device.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/tracer.hpp"

namespace simty::hw {

const char* to_string(WakeReason r) {
  switch (r) {
    case WakeReason::kRtcAlarm: return "rtc-alarm";
    case WakeReason::kExternalPush: return "external-push";
    case WakeReason::kUserButton: return "user-button";
  }
  return "?";
}

namespace {
Power base_level_for(const PowerModel& m, DeviceState s) {
  switch (s) {
    case DeviceState::kAsleep: return m.sleep;
    case DeviceState::kWaking: return m.waking;
    case DeviceState::kAwake: return m.awake_base;
  }
  return Power::zero();
}
}  // namespace

Device::Device(sim::Simulator& sim, const PowerModel& model, PowerBus& bus)
    : sim_(sim), model_(model), bus_(bus) {
  bus_.publish_device_state(sim_.now(), state_, base_level_for(model_, state_));
}

void Device::request_awake(WakeReason reason, std::function<void()> on_ready) {
  SIMTY_CHECK(static_cast<bool>(on_ready));
  switch (state_) {
    case DeviceState::kAwake:
      on_ready();
      // Activity extends the linger window; if the callback acquired no CPU
      // lock the device still suspends after a fresh idle-linger interval.
      if (cpu_locks_ == 0) arm_sleep_timer();
      return;
    case DeviceState::kWaking:
      pending_ready_.emplace_back(reason, std::move(on_ready));
      return;
    case DeviceState::kAsleep: {
      pending_ready_.emplace_back(reason, std::move(on_ready));
      current_wake_reason_ = reason;
      enter_state(DeviceState::kWaking);
      bus_.publish_impulse(sim_.now(), model_.wake_transition,
                           ImpulseKind::kWakeTransition, to_string(reason));
      wake_event_ = sim_.schedule_at(
          sim_.now() + model_.wake_latency, [this] { complete_wake(); },
          sim::EventPriority::kHardware, "device-wake-complete");
      return;
    }
  }
}

void Device::complete_wake() {
  SIMTY_CHECK(state_ == DeviceState::kWaking);
  wake_event_.reset();
  enter_state(DeviceState::kAwake);
  ++wakeup_count_;
  ++wakeups_by_reason_[static_cast<std::size_t>(current_wake_reason_)];

  // Run the requesters queued during the transition, then the wake
  // listeners (e.g. the alarm manager flushing non-wakeup alarms).
  auto pending = std::move(pending_ready_);
  pending_ready_.clear();
  for (auto& [reason, cb] : pending) cb();
  for (auto& listener : wake_listeners_) listener(current_wake_reason_);

  if (cpu_locks_ == 0) arm_sleep_timer();
}

void Device::acquire_cpu_lock() {
  SIMTY_CHECK_MSG(state_ == DeviceState::kAwake,
                  "cpu wakelock acquired while not awake");
  ++cpu_locks_;
  SIMTY_TRACE_COUNTER(sim_.now(), trace::TraceCategory::kHw, "cpu-locks",
                      static_cast<std::int64_t>(cpu_locks_));
  disarm_sleep_timer();
}

void Device::release_cpu_lock() {
  SIMTY_CHECK_MSG(cpu_locks_ > 0, "cpu wakelock underflow");
  --cpu_locks_;
  SIMTY_TRACE_COUNTER(sim_.now(), trace::TraceCategory::kHw, "cpu-locks",
                      static_cast<std::int64_t>(cpu_locks_));
  if (cpu_locks_ == 0 && state_ == DeviceState::kAwake) arm_sleep_timer();
}

void Device::add_wake_listener(std::function<void(WakeReason)> listener) {
  SIMTY_CHECK(static_cast<bool>(listener));
  wake_listeners_.push_back(std::move(listener));
}

std::uint64_t Device::wakeups_for(WakeReason r) const {
  return wakeups_by_reason_[static_cast<std::size_t>(r)];
}

Duration Device::total_awake_time() const {
  return time_in_state_[static_cast<std::size_t>(DeviceState::kAwake)];
}

Duration Device::total_asleep_time() const {
  return time_in_state_[static_cast<std::size_t>(DeviceState::kAsleep)];
}

void Device::finalize(TimePoint now) {
  SIMTY_CHECK(now >= state_since_);
  time_in_state_[static_cast<std::size_t>(state_)] += now - state_since_;
  state_since_ = now;
}

void Device::save(snapshot::Writer& w) const {
  SIMTY_CHECK_MSG(quiescent(), "Device::save: checkpoint outside a quiescent instant");
  w.u8(static_cast<std::uint8_t>(state_));
  w.i64(state_since_.us());
  w.u8(static_cast<std::uint8_t>(current_wake_reason_));
  w.u64(wakeup_count_);
  for (const std::uint64_t n : wakeups_by_reason_) w.u64(n);
  for (const Duration d : time_in_state_) w.i64(d.us());
}

void Device::restore(snapshot::SectionReader& s) {
  const std::uint8_t state = s.u8();
  SIMTY_CHECK_MSG(state == static_cast<std::uint8_t>(DeviceState::kAsleep),
                  "Device::restore: snapshot not taken at a quiescent instant");
  state_ = DeviceState::kAsleep;
  state_since_ = TimePoint::from_us(s.i64());
  const std::uint8_t reason = s.u8();
  SIMTY_CHECK_MSG(reason < 3, "Device::restore: wake reason out of range");
  current_wake_reason_ = static_cast<WakeReason>(reason);
  wakeup_count_ = s.u64();
  for (std::uint64_t& n : wakeups_by_reason_) n = s.u64();
  for (Duration& d : time_in_state_) d = Duration::micros(s.i64());
  cpu_locks_ = 0;
  pending_ready_.clear();
  wake_event_.reset();
  sleep_event_.reset();
  // Re-announce the (asleep) base rail so a fresh bus listener stack starts
  // from the restored state rather than the constructor's t=0 publish.
  bus_.publish_device_state(sim_.now(), state_, base_level_for(model_, state_));
}

void Device::enter_state(DeviceState next) {
  const TimePoint now = sim_.now();
  time_in_state_[static_cast<std::size_t>(state_)] += now - state_since_;
  state_since_ = now;
  state_ = next;
  SIMTY_TRACE_INSTANT(now, trace::TraceCategory::kHw, "device-state",
                      static_cast<std::int64_t>(state_));
  bus_.publish_device_state(now, state_, base_level_for(model_, state_));
  SIMTY_DEBUG(str_format("device -> %s at %.3fs", hw::to_string(state_),
                         now.seconds_f()));
}

void Device::arm_sleep_timer() {
  disarm_sleep_timer();
  // Observer priority: if work lands at the exact expiry instant, it runs
  // first and re-acquires before the device suspends.
  sleep_event_ = sim_.schedule_at(
      sim_.now() + model_.idle_linger,
      [this] {
        sleep_event_.reset();
        if (cpu_locks_ == 0 && state_ == DeviceState::kAwake) {
          enter_state(DeviceState::kAsleep);
        }
      },
      sim::EventPriority::kObserver, "device-suspend");
}

void Device::disarm_sleep_timer() {
  if (sleep_event_) {
    sim_.cancel(*sleep_event_);
    sleep_event_.reset();
  }
}

}  // namespace simty::hw
