// Property tests for the fleet aggregation layer: Welford pairwise merging
// against a two-pass reference, determinism/associativity of the merge
// tree, and histogram percentile bracketing on adversarial distributions.

#include "fleet/aggregate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace simty::fleet {
namespace {

// Tolerance scaled to the magnitude of the quantities involved — "within
// `ulps` rounding steps of the reference", not an absolute epsilon.
void expect_close(double actual, double reference, double scale, double ulps) {
  const double tol =
      ulps * std::numeric_limits<double>::epsilon() * std::max(scale, 1.0);
  EXPECT_NEAR(actual, reference, tol)
      << "actual " << actual << " reference " << reference << " scale " << scale;
}

// Two-pass reference: exact mean first, then centered squares.
void two_pass(const std::vector<double>& xs, double* mean, double* variance) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  *mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - *mean) * (x - *mean);
  *variance = xs.size() < 2 ? 0.0 : m2 / static_cast<double>(xs.size() - 1);
}

// Splits xs into runs at random boundaries and Welford-accumulates each run.
std::vector<OnlineStats> random_shards(const std::vector<double>& xs, Rng& rng,
                                       std::uint32_t max_shards) {
  const std::uint32_t shard_count = 1 + rng.next_below(max_shards);
  std::vector<OnlineStats> shards(shard_count);
  for (const double x : xs) {
    shards[rng.next_below(shard_count)].add(x);
  }
  std::vector<OnlineStats> non_empty;
  for (const OnlineStats& s : shards) {
    if (!s.empty()) non_empty.push_back(s);
  }
  return non_empty;
}

TEST(WelfordMerge, PairwiseTreeMatchesTwoPassOnRandomizedSplits) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    // Mix of scales: uniform, normal around a large mean, exponential.
    std::vector<double> xs;
    const int n = 500 + static_cast<int>(rng.next_below(2000));
    const double offset = rng.chance(0.5) ? 0.0 : 1e6;
    for (int i = 0; i < n; ++i) {
      xs.push_back(offset + rng.normal(50.0, 12.0));
    }
    double ref_mean = 0.0, ref_var = 0.0;
    two_pass(xs, &ref_mean, &ref_var);

    const OnlineStats merged = merge_pairwise(random_shards(xs, rng, 17));
    ASSERT_EQ(merged.count(), xs.size());
    // Welford + pairwise merging stays within ulp-scaled rounding of the
    // two-pass reference even with the 1e6 offset; a sum-of-squares
    // formulation would be off by many orders of magnitude here. The
    // allowance grows with n (n rounded additions on each side).
    const double nd = static_cast<double>(n);
    expect_close(merged.mean(), ref_mean, std::abs(ref_mean), 16.0 * nd);
    expect_close(merged.variance(), ref_var, ref_var, 64.0 * nd);
    EXPECT_EQ(merged.min(), *std::min_element(xs.begin(), xs.end()));
    EXPECT_EQ(merged.max(), *std::max_element(xs.begin(), xs.end()));
  }
}

TEST(WelfordMerge, LargeMeanSmallVarianceSurvives) {
  // Catastrophic-cancellation regression guard: mean 1e9, stddev 1 — a
  // condition number of ~1e18, where the textbook E[x^2] - E[x]^2 single
  // pass returns pure garbage (ulp(E[x^2]) ~ 128 > the variance itself).
  // The reference shifts by the exact offset first (x - 1e9 is exact in
  // doubles for values this close), so it is near-exact.
  Rng rng(7);
  std::vector<double> xs, shifted;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(rng.normal(1e9, 1.0));
    shifted.push_back(xs.back() - 1e9);
  }
  double ref_mean = 0.0, ref_var = 0.0;
  two_pass(shifted, &ref_mean, &ref_var);
  ref_mean += 1e9;
  ASSERT_GT(ref_var, 0.0);

  const OnlineStats merged = merge_pairwise(random_shards(xs, rng, 13));
  EXPECT_GE(merged.variance(), 0.0);
  EXPECT_NEAR(merged.variance() / ref_var, 1.0, 1e-6);
  expect_close(merged.mean(), ref_mean, ref_mean, 64.0);

  OnlineStats serial;
  for (const double x : xs) serial.add(x);
  EXPECT_GE(serial.variance(), 0.0);
  EXPECT_NEAR(serial.variance() / ref_var, 1.0, 1e-6);

  // Shift invariance: the same data centered at zero gives the same
  // variance to high relative accuracy.
  OnlineStats centered;
  for (const double y : shifted) centered.add(y);
  EXPECT_NEAR(serial.variance() / centered.variance(), 1.0, 1e-6);
}

TEST(WelfordMerge, PairwiseTreeIsDeterministic) {
  // Same shards in, bit-identical result out — twice, and regardless of
  // how many empty accumulators surround the data.
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 777; ++i) xs.push_back(rng.exponential(3.0));
  Rng split_a(5), split_b(5);
  const OnlineStats a = merge_pairwise(random_shards(xs, split_a, 9));
  const OnlineStats b = merge_pairwise(random_shards(xs, split_b, 9));
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

TEST(WelfordMerge, TreeOrderIsAssociativeWithinTolerance) {
  // Different tree shapes give different rounding but the same value to
  // ulp-scale: compare the balanced pairwise tree against a left fold.
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(rng.uniform(0.0, 100.0));
  std::vector<OnlineStats> shards = random_shards(xs, rng, 15);

  OnlineStats left_fold = shards.front();
  for (std::size_t i = 1; i < shards.size(); ++i) left_fold.merge(shards[i]);
  const OnlineStats tree = merge_pairwise(std::move(shards));

  EXPECT_EQ(tree.count(), left_fold.count());
  const double nd = static_cast<double>(xs.size());
  expect_close(tree.mean(), left_fold.mean(), std::abs(left_fold.mean()),
               16.0 * nd);
  expect_close(tree.variance(), left_fold.variance(), left_fold.variance(),
               64.0 * nd);
  EXPECT_EQ(tree.min(), left_fold.min());
  EXPECT_EQ(tree.max(), left_fold.max());
}

TEST(MergePairwise, ThrowsOnEmptyAndHandlesSingleton) {
  EXPECT_THROW(merge_pairwise(std::vector<OnlineStats>{}), std::logic_error);
  OnlineStats one;
  one.add(5.0);
  const OnlineStats out = merge_pairwise(std::vector<OnlineStats>{one});
  EXPECT_EQ(out.count(), 1u);
  EXPECT_EQ(out.mean(), 5.0);
}

// --- Histogram percentile bracketing -------------------------------------

// The sketch quantile must bracket the exact quantile: when the exact
// quantile lies under the histogram range, the sketch lands in the same
// bucket (error <= one bucket width); when it overflows, the sketch
// resolves to the observed max, which is >= the exact quantile.
void expect_brackets(const metrics::Histogram& h, std::vector<double> xs,
                     double q) {
  std::sort(xs.begin(), xs.end());
  const double target = q * static_cast<double>(xs.size());
  const std::size_t rank = target <= 1.0 ? 0
                                         : std::min(xs.size() - 1,
                                                    static_cast<std::size_t>(
                                                        std::ceil(target)) -
                                                        1);
  const double exact = xs[rank];
  const double sketch = h.quantile(q);
  const double width = h.bucket_width();
  if (exact < h.bucket_width() * static_cast<double>(h.buckets().size())) {
    EXPECT_NEAR(sketch, exact, width * (1.0 + 1e-9))
        << "q=" << q << " exact=" << exact << " sketch=" << sketch;
  } else {
    EXPECT_GE(sketch + 1e-12, exact) << "q=" << q;
    EXPECT_LE(sketch, h.max()) << "q=" << q;
  }
}

TEST(HistogramSketch, BracketsQuantilesOnConstantDistribution) {
  metrics::Histogram h(10.0, 100);
  std::vector<double> xs(5000, 7.25);
  for (const double x : xs) h.add(x);
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    expect_brackets(h, xs, q);
  }
}

TEST(HistogramSketch, BracketsQuantilesOnBimodalDistribution) {
  Rng rng(3);
  metrics::Histogram h(10.0, 200);
  std::vector<double> xs;
  for (int i = 0; i < 6000; ++i) {
    xs.push_back(rng.chance(0.5) ? rng.uniform(0.9, 1.1) : rng.uniform(8.9, 9.1));
  }
  for (const double x : xs) h.add(x);
  for (const double q : {0.01, 0.25, 0.49, 0.51, 0.75, 0.95, 0.99}) {
    expect_brackets(h, xs, q);
  }
}

TEST(HistogramSketch, BracketsQuantilesOnHeavyTailWithOverflow) {
  Rng rng(17);
  metrics::Histogram h(50.0, 250);
  std::vector<double> xs;
  for (int i = 0; i < 8000; ++i) {
    // Log-normal-ish heavy tail: a visible fraction overflows the sketch.
    xs.push_back(std::exp(rng.normal(1.5, 1.2)));
  }
  for (const double x : xs) h.add(x);
  EXPECT_GT(h.overflow(), 0u);
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    expect_brackets(h, xs, q);
  }
}

TEST(HistogramMerge, ShardedSketchMatchesSinglePassBitExactly) {
  Rng rng(23);
  metrics::Histogram whole(20.0, 128);
  std::vector<metrics::Histogram> shards(7, metrics::Histogram(20.0, 128));
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(6.0);  // some overflow past 20
    whole.add(x);
    shards[static_cast<std::size_t>(i) % shards.size()].add(x);
  }
  metrics::Histogram merged = merge_pairwise(std::move(shards));
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.overflow(), whole.overflow());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  EXPECT_EQ(merged.buckets(), whole.buckets());
  // The bucket/overflow state is integer-exact; the running sum is a float
  // accumulated in a different order, so the mean is ulp-close, not equal.
  expect_close(merged.mean(), whole.mean(), whole.mean(),
               16.0 * static_cast<double>(whole.count()));
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(merged.quantile(q), whole.quantile(q));
  }
}

TEST(HistogramMerge, RejectsGeometryMismatch) {
  metrics::Histogram a(10.0, 100);
  metrics::Histogram b(10.0, 50);
  metrics::Histogram c(20.0, 100);
  EXPECT_THROW(a.merge(b), std::logic_error);
  EXPECT_THROW(a.merge(c), std::logic_error);
}

TEST(MetricAggregate, MergeMatchesSerialAccumulation) {
  Rng rng(31);
  MetricAggregate serial(100.0, 200);
  std::vector<MetricAggregate> shards(5, MetricAggregate(100.0, 200));
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.uniform(0.0, 120.0));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    serial.add(xs[i]);
    shards[i % shards.size()].add(xs[i]);
  }
  const MetricAggregate merged = merge_pairwise(std::move(shards));
  EXPECT_EQ(merged.stats().count(), serial.stats().count());
  // Histogram side is exact; Welford side is within rounding of the serial
  // order (different summation order).
  EXPECT_EQ(merged.histogram().buckets(), serial.histogram().buckets());
  EXPECT_EQ(merged.quantile(0.95), serial.quantile(0.95));
  expect_close(merged.stats().mean(), serial.stats().mean(),
               serial.stats().mean(), 16.0 * static_cast<double>(xs.size()));
  EXPECT_EQ(merged.stats().min(), serial.stats().min());
  EXPECT_EQ(merged.stats().max(), serial.stats().max());
}

TEST(CohortAggregateTest, EmptyMergeAndNamePreservation) {
  CohortAggregate a("alpha");
  CohortAggregate b("beta");
  DeviceMetrics m;
  m.energy_j = 10.0;
  m.avg_power_mw = 30.0;
  m.wakeups_per_hour = 12.0;
  m.delay_norm = 0.4;
  b.add(m);
  a.merge(b);
  EXPECT_EQ(a.cohort, "alpha");
  EXPECT_EQ(a.devices, 1u);
  EXPECT_EQ(a.energy_j.stats().mean(), 10.0);
  EXPECT_EQ(a.delay_norm.quantile(0.5), b.delay_norm.quantile(0.5));
}

}  // namespace
}  // namespace simty::fleet
