#include "exp/adaptive.hpp"

#include "common/check.hpp"

namespace simty::exp {

AdaptiveBetaController::AdaptiveBetaController(std::vector<Band> bands)
    : bands_(std::move(bands)) {
  SIMTY_CHECK_MSG(!bands_.empty(), "controller needs at least one band");
  SIMTY_CHECK_MSG(bands_.back().soc_at_least == 0.0,
                  "last band must cover soc 0 (floor band)");
  for (std::size_t i = 0; i < bands_.size(); ++i) {
    SIMTY_CHECK(bands_[i].beta >= 0.0 && bands_[i].beta < 1.0);
    if (i > 0) {
      SIMTY_CHECK_MSG(bands_[i].soc_at_least < bands_[i - 1].soc_at_least,
                      "bands must have strictly descending thresholds");
      SIMTY_CHECK_MSG(bands_[i].beta >= bands_[i - 1].beta,
                      "beta must not decrease as charge falls");
    }
  }
}

AdaptiveBetaController AdaptiveBetaController::default_profile() {
  return AdaptiveBetaController({{0.5, 0.80}, {0.2, 0.90}, {0.0, 0.96}});
}

double AdaptiveBetaController::beta_for(double soc) const {
  SIMTY_CHECK_MSG(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  for (const Band& band : bands_) {
    if (soc >= band.soc_at_least) return band.beta;
  }
  return bands_.back().beta;
}

DepletionResult run_until_depleted(ExperimentConfig base, hw::Battery battery,
                                   const AdaptiveBetaController* controller,
                                   int max_segments) {
  SIMTY_CHECK(max_segments > 0);
  SIMTY_CHECK(base.duration > Duration::zero());

  DepletionResult out;
  for (int seg = 0; seg < max_segments; ++seg) {
    DepletionSegment s;
    s.soc_start = battery.state_of_charge();
    s.beta = controller != nullptr ? controller->beta_for(s.soc_start) : base.beta;

    ExperimentConfig c = base;
    c.beta = s.beta;
    c.seed = base.seed + static_cast<std::uint64_t>(seg);
    const RunResult r = run_experiment(c);
    s.consumed = r.energy.total();
    s.delay_imperceptible = r.delay_imperceptible;

    const Energy remaining = battery.remaining();
    if (s.consumed >= remaining) {
      // Partial final segment: prorate the time by the energy left
      // (standby power is near-constant within a segment).
      const double fraction = remaining.ratio(s.consumed);
      out.standby_time += base.duration * fraction;
      s.consumed = remaining;
      battery.consume(remaining);
      out.history.push_back(s);
      out.depleted = true;
      return out;
    }
    battery.consume(s.consumed);
    out.standby_time += base.duration;
    out.history.push_back(s);
  }
  return out;  // not depleted within max_segments
}

}  // namespace simty::exp
