#pragma once
// The 18 Google Play resident apps of the paper's Table 3, with hold-time
// behaviour filled in from the paper's measurements (WPS fixes ~10 s,
// notifications 1 s, Wi-Fi syncs a few seconds with network-speed jitter).

#include <vector>

#include "apps/app.hpp"

namespace simty::apps {

/// All 18 rows of Table 3, in table order.
std::vector<AppProfile> table3_catalog();

/// The 12 apps of the light workload: the 11 Wi-Fi-only messengers plus the
/// Alarm Clock (the single perceptible app).
std::vector<AppProfile> light_workload_profiles();

/// All 18 apps: the heavy workload.
std::vector<AppProfile> heavy_workload_profiles();

/// Looks a profile up by name; throws std::logic_error when unknown.
AppProfile profile_by_name(const std::string& name);

}  // namespace simty::apps
