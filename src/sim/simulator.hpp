#pragma once
// Discrete-event simulator core: a virtual clock plus an event loop.
//
// The whole standby experiment runs inside one Simulator: the device model,
// the alarm manager, the resident apps, and the power monitor all schedule
// callbacks here. Single-threaded by design — determinism is what lets the
// paper's "three runs, averaged" protocol be exactly reproducible.

#include <cstdint>

#include "common/arena.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace simty::sim {

/// Event loop with a virtual microsecond clock.
class Simulator {
 public:
  Simulator() = default;

  /// Backs the event queue's storage with `arena` (see EventQueue): the
  /// arena must outlive the simulator and must not be reset while it lives.
  explicit Simulator(common::Arena* arena) : queue_(arena) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Starts at the origin and only moves forward.
  TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (must be >= now()). `label`
  /// must outlive the event: pass a string literal, or intern_label() for
  /// a computed one.
  EventId schedule_at(TimePoint when, EventFn cb,
                      EventPriority priority = EventPriority::kFramework,
                      const char* label = "");

  /// Schedules `cb` after a non-negative delay from now().
  EventId schedule_after(Duration delay, EventFn cb,
                         EventPriority priority = EventPriority::kFramework,
                         const char* label = "");

  /// Cancels a pending event; false if it already ran or was cancelled.
  bool cancel(EventId id);

  /// Runs events with time <= `until`, then advances the clock to `until`
  /// even if the queue drains early (so end-of-run power integration covers
  /// the full horizon).
  void run_until(TimePoint until);

  /// Runs until the event queue is empty.
  void run_all();

  /// Runs exactly one event if any is pending; returns false on empty queue.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Serializes the clock, event counter, and the complete queue structure
  /// into the writer's open section (see EventQueue::save — callbacks are
  /// not serialized and must be rebind()-ed after restore()).
  void save(snapshot::Writer& w) const;

  /// Restores state written by save(), replacing any queue contents.
  void restore(snapshot::SectionReader& s);

  /// Re-attaches the callback of a restored armed event.
  void rebind(EventId id, EventFn cb) { queue_.rebind(id, std::move(cb)); }

  /// True when every restored live event has been rebound.
  bool fully_bound() const { return queue_.fully_bound(); }

 private:
  TimePoint now_ = TimePoint::origin();
  EventQueue queue_;
  std::uint64_t events_processed_ = 0;
};

}  // namespace simty::sim
