# Empty dependencies file for simty_hw.
# This may be replaced when dependencies are built.
