// The trace-diff gate's in-tree core: the binary trace of a run must be a
// pure function of the config — identical whether the surrounding
// repetition batch ran serially or on the thread pool — and a perturbed
// config must produce a trace whose first divergence trace_diff can name.
// CI repeats the same check end-to-end through simty_run + tools/trace_diff.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "trace/tracer.hpp"

namespace simty::exp {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.policy = PolicyKind::kSimty;
  c.workload = WorkloadKind::kLight;
  c.duration = Duration::seconds(1200);
  c.seed = 1;
  return c;
}

TEST(TraceDeterminism, SerialAndParallelRunsProduceIdenticalTraces) {
  trace::Tracer serial_t;
  ExperimentConfig serial_c = small_config();
  serial_c.tracer = &serial_t;
  run_repeated(serial_c, 2, /*jobs=*/1);

  trace::Tracer parallel_t;
  ExperimentConfig parallel_c = small_config();
  parallel_c.tracer = &parallel_t;
  run_repeated(parallel_c, 2, /*jobs=*/2);

  ASSERT_GT(serial_t.size(), 0u);
  EXPECT_EQ(serial_t.size(), parallel_t.size());
  // Byte-identical binaries, not just equal summaries: this is the same
  // comparison the CI job makes with cmp on the exported files.
  EXPECT_EQ(serial_t.binary(), parallel_t.binary());
  const trace::TraceDiff d = trace::diff_traces(
      trace::decode_trace(serial_t.binary()),
      trace::decode_trace(parallel_t.binary()));
  EXPECT_TRUE(d.equal) << d.summary;
}

TEST(TraceDeterminism, RepeatedIdenticalRunsProduceIdenticalTraces) {
  trace::Tracer first, second;
  ExperimentConfig c = small_config();
  c.tracer = &first;
  run_experiment(c);
  c.tracer = &second;
  run_experiment(c);
  EXPECT_EQ(first.binary(), second.binary());
}

TEST(TraceDeterminism, PerturbedSeedDivergesAndDiffPinpointsIt) {
  trace::Tracer base_t, other_t;
  ExperimentConfig base_c = small_config();
  base_c.tracer = &base_t;
  run_experiment(base_c);

  ExperimentConfig other_c = small_config();
  other_c.seed = 99;
  other_c.tracer = &other_t;
  run_experiment(other_c);

  const trace::TraceDiff d = trace::diff_traces(
      trace::decode_trace(base_t.binary()),
      trace::decode_trace(other_t.binary()));
  EXPECT_FALSE(d.equal);
  ASSERT_TRUE(d.first_divergence.has_value());
  // The run span carries the seed as its arg, so the two traces disagree
  // from the very first event — the diff names it rather than hand-waving.
  EXPECT_EQ(*d.first_divergence, 0u);
  EXPECT_NE(d.summary.find("run"), std::string::npos);
}

TEST(TraceDeterminism, TracerRidesTheBaseSeedOnlyInRepetitionBatches) {
  trace::Tracer repeated_t;
  ExperimentConfig c = small_config();
  c.tracer = &repeated_t;
  run_repeated(c, 3, /*jobs=*/1);

  trace::Tracer single_t;
  ExperimentConfig single = small_config();
  single.tracer = &single_t;
  run_experiment(single);

  // Three repetitions do not triple the trace: seeds 2 and 3 run untraced.
  EXPECT_EQ(repeated_t.binary(), single_t.binary());
}

}  // namespace
}  // namespace simty::exp
