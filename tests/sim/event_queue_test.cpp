#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace simty::sim {
namespace {

TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(3), EventPriority::kFramework, [&] { order.push_back(3); });
  q.schedule(at(1), EventPriority::kFramework, [&] { order.push_back(1); });
  q.schedule(at(2), EventPriority::kFramework, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTiesAtSameInstant) {
  EventQueue q;
  std::vector<std::string> order;
  q.schedule(at(5), EventPriority::kApp, [&] { order.push_back("app"); });
  q.schedule(at(5), EventPriority::kHardware, [&] { order.push_back("hw"); });
  q.schedule(at(5), EventPriority::kObserver, [&] { order.push_back("obs"); });
  q.schedule(at(5), EventPriority::kFramework, [&] { order.push_back("fw"); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<std::string>{"hw", "fw", "app", "obs"}));
}

TEST(EventQueue, InsertionOrderBreaksFullTies) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(at(1), EventPriority::kFramework, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelRemovesPendingEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(at(1), EventPriority::kFramework, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
  // Second cancel is a no-op returning false.
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(at(1), EventPriority::kFramework, [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeAndLabels) {
  EventQueue q;
  q.schedule(at(9), EventPriority::kFramework, [] {}, "later");
  q.schedule(at(4), EventPriority::kFramework, [] {}, "sooner");
  EXPECT_EQ(q.next_time(), at(4));
  EXPECT_EQ(q.pop().label, "sooner");
  EXPECT_EQ(q.pop().label, "later");
}

TEST(EventQueue, SizeTracksScheduleAndPop) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.schedule(at(1), EventPriority::kFramework, [] {});
  q.schedule(at(2), EventPriority::kFramework, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyPopAndNextTimeThrow) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, EmptyCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(at(1), EventPriority::kFramework, EventCallback{}),
               std::logic_error);
}

}  // namespace
}  // namespace simty::sim
