#pragma once
// Trace recording and replay for the five irregular apps.
//
// The paper found five apps whose wakelock durations were not reproducible
// run to run, and replaced them with "imitated apps" that replay the time
// and hardware patterns logged in a profiling pass. We reproduce that
// methodology: IrregularApp models the erratic original (heavy-tailed
// holds), TraceRecorder captures its per-delivery holds, and ImitatedApp
// replays the recorded trace verbatim — making NATIVE-vs-SIMTY comparisons
// fair, exactly as in the paper.

#include <vector>

#include "apps/app.hpp"

namespace simty::apps {

/// One logged delivery of an app's major alarm.
struct TraceEntry {
  hw::ComponentSet hardware;
  Duration hold;
};

/// A logged behaviour trace of one app.
struct AppTrace {
  std::string app_name;
  std::vector<TraceEntry> entries;
};

/// Models an irregular original: holds follow a heavy-tailed (lognormal-
/// like) distribution around the profile's base hold instead of the
/// bounded uniform jitter of well-behaved apps.
class IrregularApp : public ResidentApp {
 public:
  IrregularApp(AppProfile profile, Rng rng);

 protected:
  alarm::TaskSpec next_task() override;
};

/// Replays a pre-recorded trace cyclically; fully deterministic.
class ImitatedApp : public ResidentApp {
 public:
  ImitatedApp(AppProfile profile, AppTrace trace);

  const AppTrace& trace() const { return trace_; }

  /// Base state plus the replay cursor; the trace itself is reconstructed
  /// from config (same name-hash seed), not serialized.
  void save(snapshot::Writer& w) const override;
  void restore(snapshot::SectionReader& s) override;

 protected:
  alarm::TaskSpec next_task() override;

 private:
  AppTrace trace_;
  std::size_t cursor_ = 0;
};

/// Profiles an irregular app offline: samples `deliveries` tasks from an
/// IrregularApp with the given seed and returns the logged trace. This is
/// the "logged in advance" step of the paper's §4.1.
AppTrace record_trace(const AppProfile& profile, std::size_t deliveries,
                      std::uint64_t seed);

}  // namespace simty::apps
