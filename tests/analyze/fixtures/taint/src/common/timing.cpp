#include "common/timing.hpp"
#include <chrono>
namespace fx::common {
long now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
}
