// BatchIndex correctness: unit-level differentials of the interval treap
// against a brute-force overlap scan, the edge cases of closed-interval
// overlap semantics, and a large randomized workload driven through the
// AlarmManager with slow queue checks on — which asserts, on every single
// insert, that the indexed candidate set equals a linear overlap scan and
// that the indexed selection equals the policy's linear select_batch.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "alarm/alarm_manager.hpp"
#include "alarm/batch_index.hpp"
#include "alarm/duration_policy.hpp"
#include "alarm/exact_policy.hpp"
#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "common/rng.hpp"
#include "support/framework_fixture.hpp"

namespace simty::alarm {
namespace {

TimePoint at_s(std::int64_t s) {
  return TimePoint::origin() + Duration::seconds(s);
}

/// One-shot alarm whose window == grace == [nominal, nominal + window].
std::unique_ptr<Alarm> one_shot(std::uint64_t id, std::int64_t nominal_s,
                                std::int64_t window_s) {
  return std::make_unique<Alarm>(
      AlarmId{id},
      AlarmSpec::one_shot("t." + std::to_string(id), AppId{0},
                          Duration::seconds(window_s)),
      at_s(nominal_s));
}

/// Imperceptible repeating alarm: hardware learned as Wi-Fi only, so the
/// grace interval exceeds the window (alpha < beta).
std::unique_ptr<Alarm> imperceptible(std::uint64_t id, std::int64_t nominal_s) {
  auto a = std::make_unique<Alarm>(
      AlarmId{id},
      AlarmSpec::repeating("t." + std::to_string(id), AppId{0},
                           RepeatMode::kStatic, Duration::seconds(100), 0.05, 0.5),
      at_s(nominal_s));
  a->record_delivery(hw::ComponentSet{hw::Component::kWifi}, Duration::seconds(1));
  return a;
}

std::vector<std::size_t> collected(const BatchIndex& idx, const TimeInterval& iv,
                                   EntryIntervalKind kind) {
  std::vector<std::size_t> out;
  idx.collect(iv, kind, out);
  return out;
}

TEST(BatchIndexUnit, EmptyIndexCollectsNothing) {
  BatchIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_TRUE(collected(idx, TimeInterval(at_s(0), at_s(1000)),
                        EntryIntervalKind::kGrace)
                  .empty());
  EXPECT_TRUE(idx.check_invariants().empty());
}

TEST(BatchIndexUnit, TouchingEndpointsFollowClosedIntervalSemantics) {
  // Entry interval [100s, 110s]. A closed query starting exactly at 110s
  // shares that endpoint and must match; one microsecond later must not.
  auto a = one_shot(1, 100, 10);
  Batch b(a.get());
  b.set_queue_pos(7);
  BatchIndex idx;
  idx.insert(&b);

  const TimeInterval touching(at_s(110), at_s(120));
  const TimeInterval disjoint(at_s(110) + Duration::micros(1), at_s(120));
  EXPECT_EQ(collected(idx, touching, EntryIntervalKind::kGrace),
            (std::vector<std::size_t>{7}));
  EXPECT_TRUE(collected(idx, disjoint, EntryIntervalKind::kGrace).empty());
  // Same on the other side: query ending exactly at the entry's start.
  EXPECT_EQ(collected(idx, TimeInterval(at_s(90), at_s(100)),
                      EntryIntervalKind::kGrace),
            (std::vector<std::size_t>{7}));
  EXPECT_TRUE(collected(idx,
                        TimeInterval(at_s(90), at_s(100) - Duration::micros(1)),
                        EntryIntervalKind::kGrace)
                  .empty());
  // Empty query intervals overlap nothing by definition.
  EXPECT_TRUE(collected(idx, TimeInterval::empty(), EntryIntervalKind::kGrace)
                  .empty());
  EXPECT_TRUE(idx.check_invariants().empty());
}

TEST(BatchIndexUnit, CollapsedWindowExcludedFromWindowQueriesOnly) {
  // Two imperceptible members with disjoint windows but overlapping graces:
  // the entry's window intersection is empty while its grace stays real
  // (§3.2.1) — window queries must skip it, grace queries must find it.
  auto a1 = imperceptible(1, 1000);  // window [1000,1005], grace [1000,1050]
  auto a2 = imperceptible(2, 1010);  // window [1010,1015], grace [1010,1060]
  Batch b(a1.get());
  b.add(a2.get());
  ASSERT_TRUE(b.window_interval().is_empty());
  ASSERT_FALSE(b.grace_interval().is_empty());
  b.set_queue_pos(0);

  BatchIndex idx;
  idx.insert(&b);
  const TimeInterval span(at_s(990), at_s(1100));
  EXPECT_TRUE(collected(idx, span, EntryIntervalKind::kWindow).empty());
  EXPECT_EQ(collected(idx, span, EntryIntervalKind::kGrace),
            (std::vector<std::size_t>{0}));
  EXPECT_TRUE(idx.check_invariants().empty());
}

TEST(BatchIndexUnit, RandomizedDifferentialAgainstBruteForce) {
  // Insert/erase/update churn with interleaved overlap queries, each
  // checked against a brute-force scan of the live set. Queue positions are
  // unique stamps, so position equality identifies the exact result set.
  struct Entry {
    std::unique_ptr<Alarm> alarm;
    std::unique_ptr<Batch> batch;
  };
  Rng rng(20260807);
  BatchIndex idx;
  std::vector<Entry> live;
  std::uint64_t next_id = 1;
  std::size_t next_pos = 0;

  const auto make_entry = [&] {
    Entry e;
    e.alarm = one_shot(next_id++, 1 + static_cast<std::int64_t>(rng.next_below(5000)),
                       1 + static_cast<std::int64_t>(rng.next_below(300)));
    e.batch = std::make_unique<Batch>(e.alarm.get());
    e.batch->set_queue_pos(next_pos++);
    return e;
  };

  for (int op = 0; op < 3000; ++op) {
    const std::uint32_t dice = rng.next_below(100);
    if (live.empty() || dice < 35) {
      live.push_back(make_entry());
      idx.insert(live.back().batch.get());
    } else if (dice < 50) {
      const std::size_t victim = rng.next_below(static_cast<std::uint32_t>(live.size()));
      idx.erase(live[victim].batch.get());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else if (dice < 65) {
      // Re-key: reschedule the member, refresh the cached intervals, and
      // push the new key through update().
      const std::size_t target = rng.next_below(static_cast<std::uint32_t>(live.size()));
      live[target].alarm->reschedule(
          at_s(1 + static_cast<std::int64_t>(rng.next_below(5000))));
      live[target].batch->refresh();
      idx.update(live[target].batch.get());
    } else {
      const std::int64_t qs = 1 + static_cast<std::int64_t>(rng.next_below(5200));
      const TimeInterval query(at_s(qs),
                               at_s(qs + static_cast<std::int64_t>(rng.next_below(400))));
      std::vector<std::size_t> expected;
      for (const Entry& e : live) {
        if (e.batch->grace_interval().overlaps(query)) {
          expected.push_back(e.batch->queue_pos());
        }
      }
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(collected(idx, query, EntryIntervalKind::kGrace), expected)
          << "op " << op;
    }
    if (op % 100 == 0) {
      const std::vector<std::string> issues = idx.check_invariants();
      ASSERT_TRUE(issues.empty()) << "op " << op << ": " << issues.front();
    }
    ASSERT_EQ(idx.size(), live.size());
  }
}

// ---------------------------------------------------------------------------
// Manager-level differential: every insert under slow checks replays the
// linear reference and asserts candidate-set and selection equality.
// ---------------------------------------------------------------------------

std::unique_ptr<AlignmentPolicy> make_policy(int which) {
  switch (which) {
    case 0: return std::make_unique<ExactPolicy>();
    case 1: return std::make_unique<NativePolicy>();
    case 2: return std::make_unique<SimtyPolicy>();
    default: return std::make_unique<DurationSimtyPolicy>();
  }
}

hw::ComponentSet random_hardware(Rng& rng) {
  static const hw::ComponentSet kPalette[] = {
      hw::ComponentSet::none(),
      hw::ComponentSet{hw::Component::kWifi},
      hw::ComponentSet{hw::Component::kWifi, hw::Component::kCellular},
      hw::ComponentSet{hw::Component::kWps},
      hw::ComponentSet{hw::Component::kGps},
      hw::ComponentSet{hw::Component::kAccelerometer},
      hw::ComponentSet{hw::Component::kScreen},
      hw::ComponentSet{hw::Component::kVibrator, hw::Component::kSpeaker},
  };
  return kPalette[rng.next_below(8)];
}

class BatchIndexDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchIndexDifferentialTest, ThirtyThousandOpsMatchLinearReference) {
  test::FrameworkHarness h;
  h.init(make_policy(GetParam()));
  h.manager_->set_slow_queue_checks(true);

  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
  std::vector<AlarmId> ids;

  const auto register_one = [&](int i) {
    AlarmSpec spec;
    if (rng.chance(0.6)) {
      const Duration repeat =
          Duration::seconds(20 * (1 + static_cast<int>(rng.next_below(30))));
      spec = AlarmSpec::repeating("churn." + std::to_string(i),
                                  AppId{rng.next_below(16)},
                                  rng.chance(0.5) ? RepeatMode::kStatic
                                                  : RepeatMode::kDynamic,
                                  repeat, 0.1, 0.6);
    } else {
      spec = AlarmSpec::one_shot(
          "churn." + std::to_string(i), AppId{rng.next_below(16)},
          Duration::seconds(1 + static_cast<int>(rng.next_below(180))));
    }
    spec.kind = rng.chance(0.7) ? AlarmKind::kWakeup : AlarmKind::kNonWakeup;
    const TimePoint nominal =
        h.sim_.now() + Duration::seconds(1 + static_cast<int>(rng.next_below(1200)));
    ids.push_back(h.manager_->register_alarm(
        spec, nominal,
        test::FrameworkHarness::task(random_hardware(rng),
                                     Duration::millis(rng.next_below(4000)))));
  };

  // Seed population, then a long mixed insert/dissolve/deliver/rebatch
  // churn. Four policy instantiations x 8000 rounds > 30k operations, each
  // insert differentially verified by the slow checks.
  for (int i = 0; i < 150; ++i) register_one(i);
  for (int round = 0; round < 8000; ++round) {
    const std::uint32_t dice = rng.next_below(1000);
    if (dice < 150) {
      register_one(10000 + round);
    } else if (dice < 500) {
      const AlarmId id = ids[rng.next_below(static_cast<std::uint32_t>(ids.size()))];
      if (h.manager_->is_registered(id)) {
        h.manager_->set(id, h.sim_.now() + Duration::seconds(
                                               1 + static_cast<int>(rng.next_below(900))));
      }
    } else if (dice < 600) {
      const AlarmId id = ids[rng.next_below(static_cast<std::uint32_t>(ids.size()))];
      if (h.manager_->is_registered(id)) h.manager_->cancel(id);
    } else if (dice < 615) {
      h.manager_->rebatch_all();
    } else {
      h.sim_.run_until(h.sim_.now() + Duration::seconds(5 + rng.next_below(60)));
    }
    if (round % 200 == 0) {
      const std::vector<std::string> issues = h.manager_->check_invariants();
      ASSERT_TRUE(issues.empty()) << "round " << round << ": " << issues.front();
    }
  }
  EXPECT_GT(h.manager_->stats().deliveries, 0u);
}

std::string policy_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "Exact";
    case 1: return "Native";
    case 2: return "Simty";
    default: return "SimtyDur";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, BatchIndexDifferentialTest,
                         ::testing::Values(0, 1, 2, 3), policy_name);

TEST(BatchIndexManager, EmptyQueueFirstInsertAndTouchingWindows) {
  test::FrameworkHarness h;
  h.init(std::make_unique<NativePolicy>());
  h.manager_->set_slow_queue_checks(true);

  // First insert lands in an empty queue through the indexed path.
  AlarmSpec s1 = AlarmSpec::one_shot("a", AppId{1}, Duration::seconds(10));
  h.manager_->register_alarm(s1, h.at(100), test::FrameworkHarness::noop_task());
  ASSERT_EQ(h.manager_->queue(AlarmKind::kWakeup).size(), 1u);

  // Window [110, 120] touches [100, 110] at the shared endpoint — closed
  // intervals overlap there, so NATIVE joins.
  AlarmSpec s2 = AlarmSpec::one_shot("b", AppId{2}, Duration::seconds(10));
  h.manager_->register_alarm(s2, h.at(110), test::FrameworkHarness::noop_task());
  ASSERT_EQ(h.manager_->queue(AlarmKind::kWakeup).size(), 1u);
  EXPECT_EQ(h.manager_->queue(AlarmKind::kWakeup).front()->size(), 2u);

  // One microsecond past the joint window's end: disjoint, new entry.
  AlarmSpec s3 = AlarmSpec::one_shot("c", AppId{3}, Duration::seconds(10));
  h.manager_->register_alarm(s3, h.at(110) + Duration::micros(1),
                             test::FrameworkHarness::noop_task());
  ASSERT_EQ(h.manager_->queue(AlarmKind::kWakeup).size(), 2u);
  EXPECT_TRUE(h.manager_->check_invariants().empty());
}

TEST(BatchIndexManager, RepeatingReinsertChurnKeepsIndexConsistent) {
  test::FrameworkHarness h;
  h.init(std::make_unique<SimtyPolicy>());
  h.manager_->set_slow_queue_checks(true);

  Rng rng(42);
  for (int i = 0; i < 40; ++i) {
    AlarmSpec spec = AlarmSpec::repeating(
        "rep." + std::to_string(i), AppId{static_cast<std::uint32_t>(i % 8)},
        i % 2 == 0 ? RepeatMode::kStatic : RepeatMode::kDynamic,
        Duration::seconds(60 * (1 + static_cast<int>(rng.next_below(5)))), 0.1, 0.5);
    h.manager_->register_alarm(
        spec, h.sim_.now() + Duration::seconds(1 + static_cast<int>(rng.next_below(120))),
        test::FrameworkHarness::task(random_hardware(rng), Duration::seconds(1)));
  }
  // Two hours of deliveries: every delivery dissolves the head entry and
  // reinserts its repeating members through the indexed path.
  for (int step = 0; step < 24; ++step) {
    h.sim_.run_until(h.sim_.now() + Duration::minutes(5));
    const std::vector<std::string> issues = h.manager_->check_invariants();
    ASSERT_TRUE(issues.empty()) << "step " << step << ": " << issues.front();
  }
  EXPECT_GT(h.manager_->stats().deliveries, 100u);
}

}  // namespace
}  // namespace simty::alarm
