#include "common/interval.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace simty {

TimeInterval TimeInterval::from_length(TimePoint start, Duration length) {
  if (length.is_negative()) {
    throw std::invalid_argument("TimeInterval::from_length: negative length");
  }
  return TimeInterval{start, start + length};
}

Duration TimeInterval::length() const {
  if (is_empty()) return Duration::zero();
  return end_ - start_;
}

bool TimeInterval::contains(TimePoint t) const {
  return !is_empty() && start_ <= t && t <= end_;
}

bool TimeInterval::overlaps(const TimeInterval& o) const {
  if (is_empty() || o.is_empty()) return false;
  return start_ <= o.end_ && o.start_ <= end_;
}

TimeInterval TimeInterval::intersect(const TimeInterval& o) const {
  if (!overlaps(o)) return empty();
  return TimeInterval{std::max(start_, o.start_), std::min(end_, o.end_)};
}

TimeInterval TimeInterval::hull(const TimeInterval& o) const {
  if (is_empty()) return o;
  if (o.is_empty()) return *this;
  return TimeInterval{std::min(start_, o.start_), std::max(end_, o.end_)};
}

TimeInterval TimeInterval::shifted(Duration d) const {
  if (is_empty()) return *this;
  return TimeInterval{start_ + d, end_ + d};
}

bool TimeInterval::operator==(const TimeInterval& o) const {
  if (is_empty() && o.is_empty()) return true;
  return start_ == o.start_ && end_ == o.end_;
}

std::string TimeInterval::to_string() const {
  if (is_empty()) return "[empty]";
  char buf[96];
  std::snprintf(buf, sizeof buf, "[%.3fs, %.3fs]", start_.seconds_f(), end_.seconds_f());
  return buf;
}

}  // namespace simty
