#pragma once
// Duration-similarity extension (paper §5, future work): among entries that
// tie on Table-1 rank, prefer the one whose expected hardware-hold duration
// is closest to the new alarm's — aligning a 10 s WPS scan with another
// 10 s scan amortizes more on-time than aligning it with a 1 s blip.

#include "alarm/simty_policy.hpp"

namespace simty::alarm {

/// SIMTY with a duration-similarity tie-break in the selection phase.
class DurationSimtyPolicy : public SimtyPolicy {
 public:
  explicit DurationSimtyPolicy(SimilarityConfig config = {})
      : SimtyPolicy(config) {}

  std::string name() const override { return "SIMTY-DUR"; }

 protected:
  bool prefers_over(const Alarm& alarm, const Batch& candidate,
                    const Batch& incumbent) const override;

  /// A later equal-rank entry can win on duration similarity, so the
  /// candidate scan must not stop at the first rank-1 match.
  bool has_tie_preference() const override { return true; }
};

/// Similarity of two expected holds as the min/max ratio in [0, 1]
/// (1 = identical durations; 0 when either is still unknown/zero).
double duration_similarity(Duration a, Duration b);

}  // namespace simty::alarm
