#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace simty {
namespace {

TEST(ThreadPool, ResultsKeepSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  // Later tasks finish first (earlier ones sleep longer); the futures must
  // still hand results back in submission order.
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(16 - i));
      return i * i;
    }));
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, WorkerExceptionDoesNotKillTheWorker) {
  ThreadPool pool(1);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto after = pool.submit([] { return 42; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(after.get(), 42);  // same (sole) worker survived the throw
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> done{0};
  ThreadPool pool(1);
  // Block the sole worker, then pile work up behind it: shutdown() must run
  // every queued task before joining, not drop the backlog.
  auto gate = pool.submit(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] { ++done; });
  }
  pool.shutdown();
  EXPECT_EQ(done.load(), 8);
  gate.get();
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 1; }), std::logic_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // second call is a no-op
  EXPECT_EQ(pool.worker_count(), 0u);
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  auto fut = pool.submit([] { return std::this_thread::get_id(); });
  EXPECT_EQ(fut.get(), caller);
}

TEST(ThreadPool, PoolOfOneMatchesInlineExecution) {
  // The same deterministic computation through one worker and through the
  // inline (zero-worker) path must agree exactly.
  auto work = [](int i) {
    return [i] {
      double acc = 0.0;
      for (int k = 1; k <= 1000; ++k) acc += static_cast<double>(i) / k;
      return acc;
    };
  };
  ThreadPool inline_pool(0);
  ThreadPool single(1);
  std::vector<std::future<double>> a, b;
  for (int i = 0; i < 8; ++i) {
    a.push_back(inline_pool.submit(work(i)));
    b.push_back(single.submit(work(i)));
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].get(), b[i].get());
  }
}

}  // namespace
}  // namespace simty
