file(REMOVE_RECURSE
  "CMakeFiles/bench_depletion.dir/bench_depletion.cpp.o"
  "CMakeFiles/bench_depletion.dir/bench_depletion.cpp.o.d"
  "bench_depletion"
  "bench_depletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_depletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
