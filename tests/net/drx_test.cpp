// DRX/paging pager: occasion grid accounting, page queueing vs immediate
// delivery across RRC states (including pages landing mid-demotion), WuR
// trigger/batching semantics, finalize at a horizon that cuts an
// on-duration open, and standalone snapshot round trips of the pager's
// pending events.

#include "net/drx.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "hw/device.hpp"
#include "hw/power_model.hpp"
#include "hw/wur.hpp"
#include "net/rrc.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::net {
namespace {

class RailProbe : public hw::PowerListener {
 public:
  void on_component_power(TimePoint, hw::Component c, bool on, Power level) override {
    if (c == hw::Component::kCellular) cellular.push_back(on ? level.mw() : 0.0);
    if (c == hw::Component::kWur) wur.push_back(on ? level.mw() : 0.0);
  }
  std::vector<double> cellular;
  std::vector<double> wur;
};

class DrxTest : public ::testing::Test {
 protected:
  DrxTest() : model_(hw::PowerModel::nexus5()) {
    bus_.add_listener(&probe_);
    device_ = std::make_unique<hw::Device>(sim_, model_, bus_);
    rrc_ = std::make_unique<RrcMachine>(sim_, RrcConfig{}, bus_);
  }

  DrxPager& make_pager(const DrxConfig& config, hw::WakeupReceiver* wur,
                       Rng rng) {
    pager_ = std::make_unique<DrxPager>(sim_, *rrc_, *device_, bus_, wur,
                                        config, rng);
    pager_->start();
    return *pager_;
  }

  TimePoint at(double s) { return TimePoint::origin() + Duration::from_seconds(s); }
  void run_to(double s) { sim_.run_until(at(s)); }

  sim::Simulator sim_;
  hw::PowerModel model_;
  hw::PowerBus bus_;
  RailProbe probe_;
  std::unique_ptr<hw::Device> device_;
  std::unique_ptr<RrcMachine> rrc_;
  std::unique_ptr<DrxPager> pager_;
};

// A config whose Poisson stream is effectively silent inside the test
// window, isolating the paging-occasion grid.
DrxConfig quiet_config() {
  DrxConfig c;
  c.paging_cycle = Duration::seconds(1);
  c.on_duration = Duration::millis(100);
  c.mean_page_gap = Duration::seconds(1e7);
  return c;
}

TEST_F(DrxTest, RejectsBadConfigs) {
  DrxConfig c = quiet_config();
  c.on_duration = c.paging_cycle;  // must fit strictly inside
  EXPECT_THROW(DrxPager(sim_, *rrc_, *device_, bus_, nullptr, c, Rng(1, 2)),
               std::logic_error);
  c = quiet_config();
  c.wur = true;  // WuR mode without a receiver
  EXPECT_THROW(DrxPager(sim_, *rrc_, *device_, bus_, nullptr, c, Rng(1, 2)),
               std::logic_error);
}

TEST_F(DrxTest, OccasionGridListensOnceACycleAndBillsTheRail) {
  DrxPager& pager = make_pager(quiet_config(), nullptr, Rng(3, 5));
  run_to(10.5);
  // Occasions at 1, 2, ..., 10 s; each on-duration is 100 ms.
  EXPECT_EQ(pager.occasions_listened(), 10u);
  pager.finalize(at(10.5));
  EXPECT_EQ(pager.drx_listen_time(), Duration::seconds(1));
  // Rail toggles 120 mW on / off per occasion.
  ASSERT_EQ(probe_.cellular.size(), 20u);
  EXPECT_DOUBLE_EQ(probe_.cellular[0], 120.0);
  EXPECT_DOUBLE_EQ(probe_.cellular[1], 0.0);
  EXPECT_EQ(pager.pages_arrived(), 0u);
}

TEST_F(DrxTest, HorizonMidOnDurationFlushesThePartialWindow) {
  DrxPager& pager = make_pager(quiet_config(), nullptr, Rng(3, 5));
  // Stop inside the 5th window: occasions at 1..5 s, horizon at 5.05 s.
  run_to(5.05);
  pager.finalize(at(5.05));
  EXPECT_EQ(pager.occasions_listened(), 5u);
  EXPECT_EQ(pager.drx_listen_time(),
            Duration::millis(4 * 100) + Duration::millis(50));
  // Idempotent at the same horizon.
  pager.finalize(at(5.05));
  EXPECT_EQ(pager.drx_listen_time(),
            Duration::millis(4 * 100) + Duration::millis(50));
}

TEST_F(DrxTest, QueuedPagesAnswerAtTheNextOccasionWithinABoundedDelay) {
  DrxConfig c;
  c.paging_cycle = Duration::seconds(1);
  c.on_duration = Duration::millis(100);
  c.mean_page_gap = Duration::seconds(20);
  c.page_hold = Duration::millis(500);
  DrxPager& pager = make_pager(c, nullptr, Rng(11, 0xD2C));
  run_to(300.0);
  pager.finalize(at(300.0));

  EXPECT_GT(pager.pages_arrived(), 0u);
  EXPECT_GT(pager.pages_answered(), 0u);
  EXPECT_EQ(pager.page_delays().count(), pager.pages_answered());
  // A queued page waits at most one paging cycle plus the device wake
  // latency (120 ms) before its batch runs.
  EXPECT_GE(pager.page_delays().min(), 0.0);
  EXPECT_LE(pager.page_delays().max(),
            c.paging_cycle.seconds_f() + model_.wake_latency.seconds_f() + 1e-9);
  // Every answered batch promoted the radio.
  EXPECT_GT(rrc_->idle_promotions() + rrc_->fach_promotions(), 0u);
}

TEST_F(DrxTest, PageDuringConnectedDemotionDeliversImmediately) {
  // Mirror the pager's rng stream to learn the exact first-arrival instant,
  // then hold the RRC machine connected across it: the page must ride the
  // open connection instead of waiting for an occasion.
  DrxConfig c;
  c.paging_cycle = Duration::seconds(1);
  c.on_duration = Duration::millis(10);
  c.mean_page_gap = Duration::seconds(40);
  c.page_hold = Duration::millis(200);
  Rng mirror(11, 0xD2C);
  const double t1 = mirror.exponential(c.mean_page_gap.seconds_f());

  make_pager(c, nullptr, Rng(11, 0xD2C));
  // Promote just before the arrival: a short busy window plus the DCH/FACH
  // demotion timers (5 s + 12 s) keeps the radio connected across t1.
  sim_.schedule_at(at(std::max(0.0, t1 - 0.1)),
                   [&] { rrc_->data_activity(Duration::seconds(1)); });
  run_to(t1 + 1.0);

  EXPECT_EQ(pager_->pages_arrived(), 1u);
  EXPECT_EQ(pager_->immediate_pages(), 1u);
  EXPECT_EQ(pager_->pages_answered(), 1u);
  // Answered as soon as the device woke — far faster than a paging cycle.
  EXPECT_LE(pager_->page_delays().max(),
            model_.wake_latency.seconds_f() + 1e-9);
}

TEST_F(DrxTest, WurBatchesPagesInsideTheDelayBudget) {
  DrxConfig c;
  c.paging_cycle = Duration::seconds(1);
  c.on_duration = Duration::millis(10);
  c.mean_page_gap = Duration::seconds(5);
  c.page_hold = Duration::seconds(2);
  c.wur = true;
  c.wur_delay_budget = Duration::seconds(60);
  hw::WakeupReceiver wur(sim_, hw::WurConfig{}, bus_);

  Rng mirror(21, 0xD2C);
  const double t1 = mirror.exponential(c.mean_page_gap.seconds_f());
  DrxPager& pager = make_pager(c, &wur, Rng(21, 0xD2C));
  EXPECT_TRUE(wur.listening());  // gated on from the IDLE start state

  // The single batched answer fires at t1 + trigger latency + budget; run
  // just past it.
  const double answer = t1 + hw::WurConfig{}.wake_latency.seconds_f() + 60.0;
  run_to(answer + 1.0);

  EXPECT_GT(pager.pages_arrived(), 1u);  // ~13 arrivals per 65 s at mean 5 s
  EXPECT_EQ(pager.pages_answered(), pager.pages_arrived());
  // One promotion answered the whole batch.
  EXPECT_EQ(rrc_->idle_promotions(), 1u);
  EXPECT_EQ(rrc_->fach_promotions(), 0u);
  // Every pre-answer page was decoded by the receiver; none after it (the
  // radio is connected and the WuR is deaf while promoted).
  EXPECT_GE(wur.triggers(), 1u);
  EXPECT_LE(wur.triggers(), pager.pages_arrived());
  EXPECT_FALSE(wur.listening());  // connected at the horizon (page hold)
  // No main-radio paging listens happened in WuR mode.
  EXPECT_EQ(pager.occasions_listened(), 0u);
  EXPECT_EQ(pager.drx_listen_time(), Duration::zero());
  // Delays are bounded by latency + budget (plus the device wake).
  EXPECT_LE(pager.page_delays().max(),
            60.0 + hw::WurConfig{}.wake_latency.seconds_f() +
                model_.wake_latency.seconds_f() + 1e-9);
}

TEST_F(DrxTest, SnapshotRoundTripsMidOnDuration) {
  // Save inside an on-duration window: the listen-end event and the open
  // rail span must survive the trip. The fresh stack replays the rest of
  // the window and lands on the same totals as an uninterrupted run.
  DrxPager& pager = make_pager(quiet_config(), nullptr, Rng(3, 5));
  run_to(5.05);  // inside the 5th window (5.0 .. 5.1)
  EXPECT_EQ(pager.occasions_listened(), 5u);

  snapshot::Writer w;
  w.begin_section("sim", 1);
  sim_.save(w);
  w.end_section();
  w.begin_section("pager", 1);
  pager.save(w);
  w.end_section();
  const std::string bytes = w.finish();

  // Construct-then-overwrite on a fresh stack.
  sim::Simulator sim2;
  hw::PowerBus bus2;
  RailProbe probe2;
  bus2.add_listener(&probe2);
  hw::Device device2(sim2, model_, bus2);
  RrcMachine rrc2(sim2, RrcConfig{}, bus2);
  DrxPager pager2(sim2, rrc2, device2, bus2, nullptr, quiet_config(), Rng(3, 5));
  pager2.start();

  const snapshot::Reader r(bytes);
  {
    snapshot::SectionReader s = r.section("sim", 1);
    sim2.restore(s);
  }
  {
    snapshot::SectionReader s = r.section("pager", 1);
    pager2.restore(s);
  }
  EXPECT_TRUE(sim2.fully_bound());
  // The open listen rail was re-announced at restore time.
  ASSERT_FALSE(probe2.cellular.empty());
  EXPECT_DOUBLE_EQ(probe2.cellular.back(), 120.0);

  sim2.run_until(at(10.5));
  pager2.finalize(at(10.5));
  EXPECT_EQ(pager2.occasions_listened(), 10u);
  EXPECT_EQ(pager2.drx_listen_time(), Duration::seconds(1));
}

}  // namespace
}  // namespace simty::net
