#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace simty::sim {
namespace {

TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(3), EventPriority::kFramework, [&] { order.push_back(3); });
  q.schedule(at(1), EventPriority::kFramework, [&] { order.push_back(1); });
  q.schedule(at(2), EventPriority::kFramework, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTiesAtSameInstant) {
  EventQueue q;
  std::vector<std::string> order;
  q.schedule(at(5), EventPriority::kApp, [&] { order.push_back("app"); });
  q.schedule(at(5), EventPriority::kHardware, [&] { order.push_back("hw"); });
  q.schedule(at(5), EventPriority::kObserver, [&] { order.push_back("obs"); });
  q.schedule(at(5), EventPriority::kFramework, [&] { order.push_back("fw"); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<std::string>{"hw", "fw", "app", "obs"}));
}

TEST(EventQueue, InsertionOrderBreaksFullTies) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(at(1), EventPriority::kFramework, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelRemovesPendingEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(at(1), EventPriority::kFramework, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
  // Second cancel is a no-op returning false.
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(at(1), EventPriority::kFramework, [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeAndLabels) {
  EventQueue q;
  q.schedule(at(9), EventPriority::kFramework, [] {}, "later");
  q.schedule(at(4), EventPriority::kFramework, [] {}, "sooner");
  EXPECT_EQ(q.next_time(), at(4));
  EXPECT_STREQ(q.pop().label, "sooner");
  EXPECT_STREQ(q.pop().label, "later");
}

TEST(EventQueue, SizeTracksScheduleAndPop) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.schedule(at(1), EventPriority::kFramework, [] {});
  q.schedule(at(2), EventPriority::kFramework, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyPopAndNextTimeThrow) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, EmptyCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(at(1), EventPriority::kFramework, EventFn{}),
               std::logic_error);
}

TEST(EventQueue, SlabRecyclesTombstonedSlots) {
  EventQueue q;
  constexpr std::size_t kWindow = 64;
  // Many churn cycles of schedule-all/cancel-all must not grow the slab
  // past the peak live count: every tombstone's slot is recycled once it
  // surfaces at the heap root.
  for (int cycle = 0; cycle < 100; ++cycle) {
    std::vector<EventId> ids;
    for (std::size_t i = 0; i < kWindow; ++i) {
      ids.push_back(q.schedule(at(static_cast<std::int64_t>(i + 1)),
                               EventPriority::kFramework, [] {}));
    }
    for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
  }
  EXPECT_LE(q.slab_slots(), kWindow);
}

TEST(EventQueue, CancelAfterSlotReuseMissesNewTenant) {
  EventQueue q;
  const EventId a = q.schedule(at(1), EventPriority::kFramework, [] {});
  q.pop();  // a's slot is recycled
  bool b_fired = false;
  const EventId b = q.schedule(at(2), EventPriority::kFramework, [&] { b_fired = true; });
  // The stale id names the same slot but an older generation: cancelling it
  // must not evict the new tenant.
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  q.pop().callback();
  EXPECT_TRUE(b_fired);
  EXPECT_TRUE(q.cancel(b) == false);
}

TEST(EventQueue, CancelledEventNeverFiresEvenWhenInterleaved) {
  EventQueue q;
  std::vector<int> fired;
  const EventId doomed =
      q.schedule(at(2), EventPriority::kFramework, [&] { fired.push_back(2); });
  q.schedule(at(1), EventPriority::kFramework, [&] { fired.push_back(1); });
  q.schedule(at(3), EventPriority::kFramework, [&] { fired.push_back(3); });
  EXPECT_TRUE(q.cancel(doomed));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId head = q.schedule(at(1), EventPriority::kFramework, [] {});
  q.schedule(at(5), EventPriority::kFramework, [] {});
  EXPECT_EQ(q.next_time(), at(1));
  EXPECT_TRUE(q.cancel(head));
  EXPECT_EQ(q.next_time(), at(5));
}

TEST(EventQueue, InternLabelReturnsStablePointers) {
  const std::string dynamic = "computed-" + std::to_string(42);
  const char* a = intern_label(dynamic);
  const char* b = intern_label("computed-42");
  EXPECT_STREQ(a, "computed-42");
  EXPECT_EQ(a, b);  // same content interns to the same pointer

  EventQueue q;
  q.schedule(at(1), EventPriority::kFramework, [] {}, a);
  EXPECT_STREQ(q.pop().label, "computed-42");
}

// Reference model of the pre-heap implementation: a std::map ordered by the
// same (time, priority, seq) key. The differential test drives both through
// an identical randomized schedule/cancel/pop history and requires the
// exact same fire order and cancel outcomes.
class MapModel {
 public:
  std::uint64_t schedule(std::int64_t when_us, int priority, int payload) {
    const Key key{when_us, priority, next_seq_++};
    events_.emplace(key, payload);
    index_.emplace(key.seq, key);
    return key.seq;
  }

  bool cancel(std::uint64_t id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    events_.erase(it->second);
    index_.erase(it);
    return true;
  }

  bool empty() const { return events_.empty(); }

  std::pair<std::int64_t, int> pop() {
    const auto it = events_.begin();
    std::pair<std::int64_t, int> out{it->first.when_us, it->second};
    index_.erase(it->first.seq);
    events_.erase(it);
    return out;
  }

 private:
  struct Key {
    std::int64_t when_us;
    int priority;
    std::uint64_t seq;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, int> events_;
  std::map<std::uint64_t, Key> index_;
  std::uint64_t next_seq_ = 1;
};

TEST(EventQueue, RandomizedDifferentialAgainstMapModel) {
  EventQueue q;
  MapModel model;
  Rng rng(2024);

  struct Live {
    EventId real;
    std::uint64_t model;
  };
  std::vector<Live> live;  // superset of pending events (may hold stale ids)
  std::vector<std::pair<std::int64_t, int>> fired_real;
  std::vector<std::pair<std::int64_t, int>> fired_model;

  int payload = 0;
  std::size_t pending = 0;
  constexpr int kOps = 30'000;
  for (int op = 0; op < kOps; ++op) {
    const std::uint32_t dice = rng.next_below(100);
    if (dice < 50 || q.empty()) {
      // Small time range + 4 priorities force heavy key ties, so the
      // seq tie-break is exercised constantly.
      const std::int64_t when_us = static_cast<std::int64_t>(rng.next_below(64));
      const int priority = static_cast<int>(rng.next_below(4));
      const int p = payload++;
      const EventId real = q.schedule(
          TimePoint::from_us(when_us), static_cast<EventPriority>(priority),
          [&fired_real, when_us, p] { fired_real.emplace_back(when_us, p); });
      const std::uint64_t m = model.schedule(when_us, priority, p);
      live.push_back({real, m});
      ++pending;
    } else if (dice < 75 && !live.empty()) {
      // Cancel a random (possibly already fired/cancelled) handle; both
      // implementations must agree on whether it was still pending.
      const std::size_t pick = rng.next_below(static_cast<std::uint32_t>(live.size()));
      const bool cancelled = q.cancel(live[pick].real);
      ASSERT_EQ(cancelled, model.cancel(live[pick].model)) << "op " << op;
      if (cancelled) --pending;
    } else {
      ASSERT_FALSE(model.empty());
      q.pop().callback();
      fired_model.push_back(model.pop());
      --pending;
      ASSERT_EQ(fired_real.size(), fired_model.size());
      ASSERT_EQ(fired_real.back(), fired_model.back()) << "op " << op;
    }
    ASSERT_EQ(q.size(), pending) << "live-count divergence at op " << op;
  }

  // Drain both completely: the remaining fire order must match too.
  while (!q.empty()) {
    q.pop().callback();
    fired_model.push_back(model.pop());
  }
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(fired_real, fired_model);
}

// --------------------------------------------------------------------------
// pop_batch / staged hand-out semantics
// --------------------------------------------------------------------------

TEST(EventQueue, PopBatchStagesRootGroupAndReportsLiveCount) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(at(1), EventPriority::kFramework, [&order, i] { order.push_back(i); });
  }
  q.schedule(at(1), EventPriority::kApp, [&order] { order.push_back(99); });
  q.schedule(at(2), EventPriority::kFramework, [&order] { order.push_back(100); });

  // Only the five (t=1, kFramework) events share the root's group.
  EXPECT_EQ(q.pop_batch(), 5u);
  EXPECT_TRUE(q.has_staged());
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 99, 100}));
}

TEST(EventQueue, PopBatchSingletonStagesNothing) {
  EventQueue q;
  q.schedule(at(1), EventPriority::kFramework, [] {});
  q.schedule(at(2), EventPriority::kFramework, [] {});
  EXPECT_EQ(q.pop_batch(), 1u);
  EXPECT_FALSE(q.has_staged());
  EXPECT_EQ(q.pop().when, at(1));
}

TEST(EventQueue, StagedEventsStayCancellable) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(
        q.schedule(at(3), EventPriority::kFramework, [&order, i] { order.push_back(i); }));
  }
  ASSERT_EQ(q.pop_batch(), 4u);
  EXPECT_TRUE(q.cancel(ids[1]));
  EXPECT_FALSE(q.cancel(ids[1]));  // already cancelled while staged
  EXPECT_EQ(q.size(), 3u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3}));
  EXPECT_FALSE(q.cancel(ids[0]));  // fired
}

TEST(EventQueue, PopReChecksHeapRootAgainstStagedEvents) {
  // A callback scheduling a higher-priority event at the same instant must
  // see it fire before the rest of the staged group — exactly as k
  // independent pops would interleave it.
  EventQueue q;
  std::vector<std::string> order;
  for (int i = 0; i < 3; ++i) {
    q.schedule(at(7), EventPriority::kApp,
               [&order, i] { order.push_back("app" + std::to_string(i)); });
  }
  ASSERT_EQ(q.pop_batch(), 3u);
  auto first = q.pop();
  first.callback();
  q.schedule(at(7), EventPriority::kHardware, [&order] { order.push_back("hw"); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<std::string>{"app0", "hw", "app1", "app2"}));
}

// Differential test including pop_batch: 1e5 mixed operations across three
// phases — a general mix, a tombstone-heavy phase (cancel-dominated, so
// batches carry dead entries), and a same-instant-burst phase (tiny time
// range, big firing groups). The map model treats pop_batch as a no-op:
// staged hand-out must be indistinguishable from k independent pops.
TEST(EventQueue, RandomizedDifferentialWithPopBatch) {
  EventQueue q;
  MapModel model;
  Rng rng(777);

  struct Live {
    EventId real;
    std::uint64_t model;
  };
  std::vector<Live> live;
  std::vector<std::pair<std::int64_t, int>> fired_real;
  std::vector<std::pair<std::int64_t, int>> fired_model;

  int payload = 0;
  std::size_t pending = 0;
  constexpr int kOps = 100'000;
  for (int op = 0; op < kOps; ++op) {
    // Phase thresholds: [0,40k) mixed, [40k,70k) tombstone-heavy,
    // [70k,100k) same-instant bursts.
    const bool tombstone_phase = op >= 40'000 && op < 70'000;
    const bool burst_phase = op >= 70'000;
    const std::uint32_t dice = rng.next_below(100);
    const std::uint32_t cancel_cut = tombstone_phase ? 75 : 25;
    const std::uint32_t schedule_cut = tombstone_phase ? 15 : 45;

    if (dice < schedule_cut || q.empty()) {
      const std::int64_t when_us =
          static_cast<std::int64_t>(rng.next_below(burst_phase ? 8 : 64));
      const int priority = static_cast<int>(rng.next_below(burst_phase ? 2 : 4));
      const std::size_t fan = burst_phase ? 1 + rng.next_below(8) : 1;
      for (std::size_t f = 0; f < fan; ++f) {
        const int p = payload++;
        const EventId real = q.schedule(
            TimePoint::from_us(when_us), static_cast<EventPriority>(priority),
            [&fired_real, when_us, p] { fired_real.emplace_back(when_us, p); });
        live.push_back({real, model.schedule(when_us, priority, p)});
        ++pending;
      }
    } else if (dice < schedule_cut + cancel_cut && !live.empty()) {
      const std::size_t pick = rng.next_below(static_cast<std::uint32_t>(live.size()));
      const bool cancelled = q.cancel(live[pick].real);
      ASSERT_EQ(cancelled, model.cancel(live[pick].model)) << "op " << op;
      if (cancelled) --pending;
    } else {
      // Drain step: sometimes coalesce the root group first. pop_batch is
      // only legal with no staged events pending.
      if (rng.next_below(2) == 0 && !q.has_staged()) q.pop_batch();
      q.pop().callback();
      fired_model.push_back(model.pop());
      ASSERT_EQ(fired_real.size(), fired_model.size());
      ASSERT_EQ(fired_real.back(), fired_model.back()) << "op " << op;
      --pending;
    }
    ASSERT_EQ(q.size(), pending) << "live-count divergence at op " << op;
  }

  while (!q.empty()) {
    if (!q.has_staged() && rng.next_below(4) == 0) q.pop_batch();
    q.pop().callback();
    fired_model.push_back(model.pop());
  }
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(fired_real, fired_model);
}

}  // namespace
}  // namespace simty::sim
