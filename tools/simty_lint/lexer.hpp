#pragma once
// Lightweight C++ source scanner shared by simty_lint and simty_analyze.
//
// Produces, per physical line, the source text with comments, string
// literals, and character literals blanked to spaces (so rule matching never
// fires inside a literal), and the `simty-lint:` / `simty-analyze:` allow
// directives extracted from comments. This is deliberately not a real C++
// front end: it only has to be right about lexical structure (//, /* */,
// "...", '...', R"(...)", backslash-continued // comments), which is enough
// for token-level rules and the analyzer's structural passes.

#include <string>
#include <string_view>
#include <vector>

namespace simty::lint {

/// Result of scanning one source file.
struct FileScan {
  /// Source lines with comment/literal contents replaced by spaces.
  std::vector<std::string> code;
  /// Per-line allow()'d rule names (parallel to `code`).
  std::vector<std::vector<std::string>> line_allows;
  /// Rules allow-file()'d anywhere in the file.
  std::vector<std::string> file_allows;
};

/// Scans `content` into blanked code lines plus allow directives. A
/// directive in a trailing comment applies to its own line; a directive on a
/// comment-only line applies to the next line that carries code. `tag` names
/// the directive prefix looked for in comments — "simty-lint:" for the
/// linter, "simty-analyze:" for the cross-TU analyzer — so each tool honours
/// only its own escape hatches.
FileScan scan_source(std::string_view content, std::string_view tag = "simty-lint:");

/// True if `name` appears in `code` delimited by non-identifier characters.
bool has_word(std::string_view code, std::string_view name);

}  // namespace simty::lint
