// Fixture: assert rule — assert() is compiled out under NDEBUG and aborts
// instead of throwing; invariants use SIMTY_CHECK. static_assert stays legal.
#include <cassert>  // LINT-EXPECT: assert

namespace fixture {

inline int clamp_positive(int v) {
  assert(v >= 0);  // LINT-EXPECT: assert
  static_assert(sizeof(int) >= 4, "static_assert is not a violation");
  assert(v < 100);  // simty-lint: allow(assert)
  return v;
}

}  // namespace fixture
