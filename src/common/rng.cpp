#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace simty {

Rng::Rng(std::uint64_t seed, std::uint64_t sequence)
    : state_(0), inc_((sequence << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Rng::next_below(std::uint32_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: zero bound");
  // Lemire-style rejection: discard the biased low band.
  const std::uint32_t threshold = static_cast<std::uint32_t>(-bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 random bits -> [0, 1).
  const std::uint64_t hi = static_cast<std::uint64_t>(next_u32()) << 21;
  const std::uint64_t lo = next_u32() >> 11;
  return static_cast<double>(hi | lo) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::fork(std::uint64_t salt) {
  // Mix the salt through splitmix64 so nearby salts give unrelated streams.
  std::uint64_t z = salt + 0x9E3779B97F4A7C15ULL + state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return Rng(z, salt | 1u);
}

}  // namespace simty
