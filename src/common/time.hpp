#pragma once
// Strong time types for the SIMTY simulator.
//
// All simulation time is kept as signed 64-bit microsecond ticks. Strong
// types prevent the classic unit bugs (ms vs s) that plague power modelling
// code, and make Duration/TimePoint arithmetic explicit: a TimePoint is a
// position on the simulated timeline, a Duration is a distance on it.

#include <compare>
#include <concepts>
#include <cstdint>
#include <limits>
#include <string>

namespace simty {

/// A signed span of simulated time with microsecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors; prefer these over the raw-tick constructor.
  static constexpr Duration micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000}; }
  static constexpr Duration minutes(std::int64_t m) { return Duration{m * 60'000'000}; }
  static constexpr Duration hours(std::int64_t h) { return Duration{h * 3'600'000'000LL}; }

  /// Builds a duration from a floating-point second count (rounded to µs).
  static Duration from_seconds(double s);

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr std::int64_t ms() const { return us_ / 1000; }
  constexpr double seconds_f() const { return static_cast<double>(us_) / 1e6; }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  constexpr Duration operator-() const { return Duration{-us_}; }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }

  /// Scales by an integer or floating factor (floating result rounds to µs).
  template <std::integral I>
  constexpr Duration operator*(I k) const {
    return Duration{us_ * static_cast<std::int64_t>(k)};
  }
  Duration operator*(double k) const;
  Duration operator/(std::int64_t k) const { return Duration{us_ / k}; }

  /// Ratio of two durations as a double; divisor must be nonzero.
  double ratio(Duration denom) const;

  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering, e.g. "2.5s", "180ms", "3h".
  std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

template <std::integral I>
constexpr Duration operator*(I k, Duration d) {
  return d * k;
}
inline Duration operator*(double k, Duration d) { return d * k; }

/// An absolute instant on the simulated timeline (µs since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint from_us(std::int64_t us) { return TimePoint{us}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr double seconds_f() const { return static_cast<double>(us_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{us_ + d.us()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{us_ - d.us()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::micros(us_ - o.us_); }
  constexpr TimePoint& operator+=(Duration d) { us_ += d.us(); return *this; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  /// Renders as seconds with millisecond precision, e.g. "t=123.456s".
  std::string to_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace simty
