#pragma once
// Deterministic parallel fan-out of independent experiment runs.
//
// Every seeded run builds its own full stack (Simulator, device, RTC,
// wakelocks, accountant, alarm manager, workload — see run_experiment), so
// runs share no mutable state and the only cross-run coupling is the
// reduction. ParallelRunner reduces strictly in submission order: serial
// and parallel execution produce byte-identical RunResult vectors no
// matter how the OS schedules the workers. This is the substrate under
// run_repeated / run_repeated_stats / run_sweep and the sweep benches.

#include <vector>

#include "exp/experiment.hpp"

namespace simty::exp {

class ParallelRunner {
 public:
  /// `jobs` is the worker count; anything <= 1 runs inline on the calling
  /// thread (no pool at all — the exact serial path).
  explicit ParallelRunner(int jobs);

  int jobs() const { return jobs_; }

  /// Runs every config and returns the results in the order given. If any
  /// run throws, the first exception in submission order is rethrown.
  std::vector<RunResult> run(const std::vector<ExperimentConfig>& configs) const;

  /// Worker count for `--jobs auto` and the benches: $SIMTY_JOBS when set
  /// to a positive integer, else std::thread::hardware_concurrency
  /// (at least 1).
  static int default_jobs();

 private:
  int jobs_;
};

/// Convenience: fans `configs` out over `jobs` workers and reduces in
/// submission order. `jobs = 1` is the serial path.
std::vector<RunResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                 int jobs = 1);

}  // namespace simty::exp
