#include "apps/app_catalog.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace simty::apps {

namespace {

using alarm::RepeatMode;
using hw::Component;
using hw::ComponentSet;

AppProfile row(std::string name, std::int64_t rein_s, double alpha, RepeatMode mode,
               ComponentSet hardware, double hold_s, double jitter, bool in_light,
               bool irregular, std::uint64_t payload_bytes = 0) {
  AppProfile p;
  p.name = std::move(name);
  p.repeat = Duration::seconds(rein_s);
  p.alpha = alpha;
  p.mode = mode;
  p.hardware = hardware;
  p.base_hold = Duration::from_seconds(hold_s);
  p.hold_jitter = jitter;
  p.in_light = in_light;
  p.irregular = irregular;
  p.payload_bytes = payload_bytes;
  return p;
}

const ComponentSet kWifi{Component::kWifi};
const ComponentSet kNotify{Component::kSpeaker, Component::kVibrator};
const ComponentSet kWps{Component::kWps};
const ComponentSet kAccel{Component::kAccelerometer};

}  // namespace

std::vector<AppProfile> table3_catalog() {
  // Name, ReIn(s), alpha, S/D, HW, hold(s), jitter, light?, irregular?
  return {
      row("Facebook", 60, 0.00, RepeatMode::kDynamic, kWifi, 2.0, 0.30, true, false, 200000),
      row("imo.im", 180, 0.00, RepeatMode::kDynamic, kWifi, 1.8, 0.30, true, false, 60000),
      row("Line", 200, 0.75, RepeatMode::kDynamic, kWifi, 2.5, 0.30, true, false, 120000),
      row("BAND", 202, 0.00, RepeatMode::kDynamic, kWifi, 2.0, 0.30, true, false, 80000),
      row("YeeCall", 270, 0.00, RepeatMode::kStatic, kWifi, 1.5, 0.30, true, false, 40000),
      row("JusTalk", 300, 0.00, RepeatMode::kStatic, kWifi, 1.5, 0.30, true, false, 40000),
      row("Weibo", 300, 0.00, RepeatMode::kDynamic, kWifi, 2.2, 0.30, true, false, 150000),
      row("KakaoTalk", 600, 0.75, RepeatMode::kDynamic, kWifi, 2.5, 0.30, true, false, 120000),
      row("Viber", 600, 0.75, RepeatMode::kDynamic, kWifi, 2.0, 0.30, true, false, 90000),
      row("WeChat", 900, 0.75, RepeatMode::kDynamic, kWifi, 3.0, 0.30, true, false, 180000),
      row("Messenger", 900, 0.75, RepeatMode::kStatic, kWifi, 2.5, 0.30, true, false, 120000),
      // The paper's own Alarm Clock app: a 1 s speaker+vibrator notification
      // every 30 minutes, silenced automatically.
      row("Alarm Clock", 1800, 0.00, RepeatMode::kStatic, kNotify, 1.0, 0.00, true, false),
      row("Drink Water", 900, 0.75, RepeatMode::kStatic, kNotify, 1.0, 0.00, false, false),
      row("Noom Walk", 60, 0.75, RepeatMode::kStatic, kAccel, 2.0, 0.50, false, true),
      row("Moves", 90, 0.75, RepeatMode::kStatic, kAccel, 3.0, 0.50, false, true),
      row("FollowMee", 180, 0.75, RepeatMode::kStatic, kWps, 10.0, 0.40, false, true),
      row("Family Locator", 300, 0.75, RepeatMode::kStatic, kWps, 10.0, 0.40, false, true),
      row("Cell Tracker", 300, 0.75, RepeatMode::kStatic, kWps, 10.0, 0.40, false, true),
  };
}

std::vector<AppProfile> light_workload_profiles() {
  std::vector<AppProfile> out;
  for (AppProfile& p : table3_catalog()) {
    if (p.in_light) out.push_back(std::move(p));
  }
  SIMTY_CHECK(out.size() == 12);
  return out;
}

std::vector<AppProfile> heavy_workload_profiles() {
  auto out = table3_catalog();
  SIMTY_CHECK(out.size() == 18);
  return out;
}

AppProfile profile_by_name(const std::string& name) {
  for (AppProfile& p : table3_catalog()) {
    if (p.name == name) return std::move(p);
  }
  SIMTY_CHECK_MSG(false, "unknown app: " + name);
  return {};
}

}  // namespace simty::apps
