// Location-tracking scenario: the heavy workload's WPS apps are where
// hardware similarity earns its keep — a WPS fix costs ~3.65 J, and
// piggybacking several trackers onto one fix nearly divides the bill by
// the number of trackers. This example zooms into the per-component energy
// and the WPS on-cycle counts under NATIVE vs SIMTY.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"

using namespace simty;

int main() {
  auto run = [](exp::PolicyKind policy) {
    exp::ExperimentConfig c;
    c.policy = policy;
    c.workload = exp::WorkloadKind::kHeavy;
    return exp::run_repeated(c, 3);
  };
  std::printf("heavy workload (18 apps incl. 3 WPS trackers), 3 h x 3 seeds...\n\n");
  const exp::RunResult native = run(exp::PolicyKind::kNative);
  const exp::RunResult simty = run(exp::PolicyKind::kSimty);

  TextTable t("Per-component energy (J) and on-cycles");
  t.set_header({"Component", "NATIVE J", "SIMTY J", "NATIVE cycles", "SIMTY cycles"});
  const struct {
    const char* label;
    hw::Component c;
    const char* row;
  } kRows[] = {
      {"Wi-Fi", hw::Component::kWifi, "Wi-Fi"},
      {"WPS", hw::Component::kWps, "WPS"},
      {"Accelerometer", hw::Component::kAccelerometer, "Accelerometer"},
  };
  for (const auto& row : kRows) {
    auto cycles = [&](const exp::RunResult& r) {
      for (const auto& w : r.wakeups) {
        if (w.hardware == row.row) return w.actual;
      }
      return 0.0;
    };
    const auto idx = static_cast<std::size_t>(row.c);
    t.add_row({row.label,
               str_format("%.1f", native.energy.per_component[idx].joules_f()),
               str_format("%.1f", simty.energy.per_component[idx].joules_f()),
               str_format("%.0f", cycles(native)), str_format("%.0f", cycles(simty))});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("WPS floor: the smallest static tracker interval is 180 s, so 3 h\n"
              "of standby needs at least 10800/180 = 60 fixes; SIMTY runs at the\n"
              "floor while NATIVE pays for every tracker separately most of the\n"
              "time. Total: %.1f J (NATIVE) vs %.1f J (SIMTY), %s saved.\n",
              native.energy.total().joules_f(), simty.energy.total().joules_f(),
              percent(1.0 - simty.energy.total().ratio(native.energy.total())).c_str());
  return 0;
}
