#include "sim/event_queue.hpp"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>

#include "common/annotations.hpp"
#include "common/check.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::sim {

namespace {

// Transparent FNV-1a hasher/equality so interner lookups hash the incoming
// string_view directly — the shared-lock fast path allocates nothing.
struct LabelHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
  // Interner-only overload for the pool's own elements; never on the
  // per-event path.
  // simty-lint: allow(string-label)
  std::size_t operator()(const std::string& s) const noexcept {
    return (*this)(std::string_view(s));
  }
};

struct LabelEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

}  // namespace

const char* intern_label(std::string_view label) {
  // Node-based set: element addresses are stable across rehashing. The pool
  // is global (labels outlive every queue) and read-mostly — after warmup
  // every lookup hits the shared-lock fast path, so labeled events do not
  // serialize fleet shards on a mutex.
  static std::shared_mutex mu;
  // The interner is the one sanctioned owner of label strings: each label is
  // copied exactly once, ever, and the hot path only sees the c_str().
  // simty-lint: allow(string-label, hot-path-owning)
  static std::unordered_set<std::string, LabelHash, LabelEq> pool SIMTY_GUARDED_BY(mu);
  {
    const std::shared_lock<std::shared_mutex> read(mu);
    const auto it = pool.find(label);
    // Membership probe, not iteration — order never observed.
    // simty-lint: allow(unordered-iter)
    if (it != pool.end()) return it->c_str();
  }
  const std::unique_lock<std::shared_mutex> write(mu);
  return pool.emplace(label).first->c_str();
}

EventQueue::EventQueue() : EventQueue(nullptr) {}

EventQueue::EventQueue(common::Arena* arena)
    : keys_(arena), callbacks_(arena), meta_(arena), armed_words_(arena),
      staged_words_(arena), staged_(arena), scratch_pos_(arena),
      scratch_stack_(arena) {
  // Physical indices 0..kRoot-1 are padding so sibling groups are
  // cache-line-aligned; their keys are never read.
  keys_.resize(kRoot);
}

EventId EventQueue::schedule(TimePoint when, EventPriority priority, EventFn cb,
                             const char* label) {
  SIMTY_CHECK_MSG(static_cast<bool>(cb), "EventQueue::schedule: empty callback");
  const std::uint64_t seq = next_seq_++;
  SIMTY_CHECK_MSG(seq <= kMaxSeq, "EventQueue: sequence space exhausted");
  std::uint32_t idx = free_head_;
  if (idx != kNilSlot) {
    // Recycled slot: its slab lines are cold after a long churn. Kick off
    // both loads, run the sift-up while they are in flight, and only then
    // touch the slab (the free-list link lives in the meta line just
    // fetched).
    __builtin_prefetch(&callbacks_[idx], 1);
    __builtin_prefetch(&meta_[idx], 1);
    heap_push(Key{static_cast<std::uint64_t>(when.us()) ^ kWhenBias,
                  (static_cast<std::uint64_t>(priority) << 60) | (seq << 32) | idx});
    free_head_ = meta_[idx].next_free;
    meta_[idx].next_free = kNilSlot;
  } else {
    idx = acquire_slot();
    heap_push(Key{static_cast<std::uint64_t>(when.us()) ^ kWhenBias,
                  (static_cast<std::uint64_t>(priority) << 60) | (seq << 32) | idx});
  }
  callbacks_[idx] = std::move(cb);
  meta_[idx].label = label != nullptr ? label : "";
  set_armed(idx);
  ++live_;
  return EventId{(static_cast<std::uint64_t>(meta_[idx].generation) << 32) | idx};
}

bool EventQueue::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id.value & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id.value >> 32);
  if (idx >= callbacks_.size()) return false;
  if (!armed(idx) || meta_[idx].generation != gen) return false;
  if (staged_bit(idx)) {
    // The event was already detached from the heap by pop_batch(): drop it
    // from the staged buffer and recycle the slot immediately (it was at or
    // next to the root, which is when the old root-prune would have run).
    for (std::size_t i = staged_next_; i < staged_.size(); ++i) {
      if (staged_[i].slot == idx) {
        staged_[i].slot = kNilSlot;
        break;
      }
    }
    clear_staged_bit(idx);
    release_slot(idx);
    --live_;
    return true;
  }
  // Lazy cancellation: tombstone the slot; the heap node is recycled when
  // it surfaces at the root. Drop the callback now so captured resources
  // are released at cancel time, not at some later pop.
  clear_armed(idx);
  callbacks_[idx].reset();
  --live_;
  prune_root();
  return true;
}

TimePoint EventQueue::next_time() const {
  SIMTY_CHECK_MSG(live_ > 0, "EventQueue::next_time on empty queue");
  // Skip recycled/tombstoned staged entries without mutating (sync_staged
  // does the actual recycling on the next pop/has_staged call).
  std::size_t i = staged_next_;
  while (i < staged_.size() &&
         (staged_[i].slot == kNilSlot || !armed(staged_[i].slot))) {
    ++i;
  }
  if (i < staged_.size()) {
    // A callback may have scheduled an earlier-key event since the batch
    // was detached; the earliest pending is the min of both sources.
    if (heap_empty() || !key_less(keys_[kRoot], staged_[i].key)) {
      return key_time(staged_[i].key);
    }
  }
  // live_ > 0 and no live staged event => the heap root is live (prune
  // invariant maintained after every heap mutation).
  return key_time(keys_[kRoot]);
}

EventQueue::Fired EventQueue::pop() {
  SIMTY_CHECK_MSG(live_ > 0, "EventQueue::pop on empty queue");
  if (sync_staged()) {
    const Staged e = staged_[staged_next_];
    if (heap_empty() || !key_less(keys_[kRoot], e.key)) {
      ++staged_next_;
      Fired fired{key_time(e.key), std::move(callbacks_[e.slot]),
                  meta_[e.slot].label, key_priority(e.key)};
      clear_staged_bit(e.slot);
      release_slot(e.slot);
      --live_;
      return fired;
    }
    // A newly scheduled event outran the staged batch (same instant, higher
    // priority): fire it first, exactly as k independent pops would.
  }
  return pop_root();
}

std::size_t EventQueue::pop_batch() {
  SIMTY_CHECK_MSG(live_ > 0, "EventQueue::pop_batch on empty queue");
  SIMTY_CHECK_MSG(!sync_staged(), "EventQueue::pop_batch with staged events pending");
  const Key root_key = keys_[kRoot];
  const std::size_t n = keys_.size();
  // Fast path: no same-(time, priority) child under the root means the
  // group is the root alone — leave it for the plain pop() path.
  const std::size_t first = 4 * kRoot - 8;
  const std::size_t last = std::min(first + 4, n);
  bool multi = false;
  for (std::size_t c = first; c < last; ++c) {
    if (same_group(keys_[c], root_key)) {
      multi = true;
      break;
    }
  }
  if (!multi) return 1;

  // Collect the matched subtree. Every event with the root's (time,
  // priority) is reachable from the root through matching nodes: an
  // ancestor of a matching node has a key between the root key and the
  // node's key, and the only keys in that range share (time, priority).
  scratch_pos_.clear();
  scratch_stack_.clear();
  scratch_stack_.push_back(static_cast<std::uint32_t>(kRoot));
  while (!scratch_stack_.empty()) {
    const std::size_t pos = scratch_stack_.back();
    scratch_stack_.pop_back();
    scratch_pos_.push_back(static_cast<std::uint32_t>(pos));
    const std::size_t cfirst = 4 * pos - 8;
    const std::size_t clast = std::min(cfirst + 4, n);
    for (std::size_t c = cfirst; c < clast; ++c) {
      if (same_group(keys_[c], root_key)) {
        scratch_stack_.push_back(static_cast<std::uint32_t>(c));
      }
    }
  }

  // Stage the group in sequence order. Tombstones ride along as dead
  // entries so their slots are recycled at the same point in the hand-out
  // sequence where the old per-pop root prune would have recycled them.
  std::size_t live_staged = 0;
  for (const std::uint32_t pos : scratch_pos_) {
    staged_.push_back(Staged{keys_[pos], key_slot(keys_[pos])});
  }
  std::sort(staged_.begin(), staged_.end(),
            [](const Staged& a, const Staged& b) { return a.key.order < b.key.order; });
  for (const Staged& e : staged_) {
    if (armed(e.slot)) {
      set_staged_bit(e.slot);
      ++live_staged;
    }
  }

  // Multi-delete: remove positions in descending physical order, back-
  // filling each hole from the heap tail. Only sift-down is needed: any
  // not-yet-removed ancestor of a hole is itself matched, so it holds a
  // minimal (time, priority) key that no back-filled element can undercut.
  std::sort(scratch_pos_.begin(), scratch_pos_.end(),
            [](std::uint32_t a, std::uint32_t b) { return a > b; });
  for (const std::uint32_t pos : scratch_pos_) {
    const std::size_t tail = keys_.size() - 1;
    if (pos != tail) keys_[pos] = keys_[tail];
    keys_.pop_back();
    if (pos != tail) sift_down(pos);
  }
  prune_root();
  return live_staged;
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = meta_[idx].next_free;
    meta_[idx].next_free = kNilSlot;
    return idx;
  }
  SIMTY_CHECK_MSG(callbacks_.size() < kNilSlot, "EventQueue: slab index space exhausted");
  const auto idx = static_cast<std::uint32_t>(callbacks_.size());
  callbacks_.emplace_back();
  meta_.emplace_back();
  if ((idx & 63u) == 0) {
    armed_words_.push_back(0);
    staged_words_.push_back(0);
  }
  return idx;
}

void EventQueue::release_slot(std::uint32_t idx) {
  callbacks_[idx].reset();
  clear_armed(idx);
  SlotMeta& m = meta_[idx];
  m.label = "";
  // Invalidate every outstanding EventId naming this slot before it is
  // recycled (cancel-after-fire must return false, not hit the new tenant).
  ++m.generation;
  m.next_free = free_head_;
  free_head_ = idx;
}

void EventQueue::heap_push(Key key) {
  keys_.push_back(key);
  std::size_t pos = keys_.size() - 1;
  if (pos > kRoot) {
    std::size_t parent = (pos + 8) / 4;
    if (key_less(key, keys_[parent])) {
      // The entry ascends at least one level; a near-term event over a deep
      // far-future backlog usually ascends most of the way. Ancestor
      // positions are pure arithmetic — no data dependency — so issue the
      // whole chain of prefetches now and overlap what would otherwise be
      // one serial cache miss per level.
      for (std::size_t a = (parent + 8) / 4; a > kRoot; a = (a + 8) / 4) {
        __builtin_prefetch(&keys_[a]);
      }
      // Hole-based sift-up: shift losers down, write the new entry once.
      do {
        keys_[pos] = keys_[parent];
        pos = parent;
        parent = (pos + 8) / 4;
      } while (pos > kRoot && key_less(key, keys_[parent]));
    }
  }
  keys_[pos] = key;
}

void EventQueue::sift_down(std::size_t pos) {
  const std::size_t n = keys_.size();
  const Key key = keys_[pos];
  const std::size_t start = pos;
  // Bottom-up sift (Wegener's heapsort trick): the sifted key comes from
  // the heap tail, so it almost always belongs near a leaf. Walk the
  // min-child path all the way down without comparing against `key` —
  // that per-level compare is the one unpredictable branch in the classic
  // loop — then sift the key back up the hole path (expected O(1) steps).
  for (;;) {
    const std::size_t first = 4 * pos - 8;
    if (first + 3 < n) {
      // The grandchildren of a sibling group are 16 contiguous keys (4
      // cache lines): prefetch them all before picking the min child, so
      // the next level's loads are in flight regardless of which child
      // wins. The branchless min below serializes the descent on a cmov
      // chain — without this prefetch each level would pay a full cache
      // miss back to back.
      const std::size_t grand = 4 * first - 8;
      if (grand < n) {
        __builtin_prefetch(&keys_[grand]);
        __builtin_prefetch(&keys_[grand] + 4);
        __builtin_prefetch(&keys_[grand] + 8);
        __builtin_prefetch(&keys_[grand] + 12);
      }
      // Full sibling group: branchless min-of-4 on the widened keys.
      KeyWord best_w = key_word(keys_[first]);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < first + 4; ++c) {
        const KeyWord w = key_word(keys_[c]);
        const bool lt = w < best_w;
        best = lt ? c : best;
        best_w = lt ? w : best_w;
      }
      keys_[pos] = keys_[best];
      pos = best;
    } else if (first < n) {
      std::size_t best = first;
      for (std::size_t c = first + 1; c < n; ++c) {
        if (key_less(keys_[c], keys_[best])) best = c;
      }
      keys_[pos] = keys_[best];
      pos = best;
    } else {
      break;
    }
  }
  while (pos > start) {
    const std::size_t parent = (pos + 8) / 4;
    if (!key_less(key, keys_[parent])) break;
    keys_[pos] = keys_[parent];
    pos = parent;
  }
  keys_[pos] = key;
}

void EventQueue::heap_remove_root() {
  const std::size_t tail = keys_.size() - 1;
  if (tail != kRoot) keys_[kRoot] = keys_[tail];
  keys_.pop_back();
  if (tail != kRoot) sift_down(kRoot);
}

void EventQueue::prune_root() {
  while (!heap_empty() && !armed(key_slot(keys_[kRoot]))) {
    release_slot(key_slot(keys_[kRoot]));
    heap_remove_root();
  }
}

bool EventQueue::sync_staged() {
  while (staged_next_ < staged_.size()) {
    Staged& e = staged_[staged_next_];
    if (e.slot != kNilSlot) {
      if (armed(e.slot)) return true;
      // Tombstone carried into the batch: recycle it now, preserving the
      // release order the per-pop prune would have produced.
      release_slot(e.slot);
      e.slot = kNilSlot;
    }
    ++staged_next_;
  }
  if (staged_next_ != 0) {
    staged_.clear();
    staged_next_ = 0;
  }
  return false;
}

void EventQueue::save(snapshot::Writer& w) const {
  // Heap keys verbatim (minus the kRoot alignment padding): the restored
  // array is byte-for-byte the live one, so the resumed pop order is
  // trivially the straight run's.
  w.u64(keys_.size() - kRoot);
  for (std::size_t i = kRoot; i < keys_.size(); ++i) {
    w.u64(keys_[i].when_biased);
    w.u64(keys_[i].order);
  }
  w.u64(callbacks_.size());
  for (std::size_t i = 0; i < callbacks_.size(); ++i) {
    w.str(meta_[i].label);
    w.u32(meta_[i].generation);
    w.u32(meta_[i].next_free);
  }
  w.u64(armed_words_.size());
  for (std::size_t i = 0; i < armed_words_.size(); ++i) w.u64(armed_words_[i]);
  for (std::size_t i = 0; i < staged_words_.size(); ++i) w.u64(staged_words_[i]);
  w.u64(staged_.size());
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    w.u64(staged_[i].key.when_biased);
    w.u64(staged_[i].key.order);
    w.u32(staged_[i].slot);
  }
  w.u64(staged_next_);
  w.u32(free_head_);
  w.u64(next_seq_);
  w.u64(live_);
}

void EventQueue::restore(snapshot::SectionReader& s) {
  // Wholesale replacement: anything the owner scheduled during (re)construction
  // is discarded along with its slots.
  keys_.clear();
  keys_.resize(kRoot);
  callbacks_.clear();
  meta_.clear();
  armed_words_.clear();
  staged_words_.clear();
  staged_.clear();

  const std::uint64_t heap_n = s.u64();
  s.check_count(heap_n, 2 * 9);  // two tagged u64 per key
  for (std::uint64_t i = 0; i < heap_n; ++i) {
    const std::uint64_t when_biased = s.u64();
    const std::uint64_t order = s.u64();
    keys_.push_back(Key{when_biased, order});
  }
  const std::uint64_t slots = s.u64();
  s.check_count(slots, 9 + 2 * 5);  // str tag+len + two tagged u32 per slot
  SIMTY_CHECK_MSG(slots < kNilSlot, "EventQueue::restore: slot count out of range");
  for (std::uint64_t i = 0; i < slots; ++i) {
    // Cold path: restore runs once per resume, never per event.
    const std::string label = s.str();  // simty-lint: allow(string-label)
    const std::uint32_t generation = s.u32();
    const std::uint32_t next_free = s.u32();
    SIMTY_CHECK_MSG(next_free == kNilSlot || next_free < slots,
                    "EventQueue::restore: free-list link out of range");
    callbacks_.emplace_back();
    meta_.emplace_back();
    meta_[i].label = label.empty() ? "" : intern_label(label);
    meta_[i].generation = generation;
    meta_[i].next_free = next_free;
  }
  const std::uint64_t words = s.u64();
  SIMTY_CHECK_MSG(words == (slots + 63) / 64,
                  "EventQueue::restore: bit-word count mismatch");
  s.check_count(words, 2 * 9);
  for (std::uint64_t i = 0; i < words; ++i) armed_words_.push_back(s.u64());
  for (std::uint64_t i = 0; i < words; ++i) staged_words_.push_back(s.u64());
  const std::uint64_t staged_n = s.u64();
  s.check_count(staged_n, 2 * 9 + 5);
  for (std::uint64_t i = 0; i < staged_n; ++i) {
    const std::uint64_t when_biased = s.u64();
    const std::uint64_t order = s.u64();
    const std::uint32_t slot = s.u32();
    SIMTY_CHECK_MSG(slot == kNilSlot || slot < slots,
                    "EventQueue::restore: staged slot out of range");
    staged_.push_back(Staged{Key{when_biased, order}, slot});
  }
  staged_next_ = static_cast<std::size_t>(s.u64());
  SIMTY_CHECK_MSG(staged_next_ <= staged_.size(),
                  "EventQueue::restore: staged cursor out of range");
  free_head_ = s.u32();
  SIMTY_CHECK_MSG(free_head_ == kNilSlot || free_head_ < slots,
                  "EventQueue::restore: free head out of range");
  next_seq_ = s.u64();
  SIMTY_CHECK_MSG(next_seq_ >= 1 && next_seq_ <= kMaxSeq + 1,
                  "EventQueue::restore: sequence counter out of range");
  live_ = static_cast<std::size_t>(s.u64());

  // Cross-checks: every heap/staged slot reference must be in range, the
  // free list must terminate, and the armed population must equal live_ —
  // a corrupted snapshot fails here, not as UB later.
  for (std::size_t i = kRoot; i < keys_.size(); ++i) {
    SIMTY_CHECK_MSG(key_slot(keys_[i]) < slots,
                    "EventQueue::restore: heap key slot out of range");
  }
  std::size_t free_len = 0;
  for (std::uint32_t f = free_head_; f != kNilSlot; f = meta_[f].next_free) {
    SIMTY_CHECK_MSG(++free_len <= slots, "EventQueue::restore: free-list cycle");
  }
  std::size_t armed_count = 0;
  for (const std::uint64_t word : armed_words_) {
    armed_count += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  SIMTY_CHECK_MSG(armed_count == live_,
                  "EventQueue::restore: live count does not match armed bits");
}

void EventQueue::rebind(EventId id, EventFn cb) {
  SIMTY_CHECK_MSG(static_cast<bool>(cb), "EventQueue::rebind: empty callback");
  const auto idx = static_cast<std::uint32_t>(id.value & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id.value >> 32);
  SIMTY_CHECK_MSG(idx < callbacks_.size() && armed(idx) && meta_[idx].generation == gen,
                  "EventQueue::rebind: id does not name a restored live event");
  SIMTY_CHECK_MSG(!callbacks_[idx], "EventQueue::rebind: event already bound");
  callbacks_[idx] = std::move(cb);
}

bool EventQueue::fully_bound() const {
  for (std::uint32_t i = 0; i < callbacks_.size(); ++i) {
    if (armed(i) && !callbacks_[i]) return false;
  }
  return true;
}

EventQueue::Fired EventQueue::pop_root() {
  const Key key = keys_[kRoot];
  const std::uint32_t slot = key_slot(key);
  // Overlap the two random slab touches (callback move-out, meta release)
  // with the root sift: issue the loads, fix the heap, then read the slab.
  __builtin_prefetch(&callbacks_[slot], 1);
  __builtin_prefetch(&meta_[slot], 1);
  heap_remove_root();
  Fired fired{key_time(key), std::move(callbacks_[slot]), meta_[slot].label,
              key_priority(key)};
  release_slot(slot);
  --live_;
  prune_root();
  // A pop is usually followed by another: start fetching the next root's
  // slab lines so the next pop's payload access is already in flight.
  if (!heap_empty()) {
    const std::uint32_t next = key_slot(keys_[kRoot]);
    __builtin_prefetch(&callbacks_[next], 1);
    __builtin_prefetch(&meta_[next], 1);
  }
  return fired;
}

}  // namespace simty::sim
