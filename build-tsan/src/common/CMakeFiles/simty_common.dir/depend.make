# Empty dependencies file for simty_common.
# This may be replaced when dependencies are built.
