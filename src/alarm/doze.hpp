#pragma once
// Android-M-style Doze controller.
//
// The modern AOSP answer to the problem this paper attacks: once the device
// has idled long enough, ALL wakeup alarms are deferred to maintenance
// windows whose spacing grows over time; any external interaction (user
// button, push) exits doze. Doze saves more energy than window/grace-based
// alignment because it ignores both — and the interval audit shows exactly
// what that costs: deliveries drift far beyond their repeating intervals.
// Implemented on the AlarmManager's DeliveryGate hook.

#include <cstdint>
#include <vector>

#include "alarm/alarm_manager.hpp"
#include "hw/device.hpp"
#include "sim/simulator.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::alarm {

/// Maintenance-window scheduler gating the RTC.
class DozeController {
 public:
  struct Config {
    /// Idle time (no external interaction) before doze engages.
    Duration idle_threshold = Duration::minutes(30);

    /// Maintenance-window spacing; escalates through the list and stays at
    /// the last entry (AOSP uses roughly 1h/2h/4h/6h).
    std::vector<Duration> window_schedule = {Duration::hours(1), Duration::hours(2),
                                             Duration::hours(4), Duration::hours(6)};
  };

  DozeController(sim::Simulator& sim, AlarmManager& manager, hw::Device& device,
                 Config config);

  DozeController(const DozeController&) = delete;
  DozeController& operator=(const DozeController&) = delete;

  /// Installs the gate and arms the idle timer. Call once.
  void enable();

  bool dozing() const { return dozing_; }
  std::uint64_t doze_entries() const { return doze_entries_; }
  std::uint64_t maintenance_windows() const { return maintenance_windows_; }

  /// Serializes doze phase, window schedule position, and the pending idle
  /// timer. restore() expects the controller to be enable()d exactly as the
  /// saved one was (the gate and wake listener are re-installed by enable();
  /// the idle timer is rebound, not re-armed).
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  TimePoint gate(TimePoint proposed);
  void enter_doze();
  void exit_doze();
  void arm_idle_timer();

  sim::Simulator& sim_;
  AlarmManager& manager_;
  hw::Device& device_;
  Config config_;

  bool enabled_ = false;
  bool dozing_ = false;
  std::size_t schedule_index_ = 0;
  TimePoint next_window_;
  std::optional<sim::EventId> idle_timer_;
  std::uint64_t doze_entries_ = 0;
  std::uint64_t maintenance_windows_ = 0;
};

}  // namespace simty::alarm
