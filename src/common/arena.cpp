#include "common/arena.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace simty::common {

namespace {

// Arena blocks back large, long-lived, randomly accessed arrays (the SoA
// heap keys and payload slabs). At fleet-aggregate depth those arrays span
// tens of megabytes, so with 4K pages nearly every sift level is a TLB miss
// on top of the cache miss. On Linux with THP in madvise mode, advising the
// page-aligned interior of each block upgrades it to 2M pages. Best-effort:
// any error (THP disabled, range too small) is deliberately ignored.
void advise_huge_pages(std::byte* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::uintptr_t kPage = 4096;
  // The address value never reaches simulation state — it only rounds the
  // madvise range — so this cast cannot leak ASLR into results.
  const auto addr = reinterpret_cast<std::uintptr_t>(p);  // simty-analyze: allow(taint)
  const std::uintptr_t first = (addr + kPage - 1) & ~(kPage - 1);
  const std::uintptr_t last = (addr + bytes) & ~(kPage - 1);
  if (last > first) {
    (void)::madvise(reinterpret_cast<void*>(first), last - first, MADV_HUGEPAGE);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

std::byte* aligned_block_alloc(std::size_t bytes) {
  auto* p = static_cast<std::byte*>(
      ::operator new(bytes, std::align_val_t{Arena::kMaxAlign}));
  if (bytes >= 2u << 20) advise_huge_pages(p, bytes);
  return p;
}

void aligned_block_free(std::byte* p) {
  ::operator delete(static_cast<void*>(p), std::align_val_t{Arena::kMaxAlign});
}

std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + (align - 1)) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t first_block_bytes)
    : first_block_bytes_(first_block_bytes == 0 ? kDefaultFirstBlockBytes
                                                : first_block_bytes) {}

Arena::~Arena() {
  for (Block& b : blocks_) aligned_block_free(b.data);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  SIMTY_CHECK_MSG(align != 0 && (align & (align - 1)) == 0 && align <= kMaxAlign,
                  "Arena::allocate: alignment must be a power of two <= kMaxAlign");
  if (current_ < blocks_.size()) {
    const std::size_t at = align_up(offset_, align);
    if (bytes <= blocks_[current_].capacity - at &&
        at <= blocks_[current_].capacity) {
      offset_ = at + bytes;
      return blocks_[current_].data + at;
    }
  }
  return allocate_slow(bytes, align);
}

void* Arena::allocate_slow(std::size_t bytes, std::size_t /*align*/) {
  // Block bases are kMaxAlign-aligned, so offset 0 satisfies any legal
  // alignment and the parameter goes unused here. Try retained blocks first.
  while (current_ + 1 < blocks_.size()) {
    ++current_;
    offset_ = 0;
    if (bytes <= blocks_[current_].capacity) {
      offset_ = bytes;
      return blocks_[current_].data;
    }
  }
  // Grow: double the last capacity so the block count stays logarithmic in
  // total footprint, but never smaller than the request itself.
  std::size_t cap = blocks_.empty() ? first_block_bytes_ : blocks_.back().capacity * 2;
  if (cap < bytes) cap = align_up(bytes, kMaxAlign);
  blocks_.push_back(Block{aligned_block_alloc(cap), cap});
  ++block_allocs_;
  current_ = blocks_.size() - 1;
  offset_ = bytes;
  return blocks_[current_].data;
}

void Arena::reset() {
  current_ = 0;
  offset_ = 0;
  ++resets_;
}

Arena::Stats Arena::stats() const {
  Stats s;
  s.block_allocs = block_allocs_;
  s.resets = resets_;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    s.reserved_bytes += blocks_[i].capacity;
    if (i < current_) s.used_bytes += blocks_[i].capacity;
  }
  if (current_ < blocks_.size()) s.used_bytes += offset_;
  return s;
}

}  // namespace simty::common
