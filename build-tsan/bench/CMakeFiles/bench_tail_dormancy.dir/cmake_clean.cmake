file(REMOVE_RECURSE
  "CMakeFiles/bench_tail_dormancy.dir/bench_tail_dormancy.cpp.o"
  "CMakeFiles/bench_tail_dormancy.dir/bench_tail_dormancy.cpp.o.d"
  "bench_tail_dormancy"
  "bench_tail_dormancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tail_dormancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
