#include "alarm/doze.hpp"

#include <gtest/gtest.h>

#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "metrics/interval_audit.hpp"
#include "support/framework_fixture.hpp"

namespace simty::alarm {
namespace {

using hw::Component;
using hw::ComponentSet;

class DozeTest : public test::FrameworkFixture {
 protected:
  DozeController::Config quick_config() {
    DozeController::Config c;
    c.idle_threshold = Duration::minutes(10);
    c.window_schedule = {Duration::minutes(20), Duration::minutes(40)};
    return c;
  }
};

TEST_F(DozeTest, EngagesAfterIdleThreshold) {
  init(std::make_unique<SimtyPolicy>());
  DozeController doze(sim_, *manager_, *device_, quick_config());
  doze.enable();
  EXPECT_FALSE(doze.dozing());
  sim_.run_until(at(11 * 60));
  EXPECT_TRUE(doze.dozing());
  EXPECT_EQ(doze.doze_entries(), 1u);
}

TEST_F(DozeTest, DefersWakeupsToMaintenanceWindows) {
  init(std::make_unique<SimtyPolicy>());
  DozeController doze(sim_, *manager_, *device_, quick_config());
  doze.enable();
  // A 5-minute sync that would fire 12 times in an hour undozed.
  const AlarmId id = manager_->register_alarm(
      AlarmSpec::repeating("sync", AppId{1}, RepeatMode::kDynamic,
                           Duration::seconds(300), 0.0, 0.5),
      at(300), task(ComponentSet{Component::kWifi}, Duration::seconds(1)));
  sim_.run_until(at(3 * 3600));
  // Doze engaged at 10 min; windows at ~30 min then every 40 min. The sync
  // fires once per window instead of every 5 minutes.
  const auto recs = deliveries_of(id);
  ASSERT_GE(recs.size(), 3u);
  EXPECT_LE(recs.size(), 10u);  // far below the 36 undozed deliveries
  EXPECT_GT(doze.maintenance_windows(), 2u);
  // Consecutive deliveries in doze are a maintenance interval apart.
  bool saw_window_gap = false;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    const Duration gap = recs[i].delivered - recs[i - 1].delivered;
    if (gap >= Duration::minutes(19)) saw_window_gap = true;
  }
  EXPECT_TRUE(saw_window_gap);
}

TEST_F(DozeTest, ExternalWakeExitsDoze) {
  init(std::make_unique<SimtyPolicy>());
  DozeController doze(sim_, *manager_, *device_, quick_config());
  doze.enable();
  sim_.run_until(at(15 * 60));
  ASSERT_TRUE(doze.dozing());
  // The user presses the power button.
  device_->request_awake(hw::WakeReason::kUserButton, [] {});
  sim_.run_until(at(16 * 60));
  EXPECT_FALSE(doze.dozing());
  // ...and doze re-engages after another idle threshold.
  sim_.run_until(at(27 * 60));
  EXPECT_TRUE(doze.dozing());
  EXPECT_EQ(doze.doze_entries(), 2u);
}

TEST_F(DozeTest, BreaksPeriodicityGuaranteesMeasurably) {
  // The point of the comparison: doze violates the §3.2.2 bounds that
  // SIMTY preserves.
  init(std::make_unique<SimtyPolicy>());
  metrics::IntervalAudit audit;
  manager_->add_delivery_observer(audit.observer());
  DozeController doze(sim_, *manager_, *device_, quick_config());
  doze.enable();
  manager_->register_alarm(
      AlarmSpec::repeating("sync", AppId{1}, RepeatMode::kDynamic,
                           Duration::seconds(300), 0.75, 0.96),
      at(300), task(ComponentSet{Component::kWifi}, Duration::seconds(1)));
  sim_.run_until(at(3 * 3600));
  EXPECT_FALSE(audit.check_bounds(0.96).empty());
  EXPECT_GT(audit.worst_gap_ratio(), 1.96);
}

TEST_F(DozeTest, GateNeverAdvancesWakeups) {
  init(std::make_unique<NativePolicy>());
  // A gate that tried to advance would trip the manager's check; the doze
  // gate only defers — deliveries never happen before their nominal times.
  DozeController doze(sim_, *manager_, *device_, quick_config());
  doze.enable();
  manager_->register_alarm(
      AlarmSpec::repeating("sync", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.5, 0.9),
      at(600), noop_task());
  sim_.run_until(at(2 * 3600));
  for (const auto& r : deliveries_) EXPECT_GE(r.delivered, r.nominal);
}

TEST_F(DozeTest, ConfigValidation) {
  init(std::make_unique<NativePolicy>());
  DozeController::Config c;
  c.idle_threshold = Duration::zero();
  EXPECT_THROW(DozeController(sim_, *manager_, *device_, c), std::logic_error);
  c = DozeController::Config{};
  c.window_schedule.clear();
  EXPECT_THROW(DozeController(sim_, *manager_, *device_, c), std::logic_error);
  c = DozeController::Config{};
  c.window_schedule = {Duration::zero()};
  EXPECT_THROW(DozeController(sim_, *manager_, *device_, c), std::logic_error);
  DozeController ok(sim_, *manager_, *device_, DozeController::Config{});
  ok.enable();
  EXPECT_THROW(ok.enable(), std::logic_error);
}

}  // namespace
}  // namespace simty::alarm
