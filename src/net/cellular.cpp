#include "net/cellular.hpp"

#include <memory>

#include "common/check.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/tracer.hpp"

namespace simty::net {

CellularStandby::CellularStandby(sim::Simulator& sim, alarm::AlarmManager& manager,
                                 hw::PowerBus& bus, RrcConfig config)
    : sim_(sim), manager_(manager), rrc_(sim, config, bus) {}

void CellularStandby::deploy(const std::vector<CellularSyncSpec>& specs, Rng rng,
                             double beta) {
  SIMTY_CHECK_MSG(!finalized_, "CellularStandby::deploy after finalize");
  std::uint32_t app_seq = 1;
  for (const CellularSyncSpec& spec : specs) {
    // Per-app child stream: the draw sequence of one app is independent of
    // how many deliveries the others make.
    auto app_rng = std::make_shared<Rng>(rng.fork(app_seq));
    deployed_.push_back(DeployedSync{spec, app_rng});
    manager_.register_alarm(
        alarm::AlarmSpec::repeating(spec.name + ".cell", alarm::AppId{app_seq},
                                    spec.mode, spec.repeat, spec.alpha, beta),
        TimePoint::origin() + Duration::seconds(5 + app_seq * 7) + spec.repeat,
        sync_handler(deployed_.back()));
    ++app_seq;
  }
}

void CellularStandby::deploy_paging(hw::Device& device, hw::PowerBus& bus,
                                    hw::WakeupReceiver* wur,
                                    const DrxConfig& config, Rng rng) {
  SIMTY_CHECK_MSG(!finalized_, "CellularStandby::deploy_paging after finalize");
  SIMTY_CHECK_MSG(pager_ == nullptr,
                  "CellularStandby::deploy_paging called twice");
  pager_ = std::make_unique<DrxPager>(sim_, rrc_, device, bus, wur, config, rng);
  pager_->start();
}

alarm::DeliveryHandler CellularStandby::sync_handler(const DeployedSync& sync) {
  const Duration hold = sync.spec.hold;
  const double jitter = sync.spec.hold_jitter;
  std::shared_ptr<Rng> app_rng = sync.rng;
  RrcMachine* rrc = &rrc_;
  return [rrc, hold, jitter, app_rng](const alarm::Alarm&, TimePoint) {
    const Duration h = hold * app_rng->uniform(1.0 - jitter, 1.0 + jitter);
    rrc->data_activity(h);
    // CPU-only task spec: the radio rail is billed by the RRC machine.
    return alarm::TaskSpec{hw::ComponentSet::none(), h};
  };
}

alarm::DeliveryHandler CellularStandby::handler_for(const std::string& tag) {
  for (const DeployedSync& sync : deployed_) {
    if (tag == sync.spec.name + ".cell") return sync_handler(sync);
  }
  return {};
}

void CellularStandby::save(snapshot::Writer& w) const {
  w.boolean(finalized_);
  rrc_.save(w);
  w.u64(deployed_.size());
  for (const DeployedSync& sync : deployed_) {
    w.u64(sync.rng->raw_state());
    w.u64(sync.rng->raw_inc());
  }
  w.boolean(pager_ != nullptr);
  if (pager_) pager_->save(w);
}

void CellularStandby::restore(snapshot::SectionReader& s) {
  finalized_ = s.boolean();
  rrc_.restore(s);
  const std::uint64_t count = s.u64();
  SIMTY_CHECK_MSG(count == deployed_.size(),
                  "CellularStandby::restore: deployed sync count mismatch");
  s.check_count(count, 18);
  for (DeployedSync& sync : deployed_) {
    const std::uint64_t state = s.u64();
    const std::uint64_t inc = s.u64();
    *sync.rng = Rng::from_raw(state, inc);
  }
  SIMTY_CHECK_MSG(s.boolean() == (pager_ != nullptr),
                  "CellularStandby::restore: paging deployment mismatch");
  if (pager_) pager_->restore(s);
}

void CellularStandby::finalize(TimePoint horizon) {
  // time_in() spans are only complete after this flush; skipping it drops
  // the open DCH/FACH span from the accounting.
  if (pager_) pager_->finalize(horizon);
  rrc_.finalize(horizon);
  finalized_ = true;
  SIMTY_TRACE_INSTANT(horizon, trace::TraceCategory::kNet, "cellular-finalize",
                      static_cast<std::int64_t>(rrc_.idle_promotions() +
                                                rrc_.fach_promotions()));
}

}  // namespace simty::net
