# Empty dependencies file for test_usage.
# This may be replaced when dependencies are built.
