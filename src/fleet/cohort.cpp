#include "fleet/cohort.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <set>
#include <stdexcept>

#include "apps/app_catalog.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace simty::fleet {

namespace {

// FNV-1a over the cohort name: mixes the name into the stream seed so two
// cohorts never share a device stream. Deterministic by construction (no
// std::hash — its value is implementation-defined).
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

const std::vector<apps::AppProfile>& table3() {
  static const std::vector<apps::AppProfile> kTable = apps::table3_catalog();
  return kTable;
}

Duration scaled(Duration d, double factor, double floor_seconds) {
  return Duration::from_seconds(std::max(d.seconds_f() * factor, floor_seconds));
}

}  // namespace

void CohortSpec::validate() const {
  SIMTY_CHECK_MSG(!name.empty(), "cohort name must be non-empty");
  SIMTY_CHECK_MSG(weight > 0.0, "cohort weight must be positive");
  SIMTY_CHECK_MSG(min_apps >= 1, "cohort needs at least one app");
  SIMTY_CHECK_MSG(min_apps <= max_apps, "cohort min_apps must be <= max_apps");
  SIMTY_CHECK_MSG(max_apps <= table3().size(),
                  "cohort max_apps exceeds the Table 3 catalog");
  SIMTY_CHECK_MSG(rein_jitter >= 0.0 && rein_jitter < 1.0,
                  "cohort rein_jitter must be in [0, 1)");
  SIMTY_CHECK_MSG(alpha_jitter >= 0.0 && alpha_jitter < 1.0,
                  "cohort alpha_jitter must be in [0, 1)");
  SIMTY_CHECK_MSG(beta_lo >= 0.0 && beta_lo <= beta_hi && beta_hi < 1.0,
                  "cohort beta range must satisfy 0 <= lo <= hi < 1");
  SIMTY_CHECK_MSG(wearable_fraction >= 0.0 && wearable_fraction <= 1.0,
                  "cohort wearable_fraction must be in [0, 1]");
  SIMTY_CHECK_MSG(power_scale_lo > 0.0 && power_scale_lo <= power_scale_hi,
                  "cohort power scale range must satisfy 0 < lo <= hi");
  SIMTY_CHECK_MSG(
      degraded_network_fraction >= 0.0 && degraded_network_fraction <= 1.0,
      "cohort degraded_network_fraction must be in [0, 1]");
  SIMTY_CHECK_MSG(degraded_hold_factor_max >= 1.0,
                  "cohort degraded_hold_factor_max must be >= 1");
  SIMTY_CHECK_MSG(standby > Duration::zero(), "cohort standby must be positive");
}

hw::PowerModel scale_power_model(hw::PowerModel model, double factor) {
  model.sleep = model.sleep * factor;
  model.waking = model.waking * factor;
  model.awake_base = model.awake_base * factor;
  model.wake_transition = model.wake_transition * factor;
  for (hw::ComponentPower& c : model.components) {
    c.activation = c.activation * factor;
    c.active = c.active * factor;
    c.tail_power = c.tail_power * factor;
  }
  return model;
}

DeviceSample sample_device(const CohortSpec& spec, std::uint64_t fleet_seed,
                           std::uint64_t device_index) {
  const std::vector<apps::AppProfile>& table = table3();
  // One PCG32 stream per device: counter-keyed on the device index, seeded
  // by the fleet seed mixed with the cohort name. The draw order below is
  // fixed, so the sample depends on nothing but (spec, seed, index).
  Rng rng(fleet_seed ^ fnv1a64(spec.name), device_index);

  DeviceSample s;
  s.device_index = device_index;

  // 1. Catalog subset: size, then a partial Fisher–Yates pick; the chosen
  //    rows keep their Table 3 (launch) order.
  const auto span = static_cast<std::uint32_t>(spec.max_apps - spec.min_apps + 1);
  const std::size_t k = spec.min_apps + rng.next_below(span);
  std::vector<std::uint32_t> indices(table.size());
  std::iota(indices.begin(), indices.end(), 0u);
  for (std::size_t i = 0; i < k; ++i) {
    const auto remaining = static_cast<std::uint32_t>(table.size() - i);
    std::swap(indices[i], indices[i + rng.next_below(remaining)]);
  }
  indices.resize(k);
  std::sort(indices.begin(), indices.end());

  // 2. Per-app ReIn / alpha perturbations, in catalog order.
  s.catalog.reserve(k);
  for (const std::uint32_t idx : indices) {
    apps::AppProfile p = table[idx];
    const double rein_factor =
        rng.uniform(1.0 - spec.rein_jitter, 1.0 + spec.rein_jitter);
    p.repeat = scaled(p.repeat, rein_factor, 1.0);
    const double alpha_factor =
        rng.uniform(1.0 - spec.alpha_jitter, 1.0 + spec.alpha_jitter);
    p.alpha = std::clamp(p.alpha * alpha_factor, 0.0, 1.0);
    s.catalog.push_back(std::move(p));
  }

  // 3. Hardware profile.
  s.wearable = rng.chance(spec.wearable_fraction);
  s.power_scale = rng.uniform(spec.power_scale_lo, spec.power_scale_hi);
  s.power_model = scale_power_model(
      s.wearable ? hw::PowerModel::wearable() : hw::PowerModel::nexus5(),
      s.power_scale);

  // 4. Network quality: degraded devices hold the radio longer per sync.
  s.degraded_network = rng.chance(spec.degraded_network_fraction);
  if (s.degraded_network) {
    s.hold_factor = rng.uniform(1.0, spec.degraded_hold_factor_max);
    for (apps::AppProfile& p : s.catalog) {
      p.base_hold = scaled(p.base_hold, s.hold_factor, 0.0);
    }
  }

  // 5. Platform grace factor and the device's run seed.
  s.beta = rng.uniform(spec.beta_lo, spec.beta_hi);
  s.run_seed = (static_cast<std::uint64_t>(rng.next_u32()) << 32) |
               static_cast<std::uint64_t>(rng.next_u32());
  return s;
}

std::string describe(const DeviceSample& s) {
  std::string out = str_format(
      "device %llu seed %llu wearable %d scale %.17g degraded %d hold %.17g "
      "beta %.17g\n",
      static_cast<unsigned long long>(s.device_index),
      static_cast<unsigned long long>(s.run_seed), s.wearable ? 1 : 0,
      s.power_scale, s.degraded_network ? 1 : 0, s.hold_factor, s.beta);
  for (const apps::AppProfile& p : s.catalog) {
    out += str_format("  app %s repeat_us %lld alpha %.17g hold_us %lld\n",
                      p.name.c_str(), static_cast<long long>(p.repeat.us()),
                      p.alpha, static_cast<long long>(p.base_hold.us()));
  }
  return out;
}

std::vector<CohortSpec> default_cohorts() {
  CohortSpec mainstream;
  mainstream.name = "mainstream";
  mainstream.weight = 2.0;
  mainstream.min_apps = 4;
  mainstream.max_apps = 12;

  CohortSpec wearables;
  wearables.name = "wearables";
  wearables.weight = 1.0;
  wearables.min_apps = 2;
  wearables.max_apps = 6;
  wearables.wearable_fraction = 1.0;
  wearables.power_scale_lo = 0.9;
  wearables.power_scale_hi = 1.1;

  CohortSpec poor_network;
  poor_network.name = "poor-network";
  poor_network.weight = 1.0;
  poor_network.min_apps = 4;
  poor_network.max_apps = 10;
  poor_network.degraded_network_fraction = 1.0;
  poor_network.degraded_hold_factor_max = 2.5;

  return {mainstream, wearables, poor_network};
}

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& message) {
  throw std::runtime_error(
      str_format("cohort file line %zu: %s", line_no, message.c_str()));
}

double parse_num(const std::string& token, std::size_t line_no) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) parse_fail(line_no, "bad number: " + token);
    return v;
  } catch (const std::invalid_argument&) {
    parse_fail(line_no, "bad number: " + token);
  } catch (const std::out_of_range&) {
    parse_fail(line_no, "number out of range: " + token);
  }
}

}  // namespace

std::vector<CohortSpec> parse_cohorts(std::string_view text) {
  std::vector<CohortSpec> cohorts;
  std::set<std::string> section_keys;  // keys seen in the current section
  std::size_t line_no = 0;
  for (const std::string& raw : split(std::string(text), '\n')) {
    ++line_no;
    std::string line = trim(raw);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') parse_fail(line_no, "unterminated [section]");
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) parse_fail(line_no, "empty cohort name");
      CohortSpec spec;
      spec.name = name;
      cohorts.push_back(std::move(spec));
      section_keys.clear();
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) parse_fail(line_no, "expected key = value");
    if (cohorts.empty()) parse_fail(line_no, "key before any [cohort] section");
    const std::string key = trim(line.substr(0, eq));
    // A repeated key within one cohort is almost always a copy-paste error,
    // and silently keeping the later value would mask it.
    if (!section_keys.insert(key).second) {
      parse_fail(line_no, "duplicate key: " + key);
    }
    std::vector<std::string> values;
    for (const std::string& v : split(trim(line.substr(eq + 1)), ' ')) {
      if (!trim(v).empty()) values.push_back(trim(v));
    }
    auto one = [&]() -> double {
      if (values.size() != 1) parse_fail(line_no, key + " needs one value");
      return parse_num(values[0], line_no);
    };
    auto two = [&](double* lo, double* hi) {
      if (values.size() != 2) parse_fail(line_no, key + " needs two values");
      *lo = parse_num(values[0], line_no);
      *hi = parse_num(values[1], line_no);
    };

    CohortSpec& spec = cohorts.back();
    if (key == "weight") {
      spec.weight = one();
    } else if (key == "apps") {
      double lo = 0.0, hi = 0.0;
      two(&lo, &hi);
      if (lo < 1.0 || hi < lo) parse_fail(line_no, "apps needs 1 <= lo <= hi");
      spec.min_apps = static_cast<std::size_t>(lo);
      spec.max_apps = static_cast<std::size_t>(hi);
    } else if (key == "rein_jitter") {
      spec.rein_jitter = one();
    } else if (key == "alpha_jitter") {
      spec.alpha_jitter = one();
    } else if (key == "beta") {
      two(&spec.beta_lo, &spec.beta_hi);
    } else if (key == "wearable_fraction") {
      spec.wearable_fraction = one();
    } else if (key == "power_scale") {
      two(&spec.power_scale_lo, &spec.power_scale_hi);
    } else if (key == "degraded_fraction") {
      spec.degraded_network_fraction = one();
    } else if (key == "degraded_hold_max") {
      spec.degraded_hold_factor_max = one();
    } else if (key == "standby_minutes") {
      const double m = one();
      if (m <= 0.0) parse_fail(line_no, "standby_minutes must be positive");
      spec.standby = Duration::from_seconds(m * 60.0);
    } else if (key == "system_alarms") {
      if (values.size() != 1 || (values[0] != "on" && values[0] != "off")) {
        parse_fail(line_no, "system_alarms needs on|off");
      }
      spec.system_alarms = values[0] == "on";
    } else {
      parse_fail(line_no, "unknown key: " + key);
    }
  }
  if (cohorts.empty()) throw std::runtime_error("cohort file defines no cohorts");
  for (const CohortSpec& spec : cohorts) {
    try {
      spec.validate();
    } catch (const std::logic_error& e) {
      throw std::runtime_error("cohort [" + spec.name + "]: " + e.what());
    }
  }
  return cohorts;
}

std::vector<CohortSpec> load_cohort_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot read cohort file " + path);
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  std::fclose(f);
  return parse_cohorts(text);
}

std::vector<std::uint64_t> apportion_devices(
    std::uint64_t total, const std::vector<CohortSpec>& cohorts) {
  SIMTY_CHECK_MSG(!cohorts.empty(), "apportion over zero cohorts");
  double weight_sum = 0.0;
  for (const CohortSpec& c : cohorts) {
    SIMTY_CHECK_MSG(c.weight > 0.0, "cohort weight must be positive");
    weight_sum += c.weight;
  }
  std::vector<std::uint64_t> counts(cohorts.size(), 0);
  std::vector<double> fractions(cohorts.size(), 0.0);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    const double exact =
        static_cast<double>(total) * (cohorts[i].weight / weight_sum);
    counts[i] = static_cast<std::uint64_t>(exact);
    fractions[i] = exact - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  // Hand out the remainder by largest fractional part, ties by cohort
  // order — a full deterministic ordering, so the apportionment is a pure
  // function of (total, weights).
  std::vector<std::size_t> order(cohorts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fractions[a] > fractions[b];
  });
  for (std::size_t i = 0; assigned < total; ++i) {
    ++counts[order[i % order.size()]];
    ++assigned;
  }
  return counts;
}

}  // namespace simty::fleet
