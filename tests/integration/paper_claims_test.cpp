// End-to-end assertions of the paper's headline claims (the "shape" of
// §4.2's results): who wins, by roughly what factor, and which guarantees
// hold. Runs full 3-hour standby sessions.

#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace simty::exp {
namespace {

class PaperClaims : public ::testing::Test {
 protected:
  static RunResult run(PolicyKind policy, WorkloadKind workload) {
    ExperimentConfig c;
    c.policy = policy;
    c.workload = workload;
    return run_repeated(c, 3);
  }

  static double cpu_actual(const RunResult& r) {
    for (const auto& w : r.wakeups) {
      if (w.hardware == "CPU") return w.actual;
    }
    return 0.0;
  }
  static double hw_actual(const RunResult& r, const std::string& name) {
    for (const auto& w : r.wakeups) {
      if (w.hardware == name) return w.actual;
    }
    return 0.0;
  }

  // Shared across tests in this suite: run each config once.
  static const RunResult& light_native() {
    static const RunResult r = run(PolicyKind::kNative, WorkloadKind::kLight);
    return r;
  }
  static const RunResult& light_simty() {
    static const RunResult r = run(PolicyKind::kSimty, WorkloadKind::kLight);
    return r;
  }
  static const RunResult& heavy_native() {
    static const RunResult r = run(PolicyKind::kNative, WorkloadKind::kHeavy);
    return r;
  }
  static const RunResult& heavy_simty() {
    static const RunResult r = run(PolicyKind::kSimty, WorkloadKind::kHeavy);
    return r;
  }
};

TEST_F(PaperClaims, SimtySavesAwakeEnergy) {
  // §4.2: "energy savings greater than 33% of the energy required by
  // NATIVE" (awake portion). Accept >= 28% to absorb simulator variance.
  const double light_saving = 1.0 - light_simty().energy.awake_total().ratio(
                                        light_native().energy.awake_total());
  const double heavy_saving = 1.0 - heavy_simty().energy.awake_total().ratio(
                                        heavy_native().energy.awake_total());
  EXPECT_GT(light_saving, 0.28);
  EXPECT_GT(heavy_saving, 0.28);
}

TEST_F(PaperClaims, SimtySavesTotalStandbyEnergy) {
  // §4.2: ~20% (light) and ~25% (heavy) of total standby energy.
  const double light_saving =
      1.0 - light_simty().energy.total().ratio(light_native().energy.total());
  const double heavy_saving =
      1.0 - heavy_simty().energy.total().ratio(heavy_native().energy.total());
  EXPECT_GT(light_saving, 0.15);
  EXPECT_LT(light_saving, 0.35);
  EXPECT_GT(heavy_saving, 0.15);
  EXPECT_LT(heavy_saving, 0.35);
}

TEST_F(PaperClaims, StandbyTimeExtendedByQuarterToThird) {
  // The headline: standby time prolonged by one-fourth to one-third.
  const double light_ext = light_simty().projected_standby_hours /
                               light_native().projected_standby_hours -
                           1.0;
  const double heavy_ext = heavy_simty().projected_standby_hours /
                               heavy_native().projected_standby_hours -
                           1.0;
  EXPECT_GT(light_ext, 0.20);
  EXPECT_LT(light_ext, 0.45);
  EXPECT_GT(heavy_ext, 0.20);
  EXPECT_LT(heavy_ext, 0.45);
}

TEST_F(PaperClaims, PerceptibleDelayIsEssentiallyZero) {
  // Fig 4: perceptible normalized delays are zero under both policies
  // (modulo the wake-latency slip).
  EXPECT_LT(light_native().delay_perceptible, 0.005);
  EXPECT_LT(light_simty().delay_perceptible, 0.005);
  EXPECT_LT(heavy_native().delay_perceptible, 0.005);
  EXPECT_LT(heavy_simty().delay_perceptible, 0.005);
}

TEST_F(PaperClaims, ImperceptibleDelayBoundedAndSmallerUnderHeavy) {
  // Fig 4: SIMTY trades ~17.9% (light) / ~13.9% (heavy) of ReIn; the heavy
  // workload's denser queue gives SMALLER delay than light.
  EXPECT_GT(light_simty().delay_imperceptible, 0.05);
  EXPECT_LT(light_simty().delay_imperceptible, 0.25);
  EXPECT_GT(heavy_simty().delay_imperceptible, 0.05);
  EXPECT_LT(heavy_simty().delay_imperceptible, 0.25);
  EXPECT_LT(heavy_simty().delay_imperceptible, light_simty().delay_imperceptible);
}

TEST_F(PaperClaims, NativeDelayIsWakeLatencyArtifactOnly) {
  // Fig 4: NATIVE's imperceptible delay is a fraction of a percent, caused
  // by alpha = 0 alarms slipping one wake latency.
  EXPECT_GT(light_native().delay_imperceptible, 0.0);
  EXPECT_LT(light_native().delay_imperceptible, 0.01);
  EXPECT_LT(heavy_native().delay_imperceptible, 0.01);
}

TEST_F(PaperClaims, SimtySlashesCpuWakeups) {
  // Table 4 shape: SIMTY's CPU wakeups are a fraction of NATIVE's
  // (733->193 and 981->259 in the paper; ~0.26x).
  EXPECT_LT(cpu_actual(light_simty()), 0.65 * cpu_actual(light_native()));
  EXPECT_LT(cpu_actual(heavy_simty()), 0.65 * cpu_actual(heavy_native()));
}

TEST_F(PaperClaims, SimtyApproachesLeastRequiredWakeups) {
  // §4.2: per-component wakeups under SIMTY approach the floor set by the
  // smallest static ReIn wakelocking that hardware: accelerometer
  // 10800/60 = 180, WPS 10800/180 = 60.
  EXPECT_LE(hw_actual(heavy_simty(), "Accelerometer"), 195.0);
  EXPECT_GE(hw_actual(heavy_simty(), "Accelerometer"), 170.0);
  EXPECT_LE(hw_actual(heavy_simty(), "WPS"), 70.0);
  EXPECT_GE(hw_actual(heavy_simty(), "WPS"), 55.0);
  // Wi-Fi can go below 180 because its fastest alarm is dynamic repeating.
  EXPECT_LT(hw_actual(heavy_simty(), "Wi-Fi"), 180.0);
}

TEST_F(PaperClaims, GuaranteesHoldInFullExperiments) {
  for (const RunResult* r :
       {&light_native(), &light_simty(), &heavy_native(), &heavy_simty()}) {
    EXPECT_EQ(r->gap_violations, 0u) << r->policy_name;
    EXPECT_EQ(r->perceptible_window_misses, 0u) << r->policy_name;
    EXPECT_LE(r->worst_gap_ratio, 1.98) << r->policy_name;  // (1+beta)+latency
  }
}

TEST_F(PaperClaims, ExpectedWakeupsSmallerUnderSimty) {
  // Table 4: the expected totals are smaller under SIMTY because dynamic
  // repeating alarms fire less often when postponed.
  auto cpu_expected = [](const RunResult& r) {
    for (const auto& w : r.wakeups) {
      if (w.hardware == "CPU") return w.expected;
    }
    return 0.0;
  };
  EXPECT_LT(cpu_expected(light_simty()), cpu_expected(light_native()));
  EXPECT_LT(cpu_expected(heavy_simty()), cpu_expected(heavy_native()));
}

TEST_F(PaperClaims, SleepFloorUntouchedByAlignment) {
  // Fig 3's remark: the sleep-mode energy cannot be reduced by alignment —
  // SIMTY actually sleeps MORE (it is awake less).
  EXPECT_GE(light_simty().energy.sleep.mj(), light_native().energy.sleep.mj());
  EXPECT_GE(heavy_simty().energy.sleep.mj(), heavy_native().energy.sleep.mj());
}

}  // namespace
}  // namespace simty::exp
