#pragma once
// Fleet runner: shards a device population over the thread pool and reduces
// per-shard aggregates deterministically.
//
// Contract (the same one exp::ParallelRunner proves for seed sweeps):
// run_fleet at any jobs count produces aggregates bit-identical to the
// serial path. Three ingredients:
//   1. sample_device is counter-keyed — device i's sample and run seed
//      never depend on fleet size, shard partition or worker count;
//   2. the shard partition is a fixed device-major slicing by
//      shard_devices, deliberately NOT derived from jobs (a jobs-derived
//      partition would change Welford merge order and thus float rounding);
//   3. futures are collected in submission order and shard aggregates fold
//      through the merge_pairwise tree, whose shape depends only on the
//      shard count.
// Each shard owns its aggregate state (arena-friendly: one CohortAggregate
// per task, no sharing), so the only cross-thread coupling is the final
// reduction on the calling thread.

#include <cstdint>
#include <string>
#include <vector>

#include "alarm/similarity.hpp"
#include "exp/experiment.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/cohort.hpp"

namespace simty::trace {
class Tracer;
}

namespace simty::fleet {

/// One fleet run: a population, a policy, a seed.
struct FleetConfig {
  /// Cohorts making up the population; empty selects default_cohorts().
  std::vector<CohortSpec> cohorts;

  /// Total devices, apportioned over the cohorts by weight.
  std::uint64_t devices = 10000;

  exp::PolicyKind policy = exp::PolicyKind::kSimty;
  alarm::SimilarityConfig similarity;  // for the SIMTY variants

  std::uint64_t seed = 1;

  /// Worker count; <= 1 runs inline on the calling thread.
  int jobs = 1;

  /// Devices per shard. Part of the determinism contract: fixed, never
  /// derived from `jobs` (see the file comment). Changing it legitimately
  /// changes the float rounding of the aggregates.
  std::uint64_t shard_devices = 256;

  /// Optional run tracer; fleet-level spans are recorded on the calling
  /// thread only (device runs stay untraced, serial and parallel alike).
  trace::Tracer* tracer = nullptr;

  /// Directory for per-shard checkpoint files (shard_<i>.ckpt); empty
  /// disables checkpointing. A killed run restarted with the same config
  /// and directory resumes every shard from its last checkpoint and
  /// produces aggregates bit-identical to an uninterrupted run: each
  /// checkpoint snapshots the shard's CohortAggregate at a device
  /// boundary, and resuming continues the exact same add-sequence.
  std::string checkpoint_dir;

  /// Devices between checkpoint writes within a shard. Checkpoint cadence
  /// never changes results — only how much work a restart repeats.
  std::uint64_t checkpoint_every = 64;

  /// Fault injection for restart tests: the shard with this index (in
  /// submission order) throws std::runtime_error after processing
  /// `fault_after_devices` devices in the current invocation. -1 disables.
  std::int64_t fault_shard = -1;
  std::uint64_t fault_after_devices = 0;
};

/// Aggregated outcome of one fleet run.
struct FleetResult {
  std::string policy_name;
  std::uint64_t devices = 0;
  std::vector<CohortAggregate> cohorts;  // one per configured cohort, in order
  CohortAggregate overall{"ALL"};        // merge of all cohorts
};

/// Experiment config for one sampled device (exposed so tests can recompute
/// fleet aggregates device-by-device through the public API).
exp::ExperimentConfig device_config(const CohortSpec& spec,
                                    const DeviceSample& sample,
                                    exp::PolicyKind policy,
                                    const alarm::SimilarityConfig& similarity);

/// Runs the fleet. If any device run throws, the first exception in
/// submission order is rethrown after the pool drains.
FleetResult run_fleet(const FleetConfig& config);

}  // namespace simty::fleet
