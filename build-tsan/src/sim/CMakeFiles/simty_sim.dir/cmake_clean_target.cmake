file(REMOVE_RECURSE
  "libsimty_sim.a"
)
