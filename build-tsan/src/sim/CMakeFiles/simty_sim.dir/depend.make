# Empty dependencies file for simty_sim.
# This may be replaced when dependencies are built.
