#include "alarm/fixed_interval_policy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "support/framework_fixture.hpp"

namespace simty::alarm {
namespace {

using hw::Component;
using hw::ComponentSet;

TEST(FixedIntervalPolicy, NameIncludesInterval) {
  EXPECT_EQ(FixedIntervalPolicy(Duration::seconds(60)).name(), "FIXED-60s");
  EXPECT_EQ(FixedIntervalPolicy(Duration::minutes(5)).name(), "FIXED-300s");
}

TEST(FixedIntervalPolicy, RejectsNonPositiveInterval) {
  EXPECT_THROW(FixedIntervalPolicy(Duration::zero()), std::logic_error);
  EXPECT_THROW(FixedIntervalPolicy(-Duration::seconds(1)), std::logic_error);
}

class FixedIntervalIntegration : public test::FrameworkFixture {};

TEST_F(FixedIntervalIntegration, BatchesWithinSlotOnly) {
  init(std::make_unique<FixedIntervalPolicy>(Duration::seconds(60)));
  // Two imperceptible alarms in the same 60 s slot and one in the next.
  // Graces are wide enough to overlap within the slot.
  auto reg = [&](const char* tag, std::int64_t nominal) {
    return manager_->register_alarm(
        AlarmSpec::repeating(tag, AppId{1}, RepeatMode::kStatic,
                             Duration::seconds(600), 0.5, 0.96),
        at(nominal), task(ComponentSet{Component::kWifi}, Duration::seconds(1)));
  };
  reg("a", 601);  // slot 10
  reg("b", 640);  // slot 10
  reg("c", 661);  // slot 11 — window overlaps a's and b's, but wrong slot
  const auto& q = manager_->queue(AlarmKind::kWakeup);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0]->size(), 2u);
  EXPECT_EQ(q[1]->size(), 1u);
}

TEST_F(FixedIntervalIntegration, RespectsDeliveryGuarantees) {
  init(std::make_unique<FixedIntervalPolicy>(Duration::seconds(120)));
  // A perceptible alarm whose window does not reach the slot-mate: must
  // get its own entry even within the slot.
  manager_->register_alarm(
      AlarmSpec::repeating("quiet", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.05, 0.96),
      at(600), task(ComponentSet{Component::kWifi}, Duration::seconds(1)));
  auto bell = manager_->register_alarm(
      AlarmSpec::repeating("bell", AppId{2}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.0, 0.5),
      at(700),
      task(ComponentSet{Component::kSpeaker, Component::kVibrator},
           Duration::seconds(1)));
  // quiet in slot 5 ([600,720)), bell at 700 also slot 5, but bell's point
  // window [700,700] misses quiet's window [600,630].
  EXPECT_EQ(manager_->queue(AlarmKind::kWakeup).size(), 2u);
  sim_.run_until(at(1000));
  for (const auto& rec : deliveries_of(bell)) {
    EXPECT_LE(rec.delivered, rec.window.end() + model_.wake_latency);
  }
}

TEST_F(FixedIntervalIntegration, QuantizesWakeupsOverALongRun) {
  init(std::make_unique<FixedIntervalPolicy>(Duration::seconds(120)));
  // Several imperceptible alarms with wide graces: wakeups should approach
  // one per occupied slot, far fewer than deliveries.
  for (int i = 0; i < 5; ++i) {
    manager_->register_alarm(
        AlarmSpec::repeating("s" + std::to_string(i), AppId{1},
                             RepeatMode::kStatic, Duration::seconds(300), 0.75,
                             0.96),
        at(300 + i * 13), task(ComponentSet{Component::kWifi}, Duration::seconds(1)));
  }
  sim_.run_until(at(3600));
  EXPECT_GT(manager_->stats().deliveries, 40u);
  EXPECT_LT(device_->wakeup_count(), manager_->stats().deliveries / 2);
}

}  // namespace
}  // namespace simty::alarm
