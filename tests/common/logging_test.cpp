#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace simty {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink([this](LogLevel level, const std::string& msg) {
      captured_.emplace_back(level, msg);
    });
    Logger::instance().set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, RoutesToSink) {
  SIMTY_INFO("hello");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello");
}

TEST_F(LoggingTest, LevelFiltersBelow) {
  Logger::instance().set_level(LogLevel::kWarn);
  SIMTY_DEBUG("drop");
  SIMTY_INFO("drop");
  SIMTY_WARN("keep");
  SIMTY_ERROR("keep");
  EXPECT_EQ(captured_.size(), 2u);
}

TEST_F(LoggingTest, OffDropsEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  SIMTY_ERROR("drop");
  EXPECT_TRUE(captured_.empty());
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace simty
