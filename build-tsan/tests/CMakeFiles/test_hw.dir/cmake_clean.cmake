file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/battery_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/battery_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/component_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/component_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/device_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/device_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/guardian_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/guardian_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/power_model_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/power_model_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/rtc_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/rtc_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/wakelock_tail_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/wakelock_tail_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/wakelock_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/wakelock_test.cpp.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
