#pragma once
// Fixed-bucket histogram with quantile queries.
//
// Fig 4 reports average normalized delays; averages hide the tail. This
// histogram records the full delay distribution (linear buckets over a
// configurable range plus an overflow bucket) so benches and tests can ask
// for medians and p95/p99 — how late the *worst* imperceptible deliveries
// really are relative to the (1 + beta) bound.

#include <cstdint>
#include <string>
#include <vector>

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::metrics {

/// Linear-bucket histogram over [0, upper); values beyond land in an
/// overflow bucket. Exact count/sum/min/max are kept alongside.
class Histogram {
 public:
  /// `buckets` linear buckets spanning [0, upper).
  Histogram(double upper, std::size_t buckets);

  void add(double value);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  std::uint64_t overflow() const { return overflow_; }

  /// Quantile in [0, 1] by linear interpolation inside the bucket;
  /// overflow resolves to the observed max. Throws when empty.
  double quantile(double q) const;

  /// Folds another histogram into this one. Both must have identical
  /// geometry (same upper bound and bucket count); bucket counts, overflow,
  /// count/sum/min/max all combine exactly, so merging per-shard sketches
  /// in any fixed order reproduces the single-pass sketch bit-for-bit —
  /// the property the fleet aggregation layer's merge tree relies on.
  void merge(const Histogram& other);

  /// Bucket counts (for rendering).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  double bucket_width() const { return width_; }

  /// Compact ASCII sparkline-style rendering, e.g. for bench output.
  std::string render(int max_width = 40) const;

  /// Serializes geometry and contents. restore() requires this object to
  /// have been constructed with the same geometry (upper bound and bucket
  /// count) as the saved one — geometry is config, contents are state.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  double upper_;
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace simty::metrics
