#pragma once
// Minimal leveled logger.
//
// The simulator is mostly silent; logging exists for the trace hooks the
// paper inserted into AlarmManager/WakeLock ("to profile each app's behavior
// ... log every alarm's time attributes and hardware usage at runtime") and
// for debugging experiment harnesses. Output goes to an injectable sink so
// tests can capture it.
//
// Each Simulator is single-threaded, but the parallel experiment runner
// executes many simulators at once and they all share this singleton — so
// the level is atomic and the sink is called under a mutex (which also
// keeps concurrent runs' lines from interleaving mid-message).

#include <atomic>
#include <functional>
#include <mutex>
#include <string>

#include "common/annotations.hpp"

namespace simty {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide, thread-safe logger.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// The global instance used by the SIMTY_LOG macros.
  static Logger& instance();

  /// Messages below `level` are dropped. Default: kWarn (quiet benches).
  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Replaces the output sink (default writes to stderr). Pass nullptr to
  /// restore the default sink. The sink itself is invoked under the logger
  /// mutex, so it need not be reentrant — but a sink installed while
  /// parallel runs are in flight will observe their interleaved messages.
  void set_sink(Sink sink);

  void log(LogLevel level, const std::string& msg);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;
  Sink sink_ SIMTY_GUARDED_BY(mutex_);  // replacement and invocation both lock
};

const char* to_string(LogLevel level);

}  // namespace simty

#define SIMTY_LOG(level, msg) ::simty::Logger::instance().log((level), (msg))
#define SIMTY_DEBUG(msg) SIMTY_LOG(::simty::LogLevel::kDebug, (msg))
#define SIMTY_INFO(msg) SIMTY_LOG(::simty::LogLevel::kInfo, (msg))
#define SIMTY_WARN(msg) SIMTY_LOG(::simty::LogLevel::kWarn, (msg))
#define SIMTY_ERROR(msg) SIMTY_LOG(::simty::LogLevel::kError, (msg))
