// Ablation A13: connected standby over the 3G cellular radio (Table 2's
// WCDMA path). Data promotes the RRC machine to DCH and inactivity timers
// demote it seconds later, so every unaligned sync pays a signaling
// promotion plus a ~17 s high-power tail. Expectation: alignment is worth
// far more on cellular than on Wi-Fi — batched syncs share one promotion
// and one demotion tail — which is why the piecemeal per-app solutions the
// paper's intro criticizes were born in the 3G era.

#include <cstdio>
#include <memory>

#include "alarm/exact_policy.hpp"
#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "apps/app_catalog.hpp"
#include "apps/workload.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "hw/device.hpp"
#include "hw/power_bus.hpp"
#include "hw/rtc.hpp"
#include "hw/wakelock.hpp"
#include "net/cellular.hpp"
#include "power/energy_accounting.hpp"
#include "sim/simulator.hpp"

using namespace simty;

namespace {

struct Outcome {
  double total_j = 0.0;
  double promotions = 0.0;
  double dch_seconds = 0.0;
};

// Builds the light workload's messengers as CELLULAR apps: their tasks
// wakelock nothing (the RRC machine owns the radio rail) and instead drive
// data_activity() with their sync durations.
Outcome run_cellular(std::unique_ptr<alarm::AlignmentPolicy> policy,
                     std::uint64_t seed) {
  sim::Simulator sim;
  hw::PowerBus bus;
  power::EnergyAccountant accountant;
  bus.add_listener(&accountant);
  const hw::PowerModel model = hw::PowerModel::nexus5();
  hw::Device device(sim, model, bus);
  hw::Rtc rtc(sim, device);
  hw::WakelockManager wakelocks(sim, model, bus);
  alarm::AlarmManager manager(sim, device, rtc, wakelocks, std::move(policy));
  net::CellularStandby standby(sim, manager, bus);

  std::vector<net::CellularSyncSpec> specs;
  for (const apps::AppProfile& p : apps::light_workload_profiles()) {
    if (!p.hardware.contains(hw::Component::kWifi)) continue;  // messengers only
    specs.push_back(net::CellularSyncSpec{p.name, p.mode, p.repeat, p.alpha,
                                          p.base_hold, p.hold_jitter});
  }
  standby.deploy(specs, Rng(seed, 0x363), 0.96);

  const TimePoint horizon = TimePoint::origin() + Duration::hours(3);
  sim.run_until(horizon);
  device.finalize(horizon);
  wakelocks.finalize(horizon);
  standby.finalize(horizon);
  accountant.finalize(horizon);
  const net::RrcMachine& rrc = standby.rrc();
  return Outcome{accountant.breakdown().total().joules_f(),
                 static_cast<double>(rrc.idle_promotions() + rrc.fach_promotions()),
                 rrc.time_in(net::RrcState::kDch).seconds_f()};
}

using PolicyFactory = std::unique_ptr<alarm::AlignmentPolicy> (*)();

Outcome averaged(PolicyFactory make) {
  Outcome sum;
  const int reps = 3;
  for (int i = 0; i < reps; ++i) {
    const Outcome o = run_cellular(make(), static_cast<std::uint64_t>(i + 1));
    sum.total_j += o.total_j / reps;
    sum.promotions += o.promotions / reps;
    sum.dch_seconds += o.dch_seconds / reps;
  }
  return sum;
}

}  // namespace

int main() {
  struct Variant {
    const char* label;
    PolicyFactory make;
  };
  const Variant kVariants[] = {
      {"EXACT",
       [] { return std::unique_ptr<alarm::AlignmentPolicy>(new alarm::ExactPolicy); }},
      {"NATIVE",
       [] { return std::unique_ptr<alarm::AlignmentPolicy>(new alarm::NativePolicy); }},
      {"SIMTY",
       [] { return std::unique_ptr<alarm::AlignmentPolicy>(new alarm::SimtyPolicy); }},
  };

  TextTable t("Cellular (3G RRC) standby: 11 messengers, 3 h, 3 seeds");
  t.set_header({"Policy", "total (J)", "RRC promotions", "DCH time (s)",
                "saving vs NATIVE"});
  double native_total = 0.0;
  std::vector<Outcome> outcomes;
  for (const Variant& v : kVariants) outcomes.push_back(averaged(v.make));
  native_total = outcomes[1].total_j;
  for (std::size_t i = 0; i < 3; ++i) {
    t.add_row({kVariants[i].label, str_format("%.1f", outcomes[i].total_j),
               str_format("%.0f", outcomes[i].promotions),
               str_format("%.0f", outcomes[i].dch_seconds),
               percent(1.0 - outcomes[i].total_j / native_total)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nFor comparison, the same messengers on Wi-Fi save ~22%% (see\n"
              "bench_fig3_energy); the RRC tails make alignment worth more here.\n");
  return 0;
}
