#include "lint.hpp"

namespace simty::lint {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string to_json(const std::vector<Finding>& findings, std::size_t files_scanned) {
  std::string out = "{\n  \"version\": 1,\n  \"files_scanned\": ";
  out += std::to_string(files_scanned);
  out += ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"";
    append_escaped(out, f.file);
    out += "\", \"line\": ";
    out += std::to_string(f.line);
    out += ", \"rule\": \"";
    append_escaped(out, f.rule);
    out += "\", \"message\": \"";
    append_escaped(out, f.message);
    out += "\"}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace simty::lint
