#pragma once
// Wakelock guardian: runtime no-sleep-bug management after WakeScope
// (ref [3]), which not only detects wakelock anomalies at runtime but acts
// on them. The guardian scans held locks on a fixed period and force-
// releases any lock held beyond its budget, recording an intervention —
// bounding the energy a buggy app can steal while the watchdog in
// WakelockManager merely reports.

#include <string>
#include <vector>

#include "hw/wakelock.hpp"
#include "sim/simulator.hpp"

namespace simty::hw {

/// Periodic scan-and-revoke policy for runaway wakelocks.
class WakelockGuardian {
 public:
  struct Config {
    /// Locks held longer than this are revoked.
    Duration hold_budget = Duration::minutes(5);

    /// Scan period; detection latency is at most one period.
    Duration scan_period = Duration::minutes(1);
  };

  /// One forced release.
  struct Intervention {
    TimePoint at;
    Component component;
    std::string holder;
    Duration held_for;
  };

  WakelockGuardian(sim::Simulator& sim, WakelockManager& wakelocks, Config config);

  WakelockGuardian(const WakelockGuardian&) = delete;
  WakelockGuardian& operator=(const WakelockGuardian&) = delete;

  /// Starts periodic scanning until `horizon`.
  void start(TimePoint horizon);

  /// Runs one scan immediately; returns how many locks were revoked.
  std::size_t scan();

  const std::vector<Intervention>& interventions() const { return interventions_; }

 private:
  void schedule_next();

  sim::Simulator& sim_;
  WakelockManager& wakelocks_;
  Config config_;
  TimePoint horizon_;
  std::vector<Intervention> interventions_;
};

}  // namespace simty::hw
