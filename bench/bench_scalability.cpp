// Ablation A4: scalability in the number of resident apps. The paper's
// intro expects "increasing the number of resident apps will accelerate
// battery depletion"; this sweep shows how total energy and wakeups grow
// with app count under EXACT / NATIVE / SIMTY and that SIMTY's advantage
// widens as the queue gets denser (more alignment opportunities).

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"

using namespace simty;

int main() {
  const std::size_t kCounts[] = {4, 9, 18, 36, 64};

  TextTable t("Scalability: synthetic workloads, 3-hour standby, 3 seeds");
  t.set_header({"apps", "EXACT total (J)", "NATIVE total (J)", "SIMTY total (J)",
                "SIMTY saving vs NATIVE", "NATIVE CPU wakeups", "SIMTY CPU wakeups"});
  for (const std::size_t n : kCounts) {
    auto run = [&](exp::PolicyKind p) {
      exp::ExperimentConfig c;
      c.policy = p;
      c.workload = exp::WorkloadKind::kSynthetic;
      c.synthetic_apps = n;
      c.system_alarms = true;
      return exp::run_repeated(c, 3);
    };
    const exp::RunResult exact = run(exp::PolicyKind::kExact);
    const exp::RunResult native = run(exp::PolicyKind::kNative);
    const exp::RunResult simty = run(exp::PolicyKind::kSimty);
    auto cpu = [](const exp::RunResult& r) {
      for (const auto& w : r.wakeups) {
        if (w.hardware == "CPU") return w.actual;
      }
      return 0.0;
    };
    t.add_row({str_format("%zu", n),
               str_format("%.1f", exact.energy.total().joules_f()),
               str_format("%.1f", native.energy.total().joules_f()),
               str_format("%.1f", simty.energy.total().joules_f()),
               percent(1.0 - simty.energy.total().ratio(native.energy.total())),
               str_format("%.0f", cpu(native)), str_format("%.0f", cpu(simty))});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
