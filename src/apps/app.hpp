#pragma once
// Resident-application behaviour model.
//
// Each app owns one "major alarm" (Table 3) that periodically synchronizes
// with its servers or samples a sensor. The task behind a delivery wakelocks
// the app's hardware set for a jittered hold time — the jitter models the
// paper's "uncontrollable factors (like instant network speeds)".

#include <memory>
#include <optional>
#include <string>

#include "alarm/alarm_manager.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "hw/component.hpp"
#include "net/wifi_link.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::apps {

/// Static description of one resident app's major alarm (a Table 3 row).
struct AppProfile {
  std::string name;                       // e.g. "Line"
  Duration repeat = Duration::zero();     // ReIn
  double alpha = 0.0;                     // window = alpha * ReIn
  alarm::RepeatMode mode = alarm::RepeatMode::kStatic;  // S/D column
  hw::ComponentSet hardware;              // HW Usage column
  Duration base_hold = Duration::zero();  // typical wakelock duration
  double hold_jitter = 0.0;               // +- relative jitter on the hold
  bool in_light = false;                  // member of the light workload
  bool irregular = false;                 // the five starred apps

  /// When > 0 and a Wi-Fi link model is attached, the sync moves this many
  /// bytes and the hold time follows the instantaneous link rate instead
  /// of base_hold (ref [8]'s rate-dependent transfers).
  std::uint64_t payload_bytes = 0;

  /// Probability that a delivery schedules a one-shot retry (failed sync /
  /// pending-work follow-up). One source of the "one-shot alarms" Table 4
  /// counts under CPU. Zero (the default) disables retries.
  double retry_probability = 0.0;

  /// Delay before a retry fires.
  Duration retry_backoff = Duration::seconds(30);
};

/// A deployed resident app: registers its major alarm and answers delivery
/// callbacks with its task behaviour.
class ResidentApp {
 public:
  ResidentApp(AppProfile profile, Rng rng);
  virtual ~ResidentApp() = default;

  const AppProfile& profile() const { return profile_; }

  /// Registers the major alarm with its first nominal delivery one
  /// repeating interval after launch. `app_id` labels trace records; `beta`
  /// is the grace factor assigned by the platform (SIMTY's knob).
  void launch(alarm::AlarmManager& manager, TimePoint now, alarm::AppId app_id,
              double beta = 0.96);

  /// Id of the registered major alarm; empty before launch.
  std::optional<alarm::AlarmId> alarm_id() const { return alarm_id_; }

  /// Attaches a Wi-Fi link model: payload-carrying tasks derive their hold
  /// from the instantaneous rate. Pass nullptr to detach.
  void attach_link(const net::WifiLink* link) { link_ = link; }

  std::uint64_t deliveries() const { return deliveries_; }

  /// One-shot retries scheduled so far.
  std::uint64_t retries() const { return retries_; }

  /// Delivery handler of the major alarm — the closure launch() registers,
  /// exposed so a snapshot restore can re-attach it by tag.
  alarm::DeliveryHandler major_handler(alarm::AlarmManager& manager);

  /// Delivery handler of the one-shot retry alarms.
  alarm::DeliveryHandler retry_handler();

  /// Serializes launch state, the rng stream position, and counters. The
  /// profile (and an imitated app's trace) is reconstructed from config,
  /// not carried in the snapshot. ImitatedApp extends with its cursor.
  virtual void save(snapshot::Writer& w) const;
  virtual void restore(snapshot::SectionReader& s);

 protected:
  /// The task executed on each delivery; overridden by imitated apps.
  virtual alarm::TaskSpec next_task();

  AppProfile profile_;
  Rng rng_;
  const net::WifiLink* link_ = nullptr;

 private:
  void maybe_schedule_retry(alarm::AlarmManager& manager, TimePoint now);

  std::optional<alarm::AlarmId> alarm_id_;
  alarm::AppId app_id_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t retries_ = 0;
};

/// Grace-interval factor used for every alarm in the paper's experiments.
inline constexpr double kPaperBeta = 0.96;

}  // namespace simty::apps
