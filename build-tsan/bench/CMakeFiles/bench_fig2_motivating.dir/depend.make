# Empty dependencies file for bench_fig2_motivating.
# This may be replaced when dependencies are built.
