// Ablation A7: per-app energy attribution — the "energy stealing"
// perspective of ref [5] (ISLPED'15), which the paper builds on. Ranks the
// 18 apps by their estimated standby-energy bill under NATIVE and SIMTY
// and shows where SIMTY's savings land (the WPS trackers and the dense
// messengers benefit most; the perceptible notifiers barely move).

#include <cstdio>
#include <map>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "power/app_attribution.hpp"

using namespace simty;

namespace {

std::map<std::string, double> tag_energy(exp::PolicyKind policy) {
  power::AppEnergyAttributor attributor(hw::PowerModel::nexus5());
  exp::ExperimentConfig c;
  c.policy = policy;
  c.workload = exp::WorkloadKind::kHeavy;
  c.extra_session_observer = attributor.observer();
  (void)exp::run_experiment(c);
  std::map<std::string, double> out;
  for (const power::EnergyShare& s : attributor.by_tag()) {
    out[s.label] = s.energy.joules_f();
  }
  return out;
}

}  // namespace

int main() {
  const auto native = tag_energy(exp::PolicyKind::kNative);
  const auto simty = tag_energy(exp::PolicyKind::kSimty);

  // Order rows by NATIVE bill, descending.
  std::vector<std::pair<std::string, double>> rows(native.begin(), native.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  TextTable t("Estimated per-alarm energy bill (J), heavy workload, 3 h, one seed");
  t.set_header({"Alarm", "NATIVE", "SIMTY", "saving"});
  double native_total = 0.0, simty_total = 0.0;
  for (const auto& [tag, native_j] : rows) {
    const auto it = simty.find(tag);
    const double simty_j = it == simty.end() ? 0.0 : it->second;
    native_total += native_j;
    simty_total += simty_j;
    t.add_row({tag, str_format("%.1f", native_j), str_format("%.1f", simty_j),
               native_j > 0 ? percent(1.0 - simty_j / native_j) : "-"});
  }
  t.add_separator();
  t.add_row({"total attributed", str_format("%.1f", native_total),
             str_format("%.1f", simty_total),
             percent(1.0 - simty_total / native_total)});
  std::printf("%s", t.render().c_str());
  std::printf("\nAttribution is a batterystats-style estimate reconstructed from\n"
              "the power model; it reconciles with the measured awake energy\n"
              "within ~20%% (see AppEnergyAttributor::reconcile tests).\n");
  return 0;
}
