file(REMOVE_RECURSE
  "CMakeFiles/simty_exp.dir/adaptive.cpp.o"
  "CMakeFiles/simty_exp.dir/adaptive.cpp.o.d"
  "CMakeFiles/simty_exp.dir/experiment.cpp.o"
  "CMakeFiles/simty_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/simty_exp.dir/parallel_runner.cpp.o"
  "CMakeFiles/simty_exp.dir/parallel_runner.cpp.o.d"
  "CMakeFiles/simty_exp.dir/reporting.cpp.o"
  "CMakeFiles/simty_exp.dir/reporting.cpp.o.d"
  "libsimty_exp.a"
  "libsimty_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simty_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
