#include "net/wifi_link.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace simty::net {
namespace {

TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

TEST(WifiLink, StartsGoodWithConfiguredRate) {
  sim::Simulator sim;
  WifiLinkConfig c;
  WifiLink link(sim, c, Rng(1));
  EXPECT_TRUE(link.good());
  EXPECT_DOUBLE_EQ(link.current_rate_kbps(), c.good_rate_kbps);
}

TEST(WifiLink, TransferTimeScalesWithBytesAndRate) {
  sim::Simulator sim;
  WifiLinkConfig c;
  c.good_rate_kbps = 8000.0;  // 1 MB/s
  c.protocol_overhead = Duration::millis(600);
  WifiLink link(sim, c, Rng(1));
  // 1 MB at 1 MB/s = 1 s + 0.6 s overhead.
  EXPECT_EQ(link.transfer_time(1'000'000), Duration::millis(1600));
  // Zero bytes still pay the protocol overhead.
  EXPECT_EQ(link.transfer_time(0), Duration::millis(600));
}

TEST(WifiLink, TransitionsBetweenStates) {
  sim::Simulator sim;
  WifiLinkConfig c;
  c.mean_good_dwell = Duration::seconds(30);
  c.mean_bad_dwell = Duration::seconds(10);
  WifiLink link(sim, c, Rng(3));
  link.start(at(3600));
  sim.run_until(at(3600));
  // Roughly 3600/40 = 90 full cycles -> > 50 transitions for sure.
  EXPECT_GT(link.transitions(), 50u);
}

TEST(WifiLink, GoodFractionMatchesDwellRatio) {
  sim::Simulator sim;
  WifiLinkConfig c;
  c.mean_good_dwell = Duration::seconds(90);
  c.mean_bad_dwell = Duration::seconds(30);
  WifiLink link(sim, c, Rng(5));
  link.start(at(36000));
  sim.run_until(at(36000));
  // Expected good fraction = 90 / 120 = 0.75.
  EXPECT_NEAR(link.good_fraction(at(36000)), 0.75, 0.08);
}

TEST(WifiLink, BadStateSlowsTransfers) {
  sim::Simulator sim;
  WifiLinkConfig c;
  c.mean_good_dwell = Duration::seconds(10);
  c.mean_bad_dwell = Duration::seconds(10);
  WifiLink link(sim, c, Rng(7));
  link.start(at(3600));
  // Advance until the link flips to bad.
  while (link.good() && sim.now() < at(3600)) sim.step();
  ASSERT_FALSE(link.good());
  EXPECT_DOUBLE_EQ(link.current_rate_kbps(), c.bad_rate_kbps);
  EXPECT_GT(link.transfer_time(100'000), Duration::millis(600));
}

TEST(WifiLink, NoTransitionsBeforeStart) {
  sim::Simulator sim;
  WifiLink link(sim, WifiLinkConfig{}, Rng(1));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(WifiLink, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    WifiLinkConfig c;
    c.mean_good_dwell = Duration::seconds(20);
    c.mean_bad_dwell = Duration::seconds(20);
    WifiLink link(sim, c, Rng(seed));
    link.start(TimePoint::origin() + Duration::hours(1));
    sim.run_until(TimePoint::origin() + Duration::hours(1));
    return link.transitions();
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(WifiLink, RejectsBadConfig) {
  sim::Simulator sim;
  WifiLinkConfig c;
  c.good_rate_kbps = 0.0;
  EXPECT_THROW(WifiLink(sim, c, Rng(1)), std::logic_error);
  c = WifiLinkConfig{};
  c.mean_bad_dwell = Duration::zero();
  EXPECT_THROW(WifiLink(sim, c, Rng(1)), std::logic_error);
}

}  // namespace
}  // namespace simty::net
