# CMake generated Testfile for 
# Source directory: /root/repo/src/hw
# Build directory: /root/repo/build-tsan/src/hw
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
