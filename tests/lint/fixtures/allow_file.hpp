// Fixture: allow-file() suppresses a rule for the whole file.
// simty-lint: allow-file(pragma-once)
#include <cstdint>

namespace fixture {
inline std::int32_t three() { return 3; }
}  // namespace fixture
