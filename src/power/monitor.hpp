#pragma once
// Monsoon-style power monitor.
//
// Sits across the battery rails like the paper's Monsoon Solutions unit:
// records the piecewise-constant total power waveform plus discrete energy
// impulses, integrates exactly, and can re-sample the waveform at a finite
// rate (the real instrument samples at 5 kHz) to quantify what a hardware
// monitor would have reported.

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "hw/component.hpp"
#include "hw/power_bus.hpp"

namespace simty::power {

/// One step of the recorded power waveform: total power from `t` onward.
struct PowerSample {
  TimePoint t;
  Power level;
};

/// Records and integrates the device's total power draw.
class PowerMonitor : public hw::PowerListener {
 public:
  PowerMonitor() = default;

  void on_device_state(TimePoint t, hw::DeviceState state, Power base_level) override;
  void on_component_power(TimePoint t, hw::Component c, bool on, Power level) override;
  void on_impulse(TimePoint t, Energy e, hw::ImpulseKind kind,
                  std::string_view tag) override;

  /// Closes the waveform at `now`; call once at end of run.
  void finalize(TimePoint now);

  /// Exact integral of the waveform plus all impulses.
  Energy total_energy() const;

  /// Energy as a finite-rate sampler would report it: zero-order-hold
  /// sampling of the waveform at `rate_hz`, impulses included exactly
  /// (the Monsoon integrates charge, so impulses are never missed).
  Energy sampled_energy(double rate_hz) const;

  /// Average of total power over the recorded span.
  Power average_power() const;

  /// Maximum instantaneous level of the waveform.
  Power peak_power() const;

  /// The recorded step waveform (deduplicated level changes).
  const std::vector<PowerSample>& waveform() const { return waveform_; }

  /// CSV rendering of the waveform ("t_s,power_mw" rows) for plotting;
  /// when `max_rows` > 0 the waveform is decimated to at most that many
  /// rows (keeping first/last).
  std::string waveform_csv(std::size_t max_rows = 0) const;

  /// Number of impulses recorded.
  std::size_t impulse_count() const { return impulses_.size(); }

 private:
  struct Impulse {
    TimePoint t;
    Energy e;
  };

  void record_level(TimePoint t);

  Power device_level_ = Power::zero();
  std::vector<Power> component_levels_ =
      std::vector<Power>(hw::kComponentCount, Power::zero());

  std::vector<PowerSample> waveform_;
  std::vector<Impulse> impulses_;
  TimePoint end_;
  bool finalized_ = false;
};

}  // namespace simty::power
