// Self-tests for simty_lint: every rule must both fire on its fixture and
// respect the allow-comment escape hatch. Expectations are embedded in the
// fixtures themselves as `// LINT-EXPECT: <rule>[, <rule>]` markers, so a
// fixture and its oracle can never drift apart.

#include "lint.hpp"
#include "lexer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace simty::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(SIMTY_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

using LineRule = std::pair<int, std::string>;

/// Parses the `LINT-EXPECT:` markers out of fixture text.
std::vector<LineRule> expectations_in(const std::string& content) {
  std::vector<LineRule> out;
  std::istringstream in(content);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t pos = line.find("LINT-EXPECT:");
    if (pos == std::string::npos) continue;
    std::istringstream rules(line.substr(pos + 12));
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      rule.erase(0, rule.find_first_not_of(" \t"));
      rule.erase(rule.find_last_not_of(" \t") + 1);
      if (!rule.empty()) out.emplace_back(line_no, rule);
    }
  }
  return out;
}

std::vector<LineRule> findings_as_pairs(const std::vector<Finding>& findings) {
  std::vector<LineRule> out;
  out.reserve(findings.size());
  for (const auto& f : findings) out.emplace_back(f.line, f.rule);
  return out;
}

/// Lints `fixture` under `rel_path` and checks findings == embedded markers.
void check_fixture(const std::string& fixture, const std::string& rel_path) {
  SCOPED_TRACE(fixture + " as " + rel_path);
  const std::string content = read_fixture(fixture);
  ASSERT_FALSE(content.empty());
  std::vector<LineRule> expected = expectations_in(content);
  std::vector<LineRule> actual = findings_as_pairs(lint_source(rel_path, content));
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(expected, actual);
}

TEST(SimtyLintRules, WallClockFiresAndRespectsAllow) {
  check_fixture("wall_clock.cpp", "src/alarm/fixture.cpp");
}

TEST(SimtyLintRules, RawRandFiresAndRespectsAllow) {
  check_fixture("raw_rand.cpp", "src/exp/fixture.cpp");
}

TEST(SimtyLintRules, StdHashFiresAndRespectsAllow) {
  check_fixture("std_hash.cpp", "src/alarm/fixture.cpp");
}

TEST(SimtyLintRules, UnorderedIterFiresAndRespectsAllow) {
  check_fixture("unordered_iter.cpp", "src/alarm/fixture.cpp");
}

TEST(SimtyLintRules, FloatTimeFiresAndRespectsAllow) {
  check_fixture("float_time.cpp", "src/alarm/fixture.cpp");
}

TEST(SimtyLintRules, StdFunctionFiresInHotPath) {
  check_fixture("std_function.cpp", "src/sim/fixture.cpp");
}

TEST(SimtyLintRules, StringLabelFiresInHotPath) {
  check_fixture("string_label.cpp", "src/sim/fixture.cpp");
}

TEST(SimtyLintRules, AssertFiresEverywhere) {
  check_fixture("asserts.cpp", "src/common/fixture.cpp");
}

TEST(SimtyLintRules, PragmaOnceRequiredInHeaders) {
  check_fixture("missing_pragma.hpp", "src/common/fixture.hpp");
  check_fixture("good_pragma.hpp", "src/common/fixture.hpp");
  check_fixture("allow_file.hpp", "src/common/fixture.hpp");
}

TEST(SimtyLintRules, IncludeHygiene) {
  check_fixture("include_hygiene.cpp", "src/common/fixture.cpp");
}

TEST(SimtyLintRules, QueueScanFiresOnlyInAlarmPolicyFiles) {
  check_fixture("queue_scan.cpp", "src/alarm/fake_policy.cpp");
  // Same content is legal outside alarm-policy files: the manager's own
  // differential reference and non-policy code may sweep freely.
  const std::string content = read_fixture("queue_scan.cpp");
  EXPECT_TRUE(lint_source("src/alarm/alarm_manager.cpp", content).empty());
  EXPECT_TRUE(lint_source("src/exp/policy_sweep.cpp", content).empty());
}

TEST(SimtyLintRules, LexerNeverFiresInsideCommentsOrLiterals) {
  check_fixture("clean.cpp", "src/alarm/fixture.cpp");
}

TEST(SimtyLintRules, DeterministicRulesScopedToDeterministicPaths) {
  // The same wall-clock fixture is legal outside the deterministic scope
  // (benches time themselves with steady_clock on purpose; the CLI may
  // stamp reports with the real date).
  const std::string content = read_fixture("wall_clock.cpp");
  EXPECT_TRUE(lint_source("bench/fixture.cpp", content).empty());
  EXPECT_TRUE(lint_source("src/cli/fixture.cpp", content).empty());
  EXPECT_TRUE(lint_source("tools/fixture.cpp", content).empty());
  EXPECT_FALSE(lint_source("src/policy/fixture.cpp", content).empty());
  // The run tracer is deterministic code too: a wall-clock read there would
  // poison the trace-diff gate.
  EXPECT_FALSE(lint_source("src/trace/fixture.cpp", content).empty());
  // The model layers the event loop simulates through are in scope as well:
  // a wall-clock read in net/hw/power/usage/metrics breaks the same
  // bit-identical contract as one in the event core.
  for (const char* path :
       {"src/net/fixture.cpp", "src/hw/fixture.cpp", "src/power/fixture.cpp",
        "src/usage/fixture.cpp", "src/metrics/fixture.cpp"}) {
    SCOPED_TRACE(path);
    EXPECT_FALSE(lint_source(path, content).empty());
  }
}

TEST(SimtyLintRules, FleetPathsAreDeterministicScope) {
  // The fleet sampler/aggregator promise bit-identical serial-vs-parallel
  // aggregates, so src/fleet is in the deterministic scope: every marked
  // line in the fixture fires there...
  check_fixture("fleet_scope.cpp", "src/fleet/fixture.cpp");
  // ...while the deterministic-only rules (wall-clock, raw-rand, std-hash)
  // stay silent outside the scope. unordered-iter applies everywhere.
  const std::string content = read_fixture("fleet_scope.cpp");
  for (const char* path : {"bench/fixture.cpp", "src/cli/fixture.cpp"}) {
    SCOPED_TRACE(path);
    for (const Finding& f : lint_source(path, content)) {
      EXPECT_EQ(f.rule, "unordered-iter");
    }
  }
}

TEST(SimtyLintRules, HotPathRulesScopedToSim) {
  const std::string content = read_fixture("std_function.cpp");
  EXPECT_TRUE(lint_source("src/hw/fixture.cpp", content).empty());
}

TEST(SimtyLintRules, ExtraUnorderedNamesCoverCompanionHeaderMembers) {
  // Members declared in a header are invisible when linting the .cpp alone;
  // Options::extra_unordered_names (fed by the CLI from the companion
  // header) closes that hole.
  const std::string body =
      "namespace f {\n"
      "void T::run() {\n"
      "  for (const auto& kv : members_) use(kv);\n"
      "}\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/alarm/t.cpp", body).empty());
  Options opts;
  opts.extra_unordered_names = {"members_"};
  const auto findings = lint_source("src/alarm/t.cpp", body, opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(SimtyLintLexer, BlanksLiteralsAndKeepsStructure) {
  const FileScan scan = scan_source(
      "int a = 1; // rand()\n"
      "const char* s = \"system_clock\";\n"
      "/* std::hash */ int b = 2;\n");
  ASSERT_GE(scan.code.size(), 3u);
  EXPECT_FALSE(has_word(scan.code[0], "rand"));
  EXPECT_FALSE(has_word(scan.code[1], "system_clock"));
  EXPECT_FALSE(has_word(scan.code[2], "std::hash"));
  EXPECT_TRUE(has_word(scan.code[2], "b"));
}

TEST(SimtyLintLexer, AllowDirectiveParsing) {
  const FileScan scan = scan_source(
      "int a;  // simty-lint: allow(rule-a, rule-b)\n"
      "// simty-lint: allow(rule-c)\n"
      "int b;\n"
      "// simty-lint: allow-file(rule-d)\n");
  ASSERT_EQ(scan.line_allows.size(), 5u);  // 4 lines + trailing empty line
  EXPECT_EQ(scan.line_allows[0], (std::vector<std::string>{"rule-a", "rule-b"}));
  EXPECT_TRUE(scan.line_allows[1].empty());
  EXPECT_EQ(scan.line_allows[2], (std::vector<std::string>{"rule-c"}));
  EXPECT_EQ(scan.file_allows, (std::vector<std::string>{"rule-d"}));
}

TEST(SimtyLintLexer, WordBoundaries) {
  EXPECT_TRUE(has_word("x = rand();", "rand"));
  EXPECT_FALSE(has_word("x = grand();", "rand"));
  EXPECT_FALSE(has_word("x = rands();", "rand"));
  EXPECT_TRUE(has_word("std::hash<int> h;", "std::hash"));
  EXPECT_FALSE(has_word("std::hashish h;", "std::hash"));
  EXPECT_FALSE(has_word("std::string_view v;", "std::string"));
}

TEST(SimtyLintLexer, RawStringsBlankEmbeddedCommentMarkers) {
  // `//` inside a raw string is content, not a comment — code after the
  // closing delimiter on the same line must survive the scan.
  const FileScan scan = scan_source(
      "auto s = R\"(// not a comment; rand())\"; int live = rand();\n"
      "auto d = R\"x(quote\" and )\" inside)x\"; int tail = 1;\n");
  ASSERT_GE(scan.code.size(), 2u);
  EXPECT_TRUE(has_word(scan.code[0], "rand"));  // the real call after the literal
  EXPECT_FALSE(scan.code[0].find("not a comment") != std::string::npos);
  // The )\" inside the d-char-delimited literal must not close it early.
  EXPECT_FALSE(has_word(scan.code[1], "inside"));
  EXPECT_TRUE(has_word(scan.code[1], "tail"));
}

TEST(SimtyLintLexer, DigitSeparatorsAreNotCharLiterals) {
  // 1'000'000 must not start a character literal that swallows the rest of
  // the line (a classic lexer bug for C++14 digit separators).
  const FileScan scan = scan_source("int n = 1'000'000; int m = rand();\n");
  ASSERT_GE(scan.code.size(), 1u);
  EXPECT_TRUE(has_word(scan.code[0], "rand"));
}

TEST(SimtyLintLexer, BackslashContinuedLineComments) {
  // Phase-2 splicing: a `//` comment ending in a backslash swallows the next
  // physical line, so the rand() there is commented out — but line 3 is code.
  const FileScan scan = scan_source(
      "int a = 0; // continued \\\n"
      "int dead = rand();\n"
      "int live = rand();\n");
  ASSERT_GE(scan.code.size(), 3u);
  EXPECT_FALSE(has_word(scan.code[1], "rand"));
  EXPECT_TRUE(has_word(scan.code[2], "rand"));
}

TEST(SimtyLintLexer, DirectiveTagSelectsToolNamespace) {
  // The same source carries hatches for both tools; each scan must honour
  // only its own tag.
  const std::string src =
      "int a;  // simty-lint: allow(wall-clock)\n"
      "int b;  // simty-analyze: allow(taint)\n";
  const FileScan lint_scan = scan_source(src);
  EXPECT_EQ(lint_scan.line_allows[0], (std::vector<std::string>{"wall-clock"}));
  EXPECT_TRUE(lint_scan.line_allows[1].empty());
  const FileScan analyze_scan = scan_source(src, "simty-analyze:");
  EXPECT_TRUE(analyze_scan.line_allows[0].empty());
  EXPECT_EQ(analyze_scan.line_allows[1], (std::vector<std::string>{"taint"}));
}

TEST(SimtyLintApi, UnorderedNamesInFindsAliasesAndMembers) {
  const auto names = unordered_names_in(
      "#pragma once\n"
      "#include <unordered_map>\n"
      "using Index = std::unordered_map<int, int>;\n"
      "struct S {\n"
      "  std::unordered_map<int, std::vector<int>> by_id_;\n"
      "  Index index_;\n"
      "};\n");
  EXPECT_NE(std::find(names.begin(), names.end(), "by_id_"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "index_"), names.end());
}

TEST(SimtyLintApi, JsonReportEscapesAndCounts) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, "assert", "uses \"assert\""}};
  const std::string json = to_json(findings, 7);
  EXPECT_NE(json.find("\"files_scanned\": 7"), std::string::npos);
  EXPECT_NE(json.find("\\\"assert\\\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_EQ(to_json({}, 0).find("\"findings\": []") == std::string::npos, false);
}

TEST(SimtyLintApi, RuleNamesStable) {
  const auto& names = rule_names();
  EXPECT_EQ(names.size(), 12u);
  EXPECT_NE(std::find(names.begin(), names.end(), "wall-clock"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "unordered-iter"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "queue-scan"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "hot-path-owning"), names.end());
}

}  // namespace
}  // namespace simty::lint
