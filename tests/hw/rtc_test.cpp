#include "hw/rtc.hpp"

#include <gtest/gtest.h>

namespace simty::hw {
namespace {

class RtcTest : public ::testing::Test {
 protected:
  RtcTest() : model_(PowerModel::nexus5()), device_(sim_, model_, bus_), rtc_(sim_, device_) {}
  TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }
  sim::Simulator sim_;
  PowerModel model_;
  PowerBus bus_;
  Device device_;
  Rtc rtc_;
};

TEST_F(RtcTest, FiresHandlerAfterWakeLatency) {
  TimePoint handled;
  rtc_.program(at(10), [&] { handled = sim_.now(); });
  sim_.run_until(at(20));
  EXPECT_EQ(handled, at(10) + model_.wake_latency);
  EXPECT_EQ(rtc_.fired_count(), 1u);
  EXPECT_FALSE(rtc_.programmed().has_value());
}

TEST_F(RtcTest, HandlerImmediateWhenDeviceAlreadyAwake) {
  TimePoint first, second;
  rtc_.program(at(10), [&] {
    first = sim_.now();
    // Keep awake past the next deadline via a cpu lock.
    device_.acquire_cpu_lock();
    rtc_.program(at(12), [&] {
      second = sim_.now();
      device_.release_cpu_lock();
    });
  });
  sim_.run_until(at(20));
  EXPECT_EQ(first, at(10) + model_.wake_latency);
  EXPECT_EQ(second, at(12));  // no extra latency: device already awake
  EXPECT_EQ(device_.wakeup_count(), 1u);
}

TEST_F(RtcTest, ReprogramReplacesDeadline) {
  int fired = 0;
  rtc_.program(at(10), [&] { ++fired; });
  rtc_.program(at(5), [&] { fired += 10; });
  ASSERT_TRUE(rtc_.programmed().has_value());
  EXPECT_EQ(*rtc_.programmed(), at(5));
  sim_.run_until(at(20));
  EXPECT_EQ(fired, 10);  // only the replacement fired
  EXPECT_EQ(rtc_.fired_count(), 1u);
}

TEST_F(RtcTest, ClearCancelsInterrupt) {
  int fired = 0;
  rtc_.program(at(10), [&] { ++fired; });
  rtc_.clear();
  EXPECT_FALSE(rtc_.programmed().has_value());
  sim_.run_until(at(20));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(device_.wakeup_count(), 0u);
}

TEST_F(RtcTest, PastDeadlineRejected) {
  sim_.schedule_at(at(10), [] {});
  sim_.run_all();
  EXPECT_THROW(rtc_.program(at(5), [] {}), std::logic_error);
}

TEST_F(RtcTest, HandlerCanReprogramForPeriodicWakeups) {
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    if (fired < 5) rtc_.program(sim_.now() + Duration::seconds(60), tick);
  };
  rtc_.program(at(60), tick);
  sim_.run_until(at(600));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(device_.wakeup_count(), 5u);  // device slept between ticks
}

}  // namespace
}  // namespace simty::hw
