#pragma once
// Event-driven interactive sessions: drives sampled user sessions into a
// live simulation — each session wakes the device with a button press and
// holds a CPU lock plus the screen for its length. Unlike the analytic
// composition in day_model, this lets alarms, pushes, and NON-WAKEUP
// deliveries interleave with real screen-on periods: the §2.1 behaviour
// where non-wakeup alarms ride user interactions becomes measurable over
// a whole day.

#include <cstdint>
#include <vector>

#include "hw/device.hpp"
#include "hw/wakelock.hpp"
#include "sim/simulator.hpp"
#include "usage/day_model.hpp"

namespace simty::usage {

/// Schedules interactive sessions into a running simulation.
class InteractiveDriver {
 public:
  InteractiveDriver(sim::Simulator& sim, hw::Device& device,
                    hw::WakelockManager& wakelocks);

  InteractiveDriver(const InteractiveDriver&) = delete;
  InteractiveDriver& operator=(const InteractiveDriver&) = delete;

  /// Schedules every session (all starts must be in the future).
  void schedule(const std::vector<InteractiveSession>& sessions);

  std::uint64_t sessions_completed() const { return completed_; }
  Duration screen_on_time() const { return screen_on_; }

 private:
  void run_session(InteractiveSession session);

  sim::Simulator& sim_;
  hw::Device& device_;
  hw::WakelockManager& wakelocks_;
  std::uint64_t completed_ = 0;
  Duration screen_on_ = Duration::zero();
};

/// One day of MIXED simulation: the standby workload of `standby_config`
/// plus real interactive sessions sampled from `pattern`, in one 24-hour
/// discrete-event run.
struct MixedDayResult {
  power::EnergyBreakdown energy;
  Duration screen_on_time = Duration::zero();
  std::uint64_t sessions = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t user_wakeups = 0;        // button-initiated
  double deliveries = 0.0;
  double nonwakeup_deliveries = 0.0;     // rode a wakeup or a session
  double battery_days(Energy capacity) const;
};

MixedDayResult simulate_day_mixed(const exp::ExperimentConfig& standby_config,
                                  const UsagePattern& pattern, std::uint64_t seed);

}  // namespace simty::usage
