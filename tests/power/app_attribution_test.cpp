#include "power/app_attribution.hpp"

#include <gtest/gtest.h>

#include "alarm/native_policy.hpp"
#include "apps/workload.hpp"
#include "power/energy_accounting.hpp"
#include "support/framework_fixture.hpp"

namespace simty::power {
namespace {

using hw::Component;
using hw::ComponentSet;

alarm::SessionRecord session(bool caused_wakeup,
                             std::vector<alarm::SessionItem> items,
                             Duration cpu = Duration::seconds(1)) {
  alarm::SessionRecord s;
  s.start = TimePoint::origin();
  s.cpu_session = cpu;
  s.caused_wakeup = caused_wakeup;
  s.items = std::move(items);
  return s;
}

alarm::SessionItem item(std::uint32_t app, const std::string& tag,
                        ComponentSet set, Duration hold) {
  return alarm::SessionItem{alarm::AlarmId{app}, alarm::AppId{app}, tag, set, hold};
}

TEST(AppEnergyAttributor, SoloSessionGetsFullBill) {
  const hw::PowerModel m = hw::PowerModel::nexus5();
  AppEnergyAttributor attr(m);
  attr.observe(session(
      true, {item(1, "wps.fix", ComponentSet{Component::kWps}, Duration::seconds(10))},
      Duration::seconds(10)));
  const auto shares = attr.by_app();
  ASSERT_EQ(shares.size(), 1u);
  // Bill ≈ wake transition + waking ramp + base*(10 + linger) + activation
  // + 10 s of WPS power — about the 3.65 J solo fix minus rounding on the
  // linger/floor conventions.
  EXPECT_NEAR(shares[0].energy.mj(), 3650.0, 300.0);
  EXPECT_EQ(shares[0].deliveries, 1u);
}

TEST(AppEnergyAttributor, SharedComponentsSplitActivationEvenly) {
  const hw::PowerModel m = hw::PowerModel::nexus5();
  AppEnergyAttributor attr(m);
  attr.observe(session(
      true,
      {item(1, "a", ComponentSet{Component::kWps}, Duration::seconds(10)),
       item(2, "b", ComponentSet{Component::kWps}, Duration::seconds(10))},
      Duration::seconds(10)));
  const auto shares = attr.by_app();
  ASSERT_EQ(shares.size(), 2u);
  // Perfect symmetry: both pay the same.
  EXPECT_NEAR(shares[0].energy.mj(), shares[1].energy.mj(), 1e-9);
  // Together they pay one fix, not two (piggybacking).
  EXPECT_NEAR(shares[0].energy.mj() + shares[1].energy.mj(), 3650.0, 300.0);
}

TEST(AppEnergyAttributor, ActiveCostProportionalToHold) {
  const hw::PowerModel m = hw::PowerModel::nexus5();
  AppEnergyAttributor attr(m);
  attr.observe(session(
      false,
      {item(1, "short", ComponentSet{Component::kWifi}, Duration::seconds(1)),
       item(2, "long", ComponentSet{Component::kWifi}, Duration::seconds(9))},
      Duration::seconds(9)));
  const auto tags = attr.by_tag();
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0].label, "long");  // sorted by energy, long pays more
  EXPECT_GT(tags[0].energy.mj(), tags[1].energy.mj() * 2);
}

TEST(AppEnergyAttributor, NoWakeupSessionSkipsTransitionCost) {
  const hw::PowerModel m = hw::PowerModel::nexus5();
  AppEnergyAttributor a1(m), a2(m);
  const auto items = std::vector<alarm::SessionItem>{
      item(1, "x", ComponentSet::none(), Duration::zero())};
  a1.observe(session(true, items));
  a2.observe(session(false, items));
  EXPECT_GT(a1.attributed_total().mj(), a2.attributed_total().mj());
  EXPECT_NEAR(a1.attributed_total().mj() - a2.attributed_total().mj(),
              m.wake_transition.mj() + (m.waking * m.wake_latency).mj(), 1e-9);
}

TEST(AppEnergyAttributor, EmptySessionIgnored) {
  AppEnergyAttributor attr(hw::PowerModel::nexus5());
  attr.observe(session(true, {}));
  EXPECT_EQ(attr.by_app().size(), 0u);
  EXPECT_DOUBLE_EQ(attr.attributed_total().mj(), 0.0);
}

TEST(AppEnergyAttributor, ReconcileRequiresPositiveMeasurement) {
  AppEnergyAttributor attr(hw::PowerModel::nexus5());
  EXPECT_THROW(attr.reconcile(Energy::zero()), std::logic_error);
}

class AttributionIntegration : public test::FrameworkFixture {};

TEST_F(AttributionIntegration, AttributionApproximatesMeasuredAwakeEnergy) {
  init(std::make_unique<alarm::NativePolicy>());
  power::EnergyAccountant accountant;
  bus_.add_listener(&accountant);
  AppEnergyAttributor attr(model_);
  manager_->add_session_observer(attr.observer());

  apps::Workload workload = apps::Workload::light(apps::WorkloadConfig{});
  workload.deploy(sim_, *manager_);
  const TimePoint horizon = at(3600);
  sim_.run_until(horizon);
  device_->finalize(horizon);
  wakelocks_->finalize(horizon);
  accountant.finalize(horizon);

  // The batterystats-style estimate reconciles with the measured awake
  // energy within 20% — documented as an estimate, but a sane one.
  EXPECT_LT(attr.reconcile(accountant.breakdown().awake_total()), 0.20);
  // Every light-workload app appears in the per-app table (12 apps; the
  // accountant was attached after the device ctor so no system apps here).
  EXPECT_EQ(attr.by_app().size(), 12u);
}

}  // namespace
}  // namespace simty::power
