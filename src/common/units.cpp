#include "common/units.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace simty {

double Energy::ratio(Energy denom) const {
  if (denom.mj_ == 0.0) {
    throw std::invalid_argument("Energy::ratio: zero denominator");
  }
  return mj_ / denom.mj_;
}

std::string Energy::to_string() const {
  char buf[64];
  if (std::fabs(mj_) >= 10'000.0) {
    std::snprintf(buf, sizeof buf, "%.2f J", mj_ / 1000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f mJ", mj_);
  }
  return buf;
}

std::string Power::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f mW", mw_);
  return buf;
}

}  // namespace simty
