#!/usr/bin/env bash
# Re-records bench/serial_budgets.txt: times every bench serially
# (SIMTY_JOBS=1), rounds up and applies a floor so CI has headroom for
# runner startup noise. Usage: tools/record_bench_budgets.sh [build-dir]
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo_root/bench/serial_budgets.txt"
floor_s=3

[ -d "$repo_root/$build_dir/bench" ] || {
  echo "error: $build_dir/bench not found — build first" >&2
  exit 1
}

{
  sed -n '/^#/p' "$out" 2>/dev/null || true
  for b in "$repo_root/$build_dir"/bench/bench_*; do
    [ -x "$b" ] || continue
    name="$(basename "$b")"
    start=$(date +%s%N)
    SIMTY_JOBS=1 "$b" > /dev/null
    end=$(date +%s%N)
    ms=$(( (end - start) / 1000000 ))
    budget=$(( (ms + 999) / 1000 + 1 ))
    [ "$budget" -lt "$floor_s" ] && budget=$floor_s
    echo "$name $budget"
  done
} > "$out.tmp"
mv "$out.tmp" "$out"
echo "recorded $(grep -c '^bench_' "$out") budgets into $out"
