#include "net/rrc.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/tracer.hpp"

namespace simty::net {

const char* to_string(RrcState s) {
  switch (s) {
    case RrcState::kIdle: return "IDLE";
    case RrcState::kFach: return "FACH";
    case RrcState::kDch: return "DCH";
  }
  return "?";
}

RrcMachine::RrcMachine(sim::Simulator& sim, RrcConfig config, hw::PowerBus& bus)
    : sim_(sim), config_(config), bus_(bus), state_since_(sim.now()),
      busy_until_(sim.now()) {
  SIMTY_CHECK(config_.dch_to_fach > Duration::zero());
  SIMTY_CHECK(config_.fach_to_idle > Duration::zero());
}

void RrcMachine::data_activity(Duration duration) {
  SIMTY_CHECK_MSG(!duration.is_negative(), "activity duration must be >= 0");
  const TimePoint now = sim_.now();
  busy_until_ = std::max(busy_until_, now + duration);

  switch (state_) {
    case RrcState::kIdle:
      ++idle_promotions_;
      bus_.publish_impulse(now, config_.idle_promotion,
                           hw::ImpulseKind::kComponentActivation, "rrc-idle-dch");
      enter(RrcState::kDch);
      break;
    case RrcState::kFach:
      ++fach_promotions_;
      bus_.publish_impulse(now, config_.fach_promotion,
                           hw::ImpulseKind::kComponentActivation, "rrc-fach-dch");
      enter(RrcState::kDch);
      break;
    case RrcState::kDch:
      break;  // already up; timers just move out
  }
  arm_demotion();
}

void RrcMachine::set_state_observer(std::function<void(RrcState)> observer) {
  state_observer_ = std::move(observer);
}

void RrcMachine::enter(RrcState next) {
  const TimePoint now = sim_.now();
  time_in_[static_cast<std::size_t>(state_)] += now - state_since_;
  state_since_ = now;
  state_ = next;
  SIMTY_TRACE_INSTANT(now, trace::TraceCategory::kNet, "rrc-state",
                      static_cast<std::int64_t>(state_));
  switch (state_) {
    case RrcState::kDch:
      bus_.publish_component_power(now, hw::Component::kCellular, true, config_.dch);
      break;
    case RrcState::kFach:
      bus_.publish_component_power(now, hw::Component::kCellular, true, config_.fach);
      break;
    case RrcState::kIdle:
      bus_.publish_component_power(now, hw::Component::kCellular, false, Power::zero());
      break;
  }
  if (state_observer_) state_observer_(state_);
}

void RrcMachine::arm_demotion() {
  if (demotion_event_) {
    sim_.cancel(*demotion_event_);
    demotion_event_.reset();
  }
  demotion_event_ =
      sim_.schedule_at(busy_until_ + config_.dch_to_fach,
                       [this] { demote_to_fach(); },
                       sim::EventPriority::kHardware, "rrc-dch-fach");
}

void RrcMachine::demote_to_fach() {
  enter(RrcState::kFach);
  demotion_event_ =
      sim_.schedule_at(sim_.now() + config_.fach_to_idle,
                       [this] { demote_to_idle(); },
                       sim::EventPriority::kHardware, "rrc-fach-idle");
}

void RrcMachine::demote_to_idle() {
  demotion_event_.reset();
  enter(RrcState::kIdle);
}

void RrcMachine::save(snapshot::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  w.i64(state_since_.us());
  w.i64(busy_until_.us());
  w.boolean(demotion_event_.has_value());
  if (demotion_event_) w.u64(demotion_event_->value);
  w.u64(idle_promotions_);
  w.u64(fach_promotions_);
  for (const Duration d : time_in_) w.i64(d.us());
}

void RrcMachine::restore(snapshot::SectionReader& s) {
  const std::uint8_t state = s.u8();
  SIMTY_CHECK_MSG(state <= static_cast<std::uint8_t>(RrcState::kDch),
                  "RrcMachine::restore: state out of range");
  state_ = static_cast<RrcState>(state);
  state_since_ = TimePoint::from_us(s.i64());
  busy_until_ = TimePoint::from_us(s.i64());
  demotion_event_.reset();
  if (s.boolean()) {
    const std::uint64_t event = s.u64();
    SIMTY_CHECK_MSG(event != 0, "RrcMachine::restore: null demotion event");
    SIMTY_CHECK_MSG(state_ != RrcState::kIdle,
                    "RrcMachine::restore: idle radio with a pending demotion");
    demotion_event_ = sim::EventId{event};
    if (state_ == RrcState::kDch) {
      sim_.rebind(*demotion_event_, [this] { demote_to_fach(); });
    } else {
      sim_.rebind(*demotion_event_, [this] { demote_to_idle(); });
    }
  } else {
    SIMTY_CHECK_MSG(state_ == RrcState::kIdle,
                    "RrcMachine::restore: active radio without a demotion timer");
  }
  idle_promotions_ = s.u64();
  fach_promotions_ = s.u64();
  for (Duration& d : time_in_) d = Duration::micros(s.i64());
  // Re-announce the current rail so a fresh listener stack starts from the
  // restored state rather than nothing.
  const TimePoint now = sim_.now();
  switch (state_) {
    case RrcState::kDch:
      bus_.publish_component_power(now, hw::Component::kCellular, true, config_.dch);
      break;
    case RrcState::kFach:
      bus_.publish_component_power(now, hw::Component::kCellular, true, config_.fach);
      break;
    case RrcState::kIdle:
      bus_.publish_component_power(now, hw::Component::kCellular, false,
                                   Power::zero());
      break;
  }
}

Duration RrcMachine::time_in(RrcState s) const {
  return time_in_[static_cast<std::size_t>(s)];
}

void RrcMachine::finalize(TimePoint now) {
  SIMTY_CHECK_MSG(now >= state_since_,
                  "RrcMachine::finalize: horizon before the open span start");
  time_in_[static_cast<std::size_t>(state_)] += now - state_since_;
  state_since_ = now;
}

}  // namespace simty::net
