#pragma once
// Shared test harness wiring up the full framework stack: simulator, power
// bus, device, RTC, wakelock manager, and an alarm manager with a
// test-chosen policy. FrameworkHarness is a plain struct usable anywhere;
// FrameworkFixture adapts it as a gtest fixture.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alarm/alarm_manager.hpp"
#include "alarm/policy.hpp"
#include "hw/device.hpp"
#include "hw/power_bus.hpp"
#include "hw/power_model.hpp"
#include "hw/rtc.hpp"
#include "hw/wakelock.hpp"
#include "sim/simulator.hpp"

namespace simty::test {

/// Framework stack with a pluggable alignment policy. Records every
/// delivery for assertions.
struct FrameworkHarness {
  FrameworkHarness() : model_(hw::PowerModel::nexus5()) {}

  /// Call once before registering alarms.
  void init(std::unique_ptr<alarm::AlignmentPolicy> policy) {
    device_ = std::make_unique<hw::Device>(sim_, model_, bus_);
    rtc_ = std::make_unique<hw::Rtc>(sim_, *device_);
    wakelocks_ = std::make_unique<hw::WakelockManager>(sim_, model_, bus_);
    manager_ = std::make_unique<alarm::AlarmManager>(sim_, *device_, *rtc_,
                                                     *wakelocks_, std::move(policy));
    manager_->add_delivery_observer(
        [this](const alarm::DeliveryRecord& r) { deliveries_.push_back(r); });
  }

  TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

  /// Handler returning a fixed task.
  static alarm::DeliveryHandler task(hw::ComponentSet set, Duration hold) {
    return [set, hold](const alarm::Alarm&, TimePoint) {
      return alarm::TaskSpec{set, hold};
    };
  }

  /// Handler for a CPU-only alarm.
  static alarm::DeliveryHandler noop_task() {
    return task(hw::ComponentSet::none(), Duration::zero());
  }

  /// Deliveries recorded for a given alarm.
  std::vector<alarm::DeliveryRecord> deliveries_of(alarm::AlarmId id) const {
    std::vector<alarm::DeliveryRecord> out;
    for (const auto& r : deliveries_) {
      if (r.id == id) out.push_back(r);
    }
    return out;
  }

  sim::Simulator sim_;
  hw::PowerModel model_;
  hw::PowerBus bus_;
  std::unique_ptr<hw::Device> device_;
  std::unique_ptr<hw::Rtc> rtc_;
  std::unique_ptr<hw::WakelockManager> wakelocks_;
  std::unique_ptr<alarm::AlarmManager> manager_;
  std::vector<alarm::DeliveryRecord> deliveries_;
};

/// gtest adapter over the harness.
class FrameworkFixture : public ::testing::Test, public FrameworkHarness {};

}  // namespace simty::test
