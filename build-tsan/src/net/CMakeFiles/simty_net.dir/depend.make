# Empty dependencies file for simty_net.
# This may be replaced when dependencies are built.
