// Ablation A12: radio tails and fast dormancy (ref [12]). The calibrated
// model powers components down on release; real radios linger in a
// high-power tail. Sweeping a Wi-Fi tail shows (a) tails inflate standby
// energy under both policies, (b) alignment grows MORE valuable with
// tails (batched syncs share one tail; warm starts skip activation), and
// (c) fast dormancy (truncating the tail, ref [12]'s lever) composes with
// alignment rather than replacing it.

#include <cstdio>
#include <memory>

#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "apps/workload.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "hw/device.hpp"
#include "hw/power_bus.hpp"
#include "hw/rtc.hpp"
#include "hw/wakelock.hpp"
#include "power/energy_accounting.hpp"
#include "sim/simulator.hpp"

using namespace simty;

namespace {

struct Outcome {
  double total_j = 0.0;
  double warm_starts = 0.0;
  double tail_seconds = 0.0;
};

Outcome run(bool use_simty, Duration tail, bool fast_dormancy, std::uint64_t seed) {
  sim::Simulator sim;
  hw::PowerBus bus;
  power::EnergyAccountant accountant;
  bus.add_listener(&accountant);
  hw::PowerModel model = hw::PowerModel::nexus5();
  model.component(hw::Component::kWifi).tail = tail;
  model.component(hw::Component::kWifi).tail_power = Power::milliwatts(120);
  hw::Device device(sim, model, bus);
  hw::Rtc rtc(sim, device);
  hw::WakelockManager wakelocks(sim, model, bus);
  if (fast_dormancy) {
    wakelocks.set_fast_dormancy(hw::Component::kWifi, Duration::millis(300));
  }
  std::unique_ptr<alarm::AlignmentPolicy> policy;
  if (use_simty) policy = std::make_unique<alarm::SimtyPolicy>();
  else policy = std::make_unique<alarm::NativePolicy>();
  alarm::AlarmManager manager(sim, device, rtc, wakelocks, std::move(policy));

  apps::WorkloadConfig wc;
  wc.seed = seed;
  apps::Workload workload = apps::Workload::light(wc);
  workload.deploy(sim, manager);

  const TimePoint horizon = TimePoint::origin() + Duration::hours(3);
  sim.run_until(horizon);
  device.finalize(horizon);
  wakelocks.finalize(horizon);
  accountant.finalize(horizon);
  return Outcome{
      accountant.breakdown().total().joules_f(),
      static_cast<double>(wakelocks.usage(hw::Component::kWifi).warm_starts),
      wakelocks.usage(hw::Component::kWifi).tail_time.seconds_f()};
}

Outcome averaged(bool use_simty, Duration tail, bool fd) {
  Outcome sum;
  const int reps = 3;
  for (int i = 0; i < reps; ++i) {
    const Outcome o = run(use_simty, tail, fd, static_cast<std::uint64_t>(i + 1));
    sum.total_j += o.total_j / reps;
    sum.warm_starts += o.warm_starts / reps;
    sum.tail_seconds += o.tail_seconds / reps;
  }
  return sum;
}

}  // namespace

int main() {
  TextTable t("Wi-Fi tail sweep (light workload, 3 h, 3 seeds)");
  t.set_header({"tail", "fast dormancy", "NATIVE (J)", "SIMTY (J)", "SIMTY saving",
                "SIMTY warm starts", "SIMTY tail time (s)"});
  for (const std::int64_t tail_ms : {0, 500, 1500, 3000}) {
    for (const bool fd : {false, true}) {
      if (tail_ms == 0 && fd) continue;  // nothing to truncate
      const Duration tail = Duration::millis(tail_ms);
      const Outcome native = averaged(false, tail, fd);
      const Outcome simty = averaged(true, tail, fd);
      t.add_row({tail.to_string(), fd ? "on (300ms)" : "off",
                 str_format("%.1f", native.total_j), str_format("%.1f", simty.total_j),
                 percent(1.0 - simty.total_j / native.total_j),
                 str_format("%.0f", simty.warm_starts),
                 str_format("%.0f", simty.tail_seconds)});
    }
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
