#pragma once
// Power/energy model of the simulated smartphone.
//
// Calibrated against the three measurements the paper publishes for the
// LG Nexus 5 (§2.2): a bare wakeup without extra hardware costs ~180 mJ,
// one WPS location fix costs ~3,650 mJ, and one calendar notification costs
// ~400 mJ. Everything else (Wi-Fi sync, accelerometer sampling, connected-
// standby sleep floor) uses representative published Nexus-5-class numbers;
// only the *shape* of the resulting figures is claimed, not absolute joules.

#include <array>
#include <string>

#include "common/time.hpp"
#include "common/units.hpp"
#include "hw/component.hpp"

namespace simty::hw {

/// Per-component electrical parameters.
struct ComponentPower {
  /// One-off energy to bring the component out of its dormant mode; paid
  /// once per on-cycle and therefore amortized across aligned alarms — the
  /// root cause of hardware-similarity savings (paper §3.1.1).
  Energy activation = Energy::zero();

  /// Power drawn while the component is wakelocked on.
  Power active = Power::zero();

  /// How much of concurrent tasks' hold time serializes on this component:
  /// 0.0 = perfect piggybacking (one WPS scan serves every requester),
  /// 1.0 = fully serial (each task holds the component for its full
  /// duration after its predecessor). Governs how much on-time alignment
  /// actually removes.
  double serial_fraction = 0.0;

  /// Radio tail: after the last wakelock drops the component lingers in a
  /// high-power state for this long before powering down (the "kept on for
  /// longer than necessary" of ref [12]; zero = immediate power-down, the
  /// calibrated default). Re-acquiring during the tail is a warm start: no
  /// activation energy is paid.
  Duration tail = Duration::zero();

  /// Power drawn during the tail.
  Power tail_power = Power::zero();
};

/// Whole-device and per-component power parameters.
struct PowerModel {
  /// Connected-standby floor: CPU suspended, Wi-Fi in PSM keeping the
  /// association alive. This is the portion alarm alignment cannot reduce.
  Power sleep = Power::milliwatts(25.0);

  /// Power while the wake transition is in flight.
  Power waking = Power::milliwatts(150.0);

  /// CPU + memory + rails while awake with the screen off.
  Power awake_base = Power::milliwatts(200.0);

  /// Energy impulse paid at the start of each wake transition (cache/DRAM
  /// restore, governor ramp).
  Energy wake_transition = Energy::millijoules(38.0);

  /// RTC interrupt to usable-CPU latency. Explains the paper's observation
  /// that alpha = 0 alarms slip 0.4-0.6 % of their period under NATIVE.
  Duration wake_latency = Duration::millis(250);

  /// How long the device stays awake after the last CPU wakelock drops.
  Duration idle_linger = Duration::millis(300);

  /// Minimum awake time to run an alarm handler that wakelocks nothing.
  Duration handler_floor = Duration::millis(400);

  std::array<ComponentPower, kComponentCount> components{};

  /// Nexus-5-flavoured defaults calibrated to the paper's measurements.
  static PowerModel nexus5();

  /// A wearable-class profile (smartwatch): every rail is several times
  /// leaner and the sleep floor is tiny, so the awake share dominates the
  /// standby bill. Used by the hardware-profile ablation; not calibrated
  /// to any published measurement.
  static PowerModel wearable();

  const ComponentPower& component(Component c) const;
  ComponentPower& component(Component c);

  /// Analytic energy of a *solo* delivery of an alarm that wakelocks `set`
  /// for `hold`. Used by calibration tests and the Fig-2 bench; the
  /// simulator reproduces these numbers dynamically.
  Energy solo_delivery_energy(ComponentSet set, Duration hold) const;
};

}  // namespace simty::hw
