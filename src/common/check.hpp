#pragma once
// Invariant checking.
//
// SIMTY_CHECK is always on (simulation correctness beats raw speed here; the
// discrete-event core is far from any hot path that would notice), and
// failures throw rather than abort so tests can assert on misuse.

#include <stdexcept>
#include <string>

namespace simty::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw std::logic_error(std::string("SIMTY_CHECK failed: ") + expr + " at " + file +
                         ":" + std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace simty::detail

#define SIMTY_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr)) ::simty::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define SIMTY_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) ::simty::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
