file(REMOVE_RECURSE
  "CMakeFiles/test_usage.dir/usage/day_model_test.cpp.o"
  "CMakeFiles/test_usage.dir/usage/day_model_test.cpp.o.d"
  "CMakeFiles/test_usage.dir/usage/interactive_test.cpp.o"
  "CMakeFiles/test_usage.dir/usage/interactive_test.cpp.o.d"
  "test_usage"
  "test_usage.pdb"
  "test_usage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
