#pragma once
// Streaming statistics (Welford's algorithm) for experiment repetitions:
// the paper reports averages over three runs; we additionally expose
// standard deviations and confidence half-widths so EXPERIMENTS.md can
// state how stable each reproduced number is.

#include <cstdint>
#include <string>

namespace simty {

/// Numerically stable online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Mean of the samples (0 when empty).
  double mean() const;

  /// Unbiased sample variance (0 with fewer than 2 samples).
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  double min() const { return min_; }
  double max() const { return max_; }

  /// Half-width of an approximate 95% confidence interval for the mean
  /// (normal approximation; 0 with fewer than 2 samples).
  double ci95_halfwidth() const;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const OnlineStats& other);

  /// "mean ± hw" rendering with the given precision.
  std::string to_string(int decimals = 2) const;

  /// Exact internal state, for snapshot/restore (common/ sits below the
  /// snapshot layer, so serialization lives with the callers). Restoring
  /// from a saved state is bit-exact: the doubles travel untouched.
  struct State {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State state() const { return {n_, mean_, m2_, min_, max_}; }
  static OnlineStats from_state(const State& s) {
    OnlineStats o;
    o.n_ = s.n;
    o.mean_ = s.mean;
    o.m2_ = s.m2;
    o.min_ = s.min;
    o.max_ = s.max;
    return o;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace simty
