#include "fleet/report.hpp"

#include "common/strings.hpp"

namespace simty::fleet {

namespace {

struct NamedMetric {
  const char* name;
  const MetricAggregate* agg;
};

std::vector<NamedMetric> metrics_of(const CohortAggregate& c) {
  return {{"energy_j", &c.energy_j},
          {"avg_power_mw", &c.avg_power_mw},
          {"wakeups_per_hour", &c.wakeups_per_hour},
          {"delay_norm", &c.delay_norm}};
}

}  // namespace

std::string render_fleet_report(const FleetResult& result) {
  std::string out = str_format(
      "fleet: %s over %llu devices\n", result.policy_name.c_str(),
      static_cast<unsigned long long>(result.devices));
  out += str_format("%-14s %8s %18s %8s %10s %14s %10s\n", "cohort", "devices",
                    "energy J (m±sd)", "p95 J", "mW mean", "wake/h (m,p95)",
                    "delay p99");
  auto row = [&out](const CohortAggregate& c) {
    out += str_format(
        "%-14s %8llu %11.3f±%-6.3f %8.3f %10.3f %7.1f,%-6.1f %10.4f\n",
        c.cohort.c_str(), static_cast<unsigned long long>(c.devices),
        c.energy_j.stats().mean(), c.energy_j.stats().stddev(),
        c.energy_j.quantile(0.95), c.avg_power_mw.stats().mean(),
        c.wakeups_per_hour.stats().mean(), c.wakeups_per_hour.quantile(0.95),
        c.delay_norm.quantile(0.99));
  };
  for (const CohortAggregate& c : result.cohorts) row(c);
  row(result.overall);
  return out;
}

std::string fleet_csv(const std::vector<FleetResult>& results) {
  std::string out =
      "policy,cohort,devices,metric,count,mean,stddev,min,max,p50,p95,p99\n";
  for (const FleetResult& r : results) {
    auto rows = [&out, &r](const CohortAggregate& c) {
      for (const NamedMetric& m : metrics_of(c)) {
        const OnlineStats& s = m.agg->stats();
        out += str_format(
            "%s,%s,%llu,%s,%llu,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
            r.policy_name.c_str(), c.cohort.c_str(),
            static_cast<unsigned long long>(c.devices), m.name,
            static_cast<unsigned long long>(s.count()), s.mean(), s.stddev(),
            s.min(), s.max(), m.agg->quantile(0.5), m.agg->quantile(0.95),
            m.agg->quantile(0.99));
      }
    };
    for (const CohortAggregate& c : r.cohorts) rows(c);
    rows(r.overall);
  }
  return out;
}

}  // namespace simty::fleet
