// Push messaging end to end: a messenger that uses BOTH wakeup mechanisms
// of paper footnote 1 — its periodic sync alarm through the AlarmManager
// and GCM pushes for incoming chats — plus a non-wakeup housekeeping alarm
// that rides whatever wakes the device first.

#include <cstdio>
#include <memory>

#include "alarm/alarm_manager.hpp"
#include "alarm/simty_policy.hpp"
#include "gcm/gcm_service.hpp"
#include "hw/device.hpp"
#include "hw/power_bus.hpp"
#include "hw/rtc.hpp"
#include "hw/wakelock.hpp"
#include "net/wifi_link.hpp"
#include "power/energy_accounting.hpp"
#include "sim/simulator.hpp"

using namespace simty;

int main() {
  sim::Simulator sim;
  hw::PowerBus bus;
  power::EnergyAccountant accountant;
  bus.add_listener(&accountant);
  const hw::PowerModel model = hw::PowerModel::nexus5();
  hw::Device device(sim, model, bus);
  hw::Rtc rtc(sim, device);
  hw::WakelockManager wakelocks(sim, model, bus);
  alarm::AlarmManager manager(sim, device, rtc, wakelocks,
                              std::make_unique<alarm::SimtyPolicy>());

  const TimePoint horizon = TimePoint::origin() + Duration::hours(3);

  // A realistic Wi-Fi link for payload fetches.
  net::WifiLink link(sim, net::WifiLinkConfig{}, Rng(1));
  link.start(horizon);

  // Mechanism 1: the periodic sync alarm (internal wakeups).
  manager.register_alarm(
      alarm::AlarmSpec::repeating("chatapp.sync", alarm::AppId{1},
                                  alarm::RepeatMode::kDynamic,
                                  Duration::seconds(300), 0.75, 0.96),
      TimePoint::origin() + Duration::seconds(300),
      [](const alarm::Alarm&, TimePoint) {
        return alarm::TaskSpec{hw::ComponentSet{hw::Component::kWifi},
                               Duration::seconds(2)};
      });

  // A non-wakeup log-compaction alarm: waits for any wake.
  alarm::AlarmSpec housekeeping = alarm::AlarmSpec::repeating(
      "chatapp.compact", alarm::AppId{1}, alarm::RepeatMode::kStatic,
      Duration::seconds(900), 0.5, 0.9);
  housekeeping.kind = alarm::AlarmKind::kNonWakeup;
  std::uint64_t compactions = 0;
  manager.register_alarm(housekeeping, TimePoint::origin() + Duration::seconds(900),
                         [&compactions](const alarm::Alarm&, TimePoint) {
                           ++compactions;
                           return alarm::TaskSpec{};
                         });

  // Mechanism 2: the push channel (external wakeups).
  gcm::GcmService gcmsvc(sim, device, wakelocks, manager, gcm::GcmConfig{}, &link);
  gcmsvc.connect();
  std::uint64_t chats = 0;
  gcmsvc.subscribe("chatapp.msg", [&chats](const gcm::PushMessage&) { ++chats; });
  gcm::PushServer server(
      sim, gcmsvc,
      {gcm::TopicTraffic{"chatapp.msg", Duration::seconds(420), 4096}}, Rng(7));
  server.start(horizon);

  sim.run_until(horizon);
  device.finalize(horizon);
  wakelocks.finalize(horizon);
  accountant.finalize(horizon);

  std::printf("3 h of connected standby for one messenger:\n");
  std::printf("  periodic syncs delivered: %llu\n",
              static_cast<unsigned long long>(manager.stats().deliveries -
                                              gcmsvc.heartbeats() - compactions));
  std::printf("  GCM heartbeats:           %llu\n",
              static_cast<unsigned long long>(gcmsvc.heartbeats()));
  std::printf("  chats pushed/received:    %llu/%llu\n",
              static_cast<unsigned long long>(server.sent()),
              static_cast<unsigned long long>(chats));
  std::printf("  housekeeping runs:        %llu (rode other wakeups)\n",
              static_cast<unsigned long long>(compactions));
  std::printf("  device wakeups:           %llu (%llu by RTC, %llu by push)\n",
              static_cast<unsigned long long>(device.wakeup_count()),
              static_cast<unsigned long long>(
                  device.wakeups_for(hw::WakeReason::kRtcAlarm)),
              static_cast<unsigned long long>(
                  device.wakeups_for(hw::WakeReason::kExternalPush)));
  std::printf("  total energy:             %s (avg %s)\n",
              accountant.breakdown().total().to_string().c_str(),
              accountant.average_power().to_string().c_str());
  return 0;
}
