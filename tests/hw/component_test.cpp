#include "hw/component.hpp"

#include <gtest/gtest.h>

namespace simty::hw {
namespace {

TEST(ComponentSet, EmptyByDefault) {
  ComponentSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(Component::kWifi));
  EXPECT_EQ(s.to_string(), "{}");
}

TEST(ComponentSet, InsertEraseContains) {
  ComponentSet s;
  s.insert(Component::kWifi);
  s.insert(Component::kWps);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(Component::kWifi));
  s.erase(Component::kWifi);
  EXPECT_FALSE(s.contains(Component::kWifi));
  EXPECT_TRUE(s.contains(Component::kWps));
  // Insert is idempotent.
  s.insert(Component::kWps);
  EXPECT_EQ(s.size(), 1u);
}

TEST(ComponentSet, SetAlgebra) {
  const ComponentSet a{Component::kWifi, Component::kWps};
  const ComponentSet b{Component::kWps, Component::kSpeaker};
  EXPECT_EQ(a | b,
            (ComponentSet{Component::kWifi, Component::kWps, Component::kSpeaker}));
  EXPECT_EQ(a & b, (ComponentSet{Component::kWps}));
  EXPECT_EQ(a - b, (ComponentSet{Component::kWifi}));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(ComponentSet{Component::kVibrator}));
  // Empty sets never intersect anything — the "low hardware similarity" case.
  EXPECT_FALSE(a.intersects(ComponentSet::none()));
  EXPECT_FALSE(ComponentSet::none().intersects(ComponentSet::none()));
}

TEST(ComponentSet, UnionCompoundAssign) {
  ComponentSet s{Component::kWifi};
  s |= ComponentSet{Component::kWps};
  EXPECT_EQ(s, (ComponentSet{Component::kWifi, Component::kWps}));
}

TEST(ComponentSet, PerceptibilityFollowsUserSenses) {
  // Paper §3.1.2: screen/speaker/vibrator are perceptible; radios/sensors not.
  EXPECT_TRUE(is_user_perceptible(Component::kScreen));
  EXPECT_TRUE(is_user_perceptible(Component::kSpeaker));
  EXPECT_TRUE(is_user_perceptible(Component::kVibrator));
  EXPECT_FALSE(is_user_perceptible(Component::kWifi));
  EXPECT_FALSE(is_user_perceptible(Component::kWps));
  EXPECT_FALSE(is_user_perceptible(Component::kGps));
  EXPECT_FALSE(is_user_perceptible(Component::kAccelerometer));
  EXPECT_FALSE(is_user_perceptible(Component::kCellular));

  EXPECT_TRUE((ComponentSet{Component::kWifi, Component::kVibrator}).any_perceptible());
  EXPECT_FALSE((ComponentSet{Component::kWifi, Component::kWps}).any_perceptible());
  EXPECT_FALSE(ComponentSet::none().any_perceptible());
}

TEST(ComponentSet, ComponentsInEnumOrder) {
  const ComponentSet s{Component::kVibrator, Component::kWifi};
  const auto cs = s.components();
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0], Component::kWifi);
  EXPECT_EQ(cs[1], Component::kVibrator);
}

TEST(ComponentSet, AllContainsEveryComponent) {
  const ComponentSet all = ComponentSet::all();
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kComponentCount));
  for (int i = 0; i < kComponentCount; ++i) {
    EXPECT_TRUE(all.contains(static_cast<Component>(i)));
  }
}

TEST(ComponentSet, Names) {
  EXPECT_STREQ(to_string(Component::kWifi), "wifi");
  EXPECT_STREQ(to_string(Component::kAccelerometer), "accelerometer");
  EXPECT_EQ((ComponentSet{Component::kWifi, Component::kWps}).to_string(),
            "{wifi,wps}");
}

}  // namespace
}  // namespace simty::hw
