#include "metrics/wakeup_breakdown.hpp"

#include <gtest/gtest.h>

#include "alarm/native_policy.hpp"
#include "support/framework_fixture.hpp"

namespace simty::metrics {
namespace {

using hw::Component;
using hw::ComponentSet;

TEST(WakeupAccounting, CountsDeliveriesPerComponent) {
  WakeupAccounting acc;
  alarm::DeliveryRecord r;
  r.hardware_used = ComponentSet{Component::kWifi};
  acc.observe(r);
  acc.observe(r);
  r.hardware_used = ComponentSet{Component::kWifi, Component::kWps};
  acc.observe(r);
  r.hardware_used = ComponentSet::none();
  acc.observe(r);
  EXPECT_EQ(acc.total_deliveries(), 4u);
  EXPECT_EQ(acc.deliveries_using(Component::kWifi), 3u);
  EXPECT_EQ(acc.deliveries_using(Component::kWps), 1u);
  EXPECT_EQ(acc.deliveries_using(Component::kAccelerometer), 0u);
}

TEST(BreakdownRow, RatioString) {
  EXPECT_EQ((BreakdownRow{"CPU", 733, 983}).ratio_string(), "733/983");
}

class WakeupBreakdownIntegration : public test::FrameworkFixture {};

TEST_F(WakeupBreakdownIntegration, RowsMatchDeviceAndWakelocks) {
  init(std::make_unique<alarm::NativePolicy>());
  WakeupAccounting acc;
  manager_->add_delivery_observer(acc.observer());

  // Two WPS alarms that align (one on-cycle, two deliveries) plus one
  // notification alarm far away (own wakeup). Windows are kept narrow
  // (alpha = 0.05 -> 180 s) so the 2000 s notification cannot join them.
  for (int i = 0; i < 2; ++i) {
    manager_->register_alarm(
        alarm::AlarmSpec::repeating("wps" + std::to_string(i), alarm::AppId{1},
                                    alarm::RepeatMode::kStatic,
                                    Duration::seconds(3600), 0.05, 0.96),
        at(100 + i * 60), task(ComponentSet{Component::kWps}, Duration::seconds(10)));
  }
  manager_->register_alarm(
      alarm::AlarmSpec::repeating("bell", alarm::AppId{2},
                                  alarm::RepeatMode::kStatic,
                                  Duration::seconds(3600), 0.0, 0.5),
      at(2000),
      task(ComponentSet{Component::kSpeaker, Component::kVibrator},
           Duration::seconds(1)));
  sim_.run_until(at(3000));

  const auto rows = acc.rows(*device_, *wakelocks_);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].hardware, "CPU");
  EXPECT_EQ(rows[0].actual, 2u);    // one aligned WPS wakeup + the bell
  EXPECT_EQ(rows[0].expected, 3u);  // three deliveries
  EXPECT_EQ(rows[1].hardware, "Speaker&Vibrator");
  EXPECT_EQ(rows[1].actual, 1u);
  EXPECT_EQ(rows[1].expected, 1u);
  EXPECT_EQ(rows[2].hardware, "Wi-Fi");
  EXPECT_EQ(rows[2].actual, 0u);
  EXPECT_EQ(rows[3].hardware, "WPS");
  EXPECT_EQ(rows[3].actual, 1u);    // piggybacked on one cycle
  EXPECT_EQ(rows[3].expected, 2u);
  EXPECT_EQ(rows[4].hardware, "Accelerometer");
}

}  // namespace
}  // namespace simty::metrics
