#pragma once
// Device CPU/platform state machine.
//
// Implements the "aggressive sleeping philosophy" (paper §2.1): the platform
// is asleep unless something explicitly wakes it, stays awake only while a
// CPU wakelock is held, and lingers briefly after the last lock drops before
// suspending again. Waking is not instantaneous — the RTC-interrupt-to-
// usable-CPU latency is what makes NATIVE deliver alpha = 0 alarms slightly
// late in the paper's Fig 4.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "hw/power_bus.hpp"
#include "hw/power_model.hpp"
#include "sim/simulator.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::hw {

/// Why the platform was asked to wake up.
enum class WakeReason : std::uint8_t {
  kRtcAlarm = 0,   // real-time-clock interrupt for a wakeup alarm
  kExternalPush,   // incoming network message (GCM-style)
  kUserButton,     // user pressed the power button
};

const char* to_string(WakeReason r);

/// The simulated smartphone platform (CPU + rails), minus the wakelockable
/// peripherals which live in WakelockManager.
class Device {
 public:
  /// `sim`, `bus` must outlive the device.
  Device(sim::Simulator& sim, const PowerModel& model, PowerBus& bus);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  DeviceState state() const { return state_; }
  const PowerModel& power_model() const { return model_; }

  /// Requests the platform awake and runs `on_ready` the moment the CPU is
  /// usable: immediately if already awake, after the wake latency if asleep.
  /// The callback runs with NO cpu wakelock held — acquire one inside it if
  /// work follows.
  void request_awake(WakeReason reason, std::function<void()> on_ready);

  /// CPU wakelock: the device cannot suspend while the count is positive.
  /// Must be awake to acquire. Release of the last lock arms the idle-linger
  /// timer; suspension happens when it expires un-renewed.
  void acquire_cpu_lock();
  void release_cpu_lock();
  int cpu_lock_count() const { return cpu_locks_; }

  /// Listener invoked every time the device completes a wake transition
  /// (used by the alarm manager to flush pending non-wakeup alarms).
  void add_wake_listener(std::function<void(WakeReason)> listener);

  // --- statistics -----------------------------------------------------
  /// Completed asleep->awake transitions.
  std::uint64_t wakeup_count() const { return wakeup_count_; }
  std::uint64_t wakeups_for(WakeReason r) const;
  /// Accumulated fully-awake time (excludes the waking transition).
  Duration total_awake_time() const;
  Duration total_asleep_time() const;

  /// Flushes state-duration accounting up to `now` (call at end of run).
  void finalize(TimePoint now);

  /// True when the device holds no transient state a snapshot cannot carry:
  /// asleep, no CPU locks, no queued wake requesters, no in-flight wake or
  /// suspend event. Checkpoints are only taken at such instants.
  bool quiescent() const {
    return state_ == DeviceState::kAsleep && cpu_locks_ == 0 &&
           pending_ready_.empty() && !wake_event_ && !sleep_event_;
  }

  /// Serializes the FSM scalars and statistics; requires quiescent().
  /// Wake listeners are wiring, not state — the restore-side constructor
  /// re-registers them before restore() is called.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  void enter_state(DeviceState next);
  void arm_sleep_timer();
  void disarm_sleep_timer();
  void complete_wake();

  sim::Simulator& sim_;
  PowerModel model_;
  PowerBus& bus_;

  DeviceState state_ = DeviceState::kAsleep;
  TimePoint state_since_ = TimePoint::origin();
  int cpu_locks_ = 0;

  // Callbacks queued while a wake transition is in flight.
  std::vector<std::pair<WakeReason, std::function<void()>>> pending_ready_;
  std::optional<sim::EventId> wake_event_;
  std::optional<sim::EventId> sleep_event_;

  std::vector<std::function<void(WakeReason)>> wake_listeners_;
  WakeReason current_wake_reason_ = WakeReason::kRtcAlarm;

  std::uint64_t wakeup_count_ = 0;
  std::array<std::uint64_t, 3> wakeups_by_reason_{};
  std::array<Duration, 3> time_in_state_{};
};

}  // namespace simty::hw
