// Ablation A11: the whole-day context the paper's introduction is built on
// (ref [9], SIGMETRICS'10): phones sit in standby ~89% of the time and
// standby burns ~46.3% of daily energy. Composes a sampled day of
// interactive sessions with measured standby power under each policy and
// reports the context statistics plus battery-life-in-days.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "hw/battery.hpp"
#include "usage/day_model.hpp"

using namespace simty;

int main() {
  usage::UsagePattern pattern;

  TextTable t("Daily context (heavy workload standby, sampled usage day, 3 seeds)");
  t.set_header({"Policy", "standby time share", "standby energy share",
                "daily energy (kJ)", "battery life (days)"});

  const hw::Battery pack = hw::Battery::nexus5();
  for (const exp::PolicyKind policy :
       {exp::PolicyKind::kNative, exp::PolicyKind::kSimty}) {
    double time_share = 0.0, energy_share = 0.0, daily_kj = 0.0, days = 0.0;
    const int reps = 3;
    for (int i = 0; i < reps; ++i) {
      exp::ExperimentConfig c;
      c.policy = policy;
      c.workload = exp::WorkloadKind::kHeavy;
      const usage::DayResult day =
          usage::simulate_day(c, pattern, static_cast<std::uint64_t>(i + 1));
      time_share += day.standby_time_share() / reps;
      energy_share += day.standby_energy_share() / reps;
      daily_kj += day.total_energy().joules_f() / 1000.0 / reps;
      days += day.battery_days(pack.capacity()) / reps;
    }
    t.add_row({to_string(policy), percent(time_share), percent(energy_share),
               str_format("%.1f", daily_kj), str_format("%.2f", days)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nPaper context (ref [9]): standby ~89%% of time, ~46.3%% of daily\n"
              "energy. SIMTY attacks exactly that standby share; interactive\n"
              "energy is untouched, so whole-day battery life improves by the\n"
              "standby share it saves.\n");
  return 0;
}
