#include "hw/device.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/power_bus.hpp"
#include "sim/simulator.hpp"

namespace simty::hw {
namespace {

struct StateRecord {
  TimePoint t;
  DeviceState state;
};

class RecordingListener : public PowerListener {
 public:
  void on_device_state(TimePoint t, DeviceState state, Power) override {
    states.push_back({t, state});
  }
  void on_impulse(TimePoint, Energy e, ImpulseKind kind, std::string_view) override {
    if (kind == ImpulseKind::kWakeTransition) wake_impulses += e.mj();
  }
  std::vector<StateRecord> states;
  double wake_impulses = 0.0;
};

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() : model_(PowerModel::nexus5()) {
    bus_.add_listener(&listener_);
    device_ = std::make_unique<Device>(sim_, model_, bus_);
  }
  sim::Simulator sim_;
  PowerModel model_;
  PowerBus bus_;
  RecordingListener listener_;
  std::unique_ptr<Device> device_;
};

TEST_F(DeviceTest, StartsAsleep) {
  EXPECT_EQ(device_->state(), DeviceState::kAsleep);
  ASSERT_FALSE(listener_.states.empty());
  EXPECT_EQ(listener_.states.front().state, DeviceState::kAsleep);
}

TEST_F(DeviceTest, WakeTakesWakeLatency) {
  TimePoint ready_at;
  sim_.schedule_at(TimePoint::origin() + Duration::seconds(10), [&] {
    device_->request_awake(WakeReason::kRtcAlarm, [&] { ready_at = sim_.now(); });
  });
  sim_.run_until(TimePoint::origin() + Duration::seconds(20));
  EXPECT_EQ(ready_at, TimePoint::origin() + Duration::seconds(10) + model_.wake_latency);
  EXPECT_EQ(device_->wakeup_count(), 1u);
  EXPECT_EQ(device_->wakeups_for(WakeReason::kRtcAlarm), 1u);
}

TEST_F(DeviceTest, WakePaysTransitionImpulseOnce) {
  sim_.schedule_at(TimePoint::origin() + Duration::seconds(1), [&] {
    device_->request_awake(WakeReason::kRtcAlarm, [] {});
    // A second request while waking coalesces — no second impulse.
    device_->request_awake(WakeReason::kExternalPush, [] {});
  });
  sim_.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_DOUBLE_EQ(listener_.wake_impulses, model_.wake_transition.mj());
  EXPECT_EQ(device_->wakeup_count(), 1u);
}

TEST_F(DeviceTest, SuspendsAfterIdleLingerWithoutLocks) {
  sim_.schedule_at(TimePoint::origin() + Duration::seconds(1), [&] {
    device_->request_awake(WakeReason::kRtcAlarm, [] {});
  });
  sim_.run_until(TimePoint::origin() + Duration::seconds(10));
  EXPECT_EQ(device_->state(), DeviceState::kAsleep);
  // Timeline: asleep -> waking -> awake -> asleep.
  ASSERT_EQ(listener_.states.size(), 4u);
  EXPECT_EQ(listener_.states[1].state, DeviceState::kWaking);
  EXPECT_EQ(listener_.states[2].state, DeviceState::kAwake);
  EXPECT_EQ(listener_.states[3].state, DeviceState::kAsleep);
  // Awake-to-asleep gap equals the idle linger.
  EXPECT_EQ(listener_.states[3].t - listener_.states[2].t, model_.idle_linger);
}

TEST_F(DeviceTest, CpuLockBlocksSuspend) {
  sim_.schedule_at(TimePoint::origin() + Duration::seconds(1), [&] {
    device_->request_awake(WakeReason::kRtcAlarm, [&] {
      device_->acquire_cpu_lock();
      sim_.schedule_after(Duration::seconds(5), [&] { device_->release_cpu_lock(); });
    });
  });
  sim_.run_until(TimePoint::origin() + Duration::seconds(4));
  EXPECT_EQ(device_->state(), DeviceState::kAwake);
  sim_.run_until(TimePoint::origin() + Duration::seconds(10));
  EXPECT_EQ(device_->state(), DeviceState::kAsleep);
}

TEST_F(DeviceTest, NestedLocksRequireAllReleases) {
  sim_.schedule_at(TimePoint::origin() + Duration::seconds(1), [&] {
    device_->request_awake(WakeReason::kRtcAlarm, [&] {
      device_->acquire_cpu_lock();
      device_->acquire_cpu_lock();
      sim_.schedule_after(Duration::seconds(2), [&] { device_->release_cpu_lock(); });
      sim_.schedule_after(Duration::seconds(6), [&] { device_->release_cpu_lock(); });
    });
  });
  sim_.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(device_->state(), DeviceState::kAwake);
  EXPECT_EQ(device_->cpu_lock_count(), 1);
  sim_.run_until(TimePoint::origin() + Duration::seconds(10));
  EXPECT_EQ(device_->state(), DeviceState::kAsleep);
}

TEST_F(DeviceTest, RequestWhileAwakeRunsImmediatelyWithoutNewWakeup) {
  int calls = 0;
  sim_.schedule_at(TimePoint::origin() + Duration::seconds(1), [&] {
    device_->request_awake(WakeReason::kRtcAlarm, [&] {
      ++calls;
      device_->request_awake(WakeReason::kExternalPush, [&] { ++calls; });
    });
  });
  sim_.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(device_->wakeup_count(), 1u);
  EXPECT_EQ(device_->state(), DeviceState::kAsleep);  // still suspends after
}

TEST_F(DeviceTest, WakeListenersFireOnTransitionCompletion) {
  std::vector<WakeReason> reasons;
  device_->add_wake_listener([&](WakeReason r) { reasons.push_back(r); });
  sim_.schedule_at(TimePoint::origin() + Duration::seconds(1), [&] {
    device_->request_awake(WakeReason::kUserButton, [] {});
  });
  sim_.run_until(TimePoint::origin() + Duration::seconds(5));
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], WakeReason::kUserButton);
}

TEST_F(DeviceTest, AcquireWhileAsleepThrows) {
  EXPECT_THROW(device_->acquire_cpu_lock(), std::logic_error);
}

TEST_F(DeviceTest, ReleaseWithoutAcquireThrows) {
  EXPECT_THROW(device_->release_cpu_lock(), std::logic_error);
}

TEST_F(DeviceTest, TimeAccountingSumsToHorizon) {
  sim_.schedule_at(TimePoint::origin() + Duration::seconds(2), [&] {
    device_->request_awake(WakeReason::kRtcAlarm, [&] {
      device_->acquire_cpu_lock();
      sim_.schedule_after(Duration::seconds(3), [&] { device_->release_cpu_lock(); });
    });
  });
  const TimePoint horizon = TimePoint::origin() + Duration::seconds(60);
  sim_.run_until(horizon);
  device_->finalize(horizon);
  const Duration total = device_->total_awake_time() + device_->total_asleep_time() +
                         model_.wake_latency;  // waking counted separately
  EXPECT_EQ(total, Duration::seconds(60));
  // Awake = 3 s task + idle linger.
  EXPECT_EQ(device_->total_awake_time(), Duration::seconds(3) + model_.idle_linger);
}

}  // namespace
}  // namespace simty::hw
