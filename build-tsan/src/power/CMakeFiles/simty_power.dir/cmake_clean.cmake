file(REMOVE_RECURSE
  "CMakeFiles/simty_power.dir/app_attribution.cpp.o"
  "CMakeFiles/simty_power.dir/app_attribution.cpp.o.d"
  "CMakeFiles/simty_power.dir/energy_accounting.cpp.o"
  "CMakeFiles/simty_power.dir/energy_accounting.cpp.o.d"
  "CMakeFiles/simty_power.dir/monitor.cpp.o"
  "CMakeFiles/simty_power.dir/monitor.cpp.o.d"
  "libsimty_power.a"
  "libsimty_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simty_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
