#pragma once
// ASCII table renderer for paper-style report output.
//
// Every bench binary prints the same rows the paper's tables/figures report;
// this renderer keeps that output aligned and diff-friendly.

#include <string>
#include <vector>

namespace simty {

/// Column-aligned ASCII table with an optional title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title = "");

  /// Sets the header row (cleared rows are unaffected).
  void set_header(std::vector<std::string> header);

  /// Appends a data row; rows may have differing cell counts.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator between the rows added before/after.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with single-space padding and `|` column separators.
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// CSV writer with RFC-4180 quoting, buffering rows in memory until save().
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Serializes header + rows; fields containing `,`, `"` or newlines are
  /// quoted and embedded quotes doubled.
  std::string to_string() const;

  /// Writes to a file; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace simty
