#include "fleet/aggregate.hpp"

#include "exp/experiment.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::fleet {

void MetricAggregate::save(snapshot::Writer& w) const {
  const OnlineStats::State s = stats_.state();
  w.u64(s.n);
  w.f64(s.mean);
  w.f64(s.m2);
  w.f64(s.min);
  w.f64(s.max);
  hist_.save(w);
}

void MetricAggregate::restore(snapshot::SectionReader& s) {
  OnlineStats::State st;
  st.n = s.u64();
  st.mean = s.f64();
  st.m2 = s.f64();
  st.min = s.f64();
  st.max = s.f64();
  stats_ = OnlineStats::from_state(st);
  hist_.restore(s);
}

void CohortAggregate::save(snapshot::Writer& w) const {
  w.str(cohort);
  w.u64(devices);
  energy_j.save(w);
  avg_power_mw.save(w);
  wakeups_per_hour.save(w);
  delay_norm.save(w);
}

void CohortAggregate::restore(snapshot::SectionReader& s) {
  cohort = s.str();
  devices = s.u64();
  energy_j.restore(s);
  avg_power_mw.restore(s);
  wakeups_per_hour.restore(s);
  delay_norm.restore(s);
}

DeviceMetrics device_metrics(const exp::RunResult& r) {
  DeviceMetrics m;
  m.energy_j = r.energy.total().joules_f();
  m.avg_power_mw = r.average_power_mw;
  const double hours = r.duration.seconds_f() / 3600.0;
  for (const exp::RunResult::HwCounts& w : r.wakeups) {
    if (w.hardware == "CPU" && hours > 0.0) {
      m.wakeups_per_hour = w.actual / hours;
      break;
    }
  }
  m.delay_norm = r.delay_imperceptible;
  return m;
}

}  // namespace simty::fleet
