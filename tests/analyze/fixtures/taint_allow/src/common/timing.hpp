#pragma once
// Innocent-looking helper: the wall-clock read hides in the .cpp.
namespace fx::common {
long now_ms();
}
