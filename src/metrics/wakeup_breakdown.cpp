#include "metrics/wakeup_breakdown.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::metrics {

std::string BreakdownRow::ratio_string() const {
  return str_format("%llu/%llu", static_cast<unsigned long long>(actual),
                    static_cast<unsigned long long>(expected));
}

void WakeupAccounting::observe(const alarm::DeliveryRecord& record) {
  ++total_deliveries_;
  for (const hw::Component c : record.hardware_used.components()) {
    ++per_component_[static_cast<std::size_t>(c)];
  }
}

alarm::DeliveryObserver WakeupAccounting::observer() {
  return [this](const alarm::DeliveryRecord& r) { observe(r); };
}

std::uint64_t WakeupAccounting::deliveries_using(hw::Component c) const {
  return per_component_[static_cast<std::size_t>(c)];
}

void WakeupAccounting::save(snapshot::Writer& w) const {
  w.u64(total_deliveries_);
  for (const std::uint64_t n : per_component_) w.u64(n);
}

void WakeupAccounting::restore(snapshot::SectionReader& s) {
  total_deliveries_ = s.u64();
  for (std::uint64_t& n : per_component_) n = s.u64();
}

std::vector<BreakdownRow> WakeupAccounting::rows(
    const hw::Device& device, const hw::WakelockManager& wakelocks) const {
  std::vector<BreakdownRow> out;
  out.push_back(BreakdownRow{"CPU", device.wakeup_count(), total_deliveries_});

  // The speaker and vibrator always fire together in the workloads (a
  // notification buzzes and rings), so Table 4 reports them as one row; we
  // take the larger cycle count in case an app ever uses only one of them.
  const std::uint64_t sv_cycles =
      std::max(wakelocks.usage(hw::Component::kSpeaker).cycles,
               wakelocks.usage(hw::Component::kVibrator).cycles);
  const std::uint64_t sv_expected =
      std::max(deliveries_using(hw::Component::kSpeaker),
               deliveries_using(hw::Component::kVibrator));
  out.push_back(BreakdownRow{"Speaker&Vibrator", sv_cycles, sv_expected});

  const struct {
    const char* name;
    hw::Component c;
  } kRows[] = {
      {"Wi-Fi", hw::Component::kWifi},
      {"WPS", hw::Component::kWps},
      {"Accelerometer", hw::Component::kAccelerometer},
  };
  for (const auto& r : kRows) {
    out.push_back(
        BreakdownRow{r.name, wakelocks.usage(r.c).cycles, deliveries_using(r.c)});
  }
  return out;
}

}  // namespace simty::metrics
