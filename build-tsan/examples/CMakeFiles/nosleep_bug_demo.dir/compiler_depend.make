# Empty compiler generated dependencies file for nosleep_bug_demo.
# This may be replaced when dependencies are built.
