#include "metrics/interval_audit.hpp"

#include <algorithm>

namespace simty::metrics {

double GapStats::min_gap_over_repeat() const {
  if (repeat.is_zero() || min_gap == Duration::max()) return 0.0;
  return min_gap.ratio(repeat);
}

double GapStats::max_gap_over_repeat() const {
  if (repeat.is_zero()) return 0.0;
  return max_gap.ratio(repeat);
}

void IntervalAudit::observe(const alarm::DeliveryRecord& record) {
  if (record.mode == alarm::RepeatMode::kOneShot) return;
  GapStats& s = stats_[record.id.value];
  if (s.deliveries == 0) {
    s.tag = record.tag;
    s.mode = record.mode;
    s.repeat = record.repeat_interval;
  }
  s.ever_perceptible = s.ever_perceptible || record.was_perceptible;
  s.last_perceptible = record.was_perceptible;
  ++s.deliveries;

  const auto last = last_delivery_.find(record.id.value);
  if (last != last_delivery_.end()) {
    const Duration gap = record.delivered - last->second;
    s.min_gap = std::min(s.min_gap, gap);
    s.max_gap = std::max(s.max_gap, gap);
  }
  last_delivery_[record.id.value] = record.delivered;
}

alarm::DeliveryObserver IntervalAudit::observer() {
  return [this](const alarm::DeliveryRecord& r) { observe(r); };
}

std::vector<GapViolation> IntervalAudit::check_bounds(double beta,
                                                      double slack) const {
  std::vector<GapViolation> out;
  for (const auto& [id, s] : stats_) {
    if (s.deliveries < 2) continue;
    // Upper bound: (1 + beta) * ReIn for both static and dynamic repeating
    // (§3.2.2). NATIVE only postpones within windows, so beta is a safe
    // over-approximation there too.
    const double upper = 1.0 + beta + slack;
    if (s.max_gap_over_repeat() > upper) {
      out.push_back(GapViolation{s.tag, true, s.max_gap_over_repeat(), upper});
    }
    // Lower bound: ReIn for dynamic, (1 - beta) * ReIn for static.
    const double lower =
        (s.mode == alarm::RepeatMode::kDynamic ? 1.0 : 1.0 - beta) - slack;
    if (s.min_gap_over_repeat() < lower) {
      out.push_back(GapViolation{s.tag, false, s.min_gap_over_repeat(), lower});
    }
  }
  return out;
}

double IntervalAudit::worst_gap_ratio() const {
  // Every alarm's FIRST delivery counts as perceptible (footnote 5:
  // hardware still unknown), so filter on the post-profiling
  // classification: an alarm whose last delivery was imperceptible.
  double worst = 0.0;
  for (const auto& [id, s] : stats_) {
    if (s.deliveries < 2 || s.last_perceptible) continue;
    worst = std::max(worst, s.max_gap_over_repeat());
  }
  return worst;
}

}  // namespace simty::metrics
