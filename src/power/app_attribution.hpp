#pragma once
// Per-app energy attribution ("energy stealing" accounting, after the
// ISLPED'15 study the paper builds on [5]).
//
// Android's batterystats-style estimate: each delivery session's costs are
// split among the alarms it served — the wake transition and CPU-base cost
// evenly, each component's activation evenly among its users, and its
// active-power cost proportional to each user's hold. The result is an
// *estimate* reconstructed from the power model (the real rail energy is
// not separable by app); reconcile() quantifies the gap against measured
// awake energy.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "alarm/alarm_manager.hpp"
#include "common/units.hpp"
#include "hw/power_model.hpp"

namespace simty::power {

/// One app's (or tag's) estimated share.
struct EnergyShare {
  std::string label;
  Energy energy;
  std::uint64_t deliveries = 0;
};

/// Session observer accumulating per-app and per-alarm-tag estimates.
class AppEnergyAttributor {
 public:
  explicit AppEnergyAttributor(hw::PowerModel model);

  void observe(const alarm::SessionRecord& session);
  alarm::SessionObserver observer();

  /// Estimated totals by app id, most expensive first.
  std::vector<EnergyShare> by_app() const;

  /// Estimated totals by alarm tag, most expensive first.
  std::vector<EnergyShare> by_tag() const;

  /// Sum of all attributed energy.
  Energy attributed_total() const { return total_; }

  /// Relative gap between the attributed total and a measured awake
  /// energy: |attributed - measured| / measured.
  double reconcile(Energy measured_awake) const;

 private:
  struct Bucket {
    Energy energy;
    std::uint64_t deliveries = 0;
  };

  hw::PowerModel model_;
  std::map<std::uint32_t, Bucket> by_app_;
  std::map<std::string, Bucket> by_tag_;
  Energy total_;
};

}  // namespace simty::power
