#include "common/time.hpp"

#include <gtest/gtest.h>

namespace simty {
namespace {

TEST(Duration, NamedConstructorsAgree) {
  EXPECT_EQ(Duration::millis(1).us(), 1000);
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
  EXPECT_EQ(Duration::minutes(2), Duration::seconds(120));
  EXPECT_EQ(Duration::hours(3), Duration::minutes(180));
}

TEST(Duration, FromSecondsRoundsToMicroseconds) {
  EXPECT_EQ(Duration::from_seconds(1.5), Duration::millis(1500));
  EXPECT_EQ(Duration::from_seconds(0.0000014).us(), 1);  // 1.4 µs -> 1 µs
  EXPECT_EQ(Duration::from_seconds(-2.25), -Duration::millis(2250));
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::seconds(10);
  const Duration b = Duration::seconds(4);
  EXPECT_EQ(a + b, Duration::seconds(14));
  EXPECT_EQ(a - b, Duration::seconds(6));
  EXPECT_EQ(-b, Duration::seconds(-4));
  EXPECT_EQ(a * 3, Duration::seconds(30));
  EXPECT_EQ(3 * a, Duration::seconds(30));
  EXPECT_EQ(a / 2, Duration::seconds(5));
}

TEST(Duration, FloatingScaleRounds) {
  EXPECT_EQ(Duration::seconds(60) * 0.75, Duration::seconds(45));
  EXPECT_EQ(0.96 * Duration::seconds(100), Duration::seconds(96));
  // 1 µs * 0.4 rounds to 0.
  EXPECT_EQ(Duration::micros(1) * 0.4, Duration::zero());
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::seconds(1);
  d += Duration::seconds(2);
  EXPECT_EQ(d, Duration::seconds(3));
  d -= Duration::millis(500);
  EXPECT_EQ(d, Duration::millis(2500));
}

TEST(Duration, Ratio) {
  EXPECT_DOUBLE_EQ(Duration::seconds(3).ratio(Duration::seconds(4)), 0.75);
  EXPECT_THROW(Duration::seconds(1).ratio(Duration::zero()), std::invalid_argument);
}

TEST(Duration, Predicates) {
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_FALSE(Duration::zero().is_negative());
  EXPECT_TRUE((-Duration::millis(1)).is_negative());
}

TEST(Duration, Ordering) {
  EXPECT_LT(Duration::millis(999), Duration::seconds(1));
  EXPECT_GT(Duration::hours(1), Duration::minutes(59));
}

TEST(Duration, ToStringPicksNaturalUnit) {
  EXPECT_EQ(Duration::hours(3).to_string(), "3h");
  EXPECT_EQ(Duration::seconds(90).to_string(), "90s");
  EXPECT_EQ(Duration::millis(180).to_string(), "180ms");
  EXPECT_EQ(Duration::micros(7).to_string(), "7us");
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t = TimePoint::origin() + Duration::seconds(100);
  EXPECT_EQ(t.us(), 100'000'000);
  EXPECT_EQ(t - Duration::seconds(40), TimePoint::from_us(60'000'000));
  EXPECT_EQ(t - TimePoint::origin(), Duration::seconds(100));
}

TEST(TimePoint, Ordering) {
  EXPECT_LT(TimePoint::origin(), TimePoint::from_us(1));
  EXPECT_EQ(TimePoint::from_us(5), TimePoint::origin() + Duration::micros(5));
}

TEST(TimePoint, SecondsView) {
  EXPECT_DOUBLE_EQ((TimePoint::origin() + Duration::millis(1500)).seconds_f(), 1.5);
}

}  // namespace
}  // namespace simty
