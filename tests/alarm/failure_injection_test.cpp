// Failure injection: app delivery handlers that throw, fail sporadically,
// or misbehave structurally. The framework must isolate the failure —
// other batch members deliver, schedules continue, invariants hold, and
// the damage is visible in stats.

#include <gtest/gtest.h>

#include <stdexcept>

#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "support/framework_fixture.hpp"

namespace simty::alarm {
namespace {

using hw::Component;
using hw::ComponentSet;

class FailureInjectionTest : public test::FrameworkFixture {
 protected:
  void SetUp() override {
    Logger::instance().set_level(LogLevel::kOff);  // silence expected warns
  }
  void TearDown() override { Logger::instance().set_level(LogLevel::kWarn); }
};

TEST_F(FailureInjectionTest, ThrowingHandlerDoesNotBreakBatchMates) {
  init(std::make_unique<NativePolicy>());
  const AlarmId bad = manager_->register_alarm(
      AlarmSpec::repeating("crashy", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(100), [](const Alarm&, TimePoint) -> TaskSpec {
        throw std::runtime_error("app crashed in onReceive");
      });
  const AlarmId good = manager_->register_alarm(
      AlarmSpec::repeating("healthy", AppId{2}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(200), task(ComponentSet{Component::kWifi}, Duration::seconds(2)));
  // Same entry (overlapping windows).
  ASSERT_EQ(manager_->queue(AlarmKind::kWakeup).size(), 1u);

  sim_.run_until(at(400));
  // Both "delivered"; the healthy one ran its task.
  EXPECT_EQ(deliveries_of(bad).size(), 1u);
  EXPECT_EQ(deliveries_of(good).size(), 1u);
  EXPECT_EQ(manager_->stats().handler_failures, 1u);
  EXPECT_EQ(wakelocks_->usage(Component::kWifi).cycles, 1u);
  EXPECT_TRUE(manager_->check_invariants().empty());
  // The crashy alarm keeps its schedule (delivered again next interval).
  sim_.run_until(at(1000));
  EXPECT_EQ(deliveries_of(bad).size(), 2u);
  EXPECT_EQ(manager_->stats().handler_failures, 2u);
}

TEST_F(FailureInjectionTest, FailedHandlerDegradesToEmptyTask) {
  init(std::make_unique<SimtyPolicy>());
  const AlarmId bad = manager_->register_alarm(
      AlarmSpec::repeating("crashy", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.5, 0.9),
      at(100), [](const Alarm&, TimePoint) -> TaskSpec {
        throw std::logic_error("boom");
      });
  sim_.run_until(at(300));
  const auto recs = deliveries_of(bad);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].hardware_used.empty());
  EXPECT_EQ(recs[0].hold, Duration::zero());
  // The learned profile is the empty set: the alarm becomes imperceptible.
  EXPECT_FALSE(manager_->find(bad)->perceptible());
  // Device slept again despite the failure.
  EXPECT_EQ(device_->state(), hw::DeviceState::kAsleep);
}

TEST_F(FailureInjectionTest, SporadicFailuresUnderLoadKeepGuarantees) {
  init(std::make_unique<SimtyPolicy>());
  // Ten alarms whose handlers fail 30% of the time.
  auto flaky_rng = std::make_shared<Rng>(77);
  for (int i = 0; i < 10; ++i) {
    manager_->register_alarm(
        AlarmSpec::repeating("flaky" + std::to_string(i), AppId{1},
                             RepeatMode::kStatic,
                             Duration::seconds(120 + 60 * (i % 4)), 0.5, 0.9),
        at(60 + 13 * i), [flaky_rng](const Alarm&, TimePoint) -> TaskSpec {
          if (flaky_rng->chance(0.3)) throw std::runtime_error("flaky");
          return TaskSpec{ComponentSet{Component::kWifi}, Duration::seconds(1)};
        });
  }
  sim_.run_until(at(3600));
  EXPECT_GT(manager_->stats().handler_failures, 20u);
  EXPECT_GT(manager_->stats().deliveries, 100u);
  EXPECT_TRUE(manager_->check_invariants().empty());
  for (const auto& r : deliveries_) {
    EXPECT_GE(r.delivered, r.nominal) << r.tag;
    if (!r.was_perceptible) {
      EXPECT_LE(r.delivered, r.nominal + r.repeat_interval * 0.9 + model_.wake_latency)
          << r.tag;
    }
  }
}

TEST_F(FailureInjectionTest, HandlerRegisteringDuringDeliveryIsSafe) {
  // A handler that registers ANOTHER alarm mid-delivery (reentrancy).
  init(std::make_unique<NativePolicy>());
  std::uint64_t spawned_deliveries = 0;
  manager_->register_alarm(
      AlarmSpec::repeating("spawner", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.5, 0.9),
      at(100), [&](const Alarm&, TimePoint now) {
        manager_->register_alarm(
            AlarmSpec::one_shot("spawned" + std::to_string(now.us()), AppId{2},
                                Duration::seconds(10)),
            now + Duration::seconds(30),
            [&](const Alarm&, TimePoint) {
              ++spawned_deliveries;
              return TaskSpec{};
            });
        return TaskSpec{};
      });
  sim_.run_until(at(2000));
  EXPECT_GE(spawned_deliveries, 3u);
  EXPECT_TRUE(manager_->check_invariants().empty());
}

TEST_F(FailureInjectionTest, HandlerCancellingItselfOneShotStyle) {
  // A repeating alarm whose handler cancels a DIFFERENT alarm during
  // delivery — the queue mutation must not corrupt the in-flight batch.
  init(std::make_unique<NativePolicy>());
  const AlarmId victim = manager_->register_alarm(
      AlarmSpec::repeating("victim", AppId{2}, RepeatMode::kStatic,
                           Duration::seconds(900), 0.1, 0.9),
      at(2000), noop_task());
  manager_->register_alarm(
      AlarmSpec::repeating("assassin", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.5, 0.9),
      at(100), [&](const Alarm&, TimePoint) {
        if (manager_->is_registered(victim)) manager_->cancel(victim);
        return TaskSpec{};
      });
  sim_.run_until(at(3600));
  EXPECT_FALSE(manager_->is_registered(victim));
  EXPECT_TRUE(deliveries_of(victim).empty());
  EXPECT_TRUE(manager_->check_invariants().empty());
}

}  // namespace
}  // namespace simty::alarm
