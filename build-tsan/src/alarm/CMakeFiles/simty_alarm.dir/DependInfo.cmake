
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alarm/alarm.cpp" "src/alarm/CMakeFiles/simty_alarm.dir/alarm.cpp.o" "gcc" "src/alarm/CMakeFiles/simty_alarm.dir/alarm.cpp.o.d"
  "/root/repo/src/alarm/alarm_manager.cpp" "src/alarm/CMakeFiles/simty_alarm.dir/alarm_manager.cpp.o" "gcc" "src/alarm/CMakeFiles/simty_alarm.dir/alarm_manager.cpp.o.d"
  "/root/repo/src/alarm/batch.cpp" "src/alarm/CMakeFiles/simty_alarm.dir/batch.cpp.o" "gcc" "src/alarm/CMakeFiles/simty_alarm.dir/batch.cpp.o.d"
  "/root/repo/src/alarm/doze.cpp" "src/alarm/CMakeFiles/simty_alarm.dir/doze.cpp.o" "gcc" "src/alarm/CMakeFiles/simty_alarm.dir/doze.cpp.o.d"
  "/root/repo/src/alarm/duration_policy.cpp" "src/alarm/CMakeFiles/simty_alarm.dir/duration_policy.cpp.o" "gcc" "src/alarm/CMakeFiles/simty_alarm.dir/duration_policy.cpp.o.d"
  "/root/repo/src/alarm/fixed_interval_policy.cpp" "src/alarm/CMakeFiles/simty_alarm.dir/fixed_interval_policy.cpp.o" "gcc" "src/alarm/CMakeFiles/simty_alarm.dir/fixed_interval_policy.cpp.o.d"
  "/root/repo/src/alarm/native_policy.cpp" "src/alarm/CMakeFiles/simty_alarm.dir/native_policy.cpp.o" "gcc" "src/alarm/CMakeFiles/simty_alarm.dir/native_policy.cpp.o.d"
  "/root/repo/src/alarm/similarity.cpp" "src/alarm/CMakeFiles/simty_alarm.dir/similarity.cpp.o" "gcc" "src/alarm/CMakeFiles/simty_alarm.dir/similarity.cpp.o.d"
  "/root/repo/src/alarm/simty_policy.cpp" "src/alarm/CMakeFiles/simty_alarm.dir/simty_policy.cpp.o" "gcc" "src/alarm/CMakeFiles/simty_alarm.dir/simty_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/simty_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/simty_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hw/CMakeFiles/simty_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
