#pragma once
// Energy attribution: integrates the power bus into the categories the
// paper's Fig 3 reports — the sleep floor that alignment cannot touch vs
// the awake energy it can, plus per-component and per-impulse breakdowns.

#include <array>

#include "common/time.hpp"
#include "common/units.hpp"
#include "hw/component.hpp"
#include "hw/power_bus.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::power {

/// Per-category integrated energy. "Awake" aggregates everything except the
/// sleep floor: wake transitions, the waking ramp, the awake base rail, and
/// all component activity.
struct EnergyBreakdown {
  Energy sleep;              // device base rail while asleep
  Energy waking;             // device base rail during wake transitions
  Energy awake_base;         // device base rail while awake
  Energy wake_transitions;   // impulse: wake transition costs
  Energy component_active;   // all component rails while powered
  Energy component_activation;  // impulse: component power-up costs
  std::array<Energy, hw::kComponentCount> per_component{};  // active+activation

  /// Everything the device spends while not asleep.
  Energy awake_total() const;

  /// Grand total.
  Energy total() const;
};

/// PowerListener that attributes every millijoule to a category.
class EnergyAccountant : public hw::PowerListener {
 public:
  EnergyAccountant() = default;

  void on_device_state(TimePoint t, hw::DeviceState state, Power base_level) override;
  void on_component_power(TimePoint t, hw::Component c, bool on, Power level) override;
  void on_impulse(TimePoint t, Energy e, hw::ImpulseKind kind,
                  std::string_view tag) override;

  /// Flushes open integrations up to `now`; call once at end of run before
  /// reading the breakdown.
  void finalize(TimePoint now);

  const EnergyBreakdown& breakdown() const { return breakdown_; }

  /// Average power over [origin, finalize time]; finalize() must have run.
  Power average_power() const;

  /// Serializes the breakdown and all open integration state (device rail,
  /// component rails). Restoring overwrites whatever ctor-time bus
  /// publishes already accumulated on the fresh stack.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  void accumulate_device(TimePoint until);
  void accumulate_component(std::size_t idx, TimePoint until);

  EnergyBreakdown breakdown_;
  hw::DeviceState device_state_ = hw::DeviceState::kAsleep;
  Power device_level_ = Power::zero();
  TimePoint device_since_;
  bool device_seen_ = false;

  struct ComponentRail {
    bool on = false;
    Power level = Power::zero();
    TimePoint since;
  };
  std::array<ComponentRail, hw::kComponentCount> rails_{};
  TimePoint finalized_at_;
  bool finalized_ = false;
};

}  // namespace simty::power
