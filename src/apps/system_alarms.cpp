#include "apps/system_alarms.hpp"

#include <algorithm>

namespace simty::apps {

SystemAlarmSource::SystemAlarmSource(sim::Simulator& sim,
                                     alarm::AlarmManager& manager,
                                     SystemAlarmConfig config, Rng rng)
    : sim_(sim), manager_(manager), config_(config), rng_(rng) {}

void SystemAlarmSource::start(TimePoint horizon) {
  horizon_ = horizon;
  const TimePoint now = sim_.now();

  if (config_.periodic_services) {
    // Representative Android services; CPU-only (no extra wakelocks), so
    // they become imperceptible once profiled and align freely.
    struct Service {
      const char* tag;
      std::int64_t repeat_s;
    };
    constexpr Service kServices[] = {
        {"android.netstats.poll", 600},
        {"android.batterystats", 900},
        {"android.time_sync", 1200},
        {"android.sync.heartbeat", 300},
        {"android.job.heartbeat", 240},
        {"android.dhcp.renew", 420},
        {"android.backup", 1800},
    };
    const double grace = std::max(config_.beta, 0.75);
    for (const Service& s : kServices) {
      manager_.register_alarm(
          alarm::AlarmSpec::repeating(s.tag, kSystemApp, alarm::RepeatMode::kStatic,
                                      Duration::seconds(s.repeat_s), 0.75, grace),
          now + Duration::seconds(s.repeat_s),
          [](const alarm::Alarm&, TimePoint) { return alarm::TaskSpec{}; });
    }
  }

  if (config_.one_shot_mean > Duration::zero()) spawn_next_one_shot();
}

void SystemAlarmSource::spawn_next_one_shot() {
  const Duration gap =
      Duration::from_seconds(rng_.exponential(config_.one_shot_mean.seconds_f()));
  const TimePoint when = sim_.now() + std::max(gap, Duration::seconds(1));
  if (when >= horizon_) return;
  sim_.schedule_at(
      when,
      [this] {
        ++one_shot_seq_;
        manager_.register_alarm(
            alarm::AlarmSpec::one_shot("system.oneshot." + std::to_string(one_shot_seq_),
                                       kSystemApp, config_.one_shot_window),
            sim_.now() + Duration::seconds(1),
            [this](const alarm::Alarm&, TimePoint) {
              ++one_shots_fired_;
              return alarm::TaskSpec{};
            });
        spawn_next_one_shot();
      },
      sim::EventPriority::kApp, "system-one-shot-spawn");
}

}  // namespace simty::apps
