file(REMOVE_RECURSE
  "libsimty_cli.a"
)
