#pragma once
// Umbrella header: the full public API of the SIMTY reproduction.
//
// For selective builds include the per-module headers directly; this
// header exists for quick experiments and downstream prototypes. Every
// include is a deliberate re-export, so the unused-include advisory is off:
// simty-analyze: allow-file(include)

// Foundations
#include "common/check.hpp"       // IWYU pragma: export
#include "common/interval.hpp"    // IWYU pragma: export
#include "common/logging.hpp"     // IWYU pragma: export
#include "common/rng.hpp"         // IWYU pragma: export
#include "common/stats.hpp"       // IWYU pragma: export
#include "common/strings.hpp"     // IWYU pragma: export
#include "common/table.hpp"       // IWYU pragma: export
#include "common/time.hpp"        // IWYU pragma: export
#include "common/units.hpp"       // IWYU pragma: export

// Discrete-event core
#include "sim/event_queue.hpp"    // IWYU pragma: export
#include "sim/simulator.hpp"      // IWYU pragma: export

// The simulated smartphone
#include "hw/battery.hpp"         // IWYU pragma: export
#include "hw/component.hpp"       // IWYU pragma: export
#include "hw/device.hpp"          // IWYU pragma: export
#include "hw/device_spec.hpp"     // IWYU pragma: export
#include "hw/guardian.hpp"        // IWYU pragma: export
#include "hw/power_bus.hpp"       // IWYU pragma: export
#include "hw/power_model.hpp"     // IWYU pragma: export
#include "hw/rtc.hpp"             // IWYU pragma: export
#include "hw/wakelock.hpp"        // IWYU pragma: export

// Network substrates
#include "net/cellular.hpp"       // IWYU pragma: export
#include "net/rrc.hpp"            // IWYU pragma: export
#include "net/wifi_link.hpp"      // IWYU pragma: export

// Wakeup management (the paper's contribution)
#include "alarm/alarm.hpp"                 // IWYU pragma: export
#include "alarm/alarm_manager.hpp"         // IWYU pragma: export
#include "alarm/batch.hpp"                 // IWYU pragma: export
#include "alarm/doze.hpp"                  // IWYU pragma: export
#include "alarm/duration_policy.hpp"       // IWYU pragma: export
#include "alarm/exact_policy.hpp"          // IWYU pragma: export
#include "alarm/fixed_interval_policy.hpp" // IWYU pragma: export
#include "alarm/native_policy.hpp"         // IWYU pragma: export
#include "alarm/policy.hpp"                // IWYU pragma: export
#include "alarm/similarity.hpp"            // IWYU pragma: export
#include "alarm/simty_policy.hpp"          // IWYU pragma: export

// Push channel
#include "gcm/gcm_service.hpp"    // IWYU pragma: export

// Measurement
#include "power/app_attribution.hpp"   // IWYU pragma: export
#include "power/energy_accounting.hpp" // IWYU pragma: export
#include "power/monitor.hpp"           // IWYU pragma: export

// Workloads & traces
#include "apps/app.hpp"            // IWYU pragma: export
#include "apps/app_catalog.hpp"    // IWYU pragma: export
#include "apps/external_events.hpp"// IWYU pragma: export
#include "apps/system_alarms.hpp"  // IWYU pragma: export
#include "apps/trace_replay.hpp"   // IWYU pragma: export
#include "apps/workload.hpp"       // IWYU pragma: export
#include "trace/delivery_log.hpp"  // IWYU pragma: export
#include "trace/tracer.hpp"        // IWYU pragma: export

// Metrics & experiments
#include "exp/adaptive.hpp"           // IWYU pragma: export
#include "exp/experiment.hpp"         // IWYU pragma: export
#include "exp/reporting.hpp"          // IWYU pragma: export
#include "metrics/delay_stats.hpp"    // IWYU pragma: export
#include "metrics/histogram.hpp"      // IWYU pragma: export
#include "metrics/interval_audit.hpp" // IWYU pragma: export
#include "metrics/wakeup_breakdown.hpp" // IWYU pragma: export
#include "usage/day_model.hpp"        // IWYU pragma: export
#include "usage/interactive.hpp"      // IWYU pragma: export
