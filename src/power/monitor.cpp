#include "power/monitor.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace simty::power {

void PowerMonitor::on_device_state(TimePoint t, hw::DeviceState, Power base_level) {
  device_level_ = base_level;
  record_level(t);
}

void PowerMonitor::on_component_power(TimePoint t, hw::Component c, bool on,
                                      Power level) {
  component_levels_[static_cast<std::size_t>(c)] = on ? level : Power::zero();
  record_level(t);
}

void PowerMonitor::on_impulse(TimePoint t, Energy e, hw::ImpulseKind, std::string_view) {
  impulses_.push_back({t, e});
}

void PowerMonitor::record_level(TimePoint t) {
  Power total = device_level_;
  for (const Power p : component_levels_) total += p;
  if (!waveform_.empty() && waveform_.back().t == t) {
    waveform_.back().level = total;  // coalesce same-instant changes
    return;
  }
  if (!waveform_.empty() && waveform_.back().level == total) return;
  waveform_.push_back({t, total});
}

void PowerMonitor::finalize(TimePoint now) {
  end_ = now;
  finalized_ = true;
}

Energy PowerMonitor::total_energy() const {
  SIMTY_CHECK_MSG(finalized_, "total_energy requires finalize()");
  Energy total = Energy::zero();
  for (std::size_t i = 0; i < waveform_.size(); ++i) {
    const TimePoint stop = i + 1 < waveform_.size() ? waveform_[i + 1].t : end_;
    if (stop > waveform_[i].t) total += waveform_[i].level * (stop - waveform_[i].t);
  }
  for (const Impulse& imp : impulses_) total += imp.e;
  return total;
}

Energy PowerMonitor::sampled_energy(double rate_hz) const {
  SIMTY_CHECK_MSG(finalized_, "sampled_energy requires finalize()");
  SIMTY_CHECK_MSG(rate_hz > 0.0, "sampling rate must be positive");
  if (waveform_.empty()) return Energy::zero();

  const Duration period = Duration::from_seconds(1.0 / rate_hz);
  SIMTY_CHECK_MSG(!period.is_zero(), "sampling rate too high for µs resolution");

  Energy total = Energy::zero();
  std::size_t idx = 0;
  for (TimePoint t = waveform_.front().t; t < end_; t += period) {
    while (idx + 1 < waveform_.size() && waveform_[idx + 1].t <= t) ++idx;
    const TimePoint stop = std::min(t + period, end_);
    total += waveform_[idx].level * (stop - t);
  }
  for (const Impulse& imp : impulses_) total += imp.e;
  return total;
}

Power PowerMonitor::average_power() const {
  SIMTY_CHECK_MSG(finalized_, "average_power requires finalize()");
  if (waveform_.empty()) return Power::zero();
  const Duration span = end_ - waveform_.front().t;
  SIMTY_CHECK_MSG(span > Duration::zero(), "average_power over empty span");
  return Power::milliwatts(total_energy().mj() / span.seconds_f());
}

std::string PowerMonitor::waveform_csv(std::size_t max_rows) const {
  std::string out = "t_s,power_mw\n";
  const std::size_t n = waveform_.size();
  if (n == 0) return out;
  const std::size_t stride =
      (max_rows > 0 && n > max_rows) ? (n + max_rows - 1) / max_rows : 1;
  char buf[64];
  for (std::size_t i = 0; i < n; i += stride) {
    // Always keep the final step.
    const std::size_t idx = (i + stride >= n) ? n - 1 : i;
    std::snprintf(buf, sizeof buf, "%.6f,%.3f\n", waveform_[idx].t.seconds_f(),
                  waveform_[idx].level.mw());
    out += buf;
    if (idx == n - 1) break;
  }
  return out;
}

Power PowerMonitor::peak_power() const {
  Power peak = Power::zero();
  for (const PowerSample& s : waveform_) peak = std::max(peak, s.level);
  return peak;
}

}  // namespace simty::power
