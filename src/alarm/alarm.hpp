#pragma once
// Alarm records: the unit of wakeup management.
//
// Mirrors the Android 4.4 AlarmManager attributes the paper builds on
// (§2.1): a nominal delivery time, a window interval enabling inexact
// delivery, a repeating interval (zero for one-shot), static vs dynamic
// repeating, and wakeup vs non-wakeup kinds. SIMTY adds the grace interval
// (§3.1.2) and a hardware set learned at first delivery (footnote 4).

#include <cstdint>
#include <memory>
#include <string>

#include "common/interval.hpp"
#include "common/time.hpp"
#include "hw/component.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::alarm {

/// Stable identity of a registered alarm across re-insertions ("the same
/// alarm" in the paper's realignment rule).
struct AlarmId {
  std::uint64_t value = 0;
  bool operator==(const AlarmId&) const = default;
  auto operator<=>(const AlarmId&) const = default;
};

/// Identifies the registering app (for traces and reports).
struct AppId {
  std::uint32_t value = 0;
  bool operator==(const AppId&) const = default;
  auto operator<=>(const AppId&) const = default;
};

/// Wakeup alarms wake the platform via the RTC; non-wakeup alarms wait for
/// the device to be awake for any other reason (§2.1).
enum class AlarmKind : std::uint8_t { kWakeup = 0, kNonWakeup };

/// One-shot, fixed-grid repeating, or delivery-anchored repeating (§2.1).
enum class RepeatMode : std::uint8_t { kOneShot = 0, kStatic, kDynamic };

const char* to_string(AlarmKind k);
const char* to_string(RepeatMode m);

/// Registration-time attributes of an alarm.
struct AlarmSpec {
  std::string tag;                     // app-chosen label, e.g. "line.sync"
  AppId app;
  AlarmKind kind = AlarmKind::kWakeup;
  RepeatMode mode = RepeatMode::kOneShot;
  Duration repeat_interval = Duration::zero();  // 0 iff one-shot
  Duration window_length = Duration::zero();    // alpha * repeat for repeating
  Duration grace_length = Duration::zero();     // beta * repeat; >= window

  /// Builds a repeating spec from the paper's (ReIn, alpha, beta) attributes.
  static AlarmSpec repeating(std::string tag, AppId app, RepeatMode mode,
                             Duration repeat, double alpha, double beta);

  /// Builds a one-shot spec with an explicit window.
  static AlarmSpec one_shot(std::string tag, AppId app, Duration window);

  /// Throws std::logic_error when the invariants of §3.1.2 are violated
  /// (negative lengths, grace < window, repeating grace >= repeat, ...).
  void validate() const;
};

/// A registered alarm instance owned by the alarm manager. `nominal` moves
/// forward on every re-insertion; the hardware profile is learned at first
/// delivery.
class Alarm {
 public:
  Alarm(AlarmId id, AlarmSpec spec, TimePoint nominal);

  AlarmId id() const { return id_; }
  const AlarmSpec& spec() const { return spec_; }
  TimePoint nominal() const { return nominal_; }

  /// [nominal, nominal + window]: the developer-acceptable delivery range.
  TimeInterval window_interval() const;

  /// [nominal, nominal + grace]: how far SIMTY may postpone an
  /// imperceptible delivery (== window for perceptible/one-shot alarms).
  TimeInterval grace_interval() const;

  /// Hardware learned from deliveries so far; empty until known.
  hw::ComponentSet hardware() const { return hardware_; }
  bool hardware_known() const { return hardware_known_; }

  /// Expected wakelock hold (running average of observed holds); zero until
  /// known. Consumed by the duration-similarity policy extension (§5).
  Duration expected_hold() const { return expected_hold_; }

  /// Perceptibility per §3.1.2 + footnote 5: one-shot alarms and alarms
  /// whose hardware set is still unknown are perceptible by definition;
  /// otherwise an alarm is perceptible iff it wakelocks a user-perceptible
  /// component. Precomputed — perceptibility only changes when a delivery
  /// is recorded, never on reschedule, so policy scans read a cached flag.
  bool perceptible() const { return perceptible_; }

  std::uint64_t delivery_count() const { return delivery_count_; }

  /// Moves the nominal time for the next instance (reinsertion).
  void reschedule(TimePoint nominal);

  /// Replaces the grace interval length (the warm-start β lever), validated
  /// against the same §3.1.2 invariants as registration. The owner must
  /// rebatch afterwards — queued entries cache the old interval.
  void set_grace_length(Duration grace);

  /// Serializes spec + learned state into the current section; restore()
  /// rebuilds an equivalent alarm (same id, spec, nominal, and profile).
  void save(snapshot::Writer& w) const;
  static std::unique_ptr<Alarm> restore(snapshot::SectionReader& s);

  /// Records a completed delivery and its observed hardware usage
  /// (footnote 4: the hardware set is specified immediately after
  /// delivery, not at registration).
  void record_delivery(hw::ComponentSet used, Duration hold);

  std::string to_string() const;

 private:
  void update_perceptibility();

  AlarmId id_;
  AlarmSpec spec_;
  TimePoint nominal_;
  hw::ComponentSet hardware_;
  bool hardware_known_ = false;
  bool perceptible_ = true;
  Duration expected_hold_ = Duration::zero();
  std::uint64_t delivery_count_ = 0;
};

}  // namespace simty::alarm
