#include "common/timing.hpp"
#include <chrono>
namespace fx::common {
long now_ms() {
  // Feeds a report timestamp only, never simulation state.
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now()  // simty-analyze: allow(taint)
                 .time_since_epoch())
      .count();
}
}
