# Empty dependencies file for simty_power.
# This may be replaced when dependencies are built.
