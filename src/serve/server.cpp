#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "snapshot/snapshot.hpp"

namespace simty::serve {

namespace {

/// Reads exactly n bytes; returns the count read before EOF (short only at
/// EOF; throws on errors). Retries EINTR.
std::size_t read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) return got;
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: read failed: ") +
                               std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void write_all(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that closed its end must surface as EPIPE (a
    // per-connection runtime_error the serve loop absorbs), not as a
    // process-killing SIGPIPE.
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: write failed: ") +
                               std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

std::string encode_error(const std::string& message) {
  snapshot::Writer w;
  w.begin_section("simty-error", kProtocolVersion);
  w.str(message);
  w.end_section();
  return w.finish();
}

}  // namespace

bool recv_frame(int fd, std::string& out) {
  unsigned char header[4];
  const std::size_t got =
      read_exact(fd, reinterpret_cast<char*>(header), sizeof(header));
  if (got == 0) return false;  // orderly close between frames
  if (got < sizeof(header)) {
    throw std::runtime_error("serve: truncated frame header");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            static_cast<std::uint32_t>(header[1]) << 8 |
                            static_cast<std::uint32_t>(header[2]) << 16 |
                            static_cast<std::uint32_t>(header[3]) << 24;
  // Bounds-check BEFORE the resize: a forged header must not size a
  // multi-gigabyte allocation.
  if (len > kMaxFrameBytes) {
    throw std::runtime_error("serve: frame length " + std::to_string(len) +
                             " exceeds limit");
  }
  out.resize(len);
  if (read_exact(fd, out.data(), len) < len) {
    throw std::runtime_error("serve: truncated frame body");
  }
  return true;
}

void send_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("serve: refusing to send oversized frame");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff)};
  write_all(fd, reinterpret_cast<const char*>(header), sizeof(header));
  write_all(fd, payload.data(), payload.size());
}

std::string encode_shutdown() {
  snapshot::Writer w;
  w.begin_section("simty-shutdown", kProtocolVersion);
  w.end_section();
  return w.finish();
}

bool is_shutdown_frame(const std::string& bytes) {
  try {
    return snapshot::Reader(bytes).has_section("simty-shutdown");
  } catch (const std::logic_error&) {
    return false;
  }
}

Server::Server(std::string socket_path, ServeCore& core)
    : socket_path_(std::move(socket_path)), core_(core) {
  const sockaddr_un addr = make_addr(socket_path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket failed: ") +
                             std::strerror(errno));
  }
  ::unlink(socket_path_.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 8) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on " + socket_path_ +
                             ": " + why);
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(socket_path_.c_str());
}

bool Server::serve_connection(int fd) {
  std::string frame;
  while (recv_frame(fd, frame)) {
    if (is_shutdown_frame(frame)) {
      send_frame(fd, encode_shutdown());
      return false;
    }
    std::string reply;
    try {
      reply = core_.handle_frame(frame);
    } catch (const std::logic_error& e) {
      // Malformed frame: the hardened decoder rejected it. Tell the peer
      // and keep serving.
      reply = encode_error(e.what());
    }
    send_frame(fd, reply);
  }
  return true;
}

void Server::serve(int max_connections) {
  int served = 0;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: accept failed: ") +
                               std::strerror(errno));
    }
    bool keep_going = true;
    try {
      keep_going = serve_connection(fd);
    } catch (const std::runtime_error&) {
      // Transport error on this connection (truncated frame, dead peer):
      // drop it, keep the daemon up.
    }
    ::close(fd);
    if (!keep_going) return;
    if (max_connections > 0 && ++served >= max_connections) return;
  }
}

std::string query(const std::string& socket_path, const std::string& frame) {
  const sockaddr_un addr = make_addr(socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket failed: ") +
                             std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: cannot connect to " + socket_path + ": " +
                             why);
  }
  try {
    send_frame(fd, frame);
    std::string reply;
    if (!recv_frame(fd, reply)) {
      throw std::runtime_error("serve: daemon closed without replying");
    }
    ::close(fd);
    return reply;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

}  // namespace simty::serve
