#pragma once
// Local-socket transport for the sweep server: u32 little-endian
// length-prefixed frames over an AF_UNIX stream socket. The transport is a
// dumb pump — every frame payload is a snapshot container and all
// interpretation (and all input validation) lives in ServeCore /
// snapshot::Reader. Frame lengths are bounds-checked against
// kMaxFrameBytes before any allocation, so a hostile peer cannot size a
// buffer with a forged header.

#include <cstdint>
#include <string>

#include "serve/serve_core.hpp"

namespace simty::serve {

/// Protocol frames are requests, not run state: 1 MiB is orders of
/// magnitude above any legal frame and cheap to reject.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Reads one length-prefixed frame. Returns false on orderly EOF before a
/// header byte; throws std::runtime_error on I/O errors, truncation inside
/// a frame, or an oversized length.
bool recv_frame(int fd, std::string& out);

/// Writes one length-prefixed frame; throws std::runtime_error on failure.
void send_frame(int fd, const std::string& payload);

/// Blocking single-threaded server bound to `socket_path` (any existing
/// socket file is replaced). Each accepted connection is served until the
/// peer closes; a "simty-shutdown" frame stops the serve loop after the
/// acknowledgement is sent. Malformed frames get a "simty-error" reply and
/// the connection stays up — a bad client cannot take the daemon down.
/// Replies are written with MSG_NOSIGNAL, so a client that disconnects
/// before reading its reply costs one dropped connection (EPIPE), never a
/// process-wide SIGPIPE.
class Server {
 public:
  Server(std::string socket_path, ServeCore& core);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept/serve loop; returns after a shutdown frame, or after
  /// `max_connections` connections when it is > 0 (tests).
  void serve(int max_connections = 0);

  const std::string& socket_path() const { return socket_path_; }

 private:
  /// Serves one connection; returns false when a shutdown was requested.
  bool serve_connection(int fd);

  std::string socket_path_;
  ServeCore& core_;
  int listen_fd_ = -1;
};

/// One round trip as a client: connect, send `frame`, return the reply.
/// Throws std::runtime_error when the daemon is unreachable.
std::string query(const std::string& socket_path, const std::string& frame);

/// The shutdown frame ("simty-shutdown" section) and its acknowledgement.
std::string encode_shutdown();
bool is_shutdown_frame(const std::string& bytes);

}  // namespace simty::serve
