file(REMOVE_RECURSE
  "CMakeFiles/simty_alarm.dir/alarm.cpp.o"
  "CMakeFiles/simty_alarm.dir/alarm.cpp.o.d"
  "CMakeFiles/simty_alarm.dir/alarm_manager.cpp.o"
  "CMakeFiles/simty_alarm.dir/alarm_manager.cpp.o.d"
  "CMakeFiles/simty_alarm.dir/batch.cpp.o"
  "CMakeFiles/simty_alarm.dir/batch.cpp.o.d"
  "CMakeFiles/simty_alarm.dir/doze.cpp.o"
  "CMakeFiles/simty_alarm.dir/doze.cpp.o.d"
  "CMakeFiles/simty_alarm.dir/duration_policy.cpp.o"
  "CMakeFiles/simty_alarm.dir/duration_policy.cpp.o.d"
  "CMakeFiles/simty_alarm.dir/fixed_interval_policy.cpp.o"
  "CMakeFiles/simty_alarm.dir/fixed_interval_policy.cpp.o.d"
  "CMakeFiles/simty_alarm.dir/native_policy.cpp.o"
  "CMakeFiles/simty_alarm.dir/native_policy.cpp.o.d"
  "CMakeFiles/simty_alarm.dir/similarity.cpp.o"
  "CMakeFiles/simty_alarm.dir/similarity.cpp.o.d"
  "CMakeFiles/simty_alarm.dir/simty_policy.cpp.o"
  "CMakeFiles/simty_alarm.dir/simty_policy.cpp.o.d"
  "libsimty_alarm.a"
  "libsimty_alarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simty_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
