#include "exp/adaptive.hpp"

#include <gtest/gtest.h>

namespace simty::exp {
namespace {

TEST(AdaptiveBetaController, DefaultProfileBands) {
  const AdaptiveBetaController c = AdaptiveBetaController::default_profile();
  EXPECT_DOUBLE_EQ(c.beta_for(1.0), 0.80);
  EXPECT_DOUBLE_EQ(c.beta_for(0.5), 0.80);
  EXPECT_DOUBLE_EQ(c.beta_for(0.49), 0.90);
  EXPECT_DOUBLE_EQ(c.beta_for(0.2), 0.90);
  EXPECT_DOUBLE_EQ(c.beta_for(0.1), 0.96);
  EXPECT_DOUBLE_EQ(c.beta_for(0.0), 0.96);
}

TEST(AdaptiveBetaController, RejectsBadBandShapes) {
  using Band = AdaptiveBetaController::Band;
  // Empty.
  EXPECT_THROW(AdaptiveBetaController({}), std::logic_error);
  // No floor band.
  EXPECT_THROW(AdaptiveBetaController({Band{0.5, 0.8}}), std::logic_error);
  // Thresholds not descending.
  EXPECT_THROW(AdaptiveBetaController({Band{0.2, 0.8}, Band{0.5, 0.9}, Band{0.0, 0.96}}),
               std::logic_error);
  // Beta decreasing as charge falls.
  EXPECT_THROW(AdaptiveBetaController({Band{0.5, 0.9}, Band{0.0, 0.8}}),
               std::logic_error);
  // Beta out of range.
  EXPECT_THROW(AdaptiveBetaController({Band{0.0, 1.0}}), std::logic_error);
}

TEST(AdaptiveBetaController, SocRangeChecked) {
  const AdaptiveBetaController c = AdaptiveBetaController::default_profile();
  EXPECT_THROW(c.beta_for(-0.1), std::logic_error);
  EXPECT_THROW(c.beta_for(1.1), std::logic_error);
}

class DepletionTest : public ::testing::Test {
 protected:
  static ExperimentConfig segment_config(PolicyKind policy) {
    ExperimentConfig c;
    c.policy = policy;
    c.workload = WorkloadKind::kLight;
    c.duration = Duration::hours(1);
    return c;
  }
  // A small pack so depletion happens in a handful of segments.
  static hw::Battery small_battery() { return hw::Battery(Charge::milliamp_hours(150), 3.8); }
};

TEST_F(DepletionTest, RunsUntilDepleted) {
  const DepletionResult r = run_until_depleted(
      segment_config(PolicyKind::kNative), small_battery());
  EXPECT_TRUE(r.depleted);
  EXPECT_GT(r.history.size(), 1u);
  EXPECT_GT(r.standby_time, Duration::hours(1));
  // SoC decreases monotonically across segments.
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LT(r.history[i].soc_start, r.history[i - 1].soc_start);
  }
}

TEST_F(DepletionTest, SimtyOutlastsNative) {
  const DepletionResult native = run_until_depleted(
      segment_config(PolicyKind::kNative), small_battery());
  const DepletionResult simty = run_until_depleted(
      segment_config(PolicyKind::kSimty), small_battery());
  ASSERT_TRUE(native.depleted);
  ASSERT_TRUE(simty.depleted);
  // The paper's headline, measured by direct depletion: 1/4 to 1/3 longer.
  const double extension = simty.standby_time.ratio(native.standby_time) - 1.0;
  EXPECT_GT(extension, 0.15);
  EXPECT_LT(extension, 0.45);
}

TEST_F(DepletionTest, AdaptiveControllerEscalatesBeta) {
  const AdaptiveBetaController controller = AdaptiveBetaController::default_profile();
  const DepletionResult r = run_until_depleted(
      segment_config(PolicyKind::kSimty), small_battery(), &controller);
  ASSERT_TRUE(r.depleted);
  // Early segments run gentle, late segments aggressive.
  EXPECT_DOUBLE_EQ(r.history.front().beta, 0.80);
  EXPECT_DOUBLE_EQ(r.history.back().beta, 0.96);
  // Beta never decreases along the run.
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_GE(r.history[i].beta, r.history[i - 1].beta);
  }
}

TEST_F(DepletionTest, AdaptiveLandsBetweenFixedExtremes) {
  const AdaptiveBetaController controller = AdaptiveBetaController::default_profile();
  ExperimentConfig gentle = segment_config(PolicyKind::kSimty);
  gentle.beta = 0.80;
  ExperimentConfig aggressive = segment_config(PolicyKind::kSimty);
  aggressive.beta = 0.96;
  const Duration t_gentle =
      run_until_depleted(gentle, small_battery()).standby_time;
  const Duration t_aggr =
      run_until_depleted(aggressive, small_battery()).standby_time;
  const Duration t_adaptive =
      run_until_depleted(segment_config(PolicyKind::kSimty), small_battery(),
                         &controller)
          .standby_time;
  // Adaptive cannot beat always-aggressive by much nor fall far below
  // always-gentle; allow simulator noise around the bracket.
  const Duration lo = std::min(t_gentle, t_aggr);
  const Duration hi = std::max(t_gentle, t_aggr);
  EXPECT_GE(t_adaptive, lo * 0.97);
  EXPECT_LE(t_adaptive, hi * 1.03);
}

TEST_F(DepletionTest, MaxSegmentsCapRespected) {
  const DepletionResult r = run_until_depleted(
      segment_config(PolicyKind::kNative), hw::Battery::nexus5(), nullptr, 3);
  EXPECT_FALSE(r.depleted);
  EXPECT_EQ(r.history.size(), 3u);
  EXPECT_EQ(r.standby_time, Duration::hours(3));
}

}  // namespace
}  // namespace simty::exp
