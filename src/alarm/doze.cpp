#include "alarm/doze.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::alarm {

DozeController::DozeController(sim::Simulator& sim, AlarmManager& manager,
                               hw::Device& device, Config config)
    : sim_(sim), manager_(manager), device_(device), config_(std::move(config)) {
  SIMTY_CHECK_MSG(config_.idle_threshold > Duration::zero(),
                  "doze idle threshold must be positive");
  SIMTY_CHECK_MSG(!config_.window_schedule.empty(),
                  "doze needs at least one maintenance interval");
  for (const Duration d : config_.window_schedule) {
    SIMTY_CHECK_MSG(d > Duration::zero(), "maintenance intervals must be positive");
  }
}

void DozeController::enable() {
  SIMTY_CHECK_MSG(!enabled_, "doze already enabled");
  enabled_ = true;
  manager_.set_delivery_gate([this](TimePoint proposed) { return gate(proposed); });
  // External interaction exits doze; RTC wakeups (the maintenance windows
  // themselves) do not.
  device_.add_wake_listener([this](hw::WakeReason reason) {
    if (reason != hw::WakeReason::kRtcAlarm && dozing_) exit_doze();
  });
  arm_idle_timer();
}

TimePoint DozeController::gate(TimePoint proposed) {
  if (!dozing_) return proposed;
  const TimePoint now = sim_.now();
  if (now >= next_window_) {
    // We are inside (or past) the maintenance moment: everything due has
    // just been delivered; the next wakeup moves to the next window, with
    // the spacing escalating through the schedule.
    ++maintenance_windows_;
    if (schedule_index_ + 1 < config_.window_schedule.size()) ++schedule_index_;
    next_window_ = now + config_.window_schedule[schedule_index_];
  }
  return std::max(proposed, next_window_);
}

void DozeController::enter_doze() {
  dozing_ = true;
  ++doze_entries_;
  schedule_index_ = 0;
  next_window_ = sim_.now() + config_.window_schedule[0];
  // Force an RTC reprogram through the freshly-active gate.
  manager_.set_delivery_gate([this](TimePoint proposed) { return gate(proposed); });
}

void DozeController::exit_doze() {
  dozing_ = false;
  manager_.set_delivery_gate([this](TimePoint proposed) { return gate(proposed); });
  arm_idle_timer();
}

void DozeController::save(snapshot::Writer& w) const {
  w.boolean(enabled_);
  w.boolean(dozing_);
  w.u64(schedule_index_);
  w.i64(next_window_.us());
  w.boolean(idle_timer_.has_value());
  if (idle_timer_) w.u64(idle_timer_->value);
  w.u64(doze_entries_);
  w.u64(maintenance_windows_);
}

void DozeController::restore(snapshot::SectionReader& s) {
  const bool enabled = s.boolean();
  SIMTY_CHECK_MSG(enabled == enabled_,
                  "DozeController::restore: enablement mismatch with the snapshot");
  dozing_ = s.boolean();
  const std::uint64_t index = s.u64();
  SIMTY_CHECK_MSG(index < config_.window_schedule.size(),
                  "DozeController::restore: schedule index out of range");
  schedule_index_ = static_cast<std::size_t>(index);
  next_window_ = TimePoint::from_us(s.i64());
  // Any ctor-path idle timer died with the event-queue restore; drop the
  // stale id and rebind the snapshot's pending timer, if one was armed.
  idle_timer_.reset();
  if (s.boolean()) {
    const std::uint64_t event = s.u64();
    SIMTY_CHECK_MSG(event != 0, "DozeController::restore: null idle timer event");
    idle_timer_ = sim::EventId{event};
    sim_.rebind(*idle_timer_, [this] {
      idle_timer_.reset();
      if (!dozing_) enter_doze();
    });
  }
  doze_entries_ = s.u64();
  maintenance_windows_ = s.u64();
}

void DozeController::arm_idle_timer() {
  if (idle_timer_) {
    sim_.cancel(*idle_timer_);
    idle_timer_.reset();
  }
  idle_timer_ = sim_.schedule_at(
      sim_.now() + config_.idle_threshold,
      [this] {
        idle_timer_.reset();
        if (!dozing_) enter_doze();
      },
      sim::EventPriority::kObserver, "doze-idle-timer");
}

}  // namespace simty::alarm
