#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace simty {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowInRangeAndRejectsZero) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(13), 13u);
  EXPECT_THROW(r.next_below(0), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.uniform(-3.0, 7.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 7.0);
  }
}

TEST(Rng, UniformMeanRoughlyCentered) {
  Rng r(123);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(321);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(555);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ChanceProbability) {
  Rng r(777);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(42), parent2(42);
  Rng childa = parent1.fork(1);
  Rng childb = parent2.fork(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(childa.next_u32(), childb.next_u32());

  Rng parent3(42);
  Rng child1 = parent3.fork(1);
  Rng child2 = parent3.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next_u32() == child2.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace simty
