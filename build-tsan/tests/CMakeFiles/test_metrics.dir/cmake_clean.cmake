file(REMOVE_RECURSE
  "CMakeFiles/test_metrics.dir/metrics/delay_stats_test.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/delay_stats_test.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/histogram_test.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/histogram_test.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/interval_audit_test.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/interval_audit_test.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/wakeup_breakdown_test.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/wakeup_breakdown_test.cpp.o.d"
  "test_metrics"
  "test_metrics.pdb"
  "test_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
