#pragma once
// Experiment harness: assembles the full stack (simulator, device, RTC,
// wakelocks, power monitor, energy accountant, alarm manager, workload,
// system alarms), runs a connected-standby session, and collects every
// metric the paper reports. Repetitions over seeds are averaged, matching
// the paper's "three times, reported the average" protocol.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alarm/alarm_manager.hpp"
#include "alarm/similarity.hpp"
#include "apps/workload.hpp"
#include "hw/power_model.hpp"
#include "hw/wur.hpp"
#include "common/arena.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "net/drx.hpp"
#include "power/energy_accounting.hpp"

namespace simty::trace {
class Tracer;
}

namespace simty::exp {

/// Which alignment policy to run.
enum class PolicyKind { kNative, kSimty, kExact, kSimtyDuration, kFixedInterval };

const char* to_string(PolicyKind p);

/// Which workload to deploy.
enum class WorkloadKind { kLight, kHeavy, kSynthetic };

const char* to_string(WorkloadKind w);

/// Full experiment description.
struct ExperimentConfig {
  PolicyKind policy = PolicyKind::kNative;
  alarm::SimilarityConfig similarity;   // for SIMTY variants
  WorkloadKind workload = WorkloadKind::kLight;
  std::size_t synthetic_apps = 18;      // when workload == kSynthetic

  /// When non-empty, overrides `workload`: the resident apps are built from
  /// exactly these profiles (Workload::from_profiles; irregular profiles get
  /// trace-replay imitations like the heavy workload). This is how the
  /// fleet layer runs each device on its sampled per-device catalog.
  std::vector<apps::AppProfile> custom_profiles;
  double beta = apps::kPaperBeta;       // platform grace factor
  Duration duration = Duration::hours(3);
  std::uint64_t seed = 1;
  bool system_alarms = true;

  /// Slot length for PolicyKind::kFixedInterval (ignored otherwise).
  Duration fixed_interval = Duration::seconds(300);

  /// Optional downlink DRX/paging scenario (net/drx.hpp): when set, the run
  /// deploys a net::CellularStandby harness with a DrxPager on this config.
  /// With drx->wur the run also owns a hw::WakeupReceiver (parameters in
  /// `wur` below) that answers pages instead of DRX listening.
  std::optional<net::DrxConfig> drx;

  /// Wake-up receiver parameters, used only when drx && drx->wur.
  hw::WurConfig wur;

  /// Device power model (defaults to the paper-calibrated Nexus 5).
  hw::PowerModel power_model = hw::PowerModel::nexus5();

  /// Enables the AOSP-M-style Doze controller on top of the policy. Doze
  /// intentionally breaks the §3.2.2 guarantees — gap_violations and
  /// worst_gap_ratio in the result quantify the damage.
  bool doze = false;

  /// Mid-run grace-factor switch: at origin + `at` the platform re-grades
  /// every repeating alarm to grace = max(β·repeat, window) and rebatches
  /// (alarm::AlarmManager::apply_grace_factor). β lives only in the switch
  /// event's closure, never in serialized state, so exp::Run snapshots
  /// taken before `at` are byte-identical across configs differing only in
  /// `beta` — the common prefix the sweep server warm-starts from.
  struct BetaSwitch {
    Duration at = Duration::zero();
    double beta = apps::kPaperBeta;
  };
  std::optional<BetaSwitch> beta_switch;

  /// Captures a trace::DeliveryLog inside the run (exp::Run::delivery_log).
  /// Unlike extra_delivery_observer, the internal log serializes with the
  /// run's snapshot, so a checkpoint-resumed run exports a byte-identical
  /// CSV. Does not force the serial path.
  bool capture_delivery_log = false;

  /// Optional extra observers wired into the run's alarm manager (e.g. a
  /// trace::DeliveryLog or a power::AppEnergyAttributor).
  alarm::DeliveryObserver extra_delivery_observer;
  alarm::SessionObserver extra_session_observer;

  /// Optional extra power-bus listener (e.g. a caller-owned PowerMonitor
  /// capturing the waveform). Must outlive the run.
  hw::PowerListener* extra_power_listener = nullptr;

  /// Optional structured run tracer (see trace/tracer.hpp). Unlike the
  /// observer hooks above it does NOT force the serial path: the tracer is
  /// installed thread-locally inside the one run that carries it, and
  /// run_repeated keeps it on the base seed only — which is exactly what
  /// makes serial-vs-parallel trace comparison a meaningful determinism
  /// check. Must outlive the run; not thread-safe across runs.
  trace::Tracer* tracer = nullptr;

  /// Per-run storage backing. A non-null arena is threaded behind the
  /// run's event-queue slabs and batch-index nodes, so a caller that runs
  /// many experiments back to back (the fleet shard loop, sweep
  /// repetitions) can reset() between runs instead of reallocating.
  /// Presence of an arena never changes any result bit. The arena must
  /// outlive the run and, being single-threaded, forces the serial path in
  /// run_repeated (the parallel runner injects its own per-worker arenas
  /// when the config carries none).
  struct ArenaOptions {
    common::Arena* arena = nullptr;
  };
  ArenaOptions arena_opts;
};

/// All metrics of one run (or the mean over several runs; counts become
/// fractional after averaging).
struct RunResult {
  std::string policy_name;
  Duration duration = Duration::zero();
  int runs = 1;

  // Energy (Fig 3).
  power::EnergyBreakdown energy;
  double average_power_mw = 0.0;
  double projected_standby_hours = 0.0;  // full Nexus 5 pack at avg power

  // Delay (Fig 4).
  double delay_perceptible = 0.0;
  double delay_imperceptible = 0.0;
  double delay_imperceptible_p95 = 0.0;  // tail of the delay distribution

  // Wakeups (Table 4): CPU, Speaker&Vibrator, Wi-Fi, WPS, Accelerometer.
  struct HwCounts {
    std::string hardware;
    double actual = 0.0;
    double expected = 0.0;
  };
  std::vector<HwCounts> wakeups;

  // Volume stats.
  double deliveries = 0.0;
  double batches_delivered = 0.0;
  double one_shots = 0.0;
  double awake_seconds = 0.0;
  double asleep_seconds = 0.0;

  // Guarantee audit (§3.2.2).
  double worst_gap_ratio = 0.0;
  std::uint64_t gap_violations = 0;
  std::uint64_t perceptible_window_misses = 0;  // beyond window + wake latency

  // Downlink paging scenario (zero unless ExperimentConfig::drx is set).
  double pages_answered = 0.0;
  double page_delay_avg_s = 0.0;        // arrival -> answer, mean
  double page_delay_p95_s = 0.0;
  double drx_listen_seconds = 0.0;      // main-radio paging on-durations
  double wur_listen_seconds = 0.0;      // wake-up receiver listen time
  double wur_triggers = 0.0;
};

/// Runs one seeded experiment.
RunResult run_experiment(const ExperimentConfig& config);

/// Runs `repetitions` experiments with seeds seed, seed+1, ... and returns
/// the component-wise mean. `jobs > 1` fans the seeds out over a thread
/// pool (see exp/parallel_runner.hpp); results are reduced in seed order,
/// so the mean is byte-identical to the serial path. Configs carrying
/// extra observers or power listeners always run serially — those hooks
/// are caller-owned and not required to be thread-safe.
RunResult run_repeated(ExperimentConfig config, int repetitions, int jobs = 1);

/// Component-wise mean of per-seed results (exposed for tests).
RunResult average_results(const std::vector<RunResult>& results);

/// Mean plus across-seed spread of the key metrics (for EXPERIMENTS.md's
/// "how stable is this number" question).
struct RepeatedStats {
  RunResult mean;
  OnlineStats total_j;
  OnlineStats awake_j;
  OnlineStats delay_imperceptible;
  OnlineStats cpu_wakeups;
  OnlineStats standby_hours;
};

/// Same parallelism and determinism contract as run_repeated.
RepeatedStats run_repeated_stats(ExperimentConfig config, int repetitions,
                                 int jobs = 1);

}  // namespace simty::exp
