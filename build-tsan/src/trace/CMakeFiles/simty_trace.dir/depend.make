# Empty dependencies file for simty_trace.
# This may be replaced when dependencies are built.
