// Microbenchmark of the discrete-event core hot path.
//
// Measures the slab-backed 4-ary heap EventQueue against a reference
// implementation of the previous std::map event queue (node allocation per
// event, std::function callback, std::string label) on schedule/pop and
// schedule/cancel churn at one million events, plus AlarmManager
// insert/rebatch churn. Prints the measured speedups; `--json <path>`
// additionally writes BENCH_core.json-style records (see bench_json.hpp)
// so CI accumulates a perf trajectory.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "alarm/alarm_manager.hpp"
#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "hw/power_bus.hpp"
#include "hw/power_model.hpp"
#include "sim/event_queue.hpp"

namespace simty {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// The event queue this PR replaced, kept verbatim as the comparison
// baseline: one map node allocation per event, type-erased heap-allocating
// callback, owned label string, and a second map for cancellation.
class MapQueue {
 public:
  using Callback = std::function<void()>;

  std::uint64_t schedule(TimePoint when, int priority, Callback cb,
                         std::string label = "") {
    const Key key{when.us(), priority, next_seq_++};
    events_.emplace(key, Entry{std::move(cb), std::move(label), key.seq});
    index_.emplace(key.seq, key);
    return key.seq;
  }

  bool cancel(std::uint64_t id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    events_.erase(it->second);
    index_.erase(it);
    return true;
  }

  bool empty() const { return events_.empty(); }

  struct Fired {
    TimePoint when;
    Callback callback;
    std::string label;
  };
  Fired pop() {
    auto it = events_.begin();
    Fired fired{TimePoint::from_us(it->first.when_us), std::move(it->second.callback),
                std::move(it->second.label)};
    index_.erase(it->second.id);
    events_.erase(it);
    return fired;
  }

 private:
  struct Key {
    std::int64_t when_us;
    int priority;
    std::uint64_t seq;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    Callback callback;
    std::string label;
    std::uint64_t id;
  };
  std::map<Key, Entry> events_;
  std::map<std::uint64_t, Key> index_;
  std::uint64_t next_seq_ = 1;
};

constexpr std::size_t kChurnEvents = 1'000'000;
constexpr std::size_t kWindow = 4'096;  // pending events kept in flight

// Steady-state schedule/pop churn: keep kWindow events pending, pop the
// earliest and schedule a replacement, kChurnEvents times. `sink`
// accumulates into a volatile so the callbacks cannot be optimized out.
template <typename Schedule, typename Pop>
double churn_schedule_pop(Schedule schedule, Pop pop) {
  Rng rng(1234);
  volatile std::uint64_t sink = 0;
  std::int64_t now_us = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < kWindow; ++i) {
    schedule(TimePoint::from_us(now_us + rng.next_below(60'000'000)),
             static_cast<int>(rng.next_below(4)), [&sink] { sink = sink + 1; });
  }
  for (std::size_t i = 0; i < kChurnEvents; ++i) {
    auto fired = pop();
    fired.callback();
    now_us = fired.when.us();
    schedule(TimePoint::from_us(now_us + 1 + rng.next_below(60'000'000)),
             static_cast<int>(rng.next_below(4)), [&sink] { sink = sink + 1; });
  }
  return ms_since(start);
}

// Schedule/cancel churn: schedule two events per round, cancel one of the
// two, pop one — the tombstone path (heap) vs. map erase.
template <typename Schedule, typename Cancel, typename Pop>
double churn_schedule_cancel(Schedule schedule, Cancel cancel, Pop pop) {
  Rng rng(99);
  volatile std::uint64_t sink = 0;
  std::int64_t now_us = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < kChurnEvents / 2; ++i) {
    const auto keep = schedule(TimePoint::from_us(now_us + 1 + rng.next_below(1'000'000)),
                               1, [&sink] { sink = sink + 1; });
    const auto victim = schedule(
        TimePoint::from_us(now_us + 1 + rng.next_below(1'000'000)), 1,
        [&sink] { sink = sink + 1; });
    // Cancel one of the pair (alternating which) and pop the earliest.
    cancel(i % 2 == 0 ? victim : keep);
    auto fired = pop();
    fired.callback();
    now_us = fired.when.us();
  }
  return ms_since(start);
}

struct AlarmChurnResult {
  double wall_ms = 0.0;
  std::uint64_t inserts = 0;
};

// AlarmManager queue maintenance churn: register a standby-day's worth of
// repeating alarms, then rebatch the whole queue repeatedly (the policy
// swap / realignment path). Every registration and every rebatched alarm
// exercises one incremental insert.
AlarmChurnResult churn_alarm_queue(std::unique_ptr<alarm::AlignmentPolicy> policy) {
  constexpr int kAlarms = 600;
  constexpr int kRebatches = 20;

  sim::Simulator sim;
  hw::PowerModel model = hw::PowerModel::nexus5();
  hw::PowerBus bus;
  hw::Device device(sim, model, bus);
  hw::Rtc rtc(sim, device);
  hw::WakelockManager wakelocks(sim, model, bus);
  alarm::AlarmManager manager(sim, device, rtc, wakelocks, std::move(policy));

  Rng rng(7);
  const auto start = Clock::now();
  for (int i = 0; i < kAlarms; ++i) {
    const Duration repeat = Duration::seconds(60 * (1 + static_cast<int>(rng.next_below(60))));
    alarm::AlarmSpec spec = alarm::AlarmSpec::repeating(
        "bench.alarm." + std::to_string(i), alarm::AppId{static_cast<std::uint32_t>(i % 32)},
        alarm::RepeatMode::kStatic, repeat, 0.1, 0.5);
    manager.register_alarm(spec,
                           TimePoint::origin() + Duration::seconds(rng.next_below(3600)),
                           [](const alarm::Alarm&, TimePoint) { return alarm::TaskSpec{}; });
  }
  for (int r = 0; r < kRebatches; ++r) manager.rebatch_all();
  AlarmChurnResult out;
  out.wall_ms = ms_since(start);
  out.inserts = static_cast<std::uint64_t>(kAlarms) * (1 + kRebatches);
  return out;
}

}  // namespace
}  // namespace simty

int main(int argc, char** argv) {
  using namespace simty;

  const auto json_path = bench::json_path_from_args(argc, argv);
  std::vector<bench::BenchRecord> records;
  TextTable t;
  t.set_header({"workload", "impl", "wall (ms)", "events/sec"});

  const auto record = [&](const std::string& workload, const std::string& impl,
                          double wall_ms, double events) {
    const double eps = events / (wall_ms / 1e3);
    t.add_row({workload, impl, str_format("%.1f", wall_ms), str_format("%.0f", eps)});
    records.push_back({workload + "/" + impl, wall_ms, eps});
    return eps;
  };

  // -- schedule/pop churn ----------------------------------------------------
  double heap_ms, map_ms;
  {
    sim::EventQueue q;
    heap_ms = churn_schedule_pop(
        [&](TimePoint when, int pri, auto cb) {
          q.schedule(when, static_cast<sim::EventPriority>(pri), std::move(cb), "churn");
        },
        [&] { return q.pop(); });
  }
  {
    MapQueue q;
    map_ms = churn_schedule_pop(
        [&](TimePoint when, int pri, auto cb) {
          q.schedule(when, pri, std::move(cb), "churn");
        },
        [&] { return q.pop(); });
  }
  const double pop_heap = record("schedule-pop", "heap", heap_ms,
                                 static_cast<double>(kChurnEvents));
  const double pop_map = record("schedule-pop", "map", map_ms,
                                static_cast<double>(kChurnEvents));

  // -- schedule/cancel churn -------------------------------------------------
  {
    sim::EventQueue q;
    heap_ms = churn_schedule_cancel(
        [&](TimePoint when, int pri, auto cb) {
          return q.schedule(when, static_cast<sim::EventPriority>(pri), std::move(cb),
                            "churn");
        },
        [&](sim::EventId id) { return q.cancel(id); }, [&] { return q.pop(); });
  }
  {
    MapQueue q;
    map_ms = churn_schedule_cancel(
        [&](TimePoint when, int pri, auto cb) {
          return q.schedule(when, pri, std::move(cb), "churn");
        },
        [&](std::uint64_t id) { return q.cancel(id); }, [&] { return q.pop(); });
  }
  record("schedule-cancel", "heap", heap_ms, static_cast<double>(kChurnEvents));
  record("schedule-cancel", "map", map_ms, static_cast<double>(kChurnEvents));

  // -- alarm queue maintenance churn ----------------------------------------
  {
    const AlarmChurnResult native = churn_alarm_queue(std::make_unique<alarm::NativePolicy>());
    record("alarm-rebatch", "NATIVE", native.wall_ms, static_cast<double>(native.inserts));
    const AlarmChurnResult simty_r = churn_alarm_queue(std::make_unique<alarm::SimtyPolicy>());
    record("alarm-rebatch", "SIMTY", simty_r.wall_ms, static_cast<double>(simty_r.inserts));
  }

  std::printf("Core micro: discrete-event hot path (1e6-event churn)\n");
  std::printf("%s\n", t.render().c_str());
  std::printf("schedule-pop speedup (heap vs map): %.2fx\n", pop_heap / pop_map);

  if (json_path) {
    if (!bench::write_bench_json(*json_path, records)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("wrote %zu records to %s\n", records.size(), json_path->c_str());
  }
  return 0;
}
