// Checkpoint/resume bit-identity: a run saved at a quiescent instant and
// resumed in a fresh Run must finish byte-identical to a straight run — the
// delivery CSV, the binary trace, and every result field. This is the
// contract the warm-start sweep server and the fleet shard checkpoints are
// built on, so it is tested across all four policies, with doze on, and
// with a checkpoint inside a same-instant batch neighborhood.

#include <gtest/gtest.h>

#include <string>

#include "exp/run.hpp"
#include "trace/tracer.hpp"

namespace simty::exp {
namespace {

ExperimentConfig base_config(PolicyKind policy) {
  ExperimentConfig config;
  config.policy = policy;
  config.workload = WorkloadKind::kLight;
  config.duration = Duration::hours(2);
  config.seed = 7;
  config.capture_delivery_log = true;
  return config;
}

/// Every scalar field must match EXACTLY — bit-identity, not tolerance.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.energy.sleep.mj(), b.energy.sleep.mj());
  EXPECT_EQ(a.energy.waking.mj(), b.energy.waking.mj());
  EXPECT_EQ(a.energy.awake_base.mj(), b.energy.awake_base.mj());
  EXPECT_EQ(a.energy.wake_transitions.mj(), b.energy.wake_transitions.mj());
  EXPECT_EQ(a.energy.component_active.mj(), b.energy.component_active.mj());
  EXPECT_EQ(a.energy.component_activation.mj(), b.energy.component_activation.mj());
  for (std::size_t i = 0; i < a.energy.per_component.size(); ++i) {
    EXPECT_EQ(a.energy.per_component[i].mj(), b.energy.per_component[i].mj());
  }
  EXPECT_EQ(a.average_power_mw, b.average_power_mw);
  EXPECT_EQ(a.projected_standby_hours, b.projected_standby_hours);
  EXPECT_EQ(a.delay_perceptible, b.delay_perceptible);
  EXPECT_EQ(a.delay_imperceptible, b.delay_imperceptible);
  EXPECT_EQ(a.delay_imperceptible_p95, b.delay_imperceptible_p95);
  ASSERT_EQ(a.wakeups.size(), b.wakeups.size());
  for (std::size_t i = 0; i < a.wakeups.size(); ++i) {
    EXPECT_EQ(a.wakeups[i].hardware, b.wakeups[i].hardware);
    EXPECT_EQ(a.wakeups[i].actual, b.wakeups[i].actual);
    EXPECT_EQ(a.wakeups[i].expected, b.wakeups[i].expected);
  }
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.batches_delivered, b.batches_delivered);
  EXPECT_EQ(a.one_shots, b.one_shots);
  EXPECT_EQ(a.awake_seconds, b.awake_seconds);
  EXPECT_EQ(a.asleep_seconds, b.asleep_seconds);
  EXPECT_EQ(a.worst_gap_ratio, b.worst_gap_ratio);
  EXPECT_EQ(a.gap_violations, b.gap_violations);
  EXPECT_EQ(a.perceptible_window_misses, b.perceptible_window_misses);
  EXPECT_EQ(a.pages_answered, b.pages_answered);
  EXPECT_EQ(a.page_delay_avg_s, b.page_delay_avg_s);
  EXPECT_EQ(a.page_delay_p95_s, b.page_delay_p95_s);
  EXPECT_EQ(a.drx_listen_seconds, b.drx_listen_seconds);
  EXPECT_EQ(a.wur_listen_seconds, b.wur_listen_seconds);
  EXPECT_EQ(a.wur_triggers, b.wur_triggers);
}

class RunSnapshotPolicyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(RunSnapshotPolicyTest, CheckpointResumeMatchesStraightRun) {
  const ExperimentConfig config = base_config(GetParam());

  exp::Run straight(config);
  const RunResult expected = straight.finish();
  const std::string expected_csv = straight.delivery_log().to_csv();

  exp::Run first(config);
  first.advance_to_quiescent(TimePoint::origin() + Duration::hours(1));
  const std::string snap = first.save_snapshot();

  exp::Run resumed(config);
  resumed.restore_snapshot(snap);
  const RunResult actual = resumed.finish();

  expect_identical(expected, actual);
  EXPECT_EQ(expected_csv, resumed.delivery_log().to_csv());
}

TEST_P(RunSnapshotPolicyTest, SnapshotIsDeterministic) {
  const ExperimentConfig config = base_config(GetParam());
  const TimePoint checkpoint = TimePoint::origin() + Duration::minutes(45);

  exp::Run a(config);
  a.advance_to_quiescent(checkpoint);
  exp::Run b(config);
  b.advance_to_quiescent(checkpoint);
  EXPECT_EQ(a.save_snapshot(), b.save_snapshot());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, RunSnapshotPolicyTest,
                         ::testing::Values(PolicyKind::kNative, PolicyKind::kSimty,
                                           PolicyKind::kExact,
                                           PolicyKind::kSimtyDuration),
                         [](const auto& param_info) {
                           // gtest names must be alnum: SIMTY-DUR -> SIMTY_DUR.
                           std::string name = to_string(param_info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(RunSnapshotTest, BinaryTraceSurvivesCheckpoint) {
  ExperimentConfig config = base_config(PolicyKind::kSimty);
  trace::Tracer straight_tracer;
  config.tracer = &straight_tracer;
  {
    exp::Run straight(config);
    straight.finish();
  }

  trace::Tracer prefix_tracer;
  config.tracer = &prefix_tracer;
  std::string snap;
  {
    exp::Run first(config);
    first.advance_to_quiescent(TimePoint::origin() + Duration::hours(1));
    snap = first.save_snapshot();
  }

  trace::Tracer resumed_tracer;
  config.tracer = &resumed_tracer;
  {
    exp::Run resumed(config);
    resumed.restore_snapshot(snap);
    resumed.finish();
  }
  EXPECT_EQ(straight_tracer.binary(), resumed_tracer.binary());
}

TEST(RunSnapshotTest, CheckpointResumeWithDozeMatches) {
  ExperimentConfig config = base_config(PolicyKind::kSimty);
  config.doze = true;

  exp::Run straight(config);
  const RunResult expected = straight.finish();

  exp::Run first(config);
  first.advance_to_quiescent(TimePoint::origin() + Duration::minutes(70));
  const std::string snap = first.save_snapshot();
  exp::Run resumed(config);
  resumed.restore_snapshot(snap);
  expect_identical(expected, resumed.finish());
}

TEST(RunSnapshotTest, CheckpointInsideBatchNeighborhoodMatches) {
  // Checkpoint at an instant chosen per-delivery: right after a batch of
  // size >= 2 delivered (a same-instant pop_batch group just drained).
  // advance_to_quiescent steps past the in-flight wake session, so the
  // snapshot lands between two batch groups, never inside one — this test
  // pins that the surrounding machinery (staged pops, wakelock tails,
  // device sleep-back) restores exactly.
  ExperimentConfig probe = base_config(PolicyKind::kSimty);
  TimePoint batch_instant;
  probe.extra_delivery_observer = [&](const alarm::DeliveryRecord& r) {
    if (batch_instant == TimePoint() && r.batch_size >= 2 &&
        r.delivered > TimePoint::origin() + Duration::minutes(30)) {
      batch_instant = r.delivered;
    }
  };
  {
    exp::Run probe_run(probe);
    probe_run.finish();
  }
  ASSERT_NE(batch_instant, TimePoint()) << "workload produced no batched delivery";

  const ExperimentConfig config = base_config(PolicyKind::kSimty);
  exp::Run straight(config);
  const RunResult expected = straight.finish();

  exp::Run first(config);
  first.advance_to_quiescent(batch_instant);
  const std::string snap = first.save_snapshot();
  exp::Run resumed(config);
  resumed.restore_snapshot(snap);
  const RunResult actual = resumed.finish();
  expect_identical(expected, actual);
  EXPECT_EQ(straight.delivery_log().to_csv(), resumed.delivery_log().to_csv());
}

TEST(RunSnapshotTest, BetaSwitchPrefixIsSharedAcrossSweepPoints) {
  // The warm-start lever: configs differing only in beta_switch.beta
  // produce byte-identical snapshots before the switch instant, and a
  // prefix saved under one β resumes correctly under another.
  ExperimentConfig lo = base_config(PolicyKind::kSimty);
  lo.beta_switch = ExperimentConfig::BetaSwitch{Duration::hours(1), 0.3};
  ExperimentConfig hi = lo;
  hi.beta_switch->beta = 0.9;

  const TimePoint checkpoint = TimePoint::origin() + Duration::minutes(50);
  exp::Run run_lo(lo);
  run_lo.advance_to_quiescent(checkpoint);
  const std::string snap = run_lo.save_snapshot();
  {
    exp::Run run_hi(hi);
    run_hi.advance_to_quiescent(checkpoint);
    EXPECT_EQ(snap, run_hi.save_snapshot()) << "prefix depends on beta";
  }

  // Straight run under hi's β vs warm start from lo's prefix snapshot.
  exp::Run straight(hi);
  const RunResult expected = straight.finish();
  exp::Run warm(hi);
  warm.restore_snapshot(snap);
  const RunResult actual = warm.finish();
  expect_identical(expected, actual);
  EXPECT_EQ(straight.delivery_log().to_csv(), warm.delivery_log().to_csv());
}

TEST(RunSnapshotTest, CheckpointResumeWithDrxMatches) {
  // The paging occasion grid runs every 1.28 s, so an hour-mark checkpoint
  // lands between DRX cycles with pending occasion/arrival events and
  // (possibly) queued pages — all of which must survive the trip.
  ExperimentConfig config = base_config(PolicyKind::kSimty);
  config.drx.emplace();

  exp::Run straight(config);
  const RunResult expected = straight.finish();
  EXPECT_GT(expected.pages_answered, 0.0);
  EXPECT_GT(expected.drx_listen_seconds, 0.0);

  exp::Run first(config);
  first.advance_to_quiescent(TimePoint::origin() + Duration::hours(1));
  const std::string snap = first.save_snapshot();
  exp::Run resumed(config);
  resumed.restore_snapshot(snap);
  expect_identical(expected, resumed.finish());
}

TEST(RunSnapshotTest, CheckpointResumeWithWurMatches) {
  // WuR mode: the receiver's listen rail and any armed batched-answer
  // event serialize with the run.
  ExperimentConfig config = base_config(PolicyKind::kSimty);
  config.drx.emplace();
  config.drx->wur = true;
  config.drx->wur_delay_budget = Duration::seconds(10);

  exp::Run straight(config);
  const RunResult expected = straight.finish();
  EXPECT_GT(expected.pages_answered, 0.0);
  EXPECT_GT(expected.wur_triggers, 0.0);
  EXPECT_GT(expected.wur_listen_seconds, 0.0);
  EXPECT_EQ(expected.drx_listen_seconds, 0.0);

  exp::Run first(config);
  first.advance_to_quiescent(TimePoint::origin() + Duration::minutes(70));
  const std::string snap = first.save_snapshot();
  exp::Run resumed(config);
  resumed.restore_snapshot(snap);
  expect_identical(expected, resumed.finish());
}

TEST(RunSnapshotTest, SnapshotWithDrxIsDeterministic) {
  ExperimentConfig config = base_config(PolicyKind::kSimty);
  config.drx.emplace();
  config.drx->wur = true;
  const TimePoint checkpoint = TimePoint::origin() + Duration::minutes(45);

  exp::Run a(config);
  a.advance_to_quiescent(checkpoint);
  exp::Run b(config);
  b.advance_to_quiescent(checkpoint);
  EXPECT_EQ(a.save_snapshot(), b.save_snapshot());
}

TEST(RunSnapshotTest, RestoreRejectsPagingConfigMismatch) {
  // A snapshot taken with the paging scenario enabled carries cellular (and
  // wur) sections; restoring it into a run configured without them — or
  // vice versa — is a config mismatch, not silent divergence.
  ExperimentConfig with_drx = base_config(PolicyKind::kSimty);
  with_drx.drx.emplace();
  exp::Run drx_run(with_drx);
  drx_run.advance_to_quiescent(TimePoint::origin() + Duration::minutes(30));
  const std::string drx_snap = drx_run.save_snapshot();

  const ExperimentConfig plain = base_config(PolicyKind::kSimty);
  exp::Run plain_run(plain);
  plain_run.advance_to_quiescent(TimePoint::origin() + Duration::minutes(30));
  const std::string plain_snap = plain_run.save_snapshot();

  exp::Run into_plain(plain);
  EXPECT_THROW(into_plain.restore_snapshot(drx_snap), std::logic_error);
  exp::Run into_drx(with_drx);
  EXPECT_THROW(into_drx.restore_snapshot(plain_snap), std::logic_error);

  ExperimentConfig with_wur = with_drx;
  with_wur.drx->wur = true;
  exp::Run into_wur(with_wur);
  EXPECT_THROW(into_wur.restore_snapshot(drx_snap), std::logic_error);
}

TEST(RunSnapshotTest, RestoreRejectsHorizonMismatch) {
  const ExperimentConfig config = base_config(PolicyKind::kNative);
  exp::Run first(config);
  first.advance_to_quiescent(TimePoint::origin() + Duration::minutes(30));
  const std::string snap = first.save_snapshot();

  ExperimentConfig longer = config;
  longer.duration = Duration::hours(3);
  exp::Run other(longer);
  EXPECT_THROW(other.restore_snapshot(snap), std::logic_error);
}

TEST(RunSnapshotTest, SaveRequiresQuiescence) {
  const ExperimentConfig config = base_config(PolicyKind::kNative);
  exp::Run run(config);
  // Unadvanced run: the launch schedule is pending but the device starts
  // asleep and quiescent, so save succeeds at t=0...
  EXPECT_NO_THROW(run.save_snapshot());
}

}  // namespace
}  // namespace simty::exp
