#include "common/check.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <stdexcept>
#include <string>

namespace simty {
namespace {

TEST(SimtyCheck, PassingCheckIsSilent) {
  EXPECT_NO_THROW(SIMTY_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(SIMTY_CHECK_MSG(true, "never seen"));
}

TEST(SimtyCheck, FailureThrowsLogicErrorWithExpressionFileAndLine) {
  try {
    SIMTY_CHECK(2 + 2 == 5);  // keep this expression unique in the file
    FAIL() << "SIMTY_CHECK did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SIMTY_CHECK failed"), std::string::npos) << what;
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    // file:line — a colon followed by a digit after the file name.
    const std::size_t file_pos = what.find("check_test.cpp:");
    ASSERT_NE(file_pos, std::string::npos) << what;
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(
        what[file_pos + std::string("check_test.cpp:").size()])))
        << what;
  }
}

TEST(SimtyCheckMsg, FailureAppendsTheMessage) {
  try {
    SIMTY_CHECK_MSG(false, "queue drained twice");
    FAIL() << "SIMTY_CHECK_MSG did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("queue drained twice"), std::string::npos) << what;
    EXPECT_NE(what.find("false"), std::string::npos) << what;
  }
}

TEST(SimtyCheckMsg, MessageMayBeComputed) {
  const std::string ctx = "slot 7";
  try {
    SIMTY_CHECK_MSG(false, "bad " + ctx);
    FAIL() << "did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad slot 7"), std::string::npos);
  }
}

TEST(SimtyCheck, ExpressionEvaluatedExactlyOncePassing) {
  int calls = 0;
  SIMTY_CHECK(++calls > 0);
  EXPECT_EQ(calls, 1);
}

TEST(SimtyCheck, ExpressionEvaluatedExactlyOnceFailing) {
  int calls = 0;
  EXPECT_THROW(SIMTY_CHECK(++calls < 0), std::logic_error);
  EXPECT_EQ(calls, 1);
}

TEST(SimtyCheckMsg, MessageOnlyBuiltOnFailure) {
  int message_builds = 0;
  auto build = [&message_builds] {
    ++message_builds;
    return std::string("expensive");
  };
  SIMTY_CHECK_MSG(true, build());
  EXPECT_EQ(message_builds, 0) << "message must be lazy on the passing path";
  EXPECT_THROW(SIMTY_CHECK_MSG(false, build()), std::logic_error);
  EXPECT_EQ(message_builds, 1);
}

// SIMTY_CHECK is documented to throw, so it must compose with functions that
// are deliberately noexcept(false) — the compiler may not silently
// terminate() a propagating failure.
int checked_divide(int num, int den) noexcept(false) {
  SIMTY_CHECK_MSG(den != 0, "division by zero");
  return num / den;
}

TEST(SimtyCheck, UsableInsideNoexceptFalseFunctions) {
  EXPECT_EQ(checked_divide(10, 2), 5);
  EXPECT_THROW(checked_divide(1, 0), std::logic_error);
  try {
    checked_divide(1, 0);
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("division by zero"), std::string::npos);
  }
}

TEST(SimtyCheck, WorksAsSingleStatementInControlFlow) {
  // The do/while(false) wrapper must make the macro a single statement:
  // an unbraced if/else around it has to parse and behave.
  int taken = 0;
  if (taken == 0)
    SIMTY_CHECK(true);
  else
    SIMTY_CHECK(false);
  SUCCEED();
}

}  // namespace
}  // namespace simty
