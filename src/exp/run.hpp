#pragma once
// Resumable experiment runs.
//
// run_experiment() assembles the stack, runs to the horizon, and tears it
// down — fine for one-shot measurement, useless for checkpointing. Run is
// the same assembly (exact same construction, observer, and deployment
// order, so results are bit-identical) held as a long-lived object that can
// pause at a device-quiescent instant, serialize itself into the snapshot
// container, and resume — in this process or another one.
//
// The restore contract mirrors the component layer's: a Run is always
// constructed normally first (the full stack, ctor-time scheduling and
// all), then restore_snapshot() overwrites the mutable state wholesale.
// Events the fresh construction scheduled die with the event-queue restore;
// every component rebinds the saved events it owns, and fully_bound() gates
// resumption. Construction is a pure function of the config, which is why
// the snapshot only carries state, never structure.
//
// The warm-start lever: ExperimentConfig::beta_switch schedules a mid-run
// grace-factor switch whose β lives only in the event's closure — never in
// the serialized state. Sweep points that differ only in beta_switch.beta
// therefore share byte-identical prefixes up to the switch instant; the
// sweep server snapshots one prefix and resumes it once per point.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "alarm/alarm_manager.hpp"
#include "alarm/doze.hpp"
#include "apps/system_alarms.hpp"
#include "apps/workload.hpp"
#include "exp/experiment.hpp"
#include "hw/device.hpp"
#include "hw/power_bus.hpp"
#include "hw/rtc.hpp"
#include "hw/wakelock.hpp"
#include "hw/wur.hpp"
#include "metrics/delay_stats.hpp"
#include "net/cellular.hpp"
#include "metrics/interval_audit.hpp"
#include "metrics/wakeup_breakdown.hpp"
#include "power/energy_accounting.hpp"
#include "power/monitor.hpp"
#include "sim/simulator.hpp"
#include "trace/delivery_log.hpp"
#include "trace/tracer.hpp"

namespace simty::exp {

/// One pausable, serializable experiment; see the file comment. Not
/// thread-safe (the whole stack is single-threaded by design), and the
/// config's tracer — installed thread-locally for the Run's lifetime —
/// pins the object to the constructing thread.
class Run {
 public:
  explicit Run(const ExperimentConfig& config);

  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  const ExperimentConfig& config() const { return config_; }
  TimePoint horizon() const { return horizon_; }
  TimePoint now() const { return sim_.now(); }
  bool finished() const { return finished_; }

  /// Runs the event loop to `at` (<= horizon), then keeps stepping single
  /// events until the device reaches its quiescent point (asleep, no locks,
  /// no pending wake work) — the only instants the hardware layer can
  /// serialize from. Returns the reached virtual time.
  TimePoint advance_to_quiescent(TimePoint at);

  /// Serializes the paused run into snapshot-container bytes. Requires a
  /// device-quiescent instant (advance_to_quiescent).
  std::string save_snapshot() const;

  /// Restores state saved by save_snapshot() on a Run constructed from an
  /// identical config — identical except beta_switch.beta, which is
  /// intentionally outside the serialized state (warm starts resume the
  /// shared prefix under this config's β). Throws on any mismatch it can
  /// detect (horizon, section layout, unbound events).
  void restore_snapshot(const std::string& bytes);

  /// Runs to the horizon, finalizes every integrator, and builds the
  /// RunResult exactly as run_experiment() does. One-shot.
  RunResult finish();

  /// The internally captured delivery log (config.capture_delivery_log);
  /// snapshots and restores with the run, unlike an external observer.
  const trace::DeliveryLog& delivery_log() const { return capture_log_; }

  sim::Simulator& simulator() { return sim_; }
  const hw::Device& device() const { return device_; }
  alarm::AlarmManager& alarm_manager() { return manager_; }

 private:
  alarm::AlarmManager::HandlerResolver handler_resolver();

  ExperimentConfig config_;
  // Install the tracer before any member that might record, and open the
  // "run" span before the stack constructs — same event order as
  // run_experiment(), where TraceScope and the span begin precede the
  // Simulator. run_span_ exists only for its initializer's side effect.
  trace::TraceScope trace_scope_;
  int run_span_;
  sim::Simulator sim_;
  hw::PowerBus bus_;
  power::EnergyAccountant accountant_;
  power::PowerMonitor monitor_;
  // Listeners must attach before the Device constructor publishes its
  // initial state; listeners_wired_ exists only for its initializer.
  int listeners_wired_;
  hw::Device device_;
  hw::Rtc rtc_;
  hw::WakelockManager wakelocks_;
  alarm::AlarmManager manager_;
  metrics::DelayStats delays_;
  metrics::WakeupAccounting wakeup_accounting_;
  metrics::IntervalAudit audit_;
  std::uint64_t perceptible_misses_ = 0;
  std::uint64_t one_shots_ = 0;
  trace::DeliveryLog capture_log_;
  apps::Workload workload_;
  alarm::DozeController doze_;
  // DRX/paging scenario (config.drx): the receiver must outlive the
  // cellular harness whose pager points at it, so it is declared first.
  std::unique_ptr<hw::WakeupReceiver> wur_;
  std::unique_ptr<net::CellularStandby> cellular_;
  TimePoint horizon_;
  std::unique_ptr<apps::SystemAlarmSource> system_alarms_;
  std::optional<sim::EventId> beta_switch_event_;
  bool finished_ = false;
};

}  // namespace simty::exp
