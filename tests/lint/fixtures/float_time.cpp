// Fixture: float-time rule — simulated time is integer microsecond ticks;
// floating-point expressions must round through the sanctioned bridges
// (Duration::from_seconds, Duration::operator*(double)).
#include "common/time.hpp"

namespace fixture {

inline simty::Duration grace(double beta) {
  return simty::Duration::micros(static_cast<long long>(beta * 1000000.0));  // LINT-EXPECT: float-time
}

inline simty::TimePoint warp(simty::TimePoint t) {
  return simty::TimePoint::from_us(  // LINT-EXPECT: float-time
      static_cast<long long>(t.seconds_f() * 1e6));
}

inline simty::Duration grace_ok(double beta) {
  return simty::Duration::from_seconds(beta);  // sanctioned bridge: fine
}

inline simty::Duration half(simty::Duration d) {
  return simty::Duration::micros(d.us() / 2);  // integer ticks: fine
}

inline simty::Duration legacy(double b) {
  return simty::Duration::millis(static_cast<long long>(b * 2.5));  // simty-lint: allow(float-time)
}

}  // namespace fixture
