// Fixture: wall-clock rule (linted as deterministic-path code).
// Expectation markers on violating lines are parsed by simty_lint_test.cpp;
// a line with no marker must produce no finding.
#include <chrono>

namespace fixture {

inline long long now_us() {
  auto wall = std::chrono::system_clock::now();  // LINT-EXPECT: wall-clock
  (void)wall;
  auto mono = std::chrono::steady_clock::now();  // simty-lint: allow(wall-clock)
  (void)mono;
  // A comment naming system_clock must not fire.
  const char* msg = "a string naming system_clock must not fire";
  (void)msg;
  return 0;
}

}  // namespace fixture
