#pragma once
// SIMTY: the paper's similarity-based alignment policy (§3.2).

#include "alarm/policy.hpp"
#include "alarm/similarity.hpp"

namespace simty::alarm {

/// Two-phase alignment. The *search phase* collects every applicable entry:
/// if either party is perceptible the time similarity must be High (window
/// overlap), otherwise Medium (grace overlap) also qualifies — this is what
/// guarantees perceptible alarms stay inside their windows and imperceptible
/// alarms inside their graces. The *selection phase* ranks applicable
/// entries by Table 1 (hardware similarity first, then time similarity) and
/// joins the first-found most-preferable one.
///
/// Indexed path: applicability is exactly grace overlap (High time
/// similarity means window overlap, and windows are contained in graces, so
/// both High and Medium imply overlapping graces), so the candidate query
/// asks for entries whose grace interval overlaps the alarm's. The
/// selection over candidates stops early once a Table-1 rank-1 (High/High)
/// entry is found: no lower rank exists and, absent a tie preference, later
/// equal-rank entries lose first-found-wins anyway.
class SimtyPolicy : public AlignmentPolicy {
 public:
  explicit SimtyPolicy(SimilarityConfig config = {});

  std::string name() const override { return "SIMTY"; }

  const SimilarityConfig& config() const { return config_; }

  std::optional<std::size_t> select_batch(
      const Alarm& alarm,
      const std::vector<std::unique_ptr<Batch>>& queue) const override;

  std::optional<CandidateQuery> candidate_query(
      const Alarm& alarm) const override;

  std::optional<std::size_t> select_among(
      const Alarm& alarm, const std::vector<std::unique_ptr<Batch>>& queue,
      const std::vector<std::size_t>& candidates) const override;

 protected:
  /// Tie-break hook among entries with equal Table-1 rank; the base policy
  /// keeps the first found (returns false = no preference). The duration-
  /// similarity extension overrides this.
  virtual bool prefers_over(const Alarm& alarm, const Batch& candidate,
                            const Batch& incumbent) const;

  /// True when prefers_over can ever return true. Gates the rank-1 early
  /// exit: with a tie preference, a later equal-rank entry may still win,
  /// so the scan must see every candidate.
  virtual bool has_tie_preference() const { return false; }

 private:
  /// Table-1 preferability of joining `entry`, or -1 when the search phase
  /// rejects it (§3.2.1 applicability). `window`/`grace`/`alarm_perceptible`
  /// are the alarm's, precomputed by the caller.
  int rank_of(const TimeInterval& window, const TimeInterval& grace,
              bool alarm_perceptible, const Alarm& alarm,
              const Batch& entry) const;

  SimilarityConfig config_;
};

}  // namespace simty::alarm
