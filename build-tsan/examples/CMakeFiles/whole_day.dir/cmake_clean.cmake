file(REMOVE_RECURSE
  "CMakeFiles/whole_day.dir/whole_day.cpp.o"
  "CMakeFiles/whole_day.dir/whole_day.cpp.o.d"
  "whole_day"
  "whole_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whole_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
