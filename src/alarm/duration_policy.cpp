#include "alarm/duration_policy.hpp"

#include <algorithm>

namespace simty::alarm {

double duration_similarity(Duration a, Duration b) {
  if (a <= Duration::zero() || b <= Duration::zero()) return 0.0;
  const auto lo = static_cast<double>(std::min(a.us(), b.us()));
  const auto hi = static_cast<double>(std::max(a.us(), b.us()));
  return lo / hi;
}

bool DurationSimtyPolicy::prefers_over(const Alarm& alarm, const Batch& candidate,
                                       const Batch& incumbent) const {
  return duration_similarity(alarm.expected_hold(), candidate.expected_hold()) >
         duration_similarity(alarm.expected_hold(), incumbent.expected_hold());
}

}  // namespace simty::alarm
