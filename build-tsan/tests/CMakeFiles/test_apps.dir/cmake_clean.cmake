file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/app_catalog_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/app_catalog_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/app_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/app_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/external_events_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/external_events_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/retry_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/retry_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/system_alarms_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/system_alarms_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/trace_replay_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/trace_replay_test.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/workload_test.cpp.o"
  "CMakeFiles/test_apps.dir/apps/workload_test.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
