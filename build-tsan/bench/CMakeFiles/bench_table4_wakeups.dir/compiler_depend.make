# Empty compiler generated dependencies file for bench_table4_wakeups.
# This may be replaced when dependencies are built.
