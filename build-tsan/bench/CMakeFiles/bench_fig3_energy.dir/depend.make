# Empty dependencies file for bench_fig3_energy.
# This may be replaced when dependencies are built.
