#pragma once
// Android 4.4's native alignment policy (paper §2.1, baseline "NATIVE").

#include "alarm/policy.hpp"

namespace simty::alarm {

/// Sequentially scans the queue and joins the first entry whose window
/// overlap (the entry's running window intersection) overlaps the new
/// alarm's window interval; otherwise a new entry is created. Uses window
/// intervals only — no grace, no hardware awareness.
class NativePolicy : public AlignmentPolicy {
 public:
  std::string name() const override { return "NATIVE"; }

  std::optional<std::size_t> select_batch(
      const Alarm& alarm,
      const std::vector<std::unique_ptr<Batch>>& queue) const override;
};

}  // namespace simty::alarm
