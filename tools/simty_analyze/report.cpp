// JSON rendering of an analysis Result (uploaded as a CI artifact).

#include <string>

#include "analyze.hpp"

namespace simty::analyze {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const Result& result) {
  std::string out = "{\n";
  out += "  \"files\": " + std::to_string(result.files) + ",\n";
  out += "  \"functions\": " + std::to_string(result.functions) + ",\n";
  out += "  \"call_edges\": " + std::to_string(result.call_edges) + ",\n";
  out += "  \"include_edges\": " + std::to_string(result.include_edges) + ",\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"check\": \"" + escape(f.check) + "\", ";
    out += "\"file\": \"" + escape(f.file) + "\", ";
    out += "\"line\": " + std::to_string(f.line) + ", ";
    out += "\"message\": \"" + escape(f.message) + "\", ";
    out += "\"chain\": [";
    for (std::size_t c = 0; c < f.chain.size(); ++c) {
      if (c) out += ", ";
      out += "\"" + escape(f.chain[c]) + "\"";
    }
    out += "]}";
  }
  out += result.findings.empty() ? "],\n" : "\n  ],\n";
  out += "  \"advisories\": [";
  for (std::size_t i = 0; i < result.advisories.size(); ++i) {
    const Advisory& a = result.advisories[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"check\": \"" + escape(a.check) + "\", ";
    out += "\"file\": \"" + escape(a.file) + "\", ";
    out += "\"line\": " + std::to_string(a.line) + ", ";
    out += "\"message\": \"" + escape(a.message) + "\"}";
  }
  out += result.advisories.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace simty::analyze
