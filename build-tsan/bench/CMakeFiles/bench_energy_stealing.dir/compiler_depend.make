# Empty compiler generated dependencies file for bench_energy_stealing.
# This may be replaced when dependencies are built.
