#include "usage/interactive.hpp"

#include <gtest/gtest.h>

#include "alarm/simty_policy.hpp"
#include "hw/battery.hpp"
#include "support/framework_fixture.hpp"

namespace simty::usage {
namespace {

class InteractiveDriverTest : public test::FrameworkFixture {};

TEST_F(InteractiveDriverTest, SessionsWakeHoldScreenAndSleepAfter) {
  init(std::make_unique<alarm::SimtyPolicy>());
  InteractiveDriver driver(sim_, *device_, *wakelocks_);
  driver.schedule({{at(100), Duration::seconds(60)},
                   {at(500), Duration::seconds(30)}});
  sim_.run_until(at(1000));
  EXPECT_EQ(driver.sessions_completed(), 2u);
  EXPECT_EQ(driver.screen_on_time(), Duration::seconds(90));
  EXPECT_EQ(device_->wakeups_for(hw::WakeReason::kUserButton), 2u);
  EXPECT_EQ(wakelocks_->usage(hw::Component::kScreen).cycles, 2u);
  EXPECT_EQ(wakelocks_->usage(hw::Component::kScreen).on_time, Duration::seconds(90));
  EXPECT_EQ(device_->state(), hw::DeviceState::kAsleep);
}

TEST_F(InteractiveDriverTest, NonWakeupAlarmRidesASession) {
  init(std::make_unique<alarm::SimtyPolicy>());
  alarm::AlarmSpec spec = alarm::AlarmSpec::repeating(
      "lazy", alarm::AppId{1}, alarm::RepeatMode::kStatic, Duration::seconds(600),
      0.1, 0.9);
  spec.kind = alarm::AlarmKind::kNonWakeup;
  const alarm::AlarmId lazy = manager_->register_alarm(spec, at(100), noop_task());

  InteractiveDriver driver(sim_, *device_, *wakelocks_);
  driver.schedule({{at(400), Duration::seconds(45)}});
  sim_.run_until(at(500));
  const auto recs = deliveries_of(lazy);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].delivered, at(400) + model_.wake_latency);
}

TEST_F(InteractiveDriverTest, PastSessionRejected) {
  init(std::make_unique<alarm::SimtyPolicy>());
  sim_.schedule_at(at(100), [] {});
  sim_.run_all();
  InteractiveDriver driver(sim_, *device_, *wakelocks_);
  EXPECT_THROW(driver.schedule({{at(50), Duration::seconds(10)}}), std::logic_error);
}

class MixedDayTest : public ::testing::Test {
 protected:
  static exp::ExperimentConfig config(exp::PolicyKind policy) {
    exp::ExperimentConfig c;
    c.policy = policy;
    c.workload = exp::WorkloadKind::kLight;
    return c;
  }
};

TEST_F(MixedDayTest, FullDayRunsAndAccounts) {
  const MixedDayResult day = simulate_day_mixed(config(exp::PolicyKind::kSimty),
                                                UsagePattern{}, 1);
  EXPECT_GT(day.sessions, 10u);
  EXPECT_GT(day.screen_on_time, Duration::minutes(20));
  // Most sessions wake the device; a few start while an alarm session
  // already has it awake (no button wakeup counted then).
  EXPECT_LE(day.user_wakeups, day.sessions);
  EXPECT_GE(day.user_wakeups, day.sessions * 3 / 4);
  EXPECT_GT(day.deliveries, 500.0);  // 24 h of the light workload
  // The non-wakeup housekeeping task got delivered by riding wakeups.
  EXPECT_GT(day.nonwakeup_deliveries, 10.0);
  EXPECT_GT(day.energy.total().joules_f(), 1000.0);
  EXPECT_GT(day.battery_days(hw::Battery::nexus5().capacity()), 1.0);
}

TEST_F(MixedDayTest, SimtyBeatsNativeOverAMixedDay) {
  const MixedDayResult native =
      simulate_day_mixed(config(exp::PolicyKind::kNative), UsagePattern{}, 1);
  const MixedDayResult simty =
      simulate_day_mixed(config(exp::PolicyKind::kSimty), UsagePattern{}, 1);
  // Identical sampled day (same seed): screen halves match exactly.
  EXPECT_EQ(native.screen_on_time, simty.screen_on_time);
  // Alignment still wins with interaction in the mix, by a smaller
  // relative margin than standby-only (screen energy is untouchable).
  EXPECT_LT(simty.energy.total().mj(), native.energy.total().mj());
  EXPECT_LT(simty.wakeups, native.wakeups);
  const double saving =
      1.0 - simty.energy.total().ratio(native.energy.total());
  EXPECT_GT(saving, 0.05);
  EXPECT_LT(saving, 0.25);
}

TEST_F(MixedDayTest, DeterministicPerSeed) {
  const MixedDayResult a =
      simulate_day_mixed(config(exp::PolicyKind::kSimty), UsagePattern{}, 4);
  const MixedDayResult b =
      simulate_day_mixed(config(exp::PolicyKind::kSimty), UsagePattern{}, 4);
  EXPECT_DOUBLE_EQ(a.energy.total().mj(), b.energy.total().mj());
  EXPECT_EQ(a.wakeups, b.wakeups);
}

}  // namespace
}  // namespace simty::usage
