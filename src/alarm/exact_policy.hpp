#pragma once
// No-alignment baseline: every alarm gets its own queue entry and is
// delivered at its nominal time. This is the "expected number if no
// alignment policy is applied" of Table 4's denominators, and a useful
// worst-case reference for the energy figures.

#include "alarm/policy.hpp"

namespace simty::alarm {

/// Never aligns anything.
class ExactPolicy : public AlignmentPolicy {
 public:
  std::string name() const override { return "EXACT"; }

  std::optional<std::size_t> select_batch(
      const Alarm&, const std::vector<std::unique_ptr<Batch>>&) const override {
    return std::nullopt;
  }
};

}  // namespace simty::alarm
