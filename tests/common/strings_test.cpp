#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace simty {
namespace {

TEST(Strings, StrFormat) {
  EXPECT_EQ(str_format("%d/%d", 733, 983), "733/983");
  EXPECT_EQ(str_format("%.1f mJ", 3650.0), "3650.0 mJ");
  EXPECT_EQ(str_format("empty"), "empty");
}

TEST(Strings, StrFormatLongOutput) {
  const std::string big(500, 'x');
  EXPECT_EQ(str_format("%s!", big.c_str()), big + "!");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("trailing,", ','), (std::vector<std::string>{"trailing", ""}));
}

TEST(Strings, SplitJoinRoundTrip) {
  const std::string s = "wifi|wps|accelerometer";
  EXPECT_EQ(join(split(s, '|'), "|"), s);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\r\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Percent) {
  EXPECT_EQ(percent(0.179), "17.9%");
  EXPECT_EQ(percent(0.3333, 0), "33%");
  EXPECT_EQ(percent(0.004, 2), "0.40%");
}

}  // namespace
}  // namespace simty
