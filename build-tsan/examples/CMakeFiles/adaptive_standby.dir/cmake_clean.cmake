file(REMOVE_RECURSE
  "CMakeFiles/adaptive_standby.dir/adaptive_standby.cpp.o"
  "CMakeFiles/adaptive_standby.dir/adaptive_standby.cpp.o.d"
  "adaptive_standby"
  "adaptive_standby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_standby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
