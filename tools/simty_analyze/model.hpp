#pragma once
// Internal per-file model built by the structural parser (model.cpp).
//
// One FileModel per SourceFile: the blanked source (comments/literals
// spaced out by the shared simty_lint lexer, preprocessor lines blanked on
// top of that so macro bodies can't unbalance the brace matcher), its
// direct includes, and every function definition found by the heuristic
// scope parser with the calls, nondeterminism seeds, lock scopes, and
// guarded-member uses inside it.

#include <cstddef>
#include <string>
#include <vector>

namespace simty::analyze {

/// A `#include "..."` with the spelling as written (quoted includes only;
/// <system> includes carry no layering or taint information here).
struct Include {
  std::string spelled;
  int line = 0;
  bool allowed = false;  // allow(include) / allow-file(include)
};

/// A call site `name(` inside a function body. `name` keeps an explicit
/// qualifier when written (`detail::now_ms`), unqualified otherwise.
struct Call {
  std::string name;
  int line = 0;
};

/// A nondeterminism source appearing textually inside a function body.
struct Seed {
  std::string what;  // e.g. "std::chrono::system_clock"
  int line = 0;
  bool allowed = false;  // allow(taint) on the seed line
};

/// A scope (offset range into the joined blanked text) holding a mutex:
/// either an RAII guard declaration or a bare `mu.lock()` (held to the end
/// of the innermost enclosing block — unlock() is not tracked; the repo
/// only uses RAII guards).
struct LockScope {
  std::string mutex;  // as written, trailing `_` kept: "mutex_", "mu"
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// One use (read or write) of a SIMTY_GUARDED_BY member.
struct GuardedUse {
  std::string var;
  int line = 0;
  std::size_t offset = 0;
  bool allowed = false;  // allow(lock) on the use line
};

/// A parsed function definition (has a body in this file).
struct Function {
  std::string name;        // unqualified: "submit"
  std::string qualified;   // as written: "ThreadPool::submit" or "submit"
  std::string display;     // "file:line name" for diagnostics
  int line = 0;
  std::size_t body_begin = 0;  // offset of '{' in joined text
  std::size_t body_end = 0;    // offset one past matching '}'
  bool is_special = false;     // ctor/dtor/operator — skipped by lock check
  bool taint_allowed = false;  // allow(taint) on the definition line
  std::vector<std::string> requires_mutexes;  // SIMTY_REQUIRES(...) args
  std::vector<Call> calls;
  std::vector<Seed> seeds;
  std::vector<LockScope> locks;
  std::vector<GuardedUse> guarded_uses;
};

/// A member declared `T name_ SIMTY_GUARDED_BY(mu_);` anywhere in the file.
struct GuardedVar {
  std::string var;
  std::string mutex;
  int line = 0;
  /// Innermost enclosing class at the declaration, empty for namespace or
  /// function scope (a static local). Uses are only checked inside member
  /// functions of `cls` — or, when empty, inside this same file — so a
  /// same-named member of an unrelated class never trips the check.
  std::string cls;
};

struct FileModel {
  std::string path;
  /// Blanked source joined with '\n' (preprocessor lines also blanked).
  std::string joined;
  /// Byte offset of each line's start in `joined` (1-based line -> index 0).
  std::vector<std::size_t> line_start;
  std::vector<Include> includes;
  std::vector<Function> functions;
  std::vector<GuardedVar> guarded;
  /// Identifiers this file declares at namespace/class scope (functions,
  /// classes, enums) — used by the IWYU pass to decide whether an include
  /// supplies anything the includer mentions.
  std::vector<std::string> provided;
  /// Checks disabled for the whole file via allow-file(...).
  std::vector<std::string> file_allows;
  /// Per-line allow(...) directives (1-based line -> index 0), kept so the
  /// lock pass can honour hatches on uses it discovers after cross-file
  /// guarded-variable resolution.
  std::vector<std::vector<std::string>> line_allows;
};

/// Parses one source file. Pure function of (path, content).
FileModel build_model(const std::string& path, const std::string& content);

/// 1-based line of `offset` in `model.joined`.
int line_of(const FileModel& model, std::size_t offset);

}  // namespace simty::analyze
