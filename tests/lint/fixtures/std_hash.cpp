// Fixture: std-hash rule — hash values are implementation-defined, so
// deterministic logic must not branch on them.
#include <cstddef>
#include <functional>
#include <string>

namespace fixture {

inline std::size_t bucket_of(const std::string& key) {
  return std::hash<std::string>{}(key) % 7;  // LINT-EXPECT: std-hash
}

inline std::size_t audited(const std::string& key) {
  return std::hash<std::string>{}(key);  // simty-lint: allow(std-hash)
}

}  // namespace fixture
