#include "sim/event_queue.hpp"

#include "common/check.hpp"

namespace simty::sim {

EventId EventQueue::schedule(TimePoint when, EventPriority priority, EventCallback cb,
                             std::string label) {
  SIMTY_CHECK_MSG(static_cast<bool>(cb), "EventQueue::schedule: empty callback");
  const Key key{when.us(), static_cast<int>(priority), next_seq_++};
  const EventId id{key.seq};
  events_.emplace(key, Entry{std::move(cb), std::move(label), id});
  index_.emplace(id.value, key);
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = index_.find(id.value);
  if (it == index_.end()) return false;
  events_.erase(it->second);
  index_.erase(it);
  return true;
}

TimePoint EventQueue::next_time() const {
  SIMTY_CHECK_MSG(!events_.empty(), "EventQueue::next_time on empty queue");
  return TimePoint::from_us(events_.begin()->first.when_us);
}

EventQueue::Fired EventQueue::pop() {
  SIMTY_CHECK_MSG(!events_.empty(), "EventQueue::pop on empty queue");
  auto it = events_.begin();
  Fired fired{TimePoint::from_us(it->first.when_us), std::move(it->second.callback),
              std::move(it->second.label)};
  index_.erase(it->second.id.value);
  events_.erase(it);
  return fired;
}

}  // namespace simty::sim
