#pragma once
// DRX/paging-cycle model for the cellular radio in connected standby.
//
// Where the alarm queue models *uplink-initiated* wakeups (the paper's
// economy), this models the downlink side the 5G literature optimizes
// (Rostami et al., arXiv 2001.00914 / 1911.04177): the network pages the
// device, and the device either listens for pages on the main radio at
// every discontinuous-reception (DRX) paging occasion — a fixed time grid,
// one short on-duration per cycle — or delegates listening to a wake-up
// receiver (hw::WakeupReceiver) whose listen power is orders of magnitude
// lower and answers pages after a configurable delay budget.
//
// Downlink page arrivals are a Poisson process on the pager's own forked
// rng stream. While the RRC machine is connected (FACH/DCH) pages ride the
// open connection and deliver immediately; while it is IDLE they queue:
//   - DRX mode: until the next paging occasion, whose on-duration is billed
//     as a kCellular listen span at DrxConfig::listen power;
//   - WuR mode: the receiver decodes the sequence (trigger impulse), and
//     one answer event fires after trigger latency + delay budget, batching
//     every page that lands inside the budget window into one promotion.
// Either way the answer wakes the device (kExternalPush), holds the CPU for
// page_hold, and drives RrcMachine::data_activity — one promotion per
// answered batch, exactly like a GCM push.
//
// Determinism: every decision is a pure function of (config, rng stream,
// sim event order); the pager never reads wall-clock state, so serial and
// --jobs runs are bit-identical, and all pending events serialize/rebind
// through snapshots (including a snapshot taken mid on-duration).

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "hw/device.hpp"
#include "hw/wur.hpp"
#include "metrics/histogram.hpp"
#include "net/rrc.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::net {

/// Paging/DRX scenario parameters. Cycle and on-duration are LTE/NR-ish
/// defaults (1.28 s paging cycle, 10 ms on-duration); `listen` is the main
/// radio's receive draw during the on-duration.
struct DrxConfig {
  Duration paging_cycle = Duration::millis(1280);
  Duration on_duration = Duration::millis(10);
  Power listen = Power::milliwatts(120.0);

  /// Mean gap of the Poisson downlink page arrivals.
  Duration mean_page_gap = Duration::seconds(40);

  /// Data activity (and CPU hold) per answered page batch.
  Duration page_hold = Duration::seconds(2);

  /// Answer pages via the wake-up receiver instead of DRX listening.
  bool wur = false;

  /// WuR mode only: wait this long after the trigger before answering, so
  /// pages arriving inside the window share one wake + one promotion. The
  /// delay-vs-energy knob of the WUR policy.
  Duration wur_delay_budget = Duration::zero();
};

/// Drives paging occasions, page arrivals, and answers; owns the page-delay
/// distribution. One per device; see the file comment.
class DrxPager {
 public:
  /// `wur` may be null (DRX mode); everything referenced must outlive the
  /// pager. In WuR mode the pager installs itself as the RRC machine's
  /// state observer to gate the receiver's listen rail to IDLE periods.
  DrxPager(sim::Simulator& sim, RrcMachine& rrc, hw::Device& device,
           hw::PowerBus& bus, hw::WakeupReceiver* wur, DrxConfig config,
           Rng rng);

  DrxPager(const DrxPager&) = delete;
  DrxPager& operator=(const DrxPager&) = delete;

  /// Schedules the first arrival and (DRX mode) the first paging occasion.
  void start();

  const DrxConfig& config() const { return config_; }

  /// Delay from page arrival to its batch's answer running on the CPU.
  const metrics::Histogram& page_delays() const { return delays_; }

  std::uint64_t pages_arrived() const { return pages_arrived_; }
  std::uint64_t pages_answered() const { return pages_answered_; }
  /// Pages that arrived while the radio was connected (no queueing).
  std::uint64_t immediate_pages() const { return immediate_pages_; }
  /// Paging occasions actually listened on the main radio (IDLE only).
  std::uint64_t occasions_listened() const { return occasions_listened_; }

  /// Main-radio time spent in DRX on-durations; finalize() flushes a span
  /// the horizon cuts open.
  Duration drx_listen_time() const { return drx_listen_time_; }

  void finalize(TimePoint horizon);

  /// Serializes queue, rng position, counters, histogram, and every pending
  /// event; restore() rebinds them and re-announces an open listen rail.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  void on_arrival();
  void on_occasion();
  void end_listen();
  void answer_now();
  void deliver_pending();
  void schedule_next_arrival();

  sim::Simulator& sim_;
  RrcMachine& rrc_;
  hw::Device& device_;
  hw::PowerBus& bus_;
  hw::WakeupReceiver* wur_;
  DrxConfig config_;
  Rng rng_;

  std::vector<TimePoint> pending_;  // arrival instants awaiting an answer
  std::optional<sim::EventId> arrival_event_;
  std::optional<sim::EventId> occasion_event_;
  std::optional<sim::EventId> listen_end_event_;
  std::optional<sim::EventId> answer_event_;

  bool listen_open_ = false;   // inside a DRX on-duration
  TimePoint listen_since_;
  Duration drx_listen_time_ = Duration::zero();

  std::uint64_t pages_arrived_ = 0;
  std::uint64_t pages_answered_ = 0;
  std::uint64_t immediate_pages_ = 0;
  std::uint64_t occasions_listened_ = 0;
  metrics::Histogram delays_{60.0, 600};
};

}  // namespace simty::net
