file(REMOVE_RECURSE
  "CMakeFiles/push_messaging.dir/push_messaging.cpp.o"
  "CMakeFiles/push_messaging.dir/push_messaging.cpp.o.d"
  "push_messaging"
  "push_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/push_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
