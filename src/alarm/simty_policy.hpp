#pragma once
// SIMTY: the paper's similarity-based alignment policy (§3.2).

#include "alarm/policy.hpp"
#include "alarm/similarity.hpp"

namespace simty::alarm {

/// Two-phase alignment. The *search phase* collects every applicable entry:
/// if either party is perceptible the time similarity must be High (window
/// overlap), otherwise Medium (grace overlap) also qualifies — this is what
/// guarantees perceptible alarms stay inside their windows and imperceptible
/// alarms inside their graces. The *selection phase* ranks applicable
/// entries by Table 1 (hardware similarity first, then time similarity) and
/// joins the first-found most-preferable one.
class SimtyPolicy : public AlignmentPolicy {
 public:
  explicit SimtyPolicy(SimilarityConfig config = {});

  std::string name() const override { return "SIMTY"; }

  const SimilarityConfig& config() const { return config_; }

  std::optional<std::size_t> select_batch(
      const Alarm& alarm,
      const std::vector<std::unique_ptr<Batch>>& queue) const override;

 protected:
  /// Tie-break hook among entries with equal Table-1 rank; the base policy
  /// keeps the first found (returns false = no preference). The duration-
  /// similarity extension overrides this.
  virtual bool prefers_over(const Alarm& alarm, const Batch& candidate,
                            const Batch& incumbent) const;

 private:
  SimilarityConfig config_;
};

}  // namespace simty::alarm
