#include "metrics/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace simty::metrics {
namespace {

TEST(Histogram, CountsMeanMinMax) {
  Histogram h(1.0, 10);
  for (const double v : {0.05, 0.15, 0.15, 0.35}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.mean(), 0.175, 1e-12);
  EXPECT_DOUBLE_EQ(h.min(), 0.05);
  EXPECT_DOUBLE_EQ(h.max(), 0.35);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OverflowBucket) {
  Histogram h(1.0, 10);
  h.add(0.5);
  h.add(2.5);
  h.add(1.0);  // boundary goes to overflow (range is [0, upper))
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 2.5);
}

TEST(Histogram, QuantilesOnUniformData) {
  Histogram h(1.0, 100);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.95), 0.95, 0.02);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 0.02);
  EXPECT_NEAR(h.quantile(1.0), 1.0, 0.02);
}

TEST(Histogram, QuantileOfPointMass) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 5; ++i) h.add(0.42);
  EXPECT_NEAR(h.quantile(0.5), 0.42, 0.1);  // within the bucket
  EXPECT_LE(h.quantile(1.0), 0.42 + 1e-12);  // clamped to observed max
}

TEST(Histogram, QuantileResolvesOverflowToMax) {
  Histogram h(1.0, 10);
  h.add(0.1);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, Guards) {
  EXPECT_THROW(Histogram(0.0, 10), std::logic_error);
  EXPECT_THROW(Histogram(1.0, 0), std::logic_error);
  Histogram h(1.0, 10);
  EXPECT_THROW(h.add(-0.1), std::logic_error);
  EXPECT_THROW(h.quantile(0.5), std::logic_error);  // empty
  h.add(0.5);
  EXPECT_THROW(h.quantile(1.5), std::logic_error);
}

TEST(Histogram, RenderShowsBarsAndOverflow) {
  Histogram h(1.0, 4);
  for (int i = 0; i < 8; ++i) h.add(0.1);
  h.add(0.6);
  h.add(3.0);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("########"), std::string::npos);
  EXPECT_NE(out.find("inf"), std::string::npos);
  EXPECT_EQ(Histogram(1.0, 4).render(), "(empty)\n");
}

}  // namespace
}  // namespace simty::metrics
