file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_energy.dir/bench_fig3_energy.cpp.o"
  "CMakeFiles/bench_fig3_energy.dir/bench_fig3_energy.cpp.o.d"
  "bench_fig3_energy"
  "bench_fig3_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
