#include "alarm/simty_policy.hpp"

namespace simty::alarm {

SimtyPolicy::SimtyPolicy(SimilarityConfig config) : config_(config) {}

int SimtyPolicy::rank_of(const TimeInterval& window, const TimeInterval& grace,
                         bool alarm_perceptible, const Alarm& alarm,
                         const Batch& entry) const {
  // Search phase: applicability in terms of user experience (§3.2.1).
  const SimilarityLevel time = time_similarity(
      window, grace, entry.window_interval(), entry.grace_interval(), config_);
  if (!is_applicable(time, alarm_perceptible, entry.perceptible())) return -1;

  // Selection phase: Table 1 preferability, hardware similarity first.
  const int hw_grade = hardware_grade(alarm.hardware(), entry.hardware(), config_);
  return preferability_rank(hw_grade, time);
}

std::optional<std::size_t> SimtyPolicy::select_batch(
    const Alarm& alarm, const std::vector<std::unique_ptr<Batch>>& queue) const {
  const TimeInterval window = alarm.window_interval();
  const TimeInterval grace = alarm.grace_interval();
  const bool alarm_perceptible = alarm.perceptible();

  std::optional<std::size_t> best;
  int best_rank = 0;

  // Linear reference implementation, differentially checked against the
  // indexed candidate path under slow queue checks.
  // simty-lint: allow(queue-scan)
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const int rank = rank_of(window, grace, alarm_perceptible, alarm, *queue[i]);
    if (rank < 0) continue;
    if (!best || rank < best_rank ||
        (rank == best_rank && prefers_over(alarm, *queue[i], *queue[*best]))) {
      best = i;
      best_rank = rank;
    }
  }
  return best;
}

std::optional<CandidateQuery> SimtyPolicy::candidate_query(
    const Alarm& alarm) const {
  // Applicability needs non-Low time similarity, i.e. at least grace
  // overlap; High (window overlap) implies it because windows are contained
  // in graces. So grace overlap is exactly the candidate condition —
  // kWindowOnly mode only shrinks applicability further, keeping the query
  // a superset.
  return CandidateQuery{alarm.grace_interval(), EntryIntervalKind::kGrace};
}

std::optional<std::size_t> SimtyPolicy::select_among(
    const Alarm& alarm, const std::vector<std::unique_ptr<Batch>>& queue,
    const std::vector<std::size_t>& candidates) const {
  const TimeInterval window = alarm.window_interval();
  const TimeInterval grace = alarm.grace_interval();
  const bool alarm_perceptible = alarm.perceptible();

  std::optional<std::size_t> best;
  int best_rank = 0;

  for (const std::size_t i : candidates) {
    const int rank = rank_of(window, grace, alarm_perceptible, alarm, *queue[i]);
    if (rank < 0) continue;
    if (!best || rank < best_rank ||
        (rank == best_rank && prefers_over(alarm, *queue[i], *queue[*best]))) {
      best = i;
      best_rank = rank;
      // Rank 1 (High/High) is Table 1's minimum; without a tie preference a
      // later equal-rank candidate loses first-found-wins, so nothing ahead
      // can displace this entry.
      if (best_rank == kBestPreferabilityRank && !has_tie_preference()) break;
    }
  }
  return best;
}

bool SimtyPolicy::prefers_over(const Alarm&, const Batch&, const Batch&) const {
  // First-found wins ties, as in the paper.
  return false;
}

}  // namespace simty::alarm
