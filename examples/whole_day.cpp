// A complete simulated day: the heavy standby workload PLUS real
// interactive sessions (screen-on periods sampled from a daily usage
// pattern), in one 24-hour discrete-event run — the ref [9] context with
// everything interleaving: alarms align between sessions, non-wakeup
// housekeeping rides whatever wakes the device first.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "hw/battery.hpp"
#include "usage/interactive.hpp"

using namespace simty;

int main() {
  usage::UsagePattern pattern;
  const hw::Battery pack = hw::Battery::nexus5();

  std::printf("simulating 24 h (heavy workload + sampled usage day)...\n\n");
  TextTable t("One mixed day, NATIVE vs SIMTY (same sampled sessions)");
  t.set_header({"Policy", "total (kJ)", "screen-on", "sessions", "wakeups",
                "non-wakeup rides", "battery (days)"});
  for (const exp::PolicyKind policy :
       {exp::PolicyKind::kNative, exp::PolicyKind::kSimty}) {
    exp::ExperimentConfig c;
    c.policy = policy;
    c.workload = exp::WorkloadKind::kHeavy;
    const usage::MixedDayResult day = usage::simulate_day_mixed(c, pattern, 1);
    t.add_row({exp::to_string(policy),
               str_format("%.2f", day.energy.total().joules_f() / 1000.0),
               str_format("%.0f min", day.screen_on_time.seconds_f() / 60.0),
               str_format("%llu", static_cast<unsigned long long>(day.sessions)),
               str_format("%llu", static_cast<unsigned long long>(day.wakeups)),
               str_format("%.0f", day.nonwakeup_deliveries),
               str_format("%.2f", day.battery_days(pack.capacity()))});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("The screen-on half of the day is identical under both policies;\n"
              "every saved joule comes from the standby gaps between sessions.\n");
  return 0;
}
