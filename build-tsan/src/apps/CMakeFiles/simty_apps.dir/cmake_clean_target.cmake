file(REMOVE_RECURSE
  "libsimty_apps.a"
)
