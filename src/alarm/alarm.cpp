#include "alarm/alarm.hpp"

#include "common/check.hpp"
#include "common/strings.hpp"

namespace simty::alarm {

const char* to_string(AlarmKind k) {
  switch (k) {
    case AlarmKind::kWakeup: return "wakeup";
    case AlarmKind::kNonWakeup: return "non-wakeup";
  }
  return "?";
}

const char* to_string(RepeatMode m) {
  switch (m) {
    case RepeatMode::kOneShot: return "one-shot";
    case RepeatMode::kStatic: return "static";
    case RepeatMode::kDynamic: return "dynamic";
  }
  return "?";
}

AlarmSpec AlarmSpec::repeating(std::string tag, AppId app, RepeatMode mode,
                               Duration repeat, double alpha, double beta) {
  SIMTY_CHECK_MSG(mode != RepeatMode::kOneShot,
                  "AlarmSpec::repeating: use one_shot() for one-shot alarms");
  AlarmSpec s;
  s.tag = std::move(tag);
  s.app = app;
  s.mode = mode;
  s.repeat_interval = repeat;
  s.window_length = repeat * alpha;
  s.grace_length = repeat * beta;
  s.validate();
  return s;
}

AlarmSpec AlarmSpec::one_shot(std::string tag, AppId app, Duration window) {
  AlarmSpec s;
  s.tag = std::move(tag);
  s.app = app;
  s.mode = RepeatMode::kOneShot;
  s.window_length = window;
  s.grace_length = window;  // one-shot alarms are perceptible: grace unused
  s.validate();
  return s;
}

void AlarmSpec::validate() const {
  SIMTY_CHECK_MSG(!tag.empty(), "alarm tag must not be empty");
  SIMTY_CHECK_MSG(!window_length.is_negative(), "window length must be >= 0");
  SIMTY_CHECK_MSG(grace_length >= window_length,
                  "grace interval must be no smaller than the window (§3.1.2)");
  if (mode == RepeatMode::kOneShot) {
    SIMTY_CHECK_MSG(repeat_interval.is_zero(),
                    "one-shot alarms have zero repeating interval");
  } else {
    SIMTY_CHECK_MSG(repeat_interval > Duration::zero(),
                    "repeating alarms need a positive repeating interval");
    SIMTY_CHECK_MSG(window_length < repeat_interval,
                    "window must be smaller than the repeating interval");
    SIMTY_CHECK_MSG(grace_length < repeat_interval,
                    "grace must be smaller than the repeating interval (§3.1.2)");
  }
}

Alarm::Alarm(AlarmId id, AlarmSpec spec, TimePoint nominal)
    : id_(id), spec_(std::move(spec)), nominal_(nominal) {
  spec_.validate();
  update_perceptibility();
}

TimeInterval Alarm::window_interval() const {
  return TimeInterval::from_length(nominal_, spec_.window_length);
}

TimeInterval Alarm::grace_interval() const {
  // Perceptible alarms must be delivered within their window regardless of
  // grace; exposing grace == window for them keeps entry attributes simple.
  if (perceptible()) return window_interval();
  return TimeInterval::from_length(nominal_, spec_.grace_length);
}

void Alarm::update_perceptibility() {
  perceptible_ = spec_.mode == RepeatMode::kOneShot || !hardware_known_ ||
                 hardware_.any_perceptible();
}

void Alarm::reschedule(TimePoint nominal) { nominal_ = nominal; }

void Alarm::record_delivery(hw::ComponentSet used, Duration hold) {
  SIMTY_CHECK(!hold.is_negative());
  ++delivery_count_;
  hardware_ = used;
  hardware_known_ = true;
  update_perceptibility();
  if (expected_hold_.is_zero()) {
    expected_hold_ = hold;
  } else {
    // Exponential moving average, biased to recent behaviour.
    expected_hold_ = Duration::micros(
        (expected_hold_.us() * 3 + hold.us()) / 4);
  }
}

std::string Alarm::to_string() const {
  return str_format("%s[%s %s rein=%s nominal=%.3fs hw=%s]", spec_.tag.c_str(),
                    alarm::to_string(spec_.kind), alarm::to_string(spec_.mode),
                    spec_.repeat_interval.to_string().c_str(), nominal_.seconds_f(),
                    hardware_.to_string().c_str());
}

}  // namespace simty::alarm
