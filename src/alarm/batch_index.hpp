#pragma once
// BatchIndex: an incrementally maintained interval index over the batch
// queue's entry intervals.
//
// The paper's search phase (§3.2.1) is an interval-overlap query: NATIVE
// joins an entry iff the entry's window overlap intersects the new alarm's
// window (§2.1), and SIMTY's applicability requires window-or-grace
// overlap. A full queue scan answers that in O(n) per insert — O(n²) across
// a dissolve or rebatch — which caps scaling well below the "hundreds of
// resident apps" target. This index answers it in O(log n + k) for k
// overlapping entries.
//
// Structure: an augmented treap (randomized BST; deterministic splitmix64
// priorities seeded by an insertion counter, so runs are bit-reproducible)
// keyed by (grace start, insertion seq), with each node carrying the max
// grace end in its subtree. Keying on the grace interval suffices for both
// query kinds: a batch's window overlap is contained in its grace overlap
// (every member's window is inside its grace, §3.1.2, and intersection
// preserves containment), so grace overlap is a superset of window overlap
// and kWindow queries just post-filter with the entry's cached window.
//
// Results are emitted in ascending queue position (each Batch carries its
// position, maintained by the AlarmManager) so the policies' first-found-
// wins tie-breaking is bit-identical to the linear scan they replace.

#include <cstdint>
#include <map>
#include <vector>

#include "alarm/batch.hpp"
#include "alarm/policy.hpp"
#include "common/arena.hpp"
#include "common/interval.hpp"

namespace simty::alarm {

/// Interval index over one batch queue. Holds non-owning pointers; the
/// owner must erase entries before destroying or mutating their intervals
/// (mutate via update()).
class BatchIndex {
 public:
  BatchIndex() = default;

  /// Backs the node slab with `arena` (per-shard in the fleet runner, so
  /// repeated runs reuse storage). Only legal before the first insert; the
  /// arena must outlive the index and must not be reset while it lives.
  void set_arena(common::Arena* arena) {
    nodes_.set_arena(arena);
    free_.set_arena(arena);
  }

  std::size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

  /// Drops every entry (the rebatch-all path).
  void clear();

  /// Indexes `batch` under its current grace interval, which must be
  /// non-empty (a queue invariant the manager asserts).
  void insert(const Batch* batch);

  /// Removes `batch`; it must be indexed.
  void erase(const Batch* batch);

  /// Re-keys `batch` after its intervals changed (a member joined).
  void update(const Batch* batch);

  /// Appends the queue positions of every indexed entry whose `kind`
  /// interval overlaps `interval`, in ascending queue position. O(log n + k)
  /// expected: the treap prunes subtrees whose max grace end precedes the
  /// query and subtrees whose keys start after it. An empty query interval
  /// overlaps nothing.
  void collect(const TimeInterval& interval, EntryIntervalKind kind,
               std::vector<std::size_t>& out) const;

  /// Insertion-counter position, carried across snapshot/restore so a
  /// restored index hands out the same priority stream as a straight run.
  /// (Tree shape never leaks into results — collect() sorts by queue
  /// position — but keeping the counter exact costs nothing.)
  std::uint64_t next_seq() const { return next_seq_; }
  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

  /// Every indexed batch in key order — for invariant audits only.
  // simty-lint: allow(hot-path-owning)
  std::vector<const Batch*> entries_inorder() const;

  /// Verifies internal invariants (BST order, heap order, max-end
  /// augmentation, slot bookkeeping); returns human-readable violations.
  // simty-lint: allow(hot-path-owning)
  std::vector<std::string> check_invariants() const;

 private:
  struct Node {
    std::int64_t start_us = 0;    // grace interval start
    std::int64_t end_us = 0;      // grace interval end
    std::int64_t max_end_us = 0;  // max end over this subtree
    std::uint64_t seq = 0;        // insertion counter: deterministic tie-break
    std::uint64_t prio = 0;       // deterministic treap priority
    const Batch* batch = nullptr;
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  /// True when node `a`'s key precedes node `b`'s.
  bool key_less(const Node& a, const Node& b) const {
    return a.start_us < b.start_us ||
           (a.start_us == b.start_us && a.seq < b.seq);
  }

  void pull(std::int32_t t);
  std::int32_t rotate_left(std::int32_t t);
  std::int32_t rotate_right(std::int32_t t);
  std::int32_t insert_node(std::int32_t t, std::int32_t n);
  std::int32_t erase_node(std::int32_t t, const Node& victim);
  void collect_node(std::int32_t t, std::int64_t qs, std::int64_t qe,
                    const TimeInterval& interval, EntryIntervalKind kind,
                    std::vector<std::size_t>& out) const;

  common::ArenaVector<Node> nodes_;          // slab; free slots recycled
  common::ArenaVector<std::int32_t> free_;   // recyclable slots
  std::int32_t root_ = -1;
  std::uint64_t next_seq_ = 1;
  /// Erase lookup only — never iterated, so the pointer ordering cannot
  /// leak into any deterministic result. Owning map is deliberate: erase
  /// needs stable log-time lookup, and rebuilds reuse the node slab.
  // simty-lint: allow(hot-path-owning)
  std::map<const Batch*, std::int32_t> slots_;
};

}  // namespace simty::alarm
