#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace simty::common {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena;
  auto* a = static_cast<std::uint8_t*>(arena.allocate(100, 8));
  auto* b = static_cast<std::uint8_t*>(arena.allocate(100, 8));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  std::memset(a, 0xaa, 100);
  std::memset(b, 0xbb, 100);
  EXPECT_EQ(a[0], 0xaa);
  EXPECT_EQ(a[99], 0xaa);
  EXPECT_EQ(b[0], 0xbb);
}

TEST(ArenaTest, HonorsRequestedAlignment) {
  Arena arena;
  arena.allocate(1, 1);  // misalign the bump pointer
  for (std::size_t align : {1u, 2u, 8u, 16u, 64u}) {
    EXPECT_TRUE(aligned_to(arena.allocate(3, align), align)) << "align " << align;
  }
}

TEST(ArenaTest, ZeroByteAllocationReturnsLivePointer) {
  Arena arena;
  EXPECT_NE(arena.allocate(0, 8), nullptr);
}

TEST(ArenaTest, GrowsBeyondFirstBlock) {
  Arena arena(256);
  // Far more than the first block can hold.
  for (int i = 0; i < 64; ++i) {
    auto* p = static_cast<std::uint8_t*>(arena.allocate(64, 64));
    ASSERT_NE(p, nullptr);
    std::memset(p, static_cast<int>(i), 64);
  }
  EXPECT_GE(arena.stats().block_allocs, 2u);
  EXPECT_GE(arena.stats().reserved_bytes, 64u * 64u);
}

TEST(ArenaTest, ResetRetainsBlocksAndRewindsUsage) {
  Arena arena(256);
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  const auto before = arena.stats();
  EXPECT_GT(before.used_bytes, 0u);

  arena.reset();
  EXPECT_EQ(arena.stats().used_bytes, 0u);
  EXPECT_EQ(arena.stats().block_allocs, before.block_allocs);
  EXPECT_EQ(arena.stats().reserved_bytes, before.reserved_bytes);
  EXPECT_EQ(arena.stats().resets, before.resets + 1);

  // The second life replays the same allocation pattern without growing.
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.stats().block_allocs, before.block_allocs);
}

TEST(ArenaVectorTest, PushIndexPopRoundTripOnArena) {
  Arena arena;
  ArenaVector<int> v(&arena);
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  v.pop_back();
  EXPECT_EQ(v.size(), 999u);
  EXPECT_EQ(v.back(), 998);
}

TEST(ArenaVectorTest, HeapFallbackWorksWithoutArena) {
  ArenaVector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 99);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_GT(v.capacity(), 0u);  // clear keeps capacity
}

TEST(ArenaVectorTest, OveralignedStorageIsHonoredOnBothPaths) {
  struct Key {
    std::uint64_t a, b;
  };
  Arena arena;
  ArenaVector<Key, 64> on_arena(&arena);
  on_arena.push_back({1, 2});
  EXPECT_TRUE(aligned_to(on_arena.data(), 64));

  ArenaVector<Key, 64> on_heap;
  on_heap.push_back({3, 4});
  EXPECT_TRUE(aligned_to(on_heap.data(), 64));
}

TEST(ArenaVectorTest, GrowthMovesElements) {
  struct Tracked {
    int value = 0;
    int moved = 0;
    explicit Tracked(int v) : value(v) {}
    Tracked(Tracked&& other) noexcept : value(other.value), moved(other.moved + 1) {}
    Tracked& operator=(Tracked&&) = delete;
  };
  Arena arena;
  ArenaVector<Tracked> v(&arena);
  for (int i = 0; i < 100; ++i) v.emplace_back(i);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(v[static_cast<std::size_t>(i)].value, i);
  }
  EXPECT_GT(v[0].moved, 0);  // survived at least one growth relocation
}

TEST(ArenaVectorTest, ResizeValueInitializesAndShrinksDestroying) {
  ArenaVector<int> v;
  v.resize(8);
  EXPECT_EQ(v.size(), 8u);
  for (const int x : v) EXPECT_EQ(x, 0);
  v[7] = 42;
  v.resize(4);
  EXPECT_EQ(v.size(), 4u);
  v.resize(8);
  EXPECT_EQ(v[7], 0);  // re-grown tail is value-initialized again
}

TEST(ArenaVectorTest, MoveTransfersStorage) {
  Arena arena;
  ArenaVector<int> a(&arena);
  a.push_back(7);
  ArenaVector<int> b(std::move(a));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 7);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): moved-from is empty
  a = std::move(b);
  EXPECT_EQ(a.size(), 1u);
}

TEST(ArenaVectorTest, SetArenaOnlyBeforeFirstAllocation) {
  Arena arena;
  ArenaVector<int> v;
  v.set_arena(&arena);  // legal: nothing allocated yet
  v.push_back(1);
  EXPECT_THROW(v.set_arena(nullptr), std::exception);
}

}  // namespace
}  // namespace simty::common
