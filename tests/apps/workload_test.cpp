#include "apps/workload.hpp"

#include <gtest/gtest.h>

#include "alarm/native_policy.hpp"
#include "apps/trace_replay.hpp"
#include "support/framework_fixture.hpp"

namespace simty::apps {
namespace {

class WorkloadTest : public test::FrameworkFixture {};

TEST_F(WorkloadTest, LightDeploys12Apps) {
  init(std::make_unique<alarm::NativePolicy>());
  Workload w = Workload::light(WorkloadConfig{});
  EXPECT_EQ(w.apps().size(), 12u);
  w.deploy(sim_, *manager_);
  sim_.run_until(at(300));  // launches done (5 + 12*7 < 300)
  EXPECT_EQ(manager_->stats().registrations, 12u);
  for (const auto& app : w.apps()) {
    EXPECT_TRUE(app->alarm_id().has_value());
  }
}

TEST_F(WorkloadTest, HeavyDeploys18AppsWithImitatedIrregulars) {
  init(std::make_unique<alarm::NativePolicy>());
  Workload w = Workload::heavy(WorkloadConfig{});
  EXPECT_EQ(w.apps().size(), 18u);
  int imitated = 0;
  for (const auto& app : w.apps()) {
    if (dynamic_cast<const ImitatedApp*>(app.get()) != nullptr) ++imitated;
  }
  EXPECT_EQ(imitated, 5);  // the five starred Table 3 apps
}

TEST_F(WorkloadTest, LaunchesAreStaggered) {
  init(std::make_unique<alarm::NativePolicy>());
  WorkloadConfig c;
  c.first_launch = Duration::seconds(5);
  c.launch_gap = Duration::seconds(7);
  Workload w = Workload::light(c);
  w.deploy(sim_, *manager_);
  sim_.run_until(at(6));
  EXPECT_EQ(manager_->stats().registrations, 1u);  // only the first launched
  sim_.run_until(at(13));
  EXPECT_EQ(manager_->stats().registrations, 2u);
  sim_.run_until(at(100));
  EXPECT_EQ(manager_->stats().registrations, 12u);
}

TEST_F(WorkloadTest, BetaPropagatesToAlarms) {
  init(std::make_unique<alarm::NativePolicy>());
  WorkloadConfig c;
  c.beta = 0.80;
  Workload w = Workload::light(c);
  w.deploy(sim_, *manager_);
  sim_.run_until(at(200));
  for (const auto& app : w.apps()) {
    const alarm::Alarm* a = manager_->find(*app->alarm_id());
    ASSERT_NE(a, nullptr);
    const double grace_factor =
        a->spec().grace_length.ratio(a->spec().repeat_interval);
    EXPECT_NEAR(grace_factor, std::max(0.80, app->profile().alpha), 1e-9);
  }
}

TEST_F(WorkloadTest, ImitatedTracesIndependentOfRunSeed) {
  // Fairness requirement (§4.1): irregular apps replay the SAME trace no
  // matter the run seed, so NATIVE and SIMTY see identical behaviour.
  WorkloadConfig c1;
  c1.seed = 1;
  WorkloadConfig c2;
  c2.seed = 2;
  Workload w1 = Workload::heavy(c1);
  Workload w2 = Workload::heavy(c2);
  for (std::size_t i = 0; i < w1.apps().size(); ++i) {
    const auto* a = dynamic_cast<const ImitatedApp*>(w1.apps()[i].get());
    const auto* b = dynamic_cast<const ImitatedApp*>(w2.apps()[i].get());
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a == nullptr) continue;
    ASSERT_EQ(a->trace().entries.size(), b->trace().entries.size());
    for (std::size_t j = 0; j < a->trace().entries.size(); ++j) {
      EXPECT_EQ(a->trace().entries[j].hold, b->trace().entries[j].hold);
    }
  }
}

TEST_F(WorkloadTest, SyntheticGeneratesRequestedCount) {
  init(std::make_unique<alarm::NativePolicy>());
  Workload w = Workload::synthetic(25, WorkloadConfig{});
  EXPECT_EQ(w.apps().size(), 25u);
  for (const auto& app : w.apps()) {
    EXPECT_GT(app->profile().repeat, Duration::zero());
    EXPECT_FALSE(app->profile().hardware.empty());
  }
  EXPECT_THROW(Workload::synthetic(0, WorkloadConfig{}), std::logic_error);
}

TEST_F(WorkloadTest, FromProfilesBuildsCustomScenario) {
  init(std::make_unique<alarm::NativePolicy>());
  std::vector<AppProfile> profiles;
  AppProfile p;
  p.name = "custom";
  p.repeat = Duration::seconds(120);
  p.alpha = 0.5;
  p.mode = alarm::RepeatMode::kStatic;
  p.hardware = hw::ComponentSet{hw::Component::kWifi};
  p.base_hold = Duration::seconds(2);
  profiles.push_back(p);
  p.name = "custom-irregular";
  p.irregular = true;
  profiles.push_back(p);

  Workload w = Workload::from_profiles(profiles, WorkloadConfig{});
  ASSERT_EQ(w.apps().size(), 2u);
  EXPECT_EQ(w.apps()[0]->profile().name, "custom");
  EXPECT_NE(dynamic_cast<const ImitatedApp*>(w.apps()[1].get()), nullptr);
  EXPECT_THROW(Workload::from_profiles({}, WorkloadConfig{}), std::logic_error);

  w.deploy(sim_, *manager_);
  sim_.run_until(at(400));
  EXPECT_GT(manager_->stats().deliveries, 0u);
}

TEST_F(WorkloadTest, SyntheticDeterministicPerSeed) {
  WorkloadConfig c;
  c.seed = 5;
  Workload a = Workload::synthetic(10, c);
  Workload b = Workload::synthetic(10, c);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.apps()[i]->profile().repeat, b.apps()[i]->profile().repeat);
    EXPECT_EQ(a.apps()[i]->profile().hardware.bits(),
              b.apps()[i]->profile().hardware.bits());
  }
}

}  // namespace
}  // namespace simty::apps
