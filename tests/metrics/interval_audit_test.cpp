#include "metrics/interval_audit.hpp"

#include <gtest/gtest.h>

namespace simty::metrics {
namespace {

TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

alarm::DeliveryRecord record(std::uint64_t id, std::int64_t delivered,
                             std::int64_t repeat, alarm::RepeatMode mode,
                             bool perceptible = false) {
  alarm::DeliveryRecord r;
  r.id = alarm::AlarmId{id};
  r.tag = "a" + std::to_string(id);
  r.mode = mode;
  r.repeat_interval = Duration::seconds(repeat);
  r.delivered = at(delivered);
  r.was_perceptible = perceptible;
  return r;
}

TEST(IntervalAudit, TracksMinMaxGapsPerAlarm) {
  IntervalAudit audit;
  audit.observe(record(1, 100, 100, alarm::RepeatMode::kStatic));
  audit.observe(record(1, 210, 100, alarm::RepeatMode::kStatic));
  audit.observe(record(1, 300, 100, alarm::RepeatMode::kStatic));
  const GapStats& s = audit.stats().at(1);
  EXPECT_EQ(s.deliveries, 3u);
  EXPECT_EQ(s.min_gap, Duration::seconds(90));
  EXPECT_EQ(s.max_gap, Duration::seconds(110));
  EXPECT_DOUBLE_EQ(s.min_gap_over_repeat(), 0.9);
  EXPECT_DOUBLE_EQ(s.max_gap_over_repeat(), 1.1);
}

TEST(IntervalAudit, SeparatesAlarms) {
  IntervalAudit audit;
  audit.observe(record(1, 100, 100, alarm::RepeatMode::kStatic));
  audit.observe(record(2, 150, 200, alarm::RepeatMode::kDynamic));
  audit.observe(record(1, 200, 100, alarm::RepeatMode::kStatic));
  audit.observe(record(2, 350, 200, alarm::RepeatMode::kDynamic));
  EXPECT_EQ(audit.stats().at(1).max_gap, Duration::seconds(100));
  EXPECT_EQ(audit.stats().at(2).max_gap, Duration::seconds(200));
}

TEST(IntervalAudit, OneShotsIgnored) {
  IntervalAudit audit;
  audit.observe(record(1, 100, 0, alarm::RepeatMode::kOneShot));
  EXPECT_TRUE(audit.stats().empty());
}

TEST(IntervalAudit, UpperBoundViolationDetected) {
  IntervalAudit audit;
  // Gap of 2.2x ReIn with beta 0.96 -> bound 1.97 violated.
  audit.observe(record(1, 100, 100, alarm::RepeatMode::kStatic));
  audit.observe(record(1, 320, 100, alarm::RepeatMode::kStatic));
  const auto violations = audit.check_bounds(0.96);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_TRUE(violations[0].upper);
  EXPECT_DOUBLE_EQ(violations[0].observed_ratio, 2.2);
}

TEST(IntervalAudit, LowerBoundDependsOnRepeatMode) {
  // Gap of 0.5x ReIn: legal for static (bound 1 - 0.96 = 0.04) but illegal
  // for dynamic (bound 1.0).
  IntervalAudit s_audit;
  s_audit.observe(record(1, 100, 100, alarm::RepeatMode::kStatic));
  s_audit.observe(record(1, 150, 100, alarm::RepeatMode::kStatic));
  EXPECT_TRUE(s_audit.check_bounds(0.96).empty());

  IntervalAudit d_audit;
  d_audit.observe(record(1, 100, 100, alarm::RepeatMode::kDynamic));
  d_audit.observe(record(1, 150, 100, alarm::RepeatMode::kDynamic));
  const auto violations = d_audit.check_bounds(0.96);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_FALSE(violations[0].upper);
}

TEST(IntervalAudit, InBoundsGapsPass) {
  IntervalAudit audit;
  audit.observe(record(1, 100, 100, alarm::RepeatMode::kDynamic));
  audit.observe(record(1, 295, 100, alarm::RepeatMode::kDynamic));  // 1.95x
  EXPECT_TRUE(audit.check_bounds(0.96).empty());
}

TEST(IntervalAudit, SlackAbsorbsWakeLatency) {
  IntervalAudit audit;
  // Dynamic gap a hair under ReIn (latency jitter): with default slack this
  // passes; with zero slack it trips.
  audit.observe(record(1, 100, 100, alarm::RepeatMode::kDynamic));
  alarm::DeliveryRecord second = record(1, 200, 100, alarm::RepeatMode::kDynamic);
  second.delivered = at(200) - Duration::millis(400);
  audit.observe(second);
  EXPECT_TRUE(audit.check_bounds(0.96).empty());
  EXPECT_EQ(audit.check_bounds(0.96, 0.0).size(), 1u);
}

TEST(IntervalAudit, WorstGapRatioSkipsPerceptibleAlarms) {
  IntervalAudit audit;
  // Imperceptible alarm with a 1.9x gap.
  audit.observe(record(1, 100, 100, alarm::RepeatMode::kStatic));
  audit.observe(record(1, 290, 100, alarm::RepeatMode::kStatic));
  // Perceptible alarm with a 3x gap (e.g. user silenced it) must not count.
  audit.observe(record(2, 100, 100, alarm::RepeatMode::kStatic, true));
  audit.observe(record(2, 400, 100, alarm::RepeatMode::kStatic, true));
  EXPECT_DOUBLE_EQ(audit.worst_gap_ratio(), 1.9);
}

TEST(IntervalAudit, FirstDeliveryPerceptibleDoesNotExcludeAlarm) {
  IntervalAudit audit;
  // Footnote-5 pattern: first delivery perceptible (unknown hardware),
  // subsequent ones imperceptible.
  audit.observe(record(1, 100, 100, alarm::RepeatMode::kStatic, true));
  audit.observe(record(1, 290, 100, alarm::RepeatMode::kStatic, false));
  EXPECT_DOUBLE_EQ(audit.worst_gap_ratio(), 1.9);
}

TEST(IntervalAudit, SingleDeliveryHasNoGapData) {
  IntervalAudit audit;
  audit.observe(record(1, 100, 100, alarm::RepeatMode::kStatic));
  EXPECT_TRUE(audit.check_bounds(0.96).empty());
  EXPECT_DOUBLE_EQ(audit.worst_gap_ratio(), 0.0);
}

}  // namespace
}  // namespace simty::metrics
