// Snapshot container format: field-level round-trips, version and tag
// discipline, the generic decode/diff used by tools/snapshot_diff, and —
// the hostile-input satellite — a randomized-corruption sweep asserting
// that every mangled container is either decoded or rejected with
// std::logic_error via SIMTY_CHECK, never undefined behavior. The suite
// runs under the sanitizer CI job, which is what turns "never UB" from a
// comment into a checked property.

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::snapshot {
namespace {

std::string sample_snapshot() {
  Writer w;
  w.begin_section("alpha", 3);
  w.u8(7);
  w.u32(123456);
  w.u64(0xdeadbeefcafef00dull);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.boolean(true);
  w.str("hello snapshot");
  w.bytes(std::string("\x00\x01\x02\xff", 4));
  w.end_section();
  w.begin_section("beta", 1);
  w.u64(9);
  w.end_section();
  return w.finish();
}

TEST(SnapshotFormat, EveryFieldTypeRoundTripsExactly) {
  const Reader reader(sample_snapshot());
  ASSERT_TRUE(reader.has_section("alpha"));
  ASSERT_TRUE(reader.has_section("beta"));
  EXPECT_FALSE(reader.has_section("gamma"));
  SectionReader s = reader.section("alpha", 3);
  EXPECT_EQ(s.u8(), 7u);
  EXPECT_EQ(s.u32(), 123456u);
  EXPECT_EQ(s.u64(), 0xdeadbeefcafef00dull);
  EXPECT_EQ(s.i64(), -42);
  EXPECT_EQ(s.f64(), 3.141592653589793);
  EXPECT_TRUE(s.boolean());
  EXPECT_EQ(s.str(), "hello snapshot");
  EXPECT_EQ(s.bytes(), std::string("\x00\x01\x02\xff", 4));
  EXPECT_TRUE(s.at_end());
}

TEST(SnapshotFormat, TagDisciplineCatchesSchemaSkew) {
  const Reader reader(sample_snapshot());
  SectionReader s = reader.section("alpha", 3);
  EXPECT_EQ(s.peek_tag(), static_cast<std::uint8_t>(FieldType::kU8));
  // Reading a u64 where a u8 was written fails loudly instead of
  // desynchronizing the stream.
  EXPECT_THROW(s.u64(), std::logic_error);
}

TEST(SnapshotFormat, VersionMismatchIsRejected) {
  const Reader reader(sample_snapshot());
  EXPECT_THROW(reader.section("alpha", 2), std::logic_error);
  EXPECT_THROW(reader.section("missing", 1), std::logic_error);
}

TEST(SnapshotFormat, CheckCountGuardsHostileAllocationSizes) {
  const Reader reader(sample_snapshot());
  SectionReader s = reader.section("beta", 1);
  // One u64 field (9 wire bytes) remains; a claimed count of a million
  // 9-byte items cannot fit and must be rejected before any reserve.
  EXPECT_THROW(s.check_count(1u << 20, 9), std::logic_error);
  s.check_count(0, 9);  // zero items always fit
}

TEST(SnapshotFormat, DecodeAndDiffNameTheFirstDivergence) {
  const DecodedSnapshot a = decode_snapshot(sample_snapshot());
  ASSERT_EQ(a.sections.size(), 2u);
  EXPECT_EQ(a.sections[0].name, "alpha");
  EXPECT_EQ(a.sections[0].version, 3u);
  ASSERT_EQ(a.sections[0].fields.size(), 8u);

  EXPECT_TRUE(diff_snapshots(a, a).equal);

  Writer w;
  w.begin_section("alpha", 3);
  w.u8(7);
  w.u32(999999);  // diverges at field #2
  w.end_section();
  const SnapshotDiff diff = diff_snapshots(a, decode_snapshot(w.finish()));
  EXPECT_FALSE(diff.equal);
  EXPECT_NE(diff.summary.find("alpha"), std::string::npos);
}

TEST(SnapshotFormat, FileRoundTripAndAtomicWrite) {
  const std::string path = ::testing::TempDir() + "snapshot_format_test.snap";
  const std::string bytes = sample_snapshot();
  write_file_atomic(path, bytes);
  EXPECT_EQ(read_file(path), bytes);
  // Overwrite via the atomic path: the rename replaces, never appends.
  write_file_atomic(path, bytes);
  EXPECT_EQ(read_file(path), bytes);
  std::remove(path.c_str());
  EXPECT_THROW(read_file(path), std::runtime_error);
}

TEST(SnapshotFormat, ObviousMalformationsAreRejected) {
  const std::string good = sample_snapshot();
  EXPECT_THROW(Reader(""), std::logic_error);
  EXPECT_THROW(Reader("SMTYSNP9" + good.substr(8)), std::logic_error);
  EXPECT_THROW(Reader(good.substr(0, 10)), std::logic_error);
  EXPECT_THROW(Reader(good + "trailing"), std::logic_error);
}

TEST(SnapshotFormat, RandomizedCorruptionNeverEscapesTheChecks) {
  // Fuzz-style sweep: mangle a real container thousands of ways — byte
  // flips, multi-byte stomps, truncations, length-field inflations — and
  // require every outcome to be "decoded fine" or "std::logic_error".
  // Anything else (crash, hang, other exception type) fails the test; UB
  // is caught by the sanitizer job running this same sweep.
  const std::string good = sample_snapshot();
  Rng rng(0xf02d, 17);
  int rejected = 0, survived = 0;
  for (int round = 0; round < 4000; ++round) {
    std::string bytes = good;
    const std::uint32_t kind = rng.next_below(4);
    if (kind == 0) {  // single byte flip
      bytes[rng.next_below(static_cast<std::uint32_t>(bytes.size()))] ^=
          static_cast<char>(1 + rng.next_below(255));
    } else if (kind == 1) {  // stomp a run of bytes
      const std::size_t at =
          rng.next_below(static_cast<std::uint32_t>(bytes.size()));
      const std::size_t len =
          std::min<std::size_t>(1 + rng.next_below(8), bytes.size() - at);
      for (std::size_t i = 0; i < len; ++i) {
        bytes[at + i] = static_cast<char>(rng.next_u32());
      }
    } else if (kind == 2) {  // truncate
      bytes.resize(rng.next_below(static_cast<std::uint32_t>(bytes.size())));
    } else {  // inflate: graft random tail bytes
      const std::size_t extra = 1 + rng.next_below(32);
      for (std::size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<char>(rng.next_u32()));
      }
    }
    try {
      const DecodedSnapshot decoded = decode_snapshot(bytes);
      // Data-byte corruption can still be a well-formed container;
      // decoding it is the acceptable outcome.
      survived += static_cast<int>(!decoded.sections.empty());
    } catch (const std::logic_error&) {
      ++rejected;  // the clean rejection path
    }
  }
  // The sweep must exercise both outcomes, or the corruptions are too
  // tame / too wild to mean anything.
  EXPECT_GT(rejected, 100);
  EXPECT_GT(survived, 10);
}

}  // namespace
}  // namespace simty::snapshot
