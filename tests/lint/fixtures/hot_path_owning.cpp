// Fixture: hot-path-owning rule — hot-path files own storage through the
// arena-backed types; owning std:: containers heap-allocate on growth and
// defeat the O(1) whole-run arena reset. Borrowing (references, pointers)
// is fine.
#include <map>
#include <vector>

namespace fixture {

struct HotState {
  std::vector<int> slots;             // LINT-EXPECT: hot-path-owning
  std::map<int, int> index;           // LINT-EXPECT: hot-path-owning
  std::unordered_map<int, int> seen;  // LINT-EXPECT: hot-path-owning
  std::deque<long> backlog;           // LINT-EXPECT: hot-path-owning
  std::vector<int> audited;           // simty-lint: allow(hot-path-owning)

  // Borrowed views of owning containers are not owning.
  const std::vector<int>& borrowed;
  std::map<int, int>* indexed;

  int consume(const std::vector<int>& batch, std::vector<int>* out);
};

// A project type that happens to share a container name must not match.
struct Registry {
  int list(int id);
  int set(int id);
};

}  // namespace fixture
