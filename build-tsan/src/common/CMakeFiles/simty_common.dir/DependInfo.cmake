
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/interval.cpp" "src/common/CMakeFiles/simty_common.dir/interval.cpp.o" "gcc" "src/common/CMakeFiles/simty_common.dir/interval.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/simty_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/simty_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/simty_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/simty_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/simty_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/simty_common.dir/stats.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/common/CMakeFiles/simty_common.dir/strings.cpp.o" "gcc" "src/common/CMakeFiles/simty_common.dir/strings.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/common/CMakeFiles/simty_common.dir/table.cpp.o" "gcc" "src/common/CMakeFiles/simty_common.dir/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/simty_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/simty_common.dir/thread_pool.cpp.o.d"
  "/root/repo/src/common/time.cpp" "src/common/CMakeFiles/simty_common.dir/time.cpp.o" "gcc" "src/common/CMakeFiles/simty_common.dir/time.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/common/CMakeFiles/simty_common.dir/units.cpp.o" "gcc" "src/common/CMakeFiles/simty_common.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
