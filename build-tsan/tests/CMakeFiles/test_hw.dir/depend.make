# Empty dependencies file for test_hw.
# This may be replaced when dependencies are built.
