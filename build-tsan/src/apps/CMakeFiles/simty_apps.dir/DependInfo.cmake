
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cpp" "src/apps/CMakeFiles/simty_apps.dir/app.cpp.o" "gcc" "src/apps/CMakeFiles/simty_apps.dir/app.cpp.o.d"
  "/root/repo/src/apps/app_catalog.cpp" "src/apps/CMakeFiles/simty_apps.dir/app_catalog.cpp.o" "gcc" "src/apps/CMakeFiles/simty_apps.dir/app_catalog.cpp.o.d"
  "/root/repo/src/apps/external_events.cpp" "src/apps/CMakeFiles/simty_apps.dir/external_events.cpp.o" "gcc" "src/apps/CMakeFiles/simty_apps.dir/external_events.cpp.o.d"
  "/root/repo/src/apps/system_alarms.cpp" "src/apps/CMakeFiles/simty_apps.dir/system_alarms.cpp.o" "gcc" "src/apps/CMakeFiles/simty_apps.dir/system_alarms.cpp.o.d"
  "/root/repo/src/apps/trace_replay.cpp" "src/apps/CMakeFiles/simty_apps.dir/trace_replay.cpp.o" "gcc" "src/apps/CMakeFiles/simty_apps.dir/trace_replay.cpp.o.d"
  "/root/repo/src/apps/workload.cpp" "src/apps/CMakeFiles/simty_apps.dir/workload.cpp.o" "gcc" "src/apps/CMakeFiles/simty_apps.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/simty_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/simty_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hw/CMakeFiles/simty_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/simty_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/alarm/CMakeFiles/simty_alarm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
