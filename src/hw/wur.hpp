#pragma once
// Low-power wake-up receiver (WuR).
//
// A companion receiver that listens for wake-up sequences while the main
// radio sleeps (Rostami et al., arXiv 2001.00914 / 1911.04177): its listen
// power is orders of magnitude below the main radio's DRX paging draw, so a
// device that answers pages via the WuR can skip the per-cycle on-duration
// entirely and instead pay a small decode impulse plus a trigger-to-radio
// latency per page. The receiver publishes its listen rail on the PowerBus
// as Component::kWur — it never holds a wakelock, so it stays serializable
// at device-quiescent instants (WakelockManager snapshots require zero held
// locks). The net-layer DRX pager decides *when* it listens and triggers.

#include <cstdint>

#include "common/time.hpp"
#include "common/units.hpp"
#include "hw/power_bus.hpp"
#include "sim/simulator.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::hw {

/// Electrical/timing parameters of the wake-up receiver. The defaults
/// mirror PowerModel::nexus5()'s kWur entry; the trigger energy covers the
/// sequence decode plus the interrupt to the main-radio baseband.
struct WurConfig {
  Power listen = Power::milliwatts(0.1);
  Energy wake_trigger = Energy::millijoules(2.0);
  Duration wake_latency = Duration::millis(15);
};

/// The receiver itself: a listen rail plus a trigger impulse counter. All
/// state is a pure function of the call sequence, so serial and parallel
/// runs (which never share a receiver) stay bit-identical.
class WakeupReceiver {
 public:
  WakeupReceiver(sim::Simulator& sim, WurConfig config, PowerBus& bus);

  WakeupReceiver(const WakeupReceiver&) = delete;
  WakeupReceiver& operator=(const WakeupReceiver&) = delete;

  const WurConfig& config() const { return config_; }

  /// Powers the listen rail on/off (idempotent). The pager toggles this
  /// with the RRC state: listening only while the main radio is IDLE.
  void start_listening();
  void stop_listening();
  bool listening() const { return listening_; }

  /// Decodes one wake-up sequence: pays the trigger impulse and returns the
  /// latency until the main radio can act on it. Requires listening().
  Duration trigger();

  std::uint64_t triggers() const { return triggers_; }

  /// Energy spent on triggers so far (impulses are bussed under the "wur"
  /// tag, so the accountant attributes them to kWur as activation energy).
  Energy trigger_energy() const { return config_.wake_trigger * static_cast<double>(triggers_); }

  /// Accumulated listen time; finalize() flushes the open span.
  Duration listen_time() const { return listen_time_; }
  void finalize(TimePoint now);

  /// Serializes rail state and counters; restore() re-announces the listen
  /// rail so a fresh listener stack starts from the restored state.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  sim::Simulator& sim_;
  WurConfig config_;
  PowerBus& bus_;

  bool listening_ = false;
  TimePoint listening_since_;
  Duration listen_time_ = Duration::zero();
  std::uint64_t triggers_ = 0;
};

}  // namespace simty::hw
