file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_delay.dir/bench_fig4_delay.cpp.o"
  "CMakeFiles/bench_fig4_delay.dir/bench_fig4_delay.cpp.o.d"
  "bench_fig4_delay"
  "bench_fig4_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
