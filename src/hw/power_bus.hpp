#pragma once
// Power event bus: the seam between the device model and the measurement
// stack. The device FSM and the wakelock manager publish piecewise-constant
// power-level changes and discrete energy impulses here; the power monitor
// and the energy accountant (src/power) subscribe. This mirrors how the
// paper's Monsoon monitor sits across the phone's battery rails.

#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "hw/component.hpp"

namespace simty::hw {

/// Device CPU/platform state as seen by the power rails.
enum class DeviceState { kAsleep = 0, kWaking, kAwake };

const char* to_string(DeviceState s);

/// Discrete (non-rate) energy costs.
enum class ImpulseKind {
  kWakeTransition,        // cache/DRAM restore on wakeup
  kComponentActivation,   // bringing a component out of dormancy
};

/// Subscriber interface; default-ignores everything so observers can
/// override only what they need.
class PowerListener {
 public:
  virtual ~PowerListener() = default;

  /// Device base-rail level changed because the FSM moved to `state`.
  virtual void on_device_state(TimePoint t, DeviceState state, Power base_level) {
    (void)t; (void)state; (void)base_level;
  }

  /// Component rail switched on (with the given active power) or off.
  virtual void on_component_power(TimePoint t, Component c, bool on, Power level) {
    (void)t; (void)c; (void)on; (void)level;
  }

  /// One-off energy cost (wake transition, component activation).
  virtual void on_impulse(TimePoint t, Energy e, ImpulseKind kind,
                          std::string_view tag) {
    (void)t; (void)e; (void)kind; (void)tag;
  }
};

/// Fan-out registry. Listeners are non-owning and must outlive the bus's
/// publishers; registration order is notification order (deterministic).
class PowerBus {
 public:
  void add_listener(PowerListener* listener);
  void remove_listener(PowerListener* listener);

  void publish_device_state(TimePoint t, DeviceState state, Power base_level);
  void publish_component_power(TimePoint t, Component c, bool on, Power level);
  void publish_impulse(TimePoint t, Energy e, ImpulseKind kind, std::string_view tag);

 private:
  std::vector<PowerListener*> listeners_;
};

}  // namespace simty::hw
