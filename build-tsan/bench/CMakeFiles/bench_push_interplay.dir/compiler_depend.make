# Empty compiler generated dependencies file for bench_push_interplay.
# This may be replaced when dependencies are built.
