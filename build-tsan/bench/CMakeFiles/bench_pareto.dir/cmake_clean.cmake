file(REMOVE_RECURSE
  "CMakeFiles/bench_pareto.dir/bench_pareto.cpp.o"
  "CMakeFiles/bench_pareto.dir/bench_pareto.cpp.o.d"
  "bench_pareto"
  "bench_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
