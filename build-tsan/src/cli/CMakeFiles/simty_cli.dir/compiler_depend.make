# Empty compiler generated dependencies file for simty_cli.
# This may be replaced when dependencies are built.
