#pragma once
// Static description of the modelled handset (the paper's Table 2),
// rendered by the setup bench for fidelity.

#include <string>
#include <vector>

namespace simty::hw {

/// One row of the specification table.
struct SpecEntry {
  std::string category;  // "Hardware" or "Software"
  std::string item;      // e.g. "CPU"
  std::string value;     // e.g. "Quad-core 2.26 GHz Krait 400"
};

/// The LG Nexus 5 specification of Table 2.
std::vector<SpecEntry> nexus5_spec();

}  // namespace simty::hw
