#pragma once
// Deterministic streaming aggregation of fleet metrics.
//
// Each device run is reduced to a DeviceMetrics row; shards fold their rows
// into MetricAggregates (Welford mean/variance + a fixed-bin percentile
// sketch on metrics/histogram); shard aggregates combine through
// merge_pairwise — a balanced binary reduction whose tree shape depends
// only on the shard count, never on worker scheduling. Together with the
// fixed shard partition (FleetConfig::shard_devices, never derived from
// --jobs) that makes fleet aggregates bit-identical at any worker count:
// histogram merges are exact integer folds, and the Welford merges happen
// in one fixed order.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "metrics/histogram.hpp"

namespace simty::exp {
struct RunResult;
}

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::fleet {

/// Histogram geometries, shared by every shard so sketches merge. Linear
/// buckets; values past the upper bound land in the overflow bucket and
/// quantiles there resolve to the observed max.
inline constexpr double kEnergyUpperJ = 1000.0;     // per-session joules
inline constexpr std::size_t kEnergyBuckets = 500;  // 2 J per bucket
inline constexpr double kPowerUpperMw = 400.0;      // average standby power
inline constexpr std::size_t kPowerBuckets = 400;   // 1 mW per bucket
inline constexpr double kWakeupsUpper = 720.0;      // CPU wakeups per hour
inline constexpr std::size_t kWakeupsBuckets = 360; // 2 per bucket
inline constexpr double kDelayUpper = 2.0;          // normalized delay < 1+beta
inline constexpr std::size_t kDelayBuckets = 400;   // 0.005 per bucket

/// One metric stream: Welford stats plus a percentile sketch.
class MetricAggregate {
 public:
  MetricAggregate(double hist_upper, std::size_t hist_buckets)
      : hist_(hist_upper, hist_buckets) {}

  void add(double v) {
    stats_.add(v);
    hist_.add(v);
  }
  void merge(const MetricAggregate& other) {
    stats_.merge(other.stats_);
    hist_.merge(other.hist_);
  }

  const OnlineStats& stats() const { return stats_; }
  const metrics::Histogram& histogram() const { return hist_; }

  /// Sketch quantile; 0 when empty.
  double quantile(double q) const { return hist_.empty() ? 0.0 : hist_.quantile(q); }

  /// Writes exact state (Welford doubles raw, histogram counts) into the
  /// current open section; restore() requires matching histogram geometry.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  OnlineStats stats_;
  metrics::Histogram hist_;
};

/// The per-device metric row the fleet tracks.
struct DeviceMetrics {
  double energy_j = 0.0;          // total session energy
  double avg_power_mw = 0.0;      // average standby power
  double wakeups_per_hour = 0.0;  // CPU wakeup rate
  double delay_norm = 0.0;        // mean normalized imperceptible delay
};

/// Reduces one device run to its metric row.
DeviceMetrics device_metrics(const exp::RunResult& r);

/// Aggregates of one cohort (or one shard of it, or the whole fleet).
struct CohortAggregate {
  std::string cohort;
  std::uint64_t devices = 0;
  MetricAggregate energy_j{kEnergyUpperJ, kEnergyBuckets};
  MetricAggregate avg_power_mw{kPowerUpperMw, kPowerBuckets};
  MetricAggregate wakeups_per_hour{kWakeupsUpper, kWakeupsBuckets};
  MetricAggregate delay_norm{kDelayUpper, kDelayBuckets};

  CohortAggregate() = default;
  explicit CohortAggregate(std::string name) : cohort(std::move(name)) {}

  void add(const DeviceMetrics& m) {
    ++devices;
    energy_j.add(m.energy_j);
    avg_power_mw.add(m.avg_power_mw);
    wakeups_per_hour.add(m.wakeups_per_hour);
    delay_norm.add(m.delay_norm);
  }

  /// Serializes name, device count and all four metric streams into the
  /// current open section. restore() overwrites this aggregate wholesale
  /// (including the name) and is bit-exact: continuing the same device
  /// add-sequence after a restore reproduces the straight-run aggregate.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

  /// Folds `other` in; keeps this aggregate's name.
  void merge(const CohortAggregate& other) {
    devices += other.devices;
    energy_j.merge(other.energy_j);
    avg_power_mw.merge(other.avg_power_mw);
    wakeups_per_hour.merge(other.wakeups_per_hour);
    delay_norm.merge(other.delay_norm);
  }
};

/// Balanced binary pairwise reduction in submission order: round k merges
/// neighbor pairs (0,1)(2,3)..., the odd tail carries over. The tree shape
/// is a pure function of items.size(), so repeated reductions of the same
/// shards are bit-identical — and the O(log n) depth bounds Welford-merge
/// rounding growth, which is what the two-pass-reference property tests
/// measure. Works for any T with merge(const T&).
template <typename T>
T merge_pairwise(std::vector<T> items) {
  SIMTY_CHECK_MSG(!items.empty(), "merge_pairwise of zero shards");
  std::size_t n = items.size();
  while (n > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      items[i].merge(items[i + 1]);
      if (out != i) items[out] = std::move(items[i]);
      ++out;
    }
    if (n % 2 == 1) {
      items[out] = std::move(items[n - 1]);
      ++out;
    }
    n = out;
  }
  return std::move(items.front());
}

}  // namespace simty::fleet
