#include "exp/reporting.hpp"

#include "common/check.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace simty::exp {

std::string render_energy_figure(const std::vector<NamedResult>& columns) {
  SIMTY_CHECK(!columns.empty());
  TextTable t("Figure 3: energy consumption in connected standby (J)");
  std::vector<std::string> header{"Energy (J)"};
  for (const NamedResult& c : columns) header.push_back(c.label);
  t.set_header(std::move(header));

  auto add = [&](const std::string& name, auto get) {
    std::vector<std::string> row{name};
    for (const NamedResult& c : columns) {
      row.push_back(str_format("%.1f", get(c.result)));
    }
    t.add_row(std::move(row));
  };
  add("awake (alignable)", [](const RunResult& r) {
    return r.energy.awake_total().joules_f();
  });
  add("sleep (floor)", [](const RunResult& r) { return r.energy.sleep.joules_f(); });
  add("total", [](const RunResult& r) { return r.energy.total().joules_f(); });
  t.add_separator();

  // Savings of each column vs the first column (the NATIVE baseline of its
  // pair by convention: pass columns as N, S, N, S...).
  std::vector<std::string> awake_row{"awake saving vs col 1"};
  std::vector<std::string> total_row{"total saving vs col 1"};
  const RunResult& base = columns.front().result;
  for (const NamedResult& c : columns) {
    const double awake_save =
        1.0 - c.result.energy.awake_total().ratio(base.energy.awake_total());
    const double total_save = 1.0 - c.result.energy.total().ratio(base.energy.total());
    awake_row.push_back(percent(awake_save));
    total_row.push_back(percent(total_save));
  }
  t.add_row(std::move(awake_row));
  t.add_row(std::move(total_row));
  return t.render();
}

std::string render_delay_figure(const std::vector<NamedResult>& columns) {
  TextTable t("Figure 4: average normalized delivery delay");
  std::vector<std::string> header{"Alarm class"};
  for (const NamedResult& c : columns) header.push_back(c.label);
  t.set_header(std::move(header));

  std::vector<std::string> prow{"perceptible"};
  std::vector<std::string> irow{"imperceptible"};
  std::vector<std::string> p95row{"imperceptible p95"};
  for (const NamedResult& c : columns) {
    prow.push_back(percent(c.result.delay_perceptible));
    irow.push_back(percent(c.result.delay_imperceptible));
    p95row.push_back(percent(c.result.delay_imperceptible_p95));
  }
  t.add_row(std::move(prow));
  t.add_row(std::move(irow));
  t.add_row(std::move(p95row));
  return t.render();
}

std::string render_wakeup_table(const std::vector<NamedResult>& columns) {
  SIMTY_CHECK(!columns.empty());
  TextTable t("Table 4: the wakeup breakdown (actual/expected)");
  std::vector<std::string> header{"Hardware"};
  for (const NamedResult& c : columns) header.push_back(c.label);
  t.set_header(std::move(header));

  const std::size_t rows = columns.front().result.wakeups.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{columns.front().result.wakeups[i].hardware};
    for (const NamedResult& c : columns) {
      SIMTY_CHECK(c.result.wakeups.size() == rows);
      const auto& w = c.result.wakeups[i];
      row.push_back(str_format("%.0f/%.0f", w.actual, w.expected));
    }
    t.add_row(std::move(row));
  }
  return t.render();
}

std::string render_standby_projection(const std::vector<NamedResult>& columns) {
  TextTable t("Projected standby time (full 2300 mAh pack at measured average power)");
  t.set_header({"Policy", "avg power (mW)", "standby (h)", "extension vs col 1"});
  const double base_hours = columns.front().result.projected_standby_hours;
  for (const NamedResult& c : columns) {
    t.add_row({c.label, str_format("%.2f", c.result.average_power_mw),
               str_format("%.1f", c.result.projected_standby_hours),
               percent(c.result.projected_standby_hours / base_hours - 1.0)});
  }
  return t.render();
}

std::string render_guarantee_audit(const std::vector<NamedResult>& columns) {
  TextTable t("Delivery-guarantee audit (section 3.2.2 properties)");
  t.set_header({"Policy", "worst gap / ReIn", "gap violations",
                "perceptible window misses"});
  for (const NamedResult& c : columns) {
    t.add_row({c.label, str_format("%.3f", c.result.worst_gap_ratio),
               str_format("%llu", static_cast<unsigned long long>(
                                      c.result.gap_violations)),
               str_format("%llu", static_cast<unsigned long long>(
                                      c.result.perceptible_window_misses))});
  }
  return t.render();
}

std::string render_paging_table(const std::vector<NamedResult>& columns) {
  SIMTY_CHECK(!columns.empty());
  bool any = false;
  for (const NamedResult& c : columns) {
    const RunResult& r = c.result;
    any = any || r.pages_answered > 0.0 || r.drx_listen_seconds > 0.0 ||
          r.wur_listen_seconds > 0.0;
  }
  if (!any) return {};

  TextTable t("Downlink paging (DRX / wake-up receiver)");
  std::vector<std::string> header{"Paging"};
  for (const NamedResult& c : columns) header.push_back(c.label);
  t.set_header(std::move(header));
  auto add = [&](const std::string& name, const char* fmt, auto get) {
    std::vector<std::string> row{name};
    for (const NamedResult& c : columns) {
      row.push_back(str_format(fmt, get(c.result)));
    }
    t.add_row(std::move(row));
  };
  add("pages answered", "%.1f", [](const RunResult& r) { return r.pages_answered; });
  add("page delay avg (s)", "%.3f",
      [](const RunResult& r) { return r.page_delay_avg_s; });
  add("page delay p95 (s)", "%.3f",
      [](const RunResult& r) { return r.page_delay_p95_s; });
  add("DRX listen (s)", "%.2f",
      [](const RunResult& r) { return r.drx_listen_seconds; });
  add("WuR listen (s)", "%.2f",
      [](const RunResult& r) { return r.wur_listen_seconds; });
  add("WuR triggers", "%.1f", [](const RunResult& r) { return r.wur_triggers; });
  return t.render();
}

std::string results_csv(const std::vector<NamedResult>& columns) {
  CsvWriter csv({"label", "policy", "awake_J", "sleep_J", "total_J", "avg_mW",
                 "standby_h", "delay_perceptible", "delay_imperceptible",
                 "cpu_wakeups", "cpu_expected", "deliveries", "pages",
                 "page_delay_avg_s", "page_delay_p95_s"});
  for (const NamedResult& c : columns) {
    const RunResult& r = c.result;
    double cpu_actual = 0.0, cpu_expected = 0.0;
    for (const auto& w : r.wakeups) {
      if (w.hardware == "CPU") {
        cpu_actual = w.actual;
        cpu_expected = w.expected;
      }
    }
    csv.add_row({c.label, r.policy_name,
                 str_format("%.2f", r.energy.awake_total().joules_f()),
                 str_format("%.2f", r.energy.sleep.joules_f()),
                 str_format("%.2f", r.energy.total().joules_f()),
                 str_format("%.3f", r.average_power_mw),
                 str_format("%.2f", r.projected_standby_hours),
                 str_format("%.5f", r.delay_perceptible),
                 str_format("%.5f", r.delay_imperceptible),
                 str_format("%.1f", cpu_actual), str_format("%.1f", cpu_expected),
                 str_format("%.1f", r.deliveries),
                 str_format("%.1f", r.pages_answered),
                 str_format("%.5f", r.page_delay_avg_s),
                 str_format("%.5f", r.page_delay_p95_s)});
  }
  return csv.to_string();
}

}  // namespace simty::exp
