file(REMOVE_RECURSE
  "CMakeFiles/bench_fixed_interval.dir/bench_fixed_interval.cpp.o"
  "CMakeFiles/bench_fixed_interval.dir/bench_fixed_interval.cpp.o.d"
  "bench_fixed_interval"
  "bench_fixed_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fixed_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
