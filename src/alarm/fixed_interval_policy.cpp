#include "alarm/fixed_interval_policy.hpp"

#include "alarm/similarity.hpp"
#include "common/check.hpp"
#include "common/strings.hpp"

namespace simty::alarm {

FixedIntervalPolicy::FixedIntervalPolicy(Duration interval) : interval_(interval) {
  SIMTY_CHECK_MSG(interval_ > Duration::zero(),
                  "fixed alignment interval must be positive");
}

std::string FixedIntervalPolicy::name() const {
  return str_format("FIXED-%s", interval_.to_string().c_str());
}

std::int64_t FixedIntervalPolicy::slot_of(TimePoint t) const {
  return t.us() / interval_.us();
}

bool FixedIntervalPolicy::joinable(std::int64_t slot, const TimeInterval& window,
                                   const TimeInterval& grace,
                                   bool alarm_perceptible,
                                   const Batch& entry) const {
  if (slot_of(entry.delivery_time()) != slot) return false;
  // Guard rails: never break the delivery guarantees while batching within
  // the slot.
  const SimilarityLevel time = time_similarity(
      window, grace, entry.window_interval(), entry.grace_interval());
  return is_applicable(time, alarm_perceptible, entry.perceptible());
}

std::optional<std::size_t> FixedIntervalPolicy::select_batch(
    const Alarm& alarm, const std::vector<std::unique_ptr<Batch>>& queue) const {
  const std::int64_t slot = slot_of(alarm.nominal());
  const TimeInterval window = alarm.window_interval();
  const TimeInterval grace = alarm.grace_interval();
  const bool alarm_perceptible = alarm.perceptible();
  // Linear reference implementation, differentially checked against the
  // indexed candidate path under slow queue checks.
  // simty-lint: allow(queue-scan)
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (joinable(slot, window, grace, alarm_perceptible, *queue[i])) return i;
  }
  return std::nullopt;
}

std::optional<CandidateQuery> FixedIntervalPolicy::candidate_query(
    const Alarm& alarm) const {
  // Applicability requires at least grace overlap, so grace-overlap
  // candidates are a superset of the joinable set; select_among re-filters
  // by slot and applicability.
  return CandidateQuery{alarm.grace_interval(), EntryIntervalKind::kGrace};
}

std::optional<std::size_t> FixedIntervalPolicy::select_among(
    const Alarm& alarm, const std::vector<std::unique_ptr<Batch>>& queue,
    const std::vector<std::size_t>& candidates) const {
  const std::int64_t slot = slot_of(alarm.nominal());
  const TimeInterval window = alarm.window_interval();
  const TimeInterval grace = alarm.grace_interval();
  const bool alarm_perceptible = alarm.perceptible();
  for (const std::size_t i : candidates) {
    if (joinable(slot, window, grace, alarm_perceptible, *queue[i])) return i;
  }
  return std::nullopt;
}

}  // namespace simty::alarm
