// Warm-start sweep benchmark: the headline number for the snapshot layer.
//
// A 16-point β-sweep (ExperimentConfig::beta_switch) re-simulates the same
// standby prefix 16 times when run cold — the sweep points differ only in
// the grace factor applied at the switch instant, placed at ~92% of the
// horizon. The warm path simulates the shared prefix once, snapshots it
// (exp::Run::save_snapshot), and resumes the snapshot once per point, so
// each point pays only for the post-switch tail. Every warm result is
// checked bit-identical to its cold counterpart before any number is
// reported: this is an optimization benchmark, not an approximation one.
//
// `--json <path>` writes BENCH_warm_start.json-style records; CI diffs the
// checked-in baseline via tools/check_bench_baseline.sh and fails when
// the speedup/warm-start record collapses below 40% of baseline. The
// expected ratio is prefix/tail ≈ 6x against the 5x acceptance floor.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "exp/run.hpp"

namespace simty {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

constexpr int kPoints = 16;
const Duration kHorizon = Duration::hours(3);
const Duration kSwitchAt = Duration::minutes(172);  // ~95% of the horizon
const Duration kPrefixAt = Duration::minutes(171);  // margin before the switch

exp::ExperimentConfig sweep_config(double beta) {
  exp::ExperimentConfig c;
  c.policy = exp::PolicyKind::kSimty;
  c.workload = exp::WorkloadKind::kLight;
  c.duration = kHorizon;
  c.seed = 21;
  c.beta_switch = exp::ExperimentConfig::BetaSwitch{kSwitchAt, beta};
  return c;
}

double beta_point(int i) {
  // 16 points over [0.1, 0.85]: spans "almost exact" to "very elastic".
  return 0.1 + 0.05 * i;
}

/// Exact equality across the fields a sweep plot consumes; any mismatch
/// disqualifies the warm number.
bool identical(const exp::RunResult& a, const exp::RunResult& b) {
  return a.energy.total().mj() == b.energy.total().mj() &&
         a.average_power_mw == b.average_power_mw &&
         a.delay_imperceptible == b.delay_imperceptible &&
         a.delay_imperceptible_p95 == b.delay_imperceptible_p95 &&
         a.deliveries == b.deliveries &&
         a.batches_delivered == b.batches_delivered &&
         a.awake_seconds == b.awake_seconds &&
         a.gap_violations == b.gap_violations;
}

}  // namespace
}  // namespace simty

int main(int argc, char** argv) {
  using namespace simty;
  const auto json_path = bench::json_path_from_args(argc, argv);

  // Cold: every point simulates the full horizon from scratch.
  const auto cold_start = Clock::now();
  std::vector<exp::RunResult> cold;
  cold.reserve(kPoints);
  for (int i = 0; i < kPoints; ++i) {
    cold.push_back(exp::run_experiment(sweep_config(beta_point(i))));
  }
  const double cold_ms = ms_since(cold_start);

  // Warm: one shared prefix, snapshotted, resumed once per point. The β of
  // the prefix run is irrelevant by construction (β lives in the switch
  // event's closure, outside the serialized state), so point 0's config
  // serves.
  const auto warm_start = Clock::now();
  std::string prefix;
  {
    exp::Run prefix_run(sweep_config(beta_point(0)));
    prefix_run.advance_to_quiescent(TimePoint::origin() + kPrefixAt);
    prefix = prefix_run.save_snapshot();
  }
  std::vector<exp::RunResult> warm;
  warm.reserve(kPoints);
  for (int i = 0; i < kPoints; ++i) {
    exp::Run run(sweep_config(beta_point(i)));
    run.restore_snapshot(prefix);
    warm.push_back(run.finish());
  }
  const double warm_ms = ms_since(warm_start);

  for (int i = 0; i < kPoints; ++i) {
    if (!identical(cold[static_cast<std::size_t>(i)],
                   warm[static_cast<std::size_t>(i)])) {
      std::fprintf(stderr,
                   "error: warm-started point %d (beta=%.2f) diverged from "
                   "its cold run\n",
                   i, beta_point(i));
      return 1;
    }
  }

  const double speedup = cold_ms / warm_ms;
  const double point_rate = kPoints / (warm_ms / 1e3);

  TextTable t;
  t.set_header({"path", "wall (ms)", "points/sec"});
  t.add_row({"cold (16 full runs)", str_format("%.1f", cold_ms),
             str_format("%.1f", kPoints / (cold_ms / 1e3))});
  t.add_row({"warm (prefix + 16 tails)", str_format("%.1f", warm_ms),
             str_format("%.1f", point_rate)});
  std::printf("Warm-start 16-point beta sweep (switch at %.0f%% of horizon)\n",
              100.0 * static_cast<double>(kSwitchAt.us()) /
                  static_cast<double>(kHorizon.us()));
  std::printf("%s\n", t.render().c_str());
  std::printf("prefix snapshot: %zu bytes\n", prefix.size());
  std::printf("warm-start speedup (cold / warm): %.2fx\n", speedup);

  if (json_path) {
    const std::vector<bench::BenchRecord> records = {
        {"sweep/cold/16-point", cold_ms, kPoints / (cold_ms / 1e3)},
        {"sweep/warm/16-point", warm_ms, point_rate},
        {"speedup/warm-start/16-point-beta-sweep", warm_ms, speedup},
    };
    if (!bench::write_bench_json(*json_path, records)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path->c_str());
  }
  return 0;
}
