// simty_analyze — cross-TU determinism/layering/lock analyzer (analyze.hpp).
//
// Usage:
//   simty_analyze [--root DIR] [--json FILE] [--list-checks] [--no-iwyu] PATH...
//
// PATHs are files or directories, resolved relative to --root (default: the
// current directory); paths are recorded repo-relative so the module table
// and deterministic-core prefixes match. Unlike simty_lint the whole file
// set is analyzed at once — include graph, call graph — so CI passes the
// tree roots (src tools), not single files. Exit status: 0 clean (advisories
// do not fail the run), 1 findings, 2 usage or I/O error.

#include "analyze.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool analyzable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.empty() || name.front() == '.' || name.rfind("build", 0) == 0;
}

std::string rel_to(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  return (ec ? p : rel).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  bool iwyu = true;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--no-iwyu") {
      iwyu = false;
    } else if (arg == "--list-checks") {
      for (const auto& c : simty::analyze::check_names()) std::printf("%s\n", c.c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: simty_analyze [--root DIR] [--json FILE] [--list-checks] [--no-iwyu] "
          "PATH...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "simty_analyze: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) {
    std::fprintf(stderr, "simty_analyze: no paths given (try --help)\n");
    return 2;
  }

  std::vector<fs::path> files;
  for (const auto& t : targets) {
    const fs::path p = fs::path(t).is_absolute() ? fs::path(t) : root / t;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied, ec);
      if (ec) {
        std::fprintf(stderr, "simty_analyze: cannot walk %s: %s\n", p.c_str(),
                     ec.message().c_str());
        return 2;
      }
      for (auto end = fs::recursive_directory_iterator(); it != end; ++it) {
        if (it->is_directory() && skip_dir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && analyzable(it->path())) files.push_back(it->path());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "simty_analyze: no such file or directory: %s\n", p.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<simty::analyze::SourceFile> sources;
  sources.reserve(files.size());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "simty_analyze: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back({rel_to(root, file), buf.str()});
  }

  simty::analyze::Config config;
  config.modules = simty::analyze::repo_modules();
  config.iwyu = iwyu;
  const simty::analyze::Result result = simty::analyze::analyze(sources, config);

  for (const auto& f : result.findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.check.c_str(),
                f.message.c_str());
    for (const auto& step : f.chain) std::printf("    %s\n", step.c_str());
  }
  for (const auto& a : result.advisories) {
    std::printf("%s:%d: [%s, advisory] %s\n", a.file.c_str(), a.line, a.check.c_str(),
                a.message.c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "simty_analyze: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << simty::analyze::to_json(result);
  }
  std::printf(
      "simty_analyze: %zu files, %zu functions, %zu call edges, %zu include edges — "
      "%zu finding(s), %zu advisory(ies)\n",
      result.files, result.functions, result.call_edges, result.include_edges,
      result.findings.size(), result.advisories.size());
  return result.findings.empty() ? 0 : 1;
}
