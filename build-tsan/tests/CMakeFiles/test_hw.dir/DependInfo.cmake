
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/battery_test.cpp" "tests/CMakeFiles/test_hw.dir/hw/battery_test.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/battery_test.cpp.o.d"
  "/root/repo/tests/hw/component_test.cpp" "tests/CMakeFiles/test_hw.dir/hw/component_test.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/component_test.cpp.o.d"
  "/root/repo/tests/hw/device_test.cpp" "tests/CMakeFiles/test_hw.dir/hw/device_test.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/device_test.cpp.o.d"
  "/root/repo/tests/hw/guardian_test.cpp" "tests/CMakeFiles/test_hw.dir/hw/guardian_test.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/guardian_test.cpp.o.d"
  "/root/repo/tests/hw/power_model_test.cpp" "tests/CMakeFiles/test_hw.dir/hw/power_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/power_model_test.cpp.o.d"
  "/root/repo/tests/hw/rtc_test.cpp" "tests/CMakeFiles/test_hw.dir/hw/rtc_test.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/rtc_test.cpp.o.d"
  "/root/repo/tests/hw/wakelock_tail_test.cpp" "tests/CMakeFiles/test_hw.dir/hw/wakelock_tail_test.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/wakelock_tail_test.cpp.o.d"
  "/root/repo/tests/hw/wakelock_test.cpp" "tests/CMakeFiles/test_hw.dir/hw/wakelock_test.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/wakelock_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/hw/CMakeFiles/simty_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/simty_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/simty_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
