// Determinism-taint pass.
//
// Seeds (wall clocks, random_device, rand, std::hash, pointer->integer
// casts, this_thread::get_id, getenv — collected per function by the
// parser) are propagated callee -> caller over the name-resolved call
// graph. A call resolves to a definition only when the definition's file is
// in the caller's include closure (companion .cpp included), which keeps
// same-name functions in unrelated corners of the tree from gluing the
// graph together. Any tainted function *defined in the deterministic core*
// is an error; the diagnostic reconstructs the full call chain down to the
// seed. `// simty-analyze: allow(taint)` on a seed line stops that seed; on
// a function definition line it cuts propagation through that function.

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>

#include "passes.hpp"

namespace simty::analyze {

namespace {

struct FnRef {
  int file = 0;
  int fn = 0;
};

bool under_any(const std::string& path, const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes) {
    if (path.size() < p.size() || path.compare(0, p.size(), p) != 0) continue;
    if (path.size() == p.size() || path[p.size()] == '/' || path[p.size()] == '.') return true;
  }
  return false;
}

std::string last_component(const std::string& name) {
  const std::size_t pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

/// Why a function is tainted: a seed of its own, or a call into a tainted
/// callee. Exactly one of the two is set.
struct Cause {
  int seed = -1;       // index into fn.seeds
  int callee = -1;     // global function index
  int call_line = 0;
};

}  // namespace

void run_taint(const Graph& g, const Config& config, Result& result) {
  // Global function indexing + definition lookup by unqualified name.
  std::vector<FnRef> fns;
  std::map<std::string, std::vector<int>> defs;
  for (std::size_t i = 0; i < g.models.size(); ++i) {
    for (std::size_t f = 0; f < g.models[i].functions.size(); ++f) {
      defs[g.models[i].functions[f].name].push_back(static_cast<int>(fns.size()));
      fns.push_back({static_cast<int>(i), static_cast<int>(f)});
    }
  }
  const auto fn_of = [&](int idx) -> const Function& {
    const FnRef r = fns[static_cast<std::size_t>(idx)];
    return g.models[static_cast<std::size_t>(r.file)].functions[static_cast<std::size_t>(r.fn)];
  };
  const auto file_of = [&](int idx) -> const FileModel& {
    return g.models[static_cast<std::size_t>(fns[static_cast<std::size_t>(idx)].file)];
  };

  // Resolve calls to reachable definitions; build caller lists per callee.
  struct Edge {
    int caller = 0;
    int callee = 0;
    int call_line = 0;
  };
  std::vector<std::vector<Edge>> callers_of(fns.size());  // indexed by callee
  for (int caller = 0; caller < static_cast<int>(fns.size()); ++caller) {
    const FnRef r = fns[static_cast<std::size_t>(caller)];
    for (const Call& c : fn_of(caller).calls) {
      const auto it = defs.find(last_component(c.name));
      if (it == defs.end()) continue;
      for (const int callee : it->second) {
        if (callee == caller) continue;
        if (!reaches(g, r.file, fns[static_cast<std::size_t>(callee)].file)) continue;
        // A qualified call must agree with the definition's qualifier.
        if (c.name.find("::") != std::string::npos) {
          const std::string& q = fn_of(callee).qualified;
          const std::string& cq = c.name;
          const bool suffix =
              q.size() >= cq.size() && q.compare(q.size() - cq.size(), cq.size(), cq) == 0;
          const bool rsuffix =
              cq.size() >= q.size() && cq.compare(cq.size() - q.size(), q.size(), q) == 0;
          if (!suffix && !rsuffix) continue;
        }
        callers_of[static_cast<std::size_t>(callee)].push_back({caller, callee, c.line});
        ++result.call_edges;
      }
    }
  }

  // Fixpoint: BFS from seed-carrying functions toward callers. allow(taint)
  // on a definition makes the function opaque — it neither taints nor
  // propagates.
  std::vector<Cause> cause(fns.size());
  std::vector<bool> tainted(fns.size(), false);
  std::deque<int> work;
  for (int idx = 0; idx < static_cast<int>(fns.size()); ++idx) {
    const Function& fn = fn_of(idx);
    if (fn.taint_allowed) continue;
    for (std::size_t s = 0; s < fn.seeds.size(); ++s) {
      if (fn.seeds[s].allowed) continue;
      tainted[static_cast<std::size_t>(idx)] = true;
      cause[static_cast<std::size_t>(idx)].seed = static_cast<int>(s);
      work.push_back(idx);
      break;
    }
  }
  while (!work.empty()) {
    const int idx = work.front();
    work.pop_front();
    for (const Edge& e : callers_of[static_cast<std::size_t>(idx)]) {
      if (tainted[static_cast<std::size_t>(e.caller)]) continue;
      if (fn_of(e.caller).taint_allowed) continue;
      tainted[static_cast<std::size_t>(e.caller)] = true;
      cause[static_cast<std::size_t>(e.caller)].callee = idx;
      cause[static_cast<std::size_t>(e.caller)].call_line = e.call_line;
      work.push_back(e.caller);
    }
  }

  // Report tainted functions in the deterministic core — but only at the
  // point where taint *enters* the core (a seed of its own, or a call to a
  // tainted function outside the core). Core-internal callers of an already
  // reported core function would repeat the same chain one frame longer.
  const auto in_core = [&](int idx) {
    return under_any(file_of(idx).path, config.deterministic_prefixes);
  };
  for (int idx = 0; idx < static_cast<int>(fns.size()); ++idx) {
    if (!tainted[static_cast<std::size_t>(idx)] || !in_core(idx)) continue;
    const Cause& c = cause[static_cast<std::size_t>(idx)];
    if (c.seed < 0 && in_core(c.callee)) continue;

    Finding f;
    f.check = "taint";
    f.file = file_of(idx).path;
    f.line = fn_of(idx).line;
    // Walk the cause chain down to the seed.
    int cur = idx;
    std::string seed_name;
    while (true) {
      const Function& fn = fn_of(cur);
      const Cause& cc = cause[static_cast<std::size_t>(cur)];
      if (cc.seed >= 0) {
        const Seed& s = fn.seeds[static_cast<std::size_t>(cc.seed)];
        f.chain.push_back(fn.qualified + " [" + file_of(cur).path + ":" +
                          std::to_string(fn.line) + "] uses " + s.what + " at line " +
                          std::to_string(s.line));
        seed_name = s.what;
        break;
      }
      f.chain.push_back(fn.qualified + " [" + file_of(cur).path + ":" +
                        std::to_string(fn.line) + "] calls " +
                        fn_of(cc.callee).qualified + " at line " +
                        std::to_string(cc.call_line));
      cur = cc.callee;
    }
    f.message = "deterministic-core function '" + fn_of(idx).qualified +
                "' transitively reaches nondeterminism source " + seed_name +
                " (chain of " + std::to_string(f.chain.size()) + ")";
    result.findings.push_back(std::move(f));
  }
}

}  // namespace simty::analyze
