# Empty dependencies file for simty_run.
# This may be replaced when dependencies are built.
