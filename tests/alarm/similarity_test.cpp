#include "alarm/similarity.hpp"

#include <gtest/gtest.h>

namespace simty::alarm {
namespace {

using hw::Component;
using hw::ComponentSet;

TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

// ---------------------------------------------------------------- hardware

TEST(HardwareSimilarity, HighRequiresIdenticalNonEmpty) {
  const ComponentSet wifi{Component::kWifi};
  EXPECT_EQ(hardware_similarity(wifi, wifi), SimilarityLevel::kHigh);
  const ComponentSet pair{Component::kWifi, Component::kWps};
  EXPECT_EQ(hardware_similarity(pair, pair), SimilarityLevel::kHigh);
  // Identical but EMPTY sets are low, not high (§3.1.1).
  EXPECT_EQ(hardware_similarity(ComponentSet::none(), ComponentSet::none()),
            SimilarityLevel::kLow);
}

TEST(HardwareSimilarity, MediumIsPartialOverlap) {
  const ComponentSet a{Component::kWifi, Component::kWps};
  const ComponentSet b{Component::kWifi};
  EXPECT_EQ(hardware_similarity(a, b), SimilarityLevel::kMedium);
  EXPECT_EQ(hardware_similarity(b, a), SimilarityLevel::kMedium);
}

TEST(HardwareSimilarity, LowForDisjointOrEmpty) {
  const ComponentSet a{Component::kWifi};
  const ComponentSet b{Component::kAccelerometer};
  EXPECT_EQ(hardware_similarity(a, b), SimilarityLevel::kLow);
  EXPECT_EQ(hardware_similarity(a, ComponentSet::none()), SimilarityLevel::kLow);
  EXPECT_EQ(hardware_similarity(ComponentSet::none(), a), SimilarityLevel::kLow);
}

TEST(HardwareGrade, ThreeLevelMatchesSimilarityLevels) {
  const SimilarityConfig cfg;  // default three-level
  const ComponentSet wifi{Component::kWifi};
  const ComponentSet both{Component::kWifi, Component::kWps};
  EXPECT_EQ(hardware_grade(wifi, wifi, cfg), 0);
  EXPECT_EQ(hardware_grade(wifi, both, cfg), 1);
  EXPECT_EQ(hardware_grade(wifi, ComponentSet{Component::kWps}, cfg), 2);
  EXPECT_EQ(max_hardware_grade(cfg.hw_mode), 2);
}

TEST(HardwareGrade, TwoLevelOnlyChecksSharing) {
  SimilarityConfig cfg;
  cfg.hw_mode = HardwareSimilarityMode::kTwoLevel;
  const ComponentSet wifi{Component::kWifi};
  const ComponentSet both{Component::kWifi, Component::kWps};
  EXPECT_EQ(hardware_grade(wifi, wifi, cfg), 0);
  EXPECT_EQ(hardware_grade(wifi, both, cfg), 0);  // identical vs partial collapse
  EXPECT_EQ(hardware_grade(wifi, ComponentSet{Component::kWps}, cfg), 1);
  EXPECT_EQ(max_hardware_grade(cfg.hw_mode), 1);
}

TEST(HardwareGrade, FourLevelSplitsMediumByHungryComponents) {
  SimilarityConfig cfg;
  cfg.hw_mode = HardwareSimilarityMode::kFourLevel;
  const ComponentSet wps_acc{Component::kWps, Component::kAccelerometer};
  const ComponentSet wps{Component::kWps};
  const ComponentSet acc{Component::kAccelerometer};
  const ComponentSet acc_vib{Component::kAccelerometer, Component::kVibrator};
  // Sharing the (hungry) WPS ranks above sharing only the accelerometer.
  EXPECT_EQ(hardware_grade(wps_acc, wps, cfg), 1);
  EXPECT_EQ(hardware_grade(acc_vib, acc, cfg), 2);
  EXPECT_EQ(hardware_grade(wps, wps, cfg), 0);
  EXPECT_EQ(hardware_grade(wps, acc, cfg), 3);
  EXPECT_EQ(max_hardware_grade(cfg.hw_mode), 3);
}

// -------------------------------------------------------------------- time

struct TimeParty {
  TimeInterval window;
  TimeInterval grace;
};

TimeParty party(std::int64_t nominal, std::int64_t window_len, std::int64_t grace_len) {
  return {TimeInterval::from_length(at(nominal), Duration::seconds(window_len)),
          TimeInterval::from_length(at(nominal), Duration::seconds(grace_len))};
}

TEST(TimeSimilarity, HighWhenWindowsOverlap) {
  const TimeParty a = party(0, 150, 192);
  const TimeParty b = party(100, 150, 192);
  EXPECT_EQ(time_similarity(a.window, a.grace, b.window, b.grace),
            SimilarityLevel::kHigh);
}

TEST(TimeSimilarity, MediumWhenOnlyGracesOverlap) {
  const TimeParty a = party(0, 150, 192);
  const TimeParty b = party(170, 150, 192);  // windows [0,150] vs [170,320]
  EXPECT_EQ(time_similarity(a.window, a.grace, b.window, b.grace),
            SimilarityLevel::kMedium);
}

TEST(TimeSimilarity, LowWhenNothingOverlaps) {
  const TimeParty a = party(0, 150, 192);
  const TimeParty b = party(500, 150, 192);
  EXPECT_EQ(time_similarity(a.window, a.grace, b.window, b.grace),
            SimilarityLevel::kLow);
}

TEST(TimeSimilarity, PointWindowsStillCount) {
  // Alpha = 0 alarms have single-point windows; a point inside the other
  // window is High.
  const TimeParty a = party(100, 0, 57);
  const TimeParty b = party(0, 150, 192);
  EXPECT_EQ(time_similarity(a.window, a.grace, b.window, b.grace),
            SimilarityLevel::kHigh);
}

TEST(TimeSimilarity, EmptyEntryWindowCannotBeHigh) {
  // An imperceptible entry built by grace-overlap can have an empty window
  // intersection; nothing can reach High against it.
  const TimeParty a = party(0, 150, 192);
  EXPECT_EQ(time_similarity(TimeInterval::empty(),
                            TimeInterval{at(0), at(300)}, a.window, a.grace),
            SimilarityLevel::kMedium);
}

// ----------------------------------------------------- applicability matrix

struct ApplicabilityCase {
  SimilarityLevel time;
  bool alarm_perceptible;
  bool entry_perceptible;
  bool expected;
};

class ApplicabilityTest : public ::testing::TestWithParam<ApplicabilityCase> {};

TEST_P(ApplicabilityTest, MatchesSearchPhaseRule) {
  const ApplicabilityCase& c = GetParam();
  EXPECT_EQ(is_applicable(c.time, c.alarm_perceptible, c.entry_perceptible),
            c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ApplicabilityTest,
    ::testing::Values(
        // Any perceptible party -> High required.
        ApplicabilityCase{SimilarityLevel::kHigh, true, true, true},
        ApplicabilityCase{SimilarityLevel::kHigh, true, false, true},
        ApplicabilityCase{SimilarityLevel::kHigh, false, true, true},
        ApplicabilityCase{SimilarityLevel::kMedium, true, true, false},
        ApplicabilityCase{SimilarityLevel::kMedium, true, false, false},
        ApplicabilityCase{SimilarityLevel::kMedium, false, true, false},
        // Both imperceptible -> High or Medium.
        ApplicabilityCase{SimilarityLevel::kHigh, false, false, true},
        ApplicabilityCase{SimilarityLevel::kMedium, false, false, true},
        // Low is never applicable.
        ApplicabilityCase{SimilarityLevel::kLow, false, false, false},
        ApplicabilityCase{SimilarityLevel::kLow, true, false, false},
        ApplicabilityCase{SimilarityLevel::kLow, false, true, false},
        ApplicabilityCase{SimilarityLevel::kLow, true, true, false}));

// ------------------------------------------------------------------ Table 1

TEST(Preferability, ReproducesTable1) {
  // Rows: time {High, Medium}; columns: hardware {High=0, Medium=1, Low=2}.
  EXPECT_EQ(preferability_rank(0, SimilarityLevel::kHigh), 1);
  EXPECT_EQ(preferability_rank(0, SimilarityLevel::kMedium), 2);
  EXPECT_EQ(preferability_rank(1, SimilarityLevel::kHigh), 3);
  EXPECT_EQ(preferability_rank(1, SimilarityLevel::kMedium), 4);
  EXPECT_EQ(preferability_rank(2, SimilarityLevel::kHigh), 5);
  EXPECT_EQ(preferability_rank(2, SimilarityLevel::kMedium), 6);
}

TEST(Preferability, HardwareDominatesTime) {
  // Any better hardware grade beats any time level within it — the paper's
  // "entry with a higher degree of hardware similarity is preferable".
  EXPECT_LT(preferability_rank(0, SimilarityLevel::kMedium),
            preferability_rank(1, SimilarityLevel::kHigh));
  EXPECT_LT(preferability_rank(1, SimilarityLevel::kMedium),
            preferability_rank(2, SimilarityLevel::kHigh));
}

TEST(Preferability, LowTimeIsInfinity) {
  EXPECT_THROW(preferability_rank(0, SimilarityLevel::kLow), std::logic_error);
}

TEST(SimilarityEnums, Names) {
  EXPECT_STREQ(to_string(SimilarityLevel::kHigh), "high");
  EXPECT_STREQ(to_string(SimilarityLevel::kMedium), "medium");
  EXPECT_STREQ(to_string(SimilarityLevel::kLow), "low");
  EXPECT_STREQ(to_string(HardwareSimilarityMode::kThreeLevel), "3-level");
}

}  // namespace
}  // namespace simty::alarm
