// Microbenchmark of the run tracer's overhead on the event-loop hot path.
//
// The tracer's contract (DESIGN.md §7) is "near-zero when absent, cheap
// when present": the event loop emits a span per fired event through the
// SIMTY_TRACE_* macros, which cost one thread-local load and branch when no
// tracer is installed and one arena/ring append when one is. This bench
// drives a self-rescheduling event chain through the simulator three ways —
// no tracer installed, arena tracer, fixed-capacity ring tracer — and
// prints events/sec for each plus the relative slowdown. `--json <path>`
// writes bench_json.hpp records so CI accumulates a trajectory.
//
// Built with -DSIMTY_TRACING=OFF the macros compile to nothing and all
// three modes must agree to within noise.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

namespace simty {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kChainEvents = 2'000'000;

// One self-rescheduling chain: each firing schedules the next until the
// countdown hits zero. Captures only `this`, well inside EventFn's inline
// buffer, so the loop allocates nothing and the tracer append dominates
// any per-event delta between modes.
struct Chain {
  sim::Simulator* sim = nullptr;
  std::size_t remaining = 0;

  void fire() {
    if (remaining == 0) return;
    --remaining;
    sim->schedule_after(Duration::micros(10), [this] { fire(); },
                        sim::EventPriority::kApp, "bench-chain");
  }
};

// Runs the chain with `tracer` installed (nullptr = untraced baseline) and
// returns the wall time in ms.
double run_chain(trace::Tracer* tracer) {
  sim::Simulator sim;
  Chain chain{&sim, kChainEvents};
  const trace::TraceScope scope(tracer);
  const auto start = Clock::now();
  sim.schedule_after(Duration::micros(10), [&chain] { chain.fire(); },
                     sim::EventPriority::kApp, "bench-chain");
  sim.run_all();
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace
}  // namespace simty

int main(int argc, char** argv) {
  using namespace simty;

  const auto json_path = bench::json_path_from_args(argc, argv);
  std::vector<bench::BenchRecord> records;
  TextTable t;
  t.set_header({"mode", "wall (ms)", "events/sec", "trace events", "dropped"});

  struct Mode {
    const char* label;
    double wall_ms = 0.0;
    std::size_t trace_events = 0;
    std::uint64_t dropped = 0;
  };
  Mode modes[] = {{"untraced"}, {"arena"}, {"ring-64k"}};

  modes[0].wall_ms = run_chain(nullptr);
  {
    trace::Tracer arena;
    modes[1].wall_ms = run_chain(&arena);
    modes[1].trace_events = arena.size();
    modes[1].dropped = arena.dropped();
  }
  {
    trace::Tracer ring(64 * 1024);
    modes[2].wall_ms = run_chain(&ring);
    modes[2].trace_events = ring.size();
    modes[2].dropped = ring.dropped();
  }

  for (const Mode& m : modes) {
    const double eps = static_cast<double>(kChainEvents) / (m.wall_ms / 1e3);
    t.add_row({m.label, str_format("%.1f", m.wall_ms), str_format("%.0f", eps),
               str_format("%zu", m.trace_events),
               str_format("%llu", static_cast<unsigned long long>(m.dropped))});
    records.push_back({std::string("trace-overhead/") + m.label, m.wall_ms, eps});
  }

  std::printf("Trace overhead: 2e6-event chain through the simulator\n");
  std::printf("%s\n", t.render().c_str());
  std::printf("arena slowdown vs untraced: %.2fx, ring: %.2fx\n",
              modes[1].wall_ms / modes[0].wall_ms,
              modes[2].wall_ms / modes[0].wall_ms);
#if defined(SIMTY_TRACE_DISABLED)
  std::printf("(built with SIMTY_TRACING=OFF: all modes are the untraced path)\n");
#endif

  if (json_path) {
    if (!bench::write_bench_json(*json_path, records)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("wrote %zu records to %s\n", records.size(), json_path->c_str());
  }
  return 0;
}
