#include "exp/experiment.hpp"

#include <algorithm>
#include <array>

#include "common/check.hpp"
#include "exp/parallel_runner.hpp"

namespace simty::exp {

const char* to_string(PolicyKind p) {
  switch (p) {
    case PolicyKind::kNative: return "NATIVE";
    case PolicyKind::kSimty: return "SIMTY";
    case PolicyKind::kExact: return "EXACT";
    case PolicyKind::kSimtyDuration: return "SIMTY-DUR";
    case PolicyKind::kFixedInterval: return "FIXED";
  }
  return "?";
}

const char* to_string(WorkloadKind w) {
  switch (w) {
    case WorkloadKind::kLight: return "light";
    case WorkloadKind::kHeavy: return "heavy";
    case WorkloadKind::kSynthetic: return "synthetic";
  }
  return "?";
}

// run_experiment lives in exp/run.cpp: it is now a thin wrapper over the
// resumable exp::Run harness, which owns the stack-assembly order.

RunResult average_results(const std::vector<RunResult>& results) {
  SIMTY_CHECK(!results.empty());
  RunResult mean = results.front();
  const auto n = static_cast<double>(results.size());
  if (results.size() == 1) return mean;

  auto zero_add = [&](auto get) {
    double sum = 0.0;
    for (const RunResult& r : results) sum += get(r);
    return sum / n;
  };

  Energy sleep = Energy::zero(), waking = Energy::zero(), awake = Energy::zero();
  Energy trans = Energy::zero(), comp = Energy::zero(), act = Energy::zero();
  std::array<Energy, hw::kComponentCount> per{};
  for (const RunResult& r : results) {
    sleep += r.energy.sleep;
    waking += r.energy.waking;
    awake += r.energy.awake_base;
    trans += r.energy.wake_transitions;
    comp += r.energy.component_active;
    act += r.energy.component_activation;
    for (std::size_t i = 0; i < per.size(); ++i) per[i] += r.energy.per_component[i];
  }
  mean.energy.sleep = sleep / n;
  mean.energy.waking = waking / n;
  mean.energy.awake_base = awake / n;
  mean.energy.wake_transitions = trans / n;
  mean.energy.component_active = comp / n;
  mean.energy.component_activation = act / n;
  for (std::size_t i = 0; i < per.size(); ++i) mean.energy.per_component[i] = per[i] / n;

  mean.average_power_mw = zero_add([](const RunResult& r) { return r.average_power_mw; });
  mean.projected_standby_hours =
      zero_add([](const RunResult& r) { return r.projected_standby_hours; });
  mean.delay_perceptible =
      zero_add([](const RunResult& r) { return r.delay_perceptible; });
  mean.delay_imperceptible =
      zero_add([](const RunResult& r) { return r.delay_imperceptible; });
  mean.delay_imperceptible_p95 =
      zero_add([](const RunResult& r) { return r.delay_imperceptible_p95; });
  for (std::size_t i = 0; i < mean.wakeups.size(); ++i) {
    double actual = 0.0, expected = 0.0;
    for (const RunResult& r : results) {
      SIMTY_CHECK(r.wakeups.size() == mean.wakeups.size());
      actual += r.wakeups[i].actual;
      expected += r.wakeups[i].expected;
    }
    mean.wakeups[i].actual = actual / n;
    mean.wakeups[i].expected = expected / n;
  }
  mean.deliveries = zero_add([](const RunResult& r) { return r.deliveries; });
  mean.batches_delivered =
      zero_add([](const RunResult& r) { return r.batches_delivered; });
  mean.one_shots = zero_add([](const RunResult& r) { return r.one_shots; });
  mean.awake_seconds = zero_add([](const RunResult& r) { return r.awake_seconds; });
  mean.asleep_seconds = zero_add([](const RunResult& r) { return r.asleep_seconds; });

  mean.pages_answered = zero_add([](const RunResult& r) { return r.pages_answered; });
  mean.page_delay_avg_s =
      zero_add([](const RunResult& r) { return r.page_delay_avg_s; });
  mean.page_delay_p95_s =
      zero_add([](const RunResult& r) { return r.page_delay_p95_s; });
  mean.drx_listen_seconds =
      zero_add([](const RunResult& r) { return r.drx_listen_seconds; });
  mean.wur_listen_seconds =
      zero_add([](const RunResult& r) { return r.wur_listen_seconds; });
  mean.wur_triggers = zero_add([](const RunResult& r) { return r.wur_triggers; });

  double worst = 0.0;
  std::uint64_t violations = 0, misses = 0;
  for (const RunResult& r : results) {
    worst = std::max(worst, r.worst_gap_ratio);
    violations += r.gap_violations;
    misses += r.perceptible_window_misses;
  }
  mean.worst_gap_ratio = worst;
  mean.gap_violations = violations;
  mean.perceptible_window_misses = misses;
  mean.runs = static_cast<int>(results.size());
  return mean;
}

namespace {

std::vector<ExperimentConfig> seeded_configs(const ExperimentConfig& config,
                                             int repetitions) {
  std::vector<ExperimentConfig> configs(static_cast<std::size_t>(repetitions),
                                        config);
  for (int i = 0; i < repetitions; ++i) {
    configs[static_cast<std::size_t>(i)].seed =
        config.seed + static_cast<std::uint64_t>(i);
    // One tracer records one run: keep it on the base seed only, so the
    // capture is identical whether the sweep runs serially or in parallel.
    if (i > 0) configs[static_cast<std::size_t>(i)].tracer = nullptr;
  }
  return configs;
}

// Caller-supplied hooks (delivery/session observers, power listeners) are
// owned by the caller and invoked from whichever run carries them; they are
// not required to be thread-safe, so their presence forces the serial path.
bool has_external_hooks(const ExperimentConfig& c) {
  return c.extra_power_listener != nullptr ||
         static_cast<bool>(c.extra_delivery_observer) ||
         static_cast<bool>(c.extra_session_observer);
}

}  // namespace

RunResult run_repeated(ExperimentConfig config, int repetitions, int jobs) {
  SIMTY_CHECK(repetitions > 0);
  if (has_external_hooks(config)) jobs = 1;
  return average_results(run_sweep(seeded_configs(config, repetitions), jobs));
}

RepeatedStats run_repeated_stats(ExperimentConfig config, int repetitions,
                                 int jobs) {
  SIMTY_CHECK(repetitions > 0);
  if (has_external_hooks(config)) jobs = 1;
  const std::vector<RunResult> results =
      run_sweep(seeded_configs(config, repetitions), jobs);
  RepeatedStats out;
  for (const RunResult& r : results) {
    out.total_j.add(r.energy.total().joules_f());
    out.awake_j.add(r.energy.awake_total().joules_f());
    out.delay_imperceptible.add(r.delay_imperceptible);
    out.standby_hours.add(r.projected_standby_hours);
    for (const auto& w : r.wakeups) {
      if (w.hardware == "CPU") out.cpu_wakeups.add(w.actual);
    }
  }
  out.mean = average_results(results);
  return out;
}

}  // namespace simty::exp
