#pragma once
// 3G RRC radio state machine (IDLE / FACH / DCH).
//
// Table 2's handset carries a WCDMA radio; the references the paper builds
// on ([8], [12]) work in this regime, where the dominant cost is not the
// transfer but the state machine: any data promotes the radio to DCH
// (high power, with a costly signaling exchange), and inactivity timers
// demote it DCH -> FACH -> IDLE tens of seconds later. Aligning syncs means
// sharing one promotion and one demotion tail — cellular standby is where
// alarm alignment pays the most.
//
// The machine publishes the cellular rail on the PowerBus; app tasks drive
// it via data_activity() from their delivery handlers.

#include <cstdint>
#include <functional>
#include <optional>

#include "common/time.hpp"
#include "common/units.hpp"
#include "hw/power_bus.hpp"
#include "sim/simulator.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::net {

/// Radio resource control states.
enum class RrcState : std::uint8_t { kIdle = 0, kFach, kDch };

const char* to_string(RrcState s);

/// Powers, inactivity timers, and promotion costs (typical WCDMA values).
struct RrcConfig {
  Power dch = Power::milliwatts(800.0);
  Power fach = Power::milliwatts(460.0);
  // IDLE paging draw sits inside the device's sleep floor: rail reads 0.

  Duration dch_to_fach = Duration::seconds(5);   // T1 inactivity
  Duration fach_to_idle = Duration::seconds(12); // T2 inactivity

  /// Signaling cost of an IDLE -> DCH promotion.
  Energy idle_promotion = Energy::millijoules(600.0);

  /// Cheaper FACH -> DCH promotion.
  Energy fach_promotion = Energy::millijoules(250.0);
};

/// Event-driven RRC machine; single radio per device.
class RrcMachine {
 public:
  RrcMachine(sim::Simulator& sim, RrcConfig config, hw::PowerBus& bus);

  RrcMachine(const RrcMachine&) = delete;
  RrcMachine& operator=(const RrcMachine&) = delete;

  /// The radio moves data for `duration` starting now: promotes to DCH
  /// (paying the promotion cost from the current state) and resets the
  /// inactivity timers. Overlapping activity extends the busy window.
  void data_activity(Duration duration);

  RrcState state() const { return state_; }

  /// Observer invoked after every state transition (promotions and timer
  /// demotions alike) with the new state. The DRX pager uses it to gate the
  /// wake-up receiver's listen rail to IDLE periods. Wiring, not state: it
  /// is NOT serialized, and restore() does not fire it — restored observers
  /// re-derive their view from their own restored state.
  void set_state_observer(std::function<void(RrcState)> observer);

  std::uint64_t idle_promotions() const { return idle_promotions_; }
  std::uint64_t fach_promotions() const { return fach_promotions_; }

  /// Accumulated time per state (finalize() flushes the open span).
  Duration time_in(RrcState s) const;
  void finalize(TimePoint now);

  /// Serializes the radio state, busy window, pending demotion timer, and
  /// counters; restore() rebinds the demotion stage matching the saved
  /// state and re-announces the current rail on the bus.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  void enter(RrcState next);
  void arm_demotion();
  void demote_to_fach();
  void demote_to_idle();

  sim::Simulator& sim_;
  RrcConfig config_;
  hw::PowerBus& bus_;

  std::function<void(RrcState)> state_observer_;
  RrcState state_ = RrcState::kIdle;
  TimePoint state_since_;
  TimePoint busy_until_;
  std::optional<sim::EventId> demotion_event_;
  std::uint64_t idle_promotions_ = 0;
  std::uint64_t fach_promotions_ = 0;
  Duration time_in_[3] = {};
};

}  // namespace simty::net
