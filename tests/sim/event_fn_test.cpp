#include "sim/event_fn.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

namespace simty::sim {
namespace {

TEST(EventFn, DefaultIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, InvokesStoredCallable) {
  int calls = 0;
  EventFn fn([&] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, MoveTransfersOwnership) {
  int calls = 0;
  EventFn a([&] { ++calls; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  EventFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, DestroysCaptureExactlyOnce) {
  const auto tracker = std::make_shared<int>(7);
  EXPECT_EQ(tracker.use_count(), 1);
  {
    EventFn fn([tracker] {});
    EXPECT_EQ(tracker.use_count(), 2);
    EventFn moved(std::move(fn));
    // A relocation must not duplicate the capture.
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(EventFn, ResetReleasesCapture) {
  const auto tracker = std::make_shared<int>(1);
  EventFn fn([tracker] {});
  EXPECT_EQ(tracker.use_count(), 2);
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(EventFn, MoveAssignDestroysPreviousCallable) {
  const auto old_capture = std::make_shared<int>(1);
  EventFn fn([old_capture] {});
  EXPECT_EQ(old_capture.use_count(), 2);
  int calls = 0;
  fn = EventFn([&calls] { ++calls; });
  EXPECT_EQ(old_capture.use_count(), 1);  // previous capture destroyed
  fn();
  EXPECT_EQ(calls, 1);
}

TEST(EventFn, HoldsCaptureAtInlineCapacity) {
  // A capture exactly at the inline limit must fit (the converting
  // constructor static_asserts this at compile time — instantiating it is
  // the test).
  struct Blob {
    unsigned char bytes[EventFn::kInlineBytes - sizeof(void*)];
  };
  Blob blob{};  // the lambda below captures Blob + a reference: exactly kInlineBytes
  blob.bytes[0] = 42;
  int out = 0;
  EventFn fn([blob, &out] { out = blob.bytes[0]; });
  fn();
  EXPECT_EQ(out, 42);
}

}  // namespace
}  // namespace simty::sim
