#pragma once
// Paper-style rendering of experiment results: one function per reproduced
// figure/table, consumed by the bench binaries and examples.

#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace simty::exp {

/// A named result column (e.g. "L-NATIVE" -> its averaged RunResult).
struct NamedResult {
  std::string label;
  RunResult result;
};

/// Fig 3: energy consumption (awake / sleep split, totals, savings vs the
/// first column of each workload pair).
std::string render_energy_figure(const std::vector<NamedResult>& columns);

/// Fig 4: average normalized delivery delay of perceptible and
/// imperceptible alarms.
std::string render_delay_figure(const std::vector<NamedResult>& columns);

/// Table 4: the wakeup breakdown with actual/expected entries.
std::string render_wakeup_table(const std::vector<NamedResult>& columns);

/// Standby-time projection (the paper's headline claim).
std::string render_standby_projection(const std::vector<NamedResult>& columns);

/// Guarantee audit summary (§3.2.2 properties).
std::string render_guarantee_audit(const std::vector<NamedResult>& columns);

/// Downlink paging summary (DRX/WuR scenario). Returns an empty string
/// when no column carries paging activity, so callers can print it
/// unconditionally.
std::string render_paging_table(const std::vector<NamedResult>& columns);

/// Writes the energy/delay/wakeups series as CSV rows for plotting.
std::string results_csv(const std::vector<NamedResult>& columns);

}  // namespace simty::exp
