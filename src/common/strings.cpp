#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace simty {

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), static_cast<std::size_t>(needed) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

std::string percent(double fraction, int decimals) {
  return str_format("%.*f%%", decimals, fraction * 100.0);
}

}  // namespace simty
