#!/usr/bin/env bash
# Diffs a fresh bench --json output against its checked-in baseline.
#
#   tools/check_bench_baseline.sh bench/BENCH_queue_scale.json fresh.json
#
# Two gates:
#   1. The record-name sets must match exactly — dropping or renaming a
#      workload requires a deliberate baseline update.
#   2. No `speedup/...` record may collapse: each fresh ratio must stay at
#      or above 40% of the baseline ratio (CI machines are noisy; a real
#      complexity regression shows up as an order of magnitude, not 2.5x).
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 <baseline.json> <fresh.json>" >&2
  exit 2
fi
base="$1"
fresh="$2"

names() { sed -n 's|.*"name": "\([^"]*\)".*|\1|p' "$1" | sort; }

if ! diff <(names "$base") <(names "$fresh") >/dev/null; then
  echo "bench baseline mismatch: record names differ from $base" >&2
  diff <(names "$base") <(names "$fresh") >&2 || true
  exit 1
fi

rate() { sed -n "s|.*\"name\": \"$2\".*\"events_per_sec\": \([0-9.]*\).*|\1|p" "$1"; }

status=0
while read -r name; do
  b=$(rate "$base" "$name")
  f=$(rate "$fresh" "$name")
  # Name the failing metric in every mode: an unparseable rate must fail
  # loudly (empty awk vars would otherwise compare 0 >= 0 and pass).
  if [ -z "$b" ] || [ -z "$f" ]; then
    echo "FAIL: metric '$name' has no parseable ratio (baseline='${b}' fresh='${f}')" >&2
    status=1
  elif [ "$(awk -v b="$b" -v f="$f" 'BEGIN { print (f >= 0.4 * b) ? 1 : 0 }')" != 1 ]; then
    echo "FAIL: metric '$name' fell below the 40% floor: baseline=${b}x fresh=${f}x (floor $(awk -v b="$b" 'BEGIN { printf "%.3f", 0.4 * b }')x)" >&2
    status=1
  else
    echo "ok: $name baseline=${b}x fresh=${f}x"
  fi
done < <(names "$base" | grep '^speedup/')
exit $status
