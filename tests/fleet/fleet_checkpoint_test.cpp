// Fleet shard checkpointing: a killed fleet run restarted with the same
// config and checkpoint directory must produce aggregates bit-identical to
// an uninterrupted run, at any jobs count. Checkpoint cadence must never
// change a result bit, and a checkpoint from a different shard partition
// must be rejected loudly instead of silently skewing aggregates.

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "fleet/fleet_runner.hpp"
#include "fleet/report.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::fleet {
namespace {

namespace fs = std::filesystem;

std::vector<CohortSpec> quick_cohorts() {
  CohortSpec phones;
  phones.name = "phones";
  phones.weight = 2.0;
  phones.min_apps = 2;
  phones.max_apps = 4;
  phones.standby = Duration::minutes(3);
  CohortSpec degraded;
  degraded.name = "degraded";
  degraded.weight = 1.0;
  degraded.min_apps = 2;
  degraded.max_apps = 3;
  degraded.degraded_network_fraction = 1.0;
  degraded.standby = Duration::minutes(3);
  return {phones, degraded};
}

FleetConfig quick_fleet(int jobs) {
  FleetConfig fc;
  fc.cohorts = quick_cohorts();
  fc.devices = 48;
  fc.policy = exp::PolicyKind::kSimty;
  fc.seed = 5;
  fc.jobs = jobs;
  fc.shard_devices = 8;
  return fc;
}

/// Fresh checkpoint directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "simty_fleet_ckpt_" + name;
  fs::remove_all(dir);
  return dir;
}

/// The full-precision fleet CSV is the strongest single equality check:
/// every Welford double prints at max precision, so byte-equality here is
/// bit-identity of the aggregates.
void expect_identical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(fleet_csv({a}), fleet_csv({b}));
  ASSERT_EQ(a.cohorts.size(), b.cohorts.size());
  for (std::size_t i = 0; i < a.cohorts.size(); ++i) {
    EXPECT_EQ(a.cohorts[i].devices, b.cohorts[i].devices);
    EXPECT_EQ(a.cohorts[i].energy_j.stats().mean(),
              b.cohorts[i].energy_j.stats().mean());
    EXPECT_EQ(a.cohorts[i].energy_j.stats().variance(),
              b.cohorts[i].energy_j.stats().variance());
    EXPECT_EQ(a.cohorts[i].energy_j.quantile(0.95),
              b.cohorts[i].energy_j.quantile(0.95));
  }
  EXPECT_EQ(a.overall.devices, b.overall.devices);
}

TEST(FleetCheckpoint, CheckpointingNeverChangesResults) {
  const FleetResult plain = run_fleet(quick_fleet(1));
  for (const std::uint64_t every : {1u, 3u, 64u}) {
    SCOPED_TRACE(every);
    FleetConfig fc = quick_fleet(1);
    fc.checkpoint_dir = fresh_dir("cadence_" + std::to_string(every));
    fc.checkpoint_every = every;
    expect_identical(plain, run_fleet(fc));
    fs::remove_all(fc.checkpoint_dir);
  }
}

TEST(FleetCheckpoint, KilledShardResumesBitIdentical) {
  const FleetResult expected = run_fleet(quick_fleet(1));
  for (const int jobs : {1, 4}) {
    SCOPED_TRACE(jobs);
    FleetConfig fc = quick_fleet(jobs);
    fc.checkpoint_dir = fresh_dir("kill_" + std::to_string(jobs));
    fc.checkpoint_every = 2;
    fc.fault_shard = 2;
    fc.fault_after_devices = 5;
    try {
      run_fleet(fc);
      FAIL() << "expected injected fault";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("injected fault"),
                std::string::npos);
    }
    // Restart with the fault cleared: every shard resumes from its last
    // checkpoint (the faulted one mid-shard, finished ones at their end
    // cursor) and the result matches the uninterrupted run byte-for-byte.
    fc.fault_shard = -1;
    expect_identical(expected, run_fleet(fc));
    fs::remove_all(fc.checkpoint_dir);
  }
}

TEST(FleetCheckpoint, FinishedShardLeavesEndCursorCheckpoint) {
  FleetConfig fc = quick_fleet(1);
  fc.checkpoint_dir = fresh_dir("cursor");
  fc.checkpoint_every = 64;  // > shard size: only the final write happens
  run_fleet(fc);
  // 48 devices at weights 2:1 over shard size 8 -> 32 + 16 -> 6 shards.
  for (int i = 0; i < 6; ++i) {
    const std::string path =
        fc.checkpoint_dir + "/shard_" + std::to_string(i) + ".ckpt";
    ASSERT_TRUE(fs::exists(path)) << path;
    const snapshot::Reader reader(snapshot::read_file(path));
    snapshot::SectionReader s = reader.section("fleet-shard", 1);
    EXPECT_EQ(s.u64(), static_cast<std::uint64_t>(i));  // shard index
    s.str();                                            // cohort name
    const std::uint64_t begin = s.u64();
    const std::uint64_t end = s.u64();
    EXPECT_EQ(s.u64(), end);  // cursor parked at the shard end
    EXPECT_EQ(end - begin, 8u);
  }
  fs::remove_all(fc.checkpoint_dir);
}

TEST(FleetCheckpoint, RejectsCheckpointFromDifferentPartition) {
  FleetConfig fc = quick_fleet(1);
  fc.checkpoint_dir = fresh_dir("partition");
  run_fleet(fc);
  // Same directory, different shard slicing: the begin/end identity fields
  // no longer match, which must fail loudly (a silent resume would fold a
  // foreign aggregate into this partition's merge tree).
  fc.shard_devices = 6;
  EXPECT_THROW(run_fleet(fc), std::logic_error);
  fs::remove_all(fc.checkpoint_dir);
}

}  // namespace
}  // namespace simty::fleet
