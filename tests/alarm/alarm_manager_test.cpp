#include "alarm/alarm_manager.hpp"

#include <gtest/gtest.h>

#include "alarm/exact_policy.hpp"
#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "support/framework_fixture.hpp"

namespace simty::alarm {
namespace {

using hw::Component;
using hw::ComponentSet;
using test::FrameworkFixture;

class AlarmManagerTest : public FrameworkFixture {};

TEST_F(AlarmManagerTest, DeliversOneShotAtNominalPlusWakeLatency) {
  init(std::make_unique<NativePolicy>());
  const AlarmId id = manager_->register_alarm(
      AlarmSpec::one_shot("reminder", AppId{1}, Duration::seconds(30)), at(100),
      noop_task());
  sim_.run_until(at(200));
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].id, id);
  EXPECT_EQ(deliveries_[0].delivered, at(100) + model_.wake_latency);
  EXPECT_EQ(deliveries_[0].nominal, at(100));
  // One-shot alarms are deregistered after delivery.
  EXPECT_FALSE(manager_->is_registered(id));
  EXPECT_EQ(device_->wakeup_count(), 1u);
}

TEST_F(AlarmManagerTest, StaticRepeatingStaysOnNominalGrid) {
  init(std::make_unique<NativePolicy>());
  const AlarmId id = manager_->register_alarm(
      AlarmSpec::repeating("tick", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(300), 0.0, 0.5),
      at(300), task(ComponentSet{Component::kWifi}, Duration::seconds(2)));
  sim_.run_until(at(1600));
  const auto recs = deliveries_of(id);
  ASSERT_EQ(recs.size(), 5u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].nominal, at(300) + Duration::seconds(300) * i);
  }
}

TEST_F(AlarmManagerTest, DynamicRepeatingAnchorsAtDeliveryTime) {
  init(std::make_unique<NativePolicy>());
  const AlarmId id = manager_->register_alarm(
      AlarmSpec::repeating("sync", AppId{1}, RepeatMode::kDynamic,
                           Duration::seconds(300), 0.0, 0.5),
      at(300), task(ComponentSet{Component::kWifi}, Duration::seconds(2)));
  sim_.run_until(at(1000));
  const auto recs = deliveries_of(id);
  ASSERT_GE(recs.size(), 2u);
  // Each next nominal equals the previous delivery time + ReIn, so the
  // wake latency compounds: deliveries drift behind the fixed grid.
  EXPECT_EQ(recs[1].nominal, recs[0].delivered + Duration::seconds(300));
  EXPECT_GT(recs[1].nominal, at(600));
}

TEST_F(AlarmManagerTest, NativeAlignsOverlappingWindowsIntoOneWakeup) {
  init(std::make_unique<NativePolicy>());
  const AlarmId a = manager_->register_alarm(
      AlarmSpec::repeating("a", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(100), task(ComponentSet{Component::kWifi}, Duration::seconds(2)));
  const AlarmId b = manager_->register_alarm(
      AlarmSpec::repeating("b", AppId{2}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(300), task(ComponentSet{Component::kWifi}, Duration::seconds(2)));
  // Windows [100,550] and [300,750] overlap -> one entry, one wakeup, both
  // delivered at the entry delivery time (max nominal = 300).
  EXPECT_EQ(manager_->queue(AlarmKind::kWakeup).size(), 1u);
  sim_.run_until(at(400));
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(device_->wakeup_count(), 1u);
  EXPECT_EQ(deliveries_of(a)[0].delivered, deliveries_of(b)[0].delivered);
  EXPECT_EQ(deliveries_[0].delivered, at(300) + model_.wake_latency);
  EXPECT_EQ(deliveries_[0].batch_size, 2u);
}

TEST_F(AlarmManagerTest, ExactPolicyWakesPerAlarm) {
  init(std::make_unique<ExactPolicy>());
  manager_->register_alarm(
      AlarmSpec::repeating("a", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(100), noop_task());
  manager_->register_alarm(
      AlarmSpec::repeating("b", AppId{2}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(300), noop_task());
  EXPECT_EQ(manager_->queue(AlarmKind::kWakeup).size(), 2u);
  sim_.run_until(at(400));
  EXPECT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(device_->wakeup_count(), 2u);
}

TEST_F(AlarmManagerTest, CancelRemovesFromQueueAndRegistry) {
  init(std::make_unique<NativePolicy>());
  const AlarmId id = manager_->register_alarm(
      AlarmSpec::one_shot("x", AppId{1}, Duration::seconds(30)), at(100),
      noop_task());
  manager_->cancel(id);
  EXPECT_FALSE(manager_->is_registered(id));
  EXPECT_TRUE(manager_->queue(AlarmKind::kWakeup).empty());
  sim_.run_until(at(200));
  EXPECT_TRUE(deliveries_.empty());
  EXPECT_EQ(device_->wakeup_count(), 0u);
  EXPECT_THROW(manager_->cancel(id), std::logic_error);
}

TEST_F(AlarmManagerTest, CancelDissolvesSharedEntry) {
  init(std::make_unique<NativePolicy>());
  const AlarmId a = manager_->register_alarm(
      AlarmSpec::repeating("a", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(100), noop_task());
  const AlarmId b = manager_->register_alarm(
      AlarmSpec::repeating("b", AppId{2}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(300), noop_task());
  ASSERT_EQ(manager_->queue(AlarmKind::kWakeup).size(), 1u);
  manager_->cancel(a);
  // b remains, now alone; its delivery time reverts to its own nominal.
  ASSERT_EQ(manager_->queue(AlarmKind::kWakeup).size(), 1u);
  EXPECT_EQ(manager_->queue(AlarmKind::kWakeup)[0]->delivery_time(), at(300));
  sim_.run_until(at(400));
  EXPECT_EQ(deliveries_of(b).size(), 1u);
  EXPECT_EQ(deliveries_of(a).size(), 0u);
}

TEST_F(AlarmManagerTest, SetReschedulesAndRealignsEntry) {
  init(std::make_unique<NativePolicy>());
  const AlarmId a = manager_->register_alarm(
      AlarmSpec::repeating("a", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(100), noop_task());
  manager_->register_alarm(
      AlarmSpec::repeating("b", AppId{2}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(300), noop_task());
  ASSERT_EQ(manager_->queue(AlarmKind::kWakeup).size(), 1u);
  // Re-registering a while it is still queued dissolves the shared entry
  // and reinserts both (§2.1's realignment).
  manager_->set(a, at(2000));
  EXPECT_EQ(manager_->queue(AlarmKind::kWakeup).size(), 2u);
  EXPECT_EQ(manager_->stats().realignments, 1u);
  EXPECT_EQ(manager_->find(a)->nominal(), at(2000));
}

TEST_F(AlarmManagerTest, QueueSortedByDeliveryTime) {
  init(std::make_unique<ExactPolicy>());
  manager_->register_alarm(AlarmSpec::one_shot("late", AppId{1}, Duration::seconds(10)),
                           at(500), noop_task());
  manager_->register_alarm(AlarmSpec::one_shot("early", AppId{1}, Duration::seconds(10)),
                           at(100), noop_task());
  const auto& q = manager_->queue(AlarmKind::kWakeup);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_LT(q[0]->delivery_time(), q[1]->delivery_time());
}

TEST_F(AlarmManagerTest, HardwareProfileLearnedAfterFirstDelivery) {
  init(std::make_unique<SimtyPolicy>());
  const AlarmId id = manager_->register_alarm(
      AlarmSpec::repeating("sync", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(300), 0.5, 0.9),
      at(100), task(ComponentSet{Component::kWifi}, Duration::seconds(3)));
  EXPECT_FALSE(manager_->find(id)->hardware_known());
  EXPECT_TRUE(manager_->find(id)->perceptible());  // footnote 5
  sim_.run_until(at(200));
  EXPECT_TRUE(manager_->find(id)->hardware_known());
  EXPECT_EQ(manager_->find(id)->hardware(), (ComponentSet{Component::kWifi}));
  EXPECT_FALSE(manager_->find(id)->perceptible());
}

TEST_F(AlarmManagerTest, DeliverySessionWakelocksHardware) {
  init(std::make_unique<NativePolicy>());
  manager_->register_alarm(
      AlarmSpec::repeating("scan", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.5, 0.9),
      at(100), task(ComponentSet{Component::kWps}, Duration::seconds(10)));
  sim_.run_until(at(300));
  EXPECT_EQ(wakelocks_->usage(Component::kWps).cycles, 1u);
  EXPECT_EQ(wakelocks_->usage(Component::kWps).on_time, Duration::seconds(10));
  // The device stayed awake for the task and went back to sleep after.
  EXPECT_EQ(device_->state(), hw::DeviceState::kAsleep);
}

TEST_F(AlarmManagerTest, AlignedIdenticalTasksShareOneHardwareCycle) {
  init(std::make_unique<NativePolicy>());
  // Two WPS alarms aligned into one entry: the WPS powers up once (its
  // serial fraction is 0 -> pure piggybacking).
  for (int i = 0; i < 2; ++i) {
    manager_->register_alarm(
        AlarmSpec::repeating("scan" + std::to_string(i), AppId{1},
                             RepeatMode::kStatic, Duration::seconds(600), 0.75, 0.96),
        at(100 + i * 50), task(ComponentSet{Component::kWps}, Duration::seconds(10)));
  }
  sim_.run_until(at(400));
  EXPECT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(device_->wakeup_count(), 1u);
  EXPECT_EQ(wakelocks_->usage(Component::kWps).cycles, 1u);
  EXPECT_EQ(wakelocks_->usage(Component::kWps).acquisitions, 2u);
  EXPECT_EQ(wakelocks_->usage(Component::kWps).on_time, Duration::seconds(10));
}

TEST_F(AlarmManagerTest, SerializedComponentExtendsOnTime) {
  init(std::make_unique<NativePolicy>());
  // Wi-Fi serializes 40% of each predecessor hold: two 5 s syncs aligned
  // hold the radio 5 * 0.4 + 5 = 7 s in one cycle.
  for (int i = 0; i < 2; ++i) {
    manager_->register_alarm(
        AlarmSpec::repeating("sync" + std::to_string(i), AppId{1},
                             RepeatMode::kStatic, Duration::seconds(600), 0.75, 0.96),
        at(100 + i * 50), task(ComponentSet{Component::kWifi}, Duration::seconds(5)));
  }
  sim_.run_until(at(400));
  EXPECT_EQ(wakelocks_->usage(Component::kWifi).cycles, 1u);
  EXPECT_EQ(wakelocks_->usage(Component::kWifi).on_time, Duration::seconds(7));
}

TEST_F(AlarmManagerTest, NonWakeupAlarmWaitsForDeviceWake) {
  init(std::make_unique<NativePolicy>());
  AlarmSpec spec = AlarmSpec::repeating("lazy", AppId{1}, RepeatMode::kStatic,
                                        Duration::seconds(600), 0.1, 0.9);
  spec.kind = AlarmKind::kNonWakeup;
  const AlarmId lazy = manager_->register_alarm(
      spec, at(100), task(ComponentSet{Component::kWifi}, Duration::seconds(1)));
  // Nothing wakes the device at 100; the non-wakeup alarm must wait.
  sim_.run_until(at(400));
  EXPECT_TRUE(deliveries_of(lazy).empty());
  // A wakeup alarm at 500 wakes the device; the pending non-wakeup alarm
  // rides along.
  manager_->register_alarm(AlarmSpec::one_shot("wake", AppId{2}, Duration::seconds(10)),
                           at(500), noop_task());
  sim_.run_until(at(600));
  const auto recs = deliveries_of(lazy);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].delivered, at(500) + model_.wake_latency);
}

TEST_F(AlarmManagerTest, NonWakeupAlarmDeliveredWhileDeviceAwake) {
  init(std::make_unique<NativePolicy>());
  // Keep the device awake from 100 with a long CPU-bound task.
  manager_->register_alarm(
      AlarmSpec::one_shot("busy", AppId{1}, Duration::seconds(5)), at(100),
      task(ComponentSet{Component::kWifi}, Duration::seconds(60)));
  AlarmSpec spec = AlarmSpec::repeating("lazy", AppId{2}, RepeatMode::kStatic,
                                        Duration::seconds(600), 0.1, 0.9);
  spec.kind = AlarmKind::kNonWakeup;
  const AlarmId lazy = manager_->register_alarm(spec, at(130), noop_task());
  sim_.run_until(at(200));
  const auto recs = deliveries_of(lazy);
  ASSERT_EQ(recs.size(), 1u);
  // Delivered at its own nominal time because the device was already awake.
  EXPECT_EQ(recs[0].delivered, at(130));
  EXPECT_EQ(device_->wakeup_count(), 1u);
}

TEST_F(AlarmManagerTest, WakeupAndNonWakeupQueuesAreSeparate) {
  init(std::make_unique<NativePolicy>());
  AlarmSpec nw = AlarmSpec::repeating("nw", AppId{1}, RepeatMode::kStatic,
                                      Duration::seconds(600), 0.75, 0.96);
  nw.kind = AlarmKind::kNonWakeup;
  manager_->register_alarm(nw, at(100), noop_task());
  manager_->register_alarm(
      AlarmSpec::repeating("w", AppId{2}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.75, 0.96),
      at(100), noop_task());
  // Overlapping windows but different kinds -> not batched together.
  EXPECT_EQ(manager_->queue(AlarmKind::kWakeup).size(), 1u);
  EXPECT_EQ(manager_->queue(AlarmKind::kNonWakeup).size(), 1u);
}

TEST_F(AlarmManagerTest, StatsCountRegistrationsAndDeliveries) {
  init(std::make_unique<NativePolicy>());
  manager_->register_alarm(
      AlarmSpec::repeating("a", AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(300), 0.0, 0.5),
      at(300), noop_task());
  sim_.run_until(at(1000));
  EXPECT_EQ(manager_->stats().registrations, 1u);
  EXPECT_EQ(manager_->stats().deliveries, 3u);  // 300, 600, 900 (+latency)
  EXPECT_EQ(manager_->stats().batches_delivered, 3u);
}

TEST_F(AlarmManagerTest, RegistrationInThePastRejected) {
  init(std::make_unique<NativePolicy>());
  sim_.schedule_at(at(100), [] {});
  sim_.run_all();
  EXPECT_THROW(manager_->register_alarm(
                   AlarmSpec::one_shot("x", AppId{1}, Duration::seconds(10)), at(50),
                   noop_task()),
               std::logic_error);
}

TEST_F(AlarmManagerTest, RtcTracksQueueHead) {
  init(std::make_unique<ExactPolicy>());
  manager_->register_alarm(AlarmSpec::one_shot("b", AppId{1}, Duration::seconds(10)),
                           at(500), noop_task());
  ASSERT_TRUE(rtc_->programmed().has_value());
  EXPECT_EQ(*rtc_->programmed(), at(500));
  // An earlier alarm re-targets the RTC.
  manager_->register_alarm(AlarmSpec::one_shot("a", AppId{1}, Duration::seconds(10)),
                           at(200), noop_task());
  EXPECT_EQ(*rtc_->programmed(), at(200));
  sim_.run_until(at(1000));
  // Queue drained -> RTC cleared.
  EXPECT_FALSE(rtc_->programmed().has_value());
}

}  // namespace
}  // namespace simty::alarm
