# Empty dependencies file for simty_usage.
# This may be replaced when dependencies are built.
