// Ablation A2: similarity-classification granularity (§3.1.1 discusses
// 2-, 3- and 4-level hardware similarity as design alternatives) plus the
// policy family: EXACT (no alignment), NATIVE (time-window only), SIMTY
// under each hardware-similarity mode, and the duration extension.
// Expectation: every SIMTY variant beats NATIVE beats EXACT; granularity
// moves the needle only modestly because the heavy workload's hardware
// sets are mostly singletons.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"

using namespace simty;

namespace {

exp::RunResult run(exp::PolicyKind policy, alarm::HardwareSimilarityMode mode,
                   alarm::TimeSimilarityMode time_mode =
                       alarm::TimeSimilarityMode::kThreeLevel) {
  exp::ExperimentConfig c;
  c.policy = policy;
  c.similarity.hw_mode = mode;
  c.similarity.time_mode = time_mode;
  c.workload = exp::WorkloadKind::kHeavy;
  return exp::run_repeated(c, 3);
}

}  // namespace

int main() {
  struct Variant {
    const char* label;
    exp::PolicyKind policy;
    alarm::HardwareSimilarityMode mode;
  };
  const Variant kVariants[] = {
      {"EXACT (no alignment)", exp::PolicyKind::kExact,
       alarm::HardwareSimilarityMode::kThreeLevel},
      {"NATIVE", exp::PolicyKind::kNative, alarm::HardwareSimilarityMode::kThreeLevel},
      {"SIMTY 2-level hw", exp::PolicyKind::kSimty,
       alarm::HardwareSimilarityMode::kTwoLevel},
      {"SIMTY 3-level hw (paper)", exp::PolicyKind::kSimty,
       alarm::HardwareSimilarityMode::kThreeLevel},
      {"SIMTY 4-level hw", exp::PolicyKind::kSimty,
       alarm::HardwareSimilarityMode::kFourLevel},
      {"SIMTY-DUR (section 5)", exp::PolicyKind::kSimtyDuration,
       alarm::HardwareSimilarityMode::kThreeLevel},
  };

  // The decomposition row: SIMTY without grace credit (window-only time
  // similarity) keeps the hardware-aware selection but loses the
  // postponement freedom — the gap to full SIMTY is the grace interval's
  // contribution.
  const exp::RunResult window_only =
      run(exp::PolicyKind::kSimty, alarm::HardwareSimilarityMode::kThreeLevel,
          alarm::TimeSimilarityMode::kWindowOnly);

  TextTable t("Similarity-granularity ablation (heavy workload, 3 seeds)");
  t.set_header({"Variant", "total (J)", "awake (J)", "CPU wakeups",
                "Wi-Fi cycles", "WPS cycles", "imperceptible delay"});
  for (const Variant& v : kVariants) {
    const exp::RunResult r = run(v.policy, v.mode);
    double cpu = 0.0, wifi = 0.0, wps = 0.0;
    for (const auto& w : r.wakeups) {
      if (w.hardware == "CPU") cpu = w.actual;
      if (w.hardware == "Wi-Fi") wifi = w.actual;
      if (w.hardware == "WPS") wps = w.actual;
    }
    t.add_row({v.label, str_format("%.1f", r.energy.total().joules_f()),
               str_format("%.1f", r.energy.awake_total().joules_f()),
               str_format("%.0f", cpu), str_format("%.0f", wifi),
               str_format("%.0f", wps), percent(r.delay_imperceptible)});
  }
  double cpu = 0.0, wifi = 0.0, wps = 0.0;
  for (const auto& w : window_only.wakeups) {
    if (w.hardware == "CPU") cpu = w.actual;
    if (w.hardware == "Wi-Fi") wifi = w.actual;
    if (w.hardware == "WPS") wps = w.actual;
  }
  t.add_row({"SIMTY window-only time",
             str_format("%.1f", window_only.energy.total().joules_f()),
             str_format("%.1f", window_only.energy.awake_total().joules_f()),
             str_format("%.0f", cpu), str_format("%.0f", wifi),
             str_format("%.0f", wps), percent(window_only.delay_imperceptible)});
  std::printf("%s", t.render().c_str());
  return 0;
}
