#include "apps/app.hpp"

#include <gtest/gtest.h>

#include "alarm/native_policy.hpp"
#include "apps/app_catalog.hpp"
#include "support/framework_fixture.hpp"

namespace simty::apps {
namespace {

class ResidentAppTest : public test::FrameworkFixture {};

TEST_F(ResidentAppTest, LaunchRegistersMajorAlarmOneIntervalOut) {
  init(std::make_unique<alarm::NativePolicy>());
  ResidentApp app(profile_by_name("Line"), Rng(1));
  app.launch(*manager_, at(0), alarm::AppId{1});
  ASSERT_TRUE(app.alarm_id().has_value());
  const alarm::Alarm* a = manager_->find(*app.alarm_id());
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->nominal(), at(200));  // Line's ReIn
  EXPECT_EQ(a->spec().window_length, Duration::seconds(150));  // alpha 0.75
  EXPECT_EQ(a->spec().grace_length, Duration::seconds(192));   // beta 0.96
  EXPECT_EQ(a->spec().mode, alarm::RepeatMode::kDynamic);
}

TEST_F(ResidentAppTest, DoubleLaunchRejected) {
  init(std::make_unique<alarm::NativePolicy>());
  ResidentApp app(profile_by_name("Viber"), Rng(1));
  app.launch(*manager_, at(0), alarm::AppId{1});
  EXPECT_THROW(app.launch(*manager_, at(0), alarm::AppId{1}), std::logic_error);
}

TEST_F(ResidentAppTest, GraceClampedUpToAlpha) {
  init(std::make_unique<alarm::NativePolicy>());
  // An app with alpha 0.75 launched with platform beta 0.5: grace must not
  // undercut the window (§3.1.2) so it clamps to 0.75.
  ResidentApp app(profile_by_name("WeChat"), Rng(1));
  app.launch(*manager_, at(0), alarm::AppId{1}, 0.5);
  const alarm::Alarm* a = manager_->find(*app.alarm_id());
  EXPECT_EQ(a->spec().grace_length, a->spec().window_length);
}

TEST_F(ResidentAppTest, TasksUseProfileHardwareWithJitteredHolds) {
  init(std::make_unique<alarm::NativePolicy>());
  ResidentApp app(profile_by_name("Facebook"), Rng(7));
  app.launch(*manager_, at(0), alarm::AppId{1});
  sim_.run_until(at(600));  // ~10 deliveries at ReIn 60
  EXPECT_GE(app.deliveries(), 8u);
  const AppProfile& p = app.profile();
  for (const auto& rec : deliveries_) {
    EXPECT_EQ(rec.hardware_used, p.hardware);
    // Jitter band: base * (1 +- 0.3).
    EXPECT_GE(rec.hold, p.base_hold * (1.0 - p.hold_jitter - 1e-9));
    EXPECT_LE(rec.hold, p.base_hold * (1.0 + p.hold_jitter + 1e-9));
  }
  // Jitter actually varies the holds.
  Duration first = deliveries_.front().hold;
  bool varied = false;
  for (const auto& rec : deliveries_) varied = varied || rec.hold != first;
  EXPECT_TRUE(varied);
}

TEST_F(ResidentAppTest, AlarmClockIsPerceptibleAfterProfiling) {
  init(std::make_unique<alarm::NativePolicy>());
  ResidentApp clock(profile_by_name("Alarm Clock"), Rng(1));
  clock.launch(*manager_, at(0), alarm::AppId{1});
  sim_.run_until(at(2000));  // one delivery at 1800
  const alarm::Alarm* a = manager_->find(*clock.alarm_id());
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->hardware_known());
  EXPECT_TRUE(a->perceptible());
}

TEST(ResidentApp, RejectsNonRepeatingProfiles) {
  AppProfile p = profile_by_name("Line");
  p.repeat = Duration::zero();
  EXPECT_THROW(ResidentApp(p, Rng(1)), std::logic_error);
}

}  // namespace
}  // namespace simty::apps
