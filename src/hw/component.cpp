#include "hw/component.hpp"

#include <bit>

#include "common/check.hpp"

namespace simty::hw {

const char* to_string(Component c) {
  switch (c) {
    case Component::kWifi: return "wifi";
    case Component::kWps: return "wps";
    case Component::kGps: return "gps";
    case Component::kCellular: return "cellular";
    case Component::kAccelerometer: return "accelerometer";
    case Component::kSpeaker: return "speaker";
    case Component::kVibrator: return "vibrator";
    case Component::kScreen: return "screen";
    case Component::kWur: return "wur";
  }
  return "?";
}

std::optional<Component> component_from_string(std::string_view name) {
  for (int i = 0; i < kComponentCount; ++i) {
    const auto c = static_cast<Component>(i);
    if (name == to_string(c)) return c;
  }
  return std::nullopt;
}

bool is_user_perceptible(Component c) {
  return c == Component::kSpeaker || c == Component::kVibrator ||
         c == Component::kScreen;
}

namespace {
constexpr std::uint32_t bit_of(Component c) {
  return 1u << static_cast<std::uint8_t>(c);
}
}  // namespace

ComponentSet::ComponentSet(std::initializer_list<Component> cs) {
  for (const Component c : cs) insert(c);
}

ComponentSet ComponentSet::all() {
  ComponentSet s;
  for (int i = 0; i < kComponentCount; ++i) s.insert(static_cast<Component>(i));
  return s;
}

ComponentSet ComponentSet::from_bits(std::uint32_t bits) {
  SIMTY_CHECK_MSG(bits < (1u << kComponentCount),
                  "ComponentSet::from_bits: bits outside the modelled components");
  ComponentSet s;
  s.bits_ = bits;
  return s;
}

std::size_t ComponentSet::size() const {
  return static_cast<std::size_t>(std::popcount(bits_));
}

bool ComponentSet::contains(Component c) const { return (bits_ & bit_of(c)) != 0; }

void ComponentSet::insert(Component c) {
  SIMTY_CHECK(static_cast<int>(c) < kComponentCount);
  bits_ |= bit_of(c);
}

void ComponentSet::erase(Component c) { bits_ &= ~bit_of(c); }

ComponentSet ComponentSet::operator|(ComponentSet o) const {
  ComponentSet s;
  s.bits_ = bits_ | o.bits_;
  return s;
}

ComponentSet ComponentSet::operator&(ComponentSet o) const {
  ComponentSet s;
  s.bits_ = bits_ & o.bits_;
  return s;
}

ComponentSet ComponentSet::operator-(ComponentSet o) const {
  ComponentSet s;
  s.bits_ = bits_ & ~o.bits_;
  return s;
}

ComponentSet& ComponentSet::operator|=(ComponentSet o) {
  bits_ |= o.bits_;
  return *this;
}

std::size_t ComponentSet::shared_count(ComponentSet o) const {
  return static_cast<std::size_t>(std::popcount(bits_ & o.bits_));
}

std::vector<Component> ComponentSet::components() const {
  std::vector<Component> out;
  for (int i = 0; i < kComponentCount; ++i) {
    const auto c = static_cast<Component>(i);
    if (contains(c)) out.push_back(c);
  }
  return out;
}

std::string ComponentSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const Component c : components()) {
    if (!first) out += ",";
    out += simty::hw::to_string(c);
    first = false;
  }
  return out + "}";
}

}  // namespace simty::hw
