#include "usage/day_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace simty::usage {

double DayResult::standby_time_share() const {
  return standby_time.ratio(day_length());
}

double DayResult::standby_energy_share() const {
  return standby_energy.ratio(total_energy());
}

double DayResult::battery_days(Energy capacity) const {
  SIMTY_CHECK(total_energy() > Energy::zero());
  return capacity.ratio(total_energy());
}

std::vector<InteractiveSession> sample_sessions(const UsagePattern& pattern,
                                                std::uint64_t seed) {
  SIMTY_CHECK(pattern.mean_session_gap > Duration::zero());
  SIMTY_CHECK(pattern.mean_session_length > Duration::zero());
  SIMTY_CHECK(pattern.night_end < pattern.night_start);

  Rng rng(seed, 0xDA7);
  std::vector<InteractiveSession> sessions;

  TimePoint t = TimePoint::origin() + pattern.night_end;  // user wakes up
  while (true) {
    const Duration gap =
        Duration::from_seconds(rng.exponential(pattern.mean_session_gap.seconds_f()));
    t += gap;
    if (t - TimePoint::origin() >= pattern.night_start) break;  // bedtime
    Duration length = Duration::from_seconds(
        rng.exponential(pattern.mean_session_length.seconds_f()));
    length = std::max(length, Duration::seconds(10));
    // Clip at bedtime.
    const Duration until_night =
        (TimePoint::origin() + pattern.night_start) - t;
    length = std::min(length, until_night);
    sessions.push_back(InteractiveSession{t, length});
    t += length;
  }
  return sessions;
}

DayResult simulate_day(const exp::ExperimentConfig& standby_config,
                       const UsagePattern& pattern, std::uint64_t seed) {
  // Measure the standby power with the full simulation stack.
  exp::ExperimentConfig c = standby_config;
  c.seed = seed;
  const exp::RunResult standby = exp::run_experiment(c);

  DayResult day;
  day.standby_power_mw = standby.average_power_mw;
  day.sessions = sample_sessions(pattern, seed);
  for (const InteractiveSession& s : day.sessions) {
    day.interactive_time += s.length;
  }
  day.standby_time = Duration::hours(24) - day.interactive_time;
  day.interactive_energy = pattern.interactive_power * day.interactive_time;
  day.standby_energy =
      Power::milliwatts(day.standby_power_mw) * day.standby_time;
  return day;
}

}  // namespace simty::usage
