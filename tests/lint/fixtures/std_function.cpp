// Fixture: std-function rule — the event hot path stores callbacks in
// sim::EventFn (inline storage); std::function heap-allocates.
#include <functional>

namespace fixture {

struct Dispatcher {
  std::function<void()> callback;  // LINT-EXPECT: std-function
  std::function<void()> audited;   // simty-lint: allow(std-function)
};

}  // namespace fixture
