#include "usage/day_model.hpp"

#include <gtest/gtest.h>

#include "hw/battery.hpp"

namespace simty::usage {
namespace {

TEST(SampleSessions, RespectsNightWindowAndDayBounds) {
  UsagePattern p;
  const auto sessions = sample_sessions(p, 1);
  ASSERT_FALSE(sessions.empty());
  for (const InteractiveSession& s : sessions) {
    const Duration start = s.start - TimePoint::origin();
    EXPECT_GE(start, p.night_end);
    EXPECT_LE(start + s.length, p.night_start);
    EXPECT_GE(s.length, Duration::seconds(10));
  }
  // Sessions are ordered and non-overlapping.
  for (std::size_t i = 1; i < sessions.size(); ++i) {
    EXPECT_GE(sessions[i].start, sessions[i - 1].start + sessions[i - 1].length);
  }
}

TEST(SampleSessions, DeterministicPerSeed) {
  UsagePattern p;
  const auto a = sample_sessions(p, 7);
  const auto b = sample_sessions(p, 7);
  const auto c = sample_sessions(p, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].length, b[i].length);
  }
  EXPECT_NE(a.size(), c.size());
}

TEST(SampleSessions, SessionCountTracksGapParameter) {
  UsagePattern sparse;
  sparse.mean_session_gap = Duration::hours(2);
  UsagePattern dense;
  dense.mean_session_gap = Duration::minutes(10);
  EXPECT_GT(sample_sessions(dense, 3).size(), sample_sessions(sparse, 3).size());
}

TEST(SampleSessions, RejectsBadPattern) {
  UsagePattern p;
  p.mean_session_gap = Duration::zero();
  EXPECT_THROW(sample_sessions(p, 1), std::logic_error);
  p = UsagePattern{};
  p.night_end = p.night_start + Duration::hours(1);
  EXPECT_THROW(sample_sessions(p, 1), std::logic_error);
}

class SimulateDayTest : public ::testing::Test {
 protected:
  static exp::ExperimentConfig standby_config(exp::PolicyKind policy) {
    exp::ExperimentConfig c;
    c.policy = policy;
    c.workload = exp::WorkloadKind::kHeavy;
    c.duration = Duration::hours(1);
    return c;
  }
};

TEST_F(SimulateDayTest, ReproducesPaperContextShape) {
  const DayResult day =
      simulate_day(standby_config(exp::PolicyKind::kNative), UsagePattern{}, 1);
  // Ref [9]: ~89% of time in standby, standby energy a large minority share.
  EXPECT_GT(day.standby_time_share(), 0.80);
  EXPECT_LT(day.standby_time_share(), 0.97);
  EXPECT_GT(day.standby_energy_share(), 0.25);
  EXPECT_LT(day.standby_energy_share(), 0.60);
  EXPECT_EQ(day.day_length(), Duration::hours(24));
  EXPECT_GT(day.standby_power_mw, 10.0);
}

TEST_F(SimulateDayTest, SimtyExtendsBatteryDays) {
  const hw::Battery pack = hw::Battery::nexus5();
  const DayResult native =
      simulate_day(standby_config(exp::PolicyKind::kNative), UsagePattern{}, 1);
  const DayResult simty =
      simulate_day(standby_config(exp::PolicyKind::kSimty), UsagePattern{}, 1);
  // Same sampled day (same seed): interactive halves identical.
  EXPECT_EQ(native.interactive_time, simty.interactive_time);
  EXPECT_DOUBLE_EQ(native.interactive_energy.mj(), simty.interactive_energy.mj());
  // Standby is cheaper under SIMTY; whole-day life improves.
  EXPECT_LT(simty.standby_energy.mj(), native.standby_energy.mj());
  EXPECT_GT(simty.battery_days(pack.capacity()),
            native.battery_days(pack.capacity()));
}

TEST_F(SimulateDayTest, EnergyCompositionConsistent) {
  const DayResult day =
      simulate_day(standby_config(exp::PolicyKind::kSimty), UsagePattern{}, 2);
  EXPECT_NEAR(day.total_energy().mj(),
              day.interactive_energy.mj() + day.standby_energy.mj(), 1e-9);
  EXPECT_NEAR(day.standby_energy.mj(),
              day.standby_power_mw * day.standby_time.seconds_f(), 1e-6);
}

}  // namespace
}  // namespace simty::usage
