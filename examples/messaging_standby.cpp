// The paper's light-workload scenario end to end: eleven Wi-Fi messengers
// plus the perceptible Alarm Clock, three hours of connected standby,
// NATIVE vs SIMTY side by side — including the battery-life headline.

#include <cstdio>

#include "common/strings.hpp"
#include "exp/experiment.hpp"
#include "exp/reporting.hpp"
#include "hw/battery.hpp"

using namespace simty;

int main() {
  exp::ExperimentConfig native_cfg;
  native_cfg.policy = exp::PolicyKind::kNative;
  native_cfg.workload = exp::WorkloadKind::kLight;

  exp::ExperimentConfig simty_cfg = native_cfg;
  simty_cfg.policy = exp::PolicyKind::kSimty;

  std::printf("light workload (11 messengers + Alarm Clock), 3 h x 3 seeds...\n\n");
  const exp::RunResult native = exp::run_repeated(native_cfg, 3);
  const exp::RunResult simty = exp::run_repeated(simty_cfg, 3);

  const std::vector<exp::NamedResult> columns = {{"NATIVE", native},
                                                 {"SIMTY", simty}};
  std::printf("%s\n", exp::render_energy_figure(columns).c_str());
  std::printf("%s\n", exp::render_delay_figure(columns).c_str());
  std::printf("%s\n", exp::render_wakeup_table(columns).c_str());
  std::printf("%s\n", exp::render_standby_projection(columns).c_str());

  // The user-visible story: how much longer does the battery last?
  const hw::Battery pack = hw::Battery::nexus5();
  const Duration native_life =
      pack.projected_standby(Power::milliwatts(native.average_power_mw));
  const Duration simty_life =
      pack.projected_standby(Power::milliwatts(simty.average_power_mw));
  std::printf("a full charge in this standby mix: %.1f h -> %.1f h (%s longer)\n",
              native_life.seconds_f() / 3600.0, simty_life.seconds_f() / 3600.0,
              percent(simty_life.ratio(native_life) - 1.0).c_str());
  return 0;
}
