#include "fleet/fleet_runner.hpp"

#include <algorithm>
#include <filesystem>
#include <future>
#include <stdexcept>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/tracer.hpp"

namespace simty::fleet {

exp::ExperimentConfig device_config(const CohortSpec& spec,
                                    const DeviceSample& sample,
                                    exp::PolicyKind policy,
                                    const alarm::SimilarityConfig& similarity) {
  exp::ExperimentConfig c;
  c.policy = policy;
  c.similarity = similarity;
  c.custom_profiles = sample.catalog;
  c.beta = sample.beta;
  c.duration = spec.standby;
  c.seed = sample.run_seed;
  c.system_alarms = spec.system_alarms;
  c.power_model = sample.power_model;
  return c;
}

namespace {

/// A contiguous device-major slice of one cohort.
struct Shard {
  std::size_t index = 0;  // ordinal in submission order (checkpoint file name)
  std::size_t cohort = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

constexpr std::uint32_t kShardCkptVersion = 1;

std::string shard_ckpt_path(const FleetConfig& config, const Shard& shard) {
  return config.checkpoint_dir + "/shard_" + std::to_string(shard.index) +
         ".ckpt";
}

/// Writes the shard's resumable state: identity (index, cohort, range),
/// the next device to run, and the exact aggregate so far. Atomic rename
/// keeps a kill mid-write from leaving a torn checkpoint behind.
void write_shard_ckpt(const std::string& path, const CohortSpec& spec,
                      const Shard& shard, std::uint64_t next_device,
                      const CohortAggregate& agg) {
  snapshot::Writer w;
  w.begin_section("fleet-shard", kShardCkptVersion);
  w.u64(shard.index);
  w.str(spec.name);
  w.u64(shard.begin);
  w.u64(shard.end);
  w.u64(next_device);
  agg.save(w);
  w.end_section();
  snapshot::write_file_atomic(path, w.finish());
}

/// Loads a checkpoint and verifies it belongs to this shard of this fleet
/// (a stale directory from a different partition must fail loudly, not
/// silently skew aggregates). Returns the device index to resume at.
std::uint64_t read_shard_ckpt(const std::string& path, const CohortSpec& spec,
                              const Shard& shard, CohortAggregate& agg) {
  const snapshot::Reader reader(snapshot::read_file(path));
  snapshot::SectionReader s = reader.section("fleet-shard", kShardCkptVersion);
  SIMTY_CHECK_MSG(s.u64() == shard.index, "shard checkpoint: index mismatch");
  SIMTY_CHECK_MSG(s.str() == spec.name, "shard checkpoint: cohort mismatch");
  SIMTY_CHECK_MSG(s.u64() == shard.begin, "shard checkpoint: begin mismatch");
  SIMTY_CHECK_MSG(s.u64() == shard.end, "shard checkpoint: end mismatch");
  const std::uint64_t next_device = s.u64();
  SIMTY_CHECK_MSG(next_device >= shard.begin && next_device <= shard.end,
                  "shard checkpoint: resume point outside shard");
  agg.restore(s);
  SIMTY_CHECK_MSG(agg.devices == next_device - shard.begin,
                  "shard checkpoint: aggregate count disagrees with cursor");
  return next_device;
}

CohortAggregate run_shard(const CohortSpec& spec, const FleetConfig& config,
                          const Shard& shard) {
  CohortAggregate agg(spec.name);
  std::uint64_t resume_at = shard.begin;
  const bool checkpointing = !config.checkpoint_dir.empty();
  const std::string ckpt_path =
      checkpointing ? shard_ckpt_path(config, shard) : std::string();
  if (checkpointing && std::filesystem::exists(ckpt_path)) {
    resume_at = read_shard_ckpt(ckpt_path, spec, shard, agg);
  }
  // One arena per shard: each device run carves its event-queue slabs and
  // batch-index nodes from it, and the reset between devices rewinds the
  // same blocks instead of hitting the allocator — after the first device,
  // the shard loop's run storage is allocation-free (see the alloc-gate
  // test). Arena presence never changes a result bit.
  common::Arena arena;
  std::uint64_t processed = 0;  // devices run in THIS invocation
  for (std::uint64_t d = resume_at; d < shard.end; ++d) {
    if (config.fault_shard == static_cast<std::int64_t>(shard.index) &&
        processed == config.fault_after_devices) {
      throw std::runtime_error("fleet: injected fault in shard " +
                               std::to_string(shard.index));
    }
    const DeviceSample sample = sample_device(spec, config.seed, d);
    arena.reset();
    exp::ExperimentConfig device_cfg =
        device_config(spec, sample, config.policy, config.similarity);
    device_cfg.arena_opts.arena = &arena;
    agg.add(device_metrics(exp::run_experiment(device_cfg)));
    ++processed;
    if (checkpointing && config.checkpoint_every > 0 &&
        processed % config.checkpoint_every == 0) {
      write_shard_ckpt(ckpt_path, spec, shard, d + 1, agg);
    }
  }
  // Final checkpoint (cursor == end): a restart after this shard finished
  // restores the complete aggregate instead of recomputing the shard.
  if (checkpointing) write_shard_ckpt(ckpt_path, spec, shard, shard.end, agg);
  return agg;
}

}  // namespace

FleetResult run_fleet(const FleetConfig& config) {
  SIMTY_CHECK_MSG(config.devices > 0, "fleet needs at least one device");
  SIMTY_CHECK_MSG(config.shard_devices > 0, "fleet shard size must be positive");
  const std::vector<CohortSpec> cohorts =
      config.cohorts.empty() ? default_cohorts() : config.cohorts;
  for (const CohortSpec& spec : cohorts) spec.validate();
  const std::vector<std::uint64_t> counts =
      apportion_devices(config.devices, cohorts);

  std::vector<Shard> shards;
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    for (std::uint64_t b = 0; b < counts[i]; b += config.shard_devices) {
      shards.push_back(Shard{shards.size(), i, b,
                             std::min(b + config.shard_devices, counts[i])});
    }
  }
  if (!config.checkpoint_dir.empty()) {
    std::filesystem::create_directories(config.checkpoint_dir);
  }

  // Fleet-level spans only, on the calling thread: device runs install a
  // null tracer (device_config leaves tracer unset), so the fleet trace is
  // identical whether the shards ran serially or on workers.
  const trace::TraceScope trace_scope(config.tracer);
  SIMTY_TRACE_SPAN_BEGIN(TimePoint::origin(), trace::TraceCategory::kExp,
                         "fleet", static_cast<std::int64_t>(config.devices));

  std::vector<CohortAggregate> shard_aggs;
  shard_aggs.reserve(shards.size());
  if (config.jobs > 1 && shards.size() > 1) {
    const auto workers = std::min<std::size_t>(
        static_cast<std::size_t>(config.jobs), shards.size());
    ThreadPool pool(workers);
    std::vector<std::future<CohortAggregate>> futures;
    futures.reserve(shards.size());
    for (const Shard& shard : shards) {
      const CohortSpec& spec = cohorts[shard.cohort];
      futures.push_back(pool.submit(
          [&spec, &config, shard] { return run_shard(spec, config, shard); }));
    }
    // Submission-order collection: get() rethrows the first failure in
    // submission order; the pool destructor drains the rest.
    for (std::future<CohortAggregate>& f : futures) shard_aggs.push_back(f.get());
  } else {
    for (const Shard& shard : shards) {
      shard_aggs.push_back(run_shard(cohorts[shard.cohort], config, shard));
    }
  }

  FleetResult result;
  result.policy_name = exp::to_string(config.policy);
  result.devices = config.devices;
  // Shards were emitted cohort-major, so each cohort's shards are one
  // contiguous slice of shard_aggs.
  std::size_t pos = 0;
  for (std::size_t i = 0; i < cohorts.size(); ++i) {
    std::vector<CohortAggregate> mine;
    while (pos < shards.size() && shards[pos].cohort == i) {
      mine.push_back(std::move(shard_aggs[pos]));
      ++pos;
    }
    if (mine.empty()) mine.emplace_back(cohorts[i].name);  // zero-device cohort
    SIMTY_TRACE_INSTANT(TimePoint::origin(), trace::TraceCategory::kExp,
                        "fleet-cohort-merge",
                        static_cast<std::int64_t>(mine.size()));
    result.cohorts.push_back(merge_pairwise(std::move(mine)));
  }
  std::vector<CohortAggregate> all(result.cohorts);
  result.overall = merge_pairwise(std::move(all));
  result.overall.cohort = "ALL";
  SIMTY_TRACE_SPAN_END(TimePoint::origin(), trace::TraceCategory::kExp, "fleet",
                       static_cast<std::int64_t>(config.devices));
  return result;
}

}  // namespace simty::fleet
