# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_hw[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_alarm[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_power[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_apps[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_metrics[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_exp[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_net[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_gcm[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_trace[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cli[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_usage[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_umbrella[1]_include.cmake")
