// Unit tests for the alignment policies over hand-built queues, including
// the paper's Fig 2 motivating example.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alarm/duration_policy.hpp"
#include "alarm/exact_policy.hpp"
#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"

namespace simty::alarm {
namespace {

using hw::Component;
using hw::ComponentSet;

TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

struct QueueBuilder {
  std::vector<std::unique_ptr<Alarm>> alarms;
  std::vector<std::unique_ptr<Batch>> queue;

  Alarm* make_alarm(std::int64_t nominal_s, std::int64_t repeat_s, double alpha,
                    double beta, ComponentSet hw_set,
                    Duration hold = Duration::seconds(2)) {
    const auto id = static_cast<std::uint64_t>(alarms.size() + 1);
    auto a = std::make_unique<Alarm>(
        AlarmId{id},
        AlarmSpec::repeating("a" + std::to_string(id), AppId{1},
                             RepeatMode::kStatic, Duration::seconds(repeat_s),
                             alpha, beta),
        at(nominal_s));
    a->record_delivery(hw_set, hold);  // learn profile (sets perceptibility)
    Alarm* raw = a.get();
    alarms.push_back(std::move(a));
    return raw;
  }

  /// Adds a fresh single-member entry and returns its index.
  std::size_t add_entry(Alarm* a) {
    queue.push_back(std::make_unique<Batch>(a));
    return queue.size() - 1;
  }
};

// ------------------------------------------------------------------ NATIVE

TEST(NativePolicy, JoinsFirstWindowOverlappingEntry) {
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.75, 0.96, ComponentSet{Component::kWifi}));
  q.add_entry(q.make_alarm(100, 600, 0.75, 0.96, ComponentSet{Component::kWifi}));
  // New alarm window [120, 570] overlaps both entries; first wins.
  Alarm* n = q.make_alarm(120, 600, 0.75, 0.96, ComponentSet{Component::kWps});
  NativePolicy policy;
  EXPECT_EQ(policy.select_batch(*n, q.queue), std::optional<std::size_t>(0));
}

TEST(NativePolicy, CreatesNewEntryWhenNoWindowOverlaps) {
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.1, 0.96, ComponentSet{Component::kWifi}));
  Alarm* n = q.make_alarm(300, 600, 0.1, 0.96, ComponentSet{Component::kWifi});
  NativePolicy policy;
  EXPECT_EQ(policy.select_batch(*n, q.queue), std::nullopt);
}

TEST(NativePolicy, IgnoresGraceIntervals) {
  // Graces overlap but windows don't: NATIVE must not align.
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.3, 0.96, ComponentSet{Component::kWifi}));
  Alarm* n = q.make_alarm(200, 600, 0.3, 0.96, ComponentSet{Component::kWifi});
  NativePolicy policy;
  EXPECT_EQ(policy.select_batch(*n, q.queue), std::nullopt);
}

TEST(NativePolicy, ChecksEntryIntersectionNotJustAnyMember) {
  // Entry of two alarms with windows [0,450] and [400,850]: entry window is
  // [400,450]. A new alarm with window [100,300] overlaps the FIRST member
  // but not the entry intersection -> cannot join (§2.1: must overlap
  // every member's window).
  QueueBuilder q;
  Alarm* a = q.make_alarm(0, 600, 0.75, 0.96, ComponentSet{Component::kWifi});
  Alarm* b = q.make_alarm(400, 600, 0.75, 0.96, ComponentSet{Component::kWifi});
  const std::size_t i = q.add_entry(a);
  q.queue[i]->add(b);
  Alarm* n = q.make_alarm(100, 250, 0.8, 0.96, ComponentSet{Component::kWifi});
  NativePolicy policy;
  EXPECT_EQ(policy.select_batch(*n, q.queue), std::nullopt);
}

// ------------------------------------------------------------------- SIMTY

TEST(SimtyPolicy, ReproducesFig2MotivatingExample) {
  // Queue snapshot (Fig 2a): a calendar alarm (speaker&vibrator) and one
  // WPS location alarm; their windows both overlap the new WPS alarm's
  // window. NATIVE picks the first (calendar) entry; SIMTY must pick the
  // WPS entry because its hardware similarity is High.
  QueueBuilder q;
  Alarm* calendar = q.make_alarm(
      60, 1800, 0.2, 0.3, ComponentSet{Component::kSpeaker, Component::kVibrator});
  Alarm* wps1 = q.make_alarm(200, 600, 0.75, 0.96, ComponentSet{Component::kWps});
  q.add_entry(calendar);
  q.add_entry(wps1);
  Alarm* wps2 = q.make_alarm(100, 600, 0.75, 0.96, ComponentSet{Component::kWps});

  NativePolicy native;
  EXPECT_EQ(native.select_batch(*wps2, q.queue), std::optional<std::size_t>(0));

  SimtyPolicy simty;
  EXPECT_EQ(simty.select_batch(*wps2, q.queue), std::optional<std::size_t>(1));
}

TEST(SimtyPolicy, PerceptibleAlarmRequiresWindowOverlap) {
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.3, 0.96, ComponentSet{Component::kWifi}));
  // Perceptible alarm whose grace (== window) only overlaps the entry's
  // grace: not applicable.
  Alarm* loud = q.make_alarm(200, 600, 0.3, 0.5, ComponentSet{Component::kVibrator});
  ASSERT_TRUE(loud->perceptible());
  SimtyPolicy policy;
  EXPECT_EQ(policy.select_batch(*loud, q.queue), std::nullopt);
}

TEST(SimtyPolicy, ImperceptibleAlarmMayJoinViaGraceOverlap) {
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.3, 0.96, ComponentSet{Component::kWifi}));
  // Same timing as the perceptible case above, but imperceptible hardware:
  // medium time similarity is applicable between imperceptible parties.
  Alarm* quiet = q.make_alarm(200, 600, 0.3, 0.96, ComponentSet{Component::kWifi});
  ASSERT_FALSE(quiet->perceptible());
  SimtyPolicy policy;
  EXPECT_EQ(policy.select_batch(*quiet, q.queue), std::optional<std::size_t>(0));
}

TEST(SimtyPolicy, NewlyRegisteredAlarmTreatedPerceptible) {
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.3, 0.96, ComponentSet{Component::kWifi}));
  // Hardware not yet learned -> perceptible by footnote 5 -> grace overlap
  // is not enough.
  auto fresh = std::make_unique<Alarm>(
      AlarmId{99},
      AlarmSpec::repeating("fresh", AppId{2}, RepeatMode::kStatic,
                           Duration::seconds(600), 0.3, 0.96),
      at(200));
  SimtyPolicy policy;
  EXPECT_EQ(policy.select_batch(*fresh, q.queue), std::nullopt);
}

TEST(SimtyPolicy, PrefersHardwareSimilarityOverTimeSimilarity) {
  // Entry 0: window-overlapping (High time) but disjoint hardware.
  // Entry 1: only grace-overlapping (Medium time) but identical hardware.
  // Table 1: rank(hw High, time Medium)=2 < rank(hw Low, time High)=5.
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.2, 0.96, ComponentSet{Component::kAccelerometer}));
  q.add_entry(q.make_alarm(300, 600, 0.2, 0.96, ComponentSet{Component::kWifi}));
  Alarm* n = q.make_alarm(80, 600, 0.2, 0.96, ComponentSet{Component::kWifi});
  // Windows: entry0 [0,120] vs n [80,200] -> High; entry1 [300,420] vs n ->
  // Low, graces [300,876] vs [80,656] -> Medium.
  SimtyPolicy policy;
  EXPECT_EQ(policy.select_batch(*n, q.queue), std::optional<std::size_t>(1));
}

TEST(SimtyPolicy, TimeSimilarityBreaksHardwareTies) {
  // Both entries have identical hardware; entry 1 offers High time
  // similarity, entry 0 only Medium -> entry 1 wins despite being later.
  QueueBuilder q;
  q.add_entry(q.make_alarm(300, 900, 0.1, 0.96, ComponentSet{Component::kWifi}));
  q.add_entry(q.make_alarm(80, 900, 0.3, 0.96, ComponentSet{Component::kWifi}));
  // Queue sorted by delivery time? Here entry order is as added; the policy
  // only cares about rank, then first-found.
  Alarm* n = q.make_alarm(100, 900, 0.3, 0.96, ComponentSet{Component::kWifi});
  // vs entry0: windows [300,390] vs [100,370] -> High actually. Adjust: use
  // alpha small enough that windows don't overlap.
  SimtyPolicy policy;
  const auto pick = policy.select_batch(*n, q.queue);
  ASSERT_TRUE(pick.has_value());
  // Entry 0 window [300,390] vs n [100,370]: overlap -> both High; first
  // found wins.
  EXPECT_EQ(*pick, 0u);
}

TEST(SimtyPolicy, FirstFoundWinsAmongEqualRanks) {
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.75, 0.96, ComponentSet{Component::kWifi}));
  q.add_entry(q.make_alarm(50, 600, 0.75, 0.96, ComponentSet{Component::kWifi}));
  Alarm* n = q.make_alarm(100, 600, 0.75, 0.96, ComponentSet{Component::kWifi});
  SimtyPolicy policy;
  EXPECT_EQ(policy.select_batch(*n, q.queue), std::optional<std::size_t>(0));
}

TEST(SimtyPolicy, ReturnsNulloptOnEmptyQueue) {
  QueueBuilder q;
  Alarm* n = q.make_alarm(0, 600, 0.75, 0.96, ComponentSet{Component::kWifi});
  SimtyPolicy policy;
  EXPECT_EQ(policy.select_batch(*n, q.queue), std::nullopt);
}

TEST(SimtyPolicy, TwoLevelModeCollapsesIdenticalAndPartial) {
  // Under 2-level hardware similarity a partially-overlapping entry found
  // first ties with an identical-hardware entry found later.
  SimilarityConfig cfg;
  cfg.hw_mode = HardwareSimilarityMode::kTwoLevel;
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.75, 0.96,
                           ComponentSet{Component::kWifi, Component::kWps}));
  q.add_entry(q.make_alarm(50, 600, 0.75, 0.96, ComponentSet{Component::kWifi}));
  Alarm* n = q.make_alarm(100, 600, 0.75, 0.96, ComponentSet{Component::kWifi});

  SimtyPolicy three;  // 3-level prefers the identical entry 1
  EXPECT_EQ(three.select_batch(*n, q.queue), std::optional<std::size_t>(1));
  SimtyPolicy two(cfg);  // 2-level ties -> first found (entry 0)
  EXPECT_EQ(two.select_batch(*n, q.queue), std::optional<std::size_t>(0));
}

TEST(SimtyPolicy, WindowOnlyTimeModeRefusesGraceJoins) {
  // Window-only time similarity demotes Medium to Low: the grace-overlap
  // join that the paper's 3-level mode allows is refused.
  SimilarityConfig cfg;
  cfg.time_mode = TimeSimilarityMode::kWindowOnly;
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.3, 0.96, ComponentSet{Component::kWifi}));
  Alarm* quiet = q.make_alarm(200, 600, 0.3, 0.96, ComponentSet{Component::kWifi});
  ASSERT_FALSE(quiet->perceptible());
  SimtyPolicy three;
  EXPECT_EQ(three.select_batch(*quiet, q.queue), std::optional<std::size_t>(0));
  SimtyPolicy window_only(cfg);
  EXPECT_EQ(window_only.select_batch(*quiet, q.queue), std::nullopt);
  // Window overlap still joins under both modes.
  Alarm* near = q.make_alarm(100, 600, 0.3, 0.96, ComponentSet{Component::kWifi});
  EXPECT_EQ(window_only.select_batch(*near, q.queue), std::optional<std::size_t>(0));
  EXPECT_STREQ(to_string(TimeSimilarityMode::kWindowOnly), "window-only");
}

// ------------------------------------------------------------------- EXACT

TEST(ExactPolicy, NeverAligns) {
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.75, 0.96, ComponentSet{Component::kWifi}));
  Alarm* n = q.make_alarm(0, 600, 0.75, 0.96, ComponentSet{Component::kWifi});
  ExactPolicy policy;
  EXPECT_EQ(policy.select_batch(*n, q.queue), std::nullopt);
  EXPECT_EQ(policy.name(), "EXACT");
}

// --------------------------------------------------------------- SIMTY-DUR

TEST(DurationSimilarity, MinMaxRatio) {
  EXPECT_DOUBLE_EQ(duration_similarity(Duration::seconds(5), Duration::seconds(5)), 1.0);
  EXPECT_DOUBLE_EQ(duration_similarity(Duration::seconds(2), Duration::seconds(8)), 0.25);
  EXPECT_DOUBLE_EQ(duration_similarity(Duration::zero(), Duration::seconds(8)), 0.0);
}

TEST(DurationPolicy, BreaksRankTiesByHoldSimilarity) {
  // Two identical-hardware entries, both High time similarity; the new
  // alarm's 10 s hold matches entry 1's 10 s profile better than entry 0's
  // 1 s profile. Base SIMTY picks entry 0 (first found); SIMTY-DUR entry 1.
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.75, 0.96, ComponentSet{Component::kWifi},
                           Duration::seconds(1)));
  q.add_entry(q.make_alarm(50, 600, 0.75, 0.96, ComponentSet{Component::kWifi},
                           Duration::seconds(10)));
  Alarm* n = q.make_alarm(100, 600, 0.75, 0.96, ComponentSet{Component::kWifi},
                          Duration::seconds(10));

  SimtyPolicy base;
  EXPECT_EQ(base.select_batch(*n, q.queue), std::optional<std::size_t>(0));
  DurationSimtyPolicy dur;
  EXPECT_EQ(dur.select_batch(*n, q.queue), std::optional<std::size_t>(1));
  EXPECT_EQ(dur.name(), "SIMTY-DUR");
}

TEST(DurationPolicy, RankStillDominatesDurations) {
  // A better Table-1 rank must not be overridden by duration similarity.
  QueueBuilder q;
  q.add_entry(q.make_alarm(0, 600, 0.75, 0.96, ComponentSet{Component::kWps},
                           Duration::seconds(10)));
  q.add_entry(q.make_alarm(50, 600, 0.75, 0.96, ComponentSet{Component::kWifi},
                           Duration::seconds(1)));
  Alarm* n = q.make_alarm(100, 600, 0.75, 0.96, ComponentSet{Component::kWifi},
                          Duration::seconds(10));
  DurationSimtyPolicy dur;
  EXPECT_EQ(dur.select_batch(*n, q.queue), std::optional<std::size_t>(1));
}

}  // namespace
}  // namespace simty::alarm
