#include "apps/system_alarms.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::apps {

SystemAlarmSource::SystemAlarmSource(sim::Simulator& sim,
                                     alarm::AlarmManager& manager,
                                     SystemAlarmConfig config, Rng rng)
    : sim_(sim), manager_(manager), config_(config), rng_(rng) {}

void SystemAlarmSource::start(TimePoint horizon) {
  horizon_ = horizon;
  const TimePoint now = sim_.now();

  if (config_.periodic_services) {
    // Representative Android services; CPU-only (no extra wakelocks), so
    // they become imperceptible once profiled and align freely.
    struct Service {
      const char* tag;
      std::int64_t repeat_s;
    };
    constexpr Service kServices[] = {
        {"android.netstats.poll", 600},
        {"android.batterystats", 900},
        {"android.time_sync", 1200},
        {"android.sync.heartbeat", 300},
        {"android.job.heartbeat", 240},
        {"android.dhcp.renew", 420},
        {"android.backup", 1800},
    };
    const double grace = std::max(config_.beta, 0.75);
    for (const Service& s : kServices) {
      manager_.register_alarm(
          alarm::AlarmSpec::repeating(s.tag, kSystemApp, alarm::RepeatMode::kStatic,
                                      Duration::seconds(s.repeat_s), 0.75, grace),
          now + Duration::seconds(s.repeat_s),
          [](const alarm::Alarm&, TimePoint) { return alarm::TaskSpec{}; });
    }
  }

  if (config_.one_shot_mean > Duration::zero()) spawn_next_one_shot();
}

void SystemAlarmSource::spawn_next_one_shot() {
  spawn_event_.reset();
  const Duration gap =
      Duration::from_seconds(rng_.exponential(config_.one_shot_mean.seconds_f()));
  const TimePoint when = sim_.now() + std::max(gap, Duration::seconds(1));
  if (when >= horizon_) return;
  spawn_event_ = sim_.schedule_at(when, [this] { on_spawn_event(); },
                                  sim::EventPriority::kApp,
                                  "system-one-shot-spawn");
}

void SystemAlarmSource::on_spawn_event() {
  ++one_shot_seq_;
  manager_.register_alarm(
      alarm::AlarmSpec::one_shot("system.oneshot." + std::to_string(one_shot_seq_),
                                 kSystemApp, config_.one_shot_window),
      sim_.now() + Duration::seconds(1), one_shot_handler());
  spawn_next_one_shot();
}

alarm::DeliveryHandler SystemAlarmSource::one_shot_handler() {
  return [this](const alarm::Alarm&, TimePoint) {
    ++one_shots_fired_;
    return alarm::TaskSpec{};
  };
}

alarm::DeliveryHandler SystemAlarmSource::handler_for(const std::string& tag) {
  if (tag.rfind("android.", 0) == 0) {
    return [](const alarm::Alarm&, TimePoint) { return alarm::TaskSpec{}; };
  }
  if (tag.rfind("system.oneshot.", 0) == 0) return one_shot_handler();
  return {};
}

void SystemAlarmSource::save(snapshot::Writer& w) const {
  w.u64(rng_.raw_state());
  w.u64(rng_.raw_inc());
  w.i64(horizon_.us());
  w.u64(one_shots_fired_);
  w.u64(one_shot_seq_);
  w.boolean(spawn_event_.has_value());
  if (spawn_event_) w.u64(spawn_event_->value);
}

void SystemAlarmSource::restore(snapshot::SectionReader& s) {
  const std::uint64_t state = s.u64();
  const std::uint64_t inc = s.u64();
  rng_ = Rng::from_raw(state, inc);
  horizon_ = TimePoint::from_us(s.i64());
  one_shots_fired_ = s.u64();
  one_shot_seq_ = s.u64();
  // start()'s spawn event died with the queue restore; drop the stale id
  // before rebinding the saved chain.
  spawn_event_.reset();
  if (s.boolean()) {
    const std::uint64_t event = s.u64();
    SIMTY_CHECK_MSG(event != 0, "SystemAlarmSource::restore: null spawn event");
    spawn_event_ = sim::EventId{event};
    sim_.rebind(*spawn_event_, [this] { on_spawn_event(); });
  }
}

}  // namespace simty::apps
