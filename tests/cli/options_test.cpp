#include "cli/options.hpp"

#include <gtest/gtest.h>

namespace simty::cli {
namespace {

ParseResult parse(std::initializer_list<std::string> args) {
  return parse_args(std::vector<std::string>(args));
}

TEST(CliOptions, DefaultsWithNoFlags) {
  const ParseResult r = parse({});
  ASSERT_TRUE(r.ok());
  const RunPlan& p = *r.plan;
  EXPECT_EQ(p.policies,
            (std::vector<exp::PolicyKind>{exp::PolicyKind::kNative,
                                          exp::PolicyKind::kSimty}));
  EXPECT_EQ(p.config.workload, exp::WorkloadKind::kLight);
  EXPECT_EQ(p.config.duration, Duration::hours(3));
  EXPECT_DOUBLE_EQ(p.config.beta, 0.96);
  EXPECT_EQ(p.repetitions, 3);
  EXPECT_TRUE(p.config.system_alarms);
  EXPECT_FALSE(p.show_help);
}

TEST(CliOptions, ParsesPolicyLists) {
  const ParseResult r = parse({"--policy", "exact,simty-dur"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.plan->policies,
            (std::vector<exp::PolicyKind>{exp::PolicyKind::kExact,
                                          exp::PolicyKind::kSimtyDuration}));
}

TEST(CliOptions, PolicyAllExpands) {
  const ParseResult r = parse({"--policy", "all"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.plan->policies.size(), 4u);
}

TEST(CliOptions, ParsesWorkloadAndApps) {
  const ParseResult r =
      parse({"--workload", "synthetic", "--apps", "42"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.plan->config.workload, exp::WorkloadKind::kSynthetic);
  EXPECT_EQ(r.plan->config.synthetic_apps, 42u);
}

TEST(CliOptions, ParsesDurations) {
  EXPECT_EQ(parse({"--hours", "1.5"}).plan->config.duration, Duration::minutes(90));
  EXPECT_EQ(parse({"--minutes", "30"}).plan->config.duration, Duration::minutes(30));
}

TEST(CliOptions, ParsesNumericFlags) {
  const ParseResult r =
      parse({"--beta", "0.85", "--seed", "9", "--reps", "5", "--hw-levels", "4"});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.plan->config.beta, 0.85);
  EXPECT_EQ(r.plan->config.seed, 9u);
  EXPECT_EQ(r.plan->repetitions, 5);
  EXPECT_EQ(r.plan->config.similarity.hw_mode,
            alarm::HardwareSimilarityMode::kFourLevel);
}

TEST(CliOptions, ParsesJobs) {
  const ParseResult r = parse({"--jobs", "4"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.plan->jobs, 4);
  // Default is serial.
  EXPECT_EQ(parse({}).plan->jobs, 1);
  // auto resolves to at least one worker.
  const ParseResult a = parse({"--jobs", "auto"});
  ASSERT_TRUE(a.ok());
  EXPECT_GE(a.plan->jobs, 1);
}

TEST(CliOptions, ParsesPathsAndToggles) {
  const ParseResult r = parse({"--csv", "out.csv", "--delivery-log", "log.csv",
                               "--waveform", "wave.csv", "--no-system-alarms"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.plan->csv_path, "out.csv");
  EXPECT_EQ(r.plan->delivery_log_path, "log.csv");
  EXPECT_EQ(r.plan->waveform_path, "wave.csv");
  EXPECT_FALSE(r.plan->config.system_alarms);
  EXPECT_FALSE(parse({"--waveform"}).ok());
  EXPECT_FALSE(parse({}).plan->config.doze);
  EXPECT_TRUE(parse({"--doze"}).plan->config.doze);
}

TEST(CliOptions, ParsesTracePaths) {
  const ParseResult r =
      parse({"--trace", "run.bin", "--trace-json", "run.json"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.plan->trace_path, "run.bin");
  EXPECT_EQ(r.plan->trace_json_path, "run.json");
  EXPECT_FALSE(parse({}).plan->trace_path.has_value());
  EXPECT_FALSE(parse({"--trace"}).ok());
  EXPECT_FALSE(parse({"--trace-json"}).ok());
  EXPECT_NE(usage().find("--trace"), std::string::npos);
  EXPECT_NE(usage().find("--delivery-log"), std::string::npos);
}

TEST(CliOptions, ParsesSnapshotFlags) {
  const ParseResult save = parse(
      {"--snapshot-at", "60", "--save-snapshot", "snap", "--hours", "3"});
  ASSERT_TRUE(save.ok());
  EXPECT_DOUBLE_EQ(*save.plan->snapshot_at_minutes, 60.0);
  EXPECT_EQ(save.plan->save_snapshot_path, "snap");
  const ParseResult restore = parse({"--restore-snapshot", "snap"});
  ASSERT_TRUE(restore.ok());
  EXPECT_EQ(restore.plan->restore_snapshot_path, "snap");
  EXPECT_NE(usage().find("--save-snapshot"), std::string::npos);
  EXPECT_NE(usage().find("--restore-snapshot"), std::string::npos);
}

TEST(CliOptions, RejectsInconsistentSnapshotFlags) {
  // Save and the pause mark must travel together.
  EXPECT_FALSE(parse({"--save-snapshot", "snap"}).ok());
  EXPECT_FALSE(parse({"--snapshot-at", "60"}).ok());
  EXPECT_FALSE(parse({"--snapshot-at", "0", "--save-snapshot", "s"}).ok());
  EXPECT_FALSE(parse({"--snapshot-at", "abc", "--save-snapshot", "s"}).ok());
  // The mark must fall strictly inside the run.
  EXPECT_FALSE(parse({"--minutes", "90", "--snapshot-at", "90",
                      "--save-snapshot", "s"}).ok());
  // Save and restore in one invocation is a contradiction.
  EXPECT_FALSE(parse({"--snapshot-at", "60", "--save-snapshot", "s",
                      "--restore-snapshot", "s"}).ok());
  // Fleet shards checkpoint through FleetConfig, not these flags.
  EXPECT_FALSE(parse({"--fleet", "100", "--restore-snapshot", "s"}).ok());
  EXPECT_FALSE(parse({"--fleet", "100", "--snapshot-at", "60",
                      "--save-snapshot", "s"}).ok());
  // The waveform monitor does not serialize with the run.
  EXPECT_FALSE(parse({"--waveform", "w.csv", "--restore-snapshot", "s"}).ok());
  EXPECT_FALSE(parse({"--waveform", "w.csv", "--snapshot-at", "60",
                      "--save-snapshot", "s"}).ok());
}

TEST(CliOptions, HelpShortCircuits) {
  const ParseResult r = parse({"--help", "--bogus-after-help"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.plan->show_help);
  EXPECT_NE(usage().find("--policy"), std::string::npos);
}

TEST(CliOptions, RejectsBadInput) {
  EXPECT_FALSE(parse({"--policy", "doze"}).ok());
  EXPECT_FALSE(parse({"--policy"}).ok());
  EXPECT_FALSE(parse({"--workload", "extreme"}).ok());
  EXPECT_FALSE(parse({"--beta", "1.5"}).ok());
  EXPECT_FALSE(parse({"--beta", "abc"}).ok());
  EXPECT_FALSE(parse({"--hours", "-1"}).ok());
  EXPECT_FALSE(parse({"--apps", "0"}).ok());
  EXPECT_FALSE(parse({"--reps", "0"}).ok());
  EXPECT_FALSE(parse({"--jobs", "0"}).ok());
  EXPECT_FALSE(parse({"--jobs", "-2"}).ok());
  EXPECT_FALSE(parse({"--jobs", "many"}).ok());
  EXPECT_FALSE(parse({"--jobs"}).ok());
  EXPECT_FALSE(parse({"--hw-levels", "5"}).ok());
  EXPECT_FALSE(parse({"--frobnicate"}).ok());
  // Errors carry a pointer to --help.
  EXPECT_NE(parse({"--frobnicate"}).error.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace simty::cli
