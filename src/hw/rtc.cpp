#include "hw/rtc.hpp"

#include "common/check.hpp"

namespace simty::hw {

Rtc::Rtc(sim::Simulator& sim, Device& device) : sim_(sim), device_(device) {}

void Rtc::program(TimePoint when, std::function<void()> handler) {
  SIMTY_CHECK(static_cast<bool>(handler));
  SIMTY_CHECK_MSG(when >= sim_.now(), "Rtc::program: deadline in the past");
  clear();
  deadline_ = when;
  handler_ = std::move(handler);
  event_ = sim_.schedule_at(
      when, [this] { fire(); }, sim::EventPriority::kHardware, "rtc-interrupt");
}

void Rtc::clear() {
  if (event_) {
    sim_.cancel(*event_);
    event_.reset();
  }
  deadline_.reset();
  handler_ = nullptr;
}

void Rtc::fire() {
  event_.reset();
  deadline_.reset();
  ++fired_;
  auto handler = std::move(handler_);
  handler_ = nullptr;
  // The handler runs only once the platform has completed its wake
  // transition; if already awake it runs immediately.
  device_.request_awake(WakeReason::kRtcAlarm, std::move(handler));
}

}  // namespace simty::hw
