#pragma once
namespace fx { using Tick = long; }
