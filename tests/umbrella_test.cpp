// Compiles the umbrella header and exercises one symbol from each module
// family — guards against the umbrella drifting out of sync.

#include "simty.hpp"

#include <gtest/gtest.h>

namespace simty {
namespace {

TEST(Umbrella, OneSymbolPerModuleFamily) {
  EXPECT_EQ(Duration::seconds(1).ms(), 1000);                       // common
  sim::Simulator sim;                                               // sim
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_FALSE(hw::is_user_perceptible(hw::Component::kWifi));      // hw
  EXPECT_GT(net::WifiLinkConfig{}.good_rate_kbps, 0.0);             // net
  EXPECT_EQ(alarm::hardware_similarity(hw::ComponentSet::none(),
                                       hw::ComponentSet::none()),
            alarm::SimilarityLevel::kLow);                          // alarm
  EXPECT_GT(gcm::GcmConfig{}.heartbeat_interval, Duration::zero()); // gcm
  EXPECT_EQ(power::EnergyBreakdown{}.total().mj(), 0.0);            // power
  EXPECT_EQ(apps::table3_catalog().size(), 18u);                    // apps
  trace::DeliveryLog log;                                           // trace
  EXPECT_EQ(log.size(), 0u);
  metrics::DelayStats delays;                                       // metrics
  EXPECT_EQ(delays.perceptible().deliveries, 0u);
  EXPECT_STREQ(exp::to_string(exp::PolicyKind::kSimty), "SIMTY");   // exp
  EXPECT_GT(usage::UsagePattern{}.mean_session_gap, Duration::zero()); // usage
}

}  // namespace
}  // namespace simty
