// Allocation gate for the discrete-event hot path.
//
// A counting global operator new proves the "zero steady-state heap
// allocations" claim instead of asserting it in comments: once the queue's
// slab, heap, and staging buffers have grown to their working size, a
// schedule/cancel/pop/pop_batch mix and the simulator's per-event step loop
// (the inner loop of a fleet shard's device run) must perform no heap
// allocation at all. The gate runs in its own test binary so the operator
// new replacement cannot distort other suites.
//
// Scope: the gate covers the event core (EventQueue, Simulator::step), not
// whole experiment runs — run_experiment legitimately allocates for
// metrics, reports, and policy state outside the per-event path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// Counting replacements for every operator new/delete form the toolchain
// emits. Only the allocation count is tracked; behavior is malloc/free.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace simty::sim {
namespace {

std::uint64_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }

// Mixed schedule/cancel/pop churn with periodic pop_batch, sized to stay
// within `window` pending events. Exercises every hot-path operation the
// gate covers; callbacks capture one pointer (trivially relocatable).
template <typename Queue>
void churn(Queue& q, Rng& rng, std::uint64_t* sink, std::size_t rounds) {
  std::int64_t now_us = 0;
  EventId last{};
  for (std::size_t i = 0; i < rounds; ++i) {
    const std::int64_t when = now_us + 1 + static_cast<std::int64_t>(rng.next_below(1000));
    last = q.schedule(TimePoint::from_us(when),
                      static_cast<EventPriority>(rng.next_below(4)),
                      [sink] { ++*sink; }, "gate");
    if (i % 7 == 0) q.cancel(last);
    if (i % 3 == 0 && !q.empty()) {
      if (!q.has_staged()) q.pop_batch();
      auto fired = q.pop();
      fired.callback();
      now_us = fired.when.us();
    }
  }
  while (!q.empty()) {
    auto fired = q.pop();
    fired.callback();
  }
}

TEST(AllocGateTest, WarmedEventQueueChurnsWithZeroAllocations) {
  EventQueue q;
  Rng rng(42);
  std::uint64_t sink = 0;
  // Warm-up grows the slab, heap array, bitset words, and staging buffers
  // to steady-state capacity.
  churn(q, rng, &sink, 20'000);

  const std::uint64_t before = alloc_count();
  churn(q, rng, &sink, 20'000);
  EXPECT_EQ(alloc_count() - before, 0u)
      << "steady-state schedule/cancel/pop/pop_batch must not allocate";
  EXPECT_GT(sink, 0u);
}

TEST(AllocGateTest, ArenaBackedQueueChurnsWithZeroAllocationsAndZeroArenaGrowth) {
  common::Arena arena;
  std::uint64_t sink = 0;
  {
    EventQueue q(&arena);
    Rng rng(42);
    churn(q, rng, &sink, 20'000);

    const std::uint64_t before = alloc_count();
    const std::uint64_t blocks_before = arena.stats().block_allocs;
    churn(q, rng, &sink, 20'000);
    EXPECT_EQ(alloc_count() - before, 0u);
    EXPECT_EQ(arena.stats().block_allocs, blocks_before)
        << "warmed arena must not grow in steady state";
  }
  // The fleet shard pattern: reset and rebuild on the same arena. The
  // second life must reuse the retained blocks, not allocate new ones.
  arena.reset();
  const std::uint64_t blocks_before = arena.stats().block_allocs;
  {
    EventQueue q(&arena);
    Rng rng(42);
    churn(q, rng, &sink, 20'000);
  }
  EXPECT_EQ(arena.stats().block_allocs, blocks_before)
      << "arena reset must rewind, not free, its blocks";
}

TEST(AllocGateTest, WarmedSimulatorStepLoopRunsWithZeroAllocations) {
  // The inner loop of a fleet shard's device run: step() pops and invokes
  // one event; live device models reschedule themselves from inside
  // callbacks. A self-rescheduling ladder reproduces that shape.
  common::Arena arena;
  Simulator sim(&arena);
  std::uint64_t fired = 0;

  struct Ladder {
    Simulator* sim;
    std::uint64_t* fired;
    std::uint32_t remaining;
    void operator()() {
      ++*fired;
      if (remaining > 0) {
        sim->schedule_after(Duration::micros(100), Ladder{sim, fired, remaining - 1},
                            EventPriority::kFramework, "ladder");
      }
    }
  };
  for (int lane = 0; lane < 8; ++lane) {
    sim.schedule_after(Duration::micros(lane), Ladder{&sim, &fired, 2'000});
  }
  // Warm: run half the ladder.
  for (int i = 0; i < 5'000; ++i) ASSERT_TRUE(sim.step());

  const std::uint64_t before = alloc_count();
  std::uint64_t steps = 0;
  while (sim.step()) ++steps;
  EXPECT_EQ(alloc_count() - before, 0u)
      << "steady-state Simulator::step must not allocate";
  EXPECT_GT(steps, 5'000u);
  EXPECT_EQ(fired, 8u * 2'001u);
}

TEST(AllocGateTest, CountingHookSeesOrdinaryAllocations) {
  // Self-test: the gate is meaningless if the hook is not actually
  // counting. (A unique_ptr would be tidier but its deleter runs after the
  // measurement; a raw pair keeps the window explicit.)
  const std::uint64_t before = alloc_count();
  int* p = new int(7);
  EXPECT_GT(alloc_count(), before);
  delete p;
}

}  // namespace
}  // namespace simty::sim
