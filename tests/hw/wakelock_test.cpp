#include "hw/wakelock.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace simty::hw {
namespace {

class PowerProbe : public PowerListener {
 public:
  void on_component_power(TimePoint t, Component c, bool on, Power level) override {
    events.push_back({t, c, on, level});
  }
  void on_impulse(TimePoint, Energy e, ImpulseKind kind, std::string_view) override {
    if (kind == ImpulseKind::kComponentActivation) activation_mj += e.mj();
  }
  struct Event {
    TimePoint t;
    Component c;
    bool on;
    Power level;
  };
  std::vector<Event> events;
  double activation_mj = 0.0;
};

class WakelockTest : public ::testing::Test {
 protected:
  WakelockTest() : model_(PowerModel::nexus5()) {
    bus_.add_listener(&probe_);
    mgr_ = std::make_unique<WakelockManager>(sim_, model_, bus_);
  }
  void advance(Duration d) {
    sim_.schedule_after(d, [] {});
    sim_.run_all();
  }
  sim::Simulator sim_;
  PowerModel model_;
  PowerBus bus_;
  PowerProbe probe_;
  std::unique_ptr<WakelockManager> mgr_;
};

TEST_F(WakelockTest, FirstAcquirePowersOnWithActivation) {
  const WakelockId id = mgr_->acquire(Component::kWifi, "line");
  EXPECT_TRUE(mgr_->is_on(Component::kWifi));
  ASSERT_EQ(probe_.events.size(), 1u);
  EXPECT_TRUE(probe_.events[0].on);
  EXPECT_DOUBLE_EQ(probe_.events[0].level.mw(),
                   model_.component(Component::kWifi).active.mw());
  EXPECT_DOUBLE_EQ(probe_.activation_mj,
                   model_.component(Component::kWifi).activation.mj());
  mgr_->release(id);
  EXPECT_FALSE(mgr_->is_on(Component::kWifi));
}

TEST_F(WakelockTest, NestedLocksPayActivationOnce) {
  const WakelockId a = mgr_->acquire(Component::kWps, "followmee");
  const WakelockId b = mgr_->acquire(Component::kWps, "celltracker");
  EXPECT_EQ(mgr_->lock_count(Component::kWps), 2);
  // One activation, one power-on event — the amortization that makes
  // hardware similarity pay off.
  EXPECT_DOUBLE_EQ(probe_.activation_mj,
                   model_.component(Component::kWps).activation.mj());
  EXPECT_EQ(probe_.events.size(), 1u);
  mgr_->release(a);
  EXPECT_TRUE(mgr_->is_on(Component::kWps));
  mgr_->release(b);
  EXPECT_FALSE(mgr_->is_on(Component::kWps));
  EXPECT_EQ(mgr_->usage(Component::kWps).cycles, 1u);
  EXPECT_EQ(mgr_->usage(Component::kWps).acquisitions, 2u);
}

TEST_F(WakelockTest, SeparateCyclesCountSeparately) {
  const WakelockId a = mgr_->acquire(Component::kWifi, "x");
  mgr_->release(a);
  const WakelockId b = mgr_->acquire(Component::kWifi, "y");
  mgr_->release(b);
  EXPECT_EQ(mgr_->usage(Component::kWifi).cycles, 2u);
  EXPECT_DOUBLE_EQ(probe_.activation_mj,
                   2 * model_.component(Component::kWifi).activation.mj());
}

TEST_F(WakelockTest, OnTimeAccumulatesAcrossCycles) {
  const WakelockId a = mgr_->acquire(Component::kWifi, "x");
  advance(Duration::seconds(3));
  mgr_->release(a);
  advance(Duration::seconds(10));
  const WakelockId b = mgr_->acquire(Component::kWifi, "x");
  advance(Duration::seconds(2));
  mgr_->release(b);
  EXPECT_EQ(mgr_->usage(Component::kWifi).on_time, Duration::seconds(5));
}

TEST_F(WakelockTest, FinalizeFlushesHeldLocks) {
  mgr_->acquire(Component::kAccelerometer, "moves");
  advance(Duration::seconds(7));
  mgr_->finalize(sim_.now());
  EXPECT_EQ(mgr_->usage(Component::kAccelerometer).on_time, Duration::seconds(7));
  // Finalize is idempotent at the same instant.
  mgr_->finalize(sim_.now());
  EXPECT_EQ(mgr_->usage(Component::kAccelerometer).on_time, Duration::seconds(7));
}

TEST_F(WakelockTest, IndependentComponentsDoNotInterfere) {
  mgr_->acquire(Component::kWifi, "a");
  mgr_->acquire(Component::kSpeaker, "b");
  EXPECT_TRUE(mgr_->is_on(Component::kWifi));
  EXPECT_TRUE(mgr_->is_on(Component::kSpeaker));
  EXPECT_FALSE(mgr_->is_on(Component::kVibrator));
}

TEST_F(WakelockTest, UnknownReleaseThrows) {
  EXPECT_THROW(mgr_->release(WakelockId{999}), std::logic_error);
  const WakelockId id = mgr_->acquire(Component::kWifi, "x");
  mgr_->release(id);
  EXPECT_THROW(mgr_->release(id), std::logic_error);
}

TEST_F(WakelockTest, WatchdogFlagsLongHoldAtRelease) {
  mgr_->set_watchdog_threshold(Duration::seconds(60));
  const WakelockId id = mgr_->acquire(Component::kWifi, "buggy-app");
  advance(Duration::seconds(120));
  mgr_->release(id);
  ASSERT_EQ(mgr_->anomalies().size(), 1u);
  const WakelockAnomaly& a = mgr_->anomalies()[0];
  EXPECT_EQ(a.component, Component::kWifi);
  EXPECT_EQ(a.holder, "buggy-app");
  EXPECT_EQ(a.held_for, Duration::seconds(120));
  EXPECT_FALSE(a.still_held);
}

TEST_F(WakelockTest, WatchdogAuditFindsStillHeldLocks) {
  mgr_->set_watchdog_threshold(Duration::seconds(60));
  mgr_->acquire(Component::kWps, "nosleep-bug");
  advance(Duration::seconds(300));
  EXPECT_EQ(mgr_->audit(sim_.now()), 1u);
  ASSERT_EQ(mgr_->anomalies().size(), 1u);
  EXPECT_TRUE(mgr_->anomalies()[0].still_held);
}

TEST_F(WakelockTest, WatchdogDisabledByDefault) {
  const WakelockId id = mgr_->acquire(Component::kWifi, "x");
  advance(Duration::hours(1));
  mgr_->release(id);
  EXPECT_TRUE(mgr_->anomalies().empty());
  EXPECT_EQ(mgr_->audit(sim_.now()), 0u);
}

TEST_F(WakelockTest, ShortHoldsAreNotAnomalies) {
  mgr_->set_watchdog_threshold(Duration::seconds(60));
  const WakelockId id = mgr_->acquire(Component::kWifi, "good-app");
  advance(Duration::seconds(3));
  mgr_->release(id);
  EXPECT_TRUE(mgr_->anomalies().empty());
}

}  // namespace
}  // namespace simty::hw
