# Empty compiler generated dependencies file for bench_network_quality.
# This may be replaced when dependencies are built.
