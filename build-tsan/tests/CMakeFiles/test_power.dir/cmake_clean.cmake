file(REMOVE_RECURSE
  "CMakeFiles/test_power.dir/power/app_attribution_test.cpp.o"
  "CMakeFiles/test_power.dir/power/app_attribution_test.cpp.o.d"
  "CMakeFiles/test_power.dir/power/energy_accounting_test.cpp.o"
  "CMakeFiles/test_power.dir/power/energy_accounting_test.cpp.o.d"
  "CMakeFiles/test_power.dir/power/monitor_test.cpp.o"
  "CMakeFiles/test_power.dir/power/monitor_test.cpp.o.d"
  "test_power"
  "test_power.pdb"
  "test_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
