#include "alarm/alarm_manager.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/tracer.hpp"

namespace simty::alarm {

AlarmManager::AlarmManager(sim::Simulator& sim, hw::Device& device, hw::Rtc& rtc,
                           hw::WakelockManager& wakelocks,
                           std::unique_ptr<AlignmentPolicy> policy,
                           common::Arena* arena)
    : sim_(sim), device_(device), rtc_(rtc), wakelocks_(wakelocks),
      policy_(std::move(policy)) {
  SIMTY_CHECK(policy_ != nullptr);
  if (arena != nullptr) {
    indices_[0].set_arena(arena);
    indices_[1].set_arena(arena);
  }
  device_.add_wake_listener([this](hw::WakeReason r) { on_device_wake(r); });
}

AlarmId AlarmManager::register_alarm(AlarmSpec spec, TimePoint first_nominal,
                                     DeliveryHandler handler) {
  spec.validate();
  SIMTY_CHECK(static_cast<bool>(handler));
  SIMTY_CHECK_MSG(first_nominal >= sim_.now(),
                  "alarm nominal time must not be in the past");
  const AlarmId id{next_id_++};
  auto alarm = std::make_unique<Alarm>(id, std::move(spec), first_nominal);
  Alarm* raw = alarm.get();
  registry_.emplace(id.value, Registered{std::move(alarm), std::move(handler)});
  ++stats_.registrations;
  insert(raw);
  return id;
}

void AlarmManager::set(AlarmId id, TimePoint nominal) {
  const auto it = registry_.find(id.value);
  SIMTY_CHECK_MSG(it != registry_.end(), "set: unknown alarm");
  SIMTY_CHECK_MSG(nominal >= sim_.now(), "set: nominal time in the past");
  remove_from_queue(id);
  it->second.alarm->reschedule(nominal);
  insert(it->second.alarm.get());
}

void AlarmManager::cancel(AlarmId id) {
  const auto it = registry_.find(id.value);
  SIMTY_CHECK_MSG(it != registry_.end(), "cancel: unknown alarm");
  remove_from_queue(id);
  registry_.erase(it);
  reprogram_rtc();
  schedule_nonwakeup_check();
}

std::size_t AlarmManager::cancel_by_tag(const std::string& prefix) {
  std::vector<AlarmId> victims;
  for (const auto& [id, reg] : registry_) {
    if (reg.alarm->spec().tag.rfind(prefix, 0) == 0) {
      victims.push_back(AlarmId{id});
    }
  }
  for (const AlarmId id : victims) cancel(id);
  return victims.size();
}

void AlarmManager::set_policy(std::unique_ptr<AlignmentPolicy> policy) {
  SIMTY_CHECK(policy != nullptr);
  policy_ = std::move(policy);
  rebatch_all();
}

void AlarmManager::rebatch_all() {
  // Pull every queued alarm out, then reinsert in nominal order under the
  // current policy — Android's rebatchAllAlarms.
  std::vector<Alarm*> alarms;
  for (auto& q : queues_) {
    for (const auto& batch : q) {
      for (Alarm* a : batch->members()) alarms.push_back(a);
    }
    q.clear();
  }
  for (auto& idx : indices_) idx.clear();
  std::sort(alarms.begin(), alarms.end(), [](const Alarm* x, const Alarm* y) {
    return x->nominal() < y->nominal();
  });
  ++stats_.realignments;
  SIMTY_TRACE_INSTANT(sim_.now(), trace::TraceCategory::kAlarm, "rebatch-all",
                      static_cast<std::int64_t>(alarms.size()));
  for (Alarm* a : alarms) insert(a);
  reprogram_rtc();
  schedule_nonwakeup_check();
}

bool AlarmManager::is_registered(AlarmId id) const {
  return registry_.contains(id.value);
}

const Alarm* AlarmManager::find(AlarmId id) const {
  const auto it = registry_.find(id.value);
  return it == registry_.end() ? nullptr : it->second.alarm.get();
}

void AlarmManager::add_delivery_observer(DeliveryObserver observer) {
  SIMTY_CHECK(static_cast<bool>(observer));
  observers_.push_back(std::move(observer));
}

void AlarmManager::add_session_observer(SessionObserver observer) {
  SIMTY_CHECK(static_cast<bool>(observer));
  session_observers_.push_back(std::move(observer));
}

void AlarmManager::set_delivery_gate(DeliveryGate gate) {
  delivery_gate_ = std::move(gate);
  reprogram_rtc();
}

const std::vector<std::unique_ptr<Batch>>& AlarmManager::queue(AlarmKind kind) const {
  return queues_[static_cast<std::size_t>(kind)];
}

std::vector<std::unique_ptr<Batch>>& AlarmManager::queue_ref(AlarmKind kind) {
  return queues_[static_cast<std::size_t>(kind)];
}

BatchIndex& AlarmManager::index_ref(AlarmKind kind) {
  return indices_[static_cast<std::size_t>(kind)];
}

void AlarmManager::renumber(std::vector<std::unique_ptr<Batch>>& q,
                            std::size_t from, std::size_t to) {
  for (std::size_t i = from; i < to; ++i) q[i]->set_queue_pos(i);
}

std::optional<std::size_t> AlarmManager::select_entry(const Alarm& a,
                                                      AlarmKind kind) {
  auto& q = queue_ref(kind);
  const std::optional<CandidateQuery> query =
      indexed_selection_ ? policy_->candidate_query(a) : std::nullopt;
  if (!query) return policy_->select_batch(a, q);

  candidates_.clear();
  index_ref(kind).collect(query->interval, query->entry_kind, candidates_);
  SIMTY_TRACE_INSTANT(sim_.now(), trace::TraceCategory::kAlarm, "batch-candidates",
                      static_cast<std::int64_t>(candidates_.size()));
  const std::optional<std::size_t> chosen =
      policy_->select_among(a, q, candidates_);

  if (slow_queue_checks_) {
    // Differential reference: the candidate set must equal a brute-force
    // overlap scan, and the selection must equal the linear select_batch.
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < q.size(); ++i) {
      const TimeInterval& entry_iv =
          query->entry_kind == EntryIntervalKind::kWindow
              ? q[i]->window_interval()
              : q[i]->grace_interval();
      if (entry_iv.overlaps(query->interval)) expected.push_back(i);
    }
    SIMTY_CHECK_MSG(expected == candidates_,
                    "BatchIndex candidate set diverged from the linear scan");
    SIMTY_CHECK_MSG(chosen == policy_->select_batch(a, q),
                    "indexed selection diverged from the linear reference");
  }
  return chosen;
}

void AlarmManager::insert(Alarm* a) {
  const AlarmKind kind = a->spec().kind;
  auto& q = queue_ref(kind);
  BatchIndex& idx = index_ref(kind);
  const std::optional<std::size_t> slot = select_entry(*a, kind);
  if (slot) {
    SIMTY_CHECK(*slot < q.size());
    // The join changes the entry's intervals, so re-key it in the index
    // around the mutation.
    idx.erase(q[*slot].get());
    q[*slot]->add(a);
    SIMTY_CHECK_MSG(!q[*slot]->grace_interval().is_empty(),
                    "policy joined an entry with no grace overlap");
    SIMTY_TRACE_INSTANT(sim_.now(), trace::TraceCategory::kAlarm, "batch-join",
                        static_cast<std::int64_t>(q[*slot]->size()));
    idx.insert(q[*slot].get());
    reposition(q, *slot);
  } else {
    // New singleton entry: a stable_sort would place it after every entry
    // with an equal delivery time (it was appended last), i.e. upper_bound.
    auto batch = std::make_unique<Batch>(a);
    const TimePoint t = batch->delivery_time();
    const auto pos = std::upper_bound(
        q.begin(), q.end(), t, [](TimePoint value, const std::unique_ptr<Batch>& b) {
          return value < b->delivery_time();
        });
    const auto at = static_cast<std::size_t>(pos - q.begin());
    q.insert(pos, std::move(batch));
    // Position stamps ride on the O(shift) the vector insert already paid.
    renumber(q, at, q.size());
    idx.insert(q[at].get());
    SIMTY_TRACE_INSTANT(sim_.now(), trace::TraceCategory::kAlarm, "batch-create",
                        static_cast<std::int64_t>(q.size()));
  }
  if (slow_queue_checks_) sort_queue(a->spec().kind);
  if (a->spec().kind == AlarmKind::kWakeup) {
    reprogram_rtc();
  } else {
    schedule_nonwakeup_check();
  }
}

bool AlarmManager::remove_from_queue(AlarmId id) {
  for (std::size_t k = 0; k < 2; ++k) {
    auto& q = queues_[k];
    const auto it = std::find_if(q.begin(), q.end(), [&](const auto& b) {
      return b->contains(id);
    });
    if (it == q.end()) continue;

    // Realignment (§2.1): pull the whole entry out and reinsert the other
    // members in nominal order; the caller reinserts the target alarm.
    std::unique_ptr<Batch> batch = std::move(*it);
    indices_[k].erase(batch.get());
    const auto at = static_cast<std::size_t>(it - q.begin());
    q.erase(it);
    renumber(q, at, q.size());
    batch->remove(id);
    if (!batch->empty()) {
      ++stats_.realignments;
      SIMTY_TRACE_INSTANT(sim_.now(), trace::TraceCategory::kAlarm, "batch-split",
                          static_cast<std::int64_t>(batch->size()));
      std::vector<Alarm*> members = batch->members();
      std::sort(members.begin(), members.end(), [](const Alarm* x, const Alarm* y) {
        return x->nominal() < y->nominal();
      });
      for (Alarm* m : members) insert(m);
    }
    reprogram_rtc();
    schedule_nonwakeup_check();
    return true;
  }
  return false;
}

void AlarmManager::reposition(std::vector<std::unique_ptr<Batch>>& q,
                              std::size_t index) {
  // The queue was sorted before q[index] changed key, so at most this one
  // entry is out of place. Moving it to upper_bound (key decreased) or
  // lower_bound (key increased) of the others reproduces exactly what the
  // old full stable_sort produced: every equal-key entry was on the side
  // the bound preserves (the array was sorted, so equal keys could only
  // sit before a decreased key / after an increased one), and stable_sort
  // keeps relative order with all of them.
  const TimePoint t = q[index]->delivery_time();
  if (index > 0 && q[index - 1]->delivery_time() > t) {
    const auto pos = std::upper_bound(
        q.begin(), q.begin() + static_cast<std::ptrdiff_t>(index), t,
        [](TimePoint value, const std::unique_ptr<Batch>& b) {
          return value < b->delivery_time();
        });
    const auto dest = static_cast<std::size_t>(pos - q.begin());
    std::rotate(pos, q.begin() + static_cast<std::ptrdiff_t>(index),
                q.begin() + static_cast<std::ptrdiff_t>(index) + 1);
    renumber(q, dest, index + 1);
  } else if (index + 1 < q.size() && q[index + 1]->delivery_time() < t) {
    const auto pos = std::lower_bound(
        q.begin() + static_cast<std::ptrdiff_t>(index) + 1, q.end(), t,
        [](const std::unique_ptr<Batch>& b, TimePoint value) {
          return b->delivery_time() < value;
        });
    const auto dest = static_cast<std::size_t>(pos - q.begin());
    std::rotate(q.begin() + static_cast<std::ptrdiff_t>(index),
                q.begin() + static_cast<std::ptrdiff_t>(index) + 1, pos);
    renumber(q, index, dest);
  }
}

void AlarmManager::sort_queue(AlarmKind kind) const {
  const auto& q = queue(kind);
  std::vector<const Batch*> expected;
  expected.reserve(q.size());
  for (const auto& b : q) expected.push_back(b.get());
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Batch* x, const Batch* y) {
                     return x->delivery_time() < y->delivery_time();
                   });
  for (std::size_t i = 0; i < q.size(); ++i) {
    SIMTY_CHECK_MSG(expected[i] == q[i].get(),
                    "incremental queue maintenance diverged from stable_sort");
  }
}

void AlarmManager::reprogram_rtc() {
  const auto& q = queue(AlarmKind::kWakeup);
  if (q.empty()) {
    rtc_.clear();
    return;
  }
  TimePoint head = std::max(q.front()->delivery_time(), sim_.now());
  if (delivery_gate_) {
    const TimePoint gated = delivery_gate_(head);
    SIMTY_CHECK_MSG(gated >= head, "delivery gate must not advance wakeups");
    head = gated;
  }
  if (rtc_.programmed() == head) return;
  rtc_.program(head, [this] { deliver_due(AlarmKind::kWakeup); });
}

void AlarmManager::schedule_nonwakeup_check() {
  if (nonwakeup_check_) {
    sim_.cancel(*nonwakeup_check_);
    nonwakeup_check_.reset();
  }
  // Non-wakeup alarms are only delivered while the device is awake for some
  // other reason (§2.1).
  if (device_.state() != hw::DeviceState::kAwake) return;
  const auto& q = queue(AlarmKind::kNonWakeup);
  if (q.empty()) return;
  const TimePoint head = std::max(q.front()->delivery_time(), sim_.now());
  nonwakeup_check_ = sim_.schedule_at(
      head,
      [this] {
        nonwakeup_check_.reset();
        if (device_.state() == hw::DeviceState::kAwake) {
          deliver_due(AlarmKind::kNonWakeup);
        }
      },
      sim::EventPriority::kFramework, "nonwakeup-check");
}

void AlarmManager::deliver_due(AlarmKind kind) {
  auto& q = queue_ref(kind);
  BatchIndex& idx = index_ref(kind);
  const TimePoint now = sim_.now();
  while (!q.empty() && q.front()->delivery_time() <= now) {
    std::unique_ptr<Batch> batch = std::move(q.front());
    idx.erase(batch.get());
    q.erase(q.begin());
    renumber(q, 0, q.size());
    deliver_batch(std::move(batch));
  }
  if (kind == AlarmKind::kWakeup) {
    // The device is awake right now: flush any due non-wakeup work too.
    deliver_due(AlarmKind::kNonWakeup);
    reprogram_rtc();
  }
  schedule_nonwakeup_check();
}

void AlarmManager::deliver_batch(std::unique_ptr<Batch> batch) {
  SIMTY_CHECK(device_.state() == hw::DeviceState::kAwake);
  const TimePoint now = sim_.now();
  ++stats_.batches_delivered;
  SIMTY_TRACE_INSTANT(now, trace::TraceCategory::kAlarm, "batch-deliver",
                      static_cast<std::int64_t>(batch->size()));

  // The framework holds a CPU wakelock for the whole joint session.
  device_.acquire_cpu_lock();

  // Per-component serialization chains: the first task's hold starts now;
  // each successor starts after serial_fraction of its predecessor's hold
  // (0 = perfect piggybacking, 1 = fully serialized).
  std::array<Duration, hw::kComponentCount> chain_offset{};
  const hw::PowerModel& pm = device_.power_model();
  Duration session_busy = Duration::zero();

  SessionRecord session;
  session.start = now;
  session.caused_wakeup = device_.wakeup_count() != last_seen_wakeups_;
  last_seen_wakeups_ = device_.wakeup_count();

  for (Alarm* a : batch->members()) {
    const auto reg_it = registry_.find(a->id().value);
    SIMTY_CHECK_MSG(reg_it != registry_.end(), "delivering unregistered alarm");
    const bool was_perceptible = a->perceptible();

    // App code may throw (the real framework survives crashing receivers);
    // a failed handler degrades to an empty task and the alarm keeps its
    // schedule — the crash must not take down the other batch members.
    TaskSpec task;
    try {
      task = reg_it->second.handler(*a, now);
    } catch (const std::exception& e) {
      ++stats_.handler_failures;
      task = TaskSpec{};
      SIMTY_WARN(str_format("handler for %s threw: %s", a->spec().tag.c_str(),
                            e.what()));
    }
    SIMTY_CHECK_MSG(!task.hold.is_negative(), "task hold must be >= 0");

    // Stagger this task's wakelocks on each component's chain.
    Duration task_end = Duration::zero();
    for (const hw::Component c : task.hardware.components()) {
      const auto ci = static_cast<std::size_t>(c);
      const Duration start = chain_offset[ci];
      const Duration end = start + task.hold;
      task_end = std::max(task_end, end);
      chain_offset[ci] = start + pm.component(c).serial_fraction * task.hold;

      sim_.schedule_at(
          now + start,
          [this, c, tag = a->spec().tag, hold = task.hold] {
            const hw::WakelockId lock = wakelocks_.acquire(c, tag);
            // try_release: a WakelockGuardian may have revoked the lock.
            sim_.schedule_after(hold,
                                [this, lock] { wakelocks_.try_release(lock); },
                                sim::EventPriority::kFramework, "wakelock-release");
          },
          sim::EventPriority::kFramework, "wakelock-acquire");
    }
    session_busy = std::max(session_busy, task_end);

    ++stats_.deliveries;
    a->record_delivery(task.hardware, task.hold);

    DeliveryRecord record;
    record.id = a->id();
    record.tag = a->spec().tag;
    record.app = a->spec().app;
    record.kind = a->spec().kind;
    record.mode = a->spec().mode;
    record.repeat_interval = a->spec().repeat_interval;
    record.nominal = a->nominal();
    record.delivered = now;
    record.window = a->window_interval();
    record.was_perceptible = was_perceptible;
    record.hardware_used = task.hardware;
    record.hold = task.hold;
    record.batch_size = batch->size();
    for (const DeliveryObserver& obs : observers_) obs(record);
    session.items.push_back(
        SessionItem{a->id(), a->spec().app, a->spec().tag, task.hardware, task.hold});

    // Reinsertion of repeating alarms (§2.1): static repeating stays on its
    // nominal grid; dynamic repeating is re-anchored at the delivery time.
    switch (a->spec().mode) {
      case RepeatMode::kOneShot:
        registry_.erase(a->id().value);
        break;
      case RepeatMode::kStatic: {
        TimePoint next = a->nominal() + a->spec().repeat_interval;
        while (next < now) next += a->spec().repeat_interval;
        a->reschedule(next);
        insert(a);
        break;
      }
      case RepeatMode::kDynamic:
        a->reschedule(now + a->spec().repeat_interval);
        insert(a);
        break;
    }
  }

  // Hold the CPU until every task completes, at least the handler floor.
  const Duration cpu_span = std::max(session_busy, pm.handler_floor);
  sim_.schedule_after(cpu_span, [this] { device_.release_cpu_lock(); },
                      sim::EventPriority::kFramework, "session-end");

  session.cpu_session = cpu_span;
  for (const SessionObserver& obs : session_observers_) obs(session);
}

std::string AlarmManager::dump() const {
  std::string out = str_format("AlarmManager[%s] t=%.3fs alarms=%zu\n",
                               policy_->name().c_str(), sim_.now().seconds_f(),
                               registry_.size());
  for (const AlarmKind kind : {AlarmKind::kWakeup, AlarmKind::kNonWakeup}) {
    const auto& q = queue(kind);
    out += str_format("  %s queue: %zu entries\n", to_string(kind), q.size());
    for (std::size_t i = 0; i < q.size(); ++i) {
      const Batch& b = *q[i];
      out += str_format(
          "    [%zu] deliver=%.3fs %s window=%s grace=%s hw=%s\n", i,
          b.delivery_time().seconds_f(),
          b.perceptible() ? "perceptible" : "imperceptible",
          b.window_interval().to_string().c_str(),
          b.grace_interval().to_string().c_str(), b.hardware().to_string().c_str());
      for (const Alarm* a : b.members()) {
        out += "      " + a->to_string() + "\n";
      }
    }
  }
  if (rtc_.programmed()) {
    out += str_format("  rtc: programmed at %.3fs\n", rtc_.programmed()->seconds_f());
  } else {
    out += "  rtc: idle\n";
  }
  return out;
}

std::vector<std::string> AlarmManager::check_invariants() const {
  std::vector<std::string> issues;
  std::map<std::uint64_t, int> seen;
  for (const AlarmKind kind : {AlarmKind::kWakeup, AlarmKind::kNonWakeup}) {
    const auto& q = queue(kind);
    for (std::size_t i = 0; i < q.size(); ++i) {
      const Batch& b = *q[i];
      if (b.empty()) {
        issues.push_back(str_format("%s[%zu]: empty batch", to_string(kind), i));
        continue;
      }
      if (i > 0 && q[i - 1]->delivery_time() > b.delivery_time()) {
        issues.push_back(str_format("%s[%zu]: queue out of order", to_string(kind), i));
      }
      if (b.grace_interval().is_empty()) {
        issues.push_back(str_format("%s[%zu]: empty grace overlap", to_string(kind), i));
      }
      if (b.perceptible() && b.window_interval().is_empty()) {
        issues.push_back(
            str_format("%s[%zu]: perceptible entry without window overlap",
                       to_string(kind), i));
      }
      if (b.queue_pos() != i) {
        issues.push_back(str_format("%s[%zu]: stale queue position %zu",
                                    to_string(kind), i, b.queue_pos()));
      }
      for (const Alarm* a : b.members()) {
        ++seen[a->id().value];
        if (!registry_.contains(a->id().value)) {
          issues.push_back("queued alarm not registered: " + a->spec().tag);
        }
        if (a->spec().kind != kind) {
          issues.push_back("alarm in wrong-kind queue: " + a->spec().tag);
        }
      }
    }
  }
  for (const auto& [id, count] : seen) {
    if (count > 1) {
      issues.push_back(str_format("alarm %llu queued %d times",
                                  static_cast<unsigned long long>(id), count));
    }
  }
  for (const AlarmKind kind : {AlarmKind::kWakeup, AlarmKind::kNonWakeup}) {
    const auto& q = queue(kind);
    const BatchIndex& idx = indices_[static_cast<std::size_t>(kind)];
    if (idx.size() != q.size()) {
      issues.push_back(str_format("%s: index holds %zu entries, queue %zu",
                                  to_string(kind), idx.size(), q.size()));
    }
    for (const Batch* b : idx.entries_inorder()) {
      if (b->queue_pos() >= q.size() || q[b->queue_pos()].get() != b) {
        issues.push_back(str_format("%s: index entry not in queue",
                                    to_string(kind)));
      }
    }
    for (const std::string& issue : idx.check_invariants()) {
      issues.push_back(str_format("%s index: %s", to_string(kind), issue.c_str()));
    }
  }
  const auto& wq = queue(AlarmKind::kWakeup);
  if (!wq.empty()) {
    if (!rtc_.programmed()) {
      // Legal transient: the RTC already fired for the head batch and the
      // wake transition (or the delivery session) is still in flight; the
      // queue drains and the RTC is reprogrammed when it completes.
      if (device_.state() == hw::DeviceState::kAsleep &&
          wq.front()->delivery_time() > sim_.now()) {
        issues.push_back("wakeup queue non-empty but RTC idle");
      }
    } else if (*rtc_.programmed() <
               std::min(wq.front()->delivery_time(), sim_.now())) {
      issues.push_back("RTC programmed before the head's delivery time");
    }
  }
  return issues;
}

void AlarmManager::on_device_wake(hw::WakeReason) {
  // Whatever woke the device, due non-wakeup alarms can now be delivered
  // (§2.1: "postponed to the next time that the device is woken").
  deliver_due(AlarmKind::kNonWakeup);
}

void AlarmManager::save(snapshot::Writer& w) const {
  w.u64(next_id_);
  w.u64(last_seen_wakeups_);
  w.u64(stats_.registrations);
  w.u64(stats_.deliveries);
  w.u64(stats_.batches_delivered);
  w.u64(stats_.realignments);
  w.u64(stats_.handler_failures);
  w.u64(registry_.size());
  for (const auto& [id, reg] : registry_) reg.alarm->save(w);
  for (const AlarmKind kind : {AlarmKind::kWakeup, AlarmKind::kNonWakeup}) {
    const auto& q = queue(kind);
    w.u64(q.size());
    for (const auto& batch : q) {
      w.u64(batch->size());
      for (const Alarm* a : batch->members()) w.u64(a->id().value);
    }
    w.u64(indices_[static_cast<std::size_t>(kind)].next_seq());
  }
  w.boolean(nonwakeup_check_.has_value());
  if (nonwakeup_check_) w.u64(nonwakeup_check_->value);
}

void AlarmManager::restore(snapshot::SectionReader& s,
                           const HandlerResolver& resolver) {
  SIMTY_CHECK_MSG(static_cast<bool>(resolver),
                  "AlarmManager::restore: handler resolver required");
  registry_.clear();
  for (auto& q : queues_) q.clear();
  for (auto& idx : indices_) idx.clear();
  nonwakeup_check_.reset();

  next_id_ = s.u64();
  SIMTY_CHECK_MSG(next_id_ >= 1, "AlarmManager::restore: bad id counter");
  last_seen_wakeups_ = s.u64();
  stats_.registrations = s.u64();
  stats_.deliveries = s.u64();
  stats_.batches_delivered = s.u64();
  stats_.realignments = s.u64();
  stats_.handler_failures = s.u64();

  const std::uint64_t alarm_count = s.u64();
  s.check_count(alarm_count, 88);  // fixed fields + minimal tag string
  for (std::uint64_t i = 0; i < alarm_count; ++i) {
    std::unique_ptr<Alarm> alarm = Alarm::restore(s);
    const std::uint64_t id = alarm->id().value;
    SIMTY_CHECK_MSG(id != 0 && id < next_id_,
                    "AlarmManager::restore: alarm id out of range");
    DeliveryHandler handler = resolver(alarm->spec().app, alarm->spec().tag);
    SIMTY_CHECK_MSG(static_cast<bool>(handler),
                    "AlarmManager::restore: resolver has no handler for alarm");
    const bool inserted =
        registry_
            .emplace(id, Registered{std::move(alarm), std::move(handler)})
            .second;
    SIMTY_CHECK_MSG(inserted, "AlarmManager::restore: duplicate alarm id");
  }

  std::map<std::uint64_t, int> queued;
  for (const AlarmKind kind : {AlarmKind::kWakeup, AlarmKind::kNonWakeup}) {
    auto& q = queue_ref(kind);
    BatchIndex& idx = index_ref(kind);
    const std::uint64_t batch_count = s.u64();
    s.check_count(batch_count, 18);  // member count + at least one member id
    for (std::uint64_t b = 0; b < batch_count; ++b) {
      const std::uint64_t member_count = s.u64();
      SIMTY_CHECK_MSG(member_count > 0, "AlarmManager::restore: empty batch");
      s.check_count(member_count, 9);
      std::unique_ptr<Batch> batch;
      for (std::uint64_t m = 0; m < member_count; ++m) {
        const std::uint64_t id = s.u64();
        const auto it = registry_.find(id);
        SIMTY_CHECK_MSG(it != registry_.end(),
                        "AlarmManager::restore: queued alarm not registered");
        Alarm* a = it->second.alarm.get();
        SIMTY_CHECK_MSG(a->spec().kind == kind,
                        "AlarmManager::restore: alarm in wrong-kind queue");
        SIMTY_CHECK_MSG(queued[id]++ == 0,
                        "AlarmManager::restore: alarm queued twice");
        // Entry attributes are order-insensitive monotone folds of current
        // member state (queued members never mutate), so first+add rebuilds
        // the saved entry exactly; no placement decision re-runs.
        if (!batch) {
          batch = std::make_unique<Batch>(a);
        } else {
          batch->add(a);
        }
      }
      SIMTY_CHECK_MSG(!batch->grace_interval().is_empty(),
                      "AlarmManager::restore: entry without grace overlap");
      batch->set_queue_pos(q.size());
      q.push_back(std::move(batch));
    }
    for (std::size_t i = 1; i < q.size(); ++i) {
      SIMTY_CHECK_MSG(q[i - 1]->delivery_time() <= q[i]->delivery_time(),
                      "AlarmManager::restore: queue out of order");
    }
    for (const auto& batch : q) idx.insert(batch.get());
    const std::uint64_t next_seq = s.u64();
    SIMTY_CHECK_MSG(next_seq >= idx.next_seq(),
                    "AlarmManager::restore: index insertion counter regressed");
    idx.set_next_seq(next_seq);
  }

  if (s.boolean()) {
    const std::uint64_t event = s.u64();
    SIMTY_CHECK_MSG(event != 0,
                    "AlarmManager::restore: null non-wakeup check event");
    nonwakeup_check_ = sim::EventId{event};
    sim_.rebind(*nonwakeup_check_, [this] {
      nonwakeup_check_.reset();
      if (device_.state() == hw::DeviceState::kAwake) {
        deliver_due(AlarmKind::kNonWakeup);
      }
    });
  }
}

std::function<void()> AlarmManager::rtc_handler() {
  return [this] { deliver_due(AlarmKind::kWakeup); };
}

void AlarmManager::apply_grace_factor(double beta) {
  SIMTY_CHECK_MSG(beta >= 0.0 && beta < 1.0, "grace factor must lie in [0, 1)");
  for (auto& entry : registry_) {
    Alarm& a = *entry.second.alarm;
    if (a.spec().mode == RepeatMode::kOneShot) continue;
    const Duration grace =
        std::max(a.spec().repeat_interval * beta, a.spec().window_length);
    a.set_grace_length(grace);
  }
  rebatch_all();
}

}  // namespace simty::alarm
