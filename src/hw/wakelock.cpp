#include "hw/wakelock.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/tracer.hpp"

namespace simty::hw {

WakelockManager::WakelockManager(sim::Simulator& sim, const PowerModel& model,
                                 PowerBus& bus)
    : sim_(sim), model_(model), bus_(bus) {}

Duration WakelockManager::effective_tail(Component c) const {
  const auto idx = static_cast<std::size_t>(c);
  return tail_override_[idx].value_or(model_.component(c).tail);
}

WakelockId WakelockManager::acquire(Component c, std::string holder) {
  const auto idx = static_cast<std::size_t>(c);
  const TimePoint now = sim_.now();
  const WakelockId id{next_id_++};
  held_.push_back(Held{id, c, std::move(holder), now});
  ++usage_[idx].acquisitions;
  if (counts_[idx]++ == 0) {
    const ComponentPower& p = model_.component(c);
    if (tail_event_[idx]) {
      // Warm start: the radio is still up in its tail — no activation cost.
      sim_.cancel(*tail_event_[idx]);
      tail_event_[idx].reset();
      usage_[idx].tail_time += now - tail_since_[idx];
      ++usage_[idx].warm_starts;
      bus_.publish_component_power(now, c, true, p.active);
      SIMTY_TRACE_INSTANT(now, trace::TraceCategory::kHw, "component-warm-start",
                          static_cast<std::int64_t>(idx));
    } else {
      // Cold start: pay activation, count a cycle.
      ++usage_[idx].cycles;
      bus_.publish_impulse(now, p.activation, ImpulseKind::kComponentActivation,
                           to_string(c));
      bus_.publish_component_power(now, c, true, p.active);
      SIMTY_TRACE_INSTANT(now, trace::TraceCategory::kHw, "component-cold-start",
                          static_cast<std::int64_t>(idx));
    }
    on_since_[idx] = now;
  }
  return id;
}

bool WakelockManager::try_release(WakelockId id) {
  const auto it = std::find_if(held_.begin(), held_.end(),
                               [&](const Held& h) { return h.id == id; });
  if (it == held_.end()) return false;
  release(id);
  return true;
}

std::vector<WakelockManager::HeldInfo> WakelockManager::held_locks() const {
  std::vector<HeldInfo> out;
  out.reserve(held_.size());
  for (const Held& h : held_) {
    out.push_back(HeldInfo{h.id, h.component, h.holder, h.acquired_at});
  }
  return out;
}

void WakelockManager::release(WakelockId id) {
  const auto it = std::find_if(held_.begin(), held_.end(),
                               [&](const Held& h) { return h.id == id; });
  SIMTY_CHECK_MSG(it != held_.end(), "WakelockManager::release: unknown lock");
  const TimePoint now = sim_.now();
  const Component c = it->component;
  const auto idx = static_cast<std::size_t>(c);

  const Duration held_for = now - it->acquired_at;
  if (!watchdog_threshold_.is_zero() && held_for > watchdog_threshold_) {
    anomalies_.push_back(
        WakelockAnomaly{c, it->holder, it->acquired_at, held_for, false});
  }
  held_.erase(it);

  SIMTY_CHECK(counts_[idx] > 0);
  if (--counts_[idx] == 0) {
    usage_[idx].on_time += now - on_since_[idx];
    const Duration tail = effective_tail(c);
    if (tail.is_zero()) {
      bus_.publish_component_power(now, c, false, Power::zero());
      SIMTY_TRACE_INSTANT(now, trace::TraceCategory::kHw, "component-off",
                          static_cast<std::int64_t>(idx));
      return;
    }
    // Enter the tail: lingering high-power state until the timer fires or
    // a warm re-acquisition cancels it.
    SIMTY_TRACE_INSTANT(now, trace::TraceCategory::kHw, "component-tail",
                        static_cast<std::int64_t>(idx));
    tail_since_[idx] = now;
    bus_.publish_component_power(now, c, true, model_.component(c).tail_power);
    tail_event_[idx] = sim_.schedule_at(
        now + tail, [this, idx] { end_tail(idx); }, sim::EventPriority::kHardware,
        "wakelock-tail-end");
  }
}

void WakelockManager::end_tail(std::size_t idx) {
  tail_event_[idx].reset();
  usage_[idx].tail_time += sim_.now() - tail_since_[idx];
  bus_.publish_component_power(sim_.now(), static_cast<Component>(idx), false,
                               Power::zero());
  SIMTY_TRACE_INSTANT(sim_.now(), trace::TraceCategory::kHw, "component-off",
                      static_cast<std::int64_t>(idx));
}

bool WakelockManager::is_on(Component c) const {
  return counts_[static_cast<std::size_t>(c)] > 0;
}

int WakelockManager::lock_count(Component c) const {
  return counts_[static_cast<std::size_t>(c)];
}

bool WakelockManager::in_tail(Component c) const {
  return tail_event_[static_cast<std::size_t>(c)].has_value();
}

void WakelockManager::set_fast_dormancy(Component c, Duration truncated) {
  SIMTY_CHECK_MSG(!truncated.is_negative(), "fast-dormancy tail must be >= 0");
  tail_override_[static_cast<std::size_t>(c)] = truncated;
}

const ComponentUsage& WakelockManager::usage(Component c) const {
  return usage_[static_cast<std::size_t>(c)];
}

std::size_t WakelockManager::audit(TimePoint now) {
  if (watchdog_threshold_.is_zero()) return 0;
  std::size_t found = 0;
  for (const Held& h : held_) {
    const Duration held_for = now - h.acquired_at;
    if (held_for > watchdog_threshold_) {
      anomalies_.push_back(
          WakelockAnomaly{h.component, h.holder, h.acquired_at, held_for, true});
      ++found;
    }
  }
  return found;
}

void WakelockManager::save(snapshot::Writer& w) const {
  SIMTY_CHECK_MSG(held_.empty(), "WakelockManager::save: locks still held");
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    w.i64(on_since_[i].us());
    w.i64(tail_since_[i].us());
    w.u64(tail_event_[i] ? tail_event_[i]->value : 0);
    w.boolean(tail_override_[i].has_value());
    w.i64(tail_override_[i].value_or(Duration::zero()).us());
    w.u64(usage_[i].cycles);
    w.u64(usage_[i].acquisitions);
    w.u64(usage_[i].warm_starts);
    w.i64(usage_[i].on_time.us());
    w.i64(usage_[i].tail_time.us());
  }
  w.u64(anomalies_.size());
  for (const WakelockAnomaly& a : anomalies_) {
    w.u8(static_cast<std::uint8_t>(a.component));
    w.str(a.holder);
    w.i64(a.acquired_at.us());
    w.i64(a.held_for.us());
    w.boolean(a.still_held);
  }
  w.i64(watchdog_threshold_.us());
  w.u64(next_id_);
}

void WakelockManager::restore(snapshot::SectionReader& s) {
  held_.clear();
  counts_.fill(0);
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    on_since_[i] = TimePoint::from_us(s.i64());
    tail_since_[i] = TimePoint::from_us(s.i64());
    const std::uint64_t tail_id = s.u64();
    tail_event_[i].reset();
    const bool has_override = s.boolean();
    const Duration override_tail = Duration::micros(s.i64());
    tail_override_[i] =
        has_override ? std::optional<Duration>(override_tail) : std::nullopt;
    usage_[i].cycles = s.u64();
    usage_[i].acquisitions = s.u64();
    usage_[i].warm_starts = s.u64();
    usage_[i].on_time = Duration::micros(s.i64());
    usage_[i].tail_time = Duration::micros(s.i64());
    if (tail_id != 0) {
      tail_event_[i] = sim::EventId{tail_id};
      sim_.rebind(*tail_event_[i], [this, i] { end_tail(i); });
    }
  }
  const std::uint64_t anomaly_count = s.u64();
  s.check_count(anomaly_count, 2 + 9 + 3 * 9 + 2);
  anomalies_.clear();
  anomalies_.reserve(anomaly_count);
  for (std::uint64_t i = 0; i < anomaly_count; ++i) {
    WakelockAnomaly a;
    const std::uint8_t component = s.u8();
    SIMTY_CHECK_MSG(component < kComponentCount,
                    "WakelockManager::restore: component out of range");
    a.component = static_cast<Component>(component);
    a.holder = s.str();
    a.acquired_at = TimePoint::from_us(s.i64());
    a.held_for = Duration::micros(s.i64());
    a.still_held = s.boolean();
    anomalies_.push_back(std::move(a));
  }
  watchdog_threshold_ = Duration::micros(s.i64());
  next_id_ = s.u64();
}

void WakelockManager::finalize(TimePoint now) {
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    if (counts_[i] > 0) {
      usage_[i].on_time += now - on_since_[i];
      on_since_[i] = now;
    } else if (tail_event_[i]) {
      usage_[i].tail_time += now - tail_since_[i];
      tail_since_[i] = now;
    }
  }
}

}  // namespace simty::hw
