#pragma once
// Battery-aware grace adaptation and standby-until-depletion runs.
//
// Ref [13] (cited in the paper's intro) adjusts sensing intervals
// "adaptively based on the battery level"; the same idea applies to
// SIMTY's grace factor: the emptier the battery, the further imperceptible
// alarms may be postponed. The depletion harness chains standby segments,
// draining a battery model with each segment's measured energy, until the
// pack is empty — measuring the paper's headline ("prolongs standby time
// by one-fourth to one-third") directly instead of projecting it.

#include <vector>

#include "common/units.hpp"
#include "exp/experiment.hpp"
#include "hw/battery.hpp"

namespace simty::exp {

/// Maps state-of-charge to the platform grace factor.
class AdaptiveBetaController {
 public:
  /// One step of the control curve: use `beta` while soc >= `soc_at_least`.
  struct Band {
    double soc_at_least;
    double beta;
  };

  /// Bands must be sorted by descending soc_at_least and end with a
  /// soc_at_least of 0 (the floor band). Betas must be non-decreasing as
  /// charge falls (postpone more, never less, as the battery drains).
  explicit AdaptiveBetaController(std::vector<Band> bands);

  /// A sensible default: gentle (0.80) above half charge, the paper's 0.96
  /// below 20%.
  static AdaptiveBetaController default_profile();

  double beta_for(double soc) const;

  const std::vector<Band>& bands() const { return bands_; }

 private:
  std::vector<Band> bands_;
};

/// One standby segment of a depletion run.
struct DepletionSegment {
  double soc_start = 1.0;   // charge fraction entering the segment
  double beta = 0.0;        // grace factor used
  Energy consumed;          // energy drained by the segment
  double delay_imperceptible = 0.0;
};

/// Outcome of running standby until the pack is empty.
struct DepletionResult {
  Duration standby_time = Duration::zero();  // total time until depletion
  bool depleted = false;                     // false if max_segments hit
  std::vector<DepletionSegment> history;
};

/// Chains `base`-configured standby segments (each of base.duration),
/// draining `battery`; the grace factor is either base.beta (when
/// `controller` is null) or controller->beta_for(soc) per segment. The
/// final partial segment is prorated. Seeds advance per segment.
DepletionResult run_until_depleted(ExperimentConfig base, hw::Battery battery,
                                   const AdaptiveBetaController* controller = nullptr,
                                   int max_segments = 500);

}  // namespace simty::exp
