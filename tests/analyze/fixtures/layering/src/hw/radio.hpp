#pragma once
// ...but hw including alarm is a back edge, and together with sched.hpp's
// include of this header it also forms an include cycle.
#include "alarm/sched.hpp"
namespace fx::hw {
struct Radio { int chan; };
}
