# Empty dependencies file for bench_policy_micro.
# This may be replaced when dependencies are built.
