#pragma once
// Android system-service alarms.
//
// Table 4's CPU rows "also count one-shot and system alarms": beyond the 18
// user apps, the platform itself schedules periodic bookkeeping (netstats
// polls, battery stats, time sync) plus sporadic one-shot alarms. This
// source models both so the CPU wakeup counts have the same composition as
// the paper's.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "alarm/alarm_manager.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::apps {

/// Configuration of the system-alarm mix.
struct SystemAlarmConfig {
  /// Periodic imperceptible services: (tag, repeat seconds). All use
  /// alpha = 0.75 like ordinary inexact system alarms and wakelock nothing
  /// (CPU-only bookkeeping).
  bool periodic_services = true;

  /// Platform grace factor for the periodic services (clamped up to their
  /// alpha, §3.1.2).
  double beta = 0.96;

  /// Mean inter-arrival of sporadic one-shot alarms (exponential); zero
  /// disables them. One-shot alarms are perceptible by definition
  /// (footnote 5), so they always wake the device inside their window.
  Duration one_shot_mean = Duration::seconds(180);

  /// Window length of the sporadic one-shots.
  Duration one_shot_window = Duration::seconds(30);
};

/// Registers system alarms and keeps spawning sporadic one-shots.
class SystemAlarmSource {
 public:
  SystemAlarmSource(sim::Simulator& sim, alarm::AlarmManager& manager,
                    SystemAlarmConfig config, Rng rng);

  SystemAlarmSource(const SystemAlarmSource&) = delete;
  SystemAlarmSource& operator=(const SystemAlarmSource&) = delete;

  /// Registers the periodic services and schedules the first one-shot.
  /// `horizon` bounds one-shot spawning.
  void start(TimePoint horizon);

  std::uint64_t one_shots_fired() const { return one_shots_fired_; }

  /// The app id all system alarms are registered under.
  static constexpr alarm::AppId kSystemApp{9999};

  /// Resolves delivery handlers for system alarms on restore: "android.*"
  /// services are stateless, "system.oneshot.*" handlers count firings.
  /// Returns an empty handler for foreign tags.
  alarm::DeliveryHandler handler_for(const std::string& tag);

  /// Serializes the rng stream, counters, and the pending spawn event.
  /// restore() overwrites whatever start() did on the fresh stack (the
  /// registered alarms live in the manager's snapshot; start()'s spawn
  /// event dies with the queue restore) and rebinds the saved spawn chain.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  void spawn_next_one_shot();
  void on_spawn_event();
  alarm::DeliveryHandler one_shot_handler();

  sim::Simulator& sim_;
  alarm::AlarmManager& manager_;
  SystemAlarmConfig config_;
  Rng rng_;
  TimePoint horizon_;
  std::optional<sim::EventId> spawn_event_;
  std::uint64_t one_shots_fired_ = 0;
  std::uint64_t one_shot_seq_ = 0;
};

}  // namespace simty::apps
