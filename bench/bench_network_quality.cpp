// Ablation A10: link-quality sensitivity (ref [8]: achievable rates vary
// widely over time). Syncs carry byte payloads over a two-state Markov
// Wi-Fi link; sweeping the fraction of time the link is bad lengthens
// every hold. Expectations: total energy rises as the link degrades under
// BOTH policies; SIMTY's relative saving stays roughly stable (alignment
// amortizes wakeups and activations regardless of transfer speed).

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "apps/workload.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "exp/parallel_runner.hpp"
#include "hw/device.hpp"
#include "hw/power_bus.hpp"
#include "hw/rtc.hpp"
#include "hw/wakelock.hpp"
#include "net/wifi_link.hpp"
#include "power/energy_accounting.hpp"
#include "sim/simulator.hpp"

using namespace simty;

namespace {

struct Outcome {
  double total_j = 0.0;
  double good_fraction = 0.0;
};

Outcome run(bool use_simty, const net::WifiLinkConfig& link_cfg, std::uint64_t seed) {
  sim::Simulator sim;
  hw::PowerBus bus;
  power::EnergyAccountant accountant;
  bus.add_listener(&accountant);
  const hw::PowerModel model = hw::PowerModel::nexus5();
  hw::Device device(sim, model, bus);
  hw::Rtc rtc(sim, device);
  hw::WakelockManager wakelocks(sim, model, bus);
  std::unique_ptr<alarm::AlignmentPolicy> policy;
  if (use_simty) policy = std::make_unique<alarm::SimtyPolicy>();
  else policy = std::make_unique<alarm::NativePolicy>();
  alarm::AlarmManager manager(sim, device, rtc, wakelocks, std::move(policy));

  const TimePoint horizon = TimePoint::origin() + Duration::hours(3);
  net::WifiLink link(sim, link_cfg, Rng(seed, 0x11F));
  link.start(horizon);

  apps::WorkloadConfig wc;
  wc.seed = seed;
  apps::Workload workload = apps::Workload::light(wc);
  workload.deploy(sim, manager, &link);

  sim.run_until(horizon);
  device.finalize(horizon);
  wakelocks.finalize(horizon);
  accountant.finalize(horizon);
  return Outcome{accountant.breakdown().total().joules_f(),
                 link.good_fraction(horizon)};
}

}  // namespace

int main() {
  TextTable t("Link-quality sweep (light workload with byte-sized syncs, 3 h, 3 seeds)");
  t.set_header({"bad dwell", "good fraction", "NATIVE (J)", "SIMTY (J)",
                "SIMTY saving"});
  const std::int64_t kBadDwells[] = {0, 30, 90, 180, 400};
  const int reps = 3;

  // Each session owns its full simulator/link stack, so the whole sweep
  // fans out over the pool; futures are consumed in submission order and
  // the per-row accumulation below matches the old serial loop exactly.
  ThreadPool pool(
      static_cast<std::size_t>(exp::ParallelRunner::default_jobs()));
  std::vector<std::future<Outcome>> futures;
  for (const std::int64_t bad_s : kBadDwells) {
    // Fix the good dwell, lengthen the bad dwell: the link spends ever more
    // time at 500 kbps.
    net::WifiLinkConfig cfg;
    cfg.good_rate_kbps = 20000.0;
    cfg.bad_rate_kbps = 500.0;
    cfg.mean_good_dwell = Duration::seconds(120);
    cfg.mean_bad_dwell = Duration::seconds(std::max<std::int64_t>(bad_s, 1));
    if (bad_s == 0) cfg.mean_good_dwell = Duration::hours(100);  // never degrade
    for (int i = 0; i < reps; ++i) {
      const auto seed = static_cast<std::uint64_t>(i + 1);
      futures.push_back(pool.submit([cfg, seed] { return run(false, cfg, seed); }));
      futures.push_back(pool.submit([cfg, seed] { return run(true, cfg, seed); }));
    }
  }

  std::size_t next = 0;
  for (const std::int64_t bad_s : kBadDwells) {
    double native_j = 0.0, simty_j = 0.0, good = 0.0;
    for (int i = 0; i < reps; ++i) {
      const Outcome n = futures[next++].get();
      const Outcome s = futures[next++].get();
      native_j += n.total_j / reps;
      simty_j += s.total_j / reps;
      good += n.good_fraction / reps;
    }
    t.add_row({bad_s == 0 ? "never bad" : Duration::seconds(bad_s).to_string(),
               percent(good, 0), str_format("%.1f", native_j),
               str_format("%.1f", simty_j), percent(1.0 - simty_j / native_j)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
