file(REMOVE_RECURSE
  "libsimty_gcm.a"
)
