#pragma once
// Hardware wakelock manager.
//
// Re-creates the Android hardware WakeLock surface the paper hooked for
// profiling: tasks acquire a named lock on a component while they use it;
// a component is powered (and pays its activation energy) only while at
// least one lock is held. On-cycle counts per component are exactly the
// numerators of the paper's Table 4. A WakeScope-style watchdog flags
// locks held beyond a threshold — the "no-sleep bug" failure mode of
// refs [3] and [6].

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "hw/component.hpp"
#include "hw/power_bus.hpp"
#include "hw/power_model.hpp"
#include "sim/simulator.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::hw {

/// Ticket returned by acquire(); pass back to release().
struct WakelockId {
  std::uint64_t value = 0;
  bool operator==(const WakelockId&) const = default;
};

/// A lock held suspiciously long (potential no-sleep bug).
struct WakelockAnomaly {
  Component component;
  std::string holder;
  TimePoint acquired_at;
  Duration held_for;
  bool still_held;  // true when flagged by audit() rather than at release
};

/// Per-component usage statistics.
struct ComponentUsage {
  std::uint64_t cycles = 0;       // cold off->on transitions (Table 4 numerators)
  std::uint64_t acquisitions = 0; // individual locks taken
  std::uint64_t warm_starts = 0;  // re-acquisitions during the radio tail
  Duration on_time;               // accumulated actively-locked time
  Duration tail_time;             // accumulated tail-lingering time
};

/// Reference-counted power gating for every wakelockable component.
class WakelockManager {
 public:
  WakelockManager(sim::Simulator& sim, const PowerModel& model, PowerBus& bus);

  WakelockManager(const WakelockManager&) = delete;
  WakelockManager& operator=(const WakelockManager&) = delete;

  /// Acquires a lock on `c` for `holder` (app/alarm tag, for diagnostics).
  /// First lock on an unpowered component powers it and pays activation.
  WakelockId acquire(Component c, std::string holder);

  /// Releases a previously acquired lock; the last release powers the
  /// component down. Unknown/double release throws.
  void release(WakelockId id);

  /// Like release(), but returns false instead of throwing when the lock
  /// is gone — used by holders whose locks a guardian may have revoked.
  bool try_release(WakelockId id);

  /// Snapshot of a currently held lock.
  struct HeldInfo {
    WakelockId id;
    Component component;
    std::string holder;
    TimePoint acquired_at;
  };

  /// All currently held locks (registration order).
  std::vector<HeldInfo> held_locks() const;

  bool is_on(Component c) const;
  int lock_count(Component c) const;

  /// True while the component lingers in its post-release tail.
  bool in_tail(Component c) const;

  /// Overrides the component's tail length (fast dormancy, ref [12]):
  /// forces the radio down after `truncated` instead of the model's tail.
  void set_fast_dormancy(Component c, Duration truncated);

  const ComponentUsage& usage(Component c) const;

  /// Locks held longer than `threshold` get reported. A zero threshold
  /// disables the watchdog (the default).
  void set_watchdog_threshold(Duration threshold) { watchdog_threshold_ = threshold; }

  /// Anomalies recorded at release time.
  const std::vector<WakelockAnomaly>& anomalies() const { return anomalies_; }

  /// Scans currently-held locks; appends still-held anomalies and returns
  /// how many were found by this scan.
  std::size_t audit(TimePoint now);

  /// Flushes on-time accounting for still-powered components up to `now`.
  void finalize(TimePoint now);

  /// Serializes counters, tail timers, and usage; requires that no lock is
  /// held (checkpoints happen at device-quiescent instants, but a radio
  /// tail may still be lingering — its timer event is carried and rebound).
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  struct Held {
    WakelockId id;
    Component component;
    std::string holder;
    TimePoint acquired_at;
  };

  sim::Simulator& sim_;
  PowerModel model_;
  PowerBus& bus_;

  Duration effective_tail(Component c) const;
  void end_tail(std::size_t idx);

  std::vector<Held> held_;
  std::array<int, kComponentCount> counts_{};
  std::array<TimePoint, kComponentCount> on_since_{};
  std::array<TimePoint, kComponentCount> tail_since_{};
  std::array<std::optional<sim::EventId>, kComponentCount> tail_event_{};
  std::array<std::optional<Duration>, kComponentCount> tail_override_{};
  std::array<ComponentUsage, kComponentCount> usage_{};
  std::vector<WakelockAnomaly> anomalies_;
  Duration watchdog_threshold_ = Duration::zero();
  std::uint64_t next_id_ = 1;
};

}  // namespace simty::hw
