file(REMOVE_RECURSE
  "CMakeFiles/simty_gcm.dir/gcm_service.cpp.o"
  "CMakeFiles/simty_gcm.dir/gcm_service.cpp.o.d"
  "libsimty_gcm.a"
  "libsimty_gcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simty_gcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
