#pragma once
// Allocation-free event callback for the discrete-event hot path.
//
// EventFn is a move-only, small-buffer-only replacement for
// std::function<void()>: every callable is stored inline in a fixed-size
// buffer, and a callable that does not fit is a compile error rather than a
// silent heap fallback. The simulator schedules millions of events per
// experiment; with EventFn a schedule() performs zero allocations, and the
// static_assert in the converting constructor is the proof that this holds
// for every in-tree caller (shrink the capture — e.g. capture a pointer —
// or raise kInlineBytes if it ever fires).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace simty::sim {

/// Move-only callable with fixed inline storage and no heap fallback.
class EventFn {
 public:
  /// Sized for the largest in-tree capture (the GCM fetch completion:
  /// this + lock + PushMessage + handler pointer) with headroom.
  static constexpr std::size_t kInlineBytes = 112;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "EventFn requires a void() callable");
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "callback capture too large for EventFn inline storage — "
                  "capture a pointer instead, or raise EventFn::kInlineBytes");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callback over-aligned for EventFn inline storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "EventFn callables must be nothrow-move-constructible");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = ops_for<Fn>();
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Invokes the stored callable; must not be empty.
  void operator()() { ops_->invoke(storage_); }

  /// Destroys the stored callable (if any), leaving the EventFn empty.
  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// move-construct into dst + destroy src; null when a memcpy of `size`
    /// bytes is equivalent (trivially copyable + trivially destructible —
    /// nearly every in-tree capture, a pointer or two). The event-queue
    /// slab moves callbacks on every schedule and pop; the null check is a
    /// predicted branch, the indirect call it replaces is not free.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;  // null when trivially destructible
    std::uint32_t size;                    // sizeof the stored callable
  };

  template <typename Fn>
  static const Ops* ops_for() {
    constexpr bool kTrivial =
        std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;
    static constexpr Ops ops{
        [](void* self) { (*static_cast<Fn*>(self))(); },
        kTrivial ? nullptr
                 : +[](void* src, void* dst) noexcept {
                     Fn* from = static_cast<Fn*>(src);
                     ::new (dst) Fn(std::move(*from));
                     from->~Fn();
                   },
        std::is_trivially_destructible_v<Fn>
            ? nullptr
            : +[](void* self) noexcept { static_cast<Fn*>(self)->~Fn(); },
        static_cast<std::uint32_t>(sizeof(Fn)),
    };
    return &ops;
  }

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate == nullptr) {
        std::memcpy(storage_, other.storage_, ops_->size);
      } else {
        ops_->relocate(other.storage_, storage_);
      }
      other.ops_ = nullptr;
    }
  }

  // ops_ sits in front of the storage so the emptiness check and a small
  // capture share one cache line (the event-queue slab walks these at
  // 128-byte stride; most captures are a pointer or two).
  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

}  // namespace simty::sim
