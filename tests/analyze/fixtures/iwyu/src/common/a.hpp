#pragma once
namespace fx::common {
struct Athing { int v = 0; };
int a_fn();
}
