#include "net/cellular.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "alarm/native_policy.hpp"
#include "hw/device.hpp"
#include "hw/power_bus.hpp"
#include "hw/rtc.hpp"
#include "hw/wakelock.hpp"
#include "sim/simulator.hpp"

namespace simty::net {
namespace {

// Minimal cellular framework: device + alarm manager + standby harness.
struct CellularHarness {
  sim::Simulator sim;
  hw::PowerModel model = hw::PowerModel::nexus5();
  hw::PowerBus bus;
  hw::Device device{sim, model, bus};
  hw::Rtc rtc{sim, device};
  hw::WakelockManager wakelocks{sim, model, bus};
  alarm::AlarmManager manager{sim, device, rtc, wakelocks,
                              std::make_unique<alarm::NativePolicy>()};
  CellularStandby standby{sim, manager, bus};
};

std::vector<CellularSyncSpec> two_messengers() {
  CellularSyncSpec a;
  a.name = "chat";
  a.repeat = Duration::seconds(120);
  a.hold = Duration::seconds(2);
  a.hold_jitter = 0.2;
  CellularSyncSpec b;
  b.name = "mail";
  b.repeat = Duration::seconds(300);
  b.hold = Duration::seconds(3);
  return {a, b};
}

TEST(CellularStandby, FinalizeClosesTheAccounting) {
  CellularHarness h;
  h.standby.deploy(two_messengers(), Rng(1, 0x363), 0.96);
  EXPECT_FALSE(h.standby.finalized());

  const TimePoint horizon = TimePoint::origin() + Duration::hours(1);
  h.sim.run_until(horizon);
  h.standby.finalize(horizon);
  EXPECT_TRUE(h.standby.finalized());

  const RrcMachine& rrc = h.standby.rrc();
  EXPECT_GT(rrc.idle_promotions() + rrc.fach_promotions(), 0u);
  EXPECT_GT(rrc.time_in(RrcState::kDch), Duration::zero());
  // The wiring bugfix in one line: with finalize() in the teardown path the
  // per-state spans tile the whole run.
  const Duration total = rrc.time_in(RrcState::kIdle) +
                         rrc.time_in(RrcState::kFach) +
                         rrc.time_in(RrcState::kDch);
  EXPECT_EQ(total, horizon - TimePoint::origin());
}

TEST(CellularStandby, DeploymentsAreAPureFunctionOfTheSeed) {
  const auto run = [](std::uint64_t seed) {
    CellularHarness h;
    h.standby.deploy(two_messengers(), Rng(seed, 0x363), 0.96);
    const TimePoint horizon = TimePoint::origin() + Duration::hours(1);
    h.sim.run_until(horizon);
    h.standby.finalize(horizon);
    return std::tuple{h.standby.rrc().idle_promotions(),
                      h.standby.rrc().fach_promotions(),
                      h.standby.rrc().time_in(RrcState::kDch)};
  };
  EXPECT_EQ(run(7), run(7));
  // Different seeds draw different hold jitter; DCH time should move.
  EXPECT_NE(std::get<2>(run(7)), std::get<2>(run(8)));
}

TEST(CellularStandby, DeployAfterFinalizeRejected) {
  CellularHarness h;
  h.standby.finalize(TimePoint::origin());
  EXPECT_THROW(h.standby.deploy(two_messengers(), Rng(1), 0.96),
               std::logic_error);
}

}  // namespace
}  // namespace simty::net
