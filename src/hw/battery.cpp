#include "hw/battery.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace simty::hw {

Battery::Battery(Charge capacity, double nominal_volts)
    : capacity_energy_(capacity.at_voltage(nominal_volts)) {
  SIMTY_CHECK_MSG(capacity_energy_ > Energy::zero(), "battery capacity must be positive");
}

Battery Battery::nexus5() {
  return Battery(Charge::milliamp_hours(2300.0), 3.8);
}

Energy Battery::remaining() const {
  const Energy r = capacity_energy_ - consumed_;
  return r > Energy::zero() ? r : Energy::zero();
}

double Battery::state_of_charge() const {
  return remaining().ratio(capacity_energy_);
}

void Battery::consume(Energy e) {
  SIMTY_CHECK_MSG(e >= Energy::zero(), "cannot consume negative energy");
  consumed_ += e;
  consumed_ = std::min(consumed_, capacity_energy_);
}

bool Battery::depleted() const { return remaining() == Energy::zero(); }

Duration Battery::projected_standby(Energy capacity, Power avg_power) {
  if (avg_power <= Power::zero()) {
    throw std::invalid_argument("projected_standby: average power must be positive");
  }
  return Duration::from_seconds(capacity.mj() / avg_power.mw());
}

Duration Battery::projected_standby(Power avg_power) const {
  return projected_standby(capacity_energy_, avg_power);
}

}  // namespace simty::hw
