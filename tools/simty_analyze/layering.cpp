// Layering pass.
//
// The module table (Config::modules, longest-prefix match) assigns each
// file a (module, layer). An include from layer L into layer L' > L in a
// *different* module is a back edge — an error naming both modules. Any
// cycle in the resolved include graph is an error printing the loop.
// Finally, a direct include none of whose declared names appear in the
// includer is reported as an `include` advisory (IWYU-lite) — advisory
// because umbrella headers and macro-only uses make this heuristic, and
// `// simty-analyze: allow-file(include)` silences it per file.

#include <algorithm>
#include <string>

#include "passes.hpp"

namespace simty::analyze {

namespace {

bool word_in(const std::string& text, const std::string& word) {
  const auto ident = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
  };
  for (std::size_t pos = text.find(word); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    const bool l = pos == 0 || !ident(text[pos - 1]);
    const std::size_t e = pos + word.size();
    if (l && (e >= text.size() || !ident(text[e]))) return true;
  }
  return false;
}

bool line_allows(const FileModel& m, int line, const char* check) {
  if (std::find(m.file_allows.begin(), m.file_allows.end(), check) != m.file_allows.end())
    return true;
  if (line < 1 || static_cast<std::size_t>(line) > m.line_allows.size()) return false;
  const auto& v = m.line_allows[static_cast<std::size_t>(line) - 1];
  return std::find(v.begin(), v.end(), check) != v.end();
}

}  // namespace

void run_layering(const Graph& g, const Config& config, Result& result) {
  const std::vector<ModuleRule>& rules = config.modules;

  // Back edges over direct includes.
  if (!rules.empty()) {
    for (std::size_t i = 0; i < g.models.size(); ++i) {
      const FileModel& m = g.models[i];
      const int from = module_of(rules, m.path);
      if (from < 0) continue;  // tests/bench/tools sit outside the DAG
      for (std::size_t k = 0; k < m.includes.size(); ++k) {
        const int t = g.includes[i][k];
        if (t < 0) continue;
        const int to = module_of(rules, g.models[static_cast<std::size_t>(t)].path);
        if (to < 0) continue;
        const ModuleRule& rf = rules[static_cast<std::size_t>(from)];
        const ModuleRule& rt = rules[static_cast<std::size_t>(to)];
        if (rt.module == rf.module || rt.layer <= rf.layer) continue;
        if (line_allows(m, m.includes[k].line, "layering")) continue;
        Finding f;
        f.check = "layering";
        f.file = m.path;
        f.line = m.includes[k].line;
        f.message = "module '" + rf.module + "' (layer " + std::to_string(rf.layer) +
                    ") must not include '" + m.includes[k].spelled + "' from module '" +
                    rt.module + "' (layer " + std::to_string(rt.layer) + ")";
        f.chain = {m.path + " -> " + g.models[static_cast<std::size_t>(t)].path};
        result.findings.push_back(std::move(f));
      }
    }
  }

  // Include cycles (any modules — a cycle breaks single-pass builds and
  // poisons the closure the taint pass depends on). DFS with colors; each
  // cycle is reported once, anchored at its lexicographically smallest file.
  {
    enum Color { kWhite, kGray, kBlack };
    std::vector<Color> color(g.models.size(), kWhite);
    std::vector<int> stack_pos(g.models.size(), -1);
    std::vector<int> path;
    std::vector<std::vector<int>> cycles;

    struct Frame {
      int node;
      std::size_t next = 0;
    };
    for (std::size_t start = 0; start < g.models.size(); ++start) {
      if (color[start] != kWhite) continue;
      std::vector<Frame> frames{{static_cast<int>(start)}};
      color[start] = kGray;
      stack_pos[start] = 0;
      path = {static_cast<int>(start)};
      while (!frames.empty()) {
        Frame& fr = frames.back();
        const auto& outs = g.includes[static_cast<std::size_t>(fr.node)];
        if (fr.next < outs.size()) {
          const int t = outs[fr.next++];
          if (t < 0) continue;
          if (color[static_cast<std::size_t>(t)] == kGray) {
            // Found a cycle: path from t's stack position to the top.
            std::vector<int> cyc(path.begin() + stack_pos[static_cast<std::size_t>(t)],
                                 path.end());
            const auto min_it = std::min_element(
                cyc.begin(), cyc.end(), [&](int a, int b) {
                  return g.models[static_cast<std::size_t>(a)].path <
                         g.models[static_cast<std::size_t>(b)].path;
                });
            std::rotate(cyc.begin(), min_it, cyc.end());
            if (std::find(cycles.begin(), cycles.end(), cyc) == cycles.end()) {
              cycles.push_back(cyc);
            }
          } else if (color[static_cast<std::size_t>(t)] == kWhite) {
            color[static_cast<std::size_t>(t)] = kGray;
            stack_pos[static_cast<std::size_t>(t)] = static_cast<int>(path.size());
            path.push_back(t);
            frames.push_back({t});
          }
        } else {
          color[static_cast<std::size_t>(fr.node)] = kBlack;
          path.pop_back();
          frames.pop_back();
        }
      }
    }
    std::sort(cycles.begin(), cycles.end(), [&](const auto& a, const auto& b) {
      return g.models[static_cast<std::size_t>(a.front())].path <
             g.models[static_cast<std::size_t>(b.front())].path;
    });
    for (const auto& cyc : cycles) {
      const FileModel& anchor = g.models[static_cast<std::size_t>(cyc.front())];
      Finding f;
      f.check = "include-cycle";
      f.file = anchor.path;
      f.line = 1;
      f.message = "include cycle of " + std::to_string(cyc.size()) + " file(s)";
      for (std::size_t n = 0; n < cyc.size(); ++n) {
        f.chain.push_back(g.models[static_cast<std::size_t>(cyc[n])].path + " -> " +
                          g.models[static_cast<std::size_t>(cyc[(n + 1) % cyc.size()])].path);
      }
      result.findings.push_back(std::move(f));
    }
  }

  // IWYU-lite advisories over direct includes of analyzed files.
  if (config.iwyu) {
    for (std::size_t i = 0; i < g.models.size(); ++i) {
      const FileModel& m = g.models[i];
      for (std::size_t k = 0; k < m.includes.size(); ++k) {
        const int t = g.includes[i][k];
        if (t < 0) continue;
        const FileModel& target = g.models[static_cast<std::size_t>(t)];
        if (target.provided.empty()) continue;  // nothing parseable — assume used
        if (m.includes[k].allowed || line_allows(m, m.includes[k].line, "include")) continue;
        // A .cpp including its own companion header is the definition site.
        const std::size_t dot_m = m.path.rfind('.');
        const std::size_t dot_t = target.path.rfind('.');
        if (dot_m != std::string::npos && dot_t != std::string::npos &&
            m.path.compare(0, dot_m, target.path, 0, dot_t) == 0) {
          continue;
        }
        bool used = false;
        for (const auto& name : target.provided) {
          if (word_in(m.joined, name)) {
            used = true;
            break;
          }
        }
        if (!used) {
          result.advisories.push_back(
              {"include", m.path, m.includes[k].line,
               "include '" + m.includes[k].spelled +
                   "' looks unused: nothing it declares is referenced here"});
        }
      }
    }
  }
}

}  // namespace simty::analyze
