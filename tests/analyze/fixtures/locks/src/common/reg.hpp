#pragma once
#include <mutex>
#define SIMTY_GUARDED_BY(x)
#define SIMTY_REQUIRES(x)
namespace fx::common {
class Registry {
 public:
  int ok();
  int bad();
  int locked_helper() SIMTY_REQUIRES(mu_);
  int hatch();
 private:
  int count_ SIMTY_GUARDED_BY(mu_) = 0;
  std::mutex mu_;
};
}
