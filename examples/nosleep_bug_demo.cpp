// No-sleep-bug demo: the misuse mode that motivated WakeScope (ref [3]) and
// the no-sleep-bug studies (ref [6]) the paper builds on. A buggy app
// acquires a Wi-Fi wakelock in its alarm handler and forgets to release it;
// the wakelock watchdog flags the anomaly and the energy accountant shows
// the damage.

#include <cstdio>
#include <memory>

#include "alarm/alarm_manager.hpp"
#include "common/logging.hpp"
#include "alarm/simty_policy.hpp"
#include "hw/device.hpp"
#include "hw/guardian.hpp"
#include "hw/power_bus.hpp"
#include "hw/rtc.hpp"
#include "hw/wakelock.hpp"
#include "power/energy_accounting.hpp"
#include "sim/simulator.hpp"

using namespace simty;

namespace {

double run(bool buggy, std::vector<hw::WakelockAnomaly>* anomalies,
           bool with_guardian = false,
           std::vector<hw::WakelockGuardian::Intervention>* interventions = nullptr) {
  sim::Simulator sim;
  hw::PowerBus bus;
  power::EnergyAccountant accountant;
  bus.add_listener(&accountant);
  const hw::PowerModel model = hw::PowerModel::nexus5();
  hw::Device device(sim, model, bus);
  hw::Rtc rtc(sim, device);
  hw::WakelockManager wakelocks(sim, model, bus);
  // WakeScope-style watchdog: any lock held beyond 60 s is suspicious for
  // these short sync tasks.
  wakelocks.set_watchdog_threshold(Duration::seconds(60));
  alarm::AlarmManager manager(sim, device, rtc, wakelocks,
                              std::make_unique<alarm::SimtyPolicy>());

  // Remediation mode: a WakeScope-style guardian revokes runaway locks.
  hw::WakelockGuardian::Config gc;
  gc.hold_budget = Duration::seconds(120);
  gc.scan_period = Duration::seconds(30);
  hw::WakelockGuardian guardian(sim, wakelocks, gc);
  if (with_guardian) {
    guardian.start(TimePoint::origin() + Duration::hours(1));
  }

  // A well-behaved messenger...
  manager.register_alarm(
      alarm::AlarmSpec::repeating("goodapp.sync", alarm::AppId{1},
                                  alarm::RepeatMode::kDynamic,
                                  Duration::seconds(300), 0.75, 0.96),
      TimePoint::origin() + Duration::seconds(300),
      [](const alarm::Alarm&, TimePoint) {
        return alarm::TaskSpec{hw::ComponentSet{hw::Component::kWifi},
                               Duration::seconds(2)};
      });
  // ...and one whose handler "forgets" to release: modelled as a hold that
  // spans its whole repeating interval.
  const Duration buggy_hold = buggy ? Duration::seconds(600) : Duration::seconds(2);
  manager.register_alarm(
      alarm::AlarmSpec::repeating("buggyapp.sync", alarm::AppId{2},
                                  alarm::RepeatMode::kStatic,
                                  Duration::seconds(600), 0.75, 0.96),
      TimePoint::origin() + Duration::seconds(600),
      [buggy_hold](const alarm::Alarm&, TimePoint) {
        return alarm::TaskSpec{hw::ComponentSet{hw::Component::kWifi}, buggy_hold};
      });

  const TimePoint horizon = TimePoint::origin() + Duration::hours(1);
  sim.run_until(horizon);
  wakelocks.audit(horizon);
  device.finalize(horizon);
  wakelocks.finalize(horizon);
  accountant.finalize(horizon);
  if (anomalies) *anomalies = wakelocks.anomalies();
  if (interventions) *interventions = guardian.interventions();
  return accountant.breakdown().total().joules_f();
}

}  // namespace

int main() {
  // The guardian logs each revocation at WARN; the report below covers it.
  Logger::instance().set_level(LogLevel::kError);
  std::vector<hw::WakelockAnomaly> anomalies;
  const double healthy_j = run(false, nullptr);
  const double buggy_j = run(true, &anomalies);

  std::printf("one hour of standby, two apps:\n");
  std::printf("  healthy:        %.1f J\n", healthy_j);
  std::printf("  with no-sleep bug: %.1f J (%.1fx)\n", buggy_j, buggy_j / healthy_j);
  std::printf("\nwatchdog report (threshold 60 s):\n");
  for (const hw::WakelockAnomaly& a : anomalies) {
    std::printf("  [%s] %s held %s for %s%s\n",
                a.still_held ? "STILL HELD" : "released late", a.holder.c_str(),
                hw::to_string(a.component), a.held_for.to_string().c_str(),
                a.still_held ? " and counting" : "");
  }
  if (anomalies.empty()) std::printf("  (none)\n");

  // With the guardian enabled, the bug's damage is bounded.
  std::vector<hw::WakelockGuardian::Intervention> interventions;
  const double guarded_j = run(true, nullptr, true, &interventions);
  std::printf("\nwith the WakeScope-style guardian (budget 120 s):\n");
  std::printf("  energy:         %.1f J (bug cost cut from %.1fx to %.1fx)\n",
              guarded_j, buggy_j / healthy_j, guarded_j / healthy_j);
  std::printf("  interventions:  %zu forced releases\n", interventions.size());
  for (const auto& iv : interventions) {
    if (&iv - interventions.data() >= 2) {
      std::printf("  ... and %zu more\n", interventions.size() - 2);
      break;
    }
    std::printf("    revoked %s from %s after %s\n", hw::to_string(iv.component),
                iv.holder.c_str(), iv.held_for.to_string().c_str());
  }
  return 0;
}
