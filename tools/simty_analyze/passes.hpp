#pragma once
// Internal interface between the orchestrator (analyze.cpp) and the three
// analysis passes. The Graph is the whole-tree view every pass consumes:
// parsed per-file models plus the resolved include graph and its closure.

#include <vector>

#include "analyze.hpp"
#include "model.hpp"

namespace simty::analyze {

struct Graph {
  std::vector<FileModel> models;
  /// includes[i][k] — index of the file models[i].includes[k] resolves to,
  /// or -1 when the spelling names nothing in the analyzed set (system or
  /// generated headers).
  std::vector<std::vector<int>> includes;
  /// reach[i] — sorted indices of every file transitively included by i,
  /// plus the companion .cpp of every reachable header (a definition in
  /// foo.cpp is callable wherever foo.hpp is visible). Includes i itself.
  std::vector<std::vector<int>> reach;
};

bool reaches(const Graph& g, int from, int to);

/// Longest-prefix module lookup; prefixes match at '/', '.', or end.
/// Returns -1 when no rule matches (tests/, bench/ — out of the DAG).
int module_of(const std::vector<ModuleRule>& rules, const std::string& path);

void run_taint(const Graph& g, const Config& config, Result& result);
void run_layering(const Graph& g, const Config& config, Result& result);
void run_locks(const Graph& g, const Config& config, Result& result);

}  // namespace simty::analyze
