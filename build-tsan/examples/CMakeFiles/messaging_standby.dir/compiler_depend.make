# Empty compiler generated dependencies file for messaging_standby.
# This may be replaced when dependencies are built.
