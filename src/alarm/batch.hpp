#pragma once
// Queue entries ("batches"): sets of alarms that will be delivered together.
//
// Entry attributes follow §3.2.1 exactly: the entry window (resp. grace)
// interval is the intersection of its members' window (resp. grace)
// intervals, the hardware set is the union of members' sets, an entry is
// perceptible iff any member is, and its delivery time is the earliest
// point of its window (perceptible) or grace (imperceptible) interval.
// The window intersection may legitimately be empty for an imperceptible
// entry whose members were aligned via medium time similarity.

#include <vector>

#include "alarm/alarm.hpp"
#include "common/interval.hpp"
#include "hw/component.hpp"

namespace simty::alarm {

/// A queue entry of alarms aligned for joint delivery. Holds non-owning
/// pointers into the manager's alarm registry.
class Batch {
 public:
  Batch() = default;

  explicit Batch(Alarm* first);

  /// Adds a member and folds it into the cached attributes incrementally:
  /// interval intersection, hardware-set union, perceptibility OR, and
  /// expected-hold max are all monotone under member addition, so no member
  /// iteration is needed (O(1) modulo the duplicate-membership check).
  void add(Alarm* a);

  /// Removes a member by id; returns false if absent.
  bool remove(AlarmId id);

  bool contains(AlarmId id) const;
  bool empty() const { return members_.empty(); }
  std::size_t size() const { return members_.size(); }
  const std::vector<Alarm*>& members() const { return members_; }

  /// Intersection of member window intervals; may be empty (see above).
  const TimeInterval& window_interval() const { return window_; }

  /// Intersection of member grace intervals; non-empty for any entry built
  /// by an applicable alignment (asserted by the manager).
  const TimeInterval& grace_interval() const { return grace_; }

  /// Union of members' learned hardware sets.
  hw::ComponentSet hardware() const { return hardware_; }

  /// True iff any member is perceptible.
  bool perceptible() const { return perceptible_; }

  /// Earliest point of the window interval for perceptible entries, of the
  /// grace interval otherwise (§3.2.1).
  TimePoint delivery_time() const;

  /// Largest expected hold among members (duration-similarity extension).
  Duration expected_hold() const { return expected_hold_; }

  /// Recomputes cached attributes from the members (call after member
  /// alarms are rescheduled or re-profiled; removal also rebuilds, since
  /// the aggregates are not invertible).
  void refresh();

  /// Current position in the owning queue, maintained by AlarmManager so
  /// BatchIndex query results can be ordered by queue position without a
  /// per-query search. Meaningless for batches outside a queue.
  std::size_t queue_pos() const { return queue_pos_; }
  void set_queue_pos(std::size_t pos) { queue_pos_ = pos; }

 private:
  std::vector<Alarm*> members_;
  TimeInterval window_ = TimeInterval::empty();
  TimeInterval grace_ = TimeInterval::empty();
  hw::ComponentSet hardware_;
  bool perceptible_ = false;
  Duration expected_hold_ = Duration::zero();
  std::size_t queue_pos_ = 0;
};

}  // namespace simty::alarm
