// Determinism conformance: the parallel runner must produce results that
// are bit-identical to the serial path — every RunResult field, not just
// the totals — for every policy, regardless of worker scheduling.

#include "exp/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"

namespace simty::exp {
namespace {

// EXPECT_EQ on doubles is exact equality: the contract is byte-for-byte
// identical results, not "close enough".
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.duration.seconds_f(), b.duration.seconds_f());
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.energy.sleep.mj(), b.energy.sleep.mj());
  EXPECT_EQ(a.energy.waking.mj(), b.energy.waking.mj());
  EXPECT_EQ(a.energy.awake_base.mj(), b.energy.awake_base.mj());
  EXPECT_EQ(a.energy.wake_transitions.mj(), b.energy.wake_transitions.mj());
  EXPECT_EQ(a.energy.component_active.mj(), b.energy.component_active.mj());
  EXPECT_EQ(a.energy.component_activation.mj(), b.energy.component_activation.mj());
  for (std::size_t i = 0; i < a.energy.per_component.size(); ++i) {
    EXPECT_EQ(a.energy.per_component[i].mj(), b.energy.per_component[i].mj());
  }
  EXPECT_EQ(a.average_power_mw, b.average_power_mw);
  EXPECT_EQ(a.projected_standby_hours, b.projected_standby_hours);
  EXPECT_EQ(a.delay_perceptible, b.delay_perceptible);
  EXPECT_EQ(a.delay_imperceptible, b.delay_imperceptible);
  EXPECT_EQ(a.delay_imperceptible_p95, b.delay_imperceptible_p95);
  ASSERT_EQ(a.wakeups.size(), b.wakeups.size());
  for (std::size_t i = 0; i < a.wakeups.size(); ++i) {
    EXPECT_EQ(a.wakeups[i].hardware, b.wakeups[i].hardware);
    EXPECT_EQ(a.wakeups[i].actual, b.wakeups[i].actual);
    EXPECT_EQ(a.wakeups[i].expected, b.wakeups[i].expected);
  }
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.batches_delivered, b.batches_delivered);
  EXPECT_EQ(a.one_shots, b.one_shots);
  EXPECT_EQ(a.awake_seconds, b.awake_seconds);
  EXPECT_EQ(a.asleep_seconds, b.asleep_seconds);
  EXPECT_EQ(a.worst_gap_ratio, b.worst_gap_ratio);
  EXPECT_EQ(a.gap_violations, b.gap_violations);
  EXPECT_EQ(a.perceptible_window_misses, b.perceptible_window_misses);
  EXPECT_EQ(a.pages_answered, b.pages_answered);
  EXPECT_EQ(a.page_delay_avg_s, b.page_delay_avg_s);
  EXPECT_EQ(a.page_delay_p95_s, b.page_delay_p95_s);
  EXPECT_EQ(a.drx_listen_seconds, b.drx_listen_seconds);
  EXPECT_EQ(a.wur_listen_seconds, b.wur_listen_seconds);
  EXPECT_EQ(a.wur_triggers, b.wur_triggers);
}

ExperimentConfig quick(PolicyKind policy) {
  ExperimentConfig c;
  c.policy = policy;
  c.workload = WorkloadKind::kLight;
  c.duration = Duration::hours(1);
  return c;
}

TEST(ParallelRunner, RunRepeatedMatchesSerialForEveryPolicy) {
  for (const PolicyKind policy :
       {PolicyKind::kNative, PolicyKind::kSimty, PolicyKind::kExact,
        PolicyKind::kSimtyDuration}) {
    SCOPED_TRACE(to_string(policy));
    const ExperimentConfig c = quick(policy);
    const RunResult serial = run_repeated(c, 4, /*jobs=*/1);
    const RunResult parallel = run_repeated(c, 4, /*jobs=*/4);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelRunner, RunRepeatedMatchesSerialWithDrxAndWur) {
  // The paging scenario adds a second rng stream and per-run heap objects
  // (pager, receiver); neither may leak scheduling nondeterminism.
  ExperimentConfig drx = quick(PolicyKind::kSimty);
  drx.drx.emplace();
  {
    SCOPED_TRACE("drx");
    const RunResult serial = run_repeated(drx, 4, /*jobs=*/1);
    const RunResult parallel = run_repeated(drx, 4, /*jobs=*/4);
    expect_identical(serial, parallel);
    EXPECT_GT(serial.pages_answered, 0.0);
  }
  ExperimentConfig wur = drx;
  wur.drx->wur = true;
  wur.drx->wur_delay_budget = Duration::seconds(5);
  {
    SCOPED_TRACE("wur");
    const RunResult serial = run_repeated(wur, 4, /*jobs=*/1);
    const RunResult parallel = run_repeated(wur, 4, /*jobs=*/4);
    expect_identical(serial, parallel);
    EXPECT_GT(serial.wur_triggers, 0.0);
  }
}

TEST(ParallelRunner, RunRepeatedStatsMatchesSerial) {
  const ExperimentConfig c = quick(PolicyKind::kSimty);
  const RepeatedStats serial = run_repeated_stats(c, 4, /*jobs=*/1);
  const RepeatedStats parallel = run_repeated_stats(c, 4, /*jobs=*/4);
  expect_identical(serial.mean, parallel.mean);
  EXPECT_EQ(serial.total_j.mean(), parallel.total_j.mean());
  EXPECT_EQ(serial.total_j.stddev(), parallel.total_j.stddev());
  EXPECT_EQ(serial.awake_j.mean(), parallel.awake_j.mean());
  EXPECT_EQ(serial.delay_imperceptible.mean(), parallel.delay_imperceptible.mean());
  EXPECT_EQ(serial.cpu_wakeups.mean(), parallel.cpu_wakeups.mean());
  EXPECT_EQ(serial.standby_hours.mean(), parallel.standby_hours.mean());
}

TEST(ParallelRunner, SweepMatchesSerialAcrossMixedConfigs) {
  // A heterogeneous sweep: all four policies at two betas each, distinct
  // seeds, as a sweep bench would build it.
  std::vector<ExperimentConfig> configs;
  for (const PolicyKind policy :
       {PolicyKind::kNative, PolicyKind::kSimty, PolicyKind::kExact,
        PolicyKind::kSimtyDuration}) {
    for (const double beta : {0.80, 0.96}) {
      ExperimentConfig c = quick(policy);
      c.beta = beta;
      c.seed = configs.size() + 1;
      configs.push_back(c);
    }
  }
  const std::vector<RunResult> serial = run_sweep(configs, 1);
  const std::vector<RunResult> parallel = run_sweep(configs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(ParallelRunner, MoreJobsThanConfigsIsFine) {
  const std::vector<ExperimentConfig> configs(2, quick(PolicyKind::kNative));
  const std::vector<RunResult> r = run_sweep(configs, 16);
  ASSERT_EQ(r.size(), 2u);
  expect_identical(r[0], r[1]);  // same config twice → same result
}

TEST(ParallelRunner, ExternalHooksForceTheSerialPath) {
  // A caller-owned observer is not thread-safe; run_repeated must fall back
  // to serial execution (and thus not race) while producing the same mean.
  std::atomic<int> seen{0};
  ExperimentConfig c = quick(PolicyKind::kSimty);
  c.extra_delivery_observer = [&seen](const alarm::DeliveryRecord&) { ++seen; };
  const RunResult hooked = run_repeated(c, 2, /*jobs=*/4);
  EXPECT_GT(seen.load(), 0);
  ExperimentConfig plain = quick(PolicyKind::kSimty);
  const RunResult serial = run_repeated(plain, 2, /*jobs=*/1);
  EXPECT_EQ(hooked.deliveries, serial.deliveries);
  EXPECT_EQ(hooked.energy.total().mj(), serial.energy.total().mj());
}

TEST(ParallelRunner, ShardExceptionPropagatesCleanly) {
  // Poison one config in the middle of a sweep: make_policy throws for an
  // unknown kind inside the worker task. The sweep must surface that
  // exception on the calling thread — same type and message at any job
  // count — and the pool must drain without leaking queued tasks.
  std::vector<ExperimentConfig> configs;
  for (int i = 0; i < 6; ++i) configs.push_back(quick(PolicyKind::kSimty));
  configs[3].policy = static_cast<PolicyKind>(99);
  std::string serial_what, parallel_what;
  for (const int jobs : {1, 4}) {
    SCOPED_TRACE(jobs);
    try {
      run_sweep(configs, jobs);
      FAIL() << "expected std::logic_error from the poisoned config";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find("unknown policy kind"),
                std::string::npos);
      (jobs == 1 ? serial_what : parallel_what) = e.what();
    }
  }
  // Deterministic failure: serial and parallel report the same error.
  EXPECT_EQ(serial_what, parallel_what);
  // Nothing leaked: a healthy sweep on a fresh pool still works and is
  // unaffected by the earlier failure.
  configs[3].policy = PolicyKind::kSimty;
  const std::vector<RunResult> ok = run_sweep(configs, 4);
  ASSERT_EQ(ok.size(), 6u);
  expect_identical(ok[0], ok[3]);  // identical configs → identical results
}

TEST(ParallelRunner, BadRepetitionCountThrows) {
  EXPECT_THROW(run_repeated(quick(PolicyKind::kNative), 0, 4), std::logic_error);
  EXPECT_THROW(run_repeated_stats(quick(PolicyKind::kNative), 0, 4),
               std::logic_error);
}

TEST(ParallelRunner, DefaultJobsHonoursEnvOverride) {
  ::setenv("SIMTY_JOBS", "3", 1);
  EXPECT_EQ(ParallelRunner::default_jobs(), 3);
  ::setenv("SIMTY_JOBS", "not-a-number", 1);
  EXPECT_GE(ParallelRunner::default_jobs(), 1);
  ::unsetenv("SIMTY_JOBS");
  EXPECT_GE(ParallelRunner::default_jobs(), 1);
}

TEST(ParallelRunner, JobsClampToAtLeastOne) {
  EXPECT_EQ(ParallelRunner(-5).jobs(), 1);
  EXPECT_EQ(ParallelRunner(0).jobs(), 1);
  EXPECT_EQ(ParallelRunner(8).jobs(), 8);
}

}  // namespace
}  // namespace simty::exp
