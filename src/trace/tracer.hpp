#pragma once
// Deterministic structured run tracer.
//
// The simulator's load-bearing contract is that a run is a pure function of
// its seed; the tracer turns that contract into an artifact. Every layer
// that decides behavior (event loop, alarm batching, device FSM, wakelocks,
// RRC machine, experiment boundaries) records spans / instants / counters
// stamped with VIRTUAL time, so two runs of the same config must produce
// byte-identical traces — and when they don't, tools/trace_diff points at
// the first divergent event instead of leaving a whodunit over end-of-run
// aggregates.
//
// Hot-path rules (same as the event queue's): labels are `const char*`
// string literals (intern_label() for computed ones), events are fixed-size
// PODs, and storage is slab-backed — a growable arena of fixed-size chunks
// (the default; allocation only on a chunk boundary) or a fixed-capacity
// ring that overwrites the oldest events and counts the drops.
//
// Enabling has three layers:
//   - compiled out: -DSIMTY_TRACING=OFF defines SIMTY_TRACE_DISABLED and
//     the SIMTY_TRACE_* macros expand to nothing (zero overhead, behavior
//     bit-identical — the macros never carry side effects);
//   - runtime off (default): no Tracer installed, each macro is one
//     thread-local load and a branch;
//   - runtime on: a TraceScope installs a Tracer for the current thread,
//     which is what lets the parallel runner trace one run per worker
//     without any cross-thread ordering leaking into the trace.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/time.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::trace {

/// Layer that recorded the event (the Chrome `cat` field).
enum class TraceCategory : std::uint8_t { kSim = 0, kAlarm, kHw, kNet, kExp };

/// Record shape: paired B/E spans, point instants, sampled counters.
enum class TraceEventKind : std::uint8_t {
  kSpanBegin = 0,
  kSpanEnd,
  kInstant,
  kCounter,
};

const char* to_string(TraceCategory c);
const char* to_string(TraceEventKind k);

/// One recorded event. `label` must outlive the tracer (string literal or
/// sim::intern_label()); exporters dedup by string content, never by
/// pointer, so label identity cannot leak addresses into an export.
struct TraceEvent {
  std::int64_t t_us = 0;
  const char* label = "";
  std::int64_t arg = 0;
  TraceEventKind kind = TraceEventKind::kInstant;
  TraceCategory category = TraceCategory::kSim;
};

/// Structured event recorder; see the file comment for the storage and
/// enablement model. Not thread-safe — one tracer per (thread-local) run.
class Tracer {
 public:
  /// `ring_capacity == 0` (default) selects the growable chunked arena;
  /// a positive capacity selects a fixed ring that overwrites the oldest
  /// events once full (dropped() counts the overwrites). A non-null
  /// `arena` backs the event storage (chunk payloads / the ring buffer);
  /// it must outlive the tracer and must not be reset while it lives.
  explicit Tracer(std::size_t ring_capacity = 0, common::Arena* arena = nullptr);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void span_begin(TimePoint when, TraceCategory category, const char* label,
                  std::int64_t arg = 0);
  void span_end(TimePoint when, TraceCategory category, const char* label,
                std::int64_t arg = 0);
  void instant(TimePoint when, TraceCategory category, const char* label,
               std::int64_t arg = 0);
  void counter(TimePoint when, TraceCategory category, const char* label,
               std::int64_t value);

  /// Events currently held (ring mode: at most the capacity).
  std::size_t size() const;

  /// Events overwritten by ring wraparound (always 0 in arena mode).
  std::uint64_t dropped() const { return dropped_; }

  /// Current span nesting depth (begins minus ends); span_end below zero
  /// throws, which is how unbalanced instrumentation fails fast.
  std::int64_t open_spans() const { return open_spans_; }

  /// Drops every recorded event. Storage is retained — including every
  /// already-grown chunk, so a reused tracer records allocation-free up to
  /// its high-water mark.
  void clear();

  /// Copies the held events out in record order (ring mode: oldest first).
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace-event JSON (load in Perfetto / chrome://tracing).
  std::string chrome_json() const;

  /// Compact binary export; see decode_trace() for the format contract.
  std::string binary() const;

  /// File wrappers; throw std::runtime_error on I/O failure.
  void save_chrome_json(const std::string& path) const;
  void save_binary(const std::string& path) const;

  /// Serializes the held events (labels deduplicated by content, like
  /// binary()) plus the drop and open-span counters. restore() replaces
  /// this tracer's contents; restored labels are owned by the tracer, so
  /// subsequent exports are byte-identical to the saved run's.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  void record(const TraceEvent& e);

  static constexpr std::size_t kChunkEvents = 16384;

  std::size_t ring_capacity_;  // 0 = chunked mode
  common::Arena* arena_;       // optional backing for chunks_/ring_ payloads
  // Chunked storage: chunks_[0..current_chunk_] hold events; chunks past
  // current_chunk_ are empty, retained by clear() for reuse.
  common::ArenaVector<common::ArenaVector<TraceEvent>> chunks_;
  std::size_t current_chunk_ = 0;
  common::ArenaVector<TraceEvent> ring_;  // ring storage
  std::size_t ring_next_ = 0;
  bool ring_full_ = false;
  std::uint64_t dropped_ = 0;
  std::int64_t open_spans_ = 0;
  // Labels brought in by restore(); unique_ptr keeps the c_str() addresses
  // stable across vector growth, which TraceEvent::label relies on.
  std::vector<std::unique_ptr<std::string>> restored_labels_;
};

/// The tracer installed for the current thread (nullptr = tracing off).
Tracer* current();

/// RAII installer: installs `tracer` (may be nullptr = leave tracing off)
/// as the current thread's tracer and restores the previous one on exit.
class TraceScope {
 public:
  explicit TraceScope(Tracer* tracer);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* previous_;
};

// ---------------------------------------------------------------------------
// Decoded traces and diffing (the testable core of tools/trace_diff).

/// A decoded binary-format event; `label` indexes DecodedTrace::labels.
struct DecodedEvent {
  std::int64_t t_us = 0;
  std::uint32_t label = 0;
  std::int64_t arg = 0;
  TraceEventKind kind = TraceEventKind::kInstant;
  TraceCategory category = TraceCategory::kSim;

  bool operator==(const DecodedEvent&) const = default;
};

/// Result of decoding a binary trace. Labels are content-deduplicated in
/// first-appearance order, so identical runs decode to identical tables.
struct DecodedTrace {
  std::vector<std::string> labels;
  std::vector<DecodedEvent> events;
  std::uint64_t dropped = 0;

  const std::string& label_of(const DecodedEvent& e) const {
    return labels[e.label];
  }
};

/// Parses Tracer::binary() output; throws std::runtime_error on malformed
/// input (bad magic, truncation, out-of-range enums or label indices,
/// trailing bytes).
DecodedTrace decode_trace(const std::string& bytes);

/// Reads and decodes a binary trace file.
DecodedTrace load_trace(const std::string& path);

/// Outcome of comparing two decoded traces event by event (labels compared
/// by content, so differing table layouts alone cannot mask a divergence).
struct TraceDiff {
  bool equal = false;
  /// Index of the first differing event when both traces have one.
  std::optional<std::size_t> first_divergence;
  /// Human-readable verdict: "identical", or what diverged and where.
  std::string summary;
};

TraceDiff diff_traces(const DecodedTrace& a, const DecodedTrace& b);

}  // namespace simty::trace

// ---------------------------------------------------------------------------
// Instrumentation macros. Call sites pay nothing when compiled out and one
// thread-local load + branch when no tracer is installed. Arguments are not
// evaluated in the compiled-out build, so they must be side-effect free.

#if defined(SIMTY_TRACE_DISABLED)

#define SIMTY_TRACE_SPAN_BEGIN(when, category, label, arg) \
  do {                                                     \
  } while (false)
#define SIMTY_TRACE_SPAN_END(when, category, label, arg) \
  do {                                                   \
  } while (false)
#define SIMTY_TRACE_INSTANT(when, category, label, arg) \
  do {                                                  \
  } while (false)
#define SIMTY_TRACE_COUNTER(when, category, label, value) \
  do {                                                    \
  } while (false)

#else

#define SIMTY_TRACE_SPAN_BEGIN(when, category, label, arg)                 \
  do {                                                                     \
    if (::simty::trace::Tracer* simty_trace_t_ = ::simty::trace::current()) \
      simty_trace_t_->span_begin((when), (category), (label), (arg));      \
  } while (false)
#define SIMTY_TRACE_SPAN_END(when, category, label, arg)                   \
  do {                                                                     \
    if (::simty::trace::Tracer* simty_trace_t_ = ::simty::trace::current()) \
      simty_trace_t_->span_end((when), (category), (label), (arg));        \
  } while (false)
#define SIMTY_TRACE_INSTANT(when, category, label, arg)                    \
  do {                                                                     \
    if (::simty::trace::Tracer* simty_trace_t_ = ::simty::trace::current()) \
      simty_trace_t_->instant((when), (category), (label), (arg));         \
  } while (false)
#define SIMTY_TRACE_COUNTER(when, category, label, value)                  \
  do {                                                                     \
    if (::simty::trace::Tracer* simty_trace_t_ = ::simty::trace::current()) \
      simty_trace_t_->counter((when), (category), (label), (value));       \
  } while (false)

#endif  // SIMTY_TRACE_DISABLED
