
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/csv_fuzz_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/csv_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/csv_fuzz_test.cpp.o.d"
  "/root/repo/tests/trace/delivery_log_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/delivery_log_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/delivery_log_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/trace/CMakeFiles/simty_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/simty_apps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/alarm/CMakeFiles/simty_alarm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/simty_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hw/CMakeFiles/simty_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/simty_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/simty_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
