// Sampler determinism: a device's sample is a pure counter-keyed function
// of (spec, fleet seed, device index) — byte-identical however many other
// devices the fleet holds and however it is sharded — plus cohort-file
// parsing and deterministic weight apportionment.

#include "fleet/cohort.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "apps/app_catalog.hpp"

namespace simty::fleet {
namespace {

CohortSpec rich_spec() {
  CohortSpec spec;
  spec.name = "rich";
  spec.min_apps = 3;
  spec.max_apps = 9;
  spec.wearable_fraction = 0.3;
  spec.degraded_network_fraction = 0.4;
  return spec;
}

TEST(CohortSampler, StreamIsByteIdenticalRegardlessOfFleetSize) {
  const CohortSpec spec = rich_spec();
  // "Stream" of the first 16 devices rendered to text, sampled three ways:
  // alone, as the prefix of a 200-device pass, and shard-by-shard in
  // reverse shard order. All three must be byte-identical.
  std::string alone;
  for (std::uint64_t i = 0; i < 16; ++i) {
    alone += describe(sample_device(spec, 42, i));
  }
  std::string prefix;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::string d = describe(sample_device(spec, 42, i));
    if (i < 16) prefix += d;
  }
  std::string sharded(alone.size(), '\0');
  std::string tail, head;
  for (std::uint64_t i = 8; i < 16; ++i) {
    tail += describe(sample_device(spec, 42, i));
  }
  for (std::uint64_t i = 0; i < 8; ++i) {
    head += describe(sample_device(spec, 42, i));
  }
  sharded = head + tail;
  EXPECT_EQ(alone, prefix);
  EXPECT_EQ(alone, sharded);
}

TEST(CohortSampler, RepeatedSamplingIsIdentical) {
  const CohortSpec spec = rich_spec();
  EXPECT_EQ(describe(sample_device(spec, 7, 123)),
            describe(sample_device(spec, 7, 123)));
}

TEST(CohortSampler, DevicesSeedsAndCohortsDiffer) {
  const CohortSpec spec = rich_spec();
  EXPECT_NE(describe(sample_device(spec, 7, 0)),
            describe(sample_device(spec, 7, 1)));
  EXPECT_NE(describe(sample_device(spec, 7, 0)),
            describe(sample_device(spec, 8, 0)));
  CohortSpec renamed = spec;
  renamed.name = "other";
  EXPECT_NE(describe(sample_device(spec, 7, 0)),
            describe(sample_device(renamed, 7, 0)));
}

TEST(CohortSampler, SampleRespectsSpecBounds) {
  const CohortSpec spec = rich_spec();
  const std::size_t catalog_size = apps::table3_catalog().size();
  for (std::uint64_t i = 0; i < 256; ++i) {
    const DeviceSample s = sample_device(spec, 3, i);
    ASSERT_GE(s.catalog.size(), spec.min_apps);
    ASSERT_LE(s.catalog.size(), spec.max_apps);
    ASSERT_LE(s.catalog.size(), catalog_size);
    std::set<std::string> names;
    for (const apps::AppProfile& p : s.catalog) {
      names.insert(p.name);
      ASSERT_GE(p.alpha, 0.0);
      ASSERT_LE(p.alpha, 1.0);
      ASSERT_GE(p.repeat, Duration::seconds(1));
    }
    ASSERT_EQ(names.size(), s.catalog.size()) << "duplicate app in catalog";
    ASSERT_GE(s.beta, spec.beta_lo);
    ASSERT_LT(s.beta, spec.beta_hi);
    ASSERT_GE(s.power_scale, spec.power_scale_lo);
    ASSERT_LT(s.power_scale, spec.power_scale_hi);
    if (s.degraded_network) {
      ASSERT_GE(s.hold_factor, 1.0);
      ASSERT_LT(s.hold_factor, spec.degraded_hold_factor_max);
    } else {
      ASSERT_EQ(s.hold_factor, 1.0);
    }
  }
}

TEST(CohortSampler, FractionsAreApproximatelyRespected) {
  CohortSpec spec = rich_spec();
  spec.wearable_fraction = 0.25;
  spec.degraded_network_fraction = 0.5;
  int wearables = 0, degraded = 0;
  const int n = 2000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const DeviceSample s = sample_device(spec, 9, i);
    wearables += s.wearable ? 1 : 0;
    degraded += s.degraded_network ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(wearables) / n, 0.25, 0.05);
  EXPECT_NEAR(static_cast<double>(degraded) / n, 0.5, 0.05);
}

TEST(CohortSampler, WearableSamplesUseTheWearableProfile) {
  CohortSpec spec = rich_spec();
  spec.wearable_fraction = 1.0;
  spec.power_scale_lo = spec.power_scale_hi = 1.0;
  const DeviceSample s = sample_device(spec, 1, 0);
  EXPECT_TRUE(s.wearable);
  EXPECT_EQ(s.power_model.sleep.mw(), hw::PowerModel::wearable().sleep.mw());
}

TEST(ScalePowerModel, ScalesRailsAndImpulsesOnly) {
  const hw::PowerModel base = hw::PowerModel::nexus5();
  const hw::PowerModel scaled = scale_power_model(base, 2.0);
  EXPECT_EQ(scaled.sleep.mw(), base.sleep.mw() * 2.0);
  EXPECT_EQ(scaled.awake_base.mw(), base.awake_base.mw() * 2.0);
  EXPECT_EQ(scaled.wake_transition.mj(), base.wake_transition.mj() * 2.0);
  EXPECT_EQ(scaled.wake_latency.us(), base.wake_latency.us());
  EXPECT_EQ(scaled.idle_linger.us(), base.idle_linger.us());
  for (std::size_t i = 0; i < scaled.components.size(); ++i) {
    EXPECT_EQ(scaled.components[i].active.mw(),
              base.components[i].active.mw() * 2.0);
    EXPECT_EQ(scaled.components[i].activation.mj(),
              base.components[i].activation.mj() * 2.0);
    EXPECT_EQ(scaled.components[i].tail.us(), base.components[i].tail.us());
    EXPECT_EQ(scaled.components[i].serial_fraction,
              base.components[i].serial_fraction);
  }
}

TEST(CohortSpecValidate, RejectsOutOfRangeFields) {
  CohortSpec bad = rich_spec();
  bad.min_apps = 0;
  EXPECT_THROW(bad.validate(), std::logic_error);
  bad = rich_spec();
  bad.min_apps = 9;
  bad.max_apps = 3;
  EXPECT_THROW(bad.validate(), std::logic_error);
  bad = rich_spec();
  bad.max_apps = 99;
  EXPECT_THROW(bad.validate(), std::logic_error);
  bad = rich_spec();
  bad.rein_jitter = 1.0;
  EXPECT_THROW(bad.validate(), std::logic_error);
  bad = rich_spec();
  bad.beta_lo = 0.99;
  bad.beta_hi = 0.9;
  EXPECT_THROW(bad.validate(), std::logic_error);
  bad = rich_spec();
  bad.weight = 0.0;
  EXPECT_THROW(bad.validate(), std::logic_error);
  bad = rich_spec();
  bad.degraded_hold_factor_max = 0.5;
  EXPECT_THROW(bad.validate(), std::logic_error);
  bad = rich_spec();
  bad.standby = Duration::zero();
  EXPECT_THROW(bad.validate(), std::logic_error);
  EXPECT_NO_THROW(rich_spec().validate());
  for (const CohortSpec& c : default_cohorts()) EXPECT_NO_THROW(c.validate());
}

TEST(CohortFile, ParsesSectionsAndKeys) {
  const std::vector<CohortSpec> cohorts = parse_cohorts(
      "# a comment\n"
      "[phones]\n"
      "weight = 3\n"
      "apps = 2 6\n"
      "rein_jitter = 0.1\n"
      "alpha_jitter = 0.05\n"
      "beta = 0.9 0.95\n"
      "standby_minutes = 30\n"
      "system_alarms = on\n"
      "\n"
      "[watches]   # trailing comment\n"
      "wearable_fraction = 1\n"
      "power_scale = 0.8 1.2\n"
      "degraded_fraction = 0.25\n"
      "degraded_hold_max = 3\n");
  ASSERT_EQ(cohorts.size(), 2u);
  EXPECT_EQ(cohorts[0].name, "phones");
  EXPECT_EQ(cohorts[0].weight, 3.0);
  EXPECT_EQ(cohorts[0].min_apps, 2u);
  EXPECT_EQ(cohorts[0].max_apps, 6u);
  EXPECT_EQ(cohorts[0].rein_jitter, 0.1);
  EXPECT_EQ(cohorts[0].alpha_jitter, 0.05);
  EXPECT_EQ(cohorts[0].beta_lo, 0.9);
  EXPECT_EQ(cohorts[0].beta_hi, 0.95);
  EXPECT_EQ(cohorts[0].standby.us(), Duration::minutes(30).us());
  EXPECT_TRUE(cohorts[0].system_alarms);
  EXPECT_EQ(cohorts[1].name, "watches");
  EXPECT_EQ(cohorts[1].wearable_fraction, 1.0);
  EXPECT_EQ(cohorts[1].power_scale_lo, 0.8);
  EXPECT_EQ(cohorts[1].power_scale_hi, 1.2);
  EXPECT_EQ(cohorts[1].degraded_network_fraction, 0.25);
  EXPECT_EQ(cohorts[1].degraded_hold_factor_max, 3.0);
  EXPECT_FALSE(cohorts[1].system_alarms);
}

TEST(CohortFile, RejectsMalformedInput) {
  EXPECT_THROW(parse_cohorts(""), std::runtime_error);
  EXPECT_THROW(parse_cohorts("weight = 1\n"), std::runtime_error);       // no section
  EXPECT_THROW(parse_cohorts("[a\nweight = 1\n"), std::runtime_error);   // unterminated
  EXPECT_THROW(parse_cohorts("[]\n"), std::runtime_error);               // empty name
  EXPECT_THROW(parse_cohorts("[a]\nbogus = 1\n"), std::runtime_error);   // unknown key
  EXPECT_THROW(parse_cohorts("[a]\nweight one\n"), std::runtime_error);  // no '='
  EXPECT_THROW(parse_cohorts("[a]\nweight = x\n"), std::runtime_error);  // bad number
  EXPECT_THROW(parse_cohorts("[a]\napps = 4\n"), std::runtime_error);    // arity
  EXPECT_THROW(parse_cohorts("[a]\nsystem_alarms = yes\n"), std::runtime_error);
  // Parse-clean but semantically invalid values fail validate() with the
  // cohort named in the message.
  try {
    parse_cohorts("[a]\napps = 1 99\n");
    FAIL() << "expected validation failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("[a]"), std::string::npos);
  }
}

TEST(CohortFile, RejectsDuplicateKeysWithLineNumber) {
  // A repeated key inside one cohort is a silent last-wins footgun; the
  // parser must name the offending line.
  try {
    parse_cohorts(
        "[a]\n"
        "weight = 1\n"
        "rein_jitter = 0.1\n"
        "weight = 2\n");
    FAIL() << "expected duplicate-key failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate key: weight"), std::string::npos) << what;
  }
  // The same key in different cohorts is fine — the set resets per section.
  EXPECT_NO_THROW(parse_cohorts(
      "[a]\n"
      "weight = 1\n"
      "[b]\n"
      "weight = 2\n"));
}

TEST(Apportion, IsExactDeterministicAndOrdered) {
  std::vector<CohortSpec> cohorts(3);
  cohorts[0].weight = 2.0;
  cohorts[1].weight = 1.0;
  cohorts[2].weight = 1.0;
  const std::vector<std::uint64_t> counts = apportion_devices(10, cohorts);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 10u);
  EXPECT_EQ(counts[0], 5u);
  EXPECT_EQ(counts[1], 3u);  // remainder device goes to the earlier cohort
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(apportion_devices(10, cohorts), counts);  // deterministic

  // Fewer devices than cohorts: earlier cohorts win the remainder.
  const std::vector<std::uint64_t> tiny = apportion_devices(1, cohorts);
  EXPECT_EQ(tiny[0], 1u);
  EXPECT_EQ(tiny[1], 0u);
  EXPECT_EQ(tiny[2], 0u);

  // Weights that divide evenly leave no remainder to hand out.
  const std::vector<std::uint64_t> even = apportion_devices(400, cohorts);
  EXPECT_EQ(even[0], 200u);
  EXPECT_EQ(even[1], 100u);
  EXPECT_EQ(even[2], 100u);
}

}  // namespace
}  // namespace simty::fleet
