// simty_run: command-line driver for connected-standby experiments.
//
//   simty_run --workload heavy --policy all --hours 3 --reps 3 --csv out.csv
//
// Snapshot mode splits one run across two invocations:
//
//   simty_run --policy all --snapshot-at 60 --save-snapshot snap ...
//   simty_run --policy all --restore-snapshot snap ...
//
// The save invocation pauses each policy's base-seed run at its first
// quiescent instant past the mark and writes snap.<POLICY>; the restore
// invocation resumes each file to the horizon and reports as usual. With
// matching capture flags the resumed --delivery-log / --trace outputs are
// byte-identical to a straight run's (the CI snapshot-determinism job
// `cmp`s exactly that).

#include <cstdio>
#include <exception>
#include <memory>

#include "cli/options.hpp"
#include "fleet/fleet_runner.hpp"
#include "fleet/report.hpp"
#include "power/monitor.hpp"
#include "exp/reporting.hpp"
#include "exp/run.hpp"
// The IWYU heuristic only sees classes and definitions, not declared free
// functions (read_file / write_file_atomic are what's used here).
#include "snapshot/snapshot.hpp"  // simty-analyze: allow(include)
#include "trace/delivery_log.hpp"
#include "trace/tracer.hpp"

using namespace simty;

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

std::string snapshot_path(const std::string& base, exp::PolicyKind policy) {
  return base + "." + exp::to_string(policy);
}

// Mirrors the capture wiring of the reporting loop below so the snapshot
// carries the same sections the restore invocation will expect: captures
// serialize with the run, and restore_snapshot cross-checks section layout
// against the restoring config.
void wire_last_policy_captures(const cli::RunPlan& plan, bool last,
                               exp::ExperimentConfig& c,
                               trace::Tracer& tracer) {
  if (!last) return;
  if (plan.trace_path || plan.trace_json_path) c.tracer = &tracer;
  if (plan.delivery_log_path) c.capture_delivery_log = true;
}

// Fleet mode: one population run per policy; per-device cohorts govern the
// workload and duration (the scalar --workload/--hours flags don't apply).
int run_fleet_mode(const cli::RunPlan& plan, trace::Tracer& tracer) {
  std::vector<fleet::CohortSpec> cohorts;
  try {
    cohorts = plan.cohorts_path ? fleet::load_cohort_file(*plan.cohorts_path)
                                : fleet::default_cohorts();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("fleet: %llu devices, %zu cohorts, seed %llu, jobs %d\n\n",
              static_cast<unsigned long long>(*plan.fleet_devices),
              cohorts.size(),
              static_cast<unsigned long long>(plan.config.seed), plan.jobs);
  std::vector<fleet::FleetResult> results;
  for (std::size_t i = 0; i < plan.policies.size(); ++i) {
    fleet::FleetConfig fc;
    fc.cohorts = cohorts;
    fc.devices = *plan.fleet_devices;
    fc.policy = plan.policies[i];
    fc.similarity = plan.config.similarity;
    fc.seed = plan.config.seed;
    fc.jobs = plan.jobs;
    const bool last = i + 1 == plan.policies.size();
    if (last && (plan.trace_path || plan.trace_json_path)) fc.tracer = &tracer;
    results.push_back(fleet::run_fleet(fc));
    std::printf("%s\n", fleet::render_fleet_report(results.back()).c_str());
  }
  if (plan.fleet_csv_path) {
    if (!write_file(*plan.fleet_csv_path, fleet::fleet_csv(results))) return 1;
    std::printf("fleet csv written to %s\n", plan.fleet_csv_path->c_str());
  }
  if (plan.trace_path) {
    tracer.save_binary(*plan.trace_path);
    std::printf("run trace (%zu events) written to %s\n", tracer.size(),
                plan.trace_path->c_str());
  }
  if (plan.trace_json_path) {
    tracer.save_chrome_json(*plan.trace_json_path);
    std::printf("chrome trace (%zu events) written to %s\n", tracer.size(),
                plan.trace_json_path->c_str());
  }
  return 0;
}

// Snapshot save mode: pause each policy's base-seed run at its first
// quiescent instant past --snapshot-at and write PATH.<POLICY>. No report,
// no capture output — the trace/delivery-log flags only shape what the
// snapshot carries (see wire_last_policy_captures).
int run_save_mode(const cli::RunPlan& plan, trace::Tracer& tracer) {
  const TimePoint mark =
      TimePoint::origin() +
      Duration::from_seconds(*plan.snapshot_at_minutes * 60.0);
  for (std::size_t i = 0; i < plan.policies.size(); ++i) {
    exp::ExperimentConfig c = plan.config;
    c.policy = plan.policies[i];
    wire_last_policy_captures(plan, i + 1 == plan.policies.size(), c, tracer);
    exp::Run run(c);
    const TimePoint reached = run.advance_to_quiescent(mark);
    const std::string path = snapshot_path(*plan.save_snapshot_path, c.policy);
    try {
      snapshot::write_file_atomic(path, run.save_snapshot());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("snapshot %s: paused at %s, written to %s\n",
                exp::to_string(c.policy),
                (reached - TimePoint::origin()).to_string().c_str(),
                path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const cli::ParseResult parsed = cli::parse_args(args);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error.c_str());
    return 2;
  }
  const cli::RunPlan& plan = *parsed.plan;
  if (plan.show_help) {
    std::printf("%s", cli::usage().c_str());
    return 0;
  }

  trace::Tracer tracer;
  if (plan.fleet_devices) return run_fleet_mode(plan, tracer);
  if (plan.save_snapshot_path) return run_save_mode(plan, tracer);
  power::PowerMonitor waveform_monitor;
  std::vector<exp::NamedResult> columns;
  // Keeps the last policy's run alive past the loop: the internally
  // captured delivery log (config.capture_delivery_log) lives inside the
  // Run, unlike the caller-owned tracer and waveform monitor.
  std::unique_ptr<exp::Run> last_run;
  for (std::size_t i = 0; i < plan.policies.size(); ++i) {
    exp::ExperimentConfig c = plan.config;
    c.policy = plan.policies[i];
    const bool last = i + 1 == plan.policies.size();
    if (plan.restore_snapshot_path) {
      // Resume mode: one run per policy from its snapshot file; --reps and
      // --jobs don't apply (a snapshot pins the base seed).
      wire_last_policy_captures(plan, last, c, tracer);
      auto run = std::make_unique<exp::Run>(c);
      try {
        run->restore_snapshot(snapshot::read_file(
            snapshot_path(*plan.restore_snapshot_path, c.policy)));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      columns.push_back({exp::to_string(c.policy), run->finish()});
      if (last) last_run = std::move(run);
      continue;
    }
    // The run trace rides the base-seed run of the last policy, serial or
    // parallel alike (run_repeated keeps the tracer on the base seed).
    if (last && (plan.trace_path || plan.trace_json_path)) c.tracer = &tracer;
    const bool capture = last && (plan.delivery_log_path || plan.waveform_path);
    if (capture) {
      // Captures cover one seeded run of the last policy.
      if (plan.delivery_log_path) c.capture_delivery_log = true;
      if (plan.waveform_path) c.extra_power_listener = &waveform_monitor;
      auto run = std::make_unique<exp::Run>(c);
      columns.push_back({exp::to_string(c.policy), run->finish()});
      waveform_monitor.finalize(TimePoint::origin() + c.duration);
      last_run = std::move(run);
    } else {
      columns.push_back({exp::to_string(c.policy),
                         exp::run_repeated(c, plan.repetitions, plan.jobs)});
    }
  }

  if (plan.restore_snapshot_path) {
    std::printf("resumed from %s.<POLICY> snapshots\n",
                plan.restore_snapshot_path->c_str());
  }
  std::printf("workload: %s, duration: %s, beta: %.2f, reps: %d, jobs: %d\n\n",
              exp::to_string(plan.config.workload),
              plan.config.duration.to_string().c_str(), plan.config.beta,
              plan.repetitions, plan.jobs);
  std::printf("%s\n", exp::render_energy_figure(columns).c_str());
  std::printf("%s\n", exp::render_delay_figure(columns).c_str());
  std::printf("%s\n", exp::render_wakeup_table(columns).c_str());
  std::printf("%s\n", exp::render_standby_projection(columns).c_str());
  std::printf("%s\n", exp::render_guarantee_audit(columns).c_str());
  const std::string paging = exp::render_paging_table(columns);
  if (!paging.empty()) std::printf("%s\n", paging.c_str());

  if (plan.csv_path) {
    if (!write_file(*plan.csv_path, exp::results_csv(columns))) return 1;
    std::printf("results csv written to %s\n", plan.csv_path->c_str());
  }
  if (plan.waveform_path) {
    if (!write_file(*plan.waveform_path, waveform_monitor.waveform_csv(100000)))
      return 1;
    std::printf("power waveform written to %s\n", plan.waveform_path->c_str());
  }
  if (plan.delivery_log_path) {
    const trace::DeliveryLog& log = last_run->delivery_log();
    log.save(*plan.delivery_log_path);
    std::printf("delivery trace (%zu records) written to %s\n", log.size(),
                plan.delivery_log_path->c_str());
  }
  if (plan.trace_path) {
    tracer.save_binary(*plan.trace_path);
    std::printf("run trace (%zu events) written to %s\n", tracer.size(),
                plan.trace_path->c_str());
  }
  if (plan.trace_json_path) {
    tracer.save_chrome_json(*plan.trace_json_path);
    std::printf("chrome trace (%zu events) written to %s\n", tracer.size(),
                plan.trace_json_path->c_str());
  }
  return 0;
}
