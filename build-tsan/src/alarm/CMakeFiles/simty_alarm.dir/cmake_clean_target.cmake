file(REMOVE_RECURSE
  "libsimty_alarm.a"
)
