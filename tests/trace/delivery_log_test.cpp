#include "trace/delivery_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>

#include "alarm/native_policy.hpp"
#include "apps/app_catalog.hpp"
#include "support/framework_fixture.hpp"

namespace simty::trace {
namespace {

using hw::Component;
using hw::ComponentSet;

alarm::DeliveryRecord sample_record(std::uint64_t id, const std::string& tag) {
  alarm::DeliveryRecord r;
  r.id = alarm::AlarmId{id};
  r.tag = tag;
  r.app = alarm::AppId{7};
  r.kind = alarm::AlarmKind::kWakeup;
  r.mode = alarm::RepeatMode::kDynamic;
  r.repeat_interval = Duration::seconds(200);
  r.nominal = TimePoint::from_us(123'456'789);
  r.delivered = TimePoint::from_us(123'706'789);
  r.window = TimeInterval{r.nominal, r.nominal + Duration::seconds(150)};
  r.was_perceptible = false;
  r.hardware_used = ComponentSet{Component::kWifi, Component::kCellular};
  r.hold = Duration::millis(2500);
  r.batch_size = 3;
  return r;
}

TEST(DeliveryLog, CsvRoundTripPreservesEverything) {
  DeliveryLog log;
  log.observe(sample_record(1, "line.sync"));
  log.observe(sample_record(2, "fb.sync"));
  const DeliveryLog back = DeliveryLog::from_csv(log.to_csv());
  ASSERT_EQ(back.size(), 2u);
  const alarm::DeliveryRecord& r = back.records()[0];
  const alarm::DeliveryRecord& orig = log.records()[0];
  EXPECT_EQ(r.id, orig.id);
  EXPECT_EQ(r.tag, orig.tag);
  EXPECT_EQ(r.app, orig.app);
  EXPECT_EQ(r.kind, orig.kind);
  EXPECT_EQ(r.mode, orig.mode);
  EXPECT_EQ(r.repeat_interval, orig.repeat_interval);
  EXPECT_EQ(r.nominal, orig.nominal);
  EXPECT_EQ(r.delivered, orig.delivered);
  EXPECT_EQ(r.window, orig.window);
  EXPECT_EQ(r.was_perceptible, orig.was_perceptible);
  EXPECT_EQ(r.hardware_used, orig.hardware_used);
  EXPECT_EQ(r.hold, orig.hold);
  EXPECT_EQ(r.batch_size, orig.batch_size);
}

TEST(DeliveryLog, HostileTagsRoundTrip) {
  // ',' shifts every later field, '|' corrupts the hardware set on reload,
  // and a newline splits the row — all must survive via tag escaping.
  const std::string hostile[] = {
      "a,b",         "pipe|tag",    "back\\slash", "tricky\\c,mix",
      "line\nbreak", "cr\rreturn",  ",|\\\n\r",    "plain.tag",
  };
  DeliveryLog log;
  std::uint64_t id = 1;
  for (const std::string& tag : hostile) log.observe(sample_record(id++, tag));
  const DeliveryLog back = DeliveryLog::from_csv(log.to_csv());
  ASSERT_EQ(back.size(), std::size(hostile));
  for (std::size_t i = 0; i < std::size(hostile); ++i) {
    EXPECT_EQ(back.records()[i].tag, hostile[i]) << i;
    // The other fields must not have shifted.
    EXPECT_EQ(back.records()[i].hardware_used,
              (ComponentSet{Component::kWifi, Component::kCellular}))
        << i;
    EXPECT_EQ(back.records()[i].batch_size, 3u) << i;
  }
}

TEST(DeliveryLog, RejectsBadTagEscapes) {
  DeliveryLog log;
  log.observe(sample_record(1, "x"));
  std::string dangling = log.to_csv();
  auto pos = dangling.find("1,x,");
  ASSERT_NE(pos, std::string::npos);
  dangling.replace(pos, 4, "1,x\\,");  // trailing backslash in the tag field
  EXPECT_THROW(DeliveryLog::from_csv(dangling), std::runtime_error);

  std::string unknown = log.to_csv();
  pos = unknown.find("1,x,");
  ASSERT_NE(pos, std::string::npos);
  unknown.replace(pos, 4, "1,x\\zq,");  // '\z' is not an escape we emit
  EXPECT_THROW(DeliveryLog::from_csv(unknown), std::runtime_error);
}

TEST(DeliveryLog, RejectsNegativeUnsignedFields) {
  DeliveryLog log;
  log.observe(sample_record(4, "neg"));
  const std::string csv = log.to_csv();

  // Flip each unsigned column to a negative value; each must throw rather
  // than wrap through the cast (previously -1 loaded as 2^64-1 / 2^32-1).
  const std::string negative_id = [&] {
    std::string s = csv;
    const auto p = s.find("\n4,");
    return s.replace(p, 3, "\n-4,");
  }();
  EXPECT_THROW(DeliveryLog::from_csv(negative_id), std::runtime_error);

  const std::string negative_app = [&] {
    std::string s = csv;
    const auto p = s.find(",7,wakeup");
    return s.replace(p, 3, ",-7,");
  }();
  EXPECT_THROW(DeliveryLog::from_csv(negative_app), std::runtime_error);

  const std::string huge_app = [&] {
    std::string s = csv;
    const auto p = s.find(",7,wakeup");
    return s.replace(p, 3, ",4294967296,");
  }();
  EXPECT_THROW(DeliveryLog::from_csv(huge_app), std::runtime_error);

  const std::string negative_batch = [&] {
    std::string s = csv;
    const auto p = s.rfind(",3\n");
    return s.replace(p, 3, ",-3\n");
  }();
  EXPECT_THROW(DeliveryLog::from_csv(negative_batch), std::runtime_error);
}

TEST(DeliveryLog, RandomizedTagsRoundTrip) {
  // Property: any tag drawn from the full hostile alphabet survives a CSV
  // round trip with every other field intact.
  const char alphabet[] = {',', '|', '\\', '\n', '\r', 'a', 'z', '.', ' ', '0'};
  Rng rng(20260807);
  DeliveryLog log;
  std::vector<std::string> tags;
  for (std::uint64_t i = 0; i < 64; ++i) {
    std::string tag;
    const std::uint64_t len = rng.next_below(12);
    for (std::uint64_t j = 0; j < len; ++j) {
      tag += alphabet[rng.next_below(std::size(alphabet))];
    }
    tags.push_back(tag);
    log.observe(sample_record(i + 1, tag));
  }
  const DeliveryLog back = DeliveryLog::from_csv(log.to_csv());
  ASSERT_EQ(back.size(), tags.size());
  for (std::size_t i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(back.records()[i].tag, tags[i]) << i;
    EXPECT_EQ(back.records()[i].id, alarm::AlarmId{i + 1}) << i;
    EXPECT_EQ(back.records()[i].hold, Duration::millis(2500)) << i;
  }
}

TEST(DeliveryLog, EmptyHardwareRoundTrips) {
  DeliveryLog log;
  alarm::DeliveryRecord r = sample_record(1, "cpu.only");
  r.hardware_used = ComponentSet::none();
  log.observe(r);
  const DeliveryLog back = DeliveryLog::from_csv(log.to_csv());
  EXPECT_TRUE(back.records()[0].hardware_used.empty());
}

TEST(DeliveryLog, RejectsMalformedCsv) {
  EXPECT_THROW(DeliveryLog::from_csv("not,a,header\n1,2,3\n"), std::runtime_error);
  DeliveryLog log;
  log.observe(sample_record(1, "x"));
  std::string csv = log.to_csv();
  // Truncate a row.
  csv = csv.substr(0, csv.rfind(',')) + "\n";
  EXPECT_THROW(DeliveryLog::from_csv(csv), std::runtime_error);
  // Unknown component name.
  std::string bad = log.to_csv();
  const auto pos = bad.find("wifi|cellular");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 4, "warp");
  EXPECT_THROW(DeliveryLog::from_csv(bad), std::runtime_error);
}

TEST(DeliveryLog, SaveLoadFile) {
  DeliveryLog log;
  log.observe(sample_record(1, "x"));
  const std::string path = ::testing::TempDir() + "/simty_delivery_log.csv";
  log.save(path);
  const DeliveryLog back = DeliveryLog::load(path);
  EXPECT_EQ(back.size(), 1u);
  std::remove(path.c_str());
  EXPECT_THROW(DeliveryLog::load("/nonexistent/simty.csv"), std::runtime_error);
}

TEST(DeliveryLog, AppTraceExtractsOneTag) {
  DeliveryLog log;
  log.observe(sample_record(1, "line.sync"));
  log.observe(sample_record(2, "fb.sync"));
  log.observe(sample_record(1, "line.sync"));
  const apps::AppTrace trace = log.app_trace("line.sync");
  EXPECT_EQ(trace.app_name, "line.sync");
  EXPECT_EQ(trace.entries.size(), 2u);
  EXPECT_EQ(trace.entries[0].hold, Duration::millis(2500));
  EXPECT_THROW(log.app_trace("unknown"), std::logic_error);
}

TEST(WorkloadFromLog, RebuildsReplayableWorkload) {
  // Record a run of two repeating apps plus a one-shot, then rebuild.
  test::FrameworkHarness rec;
  rec.init(std::make_unique<alarm::NativePolicy>());
  DeliveryLog log;
  rec.manager_->add_delivery_observer(log.observer());
  apps::ResidentApp line(apps::profile_by_name("Line"), Rng(1));
  apps::ResidentApp fb(apps::profile_by_name("Facebook"), Rng(2));
  line.launch(*rec.manager_, rec.at(0), alarm::AppId{1});
  fb.launch(*rec.manager_, rec.at(0), alarm::AppId{2});
  rec.manager_->register_alarm(
      alarm::AlarmSpec::one_shot("oneoff", alarm::AppId{3}, Duration::seconds(10)),
      rec.at(50), test::FrameworkHarness::noop_task());
  rec.sim_.run_until(rec.at(1200));
  ASSERT_GT(log.size(), 10u);

  apps::Workload replay = trace::workload_from_log(log, apps::WorkloadConfig{});
  // Two repeating apps reconstructed; the one-shot is skipped.
  ASSERT_EQ(replay.apps().size(), 2u);
  for (const auto& app : replay.apps()) {
    const apps::AppProfile& p = app->profile();
    if (p.name == "Line") {
      EXPECT_EQ(p.repeat, Duration::seconds(200));
      EXPECT_NEAR(p.alpha, 0.75, 1e-9);
      EXPECT_EQ(p.mode, alarm::RepeatMode::kDynamic);
    } else {
      EXPECT_EQ(p.name, "Facebook");
      EXPECT_EQ(p.repeat, Duration::seconds(60));
      EXPECT_NEAR(p.alpha, 0.0, 1e-9);
    }
  }

  // Deploy the replay: it runs and re-issues the logged holds in order.
  test::FrameworkHarness run;
  run.init(std::make_unique<alarm::NativePolicy>());
  replay.deploy(run.sim_, *run.manager_);
  run.sim_.run_until(run.at(1200));
  const apps::AppTrace line_trace = log.app_trace("Line.major");
  std::size_t next = 0;
  for (const auto& r : run.deliveries_) {
    if (r.tag != "Line.major") continue;
    ASSERT_LT(next, line_trace.entries.size());
    EXPECT_EQ(r.hold, line_trace.entries[next].hold);
    ++next;
  }
  EXPECT_GT(next, 2u);
}

TEST(WorkloadFromLog, RejectsLogsWithoutRepeatingWakeups) {
  DeliveryLog log;
  alarm::DeliveryRecord r = sample_record(1, "oneoff");
  r.mode = alarm::RepeatMode::kOneShot;
  r.repeat_interval = Duration::zero();
  log.observe(r);
  EXPECT_THROW(trace::workload_from_log(log, apps::WorkloadConfig{}),
               std::logic_error);
}

class DeliveryLogIntegration : public test::FrameworkFixture {};

TEST_F(DeliveryLogIntegration, LogDrivenImitationReproducesHolds) {
  // Full circle of the paper's methodology: run an app, log its
  // deliveries, build an imitated app from the log, and verify the replay
  // issues the same holds.
  init(std::make_unique<alarm::NativePolicy>());
  DeliveryLog log;
  manager_->add_delivery_observer(log.observer());

  apps::AppProfile profile = apps::profile_by_name("FollowMee");
  apps::IrregularApp original(profile, Rng(123));
  original.launch(*manager_, at(0), alarm::AppId{1});
  sim_.run_until(at(1800));  // ten deliveries at ReIn 180
  ASSERT_GE(log.size(), 8u);

  const apps::AppTrace trace = log.app_trace("FollowMee.major");
  apps::ImitatedApp imitation(profile, trace);

  // Fresh framework for the replay run.
  test::FrameworkHarness replay;
  replay.init(std::make_unique<alarm::NativePolicy>());
  imitation.launch(*replay.manager_, replay.at(0), alarm::AppId{1});
  replay.sim_.run_until(replay.at(1800));

  ASSERT_GE(replay.deliveries_.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(replay.deliveries_[i].hold, trace.entries[i].hold) << i;
  }
}

}  // namespace
}  // namespace simty::trace
