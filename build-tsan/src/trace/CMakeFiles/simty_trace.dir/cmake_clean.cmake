file(REMOVE_RECURSE
  "CMakeFiles/simty_trace.dir/delivery_log.cpp.o"
  "CMakeFiles/simty_trace.dir/delivery_log.cpp.o.d"
  "libsimty_trace.a"
  "libsimty_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simty_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
