#include "alarm/batch_index.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace simty::alarm {
namespace {

/// splitmix64 finalizer: turns the monotone insertion counter into
/// well-mixed treap priorities. Pure arithmetic on the counter, so the tree
/// shape is a function of the operation sequence alone — bit-reproducible.
std::uint64_t mix_priority(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void BatchIndex::clear() {
  nodes_.clear();
  free_.clear();
  root_ = -1;
  slots_.clear();
}

void BatchIndex::pull(std::int32_t t) {
  Node& n = nodes_[static_cast<std::size_t>(t)];
  n.max_end_us = n.end_us;
  if (n.left >= 0) {
    n.max_end_us =
        std::max(n.max_end_us, nodes_[static_cast<std::size_t>(n.left)].max_end_us);
  }
  if (n.right >= 0) {
    n.max_end_us =
        std::max(n.max_end_us, nodes_[static_cast<std::size_t>(n.right)].max_end_us);
  }
}

std::int32_t BatchIndex::rotate_left(std::int32_t t) {
  const std::int32_t r = nodes_[static_cast<std::size_t>(t)].right;
  nodes_[static_cast<std::size_t>(t)].right = nodes_[static_cast<std::size_t>(r)].left;
  nodes_[static_cast<std::size_t>(r)].left = t;
  pull(t);
  pull(r);
  return r;
}

std::int32_t BatchIndex::rotate_right(std::int32_t t) {
  const std::int32_t l = nodes_[static_cast<std::size_t>(t)].left;
  nodes_[static_cast<std::size_t>(t)].left = nodes_[static_cast<std::size_t>(l)].right;
  nodes_[static_cast<std::size_t>(l)].right = t;
  pull(t);
  pull(l);
  return l;
}

std::int32_t BatchIndex::insert_node(std::int32_t t, std::int32_t n) {
  if (t < 0) {
    pull(n);
    return n;
  }
  auto& cur = nodes_[static_cast<std::size_t>(t)];
  if (key_less(nodes_[static_cast<std::size_t>(n)], cur)) {
    cur.left = insert_node(cur.left, n);
    if (nodes_[static_cast<std::size_t>(cur.left)].prio > cur.prio) {
      return rotate_right(t);
    }
  } else {
    cur.right = insert_node(cur.right, n);
    if (nodes_[static_cast<std::size_t>(cur.right)].prio > cur.prio) {
      return rotate_left(t);
    }
  }
  pull(t);
  return t;
}

std::int32_t BatchIndex::erase_node(std::int32_t t, const Node& victim) {
  SIMTY_CHECK_MSG(t >= 0, "BatchIndex: erasing an entry that is not indexed");
  Node& cur = nodes_[static_cast<std::size_t>(t)];
  if (cur.batch == victim.batch) {
    // Rotate the victim down toward the higher-priority child until it is
    // a leaf, then unlink and recycle its slot.
    if (cur.left < 0 && cur.right < 0) {
      free_.push_back(t);
      return -1;
    }
    const bool take_left =
        cur.right < 0 ||
        (cur.left >= 0 && nodes_[static_cast<std::size_t>(cur.left)].prio >
                              nodes_[static_cast<std::size_t>(cur.right)].prio);
    const std::int32_t top = take_left ? rotate_right(t) : rotate_left(t);
    Node& parent = nodes_[static_cast<std::size_t>(top)];
    if (take_left) {
      parent.right = erase_node(parent.right, victim);
    } else {
      parent.left = erase_node(parent.left, victim);
    }
    pull(top);
    return top;
  }
  if (key_less(victim, cur)) {
    cur.left = erase_node(cur.left, victim);
  } else {
    cur.right = erase_node(cur.right, victim);
  }
  pull(t);
  return t;
}

void BatchIndex::insert(const Batch* batch) {
  SIMTY_CHECK(batch != nullptr);
  SIMTY_CHECK_MSG(!slots_.contains(batch), "BatchIndex: entry already indexed");
  const TimeInterval grace = batch->grace_interval();
  SIMTY_CHECK_MSG(!grace.is_empty(),
                  "BatchIndex: entries must have a non-empty grace overlap");
  std::int32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& n = nodes_[static_cast<std::size_t>(slot)];
  n.start_us = grace.start().us();
  n.end_us = grace.end().us();
  n.max_end_us = n.end_us;
  n.seq = next_seq_++;
  n.prio = mix_priority(n.seq);
  n.batch = batch;
  n.left = -1;
  n.right = -1;
  root_ = insert_node(root_, slot);
  slots_.emplace(batch, slot);
}

void BatchIndex::erase(const Batch* batch) {
  const auto it = slots_.find(batch);
  SIMTY_CHECK_MSG(it != slots_.end(), "BatchIndex: erasing an unindexed entry");
  root_ = erase_node(root_, nodes_[static_cast<std::size_t>(it->second)]);
  slots_.erase(it);
}

void BatchIndex::update(const Batch* batch) {
  erase(batch);
  insert(batch);
}

void BatchIndex::collect_node(std::int32_t t, std::int64_t qs, std::int64_t qe,
                              const TimeInterval& interval,
                              EntryIntervalKind kind,
                              std::vector<std::size_t>& out) const {
  if (t < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(t)];
  // No grace interval in this subtree reaches the query's start.
  if (n.max_end_us < qs) return;
  collect_node(n.left, qs, qe, interval, kind, out);
  if (n.start_us <= qe && n.end_us >= qs &&
      (kind == EntryIntervalKind::kGrace ||
       n.batch->window_interval().overlaps(interval))) {
    out.push_back(n.batch->queue_pos());
  }
  // Keys right of this node all start at or after n.start_us; once that
  // passes the query end, the whole right spine is overlap-free.
  if (n.start_us <= qe) collect_node(n.right, qs, qe, interval, kind, out);
}

void BatchIndex::collect(const TimeInterval& interval, EntryIntervalKind kind,
                         std::vector<std::size_t>& out) const {
  if (interval.is_empty()) return;
  collect_node(root_, interval.start().us(), interval.end().us(), interval,
               kind, out);
  // In-order traversal yields grace-start order; the policies need queue
  // position order (first-found-wins determinism).
  std::sort(out.begin(), out.end());
}

std::vector<const Batch*> BatchIndex::entries_inorder() const {
  std::vector<const Batch*> out;
  out.reserve(slots_.size());
  std::vector<std::int32_t> stack;
  std::int32_t t = root_;
  while (t >= 0 || !stack.empty()) {
    while (t >= 0) {
      stack.push_back(t);
      t = nodes_[static_cast<std::size_t>(t)].left;
    }
    t = stack.back();
    stack.pop_back();
    out.push_back(nodes_[static_cast<std::size_t>(t)].batch);
    t = nodes_[static_cast<std::size_t>(t)].right;
  }
  return out;
}

std::vector<std::string> BatchIndex::check_invariants() const {
  std::vector<std::string> issues;
  std::size_t visited = 0;
  // Iterative post-order over (node, parent-key) pairs would obscure the
  // checks; bounded recursion is fine here (audit path only).
  struct Walker {
    const BatchIndex* idx;
    std::vector<std::string>* issues;
    std::size_t* visited;

    /// Returns the subtree's max end, verifying structure along the way.
    std::int64_t walk(std::int32_t t) {
      const Node& n = idx->nodes_[static_cast<std::size_t>(t)];
      ++*visited;
      std::int64_t max_end = n.end_us;
      for (const std::int32_t child : {n.left, n.right}) {
        if (child < 0) continue;
        const Node& c = idx->nodes_[static_cast<std::size_t>(child)];
        if (c.prio > n.prio) {
          issues->push_back("heap order violated at seq " +
                            std::to_string(n.seq));
        }
        const bool left_child = child == n.left;
        if (left_child != idx->key_less(c, n)) {
          issues->push_back("BST order violated at seq " + std::to_string(n.seq));
        }
        max_end = std::max(max_end, walk(child));
      }
      if (max_end != n.max_end_us) {
        issues->push_back("stale max-end augmentation at seq " +
                          std::to_string(n.seq));
      }
      if (n.start_us != n.batch->grace_interval().start().us() ||
          n.end_us != n.batch->grace_interval().end().us()) {
        issues->push_back("stale grace key at seq " + std::to_string(n.seq));
      }
      const auto it = idx->slots_.find(n.batch);
      if (it == idx->slots_.end() ||
          idx->nodes_[static_cast<std::size_t>(it->second)].batch != n.batch) {
        issues->push_back("slot bookkeeping missing seq " + std::to_string(n.seq));
      }
      return max_end;
    }
  };
  if (root_ >= 0) Walker{this, &issues, &visited}.walk(root_);
  if (visited != slots_.size()) {
    issues.push_back(str_format("tree holds %zu nodes but %zu are indexed",
                                visited, slots_.size()));
  }
  return issues;
}

}  // namespace simty::alarm
