#include "metrics/interval_audit.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::metrics {

double GapStats::min_gap_over_repeat() const {
  if (repeat.is_zero() || min_gap == Duration::max()) return 0.0;
  return min_gap.ratio(repeat);
}

double GapStats::max_gap_over_repeat() const {
  if (repeat.is_zero()) return 0.0;
  return max_gap.ratio(repeat);
}

void IntervalAudit::observe(const alarm::DeliveryRecord& record) {
  if (record.mode == alarm::RepeatMode::kOneShot) return;
  GapStats& s = stats_[record.id.value];
  if (s.deliveries == 0) {
    s.tag = record.tag;
    s.mode = record.mode;
    s.repeat = record.repeat_interval;
  }
  s.ever_perceptible = s.ever_perceptible || record.was_perceptible;
  s.last_perceptible = record.was_perceptible;
  ++s.deliveries;

  const auto last = last_delivery_.find(record.id.value);
  if (last != last_delivery_.end()) {
    const Duration gap = record.delivered - last->second;
    s.min_gap = std::min(s.min_gap, gap);
    s.max_gap = std::max(s.max_gap, gap);
  }
  last_delivery_[record.id.value] = record.delivered;
}

alarm::DeliveryObserver IntervalAudit::observer() {
  return [this](const alarm::DeliveryRecord& r) { observe(r); };
}

std::vector<GapViolation> IntervalAudit::check_bounds(double beta,
                                                      double slack) const {
  std::vector<GapViolation> out;
  for (const auto& [id, s] : stats_) {
    if (s.deliveries < 2) continue;
    // Upper bound: (1 + beta) * ReIn for both static and dynamic repeating
    // (§3.2.2). NATIVE only postpones within windows, so beta is a safe
    // over-approximation there too.
    const double upper = 1.0 + beta + slack;
    if (s.max_gap_over_repeat() > upper) {
      out.push_back(GapViolation{s.tag, true, s.max_gap_over_repeat(), upper});
    }
    // Lower bound: ReIn for dynamic, (1 - beta) * ReIn for static.
    const double lower =
        (s.mode == alarm::RepeatMode::kDynamic ? 1.0 : 1.0 - beta) - slack;
    if (s.min_gap_over_repeat() < lower) {
      out.push_back(GapViolation{s.tag, false, s.min_gap_over_repeat(), lower});
    }
  }
  return out;
}

void IntervalAudit::save(snapshot::Writer& w) const {
  w.u64(stats_.size());
  for (const auto& [id, s] : stats_) {
    w.u64(id);
    w.str(s.tag);
    w.u8(static_cast<std::uint8_t>(s.mode));
    w.i64(s.repeat.us());
    w.boolean(s.ever_perceptible);
    w.boolean(s.last_perceptible);
    w.u64(s.deliveries);
    w.i64(s.min_gap.us());
    w.i64(s.max_gap.us());
  }
  w.u64(last_delivery_.size());
  for (const auto& [id, t] : last_delivery_) {
    w.u64(id);
    w.i64(t.us());
  }
}

void IntervalAudit::restore(snapshot::SectionReader& s) {
  stats_.clear();
  last_delivery_.clear();
  const std::uint64_t stat_count = s.u64();
  // id + min fixed fields per entry: u64(9) + str(9) + u8(2) + i64(9) +
  // 2 bools(4) + u64(9) + 2 i64(18).
  s.check_count(stat_count, 60);
  for (std::uint64_t i = 0; i < stat_count; ++i) {
    const std::uint64_t id = s.u64();
    GapStats g;
    g.tag = s.str();
    const std::uint8_t mode = s.u8();
    SIMTY_CHECK_MSG(mode <= static_cast<std::uint8_t>(alarm::RepeatMode::kDynamic),
                    "IntervalAudit::restore: repeat mode out of range");
    g.mode = static_cast<alarm::RepeatMode>(mode);
    g.repeat = Duration::micros(s.i64());
    g.ever_perceptible = s.boolean();
    g.last_perceptible = s.boolean();
    g.deliveries = s.u64();
    g.min_gap = Duration::micros(s.i64());
    g.max_gap = Duration::micros(s.i64());
    const bool inserted = stats_.emplace(id, std::move(g)).second;
    SIMTY_CHECK_MSG(inserted, "IntervalAudit::restore: duplicate alarm id");
  }
  const std::uint64_t last_count = s.u64();
  s.check_count(last_count, 18);
  for (std::uint64_t i = 0; i < last_count; ++i) {
    const std::uint64_t id = s.u64();
    const TimePoint t = TimePoint::from_us(s.i64());
    const bool inserted = last_delivery_.emplace(id, t).second;
    SIMTY_CHECK_MSG(inserted, "IntervalAudit::restore: duplicate alarm id");
  }
}

double IntervalAudit::worst_gap_ratio() const {
  // Every alarm's FIRST delivery counts as perceptible (footnote 5:
  // hardware still unknown), so filter on the post-profiling
  // classification: an alarm whose last delivery was imperceptible.
  double worst = 0.0;
  for (const auto& [id, s] : stats_) {
    if (s.deliveries < 2 || s.last_perceptible) continue;
    worst = std::max(worst, s.max_gap_over_repeat());
  }
  return worst;
}

}  // namespace simty::metrics
