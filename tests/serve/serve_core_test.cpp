// Sweep-server core: the result cache must answer repeated identical
// requests without re-simulating (hit counter increments), warm-started
// sweep points must match their cold straight runs bit-for-bit, the
// protocol codec must round-trip, and hostile frames must be rejected with
// std::logic_error — never crash the core.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "exp/run.hpp"
#include "serve/serve_core.hpp"
#include "serve/server.hpp"

namespace simty::serve {
namespace {

Request quick_request(double beta = 0.0) {
  Request req;
  req.policy = exp::PolicyKind::kSimty;
  req.workload = exp::WorkloadKind::kLight;
  req.duration = Duration::minutes(90);
  req.seed = 11;
  if (beta > 0.0) {
    // Switch at 80 minutes: the shared prefix covers ~90% of the run.
    req.beta_switch =
        exp::ExperimentConfig::BetaSwitch{Duration::minutes(80), beta};
  }
  return req;
}

void expect_identical(const Response& a, const Response& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.total_j, b.total_j);
  EXPECT_EQ(a.awake_total_j, b.awake_total_j);
  EXPECT_EQ(a.average_power_mw, b.average_power_mw);
  EXPECT_EQ(a.projected_standby_hours, b.projected_standby_hours);
  EXPECT_EQ(a.delay_perceptible, b.delay_perceptible);
  EXPECT_EQ(a.delay_imperceptible, b.delay_imperceptible);
  EXPECT_EQ(a.delay_imperceptible_p95, b.delay_imperceptible_p95);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.batches_delivered, b.batches_delivered);
  EXPECT_EQ(a.one_shots, b.one_shots);
  EXPECT_EQ(a.awake_seconds, b.awake_seconds);
  EXPECT_EQ(a.asleep_seconds, b.asleep_seconds);
  EXPECT_EQ(a.worst_gap_ratio, b.worst_gap_ratio);
  EXPECT_EQ(a.gap_violations, b.gap_violations);
  EXPECT_EQ(a.perceptible_window_misses, b.perceptible_window_misses);
}

TEST(ServeCodec, RequestRoundTripsExactly) {
  const Request req = quick_request(0.7);
  const Request back = decode_request(encode_request(req));
  EXPECT_EQ(back.policy, req.policy);
  EXPECT_EQ(back.workload, req.workload);
  EXPECT_EQ(back.duration.us(), req.duration.us());
  EXPECT_EQ(back.seed, req.seed);
  EXPECT_EQ(back.doze, req.doze);
  EXPECT_EQ(back.system_alarms, req.system_alarms);
  ASSERT_TRUE(back.beta_switch.has_value());
  EXPECT_EQ(back.beta_switch->at.us(), req.beta_switch->at.us());
  EXPECT_EQ(back.beta_switch->beta, req.beta_switch->beta);
}

TEST(ServeCodec, ResponseAndStatsRoundTrip) {
  Response resp;
  resp.cached = true;
  resp.warm_started = true;
  resp.policy_name = "SIMTY";
  resp.total_j = 12.5;
  resp.gap_violations = 3;
  expect_identical(resp, decode_response(encode_response(resp)));
  EXPECT_TRUE(decode_response(encode_response(resp)).cached);

  ServeStats stats;
  stats.requests = 7;
  stats.prefix_hits = 5;
  const ServeStats back = decode_stats(encode_stats(stats));
  EXPECT_EQ(back.requests, 7u);
  EXPECT_EQ(back.prefix_hits, 5u);
}

TEST(ServeCodec, RejectsMalformedFrames) {
  ServeCore core;
  EXPECT_THROW(core.handle_frame("not a snapshot"), std::logic_error);
  // A valid container with the wrong section is equally rejected.
  EXPECT_THROW(core.handle_frame(encode_shutdown()), std::logic_error);
  // Truncations of a valid request must never desynchronize the decoder.
  const std::string good = encode_request(quick_request(0.5));
  for (const std::size_t keep : {std::size_t{0}, std::size_t{4}, good.size() / 2,
                                 good.size() - 1}) {
    EXPECT_THROW(core.handle_frame(good.substr(0, keep)), std::logic_error)
        << "kept " << keep << " bytes";
  }
  // Domain validation: a switch instant past the horizon.
  Request bad = quick_request(0.5);
  bad.beta_switch->at = bad.duration + Duration::seconds(1);
  EXPECT_THROW(decode_request(encode_request(bad)), std::logic_error);
}

TEST(ServeHash, SeedAndBetaFactorOutAsDesigned) {
  const Request a = quick_request(0.3);
  Request b = a;
  b.beta_switch->beta = 0.9;
  Request c = a;
  c.seed = 99;

  // Result-cache key: β matters, seed is factored out into the pair.
  EXPECT_NE(config_hash(a), config_hash(b));
  EXPECT_EQ(config_hash(a), config_hash(c));
  // Prefix key: β is blind (the whole point), seed matters.
  EXPECT_EQ(prefix_hash(a), prefix_hash(b));
  EXPECT_NE(prefix_hash(a), prefix_hash(c));
}

TEST(ServeCore, RepeatedIdenticalRequestsHitTheResultCache) {
  ServeCore core;
  const Request req = quick_request();
  const Response first = core.handle(req);
  EXPECT_FALSE(first.cached);
  const Response second = core.handle(req);
  EXPECT_TRUE(second.cached);
  expect_identical(first, second);
  const Response third = core.handle(req);
  EXPECT_TRUE(third.cached);
  EXPECT_EQ(core.stats().requests, 3u);
  EXPECT_EQ(core.stats().result_hits, 2u);
  EXPECT_EQ(core.stats().result_misses, 1u);
}

TEST(ServeCore, WarmStartedSweepPointMatchesColdRun) {
  ServeCore core;
  // First sweep point: cold, simulates the prefix and parks the snapshot.
  const Response lo = core.handle(quick_request(0.3));
  EXPECT_FALSE(lo.warm_started);
  EXPECT_EQ(core.stats().prefix_misses, 1u);
  EXPECT_EQ(core.stats().snapshots_stored, 1u);

  // Second point differs only in β: served from the shared prefix…
  const Request hi = quick_request(0.9);
  const Response warm = core.handle(hi);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(core.stats().prefix_hits, 1u);

  // …and must equal a from-scratch run of that config exactly.
  exp::ExperimentConfig config;
  config.policy = hi.policy;
  config.workload = hi.workload;
  config.duration = hi.duration;
  config.seed = hi.seed;
  config.beta_switch = hi.beta_switch;
  const exp::RunResult straight = exp::run_experiment(config);
  EXPECT_EQ(warm.total_j, straight.energy.total().joules_f());
  EXPECT_EQ(warm.average_power_mw, straight.average_power_mw);
  EXPECT_EQ(warm.delay_imperceptible, straight.delay_imperceptible);
  EXPECT_EQ(warm.deliveries, straight.deliveries);
  EXPECT_EQ(warm.gap_violations, straight.gap_violations);

  // The differing-β results are genuinely different runs (the switch did
  // something), or the warm-start test would be vacuous.
  EXPECT_NE(lo.total_j, warm.total_j);
}

TEST(ServeCore, PrefixStoreEvictsLeastRecentlyUsed) {
  ServeCore core(1);  // room for exactly one prefix
  Request a = quick_request(0.3);
  Request b = quick_request(0.3);
  b.seed = 12;  // different prefix key (prefix is seed-specific)

  core.handle(a);
  EXPECT_EQ(core.stats().snapshots_stored, 1u);
  core.handle(b);  // evicts a's prefix
  EXPECT_EQ(core.stats().snapshots_evicted, 1u);
  Request a2 = a;
  a2.beta_switch->beta = 0.9;  // would have warm-started from a's prefix
  core.handle(a2);
  EXPECT_EQ(core.stats().prefix_hits, 0u);
  EXPECT_EQ(core.stats().prefix_misses, 3u);
}

TEST(ServeServer, SocketRoundTripServesAndShutsDown) {
  const std::string path = ::testing::TempDir() + "simty_serve_test.sock";
  ServeCore core;
  Server server(path, core);
  std::thread daemon([&] { server.serve(); });

  Request req = quick_request();
  req.duration = Duration::minutes(30);
  const std::string reply = query(path, encode_request(req));
  const Response first = decode_response(reply);
  EXPECT_FALSE(first.cached);
  const Response second = decode_response(query(path, encode_request(req)));
  EXPECT_TRUE(second.cached);
  expect_identical(first, second);

  const ServeStats stats = decode_stats(query(path, encode_stats_request()));
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.result_hits, 1u);

  // A garbage frame gets an error reply, not a dead daemon.
  const std::string err = query(path, std::string("garbage"));
  EXPECT_THROW(decode_response(err), std::logic_error);

  EXPECT_TRUE(is_shutdown_frame(query(path, encode_shutdown())));
  daemon.join();
}

TEST(ServeServer, ClientClosingBeforeReplySurvivesAsEpipe) {
  // Regression: the reply used to go through bare ::write, so a client that
  // disconnected before reading its reply raised SIGPIPE and killed the
  // daemon process. With MSG_NOSIGNAL the write fails with EPIPE, the serve
  // loop drops that connection, and the next client is served normally.
  const std::string path = ::testing::TempDir() + "simty_serve_epipe.sock";
  ServeCore core;
  Server server(path, core);
  std::thread daemon([&] { server.serve(); });

  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(path.size() + 1, sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    Request req = quick_request();
    req.duration = Duration::minutes(30);
    send_frame(fd, encode_request(req));
    // Vanish while the server is still simulating: its reply write lands on
    // a closed peer.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }

  // The daemon must still be alive and serving.
  Request req = quick_request();
  req.duration = Duration::minutes(30);
  req.seed = 21;
  const Response resp = decode_response(query(path, encode_request(req)));
  EXPECT_FALSE(resp.policy_name.empty());

  EXPECT_TRUE(is_shutdown_frame(query(path, encode_shutdown())));
  daemon.join();
}

}  // namespace
}  // namespace simty::serve
