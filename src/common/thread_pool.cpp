#include "common/thread_pool.hpp"

namespace simty {

ThreadPool::ThreadPool(std::size_t workers) : inline_(workers == 0) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // shutdown requested and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // a packaged_task: exceptions land in the caller's future
  }
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
  }
  ready_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

}  // namespace simty
