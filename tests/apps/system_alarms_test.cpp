#include "apps/system_alarms.hpp"

#include <gtest/gtest.h>

#include "alarm/native_policy.hpp"
#include "support/framework_fixture.hpp"

namespace simty::apps {
namespace {

class SystemAlarmsTest : public test::FrameworkFixture {};

TEST_F(SystemAlarmsTest, PeriodicServicesRegisterAndFire) {
  init(std::make_unique<alarm::NativePolicy>());
  SystemAlarmConfig c;
  c.one_shot_mean = Duration::zero();  // periodic only
  SystemAlarmSource src(sim_, *manager_, c, Rng(1));
  src.start(at(3600));
  EXPECT_GT(manager_->stats().registrations, 0u);
  sim_.run_until(at(3600));
  // The 300 s heartbeat alone fires ~11 times in an hour.
  EXPECT_GT(manager_->stats().deliveries, 10u);
  for (const auto& rec : deliveries_) {
    EXPECT_EQ(rec.app, SystemAlarmSource::kSystemApp);
    EXPECT_TRUE(rec.hardware_used.empty());  // CPU-only bookkeeping
  }
}

TEST_F(SystemAlarmsTest, OneShotsSpawnAndCountDeliveries) {
  init(std::make_unique<alarm::NativePolicy>());
  SystemAlarmConfig c;
  c.periodic_services = false;
  c.one_shot_mean = Duration::seconds(120);
  SystemAlarmSource src(sim_, *manager_, c, Rng(3));
  src.start(at(3600));
  sim_.run_until(at(3600));
  EXPECT_GT(src.one_shots_fired(), 10u);  // ~30 expected at mean 120 s
  EXPECT_LT(src.one_shots_fired(), 70u);
  // One-shots are one-shot: nothing left registered at the end except
  // possibly the last spawned-but-undelivered one.
  EXPECT_LE(manager_->queue(alarm::AlarmKind::kWakeup).size(), 1u);
}

TEST_F(SystemAlarmsTest, OneShotSpawningStopsAtHorizon) {
  init(std::make_unique<alarm::NativePolicy>());
  SystemAlarmConfig c;
  c.periodic_services = false;
  c.one_shot_mean = Duration::seconds(60);
  SystemAlarmSource src(sim_, *manager_, c, Rng(5));
  src.start(at(600));
  sim_.run_until(at(600));
  const std::uint64_t at_horizon = src.one_shots_fired();
  sim_.run_until(at(7200));
  EXPECT_EQ(src.one_shots_fired(), at_horizon);
}

TEST_F(SystemAlarmsTest, ServicesRespectPlatformBeta) {
  init(std::make_unique<alarm::NativePolicy>());
  SystemAlarmConfig c;
  c.one_shot_mean = Duration::zero();
  c.beta = 0.80;
  SystemAlarmSource src(sim_, *manager_, c, Rng(1));
  src.start(at(3600));
  const auto& q = manager_->queue(alarm::AlarmKind::kWakeup);
  ASSERT_FALSE(q.empty());
  for (const auto& batch : q) {
    for (const alarm::Alarm* a : batch->members()) {
      const double grace = a->spec().grace_length.ratio(a->spec().repeat_interval);
      EXPECT_NEAR(grace, 0.80, 1e-9);
    }
  }
}

TEST_F(SystemAlarmsTest, DisabledSourcesRegisterNothing) {
  init(std::make_unique<alarm::NativePolicy>());
  SystemAlarmConfig c;
  c.periodic_services = false;
  c.one_shot_mean = Duration::zero();
  SystemAlarmSource src(sim_, *manager_, c, Rng(1));
  src.start(at(3600));
  sim_.run_until(at(3600));
  EXPECT_EQ(manager_->stats().registrations, 0u);
  EXPECT_EQ(src.one_shots_fired(), 0u);
}

}  // namespace
}  // namespace simty::apps
