file(REMOVE_RECURSE
  "CMakeFiles/bench_network_quality.dir/bench_network_quality.cpp.o"
  "CMakeFiles/bench_network_quality.dir/bench_network_quality.cpp.o.d"
  "bench_network_quality"
  "bench_network_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
