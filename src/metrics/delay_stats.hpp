#pragma once
// Normalized-delivery-delay statistics (the paper's user-experience metric,
// Fig 4): an alarm's normalized delay is 0 when delivered inside its window
// and otherwise the lateness beyond the window end divided by its repeating
// interval. Averaged separately over perceptible and imperceptible alarms.

#include <cstdint>

#include "alarm/alarm_manager.hpp"
#include "metrics/histogram.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::metrics {

/// Accumulated delay statistics for one perceptibility class.
struct DelayGroup {
  std::uint64_t deliveries = 0;
  std::uint64_t late = 0;          // delivered beyond the window end
  double delay_sum = 0.0;          // sum of normalized delays
  double max_delay = 0.0;          // worst normalized delay

  /// Average normalized delay (0 when no deliveries).
  double average() const {
    return deliveries == 0 ? 0.0 : delay_sum / static_cast<double>(deliveries);
  }
};

/// Delivery observer computing Fig 4's metric. One-shot alarms have no
/// repeating interval to normalize by and are excluded (the paper's metric
/// is defined for repeating alarms).
class DelayStats {
 public:
  DelayStats();

  void observe(const alarm::DeliveryRecord& record);

  /// Binds this object as an AlarmManager delivery observer.
  alarm::DeliveryObserver observer();

  const DelayGroup& perceptible() const { return perceptible_; }
  const DelayGroup& imperceptible() const { return imperceptible_; }

  /// Full delay distribution of the imperceptible class: normalized-delay
  /// buckets over [0, 1) — the (1 + beta) bound caps delays below 1 ReIn.
  const Histogram& imperceptible_distribution() const { return distribution_; }

  /// Normalized delay of a single record (exposed for tests/analysis).
  static double normalized_delay(const alarm::DeliveryRecord& record);

  /// Serializes both delay groups and the imperceptible distribution.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  DelayGroup perceptible_;
  DelayGroup imperceptible_;
  Histogram distribution_;
};

}  // namespace simty::metrics
