# Empty dependencies file for simty_apps.
# This may be replaced when dependencies are built.
