file(REMOVE_RECURSE
  "libsimty_metrics.a"
)
