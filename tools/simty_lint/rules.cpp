#include "lint.hpp"
#include "lexer.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <tuple>
#include <utility>

namespace simty::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool space_char(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::string normalize(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  while (p.rfind("./", 0) == 0) p.erase(0, 2);
  return p;
}

bool under_any(const std::string& path, const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(), [&](const std::string& pre) {
    return path.rfind(pre, 0) == 0 &&
           (path.size() == pre.size() || path[pre.size()] == '/');
  });
}

bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

std::string trimmed(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && space_char(s[b])) ++b;
  while (e > b && space_char(s[e - 1])) --e;
  return std::string(s.substr(b, e - b));
}

/// Shared per-file state: blanked lines, a joined view for multi-line
/// constructs, and the allow filter applied at emission time.
struct Ctx {
  std::string path;
  FileScan scan;
  std::string joined;                   // blanked code lines joined by '\n'
  std::vector<std::size_t> line_start;  // joined offset of each line
  std::vector<std::string> raw_lines;   // unblanked lines (include paths)
  std::vector<Finding>* out = nullptr;

  std::size_t line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_start.begin(), line_start.end(), offset);
    return static_cast<std::size_t>(it - line_start.begin()) - 1;
  }

  bool allowed(std::size_t line, const std::string& rule) const {
    const auto hit = [&](const std::vector<std::string>& v) {
      return std::find(v.begin(), v.end(), rule) != v.end();
    };
    return hit(scan.file_allows) ||
           (line < scan.line_allows.size() && hit(scan.line_allows[line]));
  }

  void emit(std::size_t line, const std::string& rule, std::string message) {
    if (allowed(line, rule)) return;
    out->push_back(Finding{path, static_cast<int>(line) + 1, rule, std::move(message)});
  }
};

const std::vector<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

/// Skips a balanced <...> template-argument list starting at `pos` (which
/// must point at '<'); returns the offset just past the matching '>', or
/// npos when the brackets are unbalanced / interrupted by ';' or '{'.
std::size_t skip_angles(std::string_view s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '<') ++depth;
    else if (c == '>') {
      --depth;
      if (depth == 0) return i + 1;
    } else if (c == ';' || c == '{') {
      return std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

std::size_t skip_ws(std::string_view s, std::size_t pos) {
  while (pos < s.size() && space_char(s[pos])) ++pos;
  return pos;
}

std::string read_ident(std::string_view s, std::size_t pos, std::size_t* end = nullptr) {
  std::size_t e = pos;
  while (e < s.size() && ident_char(s[e])) ++e;
  if (end != nullptr) *end = e;
  return std::string(s.substr(pos, e - pos));
}

/// Finds word-boundary occurrences of `name` in `s`, calling fn(offset).
template <typename Fn>
void for_each_word(std::string_view s, std::string_view name, Fn&& fn) {
  std::size_t pos = 0;
  while ((pos = s.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) fn(pos);
    pos = end;
  }
}

/// Collects type aliases for unordered containers and identifiers declared
/// with an unordered container type (including via those aliases).
void collect_unordered(std::string_view joined, std::vector<std::string>& vars,
                       std::vector<std::string>& aliases) {
  auto scan_token = [&](const std::string& token, bool may_alias) {
    for_each_word(joined, token, [&](std::size_t pos) {
      // `using Alias = std::unordered_map<...>;` — record the alias name.
      if (may_alias) {
        std::size_t back = pos;
        while (back > 0 && (space_char(joined[back - 1]) || joined[back - 1] == ':')) --back;
        if (back >= 3 && joined.compare(back - 3, 3, "std") == 0 &&
            (back == 3 || !ident_char(joined[back - 4]))) {
          back -= 3;  // step over the `std` qualifier
        }
        while (back > 0 && space_char(joined[back - 1])) --back;
        if (back > 0 && joined[back - 1] == '=') {
          std::size_t name_end = back - 1;
          while (name_end > 0 && space_char(joined[name_end - 1])) --name_end;
          std::size_t name_begin = name_end;
          while (name_begin > 0 && ident_char(joined[name_begin - 1])) --name_begin;
          const std::string alias(joined.substr(name_begin, name_end - name_begin));
          if (!alias.empty()) aliases.push_back(alias);
          return;
        }
      }
      // `std::unordered_map<K, V> name` — record the declared name.
      std::size_t p = pos + token.size();
      p = skip_ws(joined, p);
      if (p < joined.size() && joined[p] == '<') {
        p = skip_angles(joined, p);
        if (p == std::string_view::npos) return;
      } else if (may_alias) {
        return;  // bare container token without template args: not a decl
      }
      for (;;) {
        p = skip_ws(joined, p);
        if (p < joined.size() && (joined[p] == '&' || joined[p] == '*')) { ++p; continue; }
        std::size_t e = 0;
        const std::string word = read_ident(joined, p, &e);
        if (word == "const" || word == "constexpr" || word == "static" || word == "inline" ||
            word == "mutable" || word == "thread_local") { p = e; continue; }
        if (!word.empty()) vars.push_back(word);
        return;
      }
    });
  };
  for (const auto& t : kUnorderedTypes) scan_token(t, /*may_alias=*/true);
  // Second pass: declarations through the aliases we just found.
  const std::vector<std::string> found = aliases;
  for (const auto& a : found) scan_token(a, /*may_alias=*/false);
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void rule_wall_clock(Ctx& ctx) {
  static const std::vector<std::string> kClocks = {
      "system_clock", "steady_clock",  "high_resolution_clock", "utc_clock",
      "file_clock",   "gettimeofday",  "clock_gettime",         "timespec_get",
      "localtime",    "gmtime",        "strftime",              "mktime",
      "asctime",      "ctime",         "clock"};
  for (std::size_t l = 0; l < ctx.scan.code.size(); ++l) {
    for (const auto& tok : kClocks) {
      if (has_word(ctx.scan.code[l], tok)) {
        ctx.emit(l, "wall-clock",
                 "wall-clock source `" + tok +
                     "` in deterministic code; simulated time comes from "
                     "sim::Simulator::now()");
        break;
      }
    }
  }
}

void rule_raw_rand(Ctx& ctx) {
  static const std::vector<std::string> kRand = {
      "rand",     "srand",        "rand_r",       "drand48",
      "lrand48",  "random_device", "mt19937",     "mt19937_64",
      "minstd_rand", "minstd_rand0", "default_random_engine", "knuth_b",
      "ranlux24", "ranlux48",     "random_shuffle"};
  for (std::size_t l = 0; l < ctx.scan.code.size(); ++l) {
    for (const auto& tok : kRand) {
      if (has_word(ctx.scan.code[l], tok)) {
        ctx.emit(l, "raw-rand",
                 "unseeded/non-reproducible randomness `" + tok +
                     "` in deterministic code; draw from a seeded simty::Rng");
        break;
      }
    }
  }
}

void rule_std_hash(Ctx& ctx) {
  for (std::size_t l = 0; l < ctx.scan.code.size(); ++l) {
    if (has_word(ctx.scan.code[l], "std::hash")) {
      ctx.emit(l, "std-hash",
               "std::hash values are implementation-defined; deterministic "
               "logic must not depend on them");
    }
  }
}

void rule_unordered_iter(Ctx& ctx, const Options& opts) {
  std::vector<std::string> vars = opts.extra_unordered_names;
  std::vector<std::string> aliases;
  collect_unordered(ctx.joined, vars, aliases);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());

  const std::string_view joined = ctx.joined;
  auto flag = [&](std::size_t offset, const std::string& what) {
    ctx.emit(ctx.line_of(offset), "unordered-iter",
             what + ": unordered-container iteration order is not "
                    "deterministic; iterate a sorted copy or an ordered container");
  };

  // `name.begin()` / `name->cend()` ... on a known unordered variable.
  static const std::vector<std::string> kIterFns = {"begin", "end",   "cbegin",
                                                    "cend",  "rbegin", "rend"};
  for (const auto& var : vars) {
    for_each_word(joined, var, [&](std::size_t pos) {
      std::size_t p = skip_ws(joined, pos + var.size());
      if (p < joined.size() && joined[p] == '.') {
        ++p;
      } else if (p + 1 < joined.size() && joined[p] == '-' && joined[p + 1] == '>') {
        p += 2;
      } else {
        return;
      }
      p = skip_ws(joined, p);
      std::size_t e = 0;
      const std::string fn = read_ident(joined, p, &e);
      e = skip_ws(joined, e);
      if (e < joined.size() && joined[e] == '(' &&
          std::find(kIterFns.begin(), kIterFns.end(), fn) != kIterFns.end()) {
        flag(pos, "`" + var + "." + fn + "()`");
      }
    });
  }

  // Range-for whose range expression names an unordered variable or type.
  for_each_word(joined, "for", [&](std::size_t pos) {
    std::size_t p = skip_ws(joined, pos + 3);
    if (p >= joined.size() || joined[p] != '(') return;
    int depth = 0;
    std::size_t colon = std::string_view::npos;
    std::size_t close = std::string_view::npos;
    for (std::size_t i = p; i < joined.size(); ++i) {
      const char c = joined[i];
      if (c == '(') ++depth;
      else if (c == ')') {
        if (--depth == 0) { close = i; break; }
      } else if (depth == 1 && c == ';') {
        return;  // classic three-clause for
      } else if (depth == 1 && c == ':' && colon == std::string_view::npos) {
        if ((i > 0 && joined[i - 1] == ':') || (i + 1 < joined.size() && joined[i + 1] == ':')) {
          continue;  // `::` qualifier
        }
        colon = i;
      }
    }
    if (colon == std::string_view::npos || close == std::string_view::npos) return;
    const std::string_view range = joined.substr(colon + 1, close - colon - 1);
    for (const auto& t : kUnorderedTypes) {
      if (has_word(range, t)) { flag(pos, "range-for over unordered container"); return; }
    }
    for (const auto& var : vars) {
      if (has_word(range, var)) {
        flag(pos, "range-for over unordered `" + var + "`");
        return;
      }
    }
  });
}

void rule_float_time(Ctx& ctx) {
  static const std::vector<std::string> kCtors = {
      "Duration::micros", "Duration::millis", "Duration::seconds",
      "Duration::minutes", "Duration::hours", "TimePoint::from_us"};
  auto has_float = [](std::string_view arg) {
    if (has_word(arg, "double") || has_word(arg, "float") || has_word(arg, "seconds_f")) {
      return true;
    }
    for (std::size_t i = 1; i + 1 < arg.size(); ++i) {
      const bool digit_l = std::isdigit(static_cast<unsigned char>(arg[i - 1])) != 0;
      if (!digit_l) continue;
      if (arg[i] == '.' && std::isdigit(static_cast<unsigned char>(arg[i + 1])) != 0) return true;
      if ((arg[i] == 'e' || arg[i] == 'E') &&
          (std::isdigit(static_cast<unsigned char>(arg[i + 1])) != 0 || arg[i + 1] == '+' ||
           arg[i + 1] == '-')) {
        return true;
      }
    }
    return false;
  };
  for (const auto& ctor : kCtors) {
    for_each_word(ctx.joined, ctor, [&](std::size_t pos) {
      std::size_t p = skip_ws(ctx.joined, pos + ctor.size());
      if (p >= ctx.joined.size() || ctx.joined[p] != '(') return;
      int depth = 0;
      std::size_t close = std::string_view::npos;
      for (std::size_t i = p; i < ctx.joined.size(); ++i) {
        if (ctx.joined[i] == '(') ++depth;
        else if (ctx.joined[i] == ')' && --depth == 0) { close = i; break; }
      }
      if (close == std::string_view::npos) return;
      const std::string_view arg = std::string_view(ctx.joined).substr(p + 1, close - p - 1);
      if (has_float(arg)) {
        ctx.emit(ctx.line_of(pos), "float-time",
                 "floating-point expression fed to `" + ctor +
                     "`; construct simulated time from integer ticks, or round "
                     "explicitly through Duration::from_seconds / operator*(double)");
      }
    });
  }
}

void rule_std_function(Ctx& ctx) {
  for (std::size_t l = 0; l < ctx.scan.code.size(); ++l) {
    if (has_word(ctx.scan.code[l], "std::function")) {
      ctx.emit(l, "std-function",
               "std::function in the event hot path heap-allocates; use "
               "sim::EventFn (inline storage, no heap fallback)");
    }
  }
}

void rule_string_label(Ctx& ctx) {
  for (std::size_t l = 0; l < ctx.scan.code.size(); ++l) {
    if (has_word(ctx.scan.code[l], "std::string")) {
      ctx.emit(l, "string-label",
               "std::string in the event hot path allocates per event; use "
               "const char* literals or sim::intern_label()");
    }
  }
}

void rule_assert(Ctx& ctx) {
  for (std::size_t l = 0; l < ctx.scan.code.size(); ++l) {
    const std::string& code = ctx.scan.code[l];
    const std::string t = trimmed(code);
    if (t.rfind("#include", 0) == 0 &&
        (t.find("<cassert>") != std::string::npos ||
         t.find("<assert.h>") != std::string::npos)) {
      ctx.emit(l, "assert",
               "<cassert> is compiled out in release builds; use SIMTY_CHECK "
               "from common/check.hpp");
      continue;
    }
    for_each_word(code, "assert", [&](std::size_t pos) {
      const std::size_t p = skip_ws(code, pos + 6);
      if (p < code.size() && code[p] == '(') {
        ctx.emit(l, "assert",
                 "assert() vanishes under NDEBUG and aborts instead of "
                 "throwing; use SIMTY_CHECK / SIMTY_CHECK_MSG");
      }
    });
  }
}

/// Alignment-policy files must route selection through the BatchIndex
/// candidate path; a direct O(n) sweep of the batch queue — a for loop
/// bounded by `queue.size()`/`queue->size()` or a range-for over `queue` —
/// turns every insert into a full scan. Deliberate linear reference
/// implementations carry an allow() comment.
void rule_queue_scan(Ctx& ctx) {
  const std::string_view joined = ctx.joined;
  for_each_word(joined, "for", [&](std::size_t pos) {
    std::size_t p = skip_ws(joined, pos + 3);
    if (p >= joined.size() || joined[p] != '(') return;
    int depth = 0;
    std::size_t close = std::string_view::npos;
    std::size_t colon = std::string_view::npos;
    bool classic = false;
    for (std::size_t i = p; i < joined.size(); ++i) {
      const char c = joined[i];
      if (c == '(') ++depth;
      else if (c == ')') {
        if (--depth == 0) { close = i; break; }
      } else if (depth == 1 && c == ';') {
        classic = true;
      } else if (depth == 1 && c == ':' && colon == std::string_view::npos) {
        if ((i > 0 && joined[i - 1] == ':') ||
            (i + 1 < joined.size() && joined[i + 1] == ':')) {
          continue;  // `::` qualifier
        }
        colon = i;
      }
    }
    if (close == std::string_view::npos) return;
    bool scan = false;
    if (classic) {
      // `queue.size()` / `queue->size()` somewhere in the loop header.
      const std::string_view header = joined.substr(p, close - p + 1);
      for_each_word(header, "queue", [&](std::size_t qpos) {
        std::size_t q = skip_ws(header, qpos + 5);
        if (q < header.size() && header[q] == '.') {
          ++q;
        } else if (q + 1 < header.size() && header[q] == '-' && header[q + 1] == '>') {
          q += 2;
        } else {
          return;
        }
        q = skip_ws(header, q);
        std::size_t e = 0;
        if (read_ident(header, q, &e) != "size") return;
        e = skip_ws(header, e);
        if (e < header.size() && header[e] == '(') scan = true;
      });
    } else if (colon != std::string_view::npos) {
      const std::string_view range = joined.substr(colon + 1, close - colon - 1);
      if (has_word(range, "queue")) scan = true;
    }
    if (scan) {
      ctx.emit(ctx.line_of(pos), "queue-scan",
               "O(n) sweep of the batch queue in a policy file; route "
               "selection through the BatchIndex candidate path "
               "(candidate_query/select_among), or mark a deliberate linear "
               "reference with an allow comment");
    }
  });
}

/// Hot-path files own their storage through the arena-backed types (Arena,
/// ArenaVector, EventFn): a std::vector/map/... or std::function declared
/// here heap-allocates on growth and defeats the O(1) whole-run arena
/// reset. References and pointers to owning containers are fine (borrowing
/// is not owning), as are the arena-backed types themselves (they are not
/// std:: names, so they never match).
void rule_hot_path_owning(Ctx& ctx, bool fn_rules_active) {
  const std::string_view joined = ctx.joined;
  auto check_token = [&](const std::string& tok, bool needs_angles) {
    for_each_word(joined, tok, [&](std::size_t pos) {
      // Only the std:: spellings are owning; project types reusing a name
      // (e.g. a member function called `list`) must not match.
      if (pos < 5 || joined.compare(pos - 2, 2, "::") != 0) return;
      std::size_t q = pos - 2;
      if (q < 3 || joined.compare(q - 3, 3, "std") != 0) return;
      if (q > 3 && ident_char(joined[q - 4])) return;
      std::size_t p = skip_ws(joined, pos + tok.size());
      if (needs_angles) {
        if (p >= joined.size() || joined[p] != '<') return;
        p = skip_angles(joined, p);
        if (p == std::string_view::npos) return;
        p = skip_ws(joined, p);
      }
      // `const std::vector<T>&` / `std::vector<T>*`: borrowed, not owned.
      if (p < joined.size() && (joined[p] == '&' || joined[p] == '*')) return;
      ctx.emit(ctx.line_of(pos), "hot-path-owning",
               "owning `std::" + tok +
                   "` in a hot-path file; use the arena-backed types "
                   "(common::ArenaVector / common::Arena / sim::EventFn), or "
                   "mark deliberate cold-path storage with an allow comment");
    });
  };
  static const std::vector<std::string> kOwning = {
      "vector", "map", "set", "multimap", "multiset", "deque",
      "list",   "forward_list"};
  for (const auto& t : kOwning) check_token(t, /*needs_angles=*/true);
  for (const auto& t : kUnorderedTypes) check_token(t, /*needs_angles=*/true);
  // std::function / std::string are already covered by the std-function and
  // string-label rules where those run; only pick them up elsewhere.
  if (!fn_rules_active) {
    check_token("function", /*needs_angles=*/true);
    check_token("string", /*needs_angles=*/false);
  }
}

void rule_pragma_once(Ctx& ctx) {
  for (std::size_t l = 0; l < ctx.scan.code.size(); ++l) {
    const std::string t = trimmed(ctx.scan.code[l]);
    if (t.empty()) continue;
    if (t.rfind("#pragma", 0) == 0 && t.find("once") != std::string::npos) return;
    ctx.emit(l, "pragma-once",
             "header must open with `#pragma once` (before any code)");
    return;
  }
}

void rule_include_hygiene(Ctx& ctx) {
  std::set<std::string> seen;
  for (std::size_t l = 0; l < ctx.scan.code.size(); ++l) {
    const std::string t = trimmed(ctx.scan.code[l]);
    if (t.rfind("#include", 0) != 0) continue;
    // The blanked line keeps the quotes but not the path; recover the raw
    // path from the original via the line's structure: everything between
    // the delimiters is spaces in `code`, so use delimiters only.
    const std::size_t open = t.find_first_of("<\"", 8);
    if (open == std::string::npos) continue;
    const char close_ch = t[open] == '<' ? '>' : '"';
    const std::size_t close = t.find(close_ch, open + 1);
    if (close == std::string::npos) continue;
    const std::string raw_line = trimmed(ctx.raw_lines[l]);
    const std::size_t raw_open = raw_line.find_first_of("<\"", 8);
    const std::size_t raw_close =
        raw_open == std::string::npos ? std::string::npos : raw_line.find(close_ch, raw_open + 1);
    if (raw_open == std::string::npos || raw_close == std::string::npos) continue;
    const std::string path = raw_line.substr(raw_open + 1, raw_close - raw_open - 1);
    if (path.find("../") != std::string::npos) {
      ctx.emit(l, "include-hygiene",
               "parent-relative include \"" + path +
                   "\"; include project headers by repo-relative path");
    }
    if (!seen.insert(std::string(1, t[open]) + path).second) {
      ctx.emit(l, "include-hygiene", "duplicate include of \"" + path + "\"");
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "wall-clock", "raw-rand",     "std-hash",     "unordered-iter",
      "float-time", "std-function", "string-label", "assert",
      "pragma-once", "include-hygiene", "queue-scan", "hot-path-owning"};
  return kNames;
}

std::vector<std::string> unordered_names_in(std::string_view content) {
  const FileScan scan = scan_source(content);
  std::string joined;
  for (const auto& line : scan.code) {
    joined += line;
    joined += '\n';
  }
  std::vector<std::string> vars;
  std::vector<std::string> aliases;
  collect_unordered(joined, vars, aliases);
  return vars;
}

std::vector<Finding> lint_source(std::string_view rel_path, std::string_view content,
                                 const Options& opts) {
  std::vector<Finding> out;
  Ctx ctx;
  ctx.path = normalize(rel_path);
  ctx.scan = scan_source(content);
  ctx.out = &out;
  std::size_t start = 0;
  for (const auto& code_line : ctx.scan.code) {
    ctx.line_start.push_back(start);
    start += code_line.size() + 1;
    ctx.joined += code_line;
    ctx.joined += '\n';
  }
  // Keep the raw (unblanked) lines around for include-path extraction.
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= content.size(); ++i) {
    if (i == content.size() || content[i] == '\n') {
      ctx.raw_lines.emplace_back(content.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  while (ctx.raw_lines.size() < ctx.scan.code.size()) ctx.raw_lines.emplace_back();

  const bool det = under_any(ctx.path, opts.deterministic_prefixes);
  const bool hot = under_any(ctx.path, opts.hot_path_prefixes);

  if (is_header(ctx.path)) rule_pragma_once(ctx);
  rule_include_hygiene(ctx);
  rule_assert(ctx);
  rule_unordered_iter(ctx, opts);
  if (det) {
    rule_wall_clock(ctx);
    rule_raw_rand(ctx);
    rule_std_hash(ctx);
    rule_float_time(ctx);
  }
  if (hot) {
    rule_std_function(ctx);
    rule_string_label(ctx);
  }
  if (under_any(ctx.path, opts.owning_hot_path_prefixes)) {
    rule_hot_path_owning(ctx, hot);
  }
  // Alignment-policy files only: src/alarm sources whose name marks them as
  // a policy implementation.
  static const std::vector<std::string> kAlarmPrefix = {"src/alarm"};
  const std::string base = ctx.path.substr(ctx.path.find_last_of('/') + 1);
  if (under_any(ctx.path, kAlarmPrefix) &&
      base.find("policy") != std::string::npos) {
    rule_queue_scan(ctx);
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

}  // namespace simty::lint
