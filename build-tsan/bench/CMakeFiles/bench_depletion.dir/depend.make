# Empty dependencies file for bench_depletion.
# This may be replaced when dependencies are built.
