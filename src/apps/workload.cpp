#include "apps/workload.hpp"

#include "apps/app_catalog.hpp"
#include "common/check.hpp"

namespace simty::apps {

Workload::Workload(WorkloadConfig config) : config_(config) {}

void Workload::add_profiles(const std::vector<AppProfile>& profiles, Rng& rng) {
  for (AppProfile p : profiles) {
    if (config_.retry_probability >= 0.0) {
      p.retry_probability = config_.retry_probability;
    }
    if (p.irregular) {
      // The paper's methodology: irregular apps are replaced by imitated
      // apps replaying a pre-recorded trace. The trace seed is derived from
      // the app name only, NOT the run seed — the same trace is replayed
      // under NATIVE and SIMTY for a fair comparison.
      std::uint64_t name_hash = 1469598103934665603ULL;
      for (const char c : p.name) {
        name_hash = (name_hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
      }
      AppTrace trace = record_trace(p, config_.trace_length, name_hash);
      apps_.push_back(std::make_unique<ImitatedApp>(p, std::move(trace)));
    } else {
      apps_.push_back(std::make_unique<ResidentApp>(p, rng.fork(apps_.size())));
    }
  }
}

Workload Workload::light(const WorkloadConfig& config) {
  Workload w(config);
  Rng rng(config.seed, 0xA11);
  w.add_profiles(light_workload_profiles(), rng);
  return w;
}

Workload Workload::heavy(const WorkloadConfig& config) {
  Workload w(config);
  Rng rng(config.seed, 0xB22);
  w.add_profiles(heavy_workload_profiles(), rng);
  return w;
}

Workload Workload::from_imitations(
    std::vector<std::pair<AppProfile, AppTrace>> imitations,
    const WorkloadConfig& config) {
  SIMTY_CHECK_MSG(!imitations.empty(), "imitation workload needs at least one app");
  Workload w(config);
  for (auto& [profile, trace] : imitations) {
    w.apps_.push_back(std::make_unique<ImitatedApp>(profile, std::move(trace)));
  }
  return w;
}

Workload Workload::from_profiles(const std::vector<AppProfile>& profiles,
                                 const WorkloadConfig& config) {
  SIMTY_CHECK_MSG(!profiles.empty(), "custom workload needs at least one profile");
  Workload w(config);
  Rng rng(config.seed, 0xD44);
  w.add_profiles(profiles, rng);
  return w;
}

Workload Workload::synthetic(std::size_t n, const WorkloadConfig& config) {
  SIMTY_CHECK(n > 0);
  Workload w(config);
  Rng rng(config.seed, 0xC33);

  // Attribute ranges mirror Table 3's population: mostly Wi-Fi messengers,
  // some sensors, occasional notifiers.
  static const std::int64_t kRepeats[] = {60, 90, 180, 200, 270, 300, 600, 900};
  for (std::size_t i = 0; i < n; ++i) {
    AppProfile p;
    p.name = "synth" + std::to_string(i);
    p.repeat = Duration::seconds(kRepeats[rng.next_below(8)]);
    p.alpha = rng.chance(0.5) ? 0.75 : 0.0;
    p.mode = rng.chance(0.5) ? alarm::RepeatMode::kDynamic : alarm::RepeatMode::kStatic;
    const double kind = rng.next_double();
    if (kind < 0.70) {
      p.hardware = hw::ComponentSet{hw::Component::kWifi};
      p.base_hold = Duration::from_seconds(rng.uniform(1.5, 3.0));
    } else if (kind < 0.85) {
      p.hardware = hw::ComponentSet{hw::Component::kAccelerometer};
      p.base_hold = Duration::from_seconds(rng.uniform(1.0, 3.0));
    } else if (kind < 0.95) {
      p.hardware = hw::ComponentSet{hw::Component::kWps};
      p.base_hold = Duration::seconds(10);
    } else {
      p.hardware =
          hw::ComponentSet{hw::Component::kSpeaker, hw::Component::kVibrator};
      p.base_hold = Duration::seconds(1);
    }
    p.hold_jitter = 0.3;
    w.apps_.push_back(std::make_unique<ResidentApp>(p, rng.fork(1000 + i)));
  }
  return w;
}

void Workload::deploy(sim::Simulator& sim, alarm::AlarmManager& manager,
                      const net::WifiLink* link) {
  TimePoint launch = TimePoint::origin() + config_.first_launch;
  std::uint32_t app_seq = 1;
  for (const auto& app : apps_) {
    ResidentApp* raw = app.get();
    raw->attach_link(link);
    const alarm::AppId id{app_seq++};
    const double beta = config_.beta;
    sim.schedule_at(
        launch,
        [raw, &manager, &sim, id, beta] {
          raw->launch(manager, sim.now(), id, beta);
        },
        sim::EventPriority::kApp, "app-launch");
    launch += config_.launch_gap;
  }
}

}  // namespace simty::apps
