
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/delay_stats.cpp" "src/metrics/CMakeFiles/simty_metrics.dir/delay_stats.cpp.o" "gcc" "src/metrics/CMakeFiles/simty_metrics.dir/delay_stats.cpp.o.d"
  "/root/repo/src/metrics/histogram.cpp" "src/metrics/CMakeFiles/simty_metrics.dir/histogram.cpp.o" "gcc" "src/metrics/CMakeFiles/simty_metrics.dir/histogram.cpp.o.d"
  "/root/repo/src/metrics/interval_audit.cpp" "src/metrics/CMakeFiles/simty_metrics.dir/interval_audit.cpp.o" "gcc" "src/metrics/CMakeFiles/simty_metrics.dir/interval_audit.cpp.o.d"
  "/root/repo/src/metrics/wakeup_breakdown.cpp" "src/metrics/CMakeFiles/simty_metrics.dir/wakeup_breakdown.cpp.o" "gcc" "src/metrics/CMakeFiles/simty_metrics.dir/wakeup_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/simty_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hw/CMakeFiles/simty_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/alarm/CMakeFiles/simty_alarm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/simty_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
