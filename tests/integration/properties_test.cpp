// Property-based verification of the delivery guarantees of §3.2.2, swept
// over policies, repeat modes, alpha/beta factors, and phase patterns.
// For every repeating alarm in a randomized mix:
//   - it is never delivered before its nominal time;
//   - perceptible deliveries land inside the window (+ wake latency);
//   - imperceptible deliveries land inside the grace interval (+ latency);
//   - adjacent gaps stay in [ReIn, (1+beta) ReIn] for dynamic and
//     [(1-beta) ReIn, (1+beta) ReIn] for static repeating;
//   - static alarms are delivered once per repeating interval.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "alarm/exact_policy.hpp"
#include "alarm/fixed_interval_policy.hpp"
#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "common/rng.hpp"
#include "metrics/interval_audit.hpp"
#include "support/framework_fixture.hpp"

namespace simty {
namespace {

using alarm::RepeatMode;
using hw::Component;
using hw::ComponentSet;

struct PropertyCase {
  const char* policy;     // "native", "simty", "exact"
  double alpha;
  double beta;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string a = std::to_string(static_cast<int>(info.param.alpha * 100));
  std::string b = std::to_string(static_cast<int>(info.param.beta * 100));
  return std::string(info.param.policy) + "_a" + a + "_b" + b + "_s" +
         std::to_string(info.param.seed);
}

class DeliveryGuaranteeTest : public test::FrameworkFixture,
                              public ::testing::WithParamInterface<PropertyCase> {
 protected:
  std::unique_ptr<alarm::AlignmentPolicy> make_policy(const std::string& name) {
    if (name == "native") return std::make_unique<alarm::NativePolicy>();
    if (name == "simty") return std::make_unique<alarm::SimtyPolicy>();
    if (name == "fixed") {
      return std::make_unique<alarm::FixedIntervalPolicy>(Duration::seconds(120));
    }
    return std::make_unique<alarm::ExactPolicy>();
  }
};

TEST_P(DeliveryGuaranteeTest, SweepHoldsAllGuarantees) {
  const PropertyCase& p = GetParam();
  init(make_policy(p.policy));
  metrics::IntervalAudit audit;
  manager_->add_delivery_observer(audit.observer());

  // A randomized mix of repeating alarms: imperceptible Wi-Fi/WPS/accel
  // plus one perceptible notifier; static and dynamic; phases drawn from
  // the seed.
  Rng rng(p.seed, 0xFEED);
  const ComponentSet kSets[] = {
      ComponentSet{Component::kWifi}, ComponentSet{Component::kWps},
      ComponentSet{Component::kAccelerometer},
      ComponentSet{Component::kWifi, Component::kCellular}};
  const std::int64_t kRepeats[] = {60, 90, 180, 300, 600};

  std::map<std::uint64_t, Duration> repeats;
  std::map<std::uint64_t, RepeatMode> modes;
  std::map<std::uint64_t, TimePoint> firsts;
  for (int i = 0; i < 10; ++i) {
    const Duration repeat = Duration::seconds(kRepeats[rng.next_below(5)]);
    const RepeatMode mode =
        rng.chance(0.5) ? RepeatMode::kStatic : RepeatMode::kDynamic;
    const ComponentSet set = kSets[rng.next_below(4)];
    const TimePoint first =
        at(static_cast<std::int64_t>(rng.next_below(120)) + 30) + repeat;
    const alarm::AlarmId id = manager_->register_alarm(
        alarm::AlarmSpec::repeating("imp" + std::to_string(i), alarm::AppId{1},
                                    mode, repeat, p.alpha, p.beta),
        first, task(set, Duration::seconds(2)));
    repeats[id.value] = repeat;
    modes[id.value] = mode;
    firsts[id.value] = first;
  }
  // The perceptible notifier.
  const alarm::AlarmId bell = manager_->register_alarm(
      alarm::AlarmSpec::repeating("bell", alarm::AppId{2}, RepeatMode::kStatic,
                                  Duration::seconds(600), p.alpha,
                                  std::max(p.alpha, p.beta)),
      at(630),
      task(ComponentSet{Component::kSpeaker, Component::kVibrator},
           Duration::seconds(1)));

  const TimePoint horizon = at(3600 * 2);
  sim_.run_until(horizon);

  const Duration latency = model_.wake_latency;
  ASSERT_FALSE(deliveries_.empty());
  for (const auto& r : deliveries_) {
    // Never early.
    EXPECT_GE(r.delivered, r.nominal) << r.tag;
    if (r.was_perceptible) {
      // Perceptible: inside the window, modulo the wake latency the paper
      // itself observed.
      EXPECT_LE(r.delivered, r.window.end() + latency) << r.tag;
    } else {
      // Imperceptible: inside the grace interval.
      const TimePoint grace_end =
          r.nominal + r.repeat_interval * p.beta + latency;
      EXPECT_LE(r.delivered, grace_end) << r.tag;
    }
  }

  // Gap bounds (slack covers the wake latency).
  const auto violations = audit.check_bounds(p.beta, 0.02);
  EXPECT_TRUE(violations.empty()) << violations.size() << " gap violations, first: "
                                  << (violations.empty() ? "" : violations[0].tag);

  // Static repeating alarms deliver once per interval: one delivery per
  // grid slot between the first nominal and the horizon (+-2 for edge
  // slots whose grace straddles the horizon).
  for (const auto& [id, stats] : audit.stats()) {
    if (modes.count(id) == 0 || modes.at(id) != RepeatMode::kStatic) continue;
    const auto expected =
        (horizon - firsts.at(id)).us() / repeats.at(id).us() + 1;
    EXPECT_NEAR(static_cast<double>(stats.deliveries),
                static_cast<double>(expected), 2.0)
        << stats.tag;
  }

  // The bell always stays perceptible after profiling and in-window.
  const auto bell_recs = deliveries_of(bell);
  ASSERT_GE(bell_recs.size(), 2u);
  for (std::size_t i = 1; i < bell_recs.size(); ++i) {
    EXPECT_TRUE(bell_recs[i].was_perceptible);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GuaranteeSweep, DeliveryGuaranteeTest,
    ::testing::Values(
        PropertyCase{"native", 0.75, 0.96, 1}, PropertyCase{"native", 0.0, 0.96, 2},
        PropertyCase{"native", 0.5, 0.75, 3}, PropertyCase{"simty", 0.75, 0.96, 1},
        PropertyCase{"simty", 0.0, 0.96, 2}, PropertyCase{"simty", 0.5, 0.75, 3},
        PropertyCase{"simty", 0.0, 0.5, 4}, PropertyCase{"simty", 0.25, 0.9, 5},
        PropertyCase{"simty", 0.75, 0.96, 6}, PropertyCase{"simty", 0.75, 0.96, 7},
        PropertyCase{"exact", 0.75, 0.96, 1}, PropertyCase{"exact", 0.0, 0.96, 2},
        PropertyCase{"fixed", 0.75, 0.96, 1}, PropertyCase{"fixed", 0.0, 0.96, 2},
        PropertyCase{"fixed", 0.5, 0.8, 3}),
    case_name);

}  // namespace
}  // namespace simty
