#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace simty {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  // m2_ is non-negative in exact arithmetic (Welford add, Chan merge — the
  // class never uses the cancellation-prone sum-of-squares form), but the
  // final rounding of delta * (x - mean_) can leave it a few ulps below
  // zero when the true variance is ~0 relative to the mean. Clamp so
  // variance()/stddev() never go negative/NaN.
  return std::max(m2_, 0.0) / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

std::string OnlineStats::to_string(int decimals) const {
  return str_format("%.*f ± %.*f", decimals, mean(), decimals, ci95_halfwidth());
}

}  // namespace simty
