#include "alarm/alarm.hpp"

#include <gtest/gtest.h>

namespace simty::alarm {
namespace {

TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

AlarmSpec wifi_sync() {
  return AlarmSpec::repeating("line.sync", AppId{1}, RepeatMode::kDynamic,
                              Duration::seconds(200), 0.75, 0.96);
}

TEST(AlarmSpec, RepeatingFactoryComputesIntervals) {
  const AlarmSpec s = wifi_sync();
  EXPECT_EQ(s.repeat_interval, Duration::seconds(200));
  EXPECT_EQ(s.window_length, Duration::seconds(150));   // alpha = 0.75
  EXPECT_EQ(s.grace_length, Duration::seconds(192));    // beta = 0.96
  EXPECT_EQ(s.mode, RepeatMode::kDynamic);
}

TEST(AlarmSpec, OneShotFactory) {
  const AlarmSpec s = AlarmSpec::one_shot("reminder", AppId{2}, Duration::seconds(30));
  EXPECT_EQ(s.mode, RepeatMode::kOneShot);
  EXPECT_EQ(s.repeat_interval, Duration::zero());
  EXPECT_EQ(s.window_length, Duration::seconds(30));
}

TEST(AlarmSpec, ValidationRejectsBadShapes) {
  // Grace smaller than window violates §3.1.2.
  AlarmSpec s = wifi_sync();
  s.grace_length = Duration::seconds(100);
  EXPECT_THROW(s.validate(), std::logic_error);

  // Grace must stay below the repeating interval.
  s = wifi_sync();
  s.grace_length = Duration::seconds(200);
  EXPECT_THROW(s.validate(), std::logic_error);

  // Window must stay below the repeating interval.
  s = wifi_sync();
  s.window_length = Duration::seconds(250);
  EXPECT_THROW(s.validate(), std::logic_error);

  // One-shot alarms carry no repeating interval.
  s = AlarmSpec::one_shot("x", AppId{1}, Duration::seconds(5));
  s.repeat_interval = Duration::seconds(10);
  EXPECT_THROW(s.validate(), std::logic_error);

  // Empty tags are rejected.
  s = wifi_sync();
  s.tag.clear();
  EXPECT_THROW(s.validate(), std::logic_error);

  // Alpha = 0 (zero-length window) is legal — Table 3 is full of them.
  EXPECT_NO_THROW(AlarmSpec::repeating("fb", AppId{3}, RepeatMode::kDynamic,
                                       Duration::seconds(60), 0.0, 0.96));
}

TEST(Alarm, WindowAndGraceIntervalsStartAtNominal) {
  Alarm a(AlarmId{1}, wifi_sync(), at(1000));
  EXPECT_EQ(a.window_interval(),
            (TimeInterval{at(1000), at(1150)}));
  // Newly registered -> hardware unknown -> perceptible -> grace == window.
  EXPECT_TRUE(a.perceptible());
  EXPECT_EQ(a.grace_interval(), a.window_interval());

  a.record_delivery(hw::ComponentSet{hw::Component::kWifi}, Duration::seconds(3));
  EXPECT_FALSE(a.perceptible());
  EXPECT_EQ(a.grace_interval(), (TimeInterval{at(1000), at(1192)}));
}

TEST(Alarm, PerceptibilityRules) {
  // Footnote 5: one-shot alarms are always perceptible.
  Alarm oneshot(AlarmId{1}, AlarmSpec::one_shot("x", AppId{1}, Duration::seconds(5)),
                at(10));
  EXPECT_TRUE(oneshot.perceptible());
  oneshot.record_delivery(hw::ComponentSet{hw::Component::kWifi}, Duration::seconds(1));
  EXPECT_TRUE(oneshot.perceptible());

  // Repeating alarms become imperceptible once known to wakelock only
  // imperceptible hardware...
  Alarm rep(AlarmId{2}, wifi_sync(), at(10));
  EXPECT_TRUE(rep.perceptible());
  rep.record_delivery(hw::ComponentSet{hw::Component::kWifi}, Duration::seconds(3));
  EXPECT_FALSE(rep.perceptible());

  // ...and stay perceptible when they use the speaker/vibrator.
  Alarm bell(AlarmId{3},
             AlarmSpec::repeating("clock", AppId{2}, RepeatMode::kStatic,
                                  Duration::seconds(1800), 0.0, 0.96),
             at(10));
  bell.record_delivery(
      hw::ComponentSet{hw::Component::kSpeaker, hw::Component::kVibrator},
      Duration::seconds(1));
  EXPECT_TRUE(bell.perceptible());

  // An empty learned set (CPU-only task) is imperceptible.
  Alarm quiet(AlarmId{4}, wifi_sync(), at(10));
  quiet.record_delivery(hw::ComponentSet::none(), Duration::zero());
  EXPECT_FALSE(quiet.perceptible());
}

TEST(Alarm, RecordDeliveryUpdatesProfile) {
  Alarm a(AlarmId{1}, wifi_sync(), at(10));
  EXPECT_FALSE(a.hardware_known());
  EXPECT_EQ(a.delivery_count(), 0u);

  a.record_delivery(hw::ComponentSet{hw::Component::kWifi}, Duration::seconds(4));
  EXPECT_TRUE(a.hardware_known());
  EXPECT_EQ(a.hardware(), (hw::ComponentSet{hw::Component::kWifi}));
  EXPECT_EQ(a.delivery_count(), 1u);
  EXPECT_EQ(a.expected_hold(), Duration::seconds(4));

  // EMA drifts toward recent holds.
  a.record_delivery(hw::ComponentSet{hw::Component::kWifi}, Duration::seconds(8));
  EXPECT_EQ(a.expected_hold(), Duration::seconds(5));  // (4*3 + 8)/4
}

TEST(Alarm, RescheduleMovesNominal) {
  Alarm a(AlarmId{1}, wifi_sync(), at(10));
  a.reschedule(at(210));
  EXPECT_EQ(a.nominal(), at(210));
  EXPECT_EQ(a.window_interval().start(), at(210));
}

TEST(Alarm, ZeroWindowAlarmHasPointWindow) {
  Alarm a(AlarmId{1},
          AlarmSpec::repeating("fb", AppId{1}, RepeatMode::kDynamic,
                               Duration::seconds(60), 0.0, 0.96),
          at(60));
  EXPECT_EQ(a.window_interval(), TimeInterval::point(at(60)));
  EXPECT_FALSE(a.window_interval().is_empty());
}

TEST(AlarmEnums, Names) {
  EXPECT_STREQ(to_string(AlarmKind::kWakeup), "wakeup");
  EXPECT_STREQ(to_string(AlarmKind::kNonWakeup), "non-wakeup");
  EXPECT_STREQ(to_string(RepeatMode::kStatic), "static");
  EXPECT_STREQ(to_string(RepeatMode::kDynamic), "dynamic");
  EXPECT_STREQ(to_string(RepeatMode::kOneShot), "one-shot");
}

}  // namespace
}  // namespace simty::alarm
