#pragma once
// Fixed-interval alignment: the "immediate remedy" of ref [5] that the
// paper's introduction cites as evidence for centralized wakeup management
// ("allows a smartphone to be awakened only at a fixed time interval by
// forcibly aligning background activities within each interval").
//
// The timeline is cut into slots of length T; an alarm may only join
// entries whose delivery falls in its own slot, so wakeups quantize to at
// most a handful per slot. Unlike the original remedy, this implementation
// refuses to break delivery guarantees: joins still require grace overlap
// (window overlap when a perceptible party is involved), so alarms whose
// grace cannot reach a slot-mate get their own entry. It is the crude
// time-only strawman between NATIVE and SIMTY.

#include "alarm/policy.hpp"

namespace simty::alarm {

/// Slot-quantized alignment with a configurable interval.
///
/// Indexed path: the applicability guard rail requires grace overlap, so
/// grace-overlap candidates are a superset of the joinable set; selection
/// re-applies the slot and applicability checks over candidates only.
class FixedIntervalPolicy : public AlignmentPolicy {
 public:
  explicit FixedIntervalPolicy(Duration interval);

  std::string name() const override;

  Duration interval() const { return interval_; }

  std::optional<std::size_t> select_batch(
      const Alarm& alarm,
      const std::vector<std::unique_ptr<Batch>>& queue) const override;

  std::optional<CandidateQuery> candidate_query(
      const Alarm& alarm) const override;

  std::optional<std::size_t> select_among(
      const Alarm& alarm, const std::vector<std::unique_ptr<Batch>>& queue,
      const std::vector<std::size_t>& candidates) const override;

 private:
  std::int64_t slot_of(TimePoint t) const;

  /// The join condition: same slot as the alarm's nominal, and applicable
  /// per the §3.2.1 guard rails.
  bool joinable(std::int64_t slot, const TimeInterval& window,
                const TimeInterval& grace, bool alarm_perceptible,
                const Batch& entry) const;

  Duration interval_;
};

}  // namespace simty::alarm
