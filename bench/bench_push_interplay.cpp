// Ablation A8: GCM push traffic vs alarm alignment (paper footnote 1 calls
// the two mechanisms orthogonal). Adds push streams of increasing rate to
// the light workload and measures both policies. Expectations: push wakes
// cost the same under both policies (alignment cannot touch externally-
// triggered wakeups), so SIMTY's relative saving shrinks as pushes
// dominate — quantifying how far the orthogonality claim carries.

#include <cstdio>
#include <memory>

#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "apps/workload.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "gcm/gcm_service.hpp"
#include "hw/device.hpp"
#include "hw/power_bus.hpp"
#include "hw/rtc.hpp"
#include "hw/wakelock.hpp"
#include "power/energy_accounting.hpp"
#include "sim/simulator.hpp"

using namespace simty;

namespace {

struct Outcome {
  double total_j = 0.0;
  double pushes = 0.0;
};

Outcome run(bool use_simty, Duration push_mean, std::uint64_t seed) {
  sim::Simulator sim;
  hw::PowerBus bus;
  power::EnergyAccountant accountant;
  bus.add_listener(&accountant);
  const hw::PowerModel model = hw::PowerModel::nexus5();
  hw::Device device(sim, model, bus);
  hw::Rtc rtc(sim, device);
  hw::WakelockManager wakelocks(sim, model, bus);
  std::unique_ptr<alarm::AlignmentPolicy> policy;
  if (use_simty) policy = std::make_unique<alarm::SimtyPolicy>();
  else policy = std::make_unique<alarm::NativePolicy>();
  alarm::AlarmManager manager(sim, device, rtc, wakelocks, std::move(policy));

  apps::WorkloadConfig wc;
  wc.seed = seed;
  apps::Workload workload = apps::Workload::light(wc);
  workload.deploy(sim, manager);

  const TimePoint horizon = TimePoint::origin() + Duration::hours(3);

  gcm::GcmService gcmsvc(sim, device, wakelocks, manager, gcm::GcmConfig{});
  gcmsvc.connect();
  gcmsvc.subscribe("chat", [](const gcm::PushMessage&) {});
  gcmsvc.subscribe("mail", [](const gcm::PushMessage&) {});
  std::unique_ptr<gcm::PushServer> server;
  if (push_mean > Duration::zero()) {
    server = std::make_unique<gcm::PushServer>(
        sim, gcmsvc,
        std::vector<gcm::TopicTraffic>{{"chat", push_mean, 2048},
                                       {"mail", push_mean * 3, 8192}},
        Rng(seed, 0x6C6));
    server->start(horizon);
  }

  sim.run_until(horizon);
  device.finalize(horizon);
  wakelocks.finalize(horizon);
  accountant.finalize(horizon);
  return Outcome{accountant.breakdown().total().joules_f(),
                 server ? static_cast<double>(server->sent()) : 0.0};
}

Outcome averaged(bool use_simty, Duration push_mean) {
  Outcome sum;
  const int reps = 3;
  for (int i = 0; i < reps; ++i) {
    const Outcome o = run(use_simty, push_mean, static_cast<std::uint64_t>(i + 1));
    sum.total_j += o.total_j / reps;
    sum.pushes += o.pushes / reps;
  }
  return sum;
}

}  // namespace

int main() {
  TextTable t("Push traffic vs alignment (light workload + GCM, 3 h, 3 seeds)");
  t.set_header({"push mean gap", "pushes", "NATIVE (J)", "SIMTY (J)",
                "SIMTY saving"});
  const Duration gaps[] = {Duration::zero(), Duration::seconds(1200),
                           Duration::seconds(600), Duration::seconds(300),
                           Duration::seconds(120)};
  for (const Duration gap : gaps) {
    const Outcome native = averaged(false, gap);
    const Outcome simty = averaged(true, gap);
    t.add_row({gap.is_zero() ? "off" : gap.to_string(),
               str_format("%.0f", native.pushes), str_format("%.1f", native.total_j),
               str_format("%.1f", simty.total_j),
               percent(1.0 - simty.total_j / native.total_j)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
