file(REMOVE_RECURSE
  "CMakeFiles/bench_push_interplay.dir/bench_push_interplay.cpp.o"
  "CMakeFiles/bench_push_interplay.dir/bench_push_interplay.cpp.o.d"
  "bench_push_interplay"
  "bench_push_interplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_push_interplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
