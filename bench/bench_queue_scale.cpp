// Queue-scaling benchmark: indexed batch selection vs the linear scan.
//
// Drives AlarmManager insert, dissolve (re-registration), and rebatch churn
// at 1e2 / 1e3 / 1e4 resident alarms under the SIMTY policy, once with the
// BatchIndex candidate path (the default) and once with
// set_indexed_selection(false) forcing every placement through the linear
// select_batch reference. Alarm density per simulated second is held
// constant across scales, so the overlap count k stays roughly flat while
// n grows — exactly the regime where O(log n + k) beats O(n). Both runs
// are generated from the same seed and must end in identical queue states
// (checked, since the indexed path is exact by contract).
//
// `--json <path>` writes BENCH_queue_scale.json-style records; the checked-
// in bench/BENCH_queue_scale.json baseline is diffed by CI via
// tools/check_bench_baseline.sh, which fails when a speedup record
// collapses.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "alarm/alarm_manager.hpp"
#include "alarm/simty_policy.hpp"
#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "hw/power_bus.hpp"
#include "hw/power_model.hpp"

namespace simty {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct ScaleResult {
  double insert_ms = 0.0;    // n registrations into a growing queue
  double dissolve_ms = 0.0;  // n re-registrations (dissolve + reinsert)
  double rebatch_ms = 0.0;   // full-queue realignments
  int rebatches = 0;
  // Final-state fingerprint for the indexed-vs-linear identity check.
  std::size_t wakeup_entries = 0;
  std::int64_t head_us = 0;
};

ScaleResult run_scale(int n, bool indexed) {
  sim::Simulator sim;
  hw::PowerModel model = hw::PowerModel::nexus5();
  hw::PowerBus bus;
  hw::Device device(sim, model, bus);
  hw::Rtc rtc(sim, device);
  hw::WakelockManager wakelocks(sim, model, bus);
  alarm::AlarmManager manager(sim, device, rtc, wakelocks,
                              std::make_unique<alarm::SimtyPolicy>());
  manager.set_indexed_selection(indexed);

  // Constant temporal density: n alarms spread over n * 10 simulated
  // seconds, repeat intervals (and hence grace lengths) independent of n.
  const std::int64_t span_s = static_cast<std::int64_t>(n) * 10;
  Rng rng(2026);
  ScaleResult out;
  std::vector<alarm::AlarmId> ids;
  ids.reserve(static_cast<std::size_t>(n));

  auto start = Clock::now();
  for (int i = 0; i < n; ++i) {
    const Duration repeat =
        Duration::seconds(600 * (1 + static_cast<int>(rng.next_below(6))));
    alarm::AlarmSpec spec = alarm::AlarmSpec::repeating(
        "scale." + std::to_string(i), alarm::AppId{static_cast<std::uint32_t>(i % 64)},
        alarm::RepeatMode::kStatic, repeat, 0.1, 0.5);
    const TimePoint nominal =
        TimePoint::origin() +
        Duration::seconds(1 + static_cast<std::int64_t>(
                                  rng.next_below(static_cast<std::uint32_t>(span_s))));
    ids.push_back(manager.register_alarm(
        spec, nominal, [](const alarm::Alarm&, TimePoint) { return alarm::TaskSpec{}; }));
  }
  out.insert_ms = ms_since(start);

  start = Clock::now();
  for (int i = 0; i < n; ++i) {
    const alarm::AlarmId id = ids[rng.next_below(static_cast<std::uint32_t>(ids.size()))];
    manager.set(id, TimePoint::origin() +
                        Duration::seconds(1 + static_cast<std::int64_t>(rng.next_below(
                                                  static_cast<std::uint32_t>(span_s)))));
  }
  out.dissolve_ms = ms_since(start);

  // Keep total rebatched inserts comparable across scales.
  out.rebatches = n >= 10000 ? 2 : (n >= 1000 ? 5 : 20);
  start = Clock::now();
  for (int r = 0; r < out.rebatches; ++r) manager.rebatch_all();
  out.rebatch_ms = ms_since(start);

  out.wakeup_entries = manager.queue(alarm::AlarmKind::kWakeup).size();
  out.head_us = manager.queue(alarm::AlarmKind::kWakeup).empty()
                    ? 0
                    : manager.queue(alarm::AlarmKind::kWakeup)
                          .front()
                          ->delivery_time()
                          .us();
  return out;
}

}  // namespace
}  // namespace simty

int main(int argc, char** argv) {
  using namespace simty;

  const auto json_path = bench::json_path_from_args(argc, argv);
  std::vector<bench::BenchRecord> records;
  TextTable t;
  t.set_header({"n", "workload", "impl", "wall (ms)", "inserts/sec"});

  const auto record = [&](int n, const std::string& workload, const std::string& impl,
                          double wall_ms, double ops) {
    const double rate = ops / (wall_ms / 1e3);
    t.add_row({str_format("%d", n), workload, impl, str_format("%.1f", wall_ms),
               str_format("%.0f", rate)});
    records.push_back(
        {workload + "/n=" + std::to_string(n) + "/" + impl, wall_ms, rate});
  };

  bool identical = true;
  double headline = 0.0;
  for (const int n : {100, 1000, 10000}) {
    const ScaleResult idx = run_scale(n, /*indexed=*/true);
    const ScaleResult lin = run_scale(n, /*indexed=*/false);
    identical = identical && idx.wakeup_entries == lin.wakeup_entries &&
                idx.head_us == lin.head_us;

    record(n, "insert", "indexed", idx.insert_ms, n);
    record(n, "insert", "linear", lin.insert_ms, n);
    record(n, "dissolve", "indexed", idx.dissolve_ms, n);
    record(n, "dissolve", "linear", lin.dissolve_ms, n);
    const double rebatch_inserts = static_cast<double>(n) * idx.rebatches;
    record(n, "rebatch", "indexed", idx.rebatch_ms, rebatch_inserts);
    record(n, "rebatch", "linear", lin.rebatch_ms, rebatch_inserts);

    // Headline ratio: insert + rebatch churn, linear over indexed.
    const double speedup =
        (lin.insert_ms + lin.rebatch_ms) / (idx.insert_ms + idx.rebatch_ms);
    records.push_back({"speedup/insert+rebatch/n=" + std::to_string(n),
                       idx.insert_ms + idx.rebatch_ms, speedup});
    if (n == 10000) headline = speedup;
  }

  std::printf("Queue scaling: BatchIndex candidate path vs linear select_batch\n");
  std::printf("%s\n", t.render().c_str());
  std::printf("insert+rebatch speedup at n=10000 (linear vs indexed): %.2fx\n",
              headline);
  if (!identical) {
    std::fprintf(stderr, "error: indexed and linear runs diverged\n");
    return 1;
  }

  if (json_path) {
    if (!bench::write_bench_json(*json_path, records)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("wrote %zu records to %s\n", records.size(), json_path->c_str());
  }
  return 0;
}
