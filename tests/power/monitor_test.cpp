#include "power/monitor.hpp"

#include <gtest/gtest.h>

namespace simty::power {
namespace {

TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

TEST(PowerMonitor, IntegratesStepWaveform) {
  PowerMonitor m;
  m.on_device_state(at(0), hw::DeviceState::kAsleep, Power::milliwatts(25));
  m.on_device_state(at(10), hw::DeviceState::kAwake, Power::milliwatts(200));
  m.on_device_state(at(15), hw::DeviceState::kAsleep, Power::milliwatts(25));
  m.finalize(at(20));
  // 10 s * 25 + 5 s * 200 + 5 s * 25 = 1375 mJ.
  EXPECT_NEAR(m.total_energy().mj(), 1375.0, 1e-9);
  EXPECT_NEAR(m.average_power().mw(), 1375.0 / 20.0, 1e-9);
  EXPECT_NEAR(m.peak_power().mw(), 200.0, 1e-9);
}

TEST(PowerMonitor, SumsComponentRailsOntoDeviceRail) {
  PowerMonitor m;
  m.on_device_state(at(0), hw::DeviceState::kAwake, Power::milliwatts(200));
  m.on_component_power(at(0), hw::Component::kWifi, true, Power::milliwatts(250));
  m.on_component_power(at(2), hw::Component::kWps, true, Power::milliwatts(60));
  m.on_component_power(at(4), hw::Component::kWifi, false, Power::zero());
  m.finalize(at(5));
  // [0,2): 450, [2,4): 510, [4,5): 260 -> 900+1020+260 = 2180 mJ.
  EXPECT_NEAR(m.total_energy().mj(), 2180.0, 1e-9);
  EXPECT_NEAR(m.peak_power().mw(), 510.0, 1e-9);
}

TEST(PowerMonitor, ImpulsesAddedExactly) {
  PowerMonitor m;
  m.on_device_state(at(0), hw::DeviceState::kAsleep, Power::milliwatts(25));
  m.on_impulse(at(3), Energy::millijoules(38), hw::ImpulseKind::kWakeTransition, "x");
  m.on_impulse(at(7), Energy::millijoules(952),
               hw::ImpulseKind::kComponentActivation, "wps");
  m.finalize(at(10));
  EXPECT_NEAR(m.total_energy().mj(), 250.0 + 990.0, 1e-9);
  EXPECT_EQ(m.impulse_count(), 2u);
}

TEST(PowerMonitor, SampledEnergyConvergesToExact) {
  PowerMonitor m;
  m.on_device_state(at(0), hw::DeviceState::kAsleep, Power::milliwatts(25));
  // A burst the sampler must not miss entirely.
  m.on_device_state(at(10), hw::DeviceState::kAwake, Power::milliwatts(200));
  m.on_device_state(at(11), hw::DeviceState::kAsleep, Power::milliwatts(25));
  m.finalize(at(60));
  const double exact = m.total_energy().mj();
  // At the Monsoon's 5 kHz the zero-order-hold error is negligible.
  EXPECT_NEAR(m.sampled_energy(5000.0).mj(), exact, exact * 0.001);
  // At 0.2 Hz (5 s period) the 1 s burst aliases badly — quantization is
  // visible but bounded by one period's worth of the burst amplitude.
  const double coarse = m.sampled_energy(0.2).mj();
  EXPECT_NEAR(coarse, exact, 175.0 * 5.0);
}

TEST(PowerMonitor, WaveformDeduplicatesLevels) {
  PowerMonitor m;
  m.on_device_state(at(0), hw::DeviceState::kAsleep, Power::milliwatts(25));
  // Same level again: no new step.
  m.on_device_state(at(5), hw::DeviceState::kAsleep, Power::milliwatts(25));
  m.on_device_state(at(10), hw::DeviceState::kAwake, Power::milliwatts(200));
  m.finalize(at(20));
  EXPECT_EQ(m.waveform().size(), 2u);
}

TEST(PowerMonitor, SameInstantChangesCoalesce) {
  PowerMonitor m;
  m.on_device_state(at(0), hw::DeviceState::kAwake, Power::milliwatts(200));
  m.on_component_power(at(0), hw::Component::kWifi, true, Power::milliwatts(250));
  m.finalize(at(1));
  ASSERT_EQ(m.waveform().size(), 1u);
  EXPECT_NEAR(m.waveform()[0].level.mw(), 450.0, 1e-9);
}

TEST(PowerMonitor, WaveformCsvRendersAndDecimates) {
  PowerMonitor m;
  for (int i = 0; i < 100; ++i) {
    m.on_device_state(at(i), i % 2 == 0 ? hw::DeviceState::kAsleep
                                        : hw::DeviceState::kAwake,
                      Power::milliwatts(i % 2 == 0 ? 25 : 200));
  }
  m.finalize(at(100));
  const std::string full = m.waveform_csv();
  EXPECT_EQ(full.find("t_s,power_mw\n"), 0u);
  // 100 steps + header.
  std::size_t lines = 0;
  for (const char c : full) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 101u);
  // Decimated to ~10 rows, always keeping the last step.
  const std::string small = m.waveform_csv(10);
  lines = 0;
  for (const char c : small) {
    if (c == '\n') ++lines;
  }
  EXPECT_LE(lines, 12u);
  EXPECT_NE(small.find("99.000000"), std::string::npos);
  // Empty monitor renders just the header.
  PowerMonitor empty;
  empty.finalize(at(1));
  EXPECT_EQ(empty.waveform_csv(), "t_s,power_mw\n");
}

TEST(PowerMonitor, QueriesRequireFinalize) {
  PowerMonitor m;
  m.on_device_state(at(0), hw::DeviceState::kAsleep, Power::milliwatts(25));
  EXPECT_THROW(m.total_energy(), std::logic_error);
  EXPECT_THROW(m.sampled_energy(5000.0), std::logic_error);
  EXPECT_THROW(m.average_power(), std::logic_error);
}

TEST(PowerMonitor, InvalidSampleRateRejected) {
  PowerMonitor m;
  m.on_device_state(at(0), hw::DeviceState::kAsleep, Power::milliwatts(25));
  m.finalize(at(1));
  EXPECT_THROW(m.sampled_energy(0.0), std::logic_error);
  EXPECT_THROW(m.sampled_energy(-1.0), std::logic_error);
}

}  // namespace
}  // namespace simty::power
