#include "alarm/native_policy.hpp"

namespace simty::alarm {

std::optional<std::size_t> NativePolicy::select_batch(
    const Alarm& alarm, const std::vector<std::unique_ptr<Batch>>& queue) const {
  const TimeInterval window = alarm.window_interval();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    // The entry's window attribute is the intersection of its members'
    // windows, so overlapping it overlaps every member's window — the
    // "every alarm's window interval overlaps with that of the new alarm"
    // condition of §2.1.
    if (queue[i]->window_interval().overlaps(window)) return i;
  }
  return std::nullopt;
}

}  // namespace simty::alarm
