// Ablation A6: the fixed-interval "immediate remedy" of ref [5] that the
// paper's intro cites as motivation for centralized wakeup management.
// Sweeps the slot length and brackets FIXED between NATIVE (too timid) and
// SIMTY (similarity-aware). Expectation: FIXED recovers much of the wakeup
// reduction at coarse slots but never matches SIMTY's hardware-aware
// alignment, and its benefit collapses at fine slots.

#include <cstdio>
#include <memory>

#include "alarm/fixed_interval_policy.hpp"
#include "alarm/native_policy.hpp"
#include "alarm/simty_policy.hpp"
#include "apps/workload.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "hw/device.hpp"
#include "hw/power_bus.hpp"
#include "hw/rtc.hpp"
#include "hw/wakelock.hpp"
#include "power/energy_accounting.hpp"
#include "sim/simulator.hpp"

using namespace simty;

namespace {

struct Outcome {
  std::string name;
  double total_j = 0.0;
  double wakeups = 0.0;
};

Outcome run(std::unique_ptr<alarm::AlignmentPolicy> policy, std::uint64_t seed) {
  sim::Simulator sim;
  hw::PowerBus bus;
  power::EnergyAccountant accountant;
  bus.add_listener(&accountant);
  const hw::PowerModel model = hw::PowerModel::nexus5();
  hw::Device device(sim, model, bus);
  hw::Rtc rtc(sim, device);
  hw::WakelockManager wakelocks(sim, model, bus);
  alarm::AlarmManager manager(sim, device, rtc, wakelocks, std::move(policy));

  apps::WorkloadConfig wc;
  wc.seed = seed;
  apps::Workload workload = apps::Workload::heavy(wc);
  workload.deploy(sim, manager);

  const TimePoint horizon = TimePoint::origin() + Duration::hours(3);
  sim.run_until(horizon);
  device.finalize(horizon);
  wakelocks.finalize(horizon);
  accountant.finalize(horizon);
  return Outcome{manager.policy().name(),
                 accountant.breakdown().total().joules_f(),
                 static_cast<double>(device.wakeup_count())};
}

Outcome averaged(const std::function<std::unique_ptr<alarm::AlignmentPolicy>()>& make) {
  Outcome sum;
  const int reps = 3;
  for (int i = 0; i < reps; ++i) {
    const Outcome o = run(make(), static_cast<std::uint64_t>(i + 1));
    sum.name = o.name;
    sum.total_j += o.total_j / reps;
    sum.wakeups += o.wakeups / reps;
  }
  return sum;
}

}  // namespace

int main() {
  std::vector<Outcome> outcomes;
  outcomes.push_back(averaged([] { return std::make_unique<alarm::NativePolicy>(); }));
  for (const std::int64_t slot_s : {30, 60, 120, 300, 600}) {
    outcomes.push_back(averaged([slot_s] {
      return std::make_unique<alarm::FixedIntervalPolicy>(Duration::seconds(slot_s));
    }));
  }
  outcomes.push_back(averaged([] { return std::make_unique<alarm::SimtyPolicy>(); }));

  const double native_total = outcomes.front().total_j;
  TextTable t("Fixed-interval remedy (ref [5]) vs NATIVE and SIMTY — heavy workload, 3 h");
  t.set_header({"Policy", "total (J)", "saving vs NATIVE", "CPU wakeups"});
  for (const Outcome& o : outcomes) {
    t.add_row({o.name, str_format("%.1f", o.total_j),
               percent(1.0 - o.total_j / native_total),
               str_format("%.0f", o.wakeups)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
