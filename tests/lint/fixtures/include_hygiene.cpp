// Fixture: include-hygiene rule — parent-relative includes and duplicate
// includes are flagged; repo-relative project includes are the idiom.
#include "../common/time.hpp"  // LINT-EXPECT: include-hygiene
#include <vector>
#include <vector>  // LINT-EXPECT: include-hygiene
#include "common/stats.hpp"
#include "hw/../common/units.hpp"  // simty-lint: allow(include-hygiene)

namespace fixture {}
