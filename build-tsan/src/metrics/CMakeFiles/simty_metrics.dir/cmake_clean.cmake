file(REMOVE_RECURSE
  "CMakeFiles/simty_metrics.dir/delay_stats.cpp.o"
  "CMakeFiles/simty_metrics.dir/delay_stats.cpp.o.d"
  "CMakeFiles/simty_metrics.dir/histogram.cpp.o"
  "CMakeFiles/simty_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/simty_metrics.dir/interval_audit.cpp.o"
  "CMakeFiles/simty_metrics.dir/interval_audit.cpp.o.d"
  "CMakeFiles/simty_metrics.dir/wakeup_breakdown.cpp.o"
  "CMakeFiles/simty_metrics.dir/wakeup_breakdown.cpp.o.d"
  "libsimty_metrics.a"
  "libsimty_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simty_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
