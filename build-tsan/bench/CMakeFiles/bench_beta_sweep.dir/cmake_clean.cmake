file(REMOVE_RECURSE
  "CMakeFiles/bench_beta_sweep.dir/bench_beta_sweep.cpp.o"
  "CMakeFiles/bench_beta_sweep.dir/bench_beta_sweep.cpp.o.d"
  "bench_beta_sweep"
  "bench_beta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
