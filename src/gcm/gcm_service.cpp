#include "gcm/gcm_service.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace simty::gcm {

GcmService::GcmService(sim::Simulator& sim, hw::Device& device,
                       hw::WakelockManager& wakelocks,
                       alarm::AlarmManager& manager, GcmConfig config,
                       const net::WifiLink* link)
    : sim_(sim), device_(device), wakelocks_(wakelocks), manager_(manager),
      config_(config), link_(link) {
  SIMTY_CHECK(config_.heartbeat_interval > Duration::zero());
}

void GcmService::connect() {
  SIMTY_CHECK_MSG(!heartbeat_id_.has_value(), "GCM already connected");
  // The keepalive is an ordinary imperceptible dynamic-repeating alarm: it
  // re-anchors on each actual exchange and is aligned like any app sync.
  heartbeat_id_ = manager_.register_alarm(
      alarm::AlarmSpec::repeating("gcm.heartbeat", alarm::AppId{9000},
                                  alarm::RepeatMode::kDynamic,
                                  config_.heartbeat_interval, 0.75, 0.96),
      sim_.now() + config_.heartbeat_interval,
      [this](const alarm::Alarm&, TimePoint) {
        ++heartbeats_;
        return alarm::TaskSpec{hw::ComponentSet{hw::Component::kWifi},
                               config_.heartbeat_hold};
      });
}

void GcmService::subscribe(std::string topic, PushHandler handler) {
  SIMTY_CHECK(static_cast<bool>(handler));
  SIMTY_CHECK_MSG(!handlers_.contains(topic), "topic already subscribed: " + topic);
  handlers_.emplace(std::move(topic), std::move(handler));
}

void GcmService::on_incoming(PushMessage message) {
  device_.request_awake(hw::WakeReason::kExternalPush, [this, message] {
    const auto it = handlers_.find(message.topic);
    if (it == handlers_.end()) {
      ++dropped_;
      return;
    }
    // Fetch session: CPU held for the payload transfer, radio wakelocked.
    const Duration fetch = link_ != nullptr
                               ? link_->transfer_time(message.payload_bytes)
                               : config_.default_fetch_hold;
    device_.acquire_cpu_lock();
    const hw::WakelockId lock = wakelocks_.acquire(hw::Component::kWifi, "gcm.fetch");
    sim_.schedule_after(
        fetch,
        [this, lock, message, handler = &it->second] {
          wakelocks_.try_release(lock);  // a guardian may have revoked it
          ++delivered_;
          (*handler)(message);
          device_.release_cpu_lock();
        },
        sim::EventPriority::kFramework, "gcm-fetch-complete");
  });
}

PushServer::PushServer(sim::Simulator& sim, GcmService& service,
                       std::vector<TopicTraffic> traffic, Rng rng)
    : sim_(sim), service_(service), traffic_(std::move(traffic)), rng_(rng) {
  for (const TopicTraffic& t : traffic_) {
    SIMTY_CHECK_MSG(t.mean_gap > Duration::zero(),
                    "push topic needs a positive mean gap: " + t.topic);
  }
}

void PushServer::start(TimePoint horizon) {
  horizon_ = horizon;
  for (std::size_t i = 0; i < traffic_.size(); ++i) spawn(i);
}

void PushServer::spawn(std::size_t topic_index) {
  const TopicTraffic& t = traffic_[topic_index];
  const Duration gap = Duration::from_seconds(rng_.exponential(t.mean_gap.seconds_f()));
  const TimePoint when = sim_.now() + std::max(gap, Duration::seconds(1));
  if (when >= horizon_) return;
  sim_.schedule_at(
      when,
      [this, topic_index] {
        const TopicTraffic& topic = traffic_[topic_index];
        ++sent_;
        service_.on_incoming(
            PushMessage{topic.topic, topic.payload_bytes, sim_.now()});
        spawn(topic_index);
      },
      sim::EventPriority::kApp, "gcm-push");
}

}  // namespace simty::gcm
