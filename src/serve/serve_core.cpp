#include "serve/serve_core.hpp"

#include <utility>

#include "common/check.hpp"
#include "exp/run.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

exp::ExperimentConfig to_config(const Request& req) {
  exp::ExperimentConfig c;
  c.policy = req.policy;
  c.workload = req.workload;
  c.duration = req.duration;
  c.seed = req.seed;
  c.doze = req.doze;
  c.system_alarms = req.system_alarms;
  c.beta_switch = req.beta_switch;
  return c;
}

Response to_response(const exp::RunResult& r) {
  Response resp;
  resp.policy_name = r.policy_name;
  resp.total_j = r.energy.total().joules_f();
  resp.awake_total_j = r.energy.awake_total().joules_f();
  resp.average_power_mw = r.average_power_mw;
  resp.projected_standby_hours = r.projected_standby_hours;
  resp.delay_perceptible = r.delay_perceptible;
  resp.delay_imperceptible = r.delay_imperceptible;
  resp.delay_imperceptible_p95 = r.delay_imperceptible_p95;
  resp.deliveries = r.deliveries;
  resp.batches_delivered = r.batches_delivered;
  resp.one_shots = r.one_shots;
  resp.awake_seconds = r.awake_seconds;
  resp.asleep_seconds = r.asleep_seconds;
  resp.worst_gap_ratio = r.worst_gap_ratio;
  resp.gap_violations = r.gap_violations;
  resp.perceptible_window_misses = r.perceptible_window_misses;
  return resp;
}

}  // namespace

std::string encode_request(const Request& req) {
  snapshot::Writer w;
  w.begin_section("simty-request", kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(req.policy));
  w.u8(static_cast<std::uint8_t>(req.workload));
  w.i64(req.duration.us());
  w.u64(req.seed);
  w.boolean(req.doze);
  w.boolean(req.system_alarms);
  w.boolean(req.beta_switch.has_value());
  w.i64(req.beta_switch ? req.beta_switch->at.us() : 0);
  w.f64(req.beta_switch ? req.beta_switch->beta : 0.0);
  w.end_section();
  return w.finish();
}

Request decode_request(const std::string& bytes) {
  const snapshot::Reader reader(bytes);
  snapshot::SectionReader s = reader.section("simty-request", kProtocolVersion);
  Request req;
  const std::uint8_t policy = s.u8();
  SIMTY_CHECK_MSG(
      policy <= static_cast<std::uint8_t>(exp::PolicyKind::kSimtyDuration),
      "serve: unknown policy kind");
  req.policy = static_cast<exp::PolicyKind>(policy);
  const std::uint8_t workload = s.u8();
  SIMTY_CHECK_MSG(
      workload <= static_cast<std::uint8_t>(exp::WorkloadKind::kSynthetic),
      "serve: unknown workload kind");
  req.workload = static_cast<exp::WorkloadKind>(workload);
  const std::int64_t duration_us = s.i64();
  SIMTY_CHECK_MSG(duration_us > 0, "serve: duration must be positive");
  req.duration = Duration::micros(duration_us);
  req.seed = s.u64();
  req.doze = s.boolean();
  req.system_alarms = s.boolean();
  const bool has_switch = s.boolean();
  const std::int64_t at_us = s.i64();
  const double beta = s.f64();
  if (has_switch) {
    SIMTY_CHECK_MSG(at_us >= 0 && at_us <= duration_us,
                    "serve: beta switch outside the run");
    SIMTY_CHECK_MSG(beta > 0.0, "serve: beta must be positive");
    req.beta_switch =
        exp::ExperimentConfig::BetaSwitch{Duration::micros(at_us), beta};
  }
  SIMTY_CHECK_MSG(s.at_end(), "serve: trailing bytes in request");
  return req;
}

std::string encode_response(const Response& resp) {
  snapshot::Writer w;
  w.begin_section("simty-response", kProtocolVersion);
  w.boolean(resp.cached);
  w.boolean(resp.warm_started);
  w.str(resp.policy_name);
  w.f64(resp.total_j);
  w.f64(resp.awake_total_j);
  w.f64(resp.average_power_mw);
  w.f64(resp.projected_standby_hours);
  w.f64(resp.delay_perceptible);
  w.f64(resp.delay_imperceptible);
  w.f64(resp.delay_imperceptible_p95);
  w.f64(resp.deliveries);
  w.f64(resp.batches_delivered);
  w.f64(resp.one_shots);
  w.f64(resp.awake_seconds);
  w.f64(resp.asleep_seconds);
  w.f64(resp.worst_gap_ratio);
  w.u64(resp.gap_violations);
  w.u64(resp.perceptible_window_misses);
  w.end_section();
  return w.finish();
}

Response decode_response(const std::string& bytes) {
  const snapshot::Reader reader(bytes);
  snapshot::SectionReader s =
      reader.section("simty-response", kProtocolVersion);
  Response resp;
  resp.cached = s.boolean();
  resp.warm_started = s.boolean();
  resp.policy_name = s.str();
  resp.total_j = s.f64();
  resp.awake_total_j = s.f64();
  resp.average_power_mw = s.f64();
  resp.projected_standby_hours = s.f64();
  resp.delay_perceptible = s.f64();
  resp.delay_imperceptible = s.f64();
  resp.delay_imperceptible_p95 = s.f64();
  resp.deliveries = s.f64();
  resp.batches_delivered = s.f64();
  resp.one_shots = s.f64();
  resp.awake_seconds = s.f64();
  resp.asleep_seconds = s.f64();
  resp.worst_gap_ratio = s.f64();
  resp.gap_violations = s.u64();
  resp.perceptible_window_misses = s.u64();
  SIMTY_CHECK_MSG(s.at_end(), "serve: trailing bytes in response");
  return resp;
}

std::string encode_stats_request() {
  snapshot::Writer w;
  w.begin_section("simty-stats", kProtocolVersion);
  w.end_section();
  return w.finish();
}

std::string encode_stats(const ServeStats& stats) {
  snapshot::Writer w;
  w.begin_section("simty-stats", kProtocolVersion);
  w.u64(stats.requests);
  w.u64(stats.result_hits);
  w.u64(stats.result_misses);
  w.u64(stats.prefix_hits);
  w.u64(stats.prefix_misses);
  w.u64(stats.snapshots_stored);
  w.u64(stats.snapshots_evicted);
  w.end_section();
  return w.finish();
}

ServeStats decode_stats(const std::string& bytes) {
  const snapshot::Reader reader(bytes);
  snapshot::SectionReader s = reader.section("simty-stats", kProtocolVersion);
  ServeStats stats;
  stats.requests = s.u64();
  stats.result_hits = s.u64();
  stats.result_misses = s.u64();
  stats.prefix_hits = s.u64();
  stats.prefix_misses = s.u64();
  stats.snapshots_stored = s.u64();
  stats.snapshots_evicted = s.u64();
  SIMTY_CHECK_MSG(s.at_end(), "serve: trailing bytes in stats");
  return stats;
}

std::uint64_t config_hash(const Request& req) {
  Request canonical = req;
  canonical.seed = 0;
  return fnv1a64(encode_request(canonical));
}

std::uint64_t prefix_hash(const Request& req) {
  Request canonical = req;
  if (canonical.beta_switch) canonical.beta_switch->beta = 0.0;
  return fnv1a64(encode_request(canonical));
}

ServeCore::ServeCore(std::size_t max_snapshots)
    : max_snapshots_(max_snapshots) {
  SIMTY_CHECK_MSG(max_snapshots_ > 0, "serve: snapshot store needs capacity");
}

const std::string* ServeCore::store_lookup(std::uint64_t key) {
  const auto it = snapshots_.find(key);
  if (it == snapshots_.end()) return nullptr;
  recency_.splice(recency_.begin(), recency_, it->second.recency);
  return &it->second.bytes;
}

void ServeCore::store_insert(std::uint64_t key, std::string bytes) {
  if (snapshots_.count(key) != 0) return;  // racing sweep points: keep first
  recency_.push_front(key);
  snapshots_.emplace(key, StoredSnapshot{std::move(bytes), recency_.begin()});
  ++stats_.snapshots_stored;
  while (snapshots_.size() > max_snapshots_) {
    snapshots_.erase(recency_.back());
    recency_.pop_back();
    ++stats_.snapshots_evicted;
  }
}

Response ServeCore::run_request(const Request& req) {
  const exp::ExperimentConfig config = to_config(req);
  // Warm starts only make sense with a β switch late enough that the
  // shared prefix is worth snapshotting.
  const bool warm_eligible =
      req.beta_switch && req.beta_switch->at > kPrefixMargin;
  if (warm_eligible) {
    const std::uint64_t key = prefix_hash(req);
    if (const std::string* prefix = store_lookup(key)) {
      ++stats_.prefix_hits;
      exp::Run run(config);
      run.restore_snapshot(*prefix);
      Response resp = to_response(run.finish());
      resp.warm_started = true;
      return resp;
    }
    ++stats_.prefix_misses;
    exp::Run run(config);
    const TimePoint target =
        TimePoint::origin() + (req.beta_switch->at - kPrefixMargin);
    run.advance_to_quiescent(target);
    // Only park the snapshot if quiescence stepping stayed strictly before
    // the switch — past it the prefix would have baked in this point's β.
    if (run.now() < TimePoint::origin() + req.beta_switch->at) {
      store_insert(key, run.save_snapshot());
    }
    return to_response(run.finish());
  }
  return to_response(exp::run_experiment(config));
}

Response ServeCore::handle(const Request& req) {
  ++stats_.requests;
  const auto key = std::make_pair(config_hash(req), req.seed);
  const auto it = results_.find(key);
  if (it != results_.end()) {
    ++stats_.result_hits;
    Response resp = it->second;
    resp.cached = true;
    return resp;
  }
  ++stats_.result_misses;
  const Response resp = run_request(req);
  results_.emplace(key, resp);
  return resp;
}

std::string ServeCore::handle_frame(const std::string& bytes) {
  const snapshot::Reader reader(bytes);
  if (reader.has_section("simty-stats")) return encode_stats(stats_);
  return encode_response(handle(decode_request(bytes)));
}

}  // namespace simty::serve
