# Empty dependencies file for bench_duration_extension.
# This may be replaced when dependencies are built.
