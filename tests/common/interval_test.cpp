#include "common/interval.hpp"

#include <gtest/gtest.h>

namespace simty {
namespace {

TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

TEST(TimeInterval, FromLength) {
  const TimeInterval w = TimeInterval::from_length(at(10), Duration::seconds(5));
  EXPECT_EQ(w.start(), at(10));
  EXPECT_EQ(w.end(), at(15));
  EXPECT_EQ(w.length(), Duration::seconds(5));
  EXPECT_THROW(TimeInterval::from_length(at(0), -Duration::seconds(1)),
               std::invalid_argument);
}

TEST(TimeInterval, PointIntervalIsClosed) {
  // An alpha = 0 alarm has a single-point window: it still "overlaps" an
  // interval containing that point.
  const TimeInterval p = TimeInterval::point(at(60));
  EXPECT_FALSE(p.is_empty());
  EXPECT_EQ(p.length(), Duration::zero());
  EXPECT_TRUE(p.contains(at(60)));
  EXPECT_TRUE(p.overlaps(TimeInterval{at(50), at(70)}));
  EXPECT_TRUE(p.overlaps(p));
}

TEST(TimeInterval, EmptyBehaviour) {
  const TimeInterval e = TimeInterval::empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e.length(), Duration::zero());
  EXPECT_FALSE(e.contains(at(0)));
  EXPECT_FALSE(e.overlaps(TimeInterval{at(0), at(100)}));
  // All empty intervals compare equal regardless of endpoints.
  EXPECT_EQ(e, (TimeInterval{at(9), at(3)}));
}

TEST(TimeInterval, OverlapIsSymmetricAndClosed) {
  const TimeInterval a{at(0), at(10)};
  const TimeInterval b{at(10), at(20)};  // touch at a single point
  const TimeInterval c{at(11), at(20)};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(c.overlaps(a));
}

TEST(TimeInterval, IntersectComputesOverlapRegion) {
  const TimeInterval a{at(0), at(10)};
  const TimeInterval b{at(6), at(14)};
  const TimeInterval i = a.intersect(b);
  EXPECT_EQ(i, (TimeInterval{at(6), at(10)}));
  // Disjoint -> empty.
  EXPECT_TRUE(a.intersect(TimeInterval{at(11), at(12)}).is_empty());
  // Intersection with empty stays empty.
  EXPECT_TRUE(a.intersect(TimeInterval::empty()).is_empty());
}

TEST(TimeInterval, IntersectionIsAssociativeOnChains) {
  // Entry attribute computation folds member windows left to right; the
  // result must not depend on the order.
  const TimeInterval a{at(0), at(30)};
  const TimeInterval b{at(10), at(40)};
  const TimeInterval c{at(20), at(50)};
  EXPECT_EQ(a.intersect(b).intersect(c), a.intersect(c).intersect(b));
  EXPECT_EQ(a.intersect(b).intersect(c), (TimeInterval{at(20), at(30)}));
}

TEST(TimeInterval, Hull) {
  const TimeInterval a{at(0), at(5)};
  const TimeInterval b{at(20), at(30)};
  EXPECT_EQ(a.hull(b), (TimeInterval{at(0), at(30)}));
  EXPECT_EQ(TimeInterval::empty().hull(b), b);
  EXPECT_EQ(b.hull(TimeInterval::empty()), b);
}

TEST(TimeInterval, Shifted) {
  const TimeInterval a{at(5), at(10)};
  EXPECT_EQ(a.shifted(Duration::seconds(3)), (TimeInterval{at(8), at(13)}));
  EXPECT_TRUE(TimeInterval::empty().shifted(Duration::seconds(3)).is_empty());
}

TEST(TimeInterval, Contains) {
  const TimeInterval a{at(5), at(10)};
  EXPECT_TRUE(a.contains(at(5)));
  EXPECT_TRUE(a.contains(at(10)));
  EXPECT_FALSE(a.contains(at(11)));
}

TEST(TimeInterval, ToString) {
  EXPECT_EQ(TimeInterval::empty().to_string(), "[empty]");
  EXPECT_EQ((TimeInterval{at(1), at(2)}).to_string(), "[1.000s, 2.000s]");
}

}  // namespace
}  // namespace simty
