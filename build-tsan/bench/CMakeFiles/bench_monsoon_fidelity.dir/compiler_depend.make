# Empty compiler generated dependencies file for bench_monsoon_fidelity.
# This may be replaced when dependencies are built.
