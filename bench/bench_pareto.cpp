// Ablation A16: the energy/freshness Pareto frontier (the trade-off space
// of ref [8], applied to wakeup management). Two sections, CSV on stdout
// for plotting:
//
//   1. The uplink frontier: sweeps beta finely and plots (total energy,
//      average imperceptible delay) for SIMTY against the EXACT / NATIVE /
//      doze-free anchors.
//   2. The downlink paging frontier (Rostami et al., arXiv 2001.00914):
//      with a DRX scenario enabled, sweeps the paging cycle (DRX-only) and
//      the wake-up-receiver delay budget (WUR) and plots (total energy,
//      page-answer delay) against NATIVE / SIMTY / FIXED anchors. At equal
//      delay budgets — DRX cycle C vs WUR budget C — the WUR rows must
//      dominate: same page-delay bound, strictly less listen energy.
//
// `--json <path>` also writes BENCH_pareto.json-style records; CI diffs the
// checked-in baseline via tools/check_bench_baseline.sh, which fails when a
// speedup/wur-vs-drx-... energy ratio collapses below 40% of baseline. The
// ratios are pure simulation output (no wall clock), so they are
// bit-stable across machines.
//
// The WUR config is also run once serially and once through the parallel
// runner and compared field-by-field: a divergence fails the bench, making
// the serial-vs---jobs determinism contract an executed check, not a
// comment.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "common/strings.hpp"
#include "exp/experiment.hpp"
#include "exp/parallel_runner.hpp"

using namespace simty;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

constexpr int kReps = 3;

/// Energy the paging path itself spent listening: DRX bills the main radio
/// for every on-duration, the WUR bills its own rail plus a decode impulse
/// per trigger. This is the component the two modes trade against each
/// other at a fixed delay budget.
double listen_energy_j(const exp::RunResult& r, const net::DrxConfig& drx,
                       const hw::WurConfig& wur) {
  return (r.drx_listen_seconds * drx.listen.mw() +
          r.wur_listen_seconds * wur.listen.mw()) / 1e3 +
         r.wur_triggers * wur.wake_trigger.joules_f();
}

/// Exact equality across every field the paging frontier consumes; any
/// mismatch disqualifies the parallel path.
bool identical(const exp::RunResult& a, const exp::RunResult& b) {
  return a.energy.total().mj() == b.energy.total().mj() &&
         a.average_power_mw == b.average_power_mw &&
         a.delay_imperceptible == b.delay_imperceptible &&
         a.pages_answered == b.pages_answered &&
         a.page_delay_avg_s == b.page_delay_avg_s &&
         a.page_delay_p95_s == b.page_delay_p95_s &&
         a.drx_listen_seconds == b.drx_listen_seconds &&
         a.wur_listen_seconds == b.wur_listen_seconds &&
         a.wur_triggers == b.wur_triggers;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = bench::json_path_from_args(argc, argv);
  const int kJobs = exp::ParallelRunner::default_jobs();

  // --- Section 1: uplink beta frontier (unchanged shape). ---
  const auto beta_start = Clock::now();
  std::printf("workload,variant,beta,total_J,delay_imperceptible,delay_p95\n");
  for (const exp::WorkloadKind workload :
       {exp::WorkloadKind::kLight, exp::WorkloadKind::kHeavy}) {
    auto emit = [&](const char* variant, double beta, const exp::RunResult& r) {
      std::printf("%s,%s,%.3f,%.2f,%.5f,%.5f\n", to_string(workload), variant, beta,
                  r.energy.total().joules_f(), r.delay_imperceptible,
                  r.delay_imperceptible_p95);
    };
    exp::ExperimentConfig c;
    c.workload = workload;
    c.policy = exp::PolicyKind::kExact;
    emit("EXACT", 0.0, exp::run_repeated(c, kReps, kJobs));
    c.policy = exp::PolicyKind::kNative;
    emit("NATIVE", 0.0, exp::run_repeated(c, kReps, kJobs));
    c.policy = exp::PolicyKind::kSimty;
    for (const double beta : {0.75, 0.78, 0.81, 0.84, 0.87, 0.90, 0.93, 0.96}) {
      c.beta = beta;
      emit("SIMTY", beta, exp::run_repeated(c, kReps, kJobs));
    }
  }
  const double beta_ms = ms_since(beta_start);

  // --- Section 2: downlink paging frontier. ---
  const auto paging_start = Clock::now();
  std::printf("\nscenario,variant,cycle_ms,budget_s,total_J,pages,"
              "page_delay_avg_s,page_delay_p95_s,listen_J\n");

  auto paging_config = [](exp::PolicyKind policy) {
    exp::ExperimentConfig c;
    c.workload = exp::WorkloadKind::kLight;
    c.policy = policy;
    c.drx.emplace();  // LTE/NR-ish defaults: 1.28 s cycle, 10 ms on-duration
    return c;
  };
  auto emit = [&](const char* scenario, const char* variant,
                  const exp::ExperimentConfig& c, const exp::RunResult& r) {
    std::printf("%s,%s,%.0f,%.2f,%.2f,%.1f,%.5f,%.5f,%.4f\n", scenario, variant,
                c.drx->paging_cycle.seconds_f() * 1e3,
                c.drx->wur ? c.drx->wur_delay_budget.seconds_f() : 0.0,
                r.energy.total().joules_f(), r.pages_answered, r.page_delay_avg_s,
                r.page_delay_p95_s, listen_energy_j(r, *c.drx, c.wur));
  };

  // Anchors: the three uplink policies on the default DRX scenario.
  for (const auto& [name, policy] :
       {std::pair{"NATIVE", exp::PolicyKind::kNative},
        std::pair{"SIMTY", exp::PolicyKind::kSimty},
        std::pair{"FIXED", exp::PolicyKind::kFixedInterval}}) {
    const exp::ExperimentConfig c = paging_config(policy);
    emit("anchor", name, c, exp::run_repeated(c, kReps, kJobs));
  }

  // DRX-only cycle sweep: the network-side delay knob. Longer cycles listen
  // less but queue pages longer; 2.56 s is the NR paging-cycle ceiling.
  const double kCyclesMs[] = {320.0, 640.0, 1280.0, 2560.0};
  std::vector<exp::RunResult> drx_rows;
  std::vector<exp::ExperimentConfig> drx_cfgs;
  for (const double cycle_ms : kCyclesMs) {
    exp::ExperimentConfig c = paging_config(exp::PolicyKind::kSimty);
    c.drx->paging_cycle = Duration::millis(static_cast<std::int64_t>(cycle_ms));
    drx_cfgs.push_back(c);
    drx_rows.push_back(exp::run_repeated(c, kReps, kJobs));
    emit("drx", "SIMTY+DRX", c, drx_rows.back());
  }

  // WUR budget sweep: the device-side delay knob. The first three budgets
  // mirror the DRX cycles above (equal delay budgets — the dominance
  // comparison); the long tail shows batching gains DRX cannot reach.
  const double kBudgetsS[] = {0.32, 0.64, 1.28, 2.56, 10.0, 60.0};
  std::vector<exp::RunResult> wur_rows;
  std::vector<exp::ExperimentConfig> wur_cfgs;
  for (const double budget_s : kBudgetsS) {
    exp::ExperimentConfig c = paging_config(exp::PolicyKind::kSimty);
    c.drx->wur = true;
    c.drx->wur_delay_budget = Duration::millis(static_cast<std::int64_t>(budget_s * 1e3));
    wur_cfgs.push_back(c);
    wur_rows.push_back(exp::run_repeated(c, kReps, kJobs));
    emit("wur", "SIMTY+WUR", c, wur_rows.back());
  }
  const double paging_ms = ms_since(paging_start);

  // Serial vs --jobs determinism: the WUR 1.28 s point, both paths.
  if (kJobs > 1) {
    const exp::RunResult serial = exp::run_repeated(wur_cfgs[2], kReps, 1);
    if (!identical(serial, wur_rows[2])) {
      std::fprintf(stderr,
                   "error: WUR paging run diverged between serial and "
                   "--jobs %d paths\n", kJobs);
      return 1;
    }
  }

  // Dominance at equal delay budgets: DRX cycle C vs WUR budget C. The
  // total-energy ratio must stay above 1 (the WUR point is on the frontier)
  // and the listen-energy ratio is the headline order-of-magnitude saving.
  std::vector<bench::BenchRecord> records = {
      {"frontier/beta-sweep", beta_ms, 0.0},
      {"frontier/paging-sweep", paging_ms, 0.0},
  };
  bool dominated = true;
  for (std::size_t i = 0; i < 4; ++i) {
    // kCyclesMs[i] pairs with kBudgetsS[j]: 320<->0.32, 640<->0.64, ...
    const std::size_t j = i;
    const double total_ratio = drx_rows[i].energy.total().joules_f() /
                               wur_rows[j].energy.total().joules_f();
    const double listen_ratio =
        listen_energy_j(drx_rows[i], *drx_cfgs[i].drx, drx_cfgs[i].wur) /
        listen_energy_j(wur_rows[j], *wur_cfgs[j].drx, wur_cfgs[j].wur);
    std::printf("equal-delay %4.0f ms: total %.2fx  listen %.2fx\n",
                kCyclesMs[i], total_ratio, listen_ratio);
    if (total_ratio <= 1.0 || listen_ratio <= 1.0) dominated = false;
    const std::string suffix = str_format("equal-delay-%.0fms", kCyclesMs[i]);
    records.push_back({"speedup/wur-vs-drx-total-energy/" + suffix,
                       paging_ms, total_ratio});
    records.push_back({"speedup/wur-vs-drx-listen-energy/" + suffix,
                       paging_ms, listen_ratio});
  }
  if (!dominated) {
    std::fprintf(stderr,
                 "error: a WUR point failed to dominate its equal-delay "
                 "DRX point\n");
    return 1;
  }

  if (json_path) {
    if (!bench::write_bench_json(*json_path, records)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("wrote %zu records to %s\n", records.size(), json_path->c_str());
  }
  return 0;
}
