#include "exp/experiment.hpp"

#include "power/monitor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace simty::exp {
namespace {

ExperimentConfig quick(PolicyKind policy, WorkloadKind workload) {
  ExperimentConfig c;
  c.policy = policy;
  c.workload = workload;
  c.duration = Duration::hours(1);
  return c;
}

TEST(Experiment, RunProducesCoherentResult) {
  const RunResult r = run_experiment(quick(PolicyKind::kNative, WorkloadKind::kLight));
  EXPECT_EQ(r.policy_name, "NATIVE");
  EXPECT_GT(r.deliveries, 0.0);
  EXPECT_GT(r.energy.total().mj(), 0.0);
  EXPECT_GT(r.energy.sleep.mj(), 0.0);
  EXPECT_GT(r.average_power_mw, 0.0);
  EXPECT_GT(r.projected_standby_hours, 0.0);
  // Time accounting: awake + asleep + waking transitions == duration; the
  // waking slices are small, so check the sum is close to 3600 s.
  EXPECT_NEAR(r.awake_seconds + r.asleep_seconds, 3600.0, 120.0);
  ASSERT_EQ(r.wakeups.size(), 5u);
  EXPECT_EQ(r.wakeups[0].hardware, "CPU");
  EXPECT_GT(r.wakeups[0].actual, 0.0);
  EXPECT_GE(r.wakeups[0].expected, r.wakeups[0].actual);
}

TEST(Experiment, DeterministicForSameSeed) {
  const RunResult a = run_experiment(quick(PolicyKind::kSimty, WorkloadKind::kLight));
  const RunResult b = run_experiment(quick(PolicyKind::kSimty, WorkloadKind::kLight));
  EXPECT_DOUBLE_EQ(a.energy.total().mj(), b.energy.total().mj());
  EXPECT_DOUBLE_EQ(a.deliveries, b.deliveries);
  EXPECT_DOUBLE_EQ(a.delay_imperceptible, b.delay_imperceptible);
}

TEST(Experiment, SeedsVaryTheRun) {
  ExperimentConfig c = quick(PolicyKind::kNative, WorkloadKind::kLight);
  const RunResult a = run_experiment(c);
  c.seed = 99;
  const RunResult b = run_experiment(c);
  EXPECT_NE(a.energy.total().mj(), b.energy.total().mj());
}

TEST(Experiment, EnergyConservation) {
  // The accountant's categories must add up: total = sleep + awake parts.
  const RunResult r = run_experiment(quick(PolicyKind::kSimty, WorkloadKind::kHeavy));
  const double sum = r.energy.sleep.mj() + r.energy.waking.mj() +
                     r.energy.awake_base.mj() + r.energy.wake_transitions.mj() +
                     r.energy.component_active.mj() +
                     r.energy.component_activation.mj();
  EXPECT_NEAR(r.energy.total().mj(), sum, 1e-6);
  // Average power * duration = total energy.
  EXPECT_NEAR(r.average_power_mw * 3600.0, r.energy.total().mj(),
              r.energy.total().mj() * 1e-9);
}

TEST(Experiment, AverageResultsIsComponentwiseMean) {
  RunResult a;
  a.energy.sleep = Energy::joules(100);
  a.delay_imperceptible = 0.1;
  a.deliveries = 10;
  a.wakeups.push_back({"CPU", 100, 200});
  RunResult b = a;
  b.energy.sleep = Energy::joules(300);
  b.delay_imperceptible = 0.3;
  b.deliveries = 30;
  b.wakeups[0] = {"CPU", 200, 400};
  const RunResult mean = average_results({a, b});
  EXPECT_NEAR(mean.energy.sleep.joules_f(), 200.0, 1e-9);
  EXPECT_NEAR(mean.delay_imperceptible, 0.2, 1e-12);
  EXPECT_NEAR(mean.deliveries, 20.0, 1e-12);
  EXPECT_NEAR(mean.wakeups[0].actual, 150.0, 1e-12);
  EXPECT_NEAR(mean.wakeups[0].expected, 300.0, 1e-12);
  EXPECT_EQ(mean.runs, 2);
}

TEST(Experiment, RunRepeatedAveragesSeeds) {
  ExperimentConfig c = quick(PolicyKind::kNative, WorkloadKind::kLight);
  const RunResult mean = run_repeated(c, 2);
  EXPECT_EQ(mean.runs, 2);
  const RunResult s1 = run_experiment(c);
  c.seed = 2;
  const RunResult s2 = run_experiment(c);
  EXPECT_NEAR(mean.energy.total().mj(),
              (s1.energy.total().mj() + s2.energy.total().mj()) / 2.0, 1e-6);
}

TEST(Experiment, SystemAlarmsToggle) {
  ExperimentConfig with = quick(PolicyKind::kNative, WorkloadKind::kLight);
  ExperimentConfig without = with;
  without.system_alarms = false;
  const RunResult a = run_experiment(with);
  const RunResult b = run_experiment(without);
  EXPECT_GT(a.deliveries, b.deliveries);
}

TEST(Experiment, RepeatedStatsTracksSpread) {
  ExperimentConfig c = quick(PolicyKind::kNative, WorkloadKind::kLight);
  const RepeatedStats stats = run_repeated_stats(c, 3);
  EXPECT_EQ(stats.total_j.count(), 3u);
  EXPECT_EQ(stats.cpu_wakeups.count(), 3u);
  // The mean matches the accumulated mean.
  EXPECT_NEAR(stats.mean.energy.total().joules_f(), stats.total_j.mean(), 1e-9);
  // Seeds differ, so there is real spread.
  EXPECT_GT(stats.total_j.stddev(), 0.0);
  EXPECT_GT(stats.total_j.min(), 0.0);
  EXPECT_GE(stats.total_j.max(), stats.total_j.min());
}

TEST(Experiment, ExtraPowerListenerReceivesRun) {
  power::PowerMonitor monitor;
  ExperimentConfig c = quick(PolicyKind::kSimty, WorkloadKind::kLight);
  c.extra_power_listener = &monitor;
  const RunResult r = run_experiment(c);
  monitor.finalize(TimePoint::origin() + c.duration);
  // The external monitor measured the same total energy the internal
  // accountant reported.
  EXPECT_NEAR(monitor.total_energy().mj(), r.energy.total().mj(),
              r.energy.total().mj() * 1e-9);
  EXPECT_GT(monitor.waveform().size(), 10u);
}

TEST(Experiment, DozeConfigDefersAndViolates) {
  ExperimentConfig plain = quick(PolicyKind::kSimty, WorkloadKind::kLight);
  plain.duration = Duration::hours(3);
  ExperimentConfig dozing = plain;
  dozing.doze = true;
  const RunResult a = run_experiment(plain);
  const RunResult b = run_experiment(dozing);
  EXPECT_LT(b.energy.total().mj(), a.energy.total().mj());
  EXPECT_EQ(a.gap_violations, 0u);
  EXPECT_GT(b.gap_violations, 0u);  // doze breaks periodicity, measurably
  EXPECT_GT(b.worst_gap_ratio, 3.0);
}

TEST(Experiment, AverageResultsEmptyVectorThrows) {
  EXPECT_THROW(average_results({}), std::logic_error);
}

TEST(Experiment, AverageResultsSingleRunIsIdentity) {
  RunResult r;
  r.policy_name = "SIMTY";
  r.energy.sleep = Energy::joules(123);
  r.average_power_mw = 4.5;
  r.delay_imperceptible = 0.07;
  r.deliveries = 17;
  r.wakeups.push_back({"CPU", 100, 200});
  r.worst_gap_ratio = 1.9;
  r.gap_violations = 2;
  r.perceptible_window_misses = 1;
  const RunResult mean = average_results({r});
  EXPECT_EQ(mean.policy_name, "SIMTY");
  EXPECT_EQ(mean.runs, 1);
  EXPECT_EQ(mean.energy.sleep.mj(), r.energy.sleep.mj());
  EXPECT_EQ(mean.average_power_mw, r.average_power_mw);
  EXPECT_EQ(mean.delay_imperceptible, r.delay_imperceptible);
  EXPECT_EQ(mean.deliveries, r.deliveries);
  ASSERT_EQ(mean.wakeups.size(), 1u);
  EXPECT_EQ(mean.wakeups[0].actual, 100.0);
  EXPECT_EQ(mean.wakeups[0].expected, 200.0);
  EXPECT_EQ(mean.worst_gap_ratio, r.worst_gap_ratio);
  EXPECT_EQ(mean.gap_violations, r.gap_violations);
  EXPECT_EQ(mean.perceptible_window_misses, r.perceptible_window_misses);
}

TEST(Experiment, RepeatedStatsSingleRepetitionHasZeroSpread) {
  ExperimentConfig c = quick(PolicyKind::kNative, WorkloadKind::kLight);
  const RepeatedStats stats = run_repeated_stats(c, 1);
  EXPECT_EQ(stats.mean.runs, 1);
  EXPECT_EQ(stats.total_j.count(), 1u);
  EXPECT_EQ(stats.cpu_wakeups.count(), 1u);
  // One sample: the spread fields must be exactly zero, not NaN.
  EXPECT_EQ(stats.total_j.variance(), 0.0);
  EXPECT_EQ(stats.total_j.stddev(), 0.0);
  EXPECT_EQ(stats.total_j.ci95_halfwidth(), 0.0);
  EXPECT_EQ(stats.total_j.min(), stats.total_j.max());
  EXPECT_EQ(stats.total_j.mean(), stats.total_j.min());
  // The mean of one run is that run.
  const RunResult single = run_experiment(c);
  EXPECT_EQ(stats.mean.energy.total().mj(), single.energy.total().mj());
  EXPECT_NEAR(stats.total_j.mean(), single.energy.total().joules_f(), 1e-12);
}

TEST(Experiment, PolicyAndWorkloadNames) {
  EXPECT_STREQ(to_string(PolicyKind::kNative), "NATIVE");
  EXPECT_STREQ(to_string(PolicyKind::kSimty), "SIMTY");
  EXPECT_STREQ(to_string(PolicyKind::kExact), "EXACT");
  EXPECT_STREQ(to_string(PolicyKind::kSimtyDuration), "SIMTY-DUR");
  EXPECT_STREQ(to_string(WorkloadKind::kLight), "light");
  EXPECT_STREQ(to_string(WorkloadKind::kHeavy), "heavy");
  EXPECT_STREQ(to_string(WorkloadKind::kSynthetic), "synthetic");
}

}  // namespace
}  // namespace simty::exp
