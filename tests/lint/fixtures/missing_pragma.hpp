// Fixture: pragma-once rule — a header whose first code line is not
// `#pragma once` is flagged at that line (leading comments are fine).
#include <cstdint>  // LINT-EXPECT: pragma-once

namespace fixture {
inline std::int32_t one() { return 1; }
}  // namespace fixture
