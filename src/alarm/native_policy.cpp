#include "alarm/native_policy.hpp"

namespace simty::alarm {

std::optional<std::size_t> NativePolicy::select_batch(
    const Alarm& alarm, const std::vector<std::unique_ptr<Batch>>& queue) const {
  const TimeInterval window = alarm.window_interval();
  // Linear reference implementation, differentially checked against the
  // indexed candidate path under slow queue checks.
  // simty-lint: allow(queue-scan)
  for (std::size_t i = 0; i < queue.size(); ++i) {
    // The entry's window attribute is the intersection of its members'
    // windows, so overlapping it overlaps every member's window — the
    // "every alarm's window interval overlaps with that of the new alarm"
    // condition of §2.1.
    if (queue[i]->window_interval().overlaps(window)) return i;
  }
  return std::nullopt;
}

std::optional<CandidateQuery> NativePolicy::candidate_query(
    const Alarm& alarm) const {
  return CandidateQuery{alarm.window_interval(), EntryIntervalKind::kWindow};
}

std::optional<std::size_t> NativePolicy::select_among(
    const Alarm&, const std::vector<std::unique_ptr<Batch>>&,
    const std::vector<std::size_t>& candidates) const {
  // Candidates are exactly the entries whose window overlap intersects the
  // alarm's window, in ascending queue position — NATIVE joins the first.
  if (candidates.empty()) return std::nullopt;
  return candidates.front();
}

}  // namespace simty::alarm
