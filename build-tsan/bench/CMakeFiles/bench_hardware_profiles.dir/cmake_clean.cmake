file(REMOVE_RECURSE
  "CMakeFiles/bench_hardware_profiles.dir/bench_hardware_profiles.cpp.o"
  "CMakeFiles/bench_hardware_profiles.dir/bench_hardware_profiles.cpp.o.d"
  "bench_hardware_profiles"
  "bench_hardware_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hardware_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
