#include "hw/guardian.hpp"

#include <gtest/gtest.h>

#include "hw/power_bus.hpp"
#include "hw/power_model.hpp"

namespace simty::hw {
namespace {

class GuardianTest : public ::testing::Test {
 protected:
  GuardianTest() : model_(PowerModel::nexus5()), mgr_(sim_, model_, bus_) {}
  TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }
  sim::Simulator sim_;
  PowerModel model_;
  PowerBus bus_;
  WakelockManager mgr_;
};

TEST_F(GuardianTest, RevokesOverBudgetLocks) {
  WakelockGuardian::Config c;
  c.hold_budget = Duration::seconds(60);
  c.scan_period = Duration::seconds(30);
  WakelockGuardian guardian(sim_, mgr_, c);
  guardian.start(at(3600));

  mgr_.acquire(Component::kWifi, "buggy-app");  // never released
  sim_.run_until(at(3600));

  EXPECT_FALSE(mgr_.is_on(Component::kWifi));
  ASSERT_EQ(guardian.interventions().size(), 1u);
  const auto& iv = guardian.interventions()[0];
  EXPECT_EQ(iv.component, Component::kWifi);
  EXPECT_EQ(iv.holder, "buggy-app");
  EXPECT_GT(iv.held_for, Duration::seconds(60));
  // Detection latency is bounded by budget + one scan period.
  EXPECT_LE(iv.at, at(91));
}

TEST_F(GuardianTest, LeavesHealthyLocksAlone) {
  WakelockGuardian::Config c;
  c.hold_budget = Duration::seconds(60);
  c.scan_period = Duration::seconds(10);
  WakelockGuardian guardian(sim_, mgr_, c);
  guardian.start(at(600));

  // A well-behaved 5 s hold.
  const WakelockId id = mgr_.acquire(Component::kWps, "good-app");
  sim_.schedule_at(at(5), [&] { mgr_.release(id); });
  sim_.run_until(at(600));
  EXPECT_TRUE(guardian.interventions().empty());
}

TEST_F(GuardianTest, HolderTryReleaseAfterRevocationIsSafe) {
  WakelockGuardian::Config c;
  c.hold_budget = Duration::seconds(30);
  c.scan_period = Duration::seconds(10);
  WakelockGuardian guardian(sim_, mgr_, c);
  guardian.start(at(600));

  const WakelockId id = mgr_.acquire(Component::kWifi, "slow-app");
  // The app finally "releases" at 120 s, long after the revocation.
  bool released_by_app = false;
  sim_.schedule_at(at(120), [&] { released_by_app = mgr_.try_release(id); });
  sim_.run_until(at(600));
  EXPECT_FALSE(released_by_app);  // guardian got there first
  EXPECT_EQ(guardian.interventions().size(), 1u);
}

TEST_F(GuardianTest, ManualScan) {
  WakelockGuardian::Config c;
  c.hold_budget = Duration::seconds(10);
  WakelockGuardian guardian(sim_, mgr_, c);
  mgr_.acquire(Component::kWifi, "x");
  EXPECT_EQ(guardian.scan(), 0u);  // not yet over budget
  sim_.schedule_at(at(20), [] {});
  sim_.run_all();
  EXPECT_EQ(guardian.scan(), 1u);
  EXPECT_EQ(guardian.scan(), 0u);  // already revoked
}

TEST_F(GuardianTest, MultipleLocksRevokedInOneScan) {
  WakelockGuardian::Config c;
  c.hold_budget = Duration::seconds(10);
  WakelockGuardian guardian(sim_, mgr_, c);
  mgr_.acquire(Component::kWifi, "a");
  mgr_.acquire(Component::kWps, "b");
  sim_.schedule_at(at(30), [] {});
  sim_.run_all();
  EXPECT_EQ(guardian.scan(), 2u);
  EXPECT_FALSE(mgr_.is_on(Component::kWifi));
  EXPECT_FALSE(mgr_.is_on(Component::kWps));
}

TEST_F(GuardianTest, ScanningStopsAtHorizon) {
  WakelockGuardian::Config c;
  c.hold_budget = Duration::seconds(10);
  c.scan_period = Duration::seconds(10);
  WakelockGuardian guardian(sim_, mgr_, c);
  guardian.start(at(100));
  sim_.run_until(at(100));
  const std::size_t events_at_horizon = sim_.events_processed();
  sim_.schedule_at(at(5000), [] {});
  sim_.run_all();
  // No guardian scans beyond the horizon: only our marker event ran.
  EXPECT_EQ(sim_.events_processed(), events_at_horizon + 1);
}

TEST_F(GuardianTest, RejectsBadConfig) {
  WakelockGuardian::Config c;
  c.hold_budget = Duration::zero();
  EXPECT_THROW(WakelockGuardian(sim_, mgr_, c), std::logic_error);
  c = WakelockGuardian::Config{};
  c.scan_period = Duration::zero();
  EXPECT_THROW(WakelockGuardian(sim_, mgr_, c), std::logic_error);
}

TEST_F(GuardianTest, TryReleaseAndHeldLocksApi) {
  EXPECT_FALSE(mgr_.try_release(WakelockId{424242}));
  const WakelockId id = mgr_.acquire(Component::kWifi, "x");
  const auto held = mgr_.held_locks();
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].id, id);
  EXPECT_EQ(held[0].holder, "x");
  EXPECT_TRUE(mgr_.try_release(id));
  EXPECT_TRUE(mgr_.held_locks().empty());
}

}  // namespace
}  // namespace simty::hw
