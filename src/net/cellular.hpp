#pragma once
// Cellular connected-standby harness: the glue that gives the RRC machine
// an owner with a lifecycle. It registers repeating ".cell" sync alarms
// whose handlers drive data_activity(), and — crucially — it owns teardown:
// finalize(horizon) flushes the RRC machine's open DCH/FACH span into
// time_in(). A caller that wires RrcMachine by hand and forgets finalize()
// silently under-accounts the final span (and with it the per-state energy
// attribution), so every cellular workload should run through this harness
// rather than poking the machine directly.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "alarm/alarm_manager.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/drx.hpp"
#include "net/rrc.hpp"

namespace simty::snapshot {
class Writer;
class SectionReader;
}  // namespace simty::snapshot

namespace simty::net {

/// One repeating cellular sync: the alarm attributes plus the data-activity
/// behaviour its delivery handler drives through the RRC machine.
struct CellularSyncSpec {
  std::string name;
  alarm::RepeatMode mode = alarm::RepeatMode::kStatic;
  Duration repeat = Duration::seconds(300);
  double alpha = 0.0;              // window fraction of the repeat interval
  Duration hold = Duration::seconds(2);  // nominal data-activity duration
  double hold_jitter = 0.0;        // +/- fraction of hold, drawn per delivery
};

/// Owns an RrcMachine and the sync alarms that drive it; see file comment.
class CellularStandby {
 public:
  CellularStandby(sim::Simulator& sim, alarm::AlarmManager& manager,
                  hw::PowerBus& bus, RrcConfig config = RrcConfig{});

  CellularStandby(const CellularStandby&) = delete;
  CellularStandby& operator=(const CellularStandby&) = delete;

  /// Registers one repeating ".cell" alarm per spec (app ids 1, 2, ... in
  /// spec order; first nominal staggered per app). Each spec's hold jitter
  /// draws from a stream forked off `rng` per app, so deployments are a
  /// pure function of the rng seed.
  void deploy(const std::vector<CellularSyncSpec>& specs, Rng rng, double beta);

  /// Deploys the downlink DRX/paging scenario (net/drx.hpp) on this
  /// harness's RRC machine and starts it. `wur` must be non-null iff
  /// config.wur, and must outlive the harness. At most once per harness.
  void deploy_paging(hw::Device& device, hw::PowerBus& bus,
                     hw::WakeupReceiver* wur, const DrxConfig& config, Rng rng);

  /// Flushes the RRC machine's open state span (and the pager's open
  /// on-duration, when paging is deployed) at the horizon. Must be called
  /// after the sim reaches the horizon and before reading rrc().time_in();
  /// idempotent at a fixed horizon.
  void finalize(TimePoint horizon);

  bool finalized() const { return finalized_; }

  RrcMachine& rrc() { return rrc_; }
  const RrcMachine& rrc() const { return rrc_; }

  /// The deployed pager, or null before deploy_paging().
  const DrxPager* pager() const { return pager_.get(); }

  /// Resolves delivery handlers for this harness's ".cell" alarms on
  /// restore; the rebuilt closure shares the deployed sync's rng stream.
  /// Returns an empty handler for foreign tags.
  alarm::DeliveryHandler handler_for(const std::string& tag);

  /// Serializes the RRC machine, each deployed sync's rng position, and the
  /// pager when deployed. restore() requires an identical deploy() /
  /// deploy_paging() to have run first (same specs, seed, and β — the
  /// alarms themselves live in the manager).
  void save(snapshot::Writer& w) const;
  void restore(snapshot::SectionReader& s);

 private:
  /// A deployed sync's behaviour closure state, kept so restore can
  /// re-resolve handlers and resume the per-app jitter stream.
  struct DeployedSync {
    CellularSyncSpec spec;
    std::shared_ptr<Rng> rng;
  };

  alarm::DeliveryHandler sync_handler(const DeployedSync& sync);

  sim::Simulator& sim_;
  alarm::AlarmManager& manager_;
  RrcMachine rrc_;
  std::vector<DeployedSync> deployed_;
  std::unique_ptr<DrxPager> pager_;
  bool finalized_ = false;
};

}  // namespace simty::net
