// Ablation A1: the grace factor beta (§3.1.2 design choice). Sweeps beta
// from the Android default window factor (0.75) to the paper's 0.96 and
// reports the energy/delay trade-off under SIMTY. Expectation: energy falls
// and imperceptible delay grows monotonically (roughly) with beta; the
// guarantee bound (1 + beta) ReIn is respected everywhere.
//
// The whole sweep (NATIVE baseline + every beta, × kReps seeds) is fanned
// out through exp::run_sweep; the per-group reductions happen in seed
// order, so the numbers are bit-identical to the old serial loops.

#include <cstdio>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "exp/parallel_runner.hpp"

using namespace simty;

namespace {

// Appends kReps seeded copies of `c` (seeds seed, seed+1, ...), mirroring
// run_repeated's seed schedule.
void add_reps(std::vector<exp::ExperimentConfig>& batch,
              const exp::ExperimentConfig& c, int reps) {
  for (int i = 0; i < reps; ++i) {
    batch.push_back(c);
    batch.back().seed = c.seed + static_cast<std::uint64_t>(i);
  }
}

exp::RunResult group_mean(const std::vector<exp::RunResult>& all,
                          std::size_t group, int reps) {
  const auto begin = all.begin() + static_cast<std::ptrdiff_t>(group) * reps;
  return exp::average_results(std::vector<exp::RunResult>(begin, begin + reps));
}

}  // namespace

int main() {
  const double kBetas[] = {0.75, 0.80, 0.85, 0.90, 0.96};
  const int kReps = 3;
  const int kJobs = exp::ParallelRunner::default_jobs();

  for (const exp::WorkloadKind workload :
       {exp::WorkloadKind::kLight, exp::WorkloadKind::kHeavy}) {
    std::vector<exp::ExperimentConfig> batch;
    exp::ExperimentConfig native_cfg;
    native_cfg.policy = exp::PolicyKind::kNative;
    native_cfg.workload = workload;
    add_reps(batch, native_cfg, kReps);
    for (const double beta : kBetas) {
      exp::ExperimentConfig c;
      c.policy = exp::PolicyKind::kSimty;
      c.workload = workload;
      c.beta = beta;
      add_reps(batch, c, kReps);
    }
    const std::vector<exp::RunResult> all = exp::run_sweep(batch, kJobs);
    const exp::RunResult native = group_mean(all, 0, kReps);

    TextTable t(std::string("Beta sweep, ") + to_string(workload) +
                " workload (SIMTY vs NATIVE baseline)");
    t.set_header({"beta", "total (J)", "saving vs NATIVE", "awake (J)",
                  "imperceptible delay", "worst gap/ReIn", "violations"});
    for (std::size_t b = 0; b < std::size(kBetas); ++b) {
      const exp::RunResult r = group_mean(all, b + 1, kReps);
      t.add_row({str_format("%.2f", kBetas[b]),
                 str_format("%.1f", r.energy.total().joules_f()),
                 percent(1.0 - r.energy.total().ratio(native.energy.total())),
                 str_format("%.1f", r.energy.awake_total().joules_f()),
                 percent(r.delay_imperceptible),
                 str_format("%.3f", r.worst_gap_ratio),
                 str_format("%llu", static_cast<unsigned long long>(r.gap_violations))});
    }
    std::printf("%s(NATIVE total: %.1f J)\n\n", t.render().c_str(),
                native.energy.total().joules_f());
  }
  return 0;
}
