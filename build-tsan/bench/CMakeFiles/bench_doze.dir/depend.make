# Empty dependencies file for bench_doze.
# This may be replaced when dependencies are built.
