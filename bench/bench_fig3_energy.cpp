// Reproduces Figure 3: total energy consumed in connected standby under
// NATIVE and SIMTY for the light and heavy workloads (3-hour sessions,
// three seeds averaged), split into the alignable awake energy and the
// sleep floor. Paper expectations: SIMTY saves >33% of NATIVE's awake
// energy in both scenarios and ~20% / ~25% of the total energy under the
// light / heavy workloads, extending standby time by 1/4 to 1/3.

#include <cstdio>

#include "exp/experiment.hpp"
#include "exp/reporting.hpp"

using namespace simty;

int main() {
  const int kReps = 3;

  auto run = [&](exp::PolicyKind policy, exp::WorkloadKind workload) {
    exp::ExperimentConfig c;
    c.policy = policy;
    c.workload = workload;
    return exp::run_repeated_stats(c, kReps);
  };

  std::vector<exp::RepeatedStats> stats;
  stats.push_back(run(exp::PolicyKind::kNative, exp::WorkloadKind::kLight));
  stats.push_back(run(exp::PolicyKind::kSimty, exp::WorkloadKind::kLight));
  stats.push_back(run(exp::PolicyKind::kNative, exp::WorkloadKind::kHeavy));
  stats.push_back(run(exp::PolicyKind::kSimty, exp::WorkloadKind::kHeavy));

  const char* kLabels[] = {"L-NATIVE", "L-SIMTY", "H-NATIVE", "H-SIMTY"};
  std::vector<exp::NamedResult> columns;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    columns.push_back({kLabels[i], stats[i].mean});
  }

  std::printf("%s\n", exp::render_energy_figure(columns).c_str());

  std::printf("across-seed spread (mean ± 95%% CI over %d seeds):\n", kReps);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    std::printf("  %-9s total %s J, awake %s J\n", kLabels[i],
                stats[i].total_j.to_string(1).c_str(),
                stats[i].awake_j.to_string(1).c_str());
  }
  std::printf("\n");

  // Savings within each workload pair (the numbers quoted in §4.2).
  auto pair_saving = [&](std::size_t n, std::size_t s) {
    const auto& native = columns[n].result.energy;
    const auto& simty = columns[s].result.energy;
    std::printf("%s vs %s: awake saving %.1f%%, total saving %.1f%%\n",
                columns[s].label.c_str(), columns[n].label.c_str(),
                100.0 * (1.0 - simty.awake_total().ratio(native.awake_total())),
                100.0 * (1.0 - simty.total().ratio(native.total())));
  };
  pair_saving(0, 1);
  pair_saving(2, 3);
  std::printf("\n%s\n", exp::render_standby_projection(columns).c_str());
  return 0;
}
