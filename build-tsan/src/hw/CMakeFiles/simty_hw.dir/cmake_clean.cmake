file(REMOVE_RECURSE
  "CMakeFiles/simty_hw.dir/battery.cpp.o"
  "CMakeFiles/simty_hw.dir/battery.cpp.o.d"
  "CMakeFiles/simty_hw.dir/component.cpp.o"
  "CMakeFiles/simty_hw.dir/component.cpp.o.d"
  "CMakeFiles/simty_hw.dir/device.cpp.o"
  "CMakeFiles/simty_hw.dir/device.cpp.o.d"
  "CMakeFiles/simty_hw.dir/device_spec.cpp.o"
  "CMakeFiles/simty_hw.dir/device_spec.cpp.o.d"
  "CMakeFiles/simty_hw.dir/guardian.cpp.o"
  "CMakeFiles/simty_hw.dir/guardian.cpp.o.d"
  "CMakeFiles/simty_hw.dir/power_bus.cpp.o"
  "CMakeFiles/simty_hw.dir/power_bus.cpp.o.d"
  "CMakeFiles/simty_hw.dir/power_model.cpp.o"
  "CMakeFiles/simty_hw.dir/power_model.cpp.o.d"
  "CMakeFiles/simty_hw.dir/rtc.cpp.o"
  "CMakeFiles/simty_hw.dir/rtc.cpp.o.d"
  "CMakeFiles/simty_hw.dir/wakelock.cpp.o"
  "CMakeFiles/simty_hw.dir/wakelock.cpp.o.d"
  "libsimty_hw.a"
  "libsimty_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simty_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
