#include "power/energy_accounting.hpp"

#include "common/check.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::power {

Energy EnergyBreakdown::awake_total() const {
  return waking + awake_base + wake_transitions + component_active +
         component_activation;
}

Energy EnergyBreakdown::total() const { return sleep + awake_total(); }

void EnergyAccountant::on_device_state(TimePoint t, hw::DeviceState state,
                                       Power base_level) {
  if (device_seen_) accumulate_device(t);
  device_state_ = state;
  device_level_ = base_level;
  device_since_ = t;
  device_seen_ = true;
}

void EnergyAccountant::on_component_power(TimePoint t, hw::Component c, bool on,
                                          Power level) {
  const auto idx = static_cast<std::size_t>(c);
  ComponentRail& rail = rails_[idx];
  if (rail.on) accumulate_component(idx, t);
  rail.on = on;
  rail.level = level;
  rail.since = t;
}

void EnergyAccountant::on_impulse(TimePoint, Energy e, hw::ImpulseKind kind,
                                  std::string_view tag) {
  switch (kind) {
    case hw::ImpulseKind::kWakeTransition:
      breakdown_.wake_transitions += e;
      break;
    case hw::ImpulseKind::kComponentActivation: {
      breakdown_.component_activation += e;
      // Attribute to the component by its tag (the bus publishes the
      // component name).
      for (int i = 0; i < hw::kComponentCount; ++i) {
        const auto c = static_cast<hw::Component>(i);
        if (tag == hw::to_string(c)) {
          breakdown_.per_component[static_cast<std::size_t>(c)] += e;
          break;
        }
      }
      break;
    }
  }
}

void EnergyAccountant::finalize(TimePoint now) {
  if (device_seen_) accumulate_device(now);
  device_since_ = now;
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    if (rails_[i].on) {
      accumulate_component(i, now);
      rails_[i].since = now;
    }
  }
  finalized_at_ = now;
  finalized_ = true;
}

Power EnergyAccountant::average_power() const {
  SIMTY_CHECK_MSG(finalized_, "average_power requires finalize()");
  const double seconds = (finalized_at_ - TimePoint::origin()).seconds_f();
  SIMTY_CHECK_MSG(seconds > 0.0, "average_power over an empty run");
  return Power::milliwatts(breakdown_.total().mj() / seconds);
}

void EnergyAccountant::accumulate_device(TimePoint until) {
  SIMTY_CHECK(until >= device_since_);
  const Energy e = device_level_ * (until - device_since_);
  switch (device_state_) {
    case hw::DeviceState::kAsleep: breakdown_.sleep += e; break;
    case hw::DeviceState::kWaking: breakdown_.waking += e; break;
    case hw::DeviceState::kAwake: breakdown_.awake_base += e; break;
  }
}

void EnergyAccountant::accumulate_component(std::size_t idx, TimePoint until) {
  ComponentRail& rail = rails_[idx];
  SIMTY_CHECK(until >= rail.since);
  const Energy e = rail.level * (until - rail.since);
  breakdown_.component_active += e;
  breakdown_.per_component[idx] += e;
}

void EnergyAccountant::save(snapshot::Writer& w) const {
  SIMTY_CHECK_MSG(!finalized_, "EnergyAccountant::save: already finalized");
  w.f64(breakdown_.sleep.mj());
  w.f64(breakdown_.waking.mj());
  w.f64(breakdown_.awake_base.mj());
  w.f64(breakdown_.wake_transitions.mj());
  w.f64(breakdown_.component_active.mj());
  w.f64(breakdown_.component_activation.mj());
  for (const Energy e : breakdown_.per_component) w.f64(e.mj());
  w.u8(static_cast<std::uint8_t>(device_state_));
  w.f64(device_level_.mw());
  w.i64(device_since_.us());
  w.boolean(device_seen_);
  for (const ComponentRail& rail : rails_) {
    w.boolean(rail.on);
    w.f64(rail.level.mw());
    w.i64(rail.since.us());
  }
}

void EnergyAccountant::restore(snapshot::SectionReader& s) {
  breakdown_.sleep = Energy::millijoules(s.f64());
  breakdown_.waking = Energy::millijoules(s.f64());
  breakdown_.awake_base = Energy::millijoules(s.f64());
  breakdown_.wake_transitions = Energy::millijoules(s.f64());
  breakdown_.component_active = Energy::millijoules(s.f64());
  breakdown_.component_activation = Energy::millijoules(s.f64());
  for (Energy& e : breakdown_.per_component) e = Energy::millijoules(s.f64());
  const std::uint8_t state = s.u8();
  SIMTY_CHECK_MSG(state <= static_cast<std::uint8_t>(hw::DeviceState::kAwake),
                  "EnergyAccountant::restore: device state out of range");
  device_state_ = static_cast<hw::DeviceState>(state);
  device_level_ = Power::milliwatts(s.f64());
  device_since_ = TimePoint::from_us(s.i64());
  device_seen_ = s.boolean();
  for (ComponentRail& rail : rails_) {
    rail.on = s.boolean();
    rail.level = Power::milliwatts(s.f64());
    rail.since = TimePoint::from_us(s.i64());
  }
  finalized_ = false;
}

}  // namespace simty::power
