#include "trace/tracer.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <map>
#include <stdexcept>
#include <string_view>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "snapshot/snapshot.hpp"

namespace simty::trace {

namespace {

thread_local Tracer* g_current = nullptr;

// Binary format (all integers little-endian, independent of host order):
//   magic "SMTYTRC1"
//   u32 label_count, then per label: u32 byte length + raw bytes
//   u64 dropped (ring overwrites)
//   u64 event_count, then per event:
//     i64 t_us | u32 label index | u8 kind | u8 category | i64 arg
constexpr char kMagic[8] = {'S', 'M', 'T', 'Y', 'T', 'R', 'C', '1'};
constexpr std::size_t kRecordBytes = 8 + 4 + 1 + 1 + 8;

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void append_i64(std::string& out, std::int64_t v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over an immutable byte string.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  std::uint32_t read_u32() { return static_cast<std::uint32_t>(read_le(4)); }
  std::uint64_t read_u64() { return read_le(8); }
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_le(8)); }
  std::uint8_t read_u8() { return static_cast<std::uint8_t>(read_le(1)); }

  std::string read_bytes(std::size_t n) {
    require(n);
    std::string out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) {
      throw std::runtime_error("trace: truncated input");
    }
  }

  std::uint64_t read_le(std::size_t n) {
    require(n);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return v;
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

std::string json_escape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char ch = *p;
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += str_format("\\u%04x", static_cast<unsigned char>(ch));
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void write_file(const std::string& path, const std::string& bytes,
                const char* what) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error(std::string(what) + ": cannot open " + path);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error(std::string(what) + ": write failed for " + path);
}

}  // namespace

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kSim: return "sim";
    case TraceCategory::kAlarm: return "alarm";
    case TraceCategory::kHw: return "hw";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kExp: return "exp";
  }
  return "?";
}

const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kSpanBegin: return "span-begin";
    case TraceEventKind::kSpanEnd: return "span-end";
    case TraceEventKind::kInstant: return "instant";
    case TraceEventKind::kCounter: return "counter";
  }
  return "?";
}

Tracer::Tracer(std::size_t ring_capacity, common::Arena* arena)
    : ring_capacity_(ring_capacity), arena_(arena), chunks_(arena), ring_(arena) {
  if (ring_capacity_ > 0) {
    ring_.resize(ring_capacity_);
  } else {
    // Pre-allocate the first chunk so steady state never allocates on the
    // recording path until a chunk boundary.
    chunks_.emplace_back(arena_);
    chunks_[0].reserve(kChunkEvents);
  }
}

void Tracer::record(const TraceEvent& e) {
  if (ring_capacity_ > 0) {
    if (ring_full_) ++dropped_;
    ring_[ring_next_] = e;
    ring_next_ = (ring_next_ + 1) % ring_capacity_;
    if (ring_next_ == 0 && !ring_full_) ring_full_ = true;
    return;
  }
  if (chunks_[current_chunk_].size() == kChunkEvents) {
    // Advance into a chunk retained by clear() when one exists; only a
    // fresh high-water mark allocates.
    ++current_chunk_;
    if (current_chunk_ == chunks_.size()) {
      chunks_.emplace_back(arena_);
      chunks_[current_chunk_].reserve(kChunkEvents);
    }
  }
  chunks_[current_chunk_].push_back(e);
}

void Tracer::span_begin(TimePoint when, TraceCategory category, const char* label,
                        std::int64_t arg) {
  ++open_spans_;
  record(TraceEvent{when.us(), label, arg, TraceEventKind::kSpanBegin, category});
}

void Tracer::span_end(TimePoint when, TraceCategory category, const char* label,
                      std::int64_t arg) {
  SIMTY_CHECK_MSG(open_spans_ > 0, "Tracer::span_end without a matching begin");
  --open_spans_;
  record(TraceEvent{when.us(), label, arg, TraceEventKind::kSpanEnd, category});
}

void Tracer::instant(TimePoint when, TraceCategory category, const char* label,
                     std::int64_t arg) {
  record(TraceEvent{when.us(), label, arg, TraceEventKind::kInstant, category});
}

void Tracer::counter(TimePoint when, TraceCategory category, const char* label,
                     std::int64_t value) {
  record(TraceEvent{when.us(), label, value, TraceEventKind::kCounter, category});
}

std::size_t Tracer::size() const {
  if (ring_capacity_ > 0) return ring_full_ ? ring_capacity_ : ring_next_;
  std::size_t n = 0;
  for (const auto& chunk : chunks_) n += chunk.size();
  return n;
}

void Tracer::clear() {
  if (ring_capacity_ > 0) {
    ring_next_ = 0;
    ring_full_ = false;
  } else {
    // Retain every grown chunk (and its capacity) for the next run.
    for (std::size_t i = 0; i <= current_chunk_; ++i) chunks_[i].clear();
    current_chunk_ = 0;
  }
  dropped_ = 0;
  open_spans_ = 0;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  if (ring_capacity_ > 0) {
    if (ring_full_) {
      out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_),
                 ring_.end());
    }
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_));
  } else {
    for (const auto& chunk : chunks_) {
      out.insert(out.end(), chunk.begin(), chunk.end());
    }
  }
  return out;
}

std::string Tracer::chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    const std::string name = json_escape(e.label);
    const char* cat = to_string(e.category);
    const long long ts = static_cast<long long>(e.t_us);
    const long long arg = static_cast<long long>(e.arg);
    switch (e.kind) {
      case TraceEventKind::kSpanBegin:
        out += str_format(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\",\"ts\":%lld,"
            "\"pid\":0,\"tid\":0,\"args\":{\"arg\":%lld}}",
            name.c_str(), cat, ts, arg);
        break;
      case TraceEventKind::kSpanEnd:
        out += str_format(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"E\",\"ts\":%lld,"
            "\"pid\":0,\"tid\":0,\"args\":{\"arg\":%lld}}",
            name.c_str(), cat, ts, arg);
        break;
      case TraceEventKind::kInstant:
        out += str_format(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"I\",\"s\":\"t\","
            "\"ts\":%lld,\"pid\":0,\"tid\":0,\"args\":{\"arg\":%lld}}",
            name.c_str(), cat, ts, arg);
        break;
      case TraceEventKind::kCounter:
        out += str_format(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",\"ts\":%lld,"
            "\"pid\":0,\"tid\":0,\"args\":{\"value\":%lld}}",
            name.c_str(), cat, ts, arg);
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::binary() const {
  const std::vector<TraceEvent> events = snapshot();

  // Dedup labels by CONTENT in first-appearance order: two runs recording
  // the same event sequence get identical tables even though the label
  // pointers differ between processes (or interner states).
  std::map<std::string, std::uint32_t> ids;
  std::vector<const char*> table;
  std::vector<std::uint32_t> event_label(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto [it, inserted] =
        ids.emplace(events[i].label, static_cast<std::uint32_t>(table.size()));
    if (inserted) table.push_back(events[i].label);
    event_label[i] = it->second;
  }

  std::string out(kMagic, sizeof(kMagic));
  append_u32(out, static_cast<std::uint32_t>(table.size()));
  for (const char* label : table) {
    const std::string_view s(label);
    append_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
  }
  append_u64(out, dropped_);
  append_u64(out, static_cast<std::uint64_t>(events.size()));
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    append_i64(out, e.t_us);
    append_u32(out, event_label[i]);
    out.push_back(static_cast<char>(e.kind));
    out.push_back(static_cast<char>(e.category));
    append_i64(out, e.arg);
  }
  return out;
}

void Tracer::save(snapshot::Writer& w) const {
  const std::vector<TraceEvent> events = snapshot();

  // Same content-dedup-in-first-appearance-order table as binary(), so a
  // save/restore round trip re-exports byte-identical artifacts.
  std::map<std::string, std::uint32_t> ids;
  std::vector<const char*> table;
  std::vector<std::uint32_t> event_label(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto [it, inserted] =
        ids.emplace(events[i].label, static_cast<std::uint32_t>(table.size()));
    if (inserted) table.push_back(events[i].label);
    event_label[i] = it->second;
  }

  w.u64(table.size());
  for (const char* label : table) w.str(label);
  w.u64(dropped_);
  w.i64(open_spans_);
  w.u64(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    w.i64(e.t_us);
    w.u32(event_label[i]);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u8(static_cast<std::uint8_t>(e.category));
    w.i64(e.arg);
  }
}

void Tracer::restore(snapshot::SectionReader& s) {
  clear();
  restored_labels_.clear();
  const std::uint64_t label_count = s.u64();
  s.check_count(label_count, 9);
  restored_labels_.reserve(label_count);
  for (std::uint64_t i = 0; i < label_count; ++i) {
    restored_labels_.push_back(std::make_unique<std::string>(s.str()));
  }
  const std::uint64_t dropped = s.u64();
  const std::int64_t open_spans = s.i64();
  SIMTY_CHECK_MSG(open_spans >= 0, "Tracer::restore: negative open span count");
  const std::uint64_t event_count = s.u64();
  // Per event: i64(9) + u32(5) + 2 u8(4) + i64(9).
  s.check_count(event_count, 27);
  for (std::uint64_t i = 0; i < event_count; ++i) {
    TraceEvent e;
    e.t_us = s.i64();
    const std::uint32_t label = s.u32();
    SIMTY_CHECK_MSG(label < restored_labels_.size(),
                    "Tracer::restore: label index out of range");
    e.label = restored_labels_[label]->c_str();
    const std::uint8_t kind = s.u8();
    const std::uint8_t category = s.u8();
    SIMTY_CHECK_MSG(kind <= static_cast<std::uint8_t>(TraceEventKind::kCounter),
                    "Tracer::restore: bad event kind");
    SIMTY_CHECK_MSG(category <= static_cast<std::uint8_t>(TraceCategory::kExp),
                    "Tracer::restore: bad event category");
    e.kind = static_cast<TraceEventKind>(kind);
    e.category = static_cast<TraceCategory>(category);
    e.arg = s.i64();
    record(e);
  }
  // record() in ring mode counts wraparound drops; the saved counters are
  // authoritative for the restored state.
  dropped_ = dropped;
  open_spans_ = open_spans;
}

void Tracer::save_chrome_json(const std::string& path) const {
  write_file(path, chrome_json(), "Tracer::save_chrome_json");
}

void Tracer::save_binary(const std::string& path) const {
  write_file(path, binary(), "Tracer::save_binary");
}

Tracer* current() { return g_current; }

TraceScope::TraceScope(Tracer* tracer) : previous_(g_current) {
  g_current = tracer;
}

TraceScope::~TraceScope() { g_current = previous_; }

DecodedTrace decode_trace(const std::string& bytes) {
  Reader in(bytes);
  if (in.read_bytes(sizeof(kMagic)) != std::string(kMagic, sizeof(kMagic))) {
    throw std::runtime_error("trace: bad magic (not a SIMTY binary trace)");
  }
  DecodedTrace t;
  const std::uint32_t label_count = in.read_u32();
  t.labels.reserve(label_count);
  for (std::uint32_t i = 0; i < label_count; ++i) {
    const std::uint32_t len = in.read_u32();
    t.labels.push_back(in.read_bytes(len));
  }
  t.dropped = in.read_u64();
  const std::uint64_t event_count = in.read_u64();
  if (in.remaining() != event_count * kRecordBytes) {
    throw std::runtime_error("trace: event payload size mismatch");
  }
  t.events.reserve(event_count);
  for (std::uint64_t i = 0; i < event_count; ++i) {
    DecodedEvent e;
    e.t_us = in.read_i64();
    e.label = in.read_u32();
    const std::uint8_t kind = in.read_u8();
    const std::uint8_t category = in.read_u8();
    e.arg = in.read_i64();
    if (kind > static_cast<std::uint8_t>(TraceEventKind::kCounter)) {
      throw std::runtime_error("trace: bad event kind");
    }
    if (category > static_cast<std::uint8_t>(TraceCategory::kExp)) {
      throw std::runtime_error("trace: bad event category");
    }
    if (e.label >= t.labels.size()) {
      throw std::runtime_error("trace: label index out of range");
    }
    e.kind = static_cast<TraceEventKind>(kind);
    e.category = static_cast<TraceCategory>(category);
    t.events.push_back(e);
  }
  return t;
}

DecodedTrace load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return decode_trace(bytes);
}

namespace {

std::string format_event(const DecodedTrace& t, std::size_t i) {
  const DecodedEvent& e = t.events[i];
  return str_format("event %zu: t=%lldus %s/%s \"%s\" arg=%lld", i,
                    static_cast<long long>(e.t_us), to_string(e.category),
                    to_string(e.kind), t.label_of(e).c_str(),
                    static_cast<long long>(e.arg));
}

}  // namespace

TraceDiff diff_traces(const DecodedTrace& a, const DecodedTrace& b) {
  TraceDiff d;
  const std::size_t common = std::min(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < common; ++i) {
    const DecodedEvent& ea = a.events[i];
    const DecodedEvent& eb = b.events[i];
    const bool same = ea.t_us == eb.t_us && ea.arg == eb.arg &&
                      ea.kind == eb.kind && ea.category == eb.category &&
                      a.label_of(ea) == b.label_of(eb);
    if (!same) {
      d.first_divergence = i;
      d.summary = str_format("traces diverge at event %zu:\n  a: %s\n  b: %s", i,
                             format_event(a, i).c_str(), format_event(b, i).c_str());
      return d;
    }
  }
  if (a.events.size() != b.events.size()) {
    const DecodedTrace& longer = a.events.size() > b.events.size() ? a : b;
    d.first_divergence = common;
    d.summary = str_format(
        "traces share %zu events, then %s has %zu extra:\n  first extra: %s",
        common, a.events.size() > b.events.size() ? "a" : "b",
        longer.events.size() - common, format_event(longer, common).c_str());
    return d;
  }
  if (a.dropped != b.dropped) {
    d.summary = str_format(
        "events identical but drop counts differ (a: %llu, b: %llu)",
        static_cast<unsigned long long>(a.dropped),
        static_cast<unsigned long long>(b.dropped));
    return d;
  }
  d.equal = true;
  d.summary = str_format("traces identical (%zu events)", a.events.size());
  return d;
}

}  // namespace simty::trace
