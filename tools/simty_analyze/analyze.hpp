#pragma once
// simty_analyze — compile-free cross-TU semantic analysis.
//
// simty_lint (tools/simty_lint) checks one file at a time; this tool parses
// the whole tree once — include graph, per-function symbol table, call
// graph — and runs the checks that only make sense across translation
// units:
//
//   taint    A nondeterminism source (wall clock, random_device, std::hash,
//            pointer->integer cast, getenv, thread ids) reachable through
//            the call graph from a function *defined in the deterministic
//            core* is an error, even when the source sits in a helper three
//            modules away. The diagnostic prints the full call chain.
//   layering The module DAG declared in Config::modules is enforced over
//            the include graph: an include from a lower layer into a higher
//            one (a back edge) and any include cycle are errors. Unused
//            includes are reported as advisories (IWYU-lite), never errors.
//   lock     SIMTY_GUARDED_BY(m) members (common/annotations.hpp) must only
//            be touched inside a scope that locks `m` (lock_guard /
//            unique_lock / shared_lock / scoped_lock / mu.lock()) or from a
//            function annotated SIMTY_REQUIRES(m).
//
// Escape hatches mirror the linter's, under the "simty-analyze:" tag:
//
//   thing();  // simty-analyze: allow(taint)      — this line
//   // simty-analyze: allow(lock)                 — next code line
//   // simty-analyze: allow-file(include)         — whole file
//
// Everything is lexical + structural (the shared simty_lint lexer plus a
// brace-matching scope parser): no compiler, no compile_commands.json, so
// the analysis runs identically on any machine in under a second.

#include <cstddef>
#include <string>
#include <vector>

namespace simty::analyze {

/// One file handed to the analyzer: repo-relative path + full contents.
struct SourceFile {
  std::string path;  // '/'-separated, repo-relative, e.g. "src/sim/event_queue.cpp"
  std::string content;
};

/// One row of the module table. Files are assigned to the longest matching
/// prefix; a prefix matches at a '/', '.', or end-of-string boundary so
/// "src/trace/tracer" claims trace/tracer.{hpp,cpp} out of module "trace".
struct ModuleRule {
  std::string prefix;
  std::string module;
  int layer = 0;  // includes may only point at layers <= their own
};

struct Config {
  /// Module table used by the layering check. Empty -> layering pass skipped.
  std::vector<ModuleRule> modules;
  /// Functions defined under these prefixes form the deterministic core for
  /// the taint check. Matches the contract in DESIGN.md; deliberately the
  /// event core itself, not every linted path — the lint catches direct
  /// sources in the model layers, the analyzer catches laundering *into*
  /// the core through helpers.
  std::vector<std::string> deterministic_prefixes = {
      "src/sim",   "src/alarm", "src/policy",   "src/exp",
      "src/fleet", "src/trace", "src/snapshot", "src/serve"};
  /// Emit unused-include advisories (IWYU-lite). On by default.
  bool iwyu = true;
};

/// Returns the module table for this repository (the DAG in DESIGN.md §6.4).
const std::vector<ModuleRule>& repo_modules();

/// One error-level violation.
struct Finding {
  std::string check;  // "taint" | "layering" | "include-cycle" | "lock"
  std::string file;
  int line = 0;
  std::string message;
  /// Evidence trail, outermost first: the call chain from the deterministic
  /// function to the seed, or the include chain around a cycle. Empty for
  /// single-site findings.
  std::vector<std::string> chain;
};

/// Non-fatal report (currently only "include": unused direct includes).
struct Advisory {
  std::string check;
  std::string file;
  int line = 0;
  std::string message;
};

struct Result {
  std::vector<Finding> findings;
  std::vector<Advisory> advisories;
  std::size_t files = 0;
  std::size_t functions = 0;
  std::size_t call_edges = 0;
  std::size_t include_edges = 0;
};

/// Stable names of every check, for --list-checks and allow() validation.
const std::vector<std::string>& check_names();

/// Analyzes the whole file set at once (order-insensitive; results are
/// sorted by file/line/check).
Result analyze(const std::vector<SourceFile>& sources, const Config& config = {});

/// Renders a Result as a machine-readable JSON report.
std::string to_json(const Result& result);

}  // namespace simty::analyze
