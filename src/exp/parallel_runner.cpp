#include "exp/parallel_runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <future>
#include <thread>

#include "common/thread_pool.hpp"

namespace simty::exp {

ParallelRunner::ParallelRunner(int jobs) : jobs_(std::max(jobs, 1)) {}

int ParallelRunner::default_jobs() {
  if (const char* env = std::getenv("SIMTY_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<RunResult> ParallelRunner::run(
    const std::vector<ExperimentConfig>& configs) const {
  std::vector<RunResult> results;
  results.reserve(configs.size());
  const std::size_t fanout =
      std::min(static_cast<std::size_t>(jobs_), configs.size());
  if (fanout <= 1) {
    for (const ExperimentConfig& c : configs) results.push_back(run_experiment(c));
    return results;
  }

  ThreadPool pool(fanout);
  std::vector<std::future<RunResult>> futures;
  futures.reserve(configs.size());
  for (const ExperimentConfig& c : configs) {
    futures.push_back(pool.submit([config = c] { return run_experiment(config); }));
  }
  // get() in submission order: the reduction sees results in exactly the
  // order the serial loop would have produced them.
  for (std::future<RunResult>& f : futures) results.push_back(f.get());
  return results;
}

std::vector<RunResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                 int jobs) {
  return ParallelRunner(jobs).run(configs);
}

}  // namespace simty::exp
