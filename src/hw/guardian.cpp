#include "hw/guardian.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"

namespace simty::hw {

WakelockGuardian::WakelockGuardian(sim::Simulator& sim, WakelockManager& wakelocks,
                                   Config config)
    : sim_(sim), wakelocks_(wakelocks), config_(config) {
  SIMTY_CHECK_MSG(config_.hold_budget > Duration::zero(),
                  "guardian hold budget must be positive");
  SIMTY_CHECK_MSG(config_.scan_period > Duration::zero(),
                  "guardian scan period must be positive");
}

void WakelockGuardian::start(TimePoint horizon) {
  horizon_ = horizon;
  schedule_next();
}

std::size_t WakelockGuardian::scan() {
  const TimePoint now = sim_.now();
  std::size_t revoked = 0;
  for (const WakelockManager::HeldInfo& h : wakelocks_.held_locks()) {
    const Duration held_for = now - h.acquired_at;
    if (held_for <= config_.hold_budget) continue;
    if (wakelocks_.try_release(h.id)) {
      interventions_.push_back(Intervention{now, h.component, h.holder, held_for});
      ++revoked;
      SIMTY_WARN(str_format("guardian revoked %s held by %s for %s",
                            to_string(h.component), h.holder.c_str(),
                            held_for.to_string().c_str()));
    }
  }
  return revoked;
}

void WakelockGuardian::schedule_next() {
  const TimePoint when = sim_.now() + config_.scan_period;
  if (when >= horizon_) return;
  sim_.schedule_at(
      when,
      [this] {
        scan();
        schedule_next();
      },
      sim::EventPriority::kObserver, "guardian-scan");
}

}  // namespace simty::hw
