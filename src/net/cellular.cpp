#include "net/cellular.hpp"

#include <memory>

#include "common/check.hpp"
#include "trace/tracer.hpp"

namespace simty::net {

CellularStandby::CellularStandby(sim::Simulator& sim, alarm::AlarmManager& manager,
                                 hw::PowerBus& bus, RrcConfig config)
    : manager_(manager), rrc_(sim, config, bus) {}

void CellularStandby::deploy(const std::vector<CellularSyncSpec>& specs, Rng rng,
                             double beta) {
  SIMTY_CHECK_MSG(!finalized_, "CellularStandby::deploy after finalize");
  std::uint32_t app_seq = 1;
  for (const CellularSyncSpec& spec : specs) {
    // Per-app child stream: the draw sequence of one app is independent of
    // how many deliveries the others make.
    auto app_rng = std::make_shared<Rng>(rng.fork(app_seq));
    const Duration hold = spec.hold;
    const double jitter = spec.hold_jitter;
    RrcMachine* rrc = &rrc_;
    manager_.register_alarm(
        alarm::AlarmSpec::repeating(spec.name + ".cell", alarm::AppId{app_seq},
                                    spec.mode, spec.repeat, spec.alpha, beta),
        TimePoint::origin() + Duration::seconds(5 + app_seq * 7) + spec.repeat,
        [rrc, hold, jitter, app_rng](const alarm::Alarm&, TimePoint) {
          const Duration h = hold * app_rng->uniform(1.0 - jitter, 1.0 + jitter);
          rrc->data_activity(h);
          // CPU-only task spec: the radio rail is billed by the RRC machine.
          return alarm::TaskSpec{hw::ComponentSet::none(), h};
        });
    ++app_seq;
  }
}

void CellularStandby::finalize(TimePoint horizon) {
  // time_in() spans are only complete after this flush; skipping it drops
  // the open DCH/FACH span from the accounting.
  rrc_.finalize(horizon);
  finalized_ = true;
  SIMTY_TRACE_INSTANT(horizon, trace::TraceCategory::kNet, "cellular-finalize",
                      static_cast<std::int64_t>(rrc_.idle_promotions() +
                                                rrc_.fach_promotions()));
}

}  // namespace simty::net
