#pragma once
// alarm (layer 4) may see hw (layer 3)...
#include "common/base.hpp"
#include "hw/radio.hpp"
namespace fx::alarm {
struct Sched { fx::Tick next; fx::hw::Radio* radio; };
}
