#include "alarm/batch.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace simty::alarm {
namespace {

using hw::Component;
using hw::ComponentSet;

TimePoint at(std::int64_t s) { return TimePoint::origin() + Duration::seconds(s); }

std::unique_ptr<Alarm> imperceptible_alarm(std::uint64_t id, std::int64_t nominal,
                                           std::int64_t repeat, ComponentSet hw_set,
                                           double alpha = 0.75, double beta = 0.96) {
  auto a = std::make_unique<Alarm>(
      AlarmId{id},
      AlarmSpec::repeating("a" + std::to_string(id), AppId{1}, RepeatMode::kStatic,
                           Duration::seconds(repeat), alpha, beta),
      at(nominal));
  a->record_delivery(hw_set, Duration::seconds(2));  // learn the profile
  a->reschedule(at(nominal));
  return a;
}

TEST(Batch, SingleMemberAttributesMirrorAlarm) {
  auto a = imperceptible_alarm(1, 100, 300, ComponentSet{Component::kWifi});
  Batch b(a.get());
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.window_interval(), a->window_interval());
  EXPECT_EQ(b.grace_interval(), a->grace_interval());
  EXPECT_EQ(b.hardware(), (ComponentSet{Component::kWifi}));
  EXPECT_FALSE(b.perceptible());
  EXPECT_EQ(b.delivery_time(), at(100));
}

TEST(Batch, WindowIsIntersectionOfMembers) {
  auto a = imperceptible_alarm(1, 0, 300, ComponentSet{Component::kWifi});
  auto b = imperceptible_alarm(2, 100, 300, ComponentSet{Component::kWifi});
  Batch batch(a.get());
  batch.add(b.get());
  // Windows [0,225] and [100,325] -> [100,225].
  EXPECT_EQ(batch.window_interval(), (TimeInterval{at(100), at(225)}));
  // Graces [0,288] and [100,388] -> [100,288].
  EXPECT_EQ(batch.grace_interval(), (TimeInterval{at(100), at(288)}));
  // Delivery time is the max member nominal either way.
  EXPECT_EQ(batch.delivery_time(), at(100));
}

TEST(Batch, HardwareIsUnionOfMembers) {
  auto a = imperceptible_alarm(1, 0, 300, ComponentSet{Component::kWifi});
  auto b = imperceptible_alarm(2, 10, 300, ComponentSet{Component::kWps});
  Batch batch(a.get());
  batch.add(b.get());
  EXPECT_EQ(batch.hardware(),
            (ComponentSet{Component::kWifi, Component::kWps}));
}

TEST(Batch, PerceptibleIfAnyMemberIs) {
  auto quiet = imperceptible_alarm(1, 0, 300, ComponentSet{Component::kWifi});
  auto loud = imperceptible_alarm(
      2, 10, 300, ComponentSet{Component::kSpeaker, Component::kVibrator});
  Batch batch(quiet.get());
  EXPECT_FALSE(batch.perceptible());
  batch.add(loud.get());
  EXPECT_TRUE(batch.perceptible());
}

TEST(Batch, EmptyWindowIntersectionAllowedForImperceptibleEntries) {
  // Two imperceptible alarms whose graces overlap but windows do not
  // (medium time similarity alignment).
  auto a = imperceptible_alarm(1, 0, 300, ComponentSet{Component::kWifi}, 0.5, 0.96);
  auto b = imperceptible_alarm(2, 200, 300, ComponentSet{Component::kWifi}, 0.5, 0.96);
  Batch batch(a.get());
  batch.add(b.get());
  // Windows [0,150] vs [200,350] -> empty; graces [0,288] vs [200,488] -> ok.
  EXPECT_TRUE(batch.window_interval().is_empty());
  EXPECT_EQ(batch.grace_interval(), (TimeInterval{at(200), at(288)}));
  EXPECT_EQ(batch.delivery_time(), at(200));
}

TEST(Batch, PerceptibleEntryWithEmptyWindowThrowsOnDeliveryTime) {
  auto quiet = imperceptible_alarm(1, 0, 300, ComponentSet{Component::kWifi}, 0.1, 0.96);
  auto late = imperceptible_alarm(2, 250, 300, ComponentSet{Component::kWifi}, 0.1, 0.96);
  auto loud = imperceptible_alarm(
      3, 250, 300, ComponentSet{Component::kVibrator}, 0.1, 0.96);
  Batch batch(quiet.get());
  batch.add(late.get());   // imperceptible, empty window overlap: fine
  batch.add(loud.get());   // perceptible member with empty window overlap:
  EXPECT_THROW(batch.delivery_time(), std::logic_error);  // invariant violated
}

TEST(Batch, RemoveRecomputesAttributes) {
  auto a = imperceptible_alarm(1, 0, 300, ComponentSet{Component::kWifi});
  auto b = imperceptible_alarm(2, 100, 300, ComponentSet{Component::kWps});
  Batch batch(a.get());
  batch.add(b.get());
  EXPECT_TRUE(batch.remove(AlarmId{2}));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.window_interval(), a->window_interval());
  EXPECT_EQ(batch.hardware(), (ComponentSet{Component::kWifi}));
  EXPECT_FALSE(batch.remove(AlarmId{2}));  // already gone
  EXPECT_TRUE(batch.remove(AlarmId{1}));
  EXPECT_TRUE(batch.empty());
}

TEST(Batch, ContainsById) {
  auto a = imperceptible_alarm(7, 0, 300, ComponentSet{Component::kWifi});
  Batch batch(a.get());
  EXPECT_TRUE(batch.contains(AlarmId{7}));
  EXPECT_FALSE(batch.contains(AlarmId{8}));
}

TEST(Batch, DoubleAddRejected) {
  auto a = imperceptible_alarm(1, 0, 300, ComponentSet{Component::kWifi});
  Batch batch(a.get());
  EXPECT_THROW(batch.add(a.get()), std::logic_error);
}

TEST(Batch, ExpectedHoldIsMaxOfMembers) {
  auto a = imperceptible_alarm(1, 0, 300, ComponentSet{Component::kWifi});
  auto b = imperceptible_alarm(2, 10, 300, ComponentSet{Component::kWifi});
  // a and b both learned a 2 s hold; push b's profile to 10 s.
  b->record_delivery(ComponentSet{Component::kWifi}, Duration::seconds(26));
  Batch batch(a.get());
  batch.add(b.get());
  EXPECT_EQ(batch.expected_hold(), Duration::seconds(8));  // EMA: (2*3+26)/4
}

TEST(Batch, RefreshPicksUpRescheduledMembers) {
  auto a = imperceptible_alarm(1, 0, 300, ComponentSet{Component::kWifi});
  Batch batch(a.get());
  a->reschedule(at(500));
  batch.refresh();
  EXPECT_EQ(batch.delivery_time(), at(500));
}

TEST(Batch, DeliveryTimeOfEmptyBatchThrows) {
  Batch batch;
  EXPECT_THROW(batch.delivery_time(), std::logic_error);
}

}  // namespace
}  // namespace simty::alarm
