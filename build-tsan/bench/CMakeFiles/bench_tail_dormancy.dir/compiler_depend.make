# Empty compiler generated dependencies file for bench_tail_dormancy.
# This may be replaced when dependencies are built.
