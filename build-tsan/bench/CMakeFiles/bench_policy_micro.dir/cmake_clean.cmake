file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_micro.dir/bench_policy_micro.cpp.o"
  "CMakeFiles/bench_policy_micro.dir/bench_policy_micro.cpp.o.d"
  "bench_policy_micro"
  "bench_policy_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
